// Benchmarks regenerating the paper's tables and figures, one testing.B
// benchmark per experiment, plus per-architecture micro-benchmarks of the
// core operations.
//
// The experiment benchmarks run the corresponding internal/bench runner at
// a reduced scale and report each system line's throughput as a custom
// metric (sanitized series name + "/s"), so `go test -bench=.` produces a
// compact reproduction of the whole evaluation. For the full-size sweeps
// and readable tables, use `go run ./cmd/nvmbench -experiment all`.
//
// This file lives in the external test package so it can import
// internal/bench, which itself imports nvmstore for the sharded-store
// experiments.
package nvmstore_test

import (
	"strings"
	"testing"

	"nvmstore/internal/bench"
	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/engine"
	"nvmstore/internal/tpcc"
	"nvmstore/internal/ycsb"
)

// benchOptions keeps experiment benchmarks in the seconds range; nvmbench
// runs the full-size versions.
func benchOptions() bench.Options {
	return bench.Options{
		Scale:  4 << 20,
		Ops:    4000,
		Warmup: 8000,
		Quick:  true,
	}
}

func metricName(series string) string {
	s := strings.NewReplacer(" ", "_", "\\w", "w", "+", "", "(", "", ")", "").Replace(series)
	return strings.Trim(s, "_") + "/s"
}

// runExperiment executes one paper experiment per benchmark iteration and
// reports the last point of every series.
func runExperiment(b *testing.B, id string) {
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var last bench.Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, s := range last.Series {
		if len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], metricName(s.Name))
		}
	}
}

func BenchmarkFig8YCSBDataSizes(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig9TPCCWarehouses(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10DrillDown(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkScanOverheadTable(b *testing.B)     { runExperiment(b, "scan") }
func BenchmarkFig11HybridStructures(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12NVMLatency(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkFig13DRAMRatio(b *testing.B)        { runExperiment(b, "fig13") }
func BenchmarkFig14LargeWorkloads(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkFig15UpdateRatio(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkFig16NVMWear(b *testing.B)          { runExperiment(b, "fig16") }
func BenchmarkFig17RestartRampUp(b *testing.B)    { runExperiment(b, "fig17") }

// Micro-benchmarks: single-operation cost per architecture. Reported ns/op
// is CPU wall time only; the sim/op metric adds the simulated device time
// charged per operation.

func microEngine(b *testing.B, topo core.Topology) (*engine.Engine, *ycsb.Workload) {
	b.Helper()
	const unit = 4 << 20
	cfg := engine.DefaultConfig(topo, 2*unit, 10*unit, 50*unit)
	cfg.WALBytes = 4 << 20
	e, err := engine.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := ycsb.Load(e, ycsb.RowsForDataSize(6*unit), btree.LayoutSorted)
	if err != nil {
		b.Fatal(err)
	}
	// The three-tier design needs many eviction cycles before the NVM
	// admission set reaches steady state.
	for i := 0; i < 40000; i++ {
		if err := w.Lookup(); err != nil {
			b.Fatal(err)
		}
	}
	return e, w
}

func benchOp(b *testing.B, topo core.Topology, op func(*ycsb.Workload) error) {
	e, w := microEngine(b, topo)
	b.ResetTimer()
	simStart := e.Clock().Ns()
	for i := 0; i < b.N; i++ {
		if err := op(w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Clock().Ns()-simStart)/float64(b.N), "sim-ns/op")
}

func BenchmarkLookupMainMemory(b *testing.B) {
	// Main memory cannot hold 6 units; use 1 unit of data instead.
	const unit = 4 << 20
	cfg := engine.DefaultConfig(core.MemOnly, 0, 0, 0)
	cfg.WALBytes = 4 << 20
	e, err := engine.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := ycsb.Load(e, ycsb.RowsForDataSize(unit), btree.LayoutSorted)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Lookup(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupThreeTier(b *testing.B) { benchOp(b, core.ThreeTier, (*ycsb.Workload).Lookup) }
func BenchmarkLookupBasicNVM(b *testing.B)  { benchOp(b, core.DRAMNVM, (*ycsb.Workload).Lookup) }
func BenchmarkLookupNVMDirect(b *testing.B) { benchOp(b, core.DirectNVM, (*ycsb.Workload).Lookup) }
func BenchmarkLookupSSDBuffer(b *testing.B) { benchOp(b, core.DRAMSSD, (*ycsb.Workload).Lookup) }

func BenchmarkUpdateThreeTier(b *testing.B) { benchOp(b, core.ThreeTier, (*ycsb.Workload).Update) }
func BenchmarkUpdateNVMDirect(b *testing.B) { benchOp(b, core.DirectNVM, (*ycsb.Workload).Update) }

func BenchmarkScanThreeTier(b *testing.B) {
	benchOp(b, core.ThreeTier, func(w *ycsb.Workload) error { return w.ScanRange(100) })
}

// BenchmarkTPCCThreeTier measures the TPC-C mix on the paper's three-tier
// configuration.
func BenchmarkTPCCThreeTier(b *testing.B) {
	const unit = 4 << 20
	cfg := engine.DefaultConfig(core.ThreeTier, 2*unit, 10*unit, 50*unit)
	cfg.WALBytes = 8 << 20
	e, err := engine.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := tpcc.New(e, tpcc.Config{
		Warehouses: 5, Items: 300, CustomersPerDistrict: 20, InitialOrdersPerDistrict: 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		if err := w.NextTransaction(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	simStart := e.Clock().Ns()
	for i := 0; i < b.N; i++ {
		if err := w.NextTransaction(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Clock().Ns()-simStart)/float64(b.N), "sim-ns/op")
}

// BenchmarkRestartScan measures the §4.4 mapping-table reconstruction: a
// clean restart of a three-tier store whose NVM cache is full. The paper
// reports reading the page identifiers of 100 GB of NVM in just under a
// second; the sim-ns/op metric is the simulated scan cost at this scale.
func BenchmarkRestartScan(b *testing.B) {
	const unit = 16 << 20
	cfg := engine.DefaultConfig(core.ThreeTier, 2*unit, 10*unit, 50*unit)
	e, err := engine.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w, err := ycsb.Load(e, ycsb.RowsForDataSize(8*unit), btree.LayoutSorted)
	if err != nil {
		b.Fatal(err)
	}
	_ = w
	b.ResetTimer()
	simStart := e.Clock().Ns()
	for i := 0; i < b.N; i++ {
		if err := e.CleanRestart(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Clock().Ns()-simStart)/float64(b.N), "sim-ns/op")
}

// BenchmarkCrashRecovery measures WAL replay: transactions are run, the
// power fails, and recovery repeats history. Reported per recovered
// transaction.
func BenchmarkCrashRecovery(b *testing.B) {
	const unit = 4 << 20
	const txs = 2000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := engine.DefaultConfig(core.ThreeTier, 2*unit, 10*unit, 50*unit)
		cfg.StrictPersistence = true
		e, err := engine.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w, err := ycsb.Load(e, ycsb.RowsForDataSize(unit), btree.LayoutSorted)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < txs; j++ {
			if err := w.Update(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		stats, err := e.CrashRestart()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Committed == 0 {
			b.Fatal("nothing recovered")
		}
	}
	b.ReportMetric(float64(txs), "tx-replayed/op")
}
