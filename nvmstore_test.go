package nvmstore

import (
	"bytes"
	"errors"
	"testing"
)

func open(t *testing.T, arch Architecture) *Store {
	t.Helper()
	s, err := Open(Options{
		Architecture:      arch,
		DRAMBytes:         8 << 20,
		NVMBytes:          64 << 20,
		SSDBytes:          256 << 20,
		WALBytes:          1 << 20,
		StrictPersistence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickstartFlow(t *testing.T) {
	for _, arch := range []Architecture{ThreeTier, MainMemory, NVMDirect, BasicNVMBuffer, SSDBuffer} {
		t.Run(arch.String(), func(t *testing.T) {
			s := open(t, arch)
			table, err := s.CreateTable(1, 32)
			if err != nil {
				t.Fatal(err)
			}
			row := bytes.Repeat([]byte{7}, 32)
			if err := s.Update(func() error { return table.Insert(5, row) }); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 32)
			found, err := table.Lookup(5, buf)
			if err != nil || !found || !bytes.Equal(buf, row) {
				t.Fatalf("lookup = %v, %v", found, err)
			}
			if n, _ := table.Count(); n != 1 {
				t.Fatalf("count = %d", n)
			}
		})
	}
}

func TestTxRequired(t *testing.T) {
	s := open(t, ThreeTier)
	table, _ := s.CreateTable(1, 8)
	if err := table.Insert(1, make([]byte, 8)); !errors.Is(err, ErrNoTx) {
		t.Fatalf("err = %v, want ErrNoTx", err)
	}
}

func TestUpdateRollsBackOnError(t *testing.T) {
	s := open(t, BasicNVMBuffer)
	table, _ := s.CreateTable(1, 8)
	sentinel := errors.New("boom")
	err := s.Update(func() error {
		if err := table.Insert(1, make([]byte, 8)); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n, _ := table.Count(); n != 0 {
		t.Fatalf("rolled-back insert visible: count = %d", n)
	}
}

func TestDuplicateKeySurface(t *testing.T) {
	s := open(t, MainMemory)
	table, _ := s.CreateTable(1, 8)
	if err := s.Update(func() error { return table.Insert(1, make([]byte, 8)) }); err != nil {
		t.Fatal(err)
	}
	err := s.Update(func() error { return table.Insert(1, make([]byte, 8)) })
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	s := open(t, ThreeTier)
	table, _ := s.CreateTable(1, 16)
	if err := s.Update(func() error { return table.Insert(1, bytes.Repeat([]byte{1}, 16)) }); err != nil {
		t.Fatal(err)
	}
	// In-flight transaction at the crash.
	s.Begin()
	if err := table.Insert(2, bytes.Repeat([]byte{2}, 16)); err != nil {
		t.Fatal(err)
	}
	stats, err := s.CrashRestart()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	table = s.Table(1)
	if table == nil {
		t.Fatal("table lost")
	}
	buf := make([]byte, 16)
	if found, _ := table.Lookup(1, buf); !found {
		t.Fatal("committed row lost")
	}
	if found, _ := table.Lookup(2, buf); found {
		t.Fatal("uncommitted row survived")
	}
}

func TestCleanRestartAndBulkLoad(t *testing.T) {
	s := open(t, ThreeTier)
	table, _ := s.CreateTable(9, 64)
	const n = 5000
	err := table.BulkLoad(n,
		func(i int) uint64 { return uint64(i * 2) },
		func(i int, dst []byte) { dst[0] = byte(i) },
		0.66)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.CleanRestart(); err != nil {
		t.Fatal(err)
	}
	table = s.Table(9)
	if cnt, _ := table.Count(); cnt != n {
		t.Fatalf("count after restart = %d, want %d", cnt, n)
	}
	// Field access and scans work through the public API.
	buf := make([]byte, 1)
	if found, err := table.LookupField(84, 0, 1, buf); err != nil || !found || buf[0] != 42 {
		t.Fatalf("LookupField = %v %v %d", found, err, buf[0])
	}
	got := 0
	if err := table.Scan(100, 10, 0, 1, func(uint64, []byte) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("scan visited %d", got)
	}
}

func TestMetricsAndSimulatedTime(t *testing.T) {
	s := open(t, NVMDirect)
	table, _ := s.CreateTable(1, 64)
	if err := s.Update(func() error { return table.Insert(1, make([]byte, 64)) }); err != nil {
		t.Fatal(err)
	}
	if s.SimulatedTime() == 0 {
		t.Fatal("no simulated device time charged")
	}
	m := s.Metrics()
	if m.NVMTotalWrites == 0 || m.Log.Commits != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestMainMemoryCapacitySurface(t *testing.T) {
	s, err := Open(Options{Architecture: MainMemory, DRAMBytes: 8 << 20, WALBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	table, _ := s.CreateTable(1, 1024)
	err = table.BulkLoad(100000,
		func(i int) uint64 { return uint64(i) },
		func(i int, dst []byte) {}, 1.0)
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, arch := range []Architecture{ThreeTier, BasicNVMBuffer, NVMDirect, SSDBuffer} {
		t.Run(arch.String(), func(t *testing.T) {
			s := open(t, arch)
			table, err := s.CreateTable(1, 32)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 300; i++ {
				row := make([]byte, 32)
				row[0], row[1] = byte(i), byte(i>>8)
				i := i
				if err := s.Update(func() error { return table.Insert(i, row) }); err != nil {
					t.Fatal(err)
				}
			}
			path := t.TempDir() + "/snap.db"
			if err := s.SaveSnapshot(path); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}

			// The original store keeps working after a save.
			if err := s.Update(func() error { return table.Insert(1000, make([]byte, 32)) }); err != nil {
				t.Fatalf("post-save insert: %v", err)
			}

			// A fresh store with the same options restores the snapshot
			// (without the post-save insert).
			s2 := open(t, arch)
			if err := s2.LoadSnapshot(path); err != nil {
				t.Fatalf("LoadSnapshot: %v", err)
			}
			t2 := s2.Table(1)
			if t2 == nil {
				t.Fatal("table lost in snapshot")
			}
			cnt, err := t2.Count()
			if err != nil {
				t.Fatal(err)
			}
			if cnt != 300 {
				t.Fatalf("restored count = %d, want 300", cnt)
			}
			buf := make([]byte, 32)
			for _, k := range []uint64{0, 137, 299} {
				found, err := t2.Lookup(k, buf)
				if err != nil || !found {
					t.Fatalf("Lookup(%d) = %v, %v", k, found, err)
				}
				if buf[0] != byte(k) || buf[1] != byte(k>>8) {
					t.Fatalf("row %d content wrong", k)
				}
			}
			// The restored store is fully operational, including recovery.
			if err := s2.Update(func() error { return t2.Insert(2000, make([]byte, 32)) }); err != nil {
				t.Fatalf("post-load insert: %v", err)
			}
			if _, err := s2.CrashRestart(); err != nil {
				t.Fatalf("post-load crash restart: %v", err)
			}
			if cnt, _ := s2.Table(1).Count(); cnt != 301 {
				t.Fatalf("count after post-load crash = %d, want 301", cnt)
			}
		})
	}
}

func TestSnapshotConfigMismatch(t *testing.T) {
	s := open(t, ThreeTier)
	if _, err := s.CreateTable(1, 16); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/snap.db"
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	other, err := Open(Options{
		Architecture: ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20, // different NVM size
		SSDBytes:     256 << 20,
		WALBytes:     1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadSnapshot(path); err == nil {
		t.Fatal("snapshot loaded into mismatched configuration")
	}
	wrongArch := open(t, BasicNVMBuffer)
	if err := wrongArch.LoadSnapshot(path); err == nil {
		t.Fatal("snapshot loaded into different architecture")
	}
}

func TestSnapshotInsideTxRejected(t *testing.T) {
	s := open(t, BasicNVMBuffer)
	s.Begin()
	if err := s.SaveSnapshot(t.TempDir() + "/x.db"); err == nil {
		t.Fatal("snapshot inside tx accepted")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}
