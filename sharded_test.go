package nvmstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func openShardedStore(t *testing.T, shards int) *ShardedStore {
	t.Helper()
	s, err := OpenSharded(shards, Options{
		Architecture:      ThreeTier,
		DRAMBytes:         32 << 20,
		NVMBytes:          256 << 20,
		SSDBytes:          1 << 30,
		WALBytes:          4 << 20,
		StrictPersistence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shardedRow(key uint64, size int) []byte {
	row := make([]byte, size)
	for i := range row {
		row[i] = byte(key>>uint(8*(i%8))) + byte(i)
	}
	return row
}

func TestShardedBasicOps(t *testing.T) {
	s := openShardedStore(t, 4)
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 500
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, shardedRow(k, 64)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if n, err := table.Count(); err != nil || n != rows {
		t.Fatalf("Count = %d, %v; want %d", n, err, rows)
	}
	buf := make([]byte, 64)
	for k := uint64(0); k < rows; k++ {
		found, err := table.Lookup(k, buf)
		if err != nil || !found {
			t.Fatalf("lookup %d: found=%v err=%v", k, found, err)
		}
		if !bytes.Equal(buf, shardedRow(k, 64)) {
			t.Fatalf("row %d content mismatch", k)
		}
	}
	// Scan must return the hash-scattered keys in global order.
	var prev uint64
	seen := 0
	err = table.Scan(0, 0, 0, 8, func(k uint64, field []byte) bool {
		if seen > 0 && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
		seen++
		return true
	})
	if err != nil || seen != rows {
		t.Fatalf("scan visited %d rows, err %v; want %d", seen, err, rows)
	}
	// Every shard should own a reasonable slice of the key space.
	for i, ops := range s.ShardOps() {
		if ops == 0 {
			t.Fatalf("shard %d received no operations", i)
		}
	}
}

func TestShardedScanLimitAndDelete(t *testing.T) {
	s := openShardedStore(t, 3)
	table, err := s.CreateTable(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := table.Insert(k, shardedRow(k, 32)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := table.Scan(40, 10, 0, 4, func(k uint64, _ []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 40 || got[9] != 49 {
		t.Fatalf("scan(40, limit 10) = %v", got)
	}
	if found, err := table.Delete(40); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if found, _ := table.Lookup(40, make([]byte, 32)); found {
		t.Fatal("deleted key still visible")
	}
	if n, _ := table.Count(); n != 99 {
		t.Fatalf("Count after delete = %d, want 99", n)
	}
}

// TestShardedConcurrent drives goroutines hammering the same sharded
// table with inserts, lookups, field updates, and scans. Run under
// `go test -race` this checks the per-shard locking.
func TestShardedConcurrent(t *testing.T) {
	s := openShardedStore(t, 4)
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 300
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < perW; i++ {
				k := uint64(wk*perW + i)
				if err := table.Insert(k, shardedRow(k, 64)); err != nil {
					errs[wk] = fmt.Errorf("insert %d: %w", k, err)
					return
				}
				if found, err := table.Lookup(k, buf); err != nil || !found {
					errs[wk] = fmt.Errorf("lookup %d: found=%v err=%v", k, found, err)
					return
				}
				if _, err := table.UpdateField(k, 8, []byte{0xAB, 0xCD}); err != nil {
					errs[wk] = fmt.Errorf("update %d: %w", k, err)
					return
				}
				if i%64 == 0 {
					if err := table.Scan(k, 16, 0, 8, func(uint64, []byte) bool { return true }); err != nil {
						errs[wk] = fmt.Errorf("scan from %d: %w", k, err)
						return
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	for wk, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", wk, err)
		}
	}
	if n, err := table.Count(); err != nil || n != workers*perW {
		t.Fatalf("Count = %d, %v; want %d", n, err, workers*perW)
	}
	if s.Ops() == 0 {
		t.Fatal("op counters did not advance")
	}
}

// TestShardedCrashOneShard kills one shard in the middle of a transaction
// and verifies per-shard recovery: the victim's committed rows and every
// other shard's data survive, while the in-flight transaction is undone.
func TestShardedCrashOneShard(t *testing.T) {
	s := openShardedStore(t, 4)
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 400
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, shardedRow(k, 64)); err != nil {
			t.Fatal(err)
		}
	}

	// Open a transaction on the victim shard and leave it uncommitted
	// mid-flight: insert a row the crash must roll back.
	const victim = 2
	var loserKey uint64
	for k := uint64(rows); ; k++ {
		if s.ShardFor(k) == victim {
			loserKey = k
			break
		}
	}
	err = s.WithShard(victim, func(st *Store) error {
		st.Begin()
		vt := st.Table(1)
		if vt == nil {
			return fmt.Errorf("victim shard lost table 1")
		}
		return vt.Insert(loserKey, shardedRow(loserKey, 64))
	})
	if err != nil {
		t.Fatal(err)
	}

	stats, err := s.CrashRestartShard(victim)
	if err != nil {
		t.Fatalf("crash restart shard %d: %v", victim, err)
	}
	// The in-flight records were never flushed (no commit), so recovery
	// replays only the victim's committed transactions.
	if stats.Committed == 0 {
		t.Fatalf("recovery replayed no committed transactions: %+v", stats)
	}

	// The in-flight insert must be gone; all committed rows must survive
	// on every shard, including the recovered one.
	buf := make([]byte, 64)
	if found, _ := table.Lookup(loserKey, buf); found {
		t.Fatalf("uncommitted key %d survived the crash", loserKey)
	}
	for k := uint64(0); k < rows; k++ {
		found, err := table.Lookup(k, buf)
		if err != nil || !found {
			t.Fatalf("key %d (shard %d) lost after shard-%d crash: found=%v err=%v",
				k, s.ShardFor(k), victim, found, err)
		}
		if !bytes.Equal(buf, shardedRow(k, 64)) {
			t.Fatalf("key %d content corrupted after recovery", k)
		}
	}
	// The surviving shards keep accepting writes.
	if err := table.Insert(rows+1000, shardedRow(rows+1000, 64)); err != nil {
		t.Fatalf("insert after per-shard recovery: %v", err)
	}
}

func TestShardedWholeStoreCrash(t *testing.T) {
	s := openShardedStore(t, 3)
	table, err := s.CreateTable(1, 48)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 300
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, shardedRow(k, 48)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := s.CrashRestart()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed == 0 {
		t.Fatalf("recovery replayed no committed transactions: %+v", stats)
	}
	if n, err := table.Count(); err != nil || n != rows {
		t.Fatalf("Count after crash = %d, %v; want %d", n, err, rows)
	}
}

func TestShardedMetricsAggregate(t *testing.T) {
	s := openShardedStore(t, 2)
	table, err := s.CreateTable(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := table.Insert(k, shardedRow(k, 32)); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Log.Commits < 200 {
		t.Fatalf("aggregated commits = %d, want >= 200", m.Log.Commits)
	}
	if m.Buffer.Fixes == 0 {
		t.Fatal("aggregated buffer fixes = 0")
	}
	var perShard int64
	for i := 0; i < s.NumShards(); i++ {
		perShard += s.Shard(i).Metrics().Log.Commits
	}
	if m.Log.Commits != perShard {
		t.Fatalf("aggregate commits %d != per-shard sum %d", m.Log.Commits, perShard)
	}
}

func TestOpenShardedValidation(t *testing.T) {
	if _, err := OpenSharded(0, Options{Architecture: ThreeTier}); err == nil {
		t.Fatal("OpenSharded(0) should fail")
	}
	s, err := OpenSharded(1, Options{
		Architecture: ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     64 << 20,
		SSDBytes:     256 << 20,
		WALBytes:     1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.ShardFor(12345) != 0 {
		t.Fatal("single shard must own every key")
	}
}

// TestShardedConcurrentMetrics hammers tables from worker goroutines while
// other goroutines continuously aggregate metrics, wear, simulated time,
// and traces. Run under -race this verifies that every aggregation path
// snapshots shard state under the shard lock (the Manager.Stats contract).
func TestShardedConcurrentMetrics(t *testing.T) {
	s, err := OpenSharded(4, Options{
		Architecture: ThreeTier,
		DRAMBytes:    32 << 20,
		NVMBytes:     256 << 20,
		SSDBytes:     1 << 30,
		WALBytes:     4 << 20,
		Observe:      true,
		TraceEvents:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}

	const writers, opsPerWriter = 4, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < opsPerWriter; i++ {
				k := uint64(w*opsPerWriter + i)
				if err := table.Insert(k, shardedRow(k, 64)); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
				if _, err := table.Lookup(k, buf); err != nil {
					t.Errorf("lookup %d: %v", k, err)
					return
				}
			}
		}(w)
	}
	// Aggregators race against the writers on purpose.
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var sink bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := s.Metrics()
				if m.Buffer.Fixes < 0 {
					t.Error("negative fix count")
				}
				_ = s.WearProfile()
				_ = s.MaxSimulatedTime()
				_ = s.TotalSimulatedTime()
				sink.Reset()
				if _, err := s.WriteTrace(&sink, 0); err != nil {
					t.Errorf("trace: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	m := s.Metrics()
	if m.Latency == nil {
		t.Fatal("Observe store returned nil latency snapshot")
	}
	if n := m.Latency.Ops[0].Count(); n == 0 {
		// Op 0 is dram.hit; a lookup-heavy run must have recorded some.
		t.Error("no dram.hit samples after workload")
	}
	if m.Residency.NVMSlots == 0 {
		t.Error("residency gauges empty")
	}
	var buf bytes.Buffer
	n, err := s.WriteTrace(&buf, 0)
	if err != nil || n == 0 {
		t.Fatalf("WriteTrace n=%d err=%v", n, err)
	}
}
