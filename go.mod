module nvmstore

go 1.22
