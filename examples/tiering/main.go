// Tiering: compare the five storage architectures on one skewed workload.
//
// This example is a miniature of the reproduced paper's Figure 8: the same
// data and the same Zipf-skewed point lookups run against every
// architecture, with data sized between the DRAM and NVM capacities so the
// tiering behavior matters. It prints throughput over combined time
// (wall + simulated device time) and the device traffic each architecture
// generated.
package main

import (
	"fmt"
	"log"
	"time"

	"nvmstore"
)

const (
	dramBytes = 8 << 20
	nvmBytes  = 40 << 20
	ssdBytes  = 200 << 20
	rows      = 20000 // ~32 MB of 1 KB rows in 16 kB pages: exceeds DRAM, fits NVM
	rowSize   = 1024
	lookups   = 30000
)

// zipf is a tiny scrambled Zipf-ish key stream: rank r is chosen with
// probability ~1/r and hashed over the key space.
type zipf struct{ state uint64 }

func (z *zipf) next() uint64 {
	z.state += 0x9e3779b97f4a7c15
	x := z.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	rank := (x % rows) % ((x>>40)%rows + 1) // crude skew toward small ranks
	// Scramble the rank so hot keys are spread over the table.
	h := rank * 0x9e3779b97f4a7c15
	return (h ^ h>>29) % rows
}

func run(arch nvmstore.Architecture) error {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture: arch,
		DRAMBytes:    dramBytes,
		NVMBytes:     nvmBytes,
		SSDBytes:     ssdBytes,
	})
	if err != nil {
		return err
	}
	table, err := store.CreateTable(1, rowSize)
	if err != nil {
		return err
	}
	err = table.BulkLoad(rows,
		func(i int) uint64 { return uint64(i) },
		func(i int, dst []byte) { dst[0] = byte(i) },
		0.66)
	if err != nil {
		// MainMemory cannot hold this data set — that is the point of
		// the comparison.
		fmt.Printf("%-16s cannot run: %v\n", arch.String(), err)
		return nil
	}
	if err := store.Checkpoint(); err != nil {
		return err
	}

	keys := &zipf{state: uint64(arch)}
	buf := make([]byte, 100)
	op := func() error {
		store.Begin()
		if _, err := table.LookupField(keys.next(), 0, 100, buf); err != nil {
			return err
		}
		return store.Commit()
	}
	// Warm the caches, then measure.
	for i := 0; i < lookups; i++ {
		if err := op(); err != nil {
			return err
		}
	}
	simStart := store.SimulatedTime()
	wallStart := time.Now()
	for i := 0; i < lookups; i++ {
		if err := op(); err != nil {
			return err
		}
	}
	total := time.Since(wallStart) + (store.SimulatedTime() - simStart)
	m := store.Metrics()
	fmt.Printf("%-16s %8.0f lookups/s   (NVM lines read %9d, SSD pages read %6d)\n",
		arch.String(), float64(lookups)/total.Seconds(), m.NVMLinesRead, m.SSDPagesRead)
	return nil
}

func main() {
	fmt.Printf("data: %d rows of %d bytes; DRAM %d MB, NVM %d MB, SSD %d MB\n\n",
		rows, rowSize, dramBytes>>20, nvmBytes>>20, ssdBytes>>20)
	for _, arch := range []nvmstore.Architecture{
		nvmstore.MainMemory,
		nvmstore.ThreeTier,
		nvmstore.BasicNVMBuffer,
		nvmstore.NVMDirect,
		nvmstore.SSDBuffer,
	} {
		if err := run(arch); err != nil {
			log.Fatalf("%s: %v", arch.String(), err)
		}
	}
}
