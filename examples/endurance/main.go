// Endurance: NVM wear under buffered vs in-place updates.
//
// NVM cells wear out; the reproduced paper's Figure 16 shows that its
// buffer-managed design not only reduces writes to hot cache lines but
// levels them almost perfectly, while the in-place design hammers the same
// lines tens of thousands of times. This example reproduces that result
// through the public API: the same update-only workload runs against the
// three-tier buffer manager and the NVM-direct engine, and the wear
// profiles are compared.
package main

import (
	"fmt"
	"log"

	"nvmstore"
)

const (
	rows    = 10000
	rowSize = 1024
	updates = 50000
)

func run(arch nvmstore.Architecture) (nvmstore.WearProfile, error) {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture: arch,
		DRAMBytes:    8 << 20,
		NVMBytes:     64 << 20,
		SSDBytes:     256 << 20,
	})
	if err != nil {
		return nvmstore.WearProfile{}, err
	}
	table, err := store.CreateTable(1, rowSize)
	if err != nil {
		return nvmstore.WearProfile{}, err
	}
	if err := table.BulkLoad(rows,
		func(i int) uint64 { return uint64(i) },
		func(i int, dst []byte) { dst[0] = byte(i) }, 0.66); err != nil {
		return nvmstore.WearProfile{}, err
	}
	if err := store.Checkpoint(); err != nil {
		return nvmstore.WearProfile{}, err
	}

	// Skewed updates: half the draws hit 1% of the keys.
	state := uint64(arch)*0x9e3779b97f4a7c15 + 1
	nextKey := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		x := state ^ state>>33
		if (x>>4)&1 == 0 {
			return (x >> 8) % (rows / 100)
		}
		return (x >> 8) % rows
	}
	field := make([]byte, 100)
	oneUpdate := func(i int) error {
		key := nextKey()
		field[0] = byte(i)
		return store.Update(func() error {
			found, err := table.UpdateField(key, 0, field)
			if err == nil && !found {
				err = fmt.Errorf("key %d missing", key)
			}
			return err
		})
	}
	for i := 0; i < updates/4; i++ { // warm the caches first
		if err := oneUpdate(i); err != nil {
			return nvmstore.WearProfile{}, err
		}
	}
	store.ResetWear()
	for i := 0; i < updates; i++ {
		if err := oneUpdate(i); err != nil {
			return nvmstore.WearProfile{}, err
		}
	}
	return store.WearProfile(), nil
}

func main() {
	fmt.Printf("%d skewed updates over %d rows; per-cache-line NVM write counts:\n\n", updates, rows)
	for _, arch := range []nvmstore.Architecture{nvmstore.ThreeTier, nvmstore.NVMDirect} {
		p, err := run(arch)
		if err != nil {
			log.Fatalf("%s: %v", arch.String(), err)
		}
		fmt.Printf("%-14s total writes %9d over %8d lines — max/line %6d, median/line %d\n",
			arch.String(), p.TotalWrites, p.LinesTouched, p.MaxPerLine, p.MedianPerLine)
	}
	fmt.Println("\nthe buffer manager levels wear (max ≈ median); in-place updates")
	fmt.Println("concentrate thousands of writes on the hottest lines, the paper's Figure 16")
}
