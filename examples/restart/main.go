// Restart: the warm-NVM-cache restart behavior of the three-tier design.
//
// This example miniaturizes the reproduced paper's restart experiment
// (Figure 17): after a clean restart, a traditional buffer manager must
// refill its cache from slow SSD, while the three-tier design's NVM cache
// survives the restart and only the small page-mapping table has to be
// rebuilt by scanning NVM page headers.
package main

import (
	"fmt"
	"log"
	"time"

	"nvmstore"
)

const (
	rows    = 30000
	rowSize = 256
	bucket  = 5000 // lookups per progress sample
)

func run(arch nvmstore.Architecture) error {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture: arch,
		DRAMBytes:    32 << 20, // everything fits in DRAM once warm
		NVMBytes:     64 << 20,
		SSDBytes:     256 << 20,
	})
	if err != nil {
		return err
	}
	table, err := store.CreateTable(1, rowSize)
	if err != nil {
		return err
	}
	if err := table.BulkLoad(rows,
		func(i int) uint64 { return uint64(i) },
		func(i int, dst []byte) { dst[0] = byte(i) }, 0.66); err != nil {
		return err
	}
	if err := store.Checkpoint(); err != nil {
		return err
	}

	state := uint64(1)
	buf := make([]byte, 8)
	op := func() error {
		state += 0x9e3779b97f4a7c15
		x := state
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x ^= x >> 31
		store.Begin()
		if _, err := table.LookupField(x%rows, 0, 8, buf); err != nil {
			return err
		}
		return store.Commit()
	}
	sample := func() (float64, error) {
		simStart := store.SimulatedTime()
		wallStart := time.Now()
		for i := 0; i < bucket; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		total := time.Since(wallStart) + (store.SimulatedTime() - simStart)
		return float64(bucket) / total.Seconds(), nil
	}

	// Warm up to peak throughput.
	for i := 0; i < 4*bucket; i++ {
		if err := op(); err != nil {
			return err
		}
	}
	peak, err := sample()
	if err != nil {
		return err
	}

	// Clean restart: volatile state gone, persistent state intact.
	restartStart := time.Now()
	simStart := store.SimulatedTime()
	if err := store.CleanRestart(); err != nil {
		return err
	}
	restartCost := time.Since(restartStart) + (store.SimulatedTime() - simStart)
	table = store.Table(1)

	fmt.Printf("%-16s peak %8.0f op/s, restart took %8v, ramp-up:", arch.String(), peak, restartCost.Round(time.Microsecond))
	for i := 0; i < 8; i++ {
		tput, err := sample()
		if err != nil {
			return err
		}
		fmt.Printf(" %3.0f%%", 100*tput/peak)
		if tput >= 0.95*peak {
			break
		}
	}
	fmt.Println()
	return nil
}

func main() {
	fmt.Printf("%d rows of %d bytes; ramp-up shown as %% of peak per %d-lookup bucket\n\n", rows, rowSize, bucket)
	for _, arch := range []nvmstore.Architecture{
		nvmstore.ThreeTier,
		nvmstore.BasicNVMBuffer,
		nvmstore.SSDBuffer,
		nvmstore.NVMDirect,
	} {
		if err := run(arch); err != nil {
			log.Fatalf("%s: %v", arch.String(), err)
		}
	}
}
