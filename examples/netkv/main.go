// Netkv: talk to a running nvmserver over the wire protocol.
//
// Start a server in one terminal:
//
//	go run ./cmd/nvmserver -addr :7070 -shards 4
//
// then run this example:
//
//	go run ./examples/netkv -addr localhost:7070
//
// It walks the client API end to end: pooled synchronous calls, a deep
// async pipeline on one goroutine, a server-side transaction with
// read-your-writes, an ordered cross-shard scan, and the server's STATS
// document with wire- and engine-level latency histograms.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"nvmstore/internal/client"
	"nvmstore/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "nvmserver address")
	table := flag.Uint64("table", 1, "table id (created by the server at startup)")
	flag.Parse()

	cl, err := client.Dial(*addr, client.Options{Conns: 2, Depth: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Synchronous calls: each Put is one durable transaction on the
	// owning shard — when it returns nil, the write survives a crash.
	if err := cl.Put(*table, 42, []byte("hello over the wire")); err != nil {
		log.Fatal(err)
	}
	val, found, err := cl.Get(*table, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get 42: found=%v value=%q\n", found, val)

	// Pipelining: issue a burst without waiting, then collect. The
	// requests interleave across shards and return out of order on the
	// wire; the client matches them back up by request id.
	calls := make([]*client.Call, 0, 100)
	for key := uint64(100); key < 200; key++ {
		calls = append(calls, cl.PutAsync(*table, key, fmt.Appendf(nil, "row-%d", key)))
	}
	for _, call := range calls {
		if _, err := call.Result(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("pipelined 100 puts")

	// A server-side transaction: writes are buffered per connection,
	// read back by the transaction itself, and applied atomically per
	// shard at Commit.
	tx, err := cl.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Put(*table, 7, []byte("inside tx")); err != nil {
		log.Fatal(err)
	}
	if v, _, _ := tx.Get(*table, 7); string(v) != "inside tx" {
		log.Fatal("transaction does not see its own write")
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transaction committed")

	// Scan merges all shards into global key order.
	entries, err := cl.Scan(*table, 100, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("scan: %d = %q\n", e.Key, trim(e.Value))
	}

	// STATS: server counters plus wire (wall-clock) and engine
	// (simulated-time) latency histograms.
	buf, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	var doc server.StatsDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d shards, %d ops served\n", doc.Shards, doc.Ops)
	for _, row := range doc.Wire {
		fmt.Printf("  %-12s count=%-6d p50=%-8d p99=%d (ns)\n", row.Op, row.Count, row.P50, row.P99)
	}
	fmt.Println("client round trips:")
	for _, row := range cl.Latency() {
		fmt.Printf("  %-12s count=%-6d p50=%-8d p99=%d (ns)\n", row.Op, row.Count, row.P50, row.P99)
	}
}

// trim cuts the zero padding the server added to short rows.
func trim(row []byte) []byte {
	for i, b := range row {
		if b == 0 {
			return row[:i]
		}
	}
	return row
}
