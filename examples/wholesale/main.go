// Wholesale: a small order-entry workload with multi-table transactions.
//
// The reproduced paper motivates its storage engine with OLTP workloads
// like TPC-C's wholesale supplier. This example builds a miniature version
// on the public API: items with stock on one table, orders and order lines
// on others, and an order-entry transaction that updates all of them
// atomically — including rolling back when an item is out of stock.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"nvmstore"
)

// Table ids and row layouts.
const (
	tableStock  = 1 // key: item id; row: [8]stock [24]name
	tableOrders = 2 // key: order id; row: [8]customer [8]lines
	tableLines  = 3 // key: order<<8|line; row: [8]item [8]quantity
)

var errOutOfStock = errors.New("out of stock")

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// placeOrder enters one order with its lines, decrementing stock. Any
// failure (such as insufficient stock) rolls the entire order back.
func placeOrder(store *nvmstore.Store, orderID, customer uint64, items map[uint64]uint64) error {
	stock := store.Table(tableStock)
	orders := store.Table(tableOrders)
	lines := store.Table(tableLines)
	return store.Update(func() error {
		row := make([]byte, 16)
		binary.LittleEndian.PutUint64(row, customer)
		binary.LittleEndian.PutUint64(row[8:], uint64(len(items)))
		if err := orders.Insert(orderID, row); err != nil {
			return err
		}
		line := uint64(0)
		for item, qty := range items {
			// Read-modify-write the stock level.
			var have uint64
			buf := make([]byte, 8)
			found, err := stock.LookupField(item, 0, 8, buf)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("item %d does not exist", item)
			}
			have = binary.LittleEndian.Uint64(buf)
			if have < qty {
				return fmt.Errorf("item %d: want %d, have %d: %w", item, qty, have, errOutOfStock)
			}
			if _, err := stock.UpdateField(item, 0, u64(have-qty)); err != nil {
				return err
			}
			lrow := make([]byte, 16)
			binary.LittleEndian.PutUint64(lrow, item)
			binary.LittleEndian.PutUint64(lrow[8:], qty)
			if err := lines.Insert(orderID<<8|line, lrow); err != nil {
				return err
			}
			line++
		}
		return nil
	})
}

func main() {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    16 << 20,
		NVMBytes:     64 << 20,
		SSDBytes:     256 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	stock, err := store.CreateTable(tableStock, 32)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.CreateTable(tableOrders, 16); err != nil {
		log.Fatal(err)
	}
	if _, err := store.CreateTable(tableLines, 16); err != nil {
		log.Fatal(err)
	}

	// Load 1000 items with 10 units of stock each.
	const itemCount = 1000
	err = stock.BulkLoad(itemCount,
		func(i int) uint64 { return uint64(i + 1) },
		func(i int, dst []byte) {
			binary.LittleEndian.PutUint64(dst, 10)
			copy(dst[8:], fmt.Sprintf("item-%04d", i+1))
		}, 0.66)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// Enter orders. Order 3 asks for more than is in stock and must
	// leave no trace.
	ok, rejected := 0, 0
	ordersToPlace := []map[uint64]uint64{
		{1: 2, 7: 1},
		{1: 3, 9: 4},
		{1: 9}, // only 5 left: rejected
		{2: 1, 3: 1, 4: 1},
	}
	for i, items := range ordersToPlace {
		err := placeOrder(store, uint64(i+1), uint64(100+i), items)
		switch {
		case errors.Is(err, errOutOfStock):
			rejected++
			fmt.Printf("order %d rejected: %v\n", i+1, err)
		case err != nil:
			log.Fatal(err)
		default:
			ok++
		}
	}

	orderCount, _ := store.Table(tableOrders).Count()
	lineCount, _ := store.Table(tableLines).Count()
	fmt.Printf("placed %d orders (%d rejected); tables hold %d orders, %d lines\n",
		ok, rejected, orderCount, lineCount)

	// Stock of item 1: 10 - 2 - 3 = 5 (the rejected order left it alone).
	buf := make([]byte, 8)
	if _, err := stock.LookupField(1, 0, 8, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item 1 stock: %d\n", binary.LittleEndian.Uint64(buf))

	// The rejected order's id is free: no order row, no lines.
	if found, _ := store.Table(tableOrders).Lookup(3, make([]byte, 16)); found {
		log.Fatal("rejected order left a row behind")
	}
	fmt.Println("rejected order left no trace — rollback works")
}
