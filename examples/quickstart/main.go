// Quickstart: open a three-tier store, run transactions, survive a crash.
//
// This example walks through the public API end to end: creating a table,
// transactional inserts and updates, field-granular reads (the cache-line
// fast path of the reproduced paper), an injected power failure, and
// log-based recovery.
package main

import (
	"fmt"
	"log"

	"nvmstore"
)

func main() {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture:      nvmstore.ThreeTier,
		DRAMBytes:         16 << 20,
		NVMBytes:          64 << 20,
		SSDBytes:          256 << 20,
		StrictPersistence: true, // unflushed NVM writes vanish on crash
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("architecture:", store.Architecture())

	// A table of fixed 64-byte rows keyed by uint64.
	users, err := store.CreateTable(1, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Modifications run inside transactions. Update commits on success
	// and rolls back on error.
	row := make([]byte, 64)
	for i := uint64(1); i <= 100; i++ {
		copy(row, fmt.Sprintf("user-%03d", i))
		i := i
		if err := store.Update(func() error { return users.Insert(i, row) }); err != nil {
			log.Fatal(err)
		}
	}

	// Field-granular reads: only the probed keys and these 8 bytes move
	// from NVM to DRAM on the three-tier architecture.
	buf := make([]byte, 8)
	if _, err := users.LookupField(42, 0, 8, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("row 42 starts with %q\n", buf)

	// A transaction that is in flight when the power fails...
	store.Begin()
	copy(row, "doomed!!")
	if err := users.Insert(999, row); err != nil {
		log.Fatal(err)
	}
	// ... leaves no trace: its unflushed log records are torn away by
	// the crash (or rolled back, had they reached NVM); committed work
	// is replayed from the log.
	stats, err := store.CrashRestart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d committed tx replayed, %d in-flight rolled back\n", stats.Committed, stats.Losers)

	users = store.Table(1)
	count, err := users.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows after crash: %d (the doomed insert is gone)\n", count)

	m := store.Metrics()
	fmt.Printf("device traffic: %d NVM lines read, %d NVM line writes, %d SSD reads\n",
		m.NVMLinesRead, m.NVMTotalWrites, m.SSDPagesRead)
	fmt.Println("simulated device time:", store.SimulatedTime())
}
