package nvmstore

import (
	"sync"
	"sync/atomic"
	"time"
)

// maintainer is one shard's background maintenance loop: it performs
// incremental (fuzzy) checkpoints — bounded write-back rounds under
// short shard-lock acquisitions, then a WAL truncation once the dirty
// set is drained — and paces dirty write-back off the commit path, so
// no writer ever stalls on a full FlushAll.
//
// Two thresholds drive it (see MaintenanceOptions): past SoftFill the
// maintainer runs rounds until the log is truncated; past HardFill the
// write path additionally blocks new writers (PaceWriter) until a
// truncation lands, so appends can never reach wal.ErrLogFull. Writers
// only ever *set* the throttle (under the shard lock, where the fill
// reading is exact); only the maintainer clears it, after observing the
// fill back under the hard threshold.
type maintainer struct {
	s *ShardedStore
	i int

	mu sync.Mutex
	// cond signals throttled writers; broadcast when the throttle
	// clears or the store shuts down.
	cond *sync.Cond
	// throttled marks that the shard's log passed the hard-fill
	// threshold; PaceWriter blocks while it is set.
	throttled bool
	// stopped marks shutdown: PaceWriter returns immediately and the
	// loop exits.
	stopped bool

	// kick nudges the loop out of its tick wait when the write path
	// observes the soft threshold crossed (capacity 1; duplicate nudges
	// coalesce).
	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// throttles counts writers that blocked in PaceWriter at least
	// once — the backpressure events surfaced in Metrics.
	throttles atomic.Int64

	stopOnce sync.Once
}

func newMaintainer(s *ShardedStore, i int) *maintainer {
	mt := &maintainer{
		s:    s,
		i:    i,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	mt.cond = sync.NewCond(&mt.mu)
	return mt
}

// run is the maintenance goroutine: wake on the configured interval or
// on a nudge from the write path, then sweep the shard.
func (mt *maintainer) run() {
	defer close(mt.done)
	ticker := time.NewTicker(mt.s.shards[mt.i].e.Maintenance().Interval)
	defer ticker.Stop()
	for {
		select {
		case <-mt.stop:
			return
		case <-mt.kick:
		case <-ticker.C:
		}
		mt.sweep()
	}
}

// sweep runs checkpoint rounds while the shard needs them, one
// shard-lock acquisition per round so foreground operations interleave
// between rounds. It clears the writer throttle as soon as the fill is
// back under the hard threshold, and returns once the fill is under the
// soft threshold (usually via a truncation) or no further progress is
// possible.
func (mt *maintainer) sweep() {
	for {
		select {
		case <-mt.stop:
			return
		default:
		}
		var needed, over bool
		var pages int
		var truncated bool
		// Take the slot lock directly rather than via WithShard: the
		// maintainer decides the throttle from its own post-round
		// readings, and must not trip the write path's noteShard hook
		// (which would nudge-kick this loop into a spin when a
		// replication retention watermark refuses truncation).
		slot := &mt.s.slots[mt.i]
		slot.mu.Lock()
		st := mt.s.shards[mt.i]
		// Reclaim copy-on-write page versions no open snapshot can read
		// anymore; cheap when the version store is empty.
		st.e.Versions().Reclaim()
		var err error
		if st.e.NeedsMaintenance() {
			needed = true
			pages, truncated, err = st.e.CheckpointRound(0)
			over = st.e.OverHardFill()
		}
		slot.mu.Unlock()
		if !needed || err != nil {
			mt.setThrottle(false)
			return
		}
		mt.setThrottle(over)
		if !truncated && pages == 0 {
			// Clean pool but the truncation was refused (replication
			// retention watermark): more rounds cannot shrink the log.
			// Keep any throttle — the next sweep retries once the
			// watermark advances.
			return
		}
	}
}

// setThrottle engages or clears the writer throttle, waking blocked
// writers on clear.
func (mt *maintainer) setThrottle(on bool) {
	mt.mu.Lock()
	if mt.throttled != on {
		mt.throttled = on
		if !on {
			mt.cond.Broadcast()
		}
	}
	mt.mu.Unlock()
}

// engage sets the throttle without clearing it (the write path's side;
// only the maintainer clears), nudging the loop on the idle→throttled
// transition.
func (mt *maintainer) engage() {
	mt.mu.Lock()
	if mt.throttled {
		mt.mu.Unlock()
		return
	}
	mt.throttled = true
	mt.mu.Unlock()
	mt.nudge()
}

// nudge wakes the maintenance loop without blocking.
func (mt *maintainer) nudge() {
	select {
	case mt.kick <- struct{}{}:
	default:
	}
}

// pace blocks the calling writer while the throttle is engaged,
// counting the wait once per call. Must not be called with the shard
// lock held — the maintainer needs that lock to make the progress the
// writer is waiting for.
func (mt *maintainer) pace() {
	mt.mu.Lock()
	waited := false
	for mt.throttled && !mt.stopped {
		if !waited {
			waited = true
			mt.throttles.Add(1)
			mt.nudge()
		}
		mt.cond.Wait()
	}
	mt.mu.Unlock()
}

// shutdown stops the loop and releases any throttled writers. Safe to
// call more than once.
func (mt *maintainer) shutdown() {
	mt.stopOnce.Do(func() {
		close(mt.stop)
		mt.mu.Lock()
		mt.stopped = true
		mt.cond.Broadcast()
		mt.mu.Unlock()
		<-mt.done
	})
}

// startMaintenance launches one maintainer per shard and switches the
// engines to background mode (no inline checkpoint rounds on the commit
// path). NVMDirect needs none: it persists tuples in place and
// truncates the log per commit.
func (s *ShardedStore) startMaintenance() {
	s.maint = make([]*maintainer, len(s.shards))
	for i := range s.shards {
		s.shards[i].e.SetBackgroundMaintenance(true)
		mt := newMaintainer(s, i)
		s.maint[i] = mt
		go mt.run()
	}
}

// stopMaintenance stops every maintainer and releases throttled
// writers; idempotent.
func (s *ShardedStore) stopMaintenance() {
	for _, mt := range s.maint {
		if mt != nil {
			mt.shutdown()
		}
	}
}

// noteShard inspects shard i's log fill while its lock is held (every
// locked shard access funnels through here on unlock): past the hard
// threshold the writer throttle engages, past the soft threshold the
// maintainer gets a nudge. Without maintenance it is a no-op.
func (s *ShardedStore) noteShard(i int) {
	if s.maint == nil {
		return
	}
	mt := s.maint[i]
	if mt == nil {
		return
	}
	e := s.shards[i].e
	if e.OverHardFill() {
		mt.engage()
	} else if e.NeedsMaintenance() {
		mt.nudge()
	}
}

// PaceWriter blocks while shard i's write-ahead log sits past the
// hard-fill threshold, returning once background maintenance has
// truncated it (or the store is closing) — backpressure instead of
// wal.ErrLogFull. The sharded table's write paths call it internally;
// a serving layer driving shards through WithShard should call it
// before executing a write batch. It must not be called while holding
// the shard's lock, and it returns immediately when background
// maintenance is disabled.
func (s *ShardedStore) PaceWriter(i int) {
	if s.maint == nil || s.maint[i] == nil {
		return
	}
	s.maint[i].pace()
}

// WriterThrottles returns how many writers have been blocked at the
// hard log-fill threshold across all shards — the backpressure counter
// surfaced as nvmstore_ckpt_writer_throttles_total.
func (s *ShardedStore) WriterThrottles() int64 {
	var total int64
	for _, mt := range s.maint {
		if mt != nil {
			total += mt.throttles.Load()
		}
	}
	return total
}
