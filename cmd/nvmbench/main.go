// Command nvmbench regenerates the tables and figures of "Managing
// Non-Volatile Memory in Database Systems" (SIGMOD 2018).
//
// Usage:
//
//	nvmbench -list
//	nvmbench -experiment fig8
//	nvmbench -experiment all -scale 16 -ops 30000
//
// Capacities follow the paper's DRAM:NVM:SSD = 2:10:50 proportions, scaled
// by -scale (megabytes per "paper gigabyte"). Output is one aligned text
// table per experiment, with one column per system line of the original
// figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvmstore/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list available experiments")
		scaleMB    = flag.Int64("scale", 16, "megabytes per paper-gigabyte of capacity")
		ops        = flag.Int("ops", 30000, "measured operations per data point")
		warmup     = flag.Int("warmup", 0, "warm-up operations per data point (default: same as -ops)")
		quick      = flag.Bool("quick", false, "fewer sweep points for a fast smoke run")
		format     = flag.String("format", "table", "output format: table, csv, or chart")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Description)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "nvmbench: pick an experiment with -experiment <id> or -experiment all (-list shows ids)")
		os.Exit(2)
	}

	opts := bench.Options{
		Scale:  *scaleMB << 20,
		Ops:    *ops,
		Warmup: *warmup,
		Quick:  *quick,
	}
	var runs []bench.Experiment
	if *experiment == "all" {
		runs = bench.Experiments()
	} else {
		exp, err := bench.Lookup(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runs = []bench.Experiment{exp}
	}
	for _, exp := range runs {
		start := time.Now()
		res, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			res.FormatCSV(os.Stdout)
		case "chart":
			res.Chart(os.Stdout, 72, 18)
		default:
			res.Format(os.Stdout)
		}
		fmt.Printf("(%s finished in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
}
