// Command nvmbench regenerates the tables and figures of "Managing
// Non-Volatile Memory in Database Systems" (SIGMOD 2018).
//
// Usage:
//
//	nvmbench -list
//	nvmbench -experiment fig8
//	nvmbench -experiment figA1 -threads 4
//	nvmbench -experiment all -scale 16 -ops 30000
//	nvmbench -experiment figA1 -threads 4 -json -trace -http :6060
//	nvmbench -remote localhost:7070 -clients 4 -load
//	nvmbench -experiment repl -replicas 2 -json
//
// Capacities follow the paper's DRAM:NVM:SSD = 2:10:50 proportions, scaled
// by -scale (megabytes per "paper gigabyte"). Output is one aligned text
// table per experiment, with one column per system line of the original
// figure; -json additionally writes BENCH_<id>.json files for external
// plotting. -seed replaces the base seed of the YCSB random streams, so
// repeated runs draw different — but individually reproducible — keys.
//
// Remote mode (-remote addr) drives the YCSB mix against a running
// nvmserver over the wire protocol instead of an in-process engine,
// reporting wire-level round-trip percentiles alongside the server's
// engine histograms. -tracesample N stamps every Nth keyed request with
// a trace header; the server records a per-stage timeline for each and
// the run prints the p99 stage decomposition (reader dispatch, shard
// queue, execution, WAL flush, response write), also embedded in the
// -json output as "attribution". Combined with -experiment groupcommit it sweeps
// client pipeline depth instead, measuring the server's group-commit
// flush coalescing end to end.
//
// The repl experiment (-experiment repl) measures read-replica scaling:
// it builds an in-process cluster — a served primary, a background
// writer, and -replicas replicas fed over the replication protocol —
// and sweeps the replica count, reporting aggregate read throughput and
// ship→ack replication lag (p50/p99) per point; -json writes
// BENCH_repl.json.
//
// Fault injection (-faults spec) arms a deterministic injection plan on
// every engine an experiment builds, so any figure can be regenerated
// under device faults; the dedicated "faults" experiment sweeps the
// fault rate itself. Spec grammar: semicolon-separated
// kind:param=value,... rules plus an optional seed:N, e.g.
// "seed:7;ssd.read:p=0.001,transient=2;nvm.stall:p=0.01,stall=10us"
// (kinds and parameters are documented in internal/fault).
//
// Observability: -obs records per-tier latency histograms (printed as a
// table after each experiment and embedded in the JSON output); -trace
// additionally captures page-lifecycle events and writes them to
// TRACE_<id>.jsonl; -http serves expvar, net/http/pprof, and a /metrics
// JSON snapshot (refreshed once a second and after each experiment) for
// the duration of the run. -json and -trace accept a bare flag (current
// directory) or -json=dir / -trace=dir.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"nvmstore/internal/bench"
	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/remote"
)

func main() {
	os.Exit(run())
}

// dirFlag is an output-directory flag that may be given bare (meaning
// the current directory), as -flag=dir, or negated with -flag=false.
// An empty dir means the output is disabled.
type dirFlag struct{ dir string }

func (f *dirFlag) String() string   { return f.dir }
func (f *dirFlag) IsBoolFlag() bool { return true }
func (f *dirFlag) Set(s string) error {
	switch s {
	case "true":
		f.dir = "."
	case "false":
		f.dir = ""
	default:
		f.dir = s
	}
	return nil
}

// traceRingCap is the per-engine lifecycle-event ring size under
// -trace: the most recent 64k events per shard, ~2 MB each.
const traceRingCap = 1 << 16

// phaseBox is the shared mutable "what is running right now" behind the
// -http /metrics snapshot.
type phaseBox struct {
	mu    sync.Mutex
	phase string
}

func (p *phaseBox) set(s string) {
	p.mu.Lock()
	p.phase = s
	p.mu.Unlock()
}

func (p *phaseBox) get() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.phase
}

// run holds the real main body so deferred cleanup (notably stopping the
// CPU profile) executes before the process exits.
func run() int {
	var jsonDir, traceDir dirFlag
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list available experiments")
		scaleMB    = flag.Int64("scale", 16, "megabytes per paper-gigabyte of capacity")
		ops        = flag.Int("ops", 30000, "measured operations per data point")
		warmup     = flag.Int("warmup", 0, "warm-up operations per data point (default: same as -ops)")
		threads    = flag.Int("threads", 4, "maximum shard count for multi-threaded experiments (figA1)")
		quick      = flag.Bool("quick", false, "fewer sweep points for a fast smoke run")
		seed       = flag.Uint64("seed", 0, "base seed for the YCSB random streams (0: built-in default)")
		format     = flag.String("format", "table", "output format: table, csv, or chart")
		observe    = flag.Bool("obs", false, "record per-tier latency histograms")
		faultSpec  = flag.String("faults", "", `fault-injection spec armed on every engine, e.g. "seed:7;ssd.read:p=0.001,transient=2;nvm.stall:p=0.01,stall=10us" (see internal/fault)`)
		httpAddr   = flag.String("http", "", "serve expvar, pprof, and /metrics on this address during the run")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		remoteAddr = flag.String("remote", "", "drive a running nvmserver at this address instead of in-process engines")
		clients    = flag.Int("clients", 4, "remote mode: concurrent pipelined client workers")
		depth      = flag.Int("depth", 16, "remote mode: pipeline depth per worker")
		replicas   = flag.Int("replicas", 2, "repl experiment: largest replica count swept")
		rows       = flag.Int("rows", 10000, "remote mode: key-space size")
		writePct   = flag.Int("writepct", 5, "remote mode: percentage of operations that are PUTs")
		load       = flag.Bool("load", false, "remote mode: bulk-load the key space before measuring")
		retries    = flag.Int("retries", 0, "remote mode: per-request retry budget for transport failures (0: client default, negative: fail fast)")
		traceSamp  = flag.Int("tracesample", 0, "remote mode: stamp every Nth keyed request with a trace header and report the server's p99 stage decomposition (0: off, 1: every request)")
	)
	flag.Var(&jsonDir, "json", "write BENCH_<id>.json files (bare flag: current directory, or -json=dir)")
	flag.Var(&traceDir, "trace", "record lifecycle events and write TRACE_<id>.jsonl (bare flag: current directory, or -trace=dir)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Description)
		}
		// Cluster experiments dispatch outside the single-store registry.
		fmt.Printf("  %-6s %s\n", "repl", "read-replica scaling over WAL-shipping replication (not in the paper)")
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	// The repl experiment builds its own in-process cluster — a served
	// primary plus a sweep of replicas — so it takes no -remote address.
	if *experiment == "repl" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		ro := remote.ReplicationOptions{MaxReplicas: *replicas, Seed: *seed}
		// The remote-mode flag defaults (4 clients, depth 16, 10k rows)
		// are sized for driving one server; the experiment's own defaults
		// apply unless the flag was given explicitly.
		if set["clients"] {
			ro.Readers = *clients
		}
		if set["depth"] {
			ro.Depth = *depth
		}
		if set["rows"] {
			ro.Rows = *rows
		}
		if set["ops"] {
			ro.Ops = *ops
		}
		if set["warmup"] {
			ro.Warmup = *warmup
		}
		if *quick && !set["ops"] {
			ro.Ops = 12000
		}
		start := time.Now()
		res, err := remote.Replication(ro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: repl: %v\n", err)
			return 1
		}
		emit(res, *format)
		if jsonDir.dir != "" {
			path, err := res.SaveJSON(jsonDir.dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nvmbench: repl: %v\n", err)
				return 1
			}
			fmt.Printf("(wrote %s)\n", path)
		}
		fmt.Printf("(repl finished in %v)\n", time.Since(start).Round(time.Millisecond))
		return 0
	}

	if *remoteAddr != "" {
		ro := remote.Options{
			Addr:        *remoteAddr,
			Clients:     *clients,
			Depth:       *depth,
			Rows:        *rows,
			Load:        *load,
			WritePct:    *writePct,
			Ops:         *ops,
			Warmup:      *warmup,
			Seed:        *seed,
			Retries:     *retries,
			TraceSample: *traceSamp,
		}
		// -remote -experiment groupcommit is the serving-layer variant
		// of the group-commit sweep: pipeline depth, not -depth, is the
		// swept variable there.
		if *experiment == "groupcommit" {
			return runRemoteWith(remote.GroupCommit, ro, *format, jsonDir.dir)
		}
		if *experiment != "" {
			fmt.Fprintf(os.Stderr, "nvmbench: -remote runs the wire workload; only -experiment groupcommit has a remote variant (got %q)\n", *experiment)
			return 2
		}
		return runRemoteWith(remote.Run, ro, *format, jsonDir.dir)
	}

	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "nvmbench: pick an experiment with -experiment <id> or -experiment all (-list shows ids), or a server with -remote addr")
		return 2
	}

	opts := bench.Options{
		Scale:   *scaleMB << 20,
		Ops:     *ops,
		Warmup:  *warmup,
		Threads: *threads,
		Quick:   *quick,
		Seed:    *seed,
	}
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -faults: %v\n", err)
			return 2
		}
		opts.Faults = plan
	}
	// -trace implies -obs (events without histograms would be half a
	// picture); -http implies -obs so /metrics has something to show.
	if *observe || traceDir.dir != "" || *httpAddr != "" {
		sink := &bench.ObsSink{}
		if traceDir.dir != "" {
			sink.TraceCap = traceRingCap
		}
		opts.Obs = sink
	}

	var phase phaseBox
	var dbg *obs.DebugServer
	if *httpAddr != "" {
		var err error
		dbg, err = obs.StartDebug(*httpAddr, func() any {
			return struct {
				Phase   string    `json:"phase"`
				Updated string    `json:"updated"`
				Latency []obs.Row `json:"latency"`
			}{phase.get(), time.Now().Format(time.RFC3339), opts.Obs.Rows()}
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -http: %v\n", err)
			return 2
		}
		defer dbg.Close()
		fmt.Printf("(serving /metrics, /debug/vars, and /debug/pprof/ on %s)\n", dbg.Addr())
	}

	var runs []bench.Experiment
	if *experiment == "all" {
		runs = bench.Experiments()
	} else {
		exp, err := bench.Lookup(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runs = []bench.Experiment{exp}
	}
	exitCode := 0
	for _, exp := range runs {
		if dbg != nil {
			phase.set(exp.ID)
			dbg.Publish()
		}
		start := time.Now()
		res, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", exp.ID, err)
			exitCode = 1
			break
		}
		emit(res, *format)
		if jsonDir.dir != "" {
			path, err := res.SaveJSON(jsonDir.dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", exp.ID, err)
				exitCode = 1
				break
			}
			fmt.Printf("(wrote %s)\n", path)
		}
		if traceDir.dir != "" {
			path := filepath.Join(traceDir.dir, "TRACE_"+res.Tag()+".jsonl")
			n, err := saveTrace(opts.Obs, path, exp.ID)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", exp.ID, err)
				exitCode = 1
				break
			}
			fmt.Printf("(wrote %s, %d events)\n", path, n)
		}
		if dbg != nil {
			dbg.Publish()
		}
		fmt.Printf("(%s finished in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -memprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -memprofile: %v\n", err)
			return 2
		}
	}
	return exitCode
}

// emit prints one result in the chosen format.
func emit(res bench.Result, format string) {
	switch format {
	case "csv":
		res.FormatCSV(os.Stdout)
	case "chart":
		res.Chart(os.Stdout, 72, 18)
		res.FormatLatency(os.Stdout)
		res.FormatAttribution(os.Stdout)
	default:
		res.Format(os.Stdout)
		res.FormatAttribution(os.Stdout)
	}
}

// runRemoteWith drives a running nvmserver through the given remote
// runner and prints the result.
func runRemoteWith(run func(remote.Options) (bench.Result, error), o remote.Options, format, jsonDir string) int {
	start := time.Now()
	res, err := run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmbench: -remote %s: %v\n", o.Addr, err)
		return 1
	}
	emit(res, format)
	if jsonDir != "" {
		path, err := res.SaveJSON(jsonDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: remote: %v\n", err)
			return 1
		}
		fmt.Printf("(wrote %s)\n", path)
	}
	fmt.Printf("(remote run finished in %v)\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// saveTrace dumps the sink's event rings (all shards, all pids) as
// JSONL to path.
func saveTrace(sink *bench.ObsSink, path, label string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := sink.WriteTrace(f, label, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}
