// Command nvmbench regenerates the tables and figures of "Managing
// Non-Volatile Memory in Database Systems" (SIGMOD 2018).
//
// Usage:
//
//	nvmbench -list
//	nvmbench -experiment fig8
//	nvmbench -experiment figA1 -threads 4
//	nvmbench -experiment all -scale 16 -ops 30000
//
// Capacities follow the paper's DRAM:NVM:SSD = 2:10:50 proportions, scaled
// by -scale (megabytes per "paper gigabyte"). Output is one aligned text
// table per experiment, with one column per system line of the original
// figure; -json additionally writes BENCH_<experiment>.json files for
// external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nvmstore/internal/bench"
)

func main() {
	os.Exit(run())
}

// run holds the real main body so deferred cleanup (notably stopping the
// CPU profile) executes before the process exits.
func run() int {
	var (
		experiment = flag.String("experiment", "", "experiment id (see -list), or \"all\"")
		list       = flag.Bool("list", false, "list available experiments")
		scaleMB    = flag.Int64("scale", 16, "megabytes per paper-gigabyte of capacity")
		ops        = flag.Int("ops", 30000, "measured operations per data point")
		warmup     = flag.Int("warmup", 0, "warm-up operations per data point (default: same as -ops)")
		threads    = flag.Int("threads", 4, "maximum shard count for multi-threaded experiments (figA1)")
		quick      = flag.Bool("quick", false, "fewer sweep points for a fast smoke run")
		format     = flag.String("format", "table", "output format: table, csv, or chart")
		jsonDir    = flag.String("json", "", "also write BENCH_<experiment>.json files to this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-6s %s\n", e.ID, e.Description)
		}
		return 0
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "nvmbench: pick an experiment with -experiment <id> or -experiment all (-list shows ids)")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	opts := bench.Options{
		Scale:   *scaleMB << 20,
		Ops:     *ops,
		Warmup:  *warmup,
		Threads: *threads,
		Quick:   *quick,
	}
	var runs []bench.Experiment
	if *experiment == "all" {
		runs = bench.Experiments()
	} else {
		exp, err := bench.Lookup(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runs = []bench.Experiment{exp}
	}
	exitCode := 0
	for _, exp := range runs {
		start := time.Now()
		res, err := exp.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", exp.ID, err)
			exitCode = 1
			break
		}
		switch *format {
		case "csv":
			res.FormatCSV(os.Stdout)
		case "chart":
			res.Chart(os.Stdout, 72, 18)
		default:
			res.Format(os.Stdout)
		}
		if *jsonDir != "" {
			path, err := res.SaveJSON(*jsonDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", exp.ID, err)
				exitCode = 1
				break
			}
			fmt.Printf("(wrote %s)\n", path)
		}
		fmt.Printf("(%s finished in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -memprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: -memprofile: %v\n", err)
			return 2
		}
	}
	return exitCode
}
