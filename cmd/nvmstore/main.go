// Command nvmstore runs workloads against a chosen storage architecture
// and reports throughput and device traffic.
//
// Usage:
//
//	nvmstore ycsb  -arch 3tier -rows 50000 -preset C -ops 100000
//	nvmstore tpcc  -arch direct -warehouses 4 -tx 20000
//	nvmstore archs
//
// Unlike cmd/nvmbench, which regenerates the paper's figures, this tool is
// for ad-hoc exploration: pick an architecture, a workload, and capacities,
// and see what the storage layer does.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/engine"
	"nvmstore/internal/tpcc"
	"nvmstore/internal/ycsb"
)

var archNames = map[string]core.Topology{
	"3tier":  core.ThreeTier,
	"mem":    core.MemOnly,
	"direct": core.DirectNVM,
	"basic":  core.DRAMNVM,
	"ssd":    core.DRAMSSD,
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ycsb":
		runYCSB(os.Args[2:])
	case "tpcc":
		runTPCC(os.Args[2:])
	case "archs":
		for name, topo := range archNames {
			fmt.Printf("  %-8s %s\n", name, topo)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nvmstore <command> [flags]

commands:
  ycsb    run a YCSB preset workload (flags: -arch -rows -preset -ops -dram -nvm -ssd)
  tpcc    run the TPC-C mix (flags: -arch -warehouses -tx -dram -nvm -ssd)
  archs   list storage architectures`)
	os.Exit(2)
}

// capacityFlags registers the shared device-capacity flags (in MB).
func capacityFlags(fs *flag.FlagSet) (arch *string, dram, nvmMB, ssdMB *int64) {
	arch = fs.String("arch", "3tier", "architecture: 3tier, mem, direct, basic, ssd")
	dram = fs.Int64("dram", 64, "DRAM buffer pool in MB (0 = unlimited)")
	nvmMB = fs.Int64("nvm", 320, "NVM capacity in MB")
	ssdMB = fs.Int64("ssd", 1600, "SSD capacity in MB")
	return
}

func openEngine(arch string, dram, nvmMB, ssdMB int64) *engine.Engine {
	topo, ok := archNames[arch]
	if !ok {
		fmt.Fprintf(os.Stderr, "nvmstore: unknown architecture %q (see `nvmstore archs`)\n", arch)
		os.Exit(2)
	}
	cfg := engine.DefaultConfig(topo, dram<<20, nvmMB<<20, ssdMB<<20)
	e, err := engine.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmstore:", err)
		os.Exit(1)
	}
	return e
}

func report(e *engine.Engine, ops int, wall, sim time.Duration) {
	total := wall + sim
	fmt.Printf("\n%d transactions in %v wall + %v simulated device time\n", ops, wall.Round(time.Millisecond), sim.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f tx/s (combined time)\n", float64(ops)/total.Seconds())
	st := e.Manager().Stats()
	fmt.Printf("buffer: %d fixes (%d swizzled), %d DRAM evictions, %d NVM admissions, %d NVM evictions\n",
		st.Fixes, st.SwizzleHits, st.DRAMEvictions, st.NVMAdmissions, st.NVMEvictions)
	nd := e.Manager().NVM().Stats()
	fmt.Printf("NVM: %d lines read (%d charged), %d lines flushed, total line writes %d\n",
		nd.LinesRead, nd.LinesReadCharged, nd.LinesFlushed, e.Manager().NVM().TotalWrites())
	if ssd := e.Manager().SSD(); ssd != nil {
		sd := ssd.Stats()
		fmt.Printf("SSD: %d pages read, %d pages written\n", sd.PagesRead, sd.PagesWritten)
	}
	ld := e.Log().Stats()
	fmt.Printf("log: %d records, %d commits, %d flushes, %d truncations\n", ld.Records, ld.Commits, ld.Flushes, ld.Truncates)
}

func runYCSB(args []string) {
	fs := flag.NewFlagSet("ycsb", flag.ExitOnError)
	arch, dram, nvmMB, ssdMB := capacityFlags(fs)
	rows := fs.Int("rows", 50000, "rows to load (1 kB each)")
	preset := fs.String("preset", "C", "YCSB workload preset: A, B, C, D, or E")
	ops := fs.Int("ops", 100000, "transactions to run")
	_ = fs.Parse(args)

	e := openEngine(*arch, *dram, *nvmMB, *ssdMB)
	fmt.Printf("loading %d YCSB rows into %s...\n", *rows, e.Topology())
	w, err := ycsb.Load(e, *rows, btree.LayoutSorted)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmstore: load:", err)
		os.Exit(1)
	}
	p := ycsb.Preset((*preset)[0])
	e.Manager().ResetStats()
	e.Manager().NVM().ResetStats()
	start := time.Now()
	simStart := e.Clock().Ns()
	for i := 0; i < *ops; i++ {
		if err := w.Run(p); err != nil {
			fmt.Fprintln(os.Stderr, "nvmstore:", err)
			os.Exit(1)
		}
	}
	report(e, *ops, time.Since(start), time.Duration(e.Clock().Ns()-simStart))
}

func runTPCC(args []string) {
	fs := flag.NewFlagSet("tpcc", flag.ExitOnError)
	arch, dram, nvmMB, ssdMB := capacityFlags(fs)
	warehouses := fs.Int("warehouses", 2, "TPC-C scale factor")
	items := fs.Int("items", 10000, "item table size")
	customers := fs.Int("customers", 300, "customers per district")
	txCount := fs.Int("tx", 20000, "transactions to run")
	_ = fs.Parse(args)

	e := openEngine(*arch, *dram, *nvmMB, *ssdMB)
	fmt.Printf("loading TPC-C with %d warehouses into %s...\n", *warehouses, e.Topology())
	w, err := tpcc.New(e, tpcc.Config{
		Warehouses:               *warehouses,
		Items:                    *items,
		CustomersPerDistrict:     *customers,
		InitialOrdersPerDistrict: *customers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvmstore: load:", err)
		os.Exit(1)
	}
	e.Manager().ResetStats()
	e.Manager().NVM().ResetStats()
	start := time.Now()
	simStart := e.Clock().Ns()
	for i := 0; i < *txCount; i++ {
		if err := w.NextTransaction(); err != nil {
			fmt.Fprintln(os.Stderr, "nvmstore:", err)
			os.Exit(1)
		}
	}
	wall := time.Since(start)
	sim := time.Duration(e.Clock().Ns() - simStart)
	st := w.Stats()
	fmt.Printf("mix: %d new-order (%d rolled back), %d payment, %d order-status, %d delivery, %d stock-level\n",
		st.NewOrder, st.NewOrderRbk, st.Payment, st.OrderStatus, st.Delivery, st.StockLevel)
	if err := w.VerifyConsistency(); err != nil {
		fmt.Fprintln(os.Stderr, "nvmstore: CONSISTENCY VIOLATION:", err)
		os.Exit(1)
	}
	fmt.Println("consistency check: ok")
	report(e, *txCount, wall, sim)
}
