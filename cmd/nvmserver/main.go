// Command nvmserver serves a sharded nvmstore over TCP, speaking the
// binary protocol of internal/wire. It is the network face of the
// paper's three-tier storage engine: N shard-per-core stores behind a
// concurrent, pipelined request layer (internal/server).
//
// Usage:
//
//	nvmserver                                # 4 three-tier shards on :7070
//	nvmserver -addr :7070 -shards 8 -arch three-tier -scale 16
//	nvmserver -obs -http :6060               # with engine histograms + debug HTTP
//	nvmserver -http :6060 -tracering 1024    # larger trace flight recorder
//
// With -http, /metrics serves Prometheus text-format counters, gauges,
// and latency histograms; /metrics.json the raw STATS document; /trace
// the flight recorder of traced request timelines (see nvmbench
// -tracesample) with the p99 stage attribution.
//
//	nvmserver -faults "seed:7;ssd.read:p=0.001,transient=2;net.drop:p=0.0005"
//
// Replication (see internal/repl and DESIGN.md §12): every server can
// act as a log-shipping primary — replicas subscribe over the same
// port. -replicaof makes this server a read replica of a running
// primary: it bootstraps (snapshot + log catch-up), serves reads with
// the staleness-bound WAIT barrier, and rejects writes with a
// READONLY-classified error until promoted. -promote N is a client
// action, not a serving mode: it sends a PROMOTE for epoch N to the
// server at -addr and exits — sent to a replica it promotes it, sent to
// the old primary it fences it (writes then fail with FENCED so clients
// fail over). -syncreplicas K holds write acks until K replicas
// acknowledged (semi-synchronous replication).
//
//	nvmserver -addr :7070                          # primary
//	nvmserver -addr :7071 -replicaof localhost:7070  # read replica
//	nvmserver -promote 2 -addr localhost:7071        # fail over to it
//
// Capacities follow the paper's DRAM:NVM:SSD = 2:10:50 proportions,
// scaled by -scale (megabytes per "paper gigabyte") and split across
// the shards. One table (-table, rows of -rowsize bytes) is created at
// startup; clients address it by id.
//
// SIGINT/SIGTERM trigger a graceful drain: the server stops accepting,
// half-closes every connection, answers everything already in flight,
// then closes the store (flushing the log tails; -checkpoint-on-close
// additionally writes back all dirty pages). Every response a client
// received before the drain is durable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/repl"
	"nvmstore/internal/server"
)

// netFaultSite is the injection-site salt of the server's network-fault
// injector; shard i's device injectors use sites derived from i, so a
// large salt keeps the streams disjoint.
const netFaultSite = 1 << 32

// architectures maps the -arch flag values.
var architectures = map[string]nvmstore.Architecture{
	"three-tier":  nvmstore.ThreeTier,
	"main-memory": nvmstore.MainMemory,
	"nvm-direct":  nvmstore.NVMDirect,
	"basic-nvm":   nvmstore.BasicNVMBuffer,
	"ssd-buffer":  nvmstore.SSDBuffer,
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7070", "TCP address to serve the wire protocol on")
		shards     = flag.Int("shards", 4, "number of shard-per-core stores")
		arch       = flag.String("arch", "three-tier", "storage architecture: three-tier, main-memory, nvm-direct, basic-nvm, or ssd-buffer")
		scaleMB    = flag.Int64("scale", 16, "megabytes per paper-gigabyte of capacity (DRAM:NVM:SSD = 2:10:50)")
		tableID    = flag.Uint64("table", 1, "id of the table created at startup")
		rowSize    = flag.Int("rowsize", 1000, "row size in bytes of the startup table")
		maxConns   = flag.Int("maxconns", 64, "maximum concurrently served connections")
		commitB    = flag.Int("commitbatch", 0, "max autocommit writes coalesced into one WAL flush per shard (0: store default, 1: disable group commit)")
		commitD    = flag.Duration("commitdelay", 0, "max simulated time a committed write may wait for the group flush (0: no bound, size/idleness decide)")
		observe    = flag.Bool("obs", false, "record engine latency histograms (reported via STATS and /metrics)")
		httpAddr   = flag.String("http", "", "serve /metrics (Prometheus), /metrics.json, /trace, /debug/vars, and /debug/pprof/ on this address")
		traceRing  = flag.Int("tracering", 0, "flight-recorder reservoir size for traced request timelines (0: server default)")
		traceSlow  = flag.Int("traceslow", 0, "slowest-N traced timelines kept alongside the reservoir (0: server default)")
		checkpoint = flag.Bool("checkpoint-on-close", false, "write back all dirty pages on shutdown so the next start recovers instantly")
		faultSpec  = flag.String("faults", "", `fault-injection spec armed on every shard's devices and on the response path, e.g. "seed:7;ssd.read:p=0.001,transient=2;net.drop:p=0.0005" (see internal/fault)`)
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before connections are severed")
		maintIv    = flag.Duration("maint-interval", 0, "background-maintenance tick per shard (0: store default; negative: disable background maintenance)")
		maintBatch = flag.Int("maint-batch", 0, "max dirty pages written back per maintenance round (0: store default)")
		maintSoft  = flag.Float64("maint-softfill", 0, "log-fill fraction at which paced write-back starts (0: store default)")
		maintHard  = flag.Float64("maint-hardfill", 0, "log-fill fraction past which writers are throttled until truncation (0: store default)")
		replicaOf  = flag.String("replicaof", "", "serve as a read replica of the primary at this address (writes rejected as READONLY until promoted)")
		promote    = flag.Uint64("promote", 0, "send a PROMOTE for this epoch to the server at -addr and exit (promotes a replica; fences the old primary)")
		syncRepl   = flag.Int("syncreplicas", 0, "hold write acks until this many replicas acknowledged (0: asynchronous replication)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "nvmserver: ", log.LstdFlags)

	// -promote is a one-shot client action against a running server, not
	// a serving mode: no store is opened here.
	if *promote > 0 {
		cl, err := client.Dial(*addr, client.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmserver: -promote: dial %s: %v\n", *addr, err)
			return 1
		}
		defer cl.Close()
		applied, err := cl.Promote(*promote)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmserver: -promote: %v\n", err)
			return 1
		}
		if applied != nil {
			fmt.Printf("promoted %s to primary at epoch %d; serving from applied LSNs %v\n", *addr, *promote, applied)
		} else {
			fmt.Printf("fenced %s at epoch %d; it now rejects writes\n", *addr, *promote)
		}
		return 0
	}

	a, ok := architectures[*arch]
	if !ok {
		fmt.Fprintf(os.Stderr, "nvmserver: unknown -arch %q (try three-tier, main-memory, nvm-direct, basic-nvm, ssd-buffer)\n", *arch)
		return 2
	}
	if *tableID == repl.MetaTable {
		fmt.Fprintf(os.Stderr, "nvmserver: -table %#x is reserved for replication metadata\n", repl.MetaTable)
		return 2
	}
	scale := *scaleMB << 20
	opts := nvmstore.Options{
		Architecture:      a,
		DRAMBytes:         2 * scale,
		NVMBytes:          10 * scale,
		SSDBytes:          50 * scale,
		Observe:           *observe,
		CheckpointOnClose: *checkpoint,
		CommitBatch:       *commitB,
		CommitDelay:       *commitD,
		Maintenance: nvmstore.MaintenanceOptions{
			Interval: *maintIv,
			Batch:    *maintBatch,
			SoftFill: *maintSoft,
			HardFill: *maintHard,
		},
	}
	switch a {
	case nvmstore.MainMemory:
		opts.DRAMBytes, opts.SSDBytes = 0, 0 // unlimited DRAM, no SSD
	case nvmstore.NVMDirect:
		opts.DRAMBytes, opts.SSDBytes = 0, 0
	case nvmstore.BasicNVMBuffer:
		opts.SSDBytes = 0
	}
	store, err := nvmstore.OpenSharded(*shards, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvmserver: open store: %v\n", err)
		return 1
	}
	if _, err := store.CreateTable(*tableID, *rowSize); err != nil {
		fmt.Fprintf(os.Stderr, "nvmserver: create table: %v\n", err)
		return 1
	}

	srvOpts := server.Options{
		MaxConns:  *maxConns,
		Logf:      logger.Printf,
		TraceRing: *traceRing,
		TraceSlow: *traceSlow,
		// Every server carries a replication source: it costs nothing
		// until a replica subscribes (the WAL taps install lazily), and it
		// lets a promoted replica feed its own replicas at the new epoch.
		Repl: repl.NewSource(store, repl.SourceOptions{SyncReplicas: *syncRepl}),
	}
	var replica *repl.Replica
	if *replicaOf != "" {
		replica, err = repl.NewReplica(store, repl.ReplicaOptions{
			Primary: *replicaOf,
			Logf:    logger.Printf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmserver: -replicaof: %v\n", err)
			return 1
		}
		srvOpts.Replica = replica
	}
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmserver: -faults: %v\n", err)
			return 2
		}
		store.InjectFaults(plan)
		// The network injector gets a site far above any shard's device
		// sites so its probability stream is uncorrelated with theirs.
		srvOpts.Faults = plan.Injector(netFaultSite)
		logger.Printf("fault injection armed: %s", *faultSpec)
	}
	srv := server.New(store, srvOpts)

	if *httpAddr != "" {
		trace := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(srv.TraceSnapshot())
		})
		dbg, err := obs.StartDebug(*httpAddr, func() any { return srv.Stats() },
			obs.Endpoint{Path: "/metrics", Handler: obs.PromHandler(srv.WritePrometheus)},
			obs.Endpoint{Path: "/trace", Handler: trace})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmserver: -http: %v\n", err)
			return 1
		}
		defer dbg.Close()
		logger.Printf("debug endpoints on http://%s (/metrics Prometheus, /metrics.json, /trace, /debug/vars, /debug/pprof/)", dbg.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	role := "primary-capable"
	if replica != nil {
		role = "read replica of " + *replicaOf
	}
	logger.Printf("%s: %d × %s shards, table %d (%d-byte rows), %s, serving on %s",
		store.Shard(0).Architecture(), *shards, fmtBytes(opts.NVMBytes), *tableID, *rowSize, role, *addr)

	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmserver: serve: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		stop()
		logger.Printf("draining (budget %v)...", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(dctx)
		cancel()
		if err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
		<-errc // Serve has returned once Shutdown closed the listener
	}
	if replica != nil {
		// Stop the feed before the store goes away; the last applied
		// position is durable and the next start resumes from it.
		replica.Close()
	}
	if err := store.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "nvmserver: close store: %v\n", err)
		return 1
	}
	logger.Printf("store closed; all acknowledged writes durable")
	return 0
}

// fmtBytes renders a capacity for the startup banner.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB-NVM", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB-NVM", b>>20)
	default:
		return fmt.Sprintf("%dB-NVM", b)
	}
}
