package nvmstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"
)

// snapRow builds a row whose first 8 bytes carry a little-endian
// generation stamp, so a scan can tell which version of a key it saw.
func snapRow(key, gen uint64, size int) []byte {
	row := make([]byte, size)
	binary.LittleEndian.PutUint64(row, gen)
	for i := 8; i < size; i++ {
		row[i] = byte(key) + byte(gen) + byte(i)
	}
	return row
}

// TestSnapshotFrozenPrefix opens a snapshot, then updates every row and
// inserts new keys behind it. The snapshot scan must keep returning the
// pre-snapshot generation for every original key, must never surface the
// born-after keys, and two scans of the same snapshot must be identical.
func TestSnapshotFrozenPrefix(t *testing.T) {
	s := openShardedStore(t, 2)
	defer s.Close()
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 600
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, snapRow(k, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	for _, lsn := range sn.LSNs() {
		if lsn == 0 {
			t.Fatal("snapshot pinned a zero commit LSN")
		}
	}

	// Mutate everything behind the snapshot: bump every original row to
	// generation 2 and insert a tail of born-after keys.
	for k := uint64(0); k < rows; k++ {
		if err := table.Put(k, snapRow(k, 2, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(rows); k < rows+200; k++ {
		if err := table.Insert(k, snapRow(k, 2, 64)); err != nil {
			t.Fatal(err)
		}
	}

	scan := func() map[uint64]uint64 {
		got := make(map[uint64]uint64, rows)
		err := table.ScanSnapshot(sn, 0, 0, 0, 64, func(k uint64, row []byte) bool {
			got[k] = binary.LittleEndian.Uint64(row)
			return true
		})
		if err != nil {
			t.Fatalf("snapshot scan: %v", err)
		}
		return got
	}
	first := scan()
	if len(first) != rows {
		t.Fatalf("snapshot scan saw %d keys, want %d (born-after keys must be invisible)", len(first), rows)
	}
	for k, gen := range first {
		if k >= rows {
			t.Fatalf("snapshot scan surfaced born-after key %d", k)
		}
		if gen != 1 {
			t.Fatalf("key %d: snapshot saw generation %d, want the pre-snapshot generation 1", k, gen)
		}
	}
	second := scan()
	if len(second) != len(first) {
		t.Fatalf("repeated scans of one snapshot disagree: %d vs %d keys", len(second), len(first))
	}
	// The live table meanwhile serves the new world.
	buf := make([]byte, 64)
	if found, err := table.Lookup(5, buf); err != nil || !found {
		t.Fatalf("live lookup: found=%v err=%v", found, err)
	}
	if gen := binary.LittleEndian.Uint64(buf); gen != 2 {
		t.Fatalf("live read saw generation %d, want 2", gen)
	}
}

// TestSnapshotConcurrentWithWritersAndMaintainer races snapshot scans
// against writer goroutines and the background maintainer. Run under
// -race this checks the whole read path's locking discipline; the
// assertions check that each scan sees a self-consistent frozen prefix
// (every original key exactly once, at some single observed generation
// per key never newer than the moment the scan finished) and that all
// saved versions are reclaimed once the snapshots close.
func TestSnapshotConcurrentWithWritersAndMaintainer(t *testing.T) {
	s := openMaintStore(t, 2, MaintenanceOptions{Interval: time.Millisecond, SoftFill: 0.02, HardFill: 0.5})
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 400
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, snapRow(k, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := uint64(2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := uint64(w); k < rows; k += 2 {
					if err := table.Put(k, snapRow(k, gen, 64)); err != nil {
						t.Errorf("update %d: %v", k, err)
						return
					}
				}
				gen++
			}
		}(w)
	}

	for i := 0; i < 20; i++ {
		sn, err := s.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		// A write behind the open snapshot deterministically forces at
		// least one copy-on-write image, whatever the goroutine timing.
		if err := table.Put(uint64(i), snapRow(uint64(i), 100+uint64(i), 64)); err != nil {
			t.Fatalf("put behind snapshot %d: %v", i, err)
		}
		seen := make(map[uint64]uint64, rows)
		err = table.ScanSnapshot(sn, 0, 0, 0, 64, func(k uint64, row []byte) bool {
			if _, dup := seen[k]; dup {
				t.Errorf("snapshot %d: key %d visited twice", i, k)
			}
			seen[k] = binary.LittleEndian.Uint64(row)
			return true
		})
		sn.Close()
		if err != nil {
			t.Fatalf("snapshot scan %d: %v", i, err)
		}
		if len(seen) != rows {
			t.Fatalf("snapshot %d saw %d keys, want %d", i, len(seen), rows)
		}
		for k, gen := range seen {
			if gen < 1 {
				t.Fatalf("snapshot %d: key %d has unwritten generation %d", i, k, gen)
			}
		}
	}
	close(stop)
	wg.Wait()

	m := s.Metrics()
	if m.Read.SnapshotReads == 0 {
		t.Fatal("no snapshot reads counted")
	}
	if m.Read.VersionsSaved == 0 {
		t.Fatal("writers behind open snapshots saved no copy-on-write images")
	}
	if m.Read.VersionsLive != 0 {
		t.Fatalf("%d versions still live after every snapshot closed (saved %d, reclaimed %d)",
			m.Read.VersionsLive, m.Read.VersionsSaved, m.Read.VersionsReclaimed)
	}
	if m.Read.ActiveSnapshots != 0 {
		t.Fatalf("%d snapshots still registered as active", m.Read.ActiveSnapshots)
	}
}

// TestSnapshotWritersNotBlockedByScan parks a snapshot scan in the
// middle of its callback and proves writers still commit: the scan holds
// no shard lock while the caller consumes rows, so a slow reader cannot
// throttle the write path.
func TestSnapshotWritersNotBlockedByScan(t *testing.T) {
	s := openShardedStore(t, 2)
	defer s.Close()
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 300
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, snapRow(k, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	paused := make(chan struct{})  // closed once the scan reaches its first row
	release := make(chan struct{}) // closed once the writes below committed
	done := make(chan error, 1)
	go func() {
		n := 0
		done <- table.ScanSnapshot(sn, 0, 0, 0, 64, func(uint64, []byte) bool {
			if n == 0 {
				close(paused)
				<-release
			}
			n++
			return true
		})
	}()
	<-paused
	// The scan is mid-flight and parked. Every write must still commit
	// promptly; a deadlock here trips the test timeout.
	for k := uint64(0); k < rows; k++ {
		if err := table.Put(k, snapRow(k, 9, 64)); err != nil {
			t.Fatalf("update %d while scan parked: %v", k, err)
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked scan failed: %v", err)
	}
}

// TestOptimisticLookupRetry is the regression test for the seqlock-style
// point-read fast path: a cached read must be invalidated by any write
// to its page, so a Lookup after an Update can never serve the stale
// cached row.
func TestOptimisticLookupRetry(t *testing.T) {
	s := openShardedStore(t, 2)
	defer s.Close()
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 128
	for k := uint64(0); k < rows; k++ {
		if err := table.Insert(k, snapRow(k, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 64)
	// First lookup fills the read cache, the second must hit it.
	for i := 0; i < 2; i++ {
		if found, err := table.Lookup(7, buf); err != nil || !found {
			t.Fatalf("lookup: found=%v err=%v", found, err)
		}
	}
	if hits := s.Metrics().Read.OptimisticHits; hits == 0 {
		t.Fatal("repeated lookup of an untouched key did not hit the optimistic cache")
	}
	if !bytes.Equal(buf, snapRow(7, 1, 64)) {
		t.Fatal("cached row content mismatch")
	}
	// Any write to the page bumps its version; the stale cache entry
	// must fail validation and the locked path must return the new row.
	if err := table.Put(7, snapRow(7, 2, 64)); err != nil {
		t.Fatal(err)
	}
	if found, err := table.Lookup(7, buf); err != nil || !found {
		t.Fatalf("lookup after update: found=%v err=%v", found, err)
	}
	if !bytes.Equal(buf, snapRow(7, 2, 64)) {
		t.Fatal("optimistic fast path served a stale row after an update")
	}
	if retries := s.Metrics().Read.OptimisticRetries; retries == 0 {
		t.Fatal("stale cache entry did not count an optimistic retry")
	}
}

// TestSnapshotInvalidatedByRestart proves a crash-restart fences open
// snapshots: the version store's epoch bump makes every subsequent
// ScanSnapshot on the old handle fail with ErrSnapshotInvalid instead of
// silently mixing pre- and post-recovery images.
func TestSnapshotInvalidatedByRestart(t *testing.T) {
	s := openShardedStore(t, 2)
	defer s.Close()
	table, err := s.CreateTable(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := table.Insert(k, snapRow(k, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if _, err := s.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	err = table.ScanSnapshot(sn, 0, 0, 0, 64, func(uint64, []byte) bool { return true })
	if !errors.Is(err, ErrSnapshotInvalid) {
		t.Fatalf("scan on a pre-crash snapshot returned %v, want ErrSnapshotInvalid", err)
	}
	// The store itself recovered: fresh snapshots work.
	sn2, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn2.Close()
	seen := 0
	if err := table.ScanSnapshot(sn2, 0, 0, 0, 64, func(uint64, []byte) bool {
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 200 {
		t.Fatalf("post-recovery snapshot saw %d rows, want 200", seen)
	}
}
