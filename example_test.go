package nvmstore_test

import (
	"fmt"
	"log"

	"nvmstore"
)

// Example shows the basic lifecycle: open a three-tier store, create a
// table, run a transaction, read a field back.
func Example() {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     64 << 20,
		SSDBytes:     256 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	users, err := store.CreateTable(1, 32)
	if err != nil {
		log.Fatal(err)
	}

	row := make([]byte, 32)
	copy(row, "ada lovelace")
	if err := store.Update(func() error { return users.Insert(7, row) }); err != nil {
		log.Fatal(err)
	}

	name := make([]byte, 12)
	found, err := users.LookupField(7, 0, 12, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(found, string(name))
	// Output: true ada lovelace
}

// ExampleStore_CrashRestart demonstrates recovery: committed work is
// replayed from the write-ahead log, an in-flight transaction vanishes.
func ExampleStore_CrashRestart() {
	store, err := nvmstore.Open(nvmstore.Options{
		Architecture:      nvmstore.BasicNVMBuffer,
		DRAMBytes:         8 << 20,
		NVMBytes:          64 << 20,
		StrictPersistence: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	table, err := store.CreateTable(1, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Update(func() error { return table.Insert(1, make([]byte, 16)) }); err != nil {
		log.Fatal(err)
	}

	store.Begin() // in flight when the power fails
	if err := table.Insert(2, make([]byte, 16)); err != nil {
		log.Fatal(err)
	}

	if _, err := store.CrashRestart(); err != nil {
		log.Fatal(err)
	}
	table = store.Table(1)
	count, err := table.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows after crash:", count)
	// Output: rows after crash: 1
}

// ExampleTable_Scan iterates a key range in order.
func ExampleTable_Scan() {
	store, err := nvmstore.Open(nvmstore.Options{Architecture: nvmstore.MainMemory})
	if err != nil {
		log.Fatal(err)
	}
	t, err := store.CreateTable(1, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Update(func() error {
		for _, k := range []uint64{30, 10, 20, 40} {
			row := make([]byte, 8)
			row[0] = byte(k)
			if err := t.Insert(k, row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := t.Scan(15, 2, 0, 1, func(key uint64, field []byte) bool {
		fmt.Println(key, field[0])
		return true
	}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// 20 20
	// 30 30
}
