package nvmstore

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nvmstore/internal/wal"
)

// openMaintStore opens a sharded store with the smallest WAL the core
// allows (the per-shard region is floored at 1 MiB) so low fill
// thresholds give background maintenance work to do quickly.
func openMaintStore(t *testing.T, shards int, m MaintenanceOptions) *ShardedStore {
	t.Helper()
	s, err := OpenSharded(shards, Options{
		Architecture:      ThreeTier,
		DRAMBytes:         32 << 20,
		NVMBytes:          256 << 20,
		SSDBytes:          1 << 30,
		WALBytes:          int64(shards) << 20, // the 1 MiB per-shard floor
		StrictPersistence: true,
		Maintenance:       m,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

// TestShardedMaintenanceConcurrent hammers a sharded table from several
// goroutines while each shard's background maintainer runs incremental
// checkpoint rounds. Run under `go test -race` this checks that every
// maintenance round takes the shard lock. The low soft threshold (the
// workload fills ~14% of the floor-size log) guarantees it is crossed
// many times, so rounds and truncations must both have happened — and
// no writer may ever observe wal.ErrLogFull, because past the hard
// threshold writers throttle instead.
func TestShardedMaintenanceConcurrent(t *testing.T) {
	s := openMaintStore(t, 2, MaintenanceOptions{SoftFill: 0.02, HardFill: 0.5})
	table, err := s.CreateTable(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 4
		perW    = 400
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for n := 0; n < perW; n++ {
				k := uint64(wk*perW + n)
				if err := table.Put(k, shardedRow(k, 128)); err != nil {
					errs[wk] = err
					return
				}
				if n%7 == 0 {
					if _, err := table.Lookup(k, buf); err != nil {
						errs[wk] = err
						return
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	for wk, err := range errs {
		if err != nil {
			if errors.Is(err, wal.ErrLogFull) {
				t.Fatalf("worker %d hit ErrLogFull despite backpressure: %v", wk, err)
			}
			t.Fatalf("worker %d: %v", wk, err)
		}
	}
	m := s.Metrics()
	if m.Ckpt.Rounds == 0 {
		t.Fatal("no background checkpoint rounds ran")
	}
	if m.Ckpt.Truncations == 0 {
		t.Fatal("background maintenance never truncated the WAL")
	}
	// All rows must still be readable after the fuzzy checkpoints.
	if n, err := table.Count(); err != nil || n != workers*perW {
		t.Fatalf("Count = %d, %v; want %d", n, err, workers*perW)
	}
}

// TestWriterThrottledNotFailed pins the hard threshold low so writers
// cross it constantly: they must be blocked (WriterThrottles grows) and
// then proceed once maintenance truncates — never failed with
// wal.ErrLogFull. This is the regression test for the backpressure
// contract: before background maintenance, a full log surfaced as an
// error on the commit path.
func TestWriterThrottledNotFailed(t *testing.T) {
	s := openMaintStore(t, 1, MaintenanceOptions{
		// A long tick makes nudges from the write path the only timely
		// wake-up, maximizing the window in which writers sit throttled.
		Interval: 250 * time.Millisecond,
		SoftFill: 0.02,
		HardFill: 0.02,
	})
	table, err := s.CreateTable(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 4
		perW    = 250
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for n := 0; n < perW; n++ {
				k := uint64(wk*perW + n)
				if err := table.Put(k, shardedRow(k, 256)); err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for wk, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", wk, err)
		}
	}
	m := s.Metrics()
	if m.WriterThrottles == 0 {
		t.Fatal("no writer was ever throttled at the hard threshold")
	}
	if m.Ckpt.Truncations == 0 {
		t.Fatal("maintenance never truncated the WAL")
	}
	if n, err := table.Count(); err != nil || n != workers*perW {
		t.Fatalf("Count = %d, %v; want %d", n, err, workers*perW)
	}
}

// TestMaintenanceDisabled checks the opt-out: with a negative Interval
// no maintainer goroutine starts, PaceWriter is a no-op, and the commit
// path falls back to inline pacing (rounds still run, the log still gets
// truncated, writers still never fail).
func TestMaintenanceDisabled(t *testing.T) {
	s := openMaintStore(t, 1, MaintenanceOptions{Interval: -1, SoftFill: 0.1, HardFill: 0.2})
	if s.maint != nil {
		t.Fatal("maintainers started despite negative Interval")
	}
	s.PaceWriter(0) // must not block or panic
	table, err := s.CreateTable(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 800; k++ {
		if err := table.Put(k, shardedRow(k, 128)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	m := s.Metrics()
	if m.Ckpt.Rounds == 0 {
		t.Fatal("inline pacing ran no checkpoint rounds")
	}
	if m.Ckpt.Truncations == 0 {
		t.Fatal("inline pacing never truncated the WAL")
	}
	if m.WriterThrottles != 0 {
		t.Fatalf("WriterThrottles = %d without background maintenance", m.WriterThrottles)
	}
}

// TestMaintenanceCloseReleasesThrottledWriters pins the WAL with a
// retention watermark so maintenance cannot truncate it, drives the fill
// past the hard threshold (engaging the writer throttle for real, with
// no way for the maintainer to clear it), and verifies Close wakes the
// blocked writer instead of deadlocking on it.
func TestMaintenanceCloseReleasesThrottledWriters(t *testing.T) {
	s, err := OpenSharded(1, Options{
		Architecture: ThreeTier,
		DRAMBytes:    32 << 20,
		NVMBytes:     256 << 20,
		SSDBytes:     1 << 30,
		WALBytes:     1 << 20,
		Maintenance:  MaintenanceOptions{SoftFill: 0.01, HardFill: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Retain LSN 1 forever: every Truncate is refused, so once the fill
	// crosses the hard threshold the throttle stays engaged.
	s.shards[0].e.Log().SetRetain(func() wal.LSN { return 1 })
	if _, err := s.CreateTable(1, 256); err != nil {
		t.Fatal(err)
	}
	// Fill past the (tiny) hard threshold without tripping PaceWriter:
	// WithShard engages the throttle on unlock but never waits on it.
	err = s.WithShard(0, func(st *Store) error {
		for k := uint64(0); k < 100; k++ {
			if err := st.Update(func() error {
				return st.Table(1).Insert(k, shardedRow(k, 256))
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		s.PaceWriter(0)
		close(released)
	}()
	// Give the writer a moment to actually block on the throttle.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-released:
		t.Fatal("writer was not throttled despite a pinned, over-full log")
	default:
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("throttled writer still blocked after Close")
	}
}
