package nvmstore

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvmstore/internal/core"
	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/shard"
)

// ShardedStore is the scale-up path sketched in the paper's Appendix A.1:
// the key space is hash-partitioned across N independent single-threaded
// Stores, each with its own buffer manager, write-ahead log, and
// simulated NVM/SSD devices (shard-per-core). Shards share nothing; a
// transaction lives entirely inside one shard.
//
// Unlike a plain Store, a ShardedStore is safe for concurrent use: each
// shard carries its own lock, so goroutines operating on different shards
// proceed in parallel while operations on the same shard serialize —
// exactly the contention profile of one worker thread per shard.
//
// Time in a parallel run is hybrid, like the single-threaded benchmarks:
// wall (CPU) time is measured once by the caller, while each shard's
// virtual device clock advances independently. The simulated component of
// a parallel region is the slowest shard's clock (MaxSimulatedTime), not
// the sum: the other shards' device waits happen concurrently.
type ShardedStore struct {
	shards []*Store
	slots  []shardSlot
	// gc holds one group committer per shard, or nil when group commit
	// is disabled (Options.CommitBatch <= 1 after defaulting, or the
	// NVMDirect architecture, which persists in place per commit).
	gc []*groupCommitter
	// maint holds one background maintainer per shard (incremental
	// checkpointing and paced write-back off the commit path), or nil
	// when background maintenance is disabled (negative
	// Options.Maintenance.Interval, or the NVMDirect architecture,
	// which truncates its log per commit).
	maint []*maintainer
	// readers holds one optimistic lookup cache per shard; readHits and
	// readRetries count lock-free cache hits and validation failures
	// across all shards (see ShardedTable.Lookup).
	readers     []readCache
	readHits    atomic.Int64
	readRetries atomic.Int64
}

// readCacheCap bounds one shard's optimistic lookup cache; when full the
// cache is dropped wholesale rather than evicted piecemeal — hot keys
// repopulate within one locked lookup each.
const readCacheCap = 4096

// readCache is one shard's optimistic lookup cache: immutable cached rows
// validated lock-free against the owning leaf's version counter. Entries
// are only ever replaced whole (a *cachedRow is never mutated), so a
// reader that wins validation can copy the row without any lock.
type readCache struct {
	rows  sync.Map // uint64 key -> *cachedRow
	count atomic.Int64
}

// cachedRow is an immutable row snapshot plus the leaf version it was
// read under. Valid while the store epoch and the leaf's version counter
// still match; any leaf mutation (including a split moving the key or a
// delete) bumps the counter first, invalidating the entry.
type cachedRow struct {
	row   []byte
	pid   core.PageID
	ver   uint64
	epoch uint64
}

// store caches a row, dropping the whole cache when the cap is reached
// (the count is approximate under concurrency; the cap is a bound on
// memory, not an exact size).
func (c *readCache) store(key uint64, r *cachedRow) {
	if c.count.Load() >= readCacheCap {
		c.rows.Range(func(k, _ any) bool {
			c.rows.Delete(k)
			return true
		})
		c.count.Store(0)
	}
	if _, loaded := c.rows.LoadOrStore(key, r); loaded {
		c.rows.Store(key, r)
	} else {
		c.count.Add(1)
	}
}

// DefaultCommitBatch is the per-shard group-commit batch bound used when
// Options.CommitBatch is zero: at most this many autocommit writes share
// one WAL flush.
const DefaultCommitBatch = 32

// groupCommitter coalesces the WAL flushes of concurrent autocommit
// writers on one shard. Writers append their commit record under the
// shard lock without flushing, then rendezvous here: the first waiter
// whose commit is not yet durable becomes the leader, waits while more
// writers are in flight (bounded by maxBatch commits and maxDelayNs of
// simulated time), performs one physical flush of the log tail covering
// everyone, and wakes the group. A writer never returns before the flush
// covering its commit has landed, so the ack⇒durable contract is
// preserved — only the flush is shared.
//
// Liveness needs no timer: entered counts writers past enter() that have
// not yet registered or cancelled, and every transition broadcasts. A
// leader therefore only waits while some writer is demonstrably still on
// its way, and a single uncontended writer flushes immediately with zero
// added latency.
type groupCommitter struct {
	mu   sync.Mutex
	cond *sync.Cond

	// entered counts writers between enter() and register/cancel.
	entered int
	// seq numbers registered (appended, unflushed) commits; flushedSeq
	// is the newest seq known durable. flushedSeq lags the log's true
	// durable frontier when another path (abort, write-back barrier)
	// flushes the tail; laggards then perform one cheap no-op flush.
	seq        uint64
	flushedSeq uint64
	// flushing marks that a leader is collecting a batch or flushing.
	flushing bool
	// oldestNs/newestNs bracket the pending commits' shard-clock
	// timestamps; their spread bounds how long (in simulated time) an
	// early commit may wait for companions. oldestNs is approximate
	// after a flush leaves late registrants pending — see await.
	oldestNs, newestNs int64

	maxBatch   int
	maxDelayNs int64
}

func newGroupCommitter(maxBatch int, maxDelay time.Duration) *groupCommitter {
	g := &groupCommitter{maxBatch: maxBatch, maxDelayNs: maxDelay.Nanoseconds()}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter announces an in-flight writer. It must precede acquiring the
// shard lock so a collecting leader keeps waiting for this writer.
func (g *groupCommitter) enter() {
	g.mu.Lock()
	g.entered++
	g.mu.Unlock()
}

// cancel withdraws an entered writer whose transaction did not produce a
// commit record to coalesce (error and rollback paths).
func (g *groupCommitter) cancel() {
	g.mu.Lock()
	g.entered--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// await registers a commit appended at shard-clock time ns and blocks
// until a flush covering it has landed, leading that flush if no other
// writer is. flush must perform one physical flush of the shard's log
// tail (taking the shard lock) and is called without g.mu held.
func (g *groupCommitter) await(ns int64, flush func() error) error {
	g.mu.Lock()
	g.entered--
	g.seq++
	my := g.seq
	if g.seq-g.flushedSeq == 1 {
		g.oldestNs = ns
	}
	g.newestNs = ns
	g.cond.Broadcast()
	for {
		if g.flushedSeq >= my {
			g.mu.Unlock()
			return nil
		}
		if !g.flushing {
			g.flushing = true
			for int(g.seq-g.flushedSeq) < g.maxBatch && g.entered > 0 &&
				(g.maxDelayNs <= 0 || g.newestNs-g.oldestNs < g.maxDelayNs) {
				g.cond.Wait()
			}
			target := g.seq
			g.mu.Unlock()
			err := g.runFlush(flush)
			g.mu.Lock()
			g.flushing = false
			// Commits through target are durable even when err is
			// non-nil: FlushWAL's error comes from the checkpoint that
			// runs after the tail flush succeeded. The leader reports
			// it; followers' contract is already satisfied.
			g.flushedSeq = target
			// Any commits registered during the flush are the newest
			// ones; restart the delay window at them.
			g.oldestNs = g.newestNs
			g.cond.Broadcast()
			g.mu.Unlock()
			return err
		}
		g.cond.Wait()
	}
}

// runFlush invokes flush, keeping the committer usable when an injected
// fault.Crash (or any other panic) unwinds through it: the leader role
// is released and the group woken before the panic continues, so other
// writers do not block forever on a crashed leader.
func (g *groupCommitter) runFlush(flush func() error) error {
	defer func() {
		if r := recover(); r != nil {
			g.mu.Lock()
			g.flushing = false
			g.cond.Broadcast()
			g.mu.Unlock()
			panic(r)
		}
	}()
	return flush()
}

// shardSlot holds one shard's lock and operation counter, padded so that
// adjacent shards' hot state does not share a cache line (false sharing).
type shardSlot struct {
	mu  sync.Mutex
	ops int64
	_   [112]byte
}

// OpenSharded creates a sharded store of n independent single-threaded
// shards. The capacities in opts (DRAM, NVM, SSD, WAL) are totals for the
// whole store and are split evenly across shards; zero capacities stay
// zero (unlimited / unused), and each shard gets the default WAL size if
// none is set. OpenSharded(1, opts) behaves exactly like Open(opts).
func OpenSharded(n int, opts Options) (*ShardedStore, error) {
	if n < 1 {
		return nil, fmt.Errorf("nvmstore: sharded store needs at least 1 shard, got %d", n)
	}
	per := opts
	per.DRAMBytes = splitCapacity(opts.DRAMBytes, n)
	per.NVMBytes = splitCapacity(opts.NVMBytes, n)
	per.SSDBytes = splitCapacity(opts.SSDBytes, n)
	per.WALBytes = splitCapacity(opts.WALBytes, n)
	s := &ShardedStore{
		shards:  make([]*Store, n),
		slots:   make([]shardSlot, n),
		readers: make([]readCache, n),
	}
	for i := range s.shards {
		st, err := Open(per)
		if err != nil {
			return nil, fmt.Errorf("nvmstore: open shard %d/%d: %w", i, n, err)
		}
		s.shards[i] = st
	}
	batch := opts.CommitBatch
	if batch == 0 {
		batch = DefaultCommitBatch
	}
	if batch > 1 && opts.Architecture != NVMDirect {
		s.gc = make([]*groupCommitter, n)
		for i := range s.gc {
			s.gc[i] = newGroupCommitter(batch, opts.CommitDelay)
		}
	}
	if opts.Maintenance.Interval >= 0 && opts.Architecture != NVMDirect {
		s.startMaintenance()
	}
	return s, nil
}

// splitCapacity divides a total capacity across n shards, preserving the
// "zero means unlimited/default" convention.
func splitCapacity(total int64, n int) int64 {
	if total == 0 || n <= 1 {
		return total
	}
	return total / int64(n)
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// ShardFor returns the shard owning key — the same hash partitioning the
// workload drivers route by.
func (s *ShardedStore) ShardFor(key uint64) int { return shard.Of(key, len(s.shards)) }

// Shard returns shard i's underlying single-threaded Store without
// locking: the caller must be that shard's only user (the shard-per-core
// worker model). For synchronized access use WithShard.
func (s *ShardedStore) Shard(i int) *Store { return s.shards[i] }

// WithShard runs fn with shard i's store while holding its lock, so it is
// safe to call from any goroutine. Before the lock is released the shard's
// log fill is inspected (noteShard), so any locked access that grows the
// log engages the writer throttle or nudges the maintainer as needed.
func (s *ShardedStore) WithShard(i int, fn func(*Store) error) error {
	slot := &s.slots[i]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	defer s.noteShard(i)
	return fn(s.shards[i])
}

// onShard is WithShard plus the per-shard op counter.
func (s *ShardedStore) onShard(i int, fn func(*Store) error) error {
	slot := &s.slots[i]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	defer s.noteShard(i)
	slot.ops++
	return fn(s.shards[i])
}

// onShardDurable runs fn as one transaction on shard i and returns once
// its commit is durable. With group commit enabled the WAL flush is
// coalesced with concurrent writers on the same shard: the transaction
// body runs under the shard lock with a non-flushing commit, the shard's
// virtual-clock reading at commit is captured under the same lock (the
// clock has no synchronization of its own), and the writer then waits on
// the shard's group committer for a flush covering it. Without group
// commit it is onShard + Store.Update, flushing per operation. Either
// way the writer first yields to backpressure (PaceWriter) when the
// shard's log is near full, so appends never fail with wal.ErrLogFull.
func (s *ShardedStore) onShardDurable(i int, fn func(st *Store) error) error {
	s.PaceWriter(i)
	if s.gc == nil {
		return s.onShard(i, func(st *Store) error {
			return st.Update(func() error { return fn(st) })
		})
	}
	g := s.gc[i]
	g.enter()
	slot := &s.slots[i]
	slot.mu.Lock()
	slot.ops++
	st := s.shards[i]
	err := st.UpdateNoFlush(func() error { return fn(st) })
	ns := st.e.Clock().Ns()
	s.noteShard(i)
	slot.mu.Unlock()
	if err != nil {
		// Rolled back; the abort record flushed immediately. Nothing of
		// ours is pending.
		g.cancel()
		return err
	}
	return g.await(ns, func() error {
		return s.WithShard(i, func(st *Store) error {
			_, err := st.FlushWAL()
			return err
		})
	})
}

// Ops returns the total number of routed table operations.
func (s *ShardedStore) Ops() int64 {
	var total int64
	for i := range s.slots {
		slot := &s.slots[i]
		slot.mu.Lock()
		total += slot.ops
		slot.mu.Unlock()
	}
	return total
}

// ShardOps returns the per-shard routed-operation counts — the balance
// check for the hash partitioning.
func (s *ShardedStore) ShardOps() []int64 {
	counts := make([]int64, len(s.slots))
	for i := range s.slots {
		slot := &s.slots[i]
		slot.mu.Lock()
		counts[i] = slot.ops
		slot.mu.Unlock()
	}
	return counts
}

// CreateTable creates the table on every shard; rows are routed to their
// owning shard by key hash.
func (s *ShardedStore) CreateTable(id uint64, rowSize int) (*ShardedTable, error) {
	return s.CreateTableLayout(id, rowSize, LayoutSorted)
}

// CreateTableLayout is CreateTable with an explicit leaf layout.
func (s *ShardedStore) CreateTableLayout(id uint64, rowSize int, layout LeafLayout) (*ShardedTable, error) {
	for i := range s.shards {
		err := s.WithShard(i, func(st *Store) error {
			_, err := st.CreateTableLayout(id, rowSize, layout)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("nvmstore: create table %d on shard %d: %w", id, i, err)
		}
	}
	return &ShardedTable{s: s, id: id, rowSize: rowSize}, nil
}

// Table returns the sharded table with the given id, or nil if shard 0
// does not know it (tables reappear automatically after restarts).
func (s *ShardedStore) Table(id uint64) *ShardedTable {
	t := s.shards[0].Table(id)
	if t == nil {
		return nil
	}
	return &ShardedTable{s: s, id: id, rowSize: t.RowSize()}
}

// Close shuts every shard down in an orderly fashion under its lock:
// background maintenance is stopped first (releasing any throttled
// writers), then log tails are flushed (plus a final checkpoint per
// shard with Options.CheckpointOnClose), so every acknowledged
// transaction is durable. Close is idempotent; closing a store with a
// shard inside an open transaction fails, reporting every such shard.
func (s *ShardedStore) Close() error {
	s.stopMaintenance()
	var errs []error
	for i := range s.shards {
		if err := s.WithShard(i, (*Store).Close); err != nil {
			errs = append(errs, fmt.Errorf("nvmstore: close shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Checkpoint checkpoints every shard.
func (s *ShardedStore) Checkpoint() error {
	for i := range s.shards {
		if err := s.WithShard(i, (*Store).Checkpoint); err != nil {
			return fmt.Errorf("nvmstore: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// CleanRestart restarts every shard in an orderly fashion.
func (s *ShardedStore) CleanRestart() error {
	for i := range s.shards {
		if err := s.WithShard(i, (*Store).CleanRestart); err != nil {
			return fmt.Errorf("nvmstore: clean restart shard %d: %w", i, err)
		}
	}
	return nil
}

// CrashRestartShard power-fails and recovers one shard: that shard's DRAM
// is lost and its log replayed, while the other shards keep running —
// per-shard recovery is the fault-isolation benefit of the shared-nothing
// layout.
func (s *ShardedStore) CrashRestartShard(i int) (RecoveryStats, error) {
	var stats RecoveryStats
	err := s.WithShard(i, func(st *Store) error {
		var err error
		stats, err = st.CrashRestart()
		return err
	})
	return stats, err
}

// CrashRestart power-fails and recovers every shard, summing the
// per-shard recovery statistics.
func (s *ShardedStore) CrashRestart() (RecoveryStats, error) {
	var total RecoveryStats
	for i := range s.shards {
		stats, err := s.CrashRestartShard(i)
		if err != nil {
			return total, fmt.Errorf("nvmstore: crash restart shard %d: %w", i, err)
		}
		total.Records += stats.Records
		total.Committed += stats.Committed
		total.Aborted += stats.Aborted
		total.Losers += stats.Losers
		total.Redone += stats.Redone
		total.Undone += stats.Undone
		total.TornTail = total.TornTail || stats.TornTail
	}
	return total, nil
}

// InjectFaults arms every shard's devices from one seeded fault plan,
// shard i using site salt i so the shards' fault streams are
// independent yet reproducible (see Store.InjectFaults). A nil plan
// disarms all shards. The returned slice holds shard i's injector
// bundle at index i.
func (s *ShardedStore) InjectFaults(plan *fault.Plan) []fault.Injectors {
	out := make([]fault.Injectors, len(s.shards))
	for i := range s.shards {
		_ = s.WithShard(i, func(st *Store) error {
			out[i] = st.e.ArmFaults(plan, uint64(i))
			return nil
		})
	}
	return out
}

// MaxSimulatedTime returns the slowest shard's accumulated simulated
// device time — the simulated component of the parallel hybrid-time
// model: shards run concurrently, so their device waits overlap and only
// the longest one extends a parallel run.
// Like every aggregation method below, it takes each shard's lock while
// reading that shard: engine state (clocks, counters) is plain data with
// no internal synchronization, so snapshotting it while a worker operates
// on the shard would be a data race.
func (s *ShardedStore) MaxSimulatedTime() time.Duration {
	var max time.Duration
	for i := range s.shards {
		s.slots[i].mu.Lock()
		d := s.shards[i].SimulatedTime()
		s.slots[i].mu.Unlock()
		if d > max {
			max = d
		}
	}
	return max
}

// TotalSimulatedTime returns the sum of all shards' simulated device
// time — the aggregate device work, used for IO accounting rather than
// elapsed-time math.
func (s *ShardedStore) TotalSimulatedTime() time.Duration {
	var total time.Duration
	for i := range s.shards {
		s.slots[i].mu.Lock()
		total += s.shards[i].SimulatedTime()
		s.slots[i].mu.Unlock()
	}
	return total
}

// CombinedTime implements the parallel hybrid-time model: a parallel
// region that took wall CPU time costs wall plus the slowest shard's
// simulated device time. With one shard this is exactly the
// single-threaded wall + simulated model.
func (s *ShardedStore) CombinedTime(wall time.Duration) time.Duration {
	return wall + s.MaxSimulatedTime()
}

// Metrics returns the sum of all shards' counters, each shard snapshotted
// under its lock (see Manager.Stats for the contract). Latency histograms
// are merged across shards; residency gauges are summed.
func (s *ShardedStore) Metrics() Metrics {
	var total Metrics
	for i := range s.shards {
		s.slots[i].mu.Lock()
		m := s.shards[i].Metrics()
		s.slots[i].mu.Unlock()
		total.Buffer.Fixes += m.Buffer.Fixes
		total.Buffer.SwizzleHits += m.Buffer.SwizzleHits
		total.Buffer.TableHits += m.Buffer.TableHits
		total.Buffer.Swizzles += m.Buffer.Swizzles
		total.Buffer.SSDLoads += m.Buffer.SSDLoads
		total.Buffer.NVMPageLoads += m.Buffer.NVMPageLoads
		total.Buffer.LinesLoaded += m.Buffer.LinesLoaded
		total.Buffer.MiniAllocs += m.Buffer.MiniAllocs
		total.Buffer.FullAllocs += m.Buffer.FullAllocs
		total.Buffer.MiniPromotions += m.Buffer.MiniPromotions
		total.Buffer.DRAMEvictions += m.Buffer.DRAMEvictions
		total.Buffer.NVMAdmissions += m.Buffer.NVMAdmissions
		total.Buffer.NVMDenials += m.Buffer.NVMDenials
		total.Buffer.NVMEvictions += m.Buffer.NVMEvictions
		total.Buffer.DirectFixes += m.Buffer.DirectFixes
		total.Log.Records += m.Log.Records
		total.Log.Commits += m.Log.Commits
		total.Log.Aborts += m.Log.Aborts
		total.Log.Flushes += m.Log.Flushes
		total.Log.Truncates += m.Log.Truncates
		total.Log.TruncateSkips += m.Log.TruncateSkips
		total.NVMLinesRead += m.NVMLinesRead
		total.NVMLinesFlushed += m.NVMLinesFlushed
		total.NVMTotalWrites += m.NVMTotalWrites
		total.SSDPagesRead += m.SSDPagesRead
		total.SSDPagesWritten += m.SSDPagesWritten
		total.Ckpt.Rounds += m.Ckpt.Rounds
		total.Ckpt.Pages += m.Ckpt.Pages
		total.Ckpt.Truncations += m.Ckpt.Truncations
		total.Ckpt.TruncatedBytes += m.Ckpt.TruncatedBytes
		total.Residency.Add(m.Residency)
		total.Read.add(m.Read)
		if m.Latency != nil {
			if total.Latency == nil {
				total.Latency = &LatencySnapshot{}
			}
			total.Latency.Merge(m.Latency)
		}
	}
	total.OpsPerFlush = total.Log.OpsPerFlush()
	total.WriterThrottles = s.WriterThrottles()
	total.Read.OptimisticHits = s.readHits.Load()
	total.Read.OptimisticRetries = s.readRetries.Load()
	return total
}

// ResetLatency zeroes every shard's latency histograms under its lock.
func (s *ShardedStore) ResetLatency() {
	for i := range s.shards {
		s.slots[i].mu.Lock()
		s.shards[i].ResetLatency()
		s.slots[i].mu.Unlock()
	}
}

// WriteTrace writes every shard's retained page-lifecycle events as JSON
// Lines (each line tagged with its shard index), taking each shard's lock
// while its ring is read, and returns the number of events written. A
// nonzero pid filters to that page's events. Events are grouped by shard,
// each group oldest first; page ids are per-shard, so the same pid on
// different shards names different pages.
func (s *ShardedStore) WriteTrace(w io.Writer, pid uint64) (int, error) {
	total := 0
	for i := range s.shards {
		s.slots[i].mu.Lock()
		n, err := s.writeShardTrace(w, i, pid)
		s.slots[i].mu.Unlock()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (s *ShardedStore) writeShardTrace(w io.Writer, i int, pid uint64) (int, error) {
	c := s.shards[i].collector
	if c == nil || c.Trace() == nil {
		return 0, nil
	}
	return c.Trace().WriteJSONL(w, "", i, pid)
}

// Collector returns shard i's recorder, or nil when the store was opened
// without Options.Observe. Like Shard, it does not lock: read snapshots
// only while the shard is quiescent or via Metrics.
func (s *ShardedStore) Collector(i int) *obs.Collector { return s.shards[i].collector }

// WearProfile computes the NVM wear distribution over all shards'
// devices together, as if they were one larger device.
func (s *ShardedStore) WearProfile() WearProfile {
	var touched []uint32
	var p WearProfile
	for i := range s.shards {
		s.slots[i].mu.Lock()
		counts := s.shards[i].e.Manager().NVM().WearCounts()
		s.slots[i].mu.Unlock()
		for _, c := range counts {
			if c > 0 {
				touched = append(touched, c)
				p.TotalWrites += int64(c)
				if c > p.MaxPerLine {
					p.MaxPerLine = c
				}
			}
		}
	}
	p.LinesTouched = len(touched)
	if len(touched) > 0 {
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		p.MedianPerLine = touched[len(touched)/2]
	}
	return p
}

// ShardedTable routes fixed-size rows keyed by uint64 across the store's
// shards. Each operation runs as one transaction on the owning shard
// under that shard's lock, so the table is safe for concurrent use.
type ShardedTable struct {
	s       *ShardedStore
	id      uint64
	rowSize int
}

// RowSize returns the fixed row size in bytes.
func (t *ShardedTable) RowSize() int { return t.rowSize }

// shardTable resolves the table on shard st; resolved per operation so
// handles stay valid across shard restarts.
func (t *ShardedTable) shardTable(st *Store) (*Table, error) {
	tab := st.Table(t.id)
	if tab == nil {
		return nil, fmt.Errorf("nvmstore: table %d missing on shard", t.id)
	}
	return tab, nil
}

// Insert adds a row on the owning shard, as one transaction. Like every
// write below, the operation is durable when the call returns; with
// group commit the WAL flush backing that guarantee is shared with
// concurrent writers on the same shard.
func (t *ShardedTable) Insert(key uint64, row []byte) error {
	return t.s.onShardDurable(t.s.ShardFor(key), func(st *Store) error {
		tab, err := t.shardTable(st)
		if err != nil {
			return err
		}
		return tab.Insert(key, row)
	})
}

// putTx is the upsert transaction body shared by Put and PutBatch: a
// short row overwrites only its leading bytes when the key exists and is
// zero-padded when it does not.
func (t *ShardedTable) putTx(tab *Table, key uint64, row []byte) error {
	found, err := tab.UpdateField(key, 0, row)
	if err != nil || found {
		return err
	}
	if len(row) < t.rowSize {
		full := make([]byte, t.rowSize)
		copy(full, row)
		row = full
	}
	return tab.Insert(key, row)
}

// Put inserts or replaces the row for key on the owning shard, as one
// transaction — the upsert the KV serving layer maps PUT to. A row
// longer than RowSize fails.
func (t *ShardedTable) Put(key uint64, row []byte) error {
	if len(row) > t.rowSize {
		return fmt.Errorf("nvmstore: put of %d bytes into %d-byte rows", len(row), t.rowSize)
	}
	return t.s.onShardDurable(t.s.ShardFor(key), func(st *Store) error {
		tab, err := t.shardTable(st)
		if err != nil {
			return err
		}
		return t.putTx(tab, key, row)
	})
}

// PutBatch upserts len(keys) rows (rows[i] under keys[i]) with explicit
// group commit: the keys are grouped by owning shard, and each shard
// executes its group under one lock acquisition — one transaction per
// row, one WAL flush per shard at the end of its group. Rows that fail
// individually are rolled back and reported in the joined error while
// the rest of the batch proceeds. Every row that succeeded is durable
// when PutBatch returns.
func (t *ShardedTable) PutBatch(keys []uint64, rows [][]byte) error {
	if len(keys) != len(rows) {
		return fmt.Errorf("nvmstore: put batch of %d keys with %d rows", len(keys), len(rows))
	}
	var errs []error
	for _, row := range rows {
		if len(row) > t.rowSize {
			return fmt.Errorf("nvmstore: put of %d bytes into %d-byte rows", len(row), t.rowSize)
		}
	}
	byShard := make(map[int][]int)
	for i, key := range keys {
		sh := t.s.ShardFor(key)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		t.s.PaceWriter(sh)
		slot := &t.s.slots[sh]
		slot.mu.Lock()
		st := t.s.shards[sh]
		tab, err := t.shardTable(st)
		if err != nil {
			slot.mu.Unlock()
			return err
		}
		for _, i := range idxs {
			slot.ops++
			i := i
			if err := st.UpdateNoFlush(func() error { return t.putTx(tab, keys[i], rows[i]) }); err != nil {
				errs = append(errs, fmt.Errorf("nvmstore: put key %d: %w", keys[i], err))
			}
		}
		_, err = st.FlushWAL()
		t.s.noteShard(sh)
		slot.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("nvmstore: flush shard %d: %w", sh, err))
		}
	}
	return errors.Join(errs...)
}

// Lookup copies the row for key into buf and reports whether it exists.
//
// The fast path is optimistic and lock-free: a previously cached copy of
// the row is validated against the owning leaf's version counter (and
// the store epoch, which restarts bump) without touching the shard lock,
// so point reads scale independently of writers on the shard. Writers
// bump the leaf's counter before modifying the first byte, so a
// validated cache hit is exactly the row a locked lookup would return.
// On a miss or failed validation the lookup takes the shard lock, reads
// the row, and re-caches it.
func (t *ShardedTable) Lookup(key uint64, buf []byte) (bool, error) {
	sh := t.s.ShardFor(key)
	cache := &t.s.readers[sh]
	v := t.s.shards[sh].e.Versions()
	if e, ok := cache.rows.Load(key); ok {
		c := e.(*cachedRow)
		// Seqlock-style validation: if both epoch reads agree, no restart
		// ran in between, so the version counter read reflects live
		// pre-restart state; if the version also matches, the leaf is
		// byte-identical to when the row was cached.
		e1 := v.Epoch()
		if e1 == c.epoch && v.VerOf(c.pid) == c.ver && v.Epoch() == e1 {
			copy(buf, c.row)
			t.s.readHits.Add(1)
			return true, nil
		}
		t.s.readRetries.Add(1)
	}
	var found bool
	var pid core.PageID
	var ver, epoch uint64
	err := t.s.onShard(sh, func(st *Store) error {
		tab, err := t.shardTable(st)
		if err != nil {
			return err
		}
		return st.Update(func() error {
			var err error
			found, pid, err = tab.t.LookupWithPage(key, buf)
			if err == nil && found {
				// Version and epoch are stable under the shard lock
				// (restarts run under it too).
				ver = v.VerOf(pid)
				epoch = v.Epoch()
			}
			return err
		})
	})
	if err == nil && found {
		cache.store(key, &cachedRow{
			row:   append([]byte(nil), buf[:t.rowSize]...),
			pid:   pid,
			ver:   ver,
			epoch: epoch,
		})
	}
	return found, err
}

// LookupField copies n bytes at byte offset off of key's row into buf.
func (t *ShardedTable) LookupField(key uint64, off, n int, buf []byte) (bool, error) {
	var found bool
	err := t.s.onShard(t.s.ShardFor(key), func(st *Store) error {
		tab, err := t.shardTable(st)
		if err != nil {
			return err
		}
		return st.Update(func() error {
			var err error
			found, err = tab.LookupField(key, off, n, buf)
			return err
		})
	})
	return found, err
}

// UpdateField overwrites part of key's row on the owning shard, as one
// transaction.
func (t *ShardedTable) UpdateField(key uint64, off int, val []byte) (bool, error) {
	var found bool
	err := t.s.onShardDurable(t.s.ShardFor(key), func(st *Store) error {
		tab, err := t.shardTable(st)
		if err != nil {
			return err
		}
		found, err = tab.UpdateField(key, off, val)
		return err
	})
	return found, err
}

// Delete removes a row and reports whether it existed.
func (t *ShardedTable) Delete(key uint64) (bool, error) {
	var found bool
	err := t.s.onShardDurable(t.s.ShardFor(key), func(st *Store) error {
		tab, err := t.shardTable(st)
		if err != nil {
			return err
		}
		found, err = tab.Delete(key)
		return err
	})
	return found, err
}

// Scan visits rows with key >= from in ascending global key order,
// passing fieldLen bytes at fieldOff of each row; it stops after limit
// rows (limit <= 0 means all) or when fn returns false. Hash partitioning
// scatters consecutive keys across shards, so the scan collects each
// shard's range (one read transaction per shard, shards visited one at a
// time) and merges the results before invoking fn.
func (t *ShardedTable) Scan(from uint64, limit int, fieldOff, fieldLen int, fn func(key uint64, field []byte) bool) error {
	type entry struct {
		key   uint64
		field []byte
	}
	var all []entry
	for i := range t.s.shards {
		err := t.s.onShard(i, func(st *Store) error {
			tab, err := t.shardTable(st)
			if err != nil {
				return err
			}
			return st.Update(func() error {
				return tab.Scan(from, limit, fieldOff, fieldLen, func(key uint64, field []byte) bool {
					all = append(all, entry{key, append([]byte(nil), field...)})
					return true
				})
			})
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].key < all[b].key })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	for _, e := range all {
		if !fn(e.key, e.field) {
			break
		}
	}
	return nil
}

// Snapshot is a stable read point over every shard of a ShardedStore:
// scans through it see, per shard, exactly the transactions committed
// before it was taken, while writers on all shards keep committing.
// Close it promptly so the shards can reclaim the copy-on-write page
// images the snapshot pins.
type Snapshot struct {
	s     *ShardedStore
	snaps []*StoreSnapshot
	once  sync.Once
}

// Snapshot opens a stable read point across all shards. Each shard's
// point is taken under its lock at the shard's durable frontier (the WAL
// is flushed first), so per shard the snapshot is a commit-LSN prefix;
// shards are snapshotted one after another, so the points of different
// shards are close but not a single global instant — the same contract a
// scan over hash-partitioned shards always had.
func (s *ShardedStore) Snapshot() (*Snapshot, error) {
	sn := &Snapshot{s: s, snaps: make([]*StoreSnapshot, len(s.shards))}
	for i := range s.shards {
		err := s.WithShard(i, func(st *Store) error {
			var err error
			sn.snaps[i], err = st.Snapshot()
			return err
		})
		if err != nil {
			sn.Close()
			return nil, fmt.Errorf("nvmstore: snapshot shard %d: %w", i, err)
		}
	}
	return sn, nil
}

// Close releases the snapshot on every shard, unpinning old page
// versions for reclamation by the background maintainer (or eagerly, on
// the spot, when no other snapshot needs them). Closing twice is
// harmless.
func (sn *Snapshot) Close() {
	sn.once.Do(func() {
		for i, ss := range sn.snaps {
			if ss == nil {
				continue
			}
			ss := ss
			_ = sn.s.WithShard(i, func(*Store) error {
				ss.Close()
				return nil
			})
		}
	})
}

// LSNs returns the per-shard commit-LSN watermarks of the snapshot:
// everything committed at or below LSNs()[i] on shard i is visible.
func (sn *Snapshot) LSNs() []uint64 {
	lsns := make([]uint64, len(sn.snaps))
	for i, ss := range sn.snaps {
		if ss != nil {
			lsns[i] = ss.LSN()
		}
	}
	return lsns
}

// ScanSnapshot is Scan against a snapshot: it visits the rows visible at
// sn, in ascending global key order from from, stopping after limit rows
// (limit <= 0 means all) or when fn returns false. Unlike Scan, which
// holds each shard's lock for that shard's whole range, a snapshot scan
// takes a shard's lock only to fetch one leaf image at a time and
// decodes entries outside it, so shard workers keep committing while the
// scan runs — writers committing after the snapshot are simply
// invisible to it. It returns ErrSnapshotInvalid if any scanned shard
// restarted since the snapshot was taken.
func (t *ShardedTable) ScanSnapshot(sn *Snapshot, from uint64, limit int, fieldOff, fieldLen int, fn func(key uint64, field []byte) bool) error {
	if sn.s != t.s {
		return fmt.Errorf("nvmstore: snapshot belongs to a different store")
	}
	type entry struct {
		key   uint64
		field []byte
	}
	var all []entry
	for i := range t.s.shards {
		st := t.s.shards[i]
		ss := sn.snaps[i]
		slot := &t.s.slots[i]
		// Readers take the bare shard lock: they are not routed
		// operations (no ops count) and must not engage the writer
		// throttle or maintainer nudge on their own behalf.
		locked := func(body func() error) error {
			slot.mu.Lock()
			defer slot.mu.Unlock()
			if st.e.Versions().Epoch() != ss.epoch {
				return ErrSnapshotInvalid
			}
			return body()
		}
		var tab *Table
		if err := locked(func() error {
			var err error
			tab, err = t.shardTable(st)
			return err
		}); err != nil {
			return err
		}
		got := 0
		err := chainScanAsOf(tab.t, ss.stamp, from, fieldOff, fieldLen, locked, func(key uint64, field []byte) bool {
			// Image slices are immutable, so no per-entry copy is needed.
			all = append(all, entry{key, field})
			got++
			return limit <= 0 || got < limit
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].key < all[b].key })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	for _, e := range all {
		if !fn(e.key, e.field) {
			break
		}
	}
	return nil
}

// Count returns the total number of rows across all shards.
func (t *ShardedTable) Count() (int, error) {
	total := 0
	for i := range t.s.shards {
		err := t.s.onShard(i, func(st *Store) error {
			tab, err := t.shardTable(st)
			if err != nil {
				return err
			}
			n, err := tab.Count()
			total += n
			return err
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}
