package nvmstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"nvmstore/internal/fault"
)

// TestGroupCommitAckDurable pins the acknowledged-implies-durable
// contract at the group-commit crash point: a crash between a batch's
// commit records and the coalesced log-tail flush (fault.WALGroupCrash,
// the moment where the server has executed a batch but not yet released
// any response) must lose the unflushed batch completely — it was never
// acknowledged — while every previously flushed batch survives intact.
func TestGroupCommitAckDurable(t *testing.T) {
	s := open(t, ThreeTier)
	table, err := s.CreateTable(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	row := func(k uint64) []byte { return bytes.Repeat([]byte{byte(k)}, 16) }
	put := func(k uint64) error {
		return s.UpdateNoFlush(func() error { return table.Insert(k, row(k)) })
	}

	// Batch A: commit without flushing, then the group flush. After
	// FlushWAL returns, these writes are acknowledged.
	for k := uint64(1); k <= 3; k++ {
		if err := put(k); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.FlushWAL(); err != nil || n != 3 {
		t.Fatalf("FlushWAL = %d, %v; want 3 commits flushed", n, err)
	}

	// Batch B: committed, unflushed, unacknowledged — and the group
	// flush crashes before persisting anything.
	s.InjectFaults(&fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.WALGroupCrash, EveryN: 1, Limit: 1},
	}})
	for k := uint64(4); k <= 6; k++ {
		if err := put(k); err != nil {
			t.Fatal(err)
		}
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := fault.AsCrash(r); !ok {
					panic(r)
				}
				return
			}
			t.Fatal("FlushWAL did not hit the armed wal.group crash")
		}()
		s.FlushWAL()
	}()

	if _, err := s.CrashRestart(); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	table = s.Table(1)
	buf := make([]byte, 16)
	for k := uint64(1); k <= 3; k++ { // acknowledged: must survive
		if found, err := table.Lookup(k, buf); err != nil || !found || !bytes.Equal(buf, row(k)) {
			t.Fatalf("acked key %d lost or corrupted after crash (found=%v err=%v)", k, found, err)
		}
	}
	for k := uint64(4); k <= 6; k++ { // never acknowledged: must be fully absent
		if found, _ := table.Lookup(k, buf); found {
			t.Fatalf("unflushed key %d survived the crash: commit records leaked without their flush", k)
		}
	}

	// The single-shot fault is spent: redoing batch B must stick.
	for k := uint64(4); k <= 6; k++ {
		if err := put(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CrashRestart(); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	table = s.Table(1)
	for k := uint64(1); k <= 6; k++ {
		if found, err := table.Lookup(k, buf); err != nil || !found || !bytes.Equal(buf, row(k)) {
			t.Fatalf("key %d missing after redo (found=%v err=%v)", k, found, err)
		}
	}
}

// TestApplyBatchSingleFlush pins the flush amortization ApplyBatch
// promises: N operations, exactly one log-tail flush.
func TestApplyBatchSingleFlush(t *testing.T) {
	s := open(t, ThreeTier)
	table, err := s.CreateTable(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Log
	const n = 10
	ops := make([]func() error, n)
	for i := range ops {
		k := uint64(i + 1)
		ops[i] = func() error { return table.Insert(k, bytes.Repeat([]byte{byte(k)}, 16)) }
	}
	if err := s.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	after := s.Metrics().Log
	if c := after.Commits - before.Commits; c != n {
		t.Fatalf("commits = %d, want %d", c, n)
	}
	if f := after.Flushes - before.Flushes; f != 1 {
		t.Fatalf("flushes = %d, want 1 (the group flush)", f)
	}
	if opf := s.Metrics().OpsPerFlush; opf <= 1 {
		t.Fatalf("OpsPerFlush = %.2f, want > 1 after a batched apply", opf)
	}
}

// TestShardedPutBatchCoalesces pins PutBatch's per-shard flush
// coalescing: keys spread over every shard commit with at most one
// flush per touched shard, and read back correctly.
func TestShardedPutBatchCoalesces(t *testing.T) {
	const shards = 4
	s, err := OpenSharded(shards, Options{
		Architecture: ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tab, err := s.CreateTable(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Log

	const n = 64
	keys := make([]uint64, n)
	rows := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		rows[i] = bytes.Repeat([]byte{byte(i + 1)}, 16)
	}
	if err := tab.PutBatch(keys, rows); err != nil {
		t.Fatal(err)
	}

	after := s.Metrics().Log
	if c := after.Commits - before.Commits; c != n {
		t.Fatalf("commits = %d, want %d", c, n)
	}
	if f := after.Flushes - before.Flushes; f > shards {
		t.Fatalf("flushes = %d, want <= %d (one per touched shard)", f, shards)
	}
	buf := make([]byte, 16)
	for i, k := range keys {
		if found, err := tab.Lookup(k, buf); err != nil || !found || !bytes.Equal(buf, rows[i]) {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
	}
}

// TestShardedGroupCommitConcurrent drives concurrent autocommit writers
// through the sharded store's group committer and checks that every
// acknowledged write reads back — the transparent-coalescing path under
// real goroutine concurrency (the race detector sees this test).
func TestShardedGroupCommitConcurrent(t *testing.T) {
	s, err := OpenSharded(2, Options{
		Architecture: ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
		CommitBatch:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tab, err := s.CreateTable(1, 16)
	if err != nil {
		t.Fatal(err)
	}

	const writers, per = 8, 40
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*per + i)
				if err := tab.Put(k, bytes.Repeat([]byte{byte(k%251) + 1}, 16)); err != nil {
					errs[w] = fmt.Errorf("put %d: %w", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	buf := make([]byte, 16)
	for k := uint64(0); k < writers*per; k++ {
		want := bytes.Repeat([]byte{byte(k%251) + 1}, 16)
		if found, err := tab.Lookup(k, buf); err != nil || !found || !bytes.Equal(buf, want) {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
	}
	m := s.Metrics()
	if m.Log.Commits < writers*per {
		t.Fatalf("commits = %d, want >= %d", m.Log.Commits, writers*per)
	}
	if m.OpsPerFlush <= 0 {
		t.Fatalf("OpsPerFlush = %.2f, want > 0", m.OpsPerFlush)
	}
}
