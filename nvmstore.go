// Package nvmstore is a storage engine for the DRAM / NVM / SSD memory
// hierarchy, reproducing "Managing Non-Volatile Memory in Database Systems"
// (van Renen et al., SIGMOD 2018).
//
// A Store is a transactional key-value engine over B+-trees whose storage
// layer is one of the paper's five architectures, selected by Architecture:
// a pure main-memory engine, a traditional SSD buffer manager, a
// page-grained NVM buffer manager, an engine working on NVM in place, or
// the paper's three-tier design in which DRAM and NVM are both caches over
// SSD, NVM-resident pages are loaded one cache line at a time, hot tuples
// of cold pages live in 1 KB mini pages, and hot page references are
// swizzled into direct pointers.
//
// The NVM and SSD devices are simulated (the paper itself had to rely on
// Intel's emulation platform): latency is charged to a virtual clock
// (Store.SimulatedTime) rather than slept, per-cache-line wear is counted,
// and power failures can be injected (Store.CrashRestart), after which the
// write-ahead log repeats committed work and rolls back losers.
//
// A minimal session:
//
//	store, _ := nvmstore.Open(nvmstore.Options{
//		Architecture: nvmstore.ThreeTier,
//		DRAMBytes:    64 << 20,
//		NVMBytes:     320 << 20,
//		SSDBytes:     16 << 30,
//	})
//	table, _ := store.CreateTable(1, 128)
//	store.Begin()
//	table.Insert(42, make([]byte, 128))
//	store.Commit()
//
// Stores are not safe for concurrent use: like the paper's evaluation, the
// engines are single-threaded (multi-threading is discussed as future work
// in the paper's Appendix A.1).
package nvmstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/engine"
	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/wal"
)

// Architecture selects the storage layout, one of the five designs the
// paper evaluates.
type Architecture int

const (
	// ThreeTier is the paper's contribution: DRAM and NVM as caches over
	// SSD with cache-line-grained pages, mini pages, and pointer
	// swizzling.
	ThreeTier Architecture = iota
	// MainMemory keeps all pages in DRAM; capacity is bounded by
	// Options.DRAMBytes and there is no page-based persistence.
	MainMemory
	// NVMDirect works on NVM in place, flushing every modification.
	NVMDirect
	// BasicNVMBuffer is a page-grained DRAM buffer pool over NVM
	// (FOEDUS-style).
	BasicNVMBuffer
	// SSDBuffer is a traditional buffer manager: DRAM over SSD.
	SSDBuffer
)

// String returns the paper's name for the architecture.
func (a Architecture) String() string { return a.topology().String() }

func (a Architecture) topology() core.Topology {
	switch a {
	case MainMemory:
		return core.MemOnly
	case NVMDirect:
		return core.DirectNVM
	case BasicNVMBuffer:
		return core.DRAMNVM
	case SSDBuffer:
		return core.DRAMSSD
	default:
		return core.ThreeTier
	}
}

// LeafLayout selects how table leaves store entries.
type LeafLayout = btree.LeafLayout

// Leaf layouts: sorted arrays with binary search (the default), or the
// open-addressing hash layout of §5.5 that trades scan speed for fewer
// NVM accesses per point lookup.
const (
	LayoutSorted = btree.LayoutSorted
	LayoutHash   = btree.LayoutHash
)

// Errors surfaced by the store. Capacity and duplicate-key conditions can
// be tested with errors.Is.
var (
	ErrCapacity     = core.ErrCapacity
	ErrDuplicateKey = btree.ErrDuplicateKey
	ErrNoTx         = engine.ErrNoTransaction
)

// Options configures a Store. Capacities the chosen architecture does not
// use may be zero.
type Options struct {
	// Architecture selects the storage layout (default ThreeTier).
	Architecture Architecture
	// DRAMBytes bounds the DRAM buffer pool; zero means unlimited
	// (the usual setting for MainMemory).
	DRAMBytes int64
	// NVMBytes is the simulated NVM capacity for pages; the log region
	// is reserved on top.
	NVMBytes int64
	// SSDBytes is the simulated SSD capacity.
	SSDBytes int64
	// WALBytes sizes the NVM log region (default 16 MB).
	WALBytes int64

	// NVMReadLatency and NVMWriteLatency configure the simulated device
	// (default 500 ns each, the paper's midpoint; the hardware sweep in
	// the paper covers 165-1800 ns).
	NVMReadLatency  time.Duration
	NVMWriteLatency time.Duration

	// CommitBatch bounds how many autocommit writes a shard coalesces
	// into one WAL flush (group commit) in a ShardedStore. Zero selects
	// the default (DefaultCommitBatch); 1 or a negative value disables
	// coalescing so every commit flushes individually. Single Stores
	// ignore it — they are single-threaded, so there is nothing to
	// coalesce transparently; use ApplyBatch for explicit batching.
	CommitBatch int
	// CommitDelay bounds, in simulated time, how long a committed but
	// unflushed write may wait for companions before the group leader
	// flushes anyway. Zero means no delay bound: a leader flushes as soon
	// as no further writer is in flight or the batch is full. Measured on
	// the shard's virtual clock, not wall time.
	CommitDelay time.Duration

	// Maintenance tunes incremental checkpointing and paced dirty
	// write-back (see MaintenanceOptions). The zero value selects every
	// default. In a ShardedStore a maintenance goroutine per shard runs
	// the checkpoint rounds off the commit path (a negative
	// Maintenance.Interval disables the goroutines); in a
	// single-threaded Store the rounds piggyback on the commit path,
	// bounded to Maintenance.Batch pages each.
	Maintenance MaintenanceOptions

	// StrictPersistence makes NVM writes that were never flushed vanish
	// on CrashRestart — the adversarial model for recovery testing.
	StrictPersistence bool

	// DebugChecks enables the paper's §A.6 debugging mode: on eviction,
	// every clean cache line is verified against its persistent copy.
	DebugChecks bool

	// CheckpointOnClose makes Close write back all dirty pages and
	// truncate the log, so the next open recovers instantly from a cold
	// state. Without it Close only flushes the log tail (committed work
	// is durable either way; recovery replays the log).
	CheckpointOnClose bool

	// Observe enables the observability layer: per-tier latency
	// histograms recorded at every storage boundary, surfaced through
	// Metrics().Latency. Costs a few percent of throughput; off by
	// default.
	Observe bool
	// TraceEvents, when positive, additionally retains the most recent N
	// page-lifecycle events (load/promote/swizzle/evict/writeback, ...)
	// in a ring, dumpable as JSON Lines with WriteTrace. Implies Observe.
	TraceEvents int
}

// Store is a single-threaded transactional storage engine.
type Store struct {
	e         *engine.Engine
	collector *obs.Collector

	checkpointOnClose bool
	closed            bool
}

// Open creates a store with fresh simulated devices.
func Open(opts Options) (*Store, error) {
	cfg := engine.DefaultConfig(opts.Architecture.topology(), opts.DRAMBytes, opts.NVMBytes, opts.SSDBytes)
	cfg.WALBytes = opts.WALBytes
	cfg.NVMReadLatency = opts.NVMReadLatency
	cfg.NVMWriteLatency = opts.NVMWriteLatency
	cfg.StrictPersistence = opts.StrictPersistence
	cfg.DebugChecks = opts.DebugChecks
	var collector *obs.Collector
	if opts.Observe || opts.TraceEvents > 0 {
		collector = obs.NewCollector(opts.TraceEvents)
		cfg.Recorder = collector
	}
	e, err := engine.Open(cfg)
	if err != nil {
		return nil, err
	}
	e.SetMaintenance(opts.Maintenance)
	return &Store{e: e, collector: collector, checkpointOnClose: opts.CheckpointOnClose}, nil
}

// Close shuts the store down in an orderly fashion: the write-ahead log
// tail is flushed, so every committed transaction is durable, and with
// Options.CheckpointOnClose a final checkpoint writes back all dirty
// pages. Close is idempotent — repeated calls return nil — and fails
// inside an open transaction. The store's simulated devices live in
// process memory, so a closed store can still be read; Close defines
// the durable state a drain (e.g. a serving layer's shutdown) ends in.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	if err := s.e.Close(s.checkpointOnClose); err != nil {
		return err
	}
	s.closed = true
	return nil
}

// Architecture returns the store's storage layout.
func (s *Store) Architecture() string { return s.e.Topology().String() }

// CreateTable creates a table of fixed-size rows keyed by uint64. The id
// must be unique within the store and is how the table is found again
// after a restart.
func (s *Store) CreateTable(id uint64, rowSize int) (*Table, error) {
	return s.CreateTableLayout(id, rowSize, LayoutSorted)
}

// CreateTableLayout is CreateTable with an explicit leaf layout.
func (s *Store) CreateTableLayout(id uint64, rowSize int, layout LeafLayout) (*Table, error) {
	t, err := s.e.CreateTree(id, rowSize, layout)
	if err != nil {
		return nil, err
	}
	return &Table{t: t, s: s}, nil
}

// Table returns the table with the given id, or nil if it does not exist
// (tables reappear automatically after restarts).
func (s *Store) Table(id uint64) *Table {
	t := s.e.Tree(id)
	if t == nil {
		return nil
	}
	return &Table{t: t, s: s}
}

// Begin starts a transaction. Transactions are explicit: modifications
// outside Begin/Commit fail with ErrNoTx.
func (s *Store) Begin() { s.e.Begin() }

// Commit makes the running transaction durable (the log tail is flushed
// to NVM).
func (s *Store) Commit() error { return s.e.Commit() }

// Rollback undoes the running transaction.
func (s *Store) Rollback() error { return s.e.Rollback() }

// Update runs fn inside a transaction, committing on success and rolling
// back when fn returns an error.
func (s *Store) Update(fn func() error) error {
	s.Begin()
	if err := fn(); err != nil {
		if rbErr := s.Rollback(); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		return err
	}
	return s.Commit()
}

// CommitNoFlush commits the running transaction without flushing the
// write-ahead log: the commit record is appended, but the transaction is
// not durable until FlushWAL (or the next flushing commit). Group-commit
// building block — callers must not acknowledge the write before a flush
// lands. On NVMDirect it behaves exactly like Commit (durable on
// return), as in-place persistence leaves nothing to coalesce.
func (s *Store) CommitNoFlush() error { return s.e.CommitNoFlush() }

// FlushWAL flushes the write-ahead log tail, making every CommitNoFlush
// since the last flush durable, and returns how many commits the flush
// covered.
func (s *Store) FlushWAL() (int64, error) { return s.e.FlushWAL() }

// UpdateNoFlush is Update with the final flush elided: fn runs inside a
// transaction that is committed with CommitNoFlush on success. The write
// is durable only after a later FlushWAL. Rollbacks still flush — abort
// records always go to the medium immediately.
func (s *Store) UpdateNoFlush(fn func() error) error {
	s.Begin()
	if err := fn(); err != nil {
		if rbErr := s.Rollback(); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		return err
	}
	return s.CommitNoFlush()
}

// ApplyBatch runs each op in its own transaction, coalescing their
// commit flushes into a single WAL flush at the end of the batch — the
// explicit form of group commit. Ops that fail are rolled back
// individually and reported in the returned error; the remaining ops
// still run. When ApplyBatch returns, every op that succeeded is
// durable. The amortization shows up in Metrics().Log: Commits grows by
// the batch size while Flushes grows by one.
func (s *Store) ApplyBatch(ops []func() error) error {
	var errs []error
	for _, op := range ops {
		if err := s.UpdateNoFlush(op); err != nil {
			errs = append(errs, err)
		}
	}
	if _, err := s.FlushWAL(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Checkpoint forces all dirty pages to persistent storage and truncates
// the write-ahead log, synchronously — the full stall the incremental
// rounds exist to avoid. Shutdown and snapshot paths use it; the commit
// path never does.
func (s *Store) Checkpoint() error { return s.e.Checkpoint() }

// MaintenanceOptions tunes incremental checkpointing and paced dirty
// write-back; see Options.Maintenance and engine.MaintenanceOptions for
// the field semantics.
type MaintenanceOptions = engine.MaintenanceOptions

// CkptStats counts incremental-checkpoint activity: bounded write-back
// rounds, pages written back, and WAL truncations with the bytes they
// discarded. Reported in Metrics.Ckpt.
type CkptStats = engine.CkptStats

// CheckpointRound performs one bounded incremental-checkpoint round:
// write back up to batch dirty pages (batch <= 0 selects the configured
// Maintenance.Batch) and truncate the WAL once the dirty set is
// drained. It returns the pages written back and whether the log was
// truncated. The sharded store's maintenance goroutines call it per
// shard; single-threaded callers can use it to spread checkpoint work
// explicitly.
func (s *Store) CheckpointRound(batch int) (pages int, truncated bool, err error) {
	return s.e.CheckpointRound(batch)
}

// LogFill returns the WAL region's fill fraction (0..1) — the signal
// that drives paced write-back and writer throttling.
func (s *Store) LogFill() float64 { return s.e.LogFill() }

// WALRecord is one write-ahead-log record as delivered to the
// replication tap (SetWALShip) — an alias of wal.Record, like
// RecoveryStats below.
type WALRecord = wal.Record

// WAL record kinds, re-exported for replication consumers.
const (
	// WALRecUpdate marks a record carrying before/after images.
	WALRecUpdate = wal.RecUpdate
	// WALRecCommit marks a transaction commit record.
	WALRecCommit = wal.RecCommit
	// WALRecAbort marks a transaction abort record.
	WALRecAbort = wal.RecAbort
)

// SetWALShip installs the replication tap on this shard's write-ahead
// log: fn receives owned copies of every record right after the flush
// that made it durable, in append order, on the flushing goroutine (the
// shard lock is held). Only durable records are ever delivered, so a
// subscriber cannot observe state the store could still lose. A nil fn
// removes the tap.
func (s *Store) SetWALShip(fn func([]WALRecord)) { s.e.Log().SetShip(fn) }

// SetWALRetain installs the replication retention watermark: fn returns
// the lowest LSN the log must keep resident — the first record not yet
// handed to the ship tap — and Checkpoint's log truncation becomes a
// counted no-op while that record would be discarded (see
// wal.Log.SetRetain). A nil fn removes the guard.
func (s *Store) SetWALRetain(fn func() uint64) {
	if fn == nil {
		s.e.Log().SetRetain(nil)
		return
	}
	s.e.Log().SetRetain(func() wal.LSN { return wal.LSN(fn()) })
}

// DurableLSN returns the highest log sequence number this shard has
// flushed to its NVM log — the durability frontier. Every acknowledged
// transaction's commit record is at or below it.
func (s *Store) DurableLSN() uint64 { return uint64(s.e.Log().DurableLSN()) }

// IsPageImage reports whether a shipped record is a physical page image
// (logged by B+-tree splits). Page images are meaningless on any other
// store — page ids and layouts differ — so replication filters them and
// lets the replica's own trees split independently.
func IsPageImage(r WALRecord) bool { return engine.IsPageImage(r) }

// ReplayRecord applies one logical record from another store's log
// inside the running transaction (Begin/Update). The operation is
// logged to this store's own WAL, so applied records are crash-
// recoverable here independently of the source. Commit/abort marks are
// no-ops; page-image and malformed records return an error.
func (s *Store) ReplayRecord(r WALRecord) error { return s.e.ApplyLogical(r) }

// TableIDs returns the ids of all tables in ascending order.
func (s *Store) TableIDs() []uint64 { return s.e.TreeIDs() }

// CleanRestart simulates an orderly shutdown and restart: all volatile
// state is dropped and the page mapping table is rebuilt by scanning the
// NVM page headers (§4.4). On the three-tier architecture the NVM cache
// survives warm — the property the paper's restart experiment measures.
func (s *Store) CleanRestart() error { return s.e.CleanRestart() }

// RecoveryStats summarizes a crash recovery.
type RecoveryStats = wal.RecoveryStats

// CrashRestart simulates a power failure and restart: DRAM is lost,
// unflushed NVM lines revert (with Options.StrictPersistence), and the
// write-ahead log is replayed. Not supported on MainMemory, whose pages
// have no persistent home.
func (s *Store) CrashRestart() (RecoveryStats, error) { return s.e.CrashRestart() }

// InjectFaults arms the store's devices with injectors derived from a
// seeded fault plan (see internal/fault): NVM flush crashes and torn
// flushes, SSD I/O errors and stalls, WAL append failures and torn log
// flushes. Crash-kind faults surface as fault.Crash panics that the
// caller recovers before invoking CrashRestart; error-kind faults
// surface on the operation that hit them. A nil plan disarms
// everything. It returns the injector bundle for reading fired and
// opportunity counters.
func (s *Store) InjectFaults(plan *fault.Plan) fault.Injectors {
	return s.e.ArmFaults(plan, 0)
}

// CheckInvariants walks the buffer manager's internal structures —
// frame/mapping-table agreement, swizzled-pointer bookkeeping, residency
// state — and returns the first inconsistency found. The crash-schedule
// harness calls it after every recovery; it is cheap enough for tests
// but walks every frame, so production paths should not call it per
// operation.
func (s *Store) CheckInvariants() error { return s.e.Manager().CheckInvariants() }

// SimulatedTime returns the accumulated simulated device time. Combined
// with wall time it yields the throughput figures the benchmark harness
// reports.
func (s *Store) SimulatedTime() time.Duration { return s.e.Clock().Elapsed() }

// TierCounters returns the engine's cumulative storage-hierarchy work
// counters plus the current simulated clock, cheap enough to snapshot
// around a single operation: the serving layer differences two
// snapshots to attribute tier work (DRAM hits, NVM line loads, SSD
// reads, journal undos) to one traced request. Like Manager.Stats, it
// must only be called while no operation runs on this shard — under the
// sharded driver, while holding the shard lock (WithShard).
func (s *Store) TierCounters() (obs.TierDeltas, int64) {
	st := s.e.Manager().Stats()
	return obs.TierDeltas{
		DRAMHits:     st.SwizzleHits + st.TableHits,
		NVMLineLoads: st.LinesLoaded,
		NVMPageLoads: st.NVMPageLoads,
		SSDReads:     st.SSDLoads,
		JournalUndos: st.JournalUndos,
	}, s.e.Clock().Ns()
}

// Residency is the set of per-tier residency gauges: pages and cache
// lines currently resident per tier, dirty and pin counts.
type Residency = core.Residency

// LatencySnapshot holds the per-operation latency histograms of a store
// opened with Options.Observe; see Metrics.Latency.
type LatencySnapshot = obs.Snapshot

// LatencyRow is one operation's latency summary (count, p50/p90/p99, max,
// mean — all in simulated nanoseconds), as produced by
// LatencySnapshot.Rows.
type LatencyRow = obs.Row

// Metrics is a snapshot of engine and device counters.
type Metrics struct {
	// Buffer manager event counters (fixes, evictions, admissions, ...).
	Buffer core.Stats
	// Log activity (records, commits, flushes, truncations). Under group
	// commit Commits exceeds Flushes; see wal.Stats.
	Log wal.Stats
	// OpsPerFlush is Log.OpsPerFlush(): the average number of commits
	// each physical WAL flush made durable — group commit's amortization
	// factor (0 when nothing was flushed).
	OpsPerFlush float64
	// Ckpt counts incremental-checkpoint activity: write-back rounds,
	// pages per round, and maintenance truncations with the log bytes
	// they discarded.
	Ckpt CkptStats
	// WriterThrottles counts writers a ShardedStore blocked at the
	// hard log-fill threshold until background truncation caught up;
	// always zero on a single Store.
	WriterThrottles int64
	// NVMLinesRead counts cache lines read from NVM (including CPU-cache
	// hits); NVMLinesFlushed counts lines made durable.
	NVMLinesRead    int64
	NVMLinesFlushed int64
	// NVMTotalWrites is the total cache-line write (wear) count across
	// the device — the endurance measure of the paper's Figure 16.
	NVMTotalWrites int64
	// SSDPagesRead and SSDPagesWritten count SSD traffic.
	SSDPagesRead    int64
	SSDPagesWritten int64
	// Residency reports where pages and cache lines currently live in
	// the hierarchy (instantaneous gauges, not counters).
	Residency Residency
	// Latency holds the per-operation latency histograms when the store
	// was opened with Options.Observe; nil otherwise. Use Latency.Rows()
	// for percentile summaries.
	Latency *LatencySnapshot
	// Read holds the multi-version read-path counters (snapshot reads,
	// optimistic lookups, copy-on-write version-store occupancy).
	Read ReadStats
}

// ReadStats is a snapshot of the multi-version read path: snapshot scans
// served from stable page images, the optimistic lock-free lookup cache,
// and the copy-on-write version store that backs both.
type ReadStats struct {
	// SnapshotReads counts leaf images served to snapshot scans (from the
	// live page when its version predates the snapshot, or from the
	// version store otherwise).
	SnapshotReads int64
	// OptimisticHits counts lookups answered from the lock-free read
	// cache without taking the shard lock; OptimisticRetries counts
	// validation failures that fell back to the locked path. Both are
	// zero on a single Store — the cache lives in ShardedStore.
	OptimisticHits    int64
	OptimisticRetries int64
	// VersionsSaved counts copy-on-write page images saved for open
	// snapshots; VersionsReclaimed counts images freed once no snapshot
	// could read them; VersionsLive is the current resident image count.
	VersionsSaved     int64
	VersionsReclaimed int64
	VersionsLive      int64
	// VersionChainMax is the high-water length of any one page's version
	// chain — a proxy for how far the oldest open snapshot lags writers.
	VersionChainMax int64
	// ActiveSnapshots is the number of currently open snapshots pinning
	// old versions.
	ActiveSnapshots int64
}

// add accumulates another shard's read-path counters (gauges sum;
// VersionChainMax takes the max).
func (r *ReadStats) add(o ReadStats) {
	r.SnapshotReads += o.SnapshotReads
	r.OptimisticHits += o.OptimisticHits
	r.OptimisticRetries += o.OptimisticRetries
	r.VersionsSaved += o.VersionsSaved
	r.VersionsReclaimed += o.VersionsReclaimed
	r.VersionsLive += o.VersionsLive
	if o.VersionChainMax > r.VersionChainMax {
		r.VersionChainMax = o.VersionChainMax
	}
	r.ActiveSnapshots += o.ActiveSnapshots
}

// WearProfile summarizes the per-cache-line write distribution of the
// simulated NVM device — the endurance measure of the paper's Figure 16.
// Buffer-managed architectures both reduce and level wear; the in-place
// architecture concentrates it on hot lines.
type WearProfile struct {
	// TotalWrites is the number of cache-line writes the device absorbed.
	TotalWrites int64
	// LinesTouched is the number of distinct lines written at least once.
	LinesTouched int
	// MaxPerLine is the write count of the hottest line.
	MaxPerLine uint32
	// MedianPerLine is the write count of the median touched line.
	MedianPerLine uint32
}

// WearProfile computes the NVM wear distribution.
func (s *Store) WearProfile() WearProfile {
	counts := s.e.Manager().NVM().WearCounts()
	touched := make([]uint32, 0, len(counts))
	var p WearProfile
	for _, c := range counts {
		if c > 0 {
			touched = append(touched, c)
			p.TotalWrites += int64(c)
			if c > p.MaxPerLine {
				p.MaxPerLine = c
			}
		}
	}
	p.LinesTouched = len(touched)
	if len(touched) > 0 {
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		p.MedianPerLine = touched[len(touched)/2]
	}
	return p
}

// ResetWear zeroes the NVM wear counters (for before/after comparisons).
func (s *Store) ResetWear() { s.e.Manager().NVM().ResetWear() }

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics {
	m := Metrics{
		Buffer: s.e.Manager().Stats(),
		Log:    s.e.Log().Stats(),
		Ckpt:   s.e.CkptStats(),
	}
	m.OpsPerFlush = m.Log.OpsPerFlush()
	nvmStats := s.e.Manager().NVM().Stats()
	m.NVMLinesRead = nvmStats.LinesRead
	m.NVMLinesFlushed = nvmStats.LinesFlushed
	m.NVMTotalWrites = s.e.Manager().NVM().TotalWrites()
	if ssd := s.e.Manager().SSD(); ssd != nil {
		st := ssd.Stats()
		m.SSDPagesRead = st.PagesRead
		m.SSDPagesWritten = st.PagesWritten
	}
	m.Residency = s.e.Manager().Residency()
	vs := s.e.Versions().Stats()
	m.Read = ReadStats{
		SnapshotReads:     vs.Served,
		VersionsSaved:     vs.Saved,
		VersionsReclaimed: vs.Reclaimed,
		VersionsLive:      vs.Live,
		VersionChainMax:   vs.ChainMax,
		ActiveSnapshots:   vs.ActiveSnapshots,
	}
	if s.collector != nil {
		// Flush the hit counters batched on the hot path so the
		// snapshot is complete (see Manager.SyncObs).
		s.e.Manager().SyncObs()
		m.Latency = s.collector.Snapshot()
	}
	return m
}

// ResetLatency zeroes the latency histograms (a no-op without
// Options.Observe), so a measurement phase can start clean after warmup.
func (s *Store) ResetLatency() {
	if s.collector != nil {
		s.collector.Reset()
	}
}

// WriteTrace writes the retained page-lifecycle events as JSON Lines,
// oldest first, and returns the number of events written. A nonzero pid
// filters to that page's events. Without Options.TraceEvents the store
// retains nothing and WriteTrace writes nothing.
func (s *Store) WriteTrace(w io.Writer, pid uint64) (int, error) {
	if s.collector == nil || s.collector.Trace() == nil {
		return 0, nil
	}
	return s.collector.Trace().WriteJSONL(w, "", -1, pid)
}

// Table is a B+-tree of fixed-size rows keyed by uint64.
type Table struct {
	t *btree.Tree
	s *Store
}

// RowSize returns the fixed row size in bytes.
func (t *Table) RowSize() int { return t.t.PayloadSize() }

// Insert adds a row; it fails with ErrDuplicateKey if the key exists and
// with ErrNoTx outside a transaction.
func (t *Table) Insert(key uint64, row []byte) error { return t.t.Insert(key, row) }

// Lookup copies the row for key into buf (RowSize bytes) and reports
// whether it was found.
func (t *Table) Lookup(key uint64, buf []byte) (bool, error) { return t.t.Lookup(key, buf) }

// LookupField copies n bytes at byte offset off of key's row into buf.
// On NVM-backed architectures only the probed keys and the requested
// field are transferred — the paper's cache-line-grained fast path.
func (t *Table) LookupField(key uint64, off, n int, buf []byte) (bool, error) {
	return t.t.LookupField(key, off, n, buf)
}

// UpdateField overwrites part of key's row, logging before and after
// images for recovery.
func (t *Table) UpdateField(key uint64, off int, val []byte) (bool, error) {
	return t.t.UpdateField(key, off, val)
}

// Delete removes a row and reports whether it existed.
func (t *Table) Delete(key uint64) (bool, error) { return t.t.Delete(key) }

// Scan visits rows with key >= from in ascending order, passing fieldLen
// bytes at fieldOff of each row; it stops after limit rows (limit <= 0
// means all) or when fn returns false. The field slice is only valid
// during the callback.
func (t *Table) Scan(from uint64, limit int, fieldOff, fieldLen int, fn func(key uint64, field []byte) bool) error {
	return t.t.Scan(from, limit, fieldOff, fieldLen, fn)
}

// Count scans the table and returns the number of rows.
func (t *Table) Count() (int, error) { return t.t.Count() }

// BulkLoad fills an empty table with n rows in ascending key order at the
// given leaf fill factor (0 < fill <= 1), bypassing the log; call
// Store.Checkpoint afterwards to make the load durable. It must not run
// inside a transaction.
func (t *Table) BulkLoad(n int, keyAt func(i int) uint64, rowAt func(i int, dst []byte), fill float64) error {
	if t.s.e.InTx() {
		return fmt.Errorf("nvmstore: bulk load inside a transaction")
	}
	return t.t.BulkLoad(n, keyAt, rowAt, fill)
}

// ErrSnapshotInvalid reports that a read snapshot was invalidated by a
// store restart (crash, clean restart, or state snapshot load) between
// its creation and use. The caller should open a fresh snapshot.
var ErrSnapshotInvalid = errors.New("nvmstore: snapshot invalidated by restart")

// StoreSnapshot is a stable read point over one Store: scans through it
// see exactly the transactions committed before Snapshot was called,
// while later writers proceed — their first modification of each page
// saves a copy-on-write image the snapshot reads instead. Close it
// promptly so those images can be reclaimed.
type StoreSnapshot struct {
	s     *Store
	id    uint64
	stamp uint64
	lsn   uint64
	epoch uint64
}

// Snapshot opens a stable read point at the current durable frontier. It
// flushes the WAL first, so LSN() is a commit-LSN watermark: every
// transaction at or below it is both durable and visible to the
// snapshot. Must not run inside a transaction.
func (s *Store) Snapshot() (*StoreSnapshot, error) {
	if s.e.InTx() {
		return nil, fmt.Errorf("nvmstore: snapshot inside a transaction")
	}
	if _, err := s.e.FlushWAL(); err != nil {
		return nil, err
	}
	v := s.e.Versions()
	id, stamp := v.BeginSnapshot()
	return &StoreSnapshot{s: s, id: id, stamp: stamp, lsn: s.DurableLSN(), epoch: v.Epoch()}, nil
}

// LSN returns the commit-LSN watermark of the snapshot: the durable LSN
// at creation. Everything committed at or below it is visible.
func (sn *StoreSnapshot) LSN() uint64 { return sn.lsn }

// Stamp returns the snapshot's transaction stamp (its position in the
// store's begin-transaction order).
func (sn *StoreSnapshot) Stamp() uint64 { return sn.stamp }

// Close releases the snapshot, allowing the version store to reclaim
// page images only it could read. Closing twice is harmless.
func (sn *StoreSnapshot) Close() {
	sn.s.e.Versions().EndSnapshot(sn.id)
}

// ScanAsOf is Scan against a snapshot: it visits the rows visible at
// sn's stamp, in ascending key order from from, stopping after limit
// rows (limit <= 0 means all) or when fn returns false. Writers
// committing after the snapshot are invisible. It returns
// ErrSnapshotInvalid if the store restarted since sn was taken.
func (t *Table) ScanAsOf(sn *StoreSnapshot, from uint64, limit int, fieldOff, fieldLen int, fn func(key uint64, field []byte) bool) error {
	if sn.s != t.s {
		return fmt.Errorf("nvmstore: snapshot belongs to a different store")
	}
	if t.s.e.Versions().Epoch() != sn.epoch {
		return ErrSnapshotInvalid
	}
	n := 0
	return chainScanAsOf(t.t, sn.stamp, from, fieldOff, fieldLen,
		func(body func() error) error {
			if t.s.e.Versions().Epoch() != sn.epoch {
				return ErrSnapshotInvalid
			}
			return body()
		},
		func(key uint64, field []byte) bool {
			if limit > 0 && n >= limit {
				return false
			}
			n++
			return fn(key, field)
		})
}

// readLeafBatch is the number of leaf images a snapshot scan fetches per
// lock acquisition: enough to amortize the lock round-trip, small enough
// that writers wait for at most a few page copies.
const readLeafBatch = 16

// chainScanAsOf walks the leaf sibling chain as of snapshot stamp,
// emitting entries with key >= from. locked runs its argument with the
// store's exclusive access held (on a plain Store that is a direct call;
// the sharded driver wraps the shard lock); only the leaf-image fetches
// run under it — up to readLeafBatch images per acquisition — and
// decoding happens on the immutable images outside. The chain walk is
// sound because splits keep the left sibling in place (so an as-of
// image's next pointer is the as-of successor) and leaves are never
// merged or freed while the tree lives.
func chainScanAsOf(tree *btree.Tree, stamp, from uint64, fieldOff, fieldLen int, locked func(func() error) error, fn func(key uint64, field []byte) bool) error {
	var imgs [][]byte
	var next core.PageID
	first, end := true, false
	for !end {
		imgs = imgs[:0]
		err := locked(func() error {
			if first {
				first = false
				// Start at the leaf currently routing from: if it existed
				// at the snapshot stamp it covered from then too (leaf
				// ranges only narrow). A leaf born after the stamp has no
				// as-of image; fall back to the stable chain head.
				pid, err := tree.LeafFor(from)
				if err != nil {
					return err
				}
				img, _, err := tree.LeafImageAsOf(pid, stamp)
				if err != nil {
					return err
				}
				if img == nil {
					head, err := tree.HeadLeaf()
					if err != nil {
						return err
					}
					img, _, err = tree.LeafImageAsOf(head, stamp)
					if err != nil {
						return err
					}
				}
				if img == nil {
					end = true
					return nil
				}
				imgs = append(imgs, img)
				next = btree.ImageNext(img)
			}
			for len(imgs) < readLeafBatch {
				if next == core.InvalidPageID {
					end = true
					return nil
				}
				img, _, err := tree.LeafImageAsOf(next, stamp)
				if err != nil {
					return err
				}
				if img == nil {
					// A mid-chain successor with no as-of image was born
					// after the snapshot: the as-of chain ends here.
					end = true
					return nil
				}
				imgs = append(imgs, img)
				next = btree.ImageNext(img)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, img := range imgs {
			more, err := tree.ScanImage(img, from, fieldOff, fieldLen, fn)
			if err != nil || !more {
				return err
			}
		}
	}
	return nil
}

// SaveSnapshot checkpoints the store and writes its entire durable state
// (NVM and SSD content) to path, so a simulated store can outlive the
// process. Load it with LoadSnapshot on a store opened with the same
// Options. Must not run inside a transaction.
func (s *Store) SaveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.e.SaveSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot replaces the store's state with a snapshot written by
// SaveSnapshot on a store with the same Options. Tables reappear under
// their ids.
func (s *Store) LoadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.e.LoadSnapshot(f)
}
