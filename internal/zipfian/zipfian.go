// Package zipfian generates Zipf-distributed keys using the algorithm of
// Gray et al., "Quickly generating billion-record synthetic databases"
// (SIGMOD 1994) — the same generator the paper cites for its YCSB setup
// ("Zipf-distributed (z = 1, non clustered popular keys)").
//
// Next returns ranks: rank 0 is the most popular. NextScrambled spreads
// the popular ranks uniformly over the key space ("non clustered popular
// keys") by hashing the rank, as YCSB's scrambled Zipfian does.
//
// A theta of exactly 1 makes Gray's closed form singular; following YCSB,
// the canonical "z = 1" workload uses theta = 0.99 (the Theta1 constant).
package zipfian

import "math"

// Theta1 is the skew used for the paper's "z = 1" workloads.
const Theta1 = 0.99

// Generator produces Zipf-distributed ranks in [0, n). It embeds its own
// deterministic random stream, so two generators with the same parameters
// and seed produce identical sequences. Not safe for concurrent use.
type Generator struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	state uint64
}

// New creates a generator over [0, n) with skew theta in (0, 1). It
// precomputes zeta(n), which is O(n) but done once.
func New(n uint64, theta float64, seed uint64) *Generator {
	if n == 0 {
		panic("zipfian: empty key space")
	}
	if theta <= 0 || theta >= 1 {
		panic("zipfian: theta must be in (0, 1); use Theta1 for z=1")
	}
	zetan := zeta(n, theta)
	g := &Generator{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		state: seed*2862933555777941757 + 3037000493,
	}
	return g
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// rand64 is SplitMix64 over the generator state.
func (g *Generator) rand64() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (g *Generator) Float64() float64 {
	return float64(g.rand64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n).
func (g *Generator) Uint64n(n uint64) uint64 {
	return g.rand64() % n
}

// Next returns the next Zipf-distributed rank in [0, n); rank 0 is the
// most popular.
func (g *Generator) Next() uint64 {
	u := g.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	r := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if r >= g.n {
		r = g.n - 1
	}
	return r
}

// NextScrambled returns a Zipf-distributed key in [0, n) with the popular
// keys scattered across the key space instead of clustered at 0.
func (g *Generator) NextScrambled() uint64 {
	return KeyAt(g.Next(), g.n)
}

// KeyAt maps a popularity rank to its scrambled key in [0, n): the key
// NextScrambled returns when Next draws that rank. It lets partitioned
// workloads enumerate the key space in popularity order.
func KeyAt(rank, n uint64) uint64 {
	return scramble(rank) % n
}

// scramble is a fixed SplitMix64 hash (independent of the random stream).
func scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
