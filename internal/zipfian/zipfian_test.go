package zipfian

import "testing"

func TestBounds(t *testing.T) {
	g := New(1000, Theta1, 42)
	for i := 0; i < 100000; i++ {
		if r := g.Next(); r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		if k := g.NextScrambled(); k >= 1000 {
			t.Fatalf("scrambled key %d out of range", k)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(5000, Theta1, 7)
	b := New(5000, Theta1, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := New(5000, Theta1, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds nearly identical: %d/1000 equal", same)
	}
}

func TestSkewShape(t *testing.T) {
	const n = 10000
	const draws = 2000000
	g := New(n, Theta1, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	// Rank 0 must be the most frequent and dominate rank 100 by roughly
	// 100^0.99; allow generous slack.
	if counts[0] < counts[1] {
		t.Fatalf("rank 0 (%d) less frequent than rank 1 (%d)", counts[0], counts[1])
	}
	ratio := float64(counts[0]) / float64(counts[100]+1)
	if ratio < 20 || ratio > 500 {
		t.Fatalf("count(0)/count(100) = %.1f, expected ~95", ratio)
	}
	// The head must carry substantial mass: top 1% of ranks well over
	// a third of all draws for theta=0.99, n=10k.
	head := 0
	for i := 0; i < n/100; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.3 {
		t.Fatalf("top 1%% of ranks has %.2f of mass, expected Zipf head", frac)
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	const n = 10000
	g := New(n, Theta1, 3)
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		counts[g.NextScrambled()]++
	}
	// The hottest key should not be key 0 in general (popular ranks are
	// scattered), and hot keys should not all be adjacent.
	hot := uint64(0)
	max := 0
	for k, c := range counts {
		if c > max {
			max, hot = c, k
		}
	}
	if hot == 0 {
		t.Log("hottest key is 0; allowed but suspicious")
	}
	// Find the two hottest keys; they must not be neighbors.
	second := uint64(0)
	secondMax := 0
	for k, c := range counts {
		if k != hot && c > secondMax {
			secondMax, second = c, k
		}
	}
	d := int64(hot) - int64(second)
	if d == 1 || d == -1 {
		t.Fatalf("two hottest keys adjacent: %d, %d", hot, second)
	}
}

func TestUniformHelpers(t *testing.T) {
	g := New(10, Theta1, 9)
	for i := 0; i < 1000; i++ {
		if v := g.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
		if f := g.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f", f)
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, Theta1, 1) },
		func() { New(10, 1.0, 1) },
		func() { New(10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}
