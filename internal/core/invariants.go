package core

import "fmt"

// CheckInvariants validates the buffer manager's internal consistency and
// returns a descriptive error on the first violation. It is exported for
// tests and debugging tools; it walks every frame and is not meant for hot
// paths.
func (m *Manager) CheckInvariants() error {
	counts := make(map[*Frame]int32)
	for idx, f := range m.frames {
		if f == nil {
			continue
		}
		if int(f.idx) != idx {
			return fmt.Errorf("frame at %d has idx %d", idx, f.idx)
		}
		if f.promoted != nil {
			continue // wrapper: state lives in the promoted frame
		}
		if loc, ok := m.table[f.pid]; !ok || !loc.inDRAM() || loc.frame() != f.idx {
			return fmt.Errorf("page %d frame %d not mapped correctly (loc=%v ok=%v)", f.pid, f.idx, loc, ok)
		}
		switch {
		case f.parent != nil:
			counts[f.parent]++
			ref := getRef(f.parent.data, int(f.parentOff))
			if !ref.Swizzled() || ref.frameIndex() != f.idx {
				return fmt.Errorf("page %d frame %d: parent page %d word at %d is %#x, want swizzled ref to frame %d",
					f.pid, f.idx, f.parent.pid, f.parentOff, uint64(ref), f.idx)
			}
		case f.rootHolder != nil:
			ref := *f.rootHolder
			if !ref.Swizzled() || ref.frameIndex() != f.idx {
				return fmt.Errorf("page %d frame %d: root holder is %#x, want swizzled ref to frame %d",
					f.pid, f.idx, uint64(ref), f.idx)
			}
		}
	}
	for p, n := range counts {
		if p.swizzledChildren != n {
			return fmt.Errorf("page %d: swizzledChildren=%d but %d frames name it as parent", p.pid, p.swizzledChildren, n)
		}
	}
	return nil
}
