package core

import (
	"fmt"
	"testing"

	"nvmstore/internal/obs"
)

// TestPageLifecycleEvents drives one page through the full three-tier
// lifecycle by calling the eviction paths directly (no clock-hand
// scheduling involved) and asserts the exact event sequence the tracer
// must emit: allocation, SSD round trip through the admission-set denial,
// NVM admission, mini-page load, promotion, NVM write-back, and the final
// eviction of its NVM slot to SSD.
func TestPageLifecycleEvents(t *testing.T) {
	rec := obs.NewCollector(1024)
	m, err := New(Config{
		Topology:         ThreeTier,
		NVMBytes:         64 * slotSize,
		SSDBytes:         1 << 20,
		CacheLineGrained: true,
		MiniPages:        true,
		Recorder:         rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Allocate and dirty a page, then evict it. The admission set has not
	// seen the page, so it is denied NVM and written to SSD.
	h, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pid := h.PID()
	copy(h.Write(0, 8), "lifetest")
	m.Unfix(h)
	m.evictFrame(h.f)

	// Reload from SSD and evict again: now the admission set remembers
	// the page and it moves into the NVM cache.
	h, err = m.Fix(MakeRef(pid), ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	m.Unfix(h)
	m.evictFrame(h.f)

	// Cache-line-grained fix materializes it as a mini page; a small read
	// loads one line; a full write promotes it and dirties every line.
	h, err = m.Fix(MakeRef(pid), ModeCacheLine)
	if err != nil {
		t.Fatal(err)
	}
	if string(h.Read(0, 8)) != "lifetest" {
		t.Fatalf("page content lost: %q", h.Read(0, 8))
	}
	h.WriteAll()
	full := h.f.promoted
	if full == nil {
		t.Fatal("WriteAll did not promote the mini page")
	}
	m.Unfix(h)

	// Evict the dirty full page (write-back to its NVM slot), then evict
	// the NVM slot itself (write-back to SSD).
	m.evictFrame(full)
	if _, err := m.evictNVMSlot(); err != nil {
		t.Fatal(err)
	}

	type step struct {
		kind   obs.EventKind
		tier   obs.Tier
		detail uint32
	}
	want := []step{
		{obs.EvAlloc, obs.TierDRAM, 0},
		{obs.EvWriteback, obs.TierSSD, 0}, // dirty + denied: to SSD
		{obs.EvDeny, obs.TierNVM, 0},
		{obs.EvEvict, obs.TierDRAM, 0},
		{obs.EvLoad, obs.TierSSD, 0},
		{obs.EvAdmit, obs.TierNVM, 0}, // second eviction admits
		{obs.EvEvict, obs.TierDRAM, 0},
		{obs.EvLoad, obs.TierNVM, 1},     // detail 1 = mini page
		{obs.EvLineLoad, obs.TierNVM, 1}, // the 8-byte read
		{obs.EvPromote, obs.TierDRAM, 1}, // 1 line resident at promotion
		{obs.EvLineLoad, obs.TierNVM, LinesPerPage - 1},
		{obs.EvWriteback, obs.TierNVM, 0},
		{obs.EvEvict, obs.TierDRAM, 0},
		{obs.EvWriteback, obs.TierSSD, 0},
		{obs.EvEvict, obs.TierNVM, 0},
	}
	got := rec.Trace().EventsFor(uint64(pid))
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%s", len(got), len(want), dumpEvents(got))
	}
	var lastNs int64
	for i, e := range got {
		w := want[i]
		if e.Kind != w.kind || e.Tier != w.tier || e.Detail != w.detail {
			t.Fatalf("event %d = %s/%s/%d, want %s/%s/%d\n%s",
				i, e.Kind, e.Tier, e.Detail, w.kind, w.tier, w.detail, dumpEvents(got))
		}
		if e.SimNs < lastNs {
			t.Fatalf("event %d time %d before predecessor %d", i, e.SimNs, lastNs)
		}
		lastNs = e.SimNs
	}

	// The journey must also have filled the matching histograms.
	snap := rec.Snapshot()
	for _, op := range []obs.Op{
		obs.OpSSDRead, obs.OpSSDWrite, obs.OpNVMLineLoad, obs.OpMiniPromote,
		obs.OpDRAMEvict, obs.OpNVMAdmit, obs.OpNVMEvict,
	} {
		if snap.Ops[op].Count() == 0 {
			t.Errorf("no %v samples recorded", op)
		}
	}
	if snap.Ops[obs.OpSSDRead].Max < int64(m.cfg.SSDReadLatency) {
		t.Errorf("ssd.read max %d below device latency %d",
			snap.Ops[obs.OpSSDRead].Max, int64(m.cfg.SSDReadLatency))
	}
}

func dumpEvents(ev []obs.Event) string {
	s := ""
	for i, e := range ev {
		s += fmt.Sprintf("  %2d: %s/%s detail=%d\n", i, e.Kind, e.Tier, e.Detail)
	}
	return s
}

// TestResidencyGauges checks the instantaneous gauges against a known
// buffer state.
func TestResidencyGauges(t *testing.T) {
	m, err := New(Config{
		Topology:         ThreeTier,
		NVMBytes:         64 * slotSize,
		SSDBytes:         1 << 20,
		CacheLineGrained: true,
		MiniPages:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	r := m.Residency()
	if r.DRAMFullPages != 1 || r.DRAMMiniPages != 0 {
		t.Fatalf("full/mini = %d/%d", r.DRAMFullPages, r.DRAMMiniPages)
	}
	if r.DRAMLinesResident != LinesPerPage || r.DRAMLinesDirty != LinesPerPage {
		t.Fatalf("lines resident/dirty = %d/%d", r.DRAMLinesResident, r.DRAMLinesDirty)
	}
	if r.DRAMDirtyPages != 1 || r.DRAMPinnedPages != 1 {
		t.Fatalf("dirty/pinned = %d/%d", r.DRAMDirtyPages, r.DRAMPinnedPages)
	}
	if r.NVMSlots != 64 || r.NVMPages != 0 {
		t.Fatalf("nvm slots/pages = %d/%d", r.NVMSlots, r.NVMPages)
	}

	// Evict twice: deny to SSD, reload, admit to NVM clean.
	pid := h.PID()
	m.Unfix(h)
	m.evictFrame(h.f)
	r = m.Residency()
	if r.DRAMFullPages != 0 || r.SSDPages != 1 || r.NVMPages != 0 {
		t.Fatalf("after deny: %+v", r)
	}
	h, err = m.Fix(MakeRef(pid), ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	m.Unfix(h)
	m.evictFrame(h.f)
	r = m.Residency()
	if r.NVMPages != 1 || r.NVMDirtyPages != 0 {
		t.Fatalf("after admit: %+v", r)
	}

	// Mini-page fix: one line resident.
	h, err = m.Fix(MakeRef(pid), ModeCacheLine)
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0, 8)
	r = m.Residency()
	if r.DRAMMiniPages != 1 || r.DRAMLinesResident != 1 {
		t.Fatalf("mini: %+v", r)
	}
	m.Unfix(h)

	// Add must sum every field.
	var sum Residency
	sum.Add(r)
	sum.Add(r)
	if sum.DRAMMiniPages != 2*r.DRAMMiniPages || sum.NVMSlots != 2*r.NVMSlots || sum.SSDPages != 2*r.SSDPages {
		t.Fatalf("Add: %+v vs %+v", sum, r)
	}
}

// TestRecorderZeroOverheadPath ensures a manager without a recorder never
// records: the nil checks must keep every obs call off the path.
func TestRecorderDisabled(t *testing.T) {
	m, err := New(Config{
		Topology:         ThreeTier,
		NVMBytes:         64 * slotSize,
		SSDBytes:         1 << 20,
		CacheLineGrained: true,
		MiniPages:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Write(0, 8), "disabled")
	m.Unfix(h)
	m.evictFrame(h.f)
	// Nothing to assert beyond "did not panic": with rec == nil every
	// instrumentation site must be skipped.
	if m.rec != nil {
		t.Fatal("recorder unexpectedly installed")
	}
}
