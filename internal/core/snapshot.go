package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshots make a simulated store outlive its process: SaveSnapshot
// performs a clean shutdown and serializes the persistent devices;
// LoadSnapshot restores them into a freshly configured Manager and rebuilds
// the volatile state exactly as a clean restart does (§4.4). The snapshot
// header pins the configuration fields that determine the device layout,
// so a snapshot cannot be loaded into an incompatible manager.

const managerSnapMagic = 0x4e564d53544f5250 // "NVMSTORP"

// SaveSnapshot cleanly shuts the manager down (writing every dirty page to
// its persistent home) and writes the durable state to w. The manager
// remains usable afterwards, as after a CleanRestart.
func (m *Manager) SaveSnapshot(w io.Writer) error {
	if err := m.CleanShutdown(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var hdr [48]byte
	binary.LittleEndian.PutUint64(hdr[0:], managerSnapMagic)
	hdr[8] = byte(m.cfg.Topology)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.cfg.NVMBytes))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(m.cfg.SSDBytes))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(m.cfg.WALBytes))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(m.nextPID))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := m.nvm.WriteSnapshot(bw); err != nil {
		return err
	}
	if m.ssd != nil {
		if err := m.ssd.WriteSnapshot(bw); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return m.reopen()
}

// LoadSnapshot restores a snapshot written by SaveSnapshot into this
// manager, whose configuration must match the snapshot's device layout
// (topology, NVM/SSD/WAL sizes). All current content is replaced.
func (m *Manager) LoadSnapshot(r io.Reader) error {
	for _, f := range m.frames {
		if f != nil && f.pins > 0 {
			return fmt.Errorf("core: snapshot load with page %d pinned", f.pid)
		}
	}
	br := bufio.NewReader(r)
	var hdr [48]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != managerSnapMagic {
		return fmt.Errorf("core: bad snapshot magic")
	}
	if Topology(hdr[8]) != m.cfg.Topology {
		return fmt.Errorf("core: snapshot topology %v does not match manager %v", Topology(hdr[8]), m.cfg.Topology)
	}
	for _, check := range []struct {
		name string
		got  int64
		off  int
	}{
		{"NVMBytes", m.cfg.NVMBytes, 16},
		{"SSDBytes", m.cfg.SSDBytes, 24},
		{"WALBytes", m.cfg.WALBytes, 32},
	} {
		if want := int64(binary.LittleEndian.Uint64(hdr[check.off:])); want != check.got {
			return fmt.Errorf("core: snapshot %s %d does not match manager %d", check.name, want, check.got)
		}
	}
	// Drop volatile state, then restore the devices.
	for _, f := range m.frames {
		if f != nil {
			m.dropFrame(f)
		}
	}
	if err := m.nvm.ReadSnapshot(br); err != nil {
		return err
	}
	if m.ssd != nil {
		if err := m.ssd.ReadSnapshot(br); err != nil {
			return err
		}
	}
	return m.reopen()
}
