package core

import (
	"encoding/binary"
	"fmt"

	"nvmstore/internal/obs"
)

// frameKind distinguishes the three in-memory representations of a page.
type frameKind uint8

const (
	// kindFull is a full 16 kB page (§3.1). When NVM-backed and accessed
	// in cache-line-grained mode, its resident bitmask tracks which lines
	// have been loaded.
	kindFull frameKind = iota
	// kindMini is a mini page (§3.2): up to 16 cache lines behind a slot
	// indirection, promoted to a full page on overflow.
	kindMini
	// kindDirect is not a DRAM copy at all but a window onto the NVM
	// device, used by the NVM Direct architecture: reads charge NVM
	// latency, writes are flushed in place on unfix.
	kindDirect
)

// Frame is the in-DRAM state of a fixed page: the page data (or a view of
// it) plus the header fields the paper keeps in the first one or two cache
// lines of the page (residency and dirty masks, the NVM backing pointer,
// the swizzling back-pointer) and the buffer-management bookkeeping.
type Frame struct {
	kind frameKind
	pid  PageID
	idx  int32 // frame-table index; -1 for direct frames

	// data holds PageSize bytes for full frames, MiniDataSize bytes for
	// mini frames, and an NVM device view for direct frames.
	data []byte

	// Cache-line residency and dirtiness (full frames). fullyResident
	// and anyDirty are the paper's r and d header bits.
	resident      bitmask
	dirty         bitmask
	fullyResident bool
	anyDirty      bool

	// Mini-page state: slots[i] is the physical cache-line id stored in
	// the i-th data slot; the slots are kept sorted by physical id so
	// that physically consecutive lines are contiguous in data.
	slots     [MiniLines]uint8
	count     uint8
	miniDirty uint16
	// promoted forwards all access to the full page this mini page was
	// promoted into ("partially promoted", §3.2).
	promoted *Frame

	// nvmSlot is the NVM page slot backing this frame, or -1.
	nvmSlot int64

	// Swizzling back-pointers (§3.3): at most one of parent/rootHolder
	// is set while this page is swizzled. parentOff is the byte offset
	// of the reference word inside the parent page.
	parent           *Frame
	parentOff        int32
	rootHolder       *Ref
	swizzledChildren int32

	pins       int32
	referenced bool
}

// PID returns the identifier of the page held by the frame.
func (f *Frame) PID() PageID { return f.pid }

func (f *Frame) swizzled() bool { return f.parent != nil || f.rootHolder != nil }

// getRef reads the page reference word at byte offset off of data.
func getRef(data []byte, off int) Ref {
	return Ref(binary.LittleEndian.Uint64(data[off:]))
}

// putRef writes a page reference word at byte offset off of data. Swizzle
// and unswizzle use it directly, bypassing dirty tracking: a swizzled word
// is a transient in-memory representation, never persisted, and restoring
// the page id on unswizzle returns the bytes to their persistent value.
func putRef(data []byte, off int, r Ref) {
	binary.LittleEndian.PutUint64(data[off:], uint64(r))
}

// lineSpan returns the first and last cache line covered by [off, off+n).
func lineSpan(off, n int) (first, last int) {
	return off / LineSize, (off + n - 1) / LineSize
}

func (f *Frame) checkSpan(off, n int) {
	if off < 0 || n <= 0 || off+n > PageSize {
		panic(fmt.Sprintf("core: page access [%d, %d) outside page of %d bytes", off, off+n, PageSize))
	}
}

// read returns a slice covering [off, off+n) of the page, loading missing
// cache lines from NVM first (MakeResident, §3.2). The returned slice is
// valid until the next access to the same page: a later load into a mini
// page may shift its data array.
func (f *Frame) read(m *Manager, off, n int) []byte {
	f.checkSpan(off, n)
	switch f.kind {
	case kindDirect:
		base := m.slotDataOff(f.nvmSlot)
		m.nvm.Touch(base+int64(off), n)
		return f.data[off : off+n]
	case kindMini:
		return f.miniAccess(m, off, n, false)
	default:
		if !f.fullyResident {
			a, b := lineSpan(off, n)
			f.ensureLines(m, a, b)
		}
		return f.data[off : off+n]
	}
}

// write returns a writable slice covering [off, off+n), loading missing
// cache lines first (a partially overwritten line needs its old content)
// and marking the covered lines dirty. The same validity rule as read
// applies.
func (f *Frame) write(m *Manager, off, n int) []byte {
	f.checkSpan(off, n)
	switch f.kind {
	case kindDirect:
		a, b := lineSpan(off, n)
		f.dirty.setRange(a, b)
		f.anyDirty = true
		return f.data[off : off+n]
	case kindMini:
		return f.miniAccess(m, off, n, true)
	default:
		a, b := lineSpan(off, n)
		if !f.fullyResident {
			f.ensureLines(m, a, b)
		}
		f.dirty.setRange(a, b)
		f.anyDirty = true
		return f.data[off : off+n]
	}
}

// readAll returns the entire page, loading whatever is missing. This is
// the full-page path the paper uses for restructuring operations, which
// avoids per-access residency checks.
func (f *Frame) readAll(m *Manager) []byte {
	switch f.kind {
	case kindDirect:
		base := m.slotDataOff(f.nvmSlot)
		m.nvm.Touch(base, PageSize)
		return f.data
	case kindMini:
		full := f.forward(m)
		return full.readAll(m)
	default:
		if !f.fullyResident {
			f.ensureLines(m, 0, LinesPerPage-1)
		}
		return f.data
	}
}

// writeAll returns the entire page for writing, marking every line dirty.
func (f *Frame) writeAll(m *Manager) []byte {
	switch f.kind {
	case kindDirect:
		f.dirty.setRange(0, LinesPerPage-1)
		f.anyDirty = true
		return f.data
	case kindMini:
		full := f.forward(m)
		return full.writeAll(m)
	default:
		if !f.fullyResident {
			f.ensureLines(m, 0, LinesPerPage-1)
		}
		f.dirty.setRange(0, LinesPerPage-1)
		f.anyDirty = true
		return f.data
	}
}

// ensureLines loads the missing cache lines in [a, b] from the frame's NVM
// backing, coalescing contiguous runs into single device reads.
func (f *Frame) ensureLines(m *Manager, a, b int) {
	if f.nvmSlot < 0 {
		// Pages without NVM backing are created fully resident; reaching
		// this point means frame state is corrupt.
		panic("core: partial page without NVM backing")
	}
	base := m.slotDataOff(f.nvmSlot)
	var t0 int64
	if m.rec != nil {
		t0 = m.clk.Ns()
	}
	loaded := 0
	f.resident.clearRuns(a, b, func(from, to int) {
		off := from * LineSize
		end := (to + 1) * LineSize
		m.nvm.ReadAt(f.data[off:end], base+int64(off))
		f.resident.setRange(from, to)
		m.stats.LinesLoaded += int64(to - from + 1)
		loaded += to - from + 1
	})
	if m.rec != nil && loaded > 0 {
		m.rec.Latency(obs.OpNVMLineLoad, m.clk.Ns()-t0)
		m.trace(f.pid, f.idx, obs.EvLineLoad, obs.TierNVM, uint32(loaded))
	}
	if f.resident.full() {
		f.fullyResident = true
	}
}

// forward promotes a mini page if necessary and returns the full page all
// further access goes to.
func (f *Frame) forward(m *Manager) *Frame {
	if f.promoted == nil {
		m.promoteMini(f)
	}
	return f.promoted
}

// miniHas returns the slot index holding physical line id, or -1.
func (f *Frame) miniHas(line uint8) int {
	for i := 0; i < int(f.count); i++ {
		if f.slots[i] == line {
			return i
		}
		if f.slots[i] > line {
			return -1
		}
	}
	return -1
}

// miniAccess is MakeResident for mini pages: it resolves the slot
// indirection, loading and inserting missing lines in sorted order, and
// promotes to a full page when the request does not fit.
func (f *Frame) miniAccess(m *Manager, off, n int, forWrite bool) []byte {
	if f.promoted != nil {
		if forWrite {
			return f.promoted.write(m, off, n)
		}
		return f.promoted.read(m, off, n)
	}
	a, b := lineSpan(off, n)
	missing := 0
	for l := a; l <= b; l++ {
		if f.miniHas(uint8(l)) < 0 {
			missing++
		}
	}
	if int(f.count)+missing > MiniLines {
		full := f.forward(m)
		if forWrite {
			return full.write(m, off, n)
		}
		return full.read(m, off, n)
	}
	for l := a; l <= b; l++ {
		f.miniEnsure(m, uint8(l))
	}
	pos := f.miniHas(uint8(a))
	if forWrite {
		for l := a; l <= b; l++ {
			f.miniDirty |= 1 << uint(f.miniHas(uint8(l)))
		}
		f.anyDirty = true
	}
	start := pos*LineSize + off%LineSize
	return f.data[start : start+n]
}

// miniEnsure loads physical line into the mini page if absent, keeping
// slots sorted by physical id. Sorted order guarantees that physically
// consecutive lines are consecutive in the data array, which is what makes
// multi-line requests return contiguous memory (§3.2).
func (f *Frame) miniEnsure(m *Manager, line uint8) {
	if f.miniHas(line) >= 0 {
		return
	}
	if int(f.count) >= MiniLines {
		panic("core: mini page overflow not promoted")
	}
	// Find the insertion position.
	pos := int(f.count)
	for i := 0; i < int(f.count); i++ {
		if f.slots[i] > line {
			pos = i
			break
		}
	}
	// Shift slots, data, and the dirty mask up by one.
	copy(f.slots[pos+1:f.count+1], f.slots[pos:f.count])
	copy(f.data[(pos+1)*LineSize:(int(f.count)+1)*LineSize], f.data[pos*LineSize:int(f.count)*LineSize])
	low := uint16(1)<<uint(pos) - 1
	f.miniDirty = (f.miniDirty & low) | (f.miniDirty&^low)<<1
	f.slots[pos] = line
	f.count++
	// Load the line from the NVM backing.
	base := m.slotDataOff(f.nvmSlot)
	dst := f.data[pos*LineSize : (pos+1)*LineSize]
	var t0 int64
	if m.rec != nil {
		t0 = m.clk.Ns()
	}
	m.nvm.ReadAt(dst, base+int64(line)*LineSize)
	m.stats.LinesLoaded++
	if m.rec != nil {
		m.rec.Latency(obs.OpNVMLineLoad, m.clk.Ns()-t0)
		m.trace(f.pid, f.idx, obs.EvLineLoad, obs.TierNVM, 1)
	}
}
