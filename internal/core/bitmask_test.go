package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmaskSetGetClear(t *testing.T) {
	var b bitmask
	for _, i := range []int{0, 1, 63, 64, 127, 128, 255} {
		if b.get(i) {
			t.Fatalf("fresh mask has bit %d set", i)
		}
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set after set", i)
		}
	}
	if got := b.count(); got != 7 {
		t.Fatalf("count() = %d, want 7", got)
	}
	b.clear(64)
	if b.get(64) {
		t.Fatal("bit 64 still set after clear")
	}
	b.reset()
	if b.any() {
		t.Fatal("mask not empty after reset")
	}
}

func TestBitmaskFull(t *testing.T) {
	var b bitmask
	if b.full() {
		t.Fatal("empty mask reports full")
	}
	b.setRange(0, LinesPerPage-1)
	if !b.full() {
		t.Fatal("all-set mask does not report full")
	}
	b.clear(200)
	if b.full() {
		t.Fatal("mask with a hole reports full")
	}
}

func TestBitmaskNextClearNextSet(t *testing.T) {
	var b bitmask
	b.setRange(10, 20)
	b.set(100)
	if got := b.nextSet(0); got != 10 {
		t.Fatalf("nextSet(0) = %d, want 10", got)
	}
	if got := b.nextSet(21); got != 100 {
		t.Fatalf("nextSet(21) = %d, want 100", got)
	}
	if got := b.nextSet(101); got != LinesPerPage {
		t.Fatalf("nextSet(101) = %d, want %d", got, LinesPerPage)
	}
	if got := b.nextClear(10); got != 21 {
		t.Fatalf("nextClear(10) = %d, want 21", got)
	}
	if got := b.nextClear(0); got != 0 {
		t.Fatalf("nextClear(0) = %d, want 0", got)
	}
	b.setRange(0, LinesPerPage-1)
	if got := b.nextClear(0); got != LinesPerPage {
		t.Fatalf("nextClear on full mask = %d, want %d", got, LinesPerPage)
	}
}

func TestBitmaskRuns(t *testing.T) {
	var b bitmask
	b.setRange(5, 7)
	b.set(9)
	b.setRange(63, 65)

	var setRuns [][2]int
	b.setRuns(0, LinesPerPage-1, func(from, to int) {
		setRuns = append(setRuns, [2]int{from, to})
	})
	want := [][2]int{{5, 7}, {9, 9}, {63, 65}}
	if len(setRuns) != len(want) {
		t.Fatalf("setRuns = %v, want %v", setRuns, want)
	}
	for i := range want {
		if setRuns[i] != want[i] {
			t.Fatalf("setRuns = %v, want %v", setRuns, want)
		}
	}

	var clearRuns [][2]int
	b.clearRuns(4, 10, func(from, to int) {
		clearRuns = append(clearRuns, [2]int{from, to})
	})
	wantClear := [][2]int{{4, 4}, {8, 8}, {10, 10}}
	if len(clearRuns) != len(wantClear) {
		t.Fatalf("clearRuns = %v, want %v", clearRuns, wantClear)
	}
	for i := range wantClear {
		if clearRuns[i] != wantClear[i] {
			t.Fatalf("clearRuns = %v, want %v", clearRuns, wantClear)
		}
	}
}

// TestBitmaskRunsCoverExactly checks, with random masks, that setRuns and
// clearRuns partition the queried interval without overlap or omission.
func TestBitmaskRunsCoverExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var b bitmask
		ref := make([]bool, LinesPerPage)
		for i := 0; i < LinesPerPage; i++ {
			if rng.Intn(2) == 0 {
				b.set(i)
				ref[i] = true
			}
		}
		lo := rng.Intn(LinesPerPage)
		hi := lo + rng.Intn(LinesPerPage-lo)

		covered := make([]int, LinesPerPage)
		b.setRuns(lo, hi, func(from, to int) {
			for i := from; i <= to; i++ {
				covered[i]++
			}
		})
		b.clearRuns(lo, hi, func(from, to int) {
			for i := from; i <= to; i++ {
				covered[i] += 2
			}
		})
		for i := lo; i <= hi; i++ {
			want := 2
			if ref[i] {
				want = 1
			}
			if covered[i] != want {
				t.Fatalf("trial %d: line %d covered %d times (set=%v)", trial, i, covered[i], ref[i])
			}
		}
		for i := 0; i < lo; i++ {
			if covered[i] != 0 {
				t.Fatalf("trial %d: line %d outside [%d,%d] covered", trial, i, lo, hi)
			}
		}
		for i := hi + 1; i < LinesPerPage; i++ {
			if covered[i] != 0 {
				t.Fatalf("trial %d: line %d outside [%d,%d] covered", trial, i, lo, hi)
			}
		}
	}
}

func TestBitmaskQuickCountMatchesReference(t *testing.T) {
	f := func(bits []uint8) bool {
		var b bitmask
		ref := make(map[int]bool)
		for _, x := range bits {
			i := int(x) % LinesPerPage
			b.set(i)
			ref[i] = true
		}
		return b.count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRefEncoding(t *testing.T) {
	r := MakeRef(42)
	if r.Swizzled() {
		t.Fatal("plain ref reports swizzled")
	}
	if r.PageID() != 42 {
		t.Fatalf("PageID() = %d, want 42", r.PageID())
	}
	s := swizzledRef(7)
	if !s.Swizzled() {
		t.Fatal("swizzled ref not recognized")
	}
	if s.frameIndex() != 7 {
		t.Fatalf("frameIndex() = %d, want 7", s.frameIndex())
	}
	var zero Ref
	if !zero.IsNull() {
		t.Fatal("zero ref not null")
	}
	if MakeRef(1).IsNull() {
		t.Fatal("non-zero ref reports null")
	}
}

func TestLocationEncoding(t *testing.T) {
	d := dramLoc(12)
	if !d.inDRAM() || d.frame() != 12 {
		t.Fatalf("dramLoc roundtrip failed: %v", d)
	}
	nl := nvmLoc(99)
	if nl.inDRAM() || nl.nvmSlot() != 99 {
		t.Fatalf("nvmLoc roundtrip failed: %v", nl)
	}
	if d.String() != "dram(12)" || nl.String() != "nvm(99)" {
		t.Fatalf("String() = %q, %q", d.String(), nl.String())
	}
}

func TestAdmissionSet(t *testing.T) {
	var s admissionSet
	s.init(2)
	if s.checkAndUpdate(1) {
		t.Fatal("first sighting of page 1 admitted")
	}
	if !s.checkAndUpdate(1) {
		t.Fatal("second sighting of page 1 denied")
	}
	// Page 1 was removed on admission; it must be denied again.
	if s.checkAndUpdate(1) {
		t.Fatal("page 1 admitted again without a new denial")
	}

	// Capacity eviction: 2 and 3 fill the set, 4 evicts 2.
	s.checkAndUpdate(2)
	s.checkAndUpdate(3)
	s.checkAndUpdate(4)
	if s.checkAndUpdate(2) {
		t.Fatal("page 2 admitted although it was evicted from the set")
	}
}

func TestAdmissionSetDisabled(t *testing.T) {
	var s admissionSet
	s.init(-1)
	if !s.checkAndUpdate(5) {
		t.Fatal("disabled admission set denied a page")
	}
}

func TestTopologyString(t *testing.T) {
	names := map[Topology]string{
		MemOnly:   "Main Memory",
		DRAMSSD:   "SSD BM",
		DRAMNVM:   "Basic NVM BM",
		ThreeTier: "3 Tier BM",
		DirectNVM: "NVM Direct",
	}
	for topo, want := range names {
		if got := topo.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", topo, got, want)
		}
	}
}
