package core

// Residency is a set of gauges describing where pages currently live in
// the storage hierarchy. Unlike Stats (event counters), these are
// instantaneous values computed by walking the manager's in-DRAM state;
// nothing on the hot path maintains them. The same synchronization
// contract as Stats applies: call only while the owning engine is idle.
type Residency struct {
	// DRAM buffer pool.
	DRAMFullPages     int64 `json:"dramFullPages"`
	DRAMMiniPages     int64 `json:"dramMiniPages"`
	DRAMLinesResident int64 `json:"dramLinesResident"`
	DRAMLinesDirty    int64 `json:"dramLinesDirty"`
	DRAMDirtyPages    int64 `json:"dramDirtyPages"`
	DRAMPinnedPages   int64 `json:"dramPinnedPages"`
	DRAMBytesUsed     int64 `json:"dramBytesUsed"`

	// NVM tier: pages cached (ThreeTier) or stored (DRAMNVM, DirectNVM)
	// on NVM, and — for the cache — how many are newer than their SSD
	// copy.
	NVMPages      int64 `json:"nvmPages"`
	NVMDirtyPages int64 `json:"nvmDirtyPages"`
	NVMSlots      int64 `json:"nvmSlots"`

	// SSD tier: pages written to the SSD at least once.
	SSDPages int64 `json:"ssdPages"`
}

// Add folds other into r, for aggregating per-shard gauges.
func (r *Residency) Add(other Residency) {
	r.DRAMFullPages += other.DRAMFullPages
	r.DRAMMiniPages += other.DRAMMiniPages
	r.DRAMLinesResident += other.DRAMLinesResident
	r.DRAMLinesDirty += other.DRAMLinesDirty
	r.DRAMDirtyPages += other.DRAMDirtyPages
	r.DRAMPinnedPages += other.DRAMPinnedPages
	r.DRAMBytesUsed += other.DRAMBytesUsed
	r.NVMPages += other.NVMPages
	r.NVMDirtyPages += other.NVMDirtyPages
	r.NVMSlots += other.NVMSlots
	r.SSDPages += other.SSDPages
}

// popcount16 counts the set bits of a mini page's dirty mask.
func popcount16(x uint16) int64 {
	n := int64(0)
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Residency computes the current per-tier residency gauges.
func (m *Manager) Residency() Residency {
	var r Residency
	for _, f := range m.frames {
		if f == nil {
			continue
		}
		if f.kind == kindMini {
			r.DRAMMiniPages++
			if f.promoted == nil {
				r.DRAMLinesResident += int64(f.count)
				r.DRAMLinesDirty += popcount16(f.miniDirty)
			}
		} else {
			r.DRAMFullPages++
			if f.fullyResident {
				r.DRAMLinesResident += LinesPerPage
			} else {
				r.DRAMLinesResident += int64(f.resident.count())
			}
			r.DRAMLinesDirty += int64(f.dirty.count())
		}
		if f.anyDirty {
			r.DRAMDirtyPages++
		}
		if f.pins > 0 {
			r.DRAMPinnedPages++
		}
	}
	r.DRAMBytesUsed = m.dramUsed
	r.NVMSlots = m.nvmSlots
	switch m.cfg.Topology {
	case ThreeTier:
		for i := range m.nvmDir {
			e := &m.nvmDir[i]
			if e.pid == 0 {
				continue
			}
			r.NVMPages++
			if e.dirtyWrtSSD {
				r.NVMDirtyPages++
			}
		}
	case DRAMNVM, DirectNVM:
		// Every allocated page lives on NVM; there is no separate cache
		// directory.
		r.NVMPages = int64(m.nextPID-1) - int64(len(m.freePIDs))
	}
	if m.ssd != nil {
		r.SSDPages = m.ssd.Allocated()
	}
	return r
}
