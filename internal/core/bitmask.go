package core

import "math/bits"

// bitmask tracks one bit per cache line of a full page (256 lines), used
// for the resident and dirty masks of cache-line-grained pages (§3.1).
// The paper sizes these masks at 32 bytes each; [4]uint64 is exactly that.
type bitmask [LinesPerPage / 64]uint64

// set sets bit i.
func (b *bitmask) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// clear clears bit i.
func (b *bitmask) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// get reports bit i.
func (b *bitmask) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// setRange sets bits [from, to] inclusive.
func (b *bitmask) setRange(from, to int) {
	for i := from; i <= to; i++ {
		b.set(i)
	}
}

// reset clears all bits.
func (b *bitmask) reset() { *b = bitmask{} }

// count returns the number of set bits.
func (b *bitmask) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// full reports whether all bits are set.
func (b *bitmask) full() bool {
	for _, w := range b {
		if w != ^uint64(0) {
			return false
		}
	}
	return true
}

// any reports whether any bit is set.
func (b *bitmask) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// nextClear returns the index of the first clear bit at or after i, or
// LinesPerPage if all remaining bits are set.
func (b *bitmask) nextClear(i int) int {
	for i < LinesPerPage {
		w := ^b[i>>6] >> (uint(i) & 63)
		if w != 0 {
			return i + bits.TrailingZeros64(w)
		}
		i = (i>>6 + 1) << 6
	}
	return LinesPerPage
}

// nextSet returns the index of the first set bit at or after i, or
// LinesPerPage if none remains.
func (b *bitmask) nextSet(i int) int {
	for i < LinesPerPage {
		w := b[i>>6] >> (uint(i) & 63)
		if w != 0 {
			return i + bits.TrailingZeros64(w)
		}
		i = (i>>6 + 1) << 6
	}
	return LinesPerPage
}

// clearRuns calls fn for every maximal run [from, to] of clear bits within
// [lo, hi] inclusive. It is used to coalesce NVM reads of missing lines.
func (b *bitmask) clearRuns(lo, hi int, fn func(from, to int)) {
	i := lo
	for i <= hi {
		from := b.nextClear(i)
		if from > hi {
			return
		}
		to := b.nextSet(from) - 1
		if to > hi {
			to = hi
		}
		fn(from, to)
		i = to + 1
	}
}

// setRuns calls fn for every maximal run [from, to] of set bits within
// [lo, hi] inclusive. It is used to coalesce NVM write-backs of dirty
// lines.
func (b *bitmask) setRuns(lo, hi int, fn func(from, to int)) {
	i := lo
	for i <= hi {
		from := b.nextSet(i)
		if from > hi {
			return
		}
		to := b.nextClear(from) - 1
		if to > hi {
			to = hi
		}
		fn(from, to)
		i = to + 1
	}
}
