package core

import (
	"errors"
	"testing"
)

func TestAllPinnedNoEvictable(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	var hs []Handle
	for i := 0; i < 4; i++ {
		hs = append(hs, mustAlloc(t, m))
	}
	if _, err := m.Allocate(); !errors.Is(err, ErrNoEvictable) {
		t.Fatalf("err = %v, want ErrNoEvictable", err)
	}
	// Unpinning one page unblocks allocation.
	m.Unfix(hs[0])
	h, err := m.Allocate()
	if err != nil {
		t.Fatalf("allocate after unpin: %v", err)
	}
	m.Unfix(h)
	for _, p := range hs[1:] {
		m.Unfix(p)
	}
}

func TestThreeTierAdmissionFallsBackWhenNVMPinned(t *testing.T) {
	// Two NVM slots, both backing pages that are cached (and pinned) in
	// DRAM: an eviction wanting admission must fall back to SSD rather
	// than deadlock or evict a backing slot.
	m := newTestManager(t, ThreeTier, 8, func(c *Config) {
		c.CacheLineGrained = true
		c.NVMBytes = 2 * slotSize
		c.AdmissionSetSize = -1 // always admit: pressure on the slots
	})
	var pids []PageID
	for i := 0; i < 2; i++ {
		h := mustAlloc(t, m)
		pids = append(pids, h.PID())
		fillPattern(h, byte(i))
		m.Unfix(h)
	}
	if err := m.CleanShutdown(); err != nil { // both admitted to NVM
		t.Fatal(err)
	}
	// Pin both NVM-backed pages in DRAM.
	var pinned []Handle
	for _, pid := range pids {
		pinned = append(pinned, mustFix(t, m, pid, ModeFull))
	}
	// A third page evicted under always-admit cannot get a slot.
	h := mustAlloc(t, m)
	third := h.PID()
	fillPattern(h, 9)
	m.Unfix(h)
	ssdWrites := m.SSD().Stats().PagesWritten
	// Force its eviction by creating DRAM pressure.
	for i := 0; i < 8; i++ {
		x, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		m.Unfix(x)
	}
	if m.SSD().Stats().PagesWritten == ssdWrites {
		t.Fatal("third page never reached SSD under full NVM")
	}
	for _, h := range pinned {
		m.Unfix(h)
	}
	// Its content must still be correct.
	h3 := mustFix(t, m, third, ModeFull)
	checkPattern(t, h3, 9)
	m.Unfix(h3)
}

func TestFreePageReleasesNVMSlot(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, true, false), func(c *Config) {
		c.NVMBytes = 2 * slotSize
		c.AdmissionSetSize = -1
	})
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 1)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if loc, ok := m.table[pid]; !ok || loc.inDRAM() {
		t.Fatalf("page not on NVM: %v %v", loc, ok)
	}
	h = mustFix(t, m, pid, ModeFull)
	m.FreePage(h)
	// Both NVM slots are available again: two new pages admit cleanly.
	for i := 0; i < 2; i++ {
		n := mustAlloc(t, m)
		fillPattern(n, byte(i))
		m.Unfix(n)
	}
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().NVMAdmissions; got < 3 {
		t.Fatalf("NVM admissions = %d, want the freed slot reused", got)
	}
}

func TestRestartScanSkipsFreedSlots(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, false, false), func(c *Config) {
		c.AdmissionSetSize = -1
	})
	keep := mustAlloc(t, m)
	keepPID := keep.PID()
	fillPattern(keep, 1)
	m.Unfix(keep)
	gone := mustAlloc(t, m)
	gonePID := gone.PID()
	fillPattern(gone, 2)
	m.Unfix(gone)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	g := mustFix(t, m, gonePID, ModeFull)
	m.FreePage(g)
	if err := m.CleanRestart(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.table[gonePID]; ok {
		t.Fatal("freed page reappeared in the rebuilt table")
	}
	if loc, ok := m.table[keepPID]; !ok || loc.inDRAM() {
		t.Fatalf("kept page lost from NVM: %v %v", loc, ok)
	}
	h := mustFix(t, m, keepPID, ModeFull)
	checkPattern(t, h, 1)
	m.Unfix(h)
}

func TestMiniPromotionTransfersSwizzle(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 8, withFeatures(true, true, true))
	parent := mustAlloc(t, m)
	child := mustAlloc(t, m)
	childPID := child.PID()
	fillPattern(child, 3)
	putRef(parent.Write(128, 8), 0, MakeRef(childPID))
	m.Unfix(child)
	m.Unfix(parent)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	p2 := mustFix(t, m, parent.PID(), ModeFull)
	c2, err := m.FixChild(p2, 128, ModeCacheLine) // mini page, swizzled
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().MiniAllocs == 0 {
		t.Fatal("child not loaded as a mini page")
	}
	// Overflow the mini page: promotion must move the swizzle to the
	// full frame so the parent's reference stays valid.
	for line := 0; line < 20; line++ {
		c2.Read(line*LineSize, 1)
	}
	if m.Stats().MiniPromotions != 1 {
		t.Fatalf("promotions = %d", m.Stats().MiniPromotions)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after promotion: %v", err)
	}
	m.Unfix(c2)
	// Re-fixing through the parent must hit the swizzled full frame.
	m.ResetStats()
	c3, err := m.FixChild(p2, 128, ModeCacheLine)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().SwizzleHits != 1 {
		t.Fatalf("SwizzleHits = %d, want 1", m.Stats().SwizzleHits)
	}
	checkPattern(t, c3, 3)
	m.Unfix(c3)
	m.Unfix(p2)
}

func TestUserMetaEmpty(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	if got := m.UserMeta(); len(got) != 0 {
		t.Fatalf("fresh UserMeta = %q", got)
	}
	if err := m.SetUserMeta(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.UserMeta(); len(got) != 0 {
		t.Fatalf("UserMeta after SetUserMeta(nil) = %q", got)
	}
}

func TestStatsAccessors(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4)
	if m.NVMSlotsTotal() != 64 {
		t.Fatalf("NVMSlotsTotal = %d", m.NVMSlotsTotal())
	}
	if m.DRAMUsed() != 0 {
		t.Fatalf("DRAMUsed = %d on fresh manager", m.DRAMUsed())
	}
	h := mustAlloc(t, m)
	if m.DRAMUsed() == 0 {
		t.Fatal("DRAMUsed did not grow")
	}
	m.Unfix(h)
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats left counters")
	}
}
