package core

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the multi-version read path: per-page version
// stamps plus copy-on-write leaf images, so read transactions can see a
// stable snapshot while writers keep modifying the tree.
//
// The design splits state along the synchronization boundary of the
// sharded driver:
//
//   - Per-page version counters are atomics in a sync.Map, so optimistic
//     readers on other goroutines can validate a cached row against the
//     current page version without taking the shard lock. Writers bump a
//     page's counter (under the shard lock) *before* modifying the first
//     byte, which makes "counter unchanged" imply "bytes unchanged".
//   - Everything else — the version store of copy-on-write images, the
//     active-snapshot registry, the transaction stamp — follows the
//     Manager's single-threaded contract and is only touched while the
//     owning engine is quiescent (under the shard lock in the sharded
//     driver).
//
// Stamps are per-engine transaction sequence numbers: Engine.Begin
// advances the stamp, and every page modified by a transaction carries
// the transaction's stamp as its version. A snapshot created between
// transactions captures the current stamp S; a page whose version is
// <= S still shows its content as of S, and the first post-snapshot
// modification saves a copy of the committed image (tagged with the old
// version) into the version store before bumping. Rolled-back
// transactions are safe by construction: their mid-flight images carry
// the transaction's own stamp, which is greater than every active
// snapshot's, so they are neither saved as snapshot-visible nor served.

// VersionStats counts read-path and version-store events. Cumulative
// counters survive restarts; Live and ActiveSnapshots reflect current
// state.
type VersionStats struct {
	Saved           int64  // copy-on-write images saved
	Reclaimed       int64  // images reclaimed after their snapshots closed
	Live            int64  // images currently held in the version store
	Served          int64  // leaf images served to snapshot readers
	ChainMax        int64  // longest per-page version chain observed
	ActiveSnapshots int64  // snapshots currently pinning versions
	Stamp           uint64 // current transaction stamp
}

// pageVersion is one saved copy-on-write image: the page content that was
// current while the page's version counter read ver.
type pageVersion struct {
	ver   uint64
	image []byte
}

// Versions tracks per-page version counters and the copy-on-write version
// store for one Manager. Counter and epoch reads are safe from any
// goroutine; all other methods follow the Manager's single-threaded
// contract (hold the shard lock in the sharded driver).
type Versions struct {
	// counters maps PageID -> *atomic.Uint64. Stored under the engine
	// lock, loaded lock-free by optimistic readers.
	counters sync.Map
	// epoch invalidates lock-free readers wholesale: it advances before
	// any restart or snapshot load rewrites page content outside the
	// version protocol.
	epoch atomic.Uint64

	// Engine-locked state.
	stamp     uint64
	nextSnap  uint64
	snaps     map[uint64]uint64 // snapshot id -> pinned stamp
	maxActive uint64            // largest pinned stamp (valid when snaps non-empty)
	store     map[PageID][]pageVersion
	stats     VersionStats
}

func newVersions() *Versions {
	return &Versions{
		snaps: make(map[uint64]uint64),
		store: make(map[PageID][]pageVersion),
	}
}

// Versions returns the manager's multi-version read-path state.
func (m *Manager) Versions() *Versions { return m.vers }

// Epoch returns the reader-invalidation epoch. Safe from any goroutine.
func (v *Versions) Epoch() uint64 { return v.epoch.Load() }

// VerOf returns the current version stamp of a page (0 if never
// modified since tracking began). Safe from any goroutine.
func (v *Versions) VerOf(pid PageID) uint64 {
	if c, ok := v.counters.Load(pid); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

func (v *Versions) setVer(pid PageID, ver uint64) {
	if c, ok := v.counters.Load(pid); ok {
		c.(*atomic.Uint64).Store(ver)
		return
	}
	c := new(atomic.Uint64)
	c.Store(ver)
	v.counters.Store(pid, c)
}

// BeginTx advances the transaction stamp and returns it. Engines call it
// once per transaction.
func (v *Versions) BeginTx() uint64 {
	v.stamp++
	v.stats.Stamp = v.stamp
	return v.stamp
}

// Stamp returns the current transaction stamp: a snapshot created now
// sees exactly the transactions with stamps <= Stamp().
func (v *Versions) Stamp() uint64 { return v.stamp }

// WillModify must be called before the first byte of a page modification.
// If any active snapshot still needs the page's current content, image()
// is invoked and the copy saved into the version store; either way the
// page's version counter advances to the current transaction stamp, which
// invalidates optimistic readers. Repeated calls within one transaction
// are cheap no-ops.
func (v *Versions) WillModify(pid PageID, image func() []byte) {
	cur := v.VerOf(pid)
	if v.stamp > 0 && cur == v.stamp {
		return // this transaction already modified the page
	}
	target := v.stamp
	if target <= cur {
		// Modification outside a transaction (bulk load, replay): invent
		// the next stamp so the version still advances.
		target = cur + 1
		v.stamp = target
		v.stats.Stamp = target
	}
	if len(v.snaps) > 0 && cur <= v.maxActive {
		chain := append(v.store[pid], pageVersion{ver: cur, image: append([]byte(nil), image()...)})
		v.store[pid] = chain
		v.stats.Saved++
		v.stats.Live++
		if n := int64(len(chain)); n > v.stats.ChainMax {
			v.stats.ChainMax = n
		}
	}
	v.setVer(pid, target)
}

// NoteNewPage stamps a freshly allocated page with the current
// transaction stamp without saving an image: a page born after a snapshot
// must not present its content as part of that snapshot.
func (v *Versions) NoteNewPage(pid PageID) { v.setVer(pid, v.stamp) }

// BeginSnapshot registers a snapshot pinned at the current stamp and
// returns its id and the pinned stamp.
func (v *Versions) BeginSnapshot() (id, asOf uint64) {
	v.nextSnap++
	id = v.nextSnap
	asOf = v.stamp
	v.snaps[id] = asOf
	if len(v.snaps) == 1 || asOf > v.maxActive {
		v.maxActive = asOf
	}
	v.stats.ActiveSnapshots = int64(len(v.snaps))
	return id, asOf
}

// EndSnapshot unregisters a snapshot and eagerly reclaims the versions
// nothing pins anymore, returning the number reclaimed. Unknown ids
// (e.g. after a restart reset the registry) are ignored.
func (v *Versions) EndSnapshot(id uint64) int64 {
	if _, ok := v.snaps[id]; !ok {
		return 0
	}
	delete(v.snaps, id)
	v.maxActive = 0
	for _, s := range v.snaps {
		if s > v.maxActive {
			v.maxActive = s
		}
	}
	v.stats.ActiveSnapshots = int64(len(v.snaps))
	return v.Reclaim()
}

// ImageAsOf returns the saved image of a page as of the given stamp, or
// false if the version store has none (the caller checks VerOf first: a
// current version <= asOf means the live page itself is the image, and a
// miss here means the page did not exist at asOf).
func (v *Versions) ImageAsOf(pid PageID, asOf uint64) ([]byte, bool) {
	chain := v.store[pid]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].ver <= asOf {
			v.stats.Served++
			return chain[i].image, true
		}
	}
	return nil, false
}

// NoteServed counts one live leaf image served to a snapshot reader
// (saved images count themselves in ImageAsOf).
func (v *Versions) NoteServed() { v.stats.Served++ }

// Reclaim drops every saved version no active snapshot can still read
// and returns the number dropped. The background maintainer calls it
// periodically; EndSnapshot calls it eagerly.
func (v *Versions) Reclaim() int64 {
	if len(v.store) == 0 {
		return 0
	}
	var dropped int64
	if len(v.snaps) == 0 {
		for pid, chain := range v.store {
			dropped += int64(len(chain))
			delete(v.store, pid)
		}
	} else {
		stamps := make([]uint64, 0, len(v.snaps))
		for _, s := range v.snaps {
			stamps = append(stamps, s)
		}
		sort.Slice(stamps, func(a, b int) bool { return stamps[a] < stamps[b] })
		for pid, chain := range v.store {
			kept := make([]pageVersion, 0, len(chain))
			for i, pv := range chain {
				// Entry i serves snapshots with stamps in [ver, hi): up to
				// the next saved version, or up to the live page's version.
				hi := v.VerOf(pid)
				if i+1 < len(chain) {
					hi = chain[i+1].ver
				}
				if anyStampIn(stamps, pv.ver, hi) {
					kept = append(kept, pv)
				} else {
					dropped++
				}
			}
			if len(kept) == 0 {
				delete(v.store, pid)
			} else {
				v.store[pid] = kept
			}
		}
	}
	v.stats.Reclaimed += dropped
	v.stats.Live -= dropped
	return dropped
}

// anyStampIn reports whether the sorted stamps contain one in [lo, hi).
func anyStampIn(stamps []uint64, lo, hi uint64) bool {
	i := sort.Search(len(stamps), func(i int) bool { return stamps[i] >= lo })
	return i < len(stamps) && stamps[i] < hi
}

// Drop forgets all version state of a freed page.
func (v *Versions) Drop(pid PageID) {
	v.counters.Delete(pid)
	if chain, ok := v.store[pid]; ok {
		v.stats.Reclaimed += int64(len(chain))
		v.stats.Live -= int64(len(chain))
		delete(v.store, pid)
	}
}

// Stats returns the read-path counters. Engine-locked like the rest of
// the non-atomic state.
func (v *Versions) Stats() VersionStats { return v.stats }

// Reset invalidates all readers and clears version state. Restart and
// snapshot-load paths call it before rewriting page content outside the
// version protocol; the epoch advances first so lock-free readers fall
// back to the locked path before any content can change under them.
func (v *Versions) Reset() {
	v.epoch.Add(1)
	v.counters.Range(func(k, _ any) bool {
		v.counters.Delete(k)
		return true
	})
	v.store = make(map[PageID][]pageVersion)
	v.snaps = make(map[uint64]uint64)
	v.maxActive = 0
	v.stamp = 0
	v.stats.Live = 0
	v.stats.ActiveSnapshots = 0
	v.stats.Stamp = 0
}
