package core

import (
	"testing"

	"nvmstore/internal/fault"
)

// TestJournalUndoesInterruptedWriteBack pins the undo journal's crash
// contract: an in-place write-back torn mid-flush must not leave the
// NVM slot with lines from two page generations. The journal restores
// the pre-write-back image at restart, so the page reads back as the
// last completed version.
func TestJournalUndoesInterruptedWriteBack(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, false, false),
		func(c *Config) { c.StrictPersistence = true })
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 1)
	m.ForceWrite(h) // stages version 1 on an NVM slot
	if h.f.nvmSlot < 0 {
		t.Fatal("page not staged on NVM")
	}

	// Dirty the whole page and tear the in-place write-back. The forced
	// write performs five flushes: journal index, journal data, journal
	// header (arm), the page lines, and the journal disarm — the fourth
	// is the one that must be interruptible.
	fillPattern(h, 2)
	plan := &fault.Plan{Seed: 42, Rules: []fault.Rule{
		{Kind: fault.NVMTornFlush, EveryN: 4, Limit: 1},
	}}
	m.NVM().SetFaults(plan.Injector(0))
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("write-back completed; the fault never fired")
			}
			if _, ok := fault.AsCrash(r); !ok {
				panic(r)
			}
		}()
		m.ForceWrite(h)
	}()

	if err := m.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().JournalUndos; got != 1 {
		t.Fatalf("JournalUndos = %d, want 1", got)
	}
	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 1) // version 2 gone wholesale, version 1 intact
	m.Unfix(h2)
}

// TestJournalDisarmedAfterCompleteWriteBack pins that a write-back that
// runs to completion leaves nothing to undo: the next restart must not
// roll the slot back.
func TestJournalDisarmedAfterCompleteWriteBack(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, false, false),
		func(c *Config) { c.StrictPersistence = true })
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 1)
	m.ForceWrite(h)
	fillPattern(h, 2)
	m.ForceWrite(h)
	m.Unfix(h)
	if err := m.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().JournalUndos; got != 0 {
		t.Fatalf("JournalUndos = %d, want 0", got)
	}
	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 2)
	m.Unfix(h2)
}
