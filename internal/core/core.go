// Package core implements the paper's storage engine: a lightweight buffer
// manager that spans DRAM, NVM, and SSD.
//
// The package reproduces the primary contribution of "Managing Non-Volatile
// Memory in Database Systems" (van Renen et al., SIGMOD 2018):
//
//   - cache-line-grained pages (§3.1): NVM-backed pages are loaded into
//     DRAM one 64 B cache line at a time, tracked by resident and dirty
//     bitmasks, so that hot tuples on otherwise cold pages do not drag the
//     whole 16 KB page across the memory bus;
//   - mini pages (§3.2): small 1 KB frames holding up to 16 cache lines
//     behind a slot indirection, transparently promoted to full pages on
//     overflow, so the limited DRAM holds hot tuples instead of hot pages;
//   - pointer swizzling (§3.3): references to DRAM-resident pages are
//     replaced by direct frame references, avoiding the mapping-table
//     lookup for hot pages;
//   - three-tier replacement (§4.2): DRAM eviction (clock), NVM admission
//     (an admission set in the spirit of ARC), and NVM eviction (clock);
//   - a combined page table (§4.3) that maps a page identifier to its DRAM
//     or NVM location with a single lookup;
//   - system restart (§4.4): the volatile mapping table is rebuilt by
//     scanning the page headers on NVM.
//
// One Manager, configured by Topology and feature toggles, implements all
// five architectures the paper evaluates (Main Memory, NVM Direct, Basic
// NVM BM, SSD BM, and the three-tier design). This mirrors the paper's
// methodology: "all evaluated architectures are implemented within the same
// storage engine."
//
// Managers are not safe for concurrent use; the paper's evaluation is
// single-threaded and its Appendix A.1 leaves synchronization to future
// work, as do we.
package core

import (
	"errors"
	"fmt"
)

// Geometry constants. The paper uses 16 kB pages of 256 cache lines and
// mini pages of at most 16 cache lines.
const (
	// LineSize is the cache-line granularity in bytes.
	LineSize = 64
	// PageSize is the size of a full page in bytes.
	PageSize = 16384
	// LinesPerPage is the number of cache lines on a full page.
	LinesPerPage = PageSize / LineSize
	// MiniLines is the maximum number of cache lines a mini page holds.
	MiniLines = 16
	// MiniDataSize is the data capacity of a mini page in bytes.
	MiniDataSize = MiniLines * LineSize

	// fullFrameBytes is the DRAM cost charged for a full page: 16 kB of
	// data plus the two-cache-line header of §3.1.
	fullFrameBytes = PageSize + 2*LineSize
	// miniFrameBytes is the DRAM cost charged for a mini page: sixteen
	// cache lines of data plus the one-cache-line header of §3.2.
	miniFrameBytes = MiniDataSize + LineSize
)

// PageID identifies a page. Zero is never a valid page identifier.
type PageID uint64

// InvalidPageID is the zero PageID.
const InvalidPageID PageID = 0

// Ref is a reference to a page as stored inside parent pages (for example
// B-tree child pointers): either a plain page identifier, or — when the
// page is swizzled — a direct reference to its DRAM buffer frame.
//
// The most significant bit distinguishes the two, exactly as in the paper:
// if it is set, the remaining bits are a frame-table index that can be
// "dereferenced" without consulting the mapping table; otherwise they are a
// page identifier. A zero Ref is a null reference.
type Ref uint64

const swizzleBit Ref = 1 << 63

// MakeRef returns an unswizzled reference to pid.
func MakeRef(pid PageID) Ref { return Ref(pid) }

// swizzledRef returns a swizzled reference to frame-table index idx.
func swizzledRef(idx int32) Ref { return swizzleBit | Ref(idx) }

// Swizzled reports whether r refers directly to a DRAM frame.
func (r Ref) Swizzled() bool { return r&swizzleBit != 0 }

// PageID returns the page identifier of an unswizzled reference.
func (r Ref) PageID() PageID { return PageID(r &^ swizzleBit) }

// frameIndex returns the frame-table index of a swizzled reference.
func (r Ref) frameIndex() int32 { return int32(r &^ swizzleBit) }

// IsNull reports whether r is the null reference.
func (r Ref) IsNull() bool { return r == 0 }

// AccessMode tells the buffer manager how a fixed page will be used, the
// "hinting mechanism" of §5.4.2.
type AccessMode uint8

const (
	// ModeCacheLine requests cache-line-grained access: the page is not
	// loaded eagerly, and a mini page may be allocated for it. This is
	// the right mode for point operations (lookup, insert, delete).
	ModeCacheLine AccessMode = iota
	// ModeFull requests a fully loaded page, skipping residency checks
	// and mini pages. This is the right mode for inner-node traversal,
	// restructuring, and full scans, where most of the page is touched
	// anyway.
	ModeFull
)

// Errors returned by the buffer manager.
var (
	// ErrNoEvictable is returned when DRAM is full and every frame is
	// pinned or has swizzled children.
	ErrNoEvictable = errors.New("core: DRAM full and no frame is evictable")
	// ErrNVMFull is returned when the NVM device has no free page slot
	// and none can be evicted.
	ErrNVMFull = errors.New("core: NVM full and no slot is evictable")
	// ErrCapacity is returned when a topology with a hard capacity limit
	// (Main Memory, NVM Direct, Basic NVM BM) runs out of space.
	ErrCapacity = errors.New("core: storage capacity exhausted")
	// ErrPageNotFound is returned when fixing a page identifier that was
	// never allocated.
	ErrPageNotFound = errors.New("core: page not found")
)

// location is a tagged entry of the combined page table (§4.3): the high
// bit selects between a DRAM frame index and an NVM slot index, so one
// lookup finds the page wherever it is cached.
type location uint64

const locDRAMBit location = 1 << 63

func dramLoc(idx int32) location  { return locDRAMBit | location(idx) }
func nvmLoc(slot int64) location  { return location(slot) }
func (l location) inDRAM() bool   { return l&locDRAMBit != 0 }
func (l location) frame() int32   { return int32(l &^ locDRAMBit) }
func (l location) nvmSlot() int64 { return int64(l &^ locDRAMBit) }

// String renders the location for diagnostics.
func (l location) String() string {
	if l.inDRAM() {
		return fmt.Sprintf("dram(%d)", l.frame())
	}
	return fmt.Sprintf("nvm(%d)", l.nvmSlot())
}
