package core

import (
	"testing"
)

func TestForceWritePersistsWithoutEviction(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, false, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 21)
	m.ForceWrite(h)

	// The page is still in DRAM (no eviction happened) and clean.
	loc, ok := m.table[pid]
	if !ok || !loc.inDRAM() {
		t.Fatalf("page left DRAM: loc=%v ok=%v", loc, ok)
	}
	if h.f.anyDirty {
		t.Fatal("frame still dirty after ForceWrite")
	}
	// Content is durable: crash the DRAM state and reload.
	m.Unfix(h)
	if err := m.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 21)
	m.Unfix(h2)
}

func TestForceWriteThreeTierStagesOnNVM(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, true, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 5)
	m.ForceWrite(h)
	// With free NVM slots, a forced non-backed page is staged on NVM.
	if h.f.nvmSlot < 0 {
		t.Fatal("forced page not staged on NVM despite free slots")
	}
	if m.SSD().Stats().PagesWritten != 0 {
		t.Fatal("forced page went to SSD although NVM had room")
	}
	// The staged copy is the durable home: after crash the content is
	// served from NVM.
	m.Unfix(h)
	if err := m.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	ssdReads := m.SSD().Stats().PagesRead
	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 5)
	m.Unfix(h2)
	if m.SSD().Stats().PagesRead != ssdReads {
		t.Fatal("NVM-staged page was read from SSD")
	}
}

func TestForceWriteThreeTierFullNVMFallsBackToSSD(t *testing.T) {
	m := newTestManager(t, ThreeTier, 6, func(c *Config) {
		c.CacheLineGrained = true
		c.NVMBytes = 2 * slotSize // only two NVM slots
	})
	var hs []Handle
	for i := 0; i < 3; i++ {
		h := mustAlloc(t, m)
		fillPattern(h, byte(i))
		hs = append(hs, h)
	}
	for _, h := range hs {
		m.ForceWrite(h)
	}
	// Two pages staged on NVM, the third forced to SSD (no eviction for
	// forced writes).
	if m.SSD().Stats().PagesWritten != 1 {
		t.Fatalf("SSD writes = %d, want 1", m.SSD().Stats().PagesWritten)
	}
	if m.Stats().NVMEvictions != 0 {
		t.Fatal("forced write triggered an NVM eviction")
	}
	for _, h := range hs {
		m.Unfix(h)
	}
}

func TestForceWriteCleanIsNoop(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	h := mustAlloc(t, m)
	fillPattern(h, 1)
	m.ForceWrite(h)
	flushes := m.NVM().Stats().FlushOps
	m.ForceWrite(h) // clean now: no device traffic
	if m.NVM().Stats().FlushOps != flushes {
		t.Fatal("ForceWrite of clean page touched the device")
	}
	m.Unfix(h)
}

func TestFlushAllCleansEveryFrame(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 8, withFeatures(true, false, false))
	var pids []PageID
	for i := 0; i < 5; i++ {
		h := mustAlloc(t, m)
		pids = append(pids, h.PID())
		fillPattern(h, byte(40+i))
		m.Unfix(h)
	}
	m.FlushAll()
	for _, f := range m.frames {
		if f != nil && f.anyDirty {
			t.Fatalf("page %d still dirty after FlushAll", f.pid)
		}
	}
	if err := m.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	for i, pid := range pids {
		h := mustFix(t, m, pid, ModeFull)
		checkPattern(t, h, byte(40+i))
		m.Unfix(h)
	}
}

func TestWriteBarrierRunsBeforePersistence(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	calls := 0
	m.SetWriteBarrier(func() { calls++ })

	h := mustAlloc(t, m)
	fillPattern(h, 1)
	m.ForceWrite(h)
	if calls != 1 {
		t.Fatalf("barrier calls after ForceWrite = %d, want 1", calls)
	}
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("barrier ran for a clean eviction: %d calls", calls)
	}

	// A dirty eviction must run the barrier.
	h2 := mustFix(t, m, h.PID(), ModeFull)
	fillPattern(h2, 2)
	m.Unfix(h2)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("barrier calls after dirty eviction = %d, want 2", calls)
	}
}

func TestWriteBarrierDirectUnfix(t *testing.T) {
	m := newTestManager(t, DirectNVM, 0)
	calls := 0
	m.SetWriteBarrier(func() { calls++ })
	h := mustAlloc(t, m)
	copy(h.Write(0, 4), "data")
	m.Unfix(h) // flushes dirty lines in place
	if calls != 1 {
		t.Fatalf("barrier calls = %d, want 1", calls)
	}
	// A read-only fix/unfix does not run the barrier.
	h2 := mustFix(t, m, h.PID(), ModeCacheLine)
	h2.Read(0, 4)
	m.Unfix(h2)
	if calls != 1 {
		t.Fatalf("barrier ran on read-only unfix: %d calls", calls)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 8, withFeatures(true, false, true))
	parent := mustAlloc(t, m)
	child := mustAlloc(t, m)
	putRef(parent.Write(0, 8), 0, MakeRef(child.PID()))
	m.Unfix(child)
	c, err := m.FixChild(parent, 0, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("healthy state flagged: %v", err)
	}
	// Corrupt the swizzled word behind the manager's back.
	putRef(parent.f.data, 0, MakeRef(999))
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("corrupted swizzle word not detected")
	}
	putRef(parent.f.data, 0, swizzledRef(c.f.idx)) // repair
	m.Unfix(c)
	m.Unfix(parent)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
