package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// newTestManager builds a Manager with small capacities suited to tests:
// DRAM of frames full frames, 64 pages of NVM, 256 pages of SSD, and no
// simulated CPU cache so that device charges are deterministic.
func newTestManager(t *testing.T, topo Topology, frames int, opts ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Topology:      topo,
		DRAMBytes:     int64(frames) * fullFrameBytes,
		NVMBytes:      64 * slotSize,
		SSDBytes:      256 * PageSize,
		WALBytes:      1 << 16,
		CPUCacheBytes: -1,
	}
	if topo == MemOnly {
		cfg.DRAMBytes = 0
		cfg.SSDBytes = 0
	}
	if topo == DRAMNVM || topo == DirectNVM {
		cfg.SSDBytes = 0
	}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func withFeatures(cl, mini, swizzle bool) func(*Config) {
	return func(c *Config) {
		c.CacheLineGrained = cl
		c.MiniPages = mini
		c.Swizzling = swizzle
	}
}

func mustAlloc(t *testing.T, m *Manager) Handle {
	t.Helper()
	h, err := m.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return h
}

func mustFix(t *testing.T, m *Manager, pid PageID, mode AccessMode) Handle {
	t.Helper()
	h, err := m.Fix(MakeRef(pid), mode)
	if err != nil {
		t.Fatalf("Fix(%d): %v", pid, err)
	}
	return h
}

// fillPattern writes a deterministic page-wide pattern derived from seed.
func fillPattern(h Handle, seed byte) {
	data := h.WriteAll()
	for i := range data {
		data[i] = seed ^ byte(i) ^ byte(i>>8)
	}
}

// checkPattern verifies the full page matches fillPattern(seed).
func checkPattern(t *testing.T, h Handle, seed byte) {
	t.Helper()
	data := h.ReadAll()
	for i := range data {
		want := seed ^ byte(i) ^ byte(i>>8)
		if data[i] != want {
			t.Fatalf("page %d byte %d = %#x, want %#x", h.PID(), i, data[i], want)
		}
	}
}

func TestMemOnlyBasic(t *testing.T) {
	m := newTestManager(t, MemOnly, 0)
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 3)
	m.Unfix(h)

	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 3)
	m.Unfix(h2)
}

func TestMemOnlyCapacity(t *testing.T) {
	m := newTestManager(t, MemOnly, 0, func(c *Config) {
		c.DRAMBytes = 4 * fullFrameBytes
	})
	for i := 0; i < 4; i++ {
		h := mustAlloc(t, m)
		m.Unfix(h)
	}
	if _, err := m.Allocate(); !errors.Is(err, ErrCapacity) {
		t.Fatalf("5th allocation: err = %v, want ErrCapacity", err)
	}
}

func TestDRAMSSDEvictAndReload(t *testing.T) {
	m := newTestManager(t, DRAMSSD, 4)
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 9)
	m.Unfix(h)

	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if m.SSD().Stats().PagesWritten == 0 {
		t.Fatal("dirty page eviction wrote nothing to SSD")
	}
	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 9)
	m.Unfix(h2)
	if m.Stats().SSDLoads != 1 {
		t.Fatalf("SSDLoads = %d, want 1", m.Stats().SSDLoads)
	}
}

func TestDRAMSSDCleanPageNotRewritten(t *testing.T) {
	m := newTestManager(t, DRAMSSD, 4)
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 1)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	written := m.SSD().Stats().PagesWritten

	// Reload, only read, evict again: no further SSD write.
	h2 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h2, 1)
	m.Unfix(h2)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if got := m.SSD().Stats().PagesWritten; got != written {
		t.Fatalf("clean page eviction wrote to SSD: %d -> %d writes", written, got)
	}
}

func TestDRAMNVMPageGrained(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 7)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	h2 := mustFix(t, m, pid, ModeCacheLine)
	checkPattern(t, h2, 7)
	m.Unfix(h2)
	st := m.Stats()
	if st.NVMPageLoads != 1 {
		t.Fatalf("NVMPageLoads = %d, want 1 (page-grained mode)", st.NVMPageLoads)
	}
	if st.LinesLoaded != 0 {
		t.Fatalf("LinesLoaded = %d, want 0 (page-grained mode)", st.LinesLoaded)
	}
}

func TestCacheLineGrainedLoadsOnlyNeededLines(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, false, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 5)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()

	h2 := mustFix(t, m, pid, ModeCacheLine)
	got := h2.Read(128, 8) // one line: line 2
	want := h2.Read(128, 8)
	if !bytes.Equal(got, want) {
		t.Fatal("repeated read differs")
	}
	if st := m.Stats(); st.LinesLoaded != 1 {
		t.Fatalf("LinesLoaded = %d after one-line read, want 1", st.LinesLoaded)
	}
	h2.Read(60, 10) // straddles lines 0 and 1
	if st := m.Stats(); st.LinesLoaded != 3 {
		t.Fatalf("LinesLoaded = %d after straddling read, want 3", st.LinesLoaded)
	}
	// Verify content correctness of a partial read.
	data := h2.Read(128, 8)
	for i := range data {
		wantB := byte(5) ^ byte(128+i) ^ byte((128+i)>>8)
		if data[i] != wantB {
			t.Fatalf("byte %d = %#x, want %#x", 128+i, data[i], wantB)
		}
	}
	m.Unfix(h2)
}

func TestCacheLineWriteBackOnlyDirtyLines(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, false, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 2)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	slot := int64(pid - 1)
	dataLine := m.slotDataOff(slot) / LineSize
	wearBefore := m.NVM().WearCounts()

	h2 := mustFix(t, m, pid, ModeCacheLine)
	w := h2.Write(3*LineSize, 8) // dirty exactly line 3
	w[0] = 0xFF
	m.Unfix(h2)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	wearAfter := m.NVM().WearCounts()
	if got := wearAfter[dataLine+3] - wearBefore[dataLine+3]; got != 1 {
		t.Fatalf("dirty line written %d times, want 1", got)
	}
	for l := int64(0); l < LinesPerPage; l++ {
		if l == 3 {
			continue
		}
		if wearAfter[dataLine+l] != wearBefore[dataLine+l] {
			t.Fatalf("clean line %d was rewritten", l)
		}
	}

	// The modification must be durable.
	h3 := mustFix(t, m, pid, ModeCacheLine)
	if got := h3.Read(3*LineSize, 1)[0]; got != 0xFF {
		t.Fatalf("written byte = %#x, want 0xFF", got)
	}
	m.Unfix(h3)
}

func TestMiniPageBasic(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, true, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 11)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()

	h2 := mustFix(t, m, pid, ModeCacheLine)
	if st := m.Stats(); st.MiniAllocs != 1 {
		t.Fatalf("MiniAllocs = %d, want 1", st.MiniAllocs)
	}
	// Access three lines out of order and verify content.
	for _, line := range []int{9, 3, 7} {
		data := h2.Read(line*LineSize, LineSize)
		for i := range data {
			off := line*LineSize + i
			want := byte(11) ^ byte(off) ^ byte(off>>8)
			if data[i] != want {
				t.Fatalf("line %d byte %d = %#x, want %#x", line, i, data[i], want)
			}
		}
	}
	// Mini pages cost far less DRAM than a full page.
	if used := m.DRAMUsed(); used != miniFrameBytes {
		t.Fatalf("DRAMUsed = %d, want %d (one mini page)", used, miniFrameBytes)
	}
	// Modify line 3 and evict; the change must persist, others must not
	// be disturbed.
	copy(h2.Write(3*LineSize, 4), "MINI")
	m.Unfix(h2)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	h3 := mustFix(t, m, pid, ModeFull)
	data := h3.ReadAll()
	if string(data[3*LineSize:3*LineSize+4]) != "MINI" {
		t.Fatal("mini-page write lost on eviction")
	}
	for i := 3*LineSize + 4; i < PageSize; i++ {
		want := byte(11) ^ byte(i) ^ byte(i>>8)
		if data[i] != want {
			t.Fatalf("byte %d corrupted: %#x want %#x", i, data[i], want)
		}
	}
	m.Unfix(h3)
}

func TestMiniPageContiguousMultiLine(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, true, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 4)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	h2 := mustFix(t, m, pid, ModeCacheLine)
	// Load line 5 first, then request a span over 4..6: the mini page
	// must keep physical lines contiguous.
	h2.Read(5*LineSize, 8)
	span := h2.Read(4*LineSize, 3*LineSize)
	for i := range span {
		off := 4*LineSize + i
		want := byte(4) ^ byte(off) ^ byte(off>>8)
		if span[i] != want {
			t.Fatalf("span byte %d = %#x, want %#x", off, span[i], want)
		}
	}
	m.Unfix(h2)
}

func TestMiniPagePromotion(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 8, withFeatures(true, true, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 6)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()

	h2 := mustFix(t, m, pid, ModeCacheLine)
	// Dirty a line pre-promotion so we can check dirty-state transfer.
	copy(h2.Write(2*LineSize, 4), "PREP")
	// Touch 17 distinct lines: the 17th overflows the mini page.
	for line := 0; line < 17; line++ {
		h2.Read(line*LineSize, 1)
	}
	st := m.Stats()
	if st.MiniPromotions != 1 {
		t.Fatalf("MiniPromotions = %d, want 1", st.MiniPromotions)
	}
	// Reads through the promoted wrapper still return correct data.
	for line := 0; line < 20; line++ {
		data := h2.Read(line*LineSize, LineSize)
		for i := range data {
			off := line*LineSize + i
			want := byte(6) ^ byte(off) ^ byte(off>>8)
			if line == 2 && i < 4 {
				want = "PREP"[i]
			}
			if data[i] != want {
				t.Fatalf("post-promotion line %d byte %d wrong", line, i)
			}
		}
	}
	m.Unfix(h2)
	// After unfix the wrapper is gone: only the full frame remains.
	if used := m.DRAMUsed(); used != fullFrameBytes {
		t.Fatalf("DRAMUsed = %d after unfix, want %d", used, fullFrameBytes)
	}
	// The pre-promotion dirty line survives eviction.
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	h3 := mustFix(t, m, pid, ModeFull)
	if string(h3.ReadAll()[2*LineSize:2*LineSize+4]) != "PREP" {
		t.Fatal("dirty line lost across promotion")
	}
	m.Unfix(h3)
}

func TestSwizzling(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 8, withFeatures(true, false, true))
	parent := mustAlloc(t, m)
	child := mustAlloc(t, m)
	childPID := child.PID()
	fillPattern(child, 8)
	// Store the child reference at offset 256 of the parent.
	putRef(parent.Write(256, 8), 0, MakeRef(childPID))
	m.Unfix(child)

	m.ResetStats()
	c1, err := m.FixChild(parent, 256, ModeCacheLine)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Swizzles != 1 {
		t.Fatalf("Swizzles = %d, want 1", st.Swizzles)
	}
	if ref := getRef(parent.Read(256, 8), 0); !ref.Swizzled() {
		t.Fatal("parent word not swizzled after FixChild")
	}
	m.Unfix(c1)

	// Second fix goes through the swizzled pointer, not the table.
	c2, err := m.FixChild(parent, 256, ModeCacheLine)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.SwizzleHits != 1 {
		t.Fatalf("SwizzleHits = %d, want 1", st.SwizzleHits)
	}
	checkPattern(t, c2, 8)
	m.Unfix(c2)

	// Clean shutdown evicts the child first (unswizzling the parent
	// word) and then the parent; the persisted word must be the page id.
	m.Unfix(parent)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	p2 := mustFix(t, m, parent.PID(), ModeFull)
	if ref := getRef(p2.ReadAll(), 256); ref.Swizzled() || ref.PageID() != childPID {
		t.Fatalf("persisted child word = %#x, want page id %d", uint64(ref), childPID)
	}
	m.Unfix(p2)
}

func TestSwizzledChildPinsParent(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, false, true))
	parent := mustAlloc(t, m)
	child := mustAlloc(t, m)
	putRef(parent.Write(0, 8), 0, MakeRef(child.PID()))
	m.Unfix(child)
	c, err := m.FixChild(parent, 0, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the child pinned so it stays swizzled; the unpinned parent
	// must then survive eviction pressure, because evicting it would
	// persist the swizzled pointer.
	parentPID := parent.PID()
	m.Unfix(parent)

	for i := 0; i < 6; i++ {
		h := mustAlloc(t, m)
		m.Unfix(h)
	}
	loc, ok := m.table[parentPID]
	if !ok || !loc.inDRAM() {
		t.Fatalf("parent with swizzled child was evicted (loc=%v ok=%v)", loc, ok)
	}
	m.Unfix(c)
}

func TestUnswizzleChildren(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 8, withFeatures(true, false, true))
	parent := mustAlloc(t, m)
	child := mustAlloc(t, m)
	childPID := child.PID()
	putRef(parent.Write(64, 8), 0, MakeRef(childPID))
	m.Unfix(child)
	c, err := m.FixChild(parent, 64, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	m.Unfix(c)

	m.UnswizzleChildren(parent)
	if ref := getRef(parent.Read(64, 8), 0); ref.Swizzled() || ref.PageID() != childPID {
		t.Fatalf("word after UnswizzleChildren = %#x, want page id %d", uint64(ref), childPID)
	}
	if parent.f.swizzledChildren != 0 {
		t.Fatalf("swizzledChildren = %d, want 0", parent.f.swizzledChildren)
	}
	m.Unfix(parent)
}

func TestFixRootSwizzles(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, withFeatures(true, false, true))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 1)
	m.Unfix(h)

	root := MakeRef(pid)
	r1, err := m.FixRoot(&root, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if !root.Swizzled() {
		t.Fatal("root holder not swizzled")
	}
	m.Unfix(r1)

	// Eviction restores the page id in the holder.
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if root.Swizzled() || root.PageID() != pid {
		t.Fatalf("root holder after eviction = %#x, want page id %d", uint64(root), pid)
	}
	r2, err := m.FixRoot(&root, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	checkPattern(t, r2, 1)
	m.Unfix(r2)
}

func TestThreeTierAdmission(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, true, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 13)
	m.Unfix(h)

	// First eviction: the page has never been denied, so it is denied
	// admission and written to SSD.
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.NVMDenials != 1 || st.NVMAdmissions != 0 {
		t.Fatalf("after first eviction: denials=%d admissions=%d, want 1/0", st.NVMDenials, st.NVMAdmissions)
	}
	if m.SSD().Stats().PagesWritten != 1 {
		t.Fatalf("SSD writes = %d, want 1", m.SSD().Stats().PagesWritten)
	}

	// Reload from SSD and evict again: now it is in the admission set
	// and moves into NVM.
	h2 := mustFix(t, m, pid, ModeCacheLine)
	checkPattern(t, h2, 13)
	m.Unfix(h2)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.NVMAdmissions != 1 {
		t.Fatalf("NVMAdmissions = %d, want 1", st.NVMAdmissions)
	}
	loc, ok := m.table[pid]
	if !ok || loc.inDRAM() {
		t.Fatalf("page location after admission = %v, want NVM", loc)
	}

	// Third fix comes from NVM, cache-line-grained.
	m.ResetStats()
	ssdReads := m.SSD().Stats().PagesRead
	h3 := mustFix(t, m, pid, ModeCacheLine)
	h3.Read(0, 8)
	if st := m.Stats(); st.LinesLoaded == 0 {
		t.Fatal("NVM-backed fix loaded no cache lines")
	}
	if m.SSD().Stats().PagesRead != ssdReads {
		t.Fatal("NVM-resident page was read from SSD")
	}
	m.Unfix(h3)
}

func TestThreeTierNVMEviction(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, func(c *Config) {
		c.CacheLineGrained = true
		c.NVMBytes = 2 * slotSize // room for only two NVM pages
	})
	// Create three pages and cycle each through DRAM twice so all want
	// NVM admission; with two slots, at least one NVM eviction happens.
	var pids []PageID
	for i := 0; i < 3; i++ {
		h := mustAlloc(t, m)
		pids = append(pids, h.PID())
		fillPattern(h, byte(20+i))
		m.Unfix(h)
	}
	for round := 0; round < 2; round++ {
		if err := m.CleanShutdown(); err != nil {
			t.Fatal(err)
		}
		for _, pid := range pids {
			h := mustFix(t, m, pid, ModeFull)
			m.Unfix(h)
		}
	}
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().NVMEvictions == 0 {
		t.Fatal("no NVM evictions despite 3 pages and 2 slots")
	}
	// All pages must still be readable with correct content.
	for i, pid := range pids {
		h := mustFix(t, m, pid, ModeFull)
		checkPattern(t, h, byte(20+i))
		m.Unfix(h)
	}
}

func TestCleanRestartRebuildsTable(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4, withFeatures(true, true, false))
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 17)
	m.Unfix(h)
	// Two eviction rounds to get the page admitted to NVM.
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	h2 := mustFix(t, m, pid, ModeFull)
	m.Unfix(h2)
	if err := m.CleanRestart(); err != nil {
		t.Fatal(err)
	}

	loc, ok := m.table[pid]
	if !ok || loc.inDRAM() {
		t.Fatalf("restart did not rebuild NVM mapping: loc=%v ok=%v", loc, ok)
	}
	ssdReads := m.SSD().Stats().PagesRead
	h3 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h3, 17)
	m.Unfix(h3)
	if m.SSD().Stats().PagesRead != ssdReads {
		t.Fatal("restart lost the NVM cache: page re-read from SSD")
	}
}

func TestCrashRestartStrictPersistence(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, func(c *Config) {
		c.CacheLineGrained = true
		c.StrictPersistence = true
	})
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 30)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	// Modify the page but crash before eviction: the change is only in
	// DRAM and must be lost.
	h2 := mustFix(t, m, pid, ModeCacheLine)
	copy(h2.Write(0, 4), "LOST")
	if err := m.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	h3 := mustFix(t, m, pid, ModeFull)
	checkPattern(t, h3, 30)
	m.Unfix(h3)
}

func TestDirectNVM(t *testing.T) {
	m := newTestManager(t, DirectNVM, 0)
	h := mustAlloc(t, m)
	pid := h.PID()
	copy(h.Write(128, 6), "DIRECT")
	wear := m.NVM().WearCounts()
	m.Unfix(h)

	// Unfix flushed exactly the dirty line (line 2 of the page data).
	dataLine := m.slotDataOff(int64(pid-1)) / LineSize
	after := m.NVM().WearCounts()
	if after[dataLine+2]-wear[dataLine+2] != 1 {
		t.Fatalf("dirty line flushed %d times, want 1", after[dataLine+2]-wear[dataLine+2])
	}
	if after[dataLine] != wear[dataLine] {
		t.Fatal("clean line was flushed")
	}

	// Reads charge NVM latency.
	before := m.Clock().Ns()
	h2 := mustFix(t, m, pid, ModeCacheLine)
	got := h2.Read(128, 6)
	if string(got) != "DIRECT" {
		t.Fatalf("read back %q", got)
	}
	if m.Clock().Ns() == before {
		t.Fatal("direct read charged no latency")
	}
	m.Unfix(h2)
	if m.Stats().DirectFixes != 2 {
		t.Fatalf("DirectFixes = %d, want 2", m.Stats().DirectFixes)
	}
}

func TestFreePageReusesPID(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	h := mustAlloc(t, m)
	pid := h.PID()
	m.FreePage(h)
	h2 := mustAlloc(t, m)
	if h2.PID() != pid {
		t.Fatalf("reallocated pid = %d, want reused %d", h2.PID(), pid)
	}
	// Freed-and-reused pages must read as zero.
	data := h2.ReadAll()
	for i, b := range data {
		if b != 0 {
			t.Fatalf("reused page byte %d = %#x, want 0", i, b)
		}
	}
	m.Unfix(h2)
}

func TestUserMetaPersistsAcrossRestart(t *testing.T) {
	m := newTestManager(t, ThreeTier, 4)
	meta := []byte("catalog: tree@3")
	if err := m.SetUserMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := m.CleanRestart(); err != nil {
		t.Fatal(err)
	}
	if got := m.UserMeta(); !bytes.Equal(got, meta) {
		t.Fatalf("UserMeta after restart = %q, want %q", got, meta)
	}
}

func TestUserMetaTooLarge(t *testing.T) {
	m := newTestManager(t, MemOnly, 0)
	if err := m.SetUserMeta(make([]byte, userMetaMax+1)); err == nil {
		t.Fatal("oversized metadata accepted")
	}
}

func TestDebugChecksCatchUnmarkedWrite(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4, func(c *Config) {
		c.CacheLineGrained = true
		c.DebugChecks = true
	})
	h := mustAlloc(t, m)
	pid := h.PID()
	fillPattern(h, 2)
	m.Unfix(h)
	if err := m.CleanShutdown(); err != nil {
		t.Fatal(err)
	}

	h2 := mustFix(t, m, pid, ModeCacheLine)
	// Simulate a buggy caller: mutate a read-only slice.
	h2.Read(0, 8)[0] ^= 0xFF
	m.Unfix(h2)
	defer func() {
		if recover() == nil {
			t.Fatal("debug checks did not catch unmarked write")
		}
	}()
	_ = m.CleanShutdown()
}

func TestUnfixPanics(t *testing.T) {
	m := newTestManager(t, MemOnly, 0)
	h := mustAlloc(t, m)
	m.Unfix(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double unfix did not panic")
		}
	}()
	m.Unfix(h)
}

func TestFixUnknownPage(t *testing.T) {
	m := newTestManager(t, DRAMNVM, 4)
	if _, err := m.Fix(MakeRef(99), ModeFull); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("err = %v, want ErrPageNotFound", err)
	}
	if _, err := m.Fix(MakeRef(InvalidPageID), ModeFull); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("err = %v, want ErrPageNotFound", err)
	}
}

// TestRandomAccessAgainstShadow drives one page through random reads,
// writes, evictions, and restarts in every buffered topology and feature
// combination, comparing against an in-memory shadow copy.
func TestRandomAccessAgainstShadow(t *testing.T) {
	type variant struct {
		name string
		topo Topology
		feat func(*Config)
	}
	variants := []variant{
		{"ssd-bm", DRAMSSD, withFeatures(false, false, false)},
		{"basic-nvm", DRAMNVM, withFeatures(false, false, false)},
		{"nvm-cl", DRAMNVM, withFeatures(true, false, false)},
		{"nvm-cl-mini", DRAMNVM, withFeatures(true, true, false)},
		{"three-tier", ThreeTier, withFeatures(true, true, true)},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			m := newTestManager(t, v.topo, 4, v.feat)
			rng := rand.New(rand.NewSource(42))
			h := mustAlloc(t, m)
			pid := h.PID()
			shadow := make([]byte, PageSize)
			copy(h.WriteAll(), shadow) // starts zeroed
			m.Unfix(h)

			for step := 0; step < 2000; step++ {
				switch rng.Intn(10) {
				case 0: // evict everything
					if err := m.CleanShutdown(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					continue
				case 1: // full restart
					if v.topo == ThreeTier {
						if err := m.CleanRestart(); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						continue
					}
				}
				hh, err := m.Fix(MakeRef(pid), ModeCacheLine)
				if err != nil {
					t.Fatalf("step %d: fix: %v", step, err)
				}
				nOps := 1 + rng.Intn(4)
				for op := 0; op < nOps; op++ {
					n := 1 + rng.Intn(300)
					off := rng.Intn(PageSize - n)
					if rng.Intn(2) == 0 {
						got := hh.Read(off, n)
						if !bytes.Equal(got, shadow[off:off+n]) {
							t.Fatalf("step %d: read [%d,%d) mismatch", step, off, off+n)
						}
					} else {
						w := hh.Write(off, n)
						rng.Read(w)
						copy(shadow[off:], w)
					}
				}
				m.Unfix(hh)
			}
			// Final full verification.
			hh := mustFix(t, m, pid, ModeFull)
			if !bytes.Equal(hh.ReadAll(), shadow) {
				t.Fatal("final page content diverged from shadow")
			}
			m.Unfix(hh)
		})
	}
}

// TestManyPagesEvictionChurn creates more pages than DRAM holds and
// repeatedly accesses them in random order, verifying content integrity
// under heavy eviction in the three-tier topology.
func TestManyPagesEvictionChurn(t *testing.T) {
	m := newTestManager(t, ThreeTier, 6, withFeatures(true, true, true))
	const pages = 24
	pids := make([]PageID, pages)
	for i := range pids {
		h := mustAlloc(t, m)
		pids[i] = h.PID()
		fillPattern(h, byte(i))
		m.Unfix(h)
	}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 3000; step++ {
		i := rng.Intn(pages)
		h, err := m.Fix(MakeRef(pids[i]), ModeCacheLine)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		off := rng.Intn(PageSize - 8)
		data := h.Read(off, 8)
		for j := range data {
			want := byte(i) ^ byte(off+j) ^ byte((off+j)>>8)
			if data[j] != want {
				t.Fatalf("step %d: page %d byte %d = %#x, want %#x", step, pids[i], off+j, data[j], want)
			}
		}
		m.Unfix(h)
	}
	st := m.Stats()
	if st.DRAMEvictions == 0 {
		t.Fatal("no DRAM evictions despite 24 pages in a 6-frame pool")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Topology: ThreeTier}, // missing capacities
		{Topology: DRAMNVM},   // missing NVM
		{Topology: DRAMSSD},   // missing SSD
		{Topology: DRAMSSD, SSDBytes: 1 << 20, DRAMBytes: 10},   // DRAM too small
		{Topology: DRAMNVM, NVMBytes: 1 << 20, MiniPages: true}, // mini without CL
		{Topology: Topology(99)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}
