package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"nvmstore/internal/nvm"
	"nvmstore/internal/obs"
	"nvmstore/internal/simclock"
	"nvmstore/internal/ssd"
)

// Topology selects which of the paper's five storage architectures a
// Manager implements.
type Topology uint8

const (
	// MemOnly keeps every page in DRAM ("Main Memory" in the paper).
	// Capacity is limited by Config.DRAMBytes; there is no page-based
	// persistence, only the WAL.
	MemOnly Topology = iota
	// DRAMSSD is a traditional buffer manager: DRAM cache over SSD
	// ("SSD BM").
	DRAMSSD
	// DRAMNVM stores all pages on NVM and caches them in DRAM
	// ("Basic NVM BM" when page-grained; the drill-down experiment of
	// §5.4.1 enables the optimizations on this topology one by one).
	DRAMNVM
	// ThreeTier uses DRAM and NVM as caches over SSD — the paper's
	// contribution.
	ThreeTier
	// DirectNVM works on NVM in place with no DRAM buffering
	// ("NVM Direct").
	DirectNVM
)

// String implements fmt.Stringer using the paper's system names.
func (t Topology) String() string {
	switch t {
	case MemOnly:
		return "Main Memory"
	case DRAMSSD:
		return "SSD BM"
	case DRAMNVM:
		return "Basic NVM BM"
	case ThreeTier:
		return "3 Tier BM"
	case DirectNVM:
		return "NVM Direct"
	default:
		return fmt.Sprintf("Topology(%d)", uint8(t))
	}
}

// NVM device layout: a WAL region, one superblock page, the write-back
// undo journal, then page slots of one header line plus PageSize data
// each.
const (
	superSize     = 4096
	slotSize      = LineSize + PageSize
	userMetaMax   = 1024
	superMagic    = 0x4e564d53544f5245 // "NVMSTORE"
	slotMagic     = 0x50414745         // "PAGE"
	slotFlagDirty = 1 << 0             // NVM copy is newer than the SSD copy

	// The undo journal (see journalArm) holds one header line, a line-
	// index array, and up to a full page of saved cache lines.
	journalMagic      = 0x4a524e4c // "JRNL"
	journalIndexLines = (LinesPerPage*2 + LineSize - 1) / LineSize
	journalSize       = (1 + journalIndexLines) * LineSize + PageSize
)

// Config describes a Manager. The zero value is not valid; at minimum
// Topology and the capacities the topology needs must be set.
type Config struct {
	Topology Topology

	// DRAMBytes bounds the DRAM buffer pool (page data plus the paper's
	// per-page header sizes). Zero means unlimited, which is the normal
	// setting for MemOnly.
	DRAMBytes int64
	// NVMBytes is the NVM capacity available for page slots. The WAL
	// region and superblock are reserved on top of it.
	NVMBytes int64
	// SSDBytes is the SSD capacity.
	SSDBytes int64
	// WALBytes is the size of the NVM log region (default 16 MB).
	WALBytes int64

	// CacheLineGrained enables loading NVM-backed pages one cache line
	// at a time (§3.1). Without it the manager is page-grained.
	CacheLineGrained bool
	// MiniPages enables 1 KB mini pages (§3.2); requires
	// CacheLineGrained.
	MiniPages bool
	// Swizzling enables pointer swizzling (§3.3).
	Swizzling bool

	// AdmissionSetSize bounds the NVM admission set (§4.2). Zero selects
	// the default (the number of NVM page slots); a negative value
	// disables the set, admitting every page on first eviction.
	AdmissionSetSize int

	// Device timing. Zero values select the defaults documented in
	// internal/nvm and internal/ssd (500 ns NVM, 100/200 µs SSD).
	NVMReadLatency  time.Duration
	NVMWriteLatency time.Duration
	NVMLineTransfer time.Duration
	// CPUCacheBytes sizes the simulated CPU cache in front of NVM.
	// Zero selects the 20 MB default; negative disables it.
	CPUCacheBytes   int64
	SSDReadLatency  time.Duration
	SSDWriteLatency time.Duration

	// StrictPersistence makes unflushed NVM writes vanish on Crash
	// (see internal/nvm); used by recovery tests.
	StrictPersistence bool

	// DebugChecks enables the §A.6 debugging mode: freshly allocated
	// frames are poisoned, and on eviction every resident-but-clean
	// cache line is verified against its NVM backing.
	DebugChecks bool

	// Recorder, when non-nil, receives latency samples at every tier
	// boundary and page-lifecycle events (see internal/obs). It is also
	// installed on the manager's NVM and SSD devices. Nil disables all
	// recording at the cost of one nil check per boundary.
	Recorder obs.Recorder
}

func (c *Config) applyDefaults() {
	if c.WALBytes == 0 {
		c.WALBytes = 16 << 20
	}
	// The log must hold the page images of the largest transaction's
	// structural changes.
	if c.WALBytes < 1<<20 {
		c.WALBytes = 1 << 20
	}
	if c.NVMReadLatency == 0 {
		c.NVMReadLatency = 500 * time.Nanosecond
	}
	if c.NVMWriteLatency == 0 {
		c.NVMWriteLatency = 500 * time.Nanosecond
	}
	if c.NVMLineTransfer == 0 {
		c.NVMLineTransfer = 30 * time.Nanosecond
	}
	if c.CPUCacheBytes == 0 {
		c.CPUCacheBytes = 20 << 20
	}
	if c.SSDReadLatency == 0 {
		c.SSDReadLatency = 100 * time.Microsecond
	}
	if c.SSDWriteLatency == 0 {
		c.SSDWriteLatency = 200 * time.Microsecond
	}
}

func (c *Config) validate() error {
	switch c.Topology {
	case MemOnly:
	case DRAMSSD:
		if c.SSDBytes <= 0 {
			return fmt.Errorf("core: topology %v requires SSDBytes", c.Topology)
		}
	case DRAMNVM, DirectNVM:
		if c.NVMBytes <= 0 {
			return fmt.Errorf("core: topology %v requires NVMBytes", c.Topology)
		}
	case ThreeTier:
		if c.NVMBytes <= 0 || c.SSDBytes <= 0 {
			return fmt.Errorf("core: topology %v requires NVMBytes and SSDBytes", c.Topology)
		}
	default:
		return fmt.Errorf("core: unknown topology %d", c.Topology)
	}
	if c.Topology != MemOnly && c.Topology != DirectNVM {
		if c.DRAMBytes > 0 && c.DRAMBytes < 4*fullFrameBytes {
			return fmt.Errorf("core: DRAMBytes %d below minimum of %d", c.DRAMBytes, 4*fullFrameBytes)
		}
	}
	if c.MiniPages && !c.CacheLineGrained {
		return fmt.Errorf("core: MiniPages requires CacheLineGrained")
	}
	return nil
}

// Stats counts buffer-manager events since the last ResetStats.
type Stats struct {
	Fixes          int64 // page fixes of any kind
	SwizzleHits    int64 // fixes resolved through a swizzled reference
	TableHits      int64 // fixes resolved to a DRAM frame via the table
	Swizzles       int64 // references turned into swizzled pointers
	SSDLoads       int64 // pages read from SSD into DRAM
	NVMPageLoads   int64 // whole pages read from NVM (page-grained mode)
	LinesLoaded    int64 // cache lines read from NVM (cache-line mode)
	MiniAllocs     int64 // mini pages allocated
	FullAllocs     int64 // full pages allocated
	MiniPromotions int64 // mini pages promoted to full pages
	DRAMEvictions  int64 // frames evicted from DRAM
	NVMAdmissions  int64 // pages admitted to the NVM cache
	NVMDenials     int64 // pages denied NVM admission
	NVMEvictions   int64 // pages evicted from the NVM cache
	DirectFixes    int64 // in-place fixes (DirectNVM topology)
	JournalUndos   int64 // interrupted write-backs undone at restart
}

// nvmSlotMeta is the in-DRAM directory entry for one NVM page slot
// (ThreeTier only).
type nvmSlotMeta struct {
	pid         PageID // 0 = free
	referenced  bool
	dirtyWrtSSD bool
}

// Manager is the storage engine's buffer manager. See the package comment
// for the design. Create one with New; the zero value is not usable.
type Manager struct {
	cfg Config
	clk *simclock.Clock
	nvm *nvm.Device
	ssd *ssd.Device

	// Combined page table (§4.3): pid -> DRAM frame or NVM slot.
	table map[PageID]location

	// Frame table: stable indices so swizzled references stay valid.
	frames     []*Frame
	freeFrames []int32
	clockHand  int
	dramUsed   int64
	dramCap    int64 // 0 = unlimited

	fullPool [][]byte
	miniPool [][]byte

	// NVM page-slot bookkeeping.
	nvmSlots    int64
	slotsOff    int64
	journalOff  int64
	journalBuf  []byte
	journalList []int
	nvmDir      []nvmSlotMeta // ThreeTier only
	freeSlots   []int64
	nvmNextSlot int64
	nvmHand     int64

	admission admissionSet

	nextPID  PageID
	freePIDs []PageID
	ssdPages int64

	stats   Stats
	scratch []byte
	rec     obs.Recorder
	obsHits int64 // DRAM hits batched for the recorder, see recordHit

	// vers is the multi-version read-path state (per-page version
	// counters and the copy-on-write version store); see versions.go.
	vers *Versions

	// writeBarrier, when set, runs before any dirty page content reaches
	// persistent storage. Engines install the WAL's Flush here so the
	// write-ahead rule holds under page steal: no modified page is ever
	// persisted before the log records describing the modification.
	writeBarrier func()
}

// SetWriteBarrier installs fn to run before dirty page content is written
// to NVM or SSD (eviction, admission, or ForceWrite). See the field
// comment; typically fn is the WAL's Flush.
func (m *Manager) SetWriteBarrier(fn func()) { m.writeBarrier = fn }

func (m *Manager) barrier() {
	if m.writeBarrier != nil {
		m.writeBarrier()
	}
}

// New creates a Manager and its simulated devices.
func New(cfg Config) (*Manager, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		clk:     &simclock.Clock{},
		table:   make(map[PageID]location),
		dramCap: cfg.DRAMBytes,
		nextPID: 1,
		scratch: make([]byte, PageSize),
		rec:     cfg.Recorder,
		vers:    newVersions(),
	}
	m.nvmSlots = cfg.NVMBytes / slotSize
	m.journalOff = cfg.WALBytes + superSize
	m.slotsOff = m.journalOff + journalSize
	m.journalBuf = make([]byte, journalIndexLines*LineSize+PageSize)
	nvmCfg := nvm.Config{
		Size:              m.slotsOff + m.nvmSlots*slotSize,
		ReadLatency:       cfg.NVMReadLatency,
		WriteLatency:      cfg.NVMWriteLatency,
		LineTransfer:      cfg.NVMLineTransfer,
		CPUCacheBytes:     cfg.CPUCacheBytes,
		StrictPersistence: cfg.StrictPersistence,
	}
	if nvmCfg.CPUCacheBytes < 0 {
		nvmCfg.CPUCacheBytes = 0
	}
	m.nvm = nvm.New(nvmCfg, m.clk)
	if m.rec != nil {
		m.nvm.SetRecorder(m.rec)
	}
	if cfg.SSDBytes > 0 {
		m.ssdPages = cfg.SSDBytes / PageSize
		m.ssd = ssd.New(ssd.Config{
			PageSize:     PageSize,
			Capacity:     m.ssdPages,
			ReadLatency:  cfg.SSDReadLatency,
			WriteLatency: cfg.SSDWriteLatency,
		}, m.clk)
		if m.rec != nil {
			m.ssd.SetRecorder(m.rec)
		}
	}
	if cfg.Topology == ThreeTier {
		m.nvmDir = make([]nvmSlotMeta, m.nvmSlots)
		size := cfg.AdmissionSetSize
		if size == 0 {
			size = int(m.nvmSlots)
		}
		m.admission.init(size)
	}
	m.persistSuper()
	return m, nil
}

// Clock returns the virtual clock accumulating simulated device time.
func (m *Manager) Clock() *simclock.Clock { return m.clk }

// NVM returns the simulated NVM device (for WAL placement and
// experiment instrumentation such as wear counters).
func (m *Manager) NVM() *nvm.Device { return m.nvm }

// SSD returns the simulated SSD device, or nil if the topology has none.
func (m *Manager) SSD() *ssd.Device { return m.ssd }

// Config returns the manager's configuration with defaults applied.
func (m *Manager) Config() Config { return m.cfg }

// WALRegion returns the offset and size of the NVM region reserved for the
// write-ahead log.
func (m *Manager) WALRegion() (off, size int64) { return 0, m.cfg.WALBytes }

// Stats returns a snapshot of the event counters.
//
// Synchronization contract: a Manager is single-threaded, and Stats (like
// every other method) must only be called while no operation is running on
// the owning engine. Under the sharded driver that means holding the
// shard's lock — the counters are plain int64 fields, and reading them
// concurrently with an operation on another goroutine is a data race, not
// just a torn snapshot. ShardedStore.Metrics takes the shard locks for
// exactly this reason.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the event counters. The same synchronization contract
// as Stats applies.
func (m *Manager) ResetStats() { m.stats = Stats{} }

// recordHit counts one DRAM hit for the dram.hit histogram. Hits are
// the hottest instrumented path — one per fix — and always cost zero
// simulated time, so they batch in a plain counter and flush in bulk
// instead of paying an atomic per fix. Callers hold the m.rec != nil
// guard.
func (m *Manager) recordHit() {
	m.obsHits++
	if m.obsHits >= obs.ZeroFlush {
		m.rec.LatencyZeros(obs.OpDRAMHit, m.obsHits)
		m.obsHits = 0
	}
}

// SyncObs flushes batched observability counters (the manager's DRAM
// hits and the NVM device's CPU-cached reads) into the recorder so a
// snapshot taken now is complete. Same contract as Stats: call only
// while the manager is idle.
func (m *Manager) SyncObs() {
	if m.rec == nil {
		return
	}
	if m.obsHits > 0 {
		m.rec.LatencyZeros(obs.OpDRAMHit, m.obsHits)
		m.obsHits = 0
	}
	if m.nvm != nil {
		m.nvm.SyncObs()
	}
}

// trace emits a page-lifecycle event when a recorder is installed,
// stamping it with the current simulated time.
func (m *Manager) trace(pid PageID, frame int32, kind obs.EventKind, tier obs.Tier, detail uint32) {
	if m.rec == nil {
		return
	}
	m.rec.Event(obs.Event{
		SimNs:  m.clk.Ns(),
		PID:    uint64(pid),
		Frame:  frame,
		Kind:   kind,
		Tier:   tier,
		Detail: detail,
	})
}

// DRAMUsed returns the bytes currently charged against the DRAM budget.
func (m *Manager) DRAMUsed() int64 { return m.dramUsed }

// NVMSlotsTotal returns the number of NVM page slots.
func (m *Manager) NVMSlotsTotal() int64 { return m.nvmSlots }

func (m *Manager) slotHeaderOff(slot int64) int64 { return m.slotsOff + slot*slotSize }
func (m *Manager) slotDataOff(slot int64) int64   { return m.slotsOff + slot*slotSize + LineSize }

// Handle is a pinned page. The zero Handle is invalid. Handles are values;
// copy them freely, but every Fix must be matched by exactly one Unfix.
type Handle struct {
	f *Frame
	m *Manager
}

// Valid reports whether h refers to a fixed page.
func (h Handle) Valid() bool { return h.f != nil }

// PID returns the page identifier.
func (h Handle) PID() PageID { return h.f.pid }

// Read returns the page bytes [off, off+n), loading missing cache lines
// from NVM first. The slice is valid until the next access to this page or
// its Unfix, and must not be modified.
func (h Handle) Read(off, n int) []byte { return h.f.read(h.m, off, n) }

// Write returns a writable slice of the page bytes [off, off+n), marking
// the covered cache lines dirty. The same validity rule as Read applies.
func (h Handle) Write(off, n int) []byte { return h.f.write(h.m, off, n) }

// ReadAll returns the entire page, loading it completely — the paper's
// full-page path that avoids per-access residency checks. A mini page is
// promoted.
func (h Handle) ReadAll() []byte { return h.f.readAll(h.m) }

// WriteAll returns the entire page writable with every line marked dirty.
func (h Handle) WriteAll() []byte { return h.f.writeAll(h.m) }

// Ref returns the current reference for storing in a parent page: swizzled
// if the page is swizzled, the plain page id otherwise.
func (h Handle) Ref() Ref {
	f := h.f
	if f.promoted != nil {
		f = f.promoted
	}
	if f.swizzled() {
		return swizzledRef(f.idx)
	}
	return MakeRef(f.pid)
}

// Allocate creates a new page and returns it fixed. The page content is
// zeroed and the caller is expected to initialize it before unfixing.
func (m *Manager) Allocate() (Handle, error) {
	pid, reused, err := m.takePID()
	if err != nil {
		return Handle{}, err
	}
	switch m.cfg.Topology {
	case DirectNVM:
		slot := int64(pid - 1)
		if reused {
			// Reused slots may hold stale data; clear it so the new
			// page starts zeroed like a fresh one.
			zero := m.scratch[:PageSize]
			for i := range zero {
				zero[i] = 0
			}
			m.nvm.WriteAt(zero, m.slotDataOff(slot))
		}
		m.writeSlotHeader(slot, pid, false)
		f := m.directFrame(pid, slot)
		m.stats.DirectFixes++
		m.trace(pid, -1, obs.EvAlloc, obs.TierNVM, 0)
		return Handle{f, m}, nil
	case DRAMNVM:
		slot := int64(pid - 1)
		m.writeSlotHeader(slot, pid, false)
		f, err := m.newFrame(kindFull, pid)
		if err != nil {
			return Handle{}, err
		}
		zeroBytes(f.data)
		f.nvmSlot = slot
		m.initAllocated(f)
		return Handle{f, m}, nil
	default: // MemOnly, DRAMSSD, ThreeTier
		f, err := m.newFrame(kindFull, pid)
		if err != nil {
			return Handle{}, err
		}
		zeroBytes(f.data)
		f.nvmSlot = -1
		m.initAllocated(f)
		return Handle{f, m}, nil
	}
}

func (m *Manager) initAllocated(f *Frame) {
	f.fullyResident = true
	f.resident.setRange(0, LinesPerPage-1)
	f.dirty.setRange(0, LinesPerPage-1)
	f.anyDirty = true
	f.pins = 1
	f.referenced = true
	m.table[f.pid] = dramLoc(f.idx)
	m.trace(f.pid, f.idx, obs.EvAlloc, obs.TierDRAM, 0)
}

// takePID hands out the next page identifier, enforcing the topology's
// hard capacity limit, and persists the allocation watermark.
func (m *Manager) takePID() (PageID, bool, error) {
	if n := len(m.freePIDs); n > 0 {
		pid := m.freePIDs[n-1]
		m.freePIDs = m.freePIDs[:n-1]
		return pid, true, nil
	}
	pid := m.nextPID
	switch m.cfg.Topology {
	case DirectNVM, DRAMNVM:
		if int64(pid-1) >= m.nvmSlots {
			return 0, false, fmt.Errorf("core: %v full at %d pages: %w", m.cfg.Topology, m.nvmSlots, ErrCapacity)
		}
	case DRAMSSD, ThreeTier:
		if int64(pid-1) >= m.ssdPages {
			return 0, false, fmt.Errorf("core: SSD full at %d pages: %w", m.ssdPages, ErrCapacity)
		}
	}
	m.nextPID++
	m.persistNextPID()
	return pid, false, nil
}

// Fix pins the page identified by ref without swizzling bookkeeping. Use
// FixChild or FixRoot to let hot references be swizzled.
func (m *Manager) Fix(ref Ref, mode AccessMode) (Handle, error) {
	return m.fix(ref, nil, 0, nil, mode)
}

// FixChild reads the child reference stored at byte offset wordOff of
// parent, pins the child, and — when swizzling is enabled — replaces the
// stored reference with a direct frame pointer.
func (m *Manager) FixChild(parent Handle, wordOff int, mode AccessMode) (Handle, error) {
	ref := Ref(binary.LittleEndian.Uint64(parent.Read(wordOff, 8)))
	pf := parent.f
	if pf.promoted != nil {
		pf = pf.promoted
	}
	return m.fix(ref, pf, wordOff, nil, mode)
}

// FixRoot pins the page referenced by *holder, typically a tree's root
// reference. When swizzling is enabled the holder is updated to a direct
// frame pointer, and restored to a plain page id when the root is evicted.
func (m *Manager) FixRoot(holder *Ref, mode AccessMode) (Handle, error) {
	return m.fix(*holder, nil, 0, holder, mode)
}

func (m *Manager) fix(ref Ref, parent *Frame, wordOff int, holder *Ref, mode AccessMode) (Handle, error) {
	m.stats.Fixes++
	if ref.Swizzled() {
		idx := ref.frameIndex()
		f := m.frames[idx]
		if f == nil {
			panic(fmt.Sprintf("core: dangling swizzled reference to frame %d", idx))
		}
		f.pins++
		f.referenced = true
		m.stats.SwizzleHits++
		if m.rec != nil {
			m.recordHit()
		}
		return Handle{f, m}, nil
	}
	pid := ref.PageID()
	if pid == InvalidPageID || pid >= m.nextPID {
		return Handle{}, fmt.Errorf("core: fix page %d: %w", pid, ErrPageNotFound)
	}
	if m.cfg.Topology == DirectNVM {
		f := m.directFrame(pid, int64(pid-1))
		m.stats.DirectFixes++
		return Handle{f, m}, nil
	}
	if loc, ok := m.table[pid]; ok {
		if loc.inDRAM() {
			f := m.frames[loc.frame()]
			f.pins++
			f.referenced = true
			m.stats.TableHits++
			if m.rec != nil {
				m.recordHit()
			}
			m.maybeSwizzle(f, parent, wordOff, holder)
			return Handle{f, m}, nil
		}
		// ThreeTier: the page is cached on NVM.
		f, err := m.loadFromNVM(pid, loc.nvmSlot(), mode)
		if err != nil {
			return Handle{}, err
		}
		m.maybeSwizzle(f, parent, wordOff, holder)
		return Handle{f, m}, nil
	}
	var f *Frame
	var err error
	switch m.cfg.Topology {
	case MemOnly:
		return Handle{}, fmt.Errorf("core: fix page %d: %w", pid, ErrPageNotFound)
	case DRAMNVM:
		f, err = m.loadFromNVM(pid, int64(pid-1), mode)
	default: // DRAMSSD, ThreeTier: page only on SSD
		f, err = m.loadFromSSD(pid)
	}
	if err != nil {
		return Handle{}, err
	}
	m.maybeSwizzle(f, parent, wordOff, holder)
	return Handle{f, m}, nil
}

// directFrame builds an in-place frame over the page's NVM slot.
func (m *Manager) directFrame(pid PageID, slot int64) *Frame {
	return &Frame{
		kind:    kindDirect,
		pid:     pid,
		idx:     -1,
		nvmSlot: slot,
		data:    m.nvm.View(m.slotDataOff(slot), PageSize),
		pins:    1,
	}
}

// loadFromNVM caches an NVM-resident page in DRAM: as a mini page or lazy
// cache-line-grained full page when enabled, or by reading the whole page
// in page-grained mode.
func (m *Manager) loadFromNVM(pid PageID, slot int64, mode AccessMode) (*Frame, error) {
	if m.nvmDir != nil {
		m.nvmDir[slot].referenced = true
	}
	kind := kindFull
	if m.cfg.CacheLineGrained && m.cfg.MiniPages && mode == ModeCacheLine {
		kind = kindMini
	}
	f, err := m.newFrame(kind, pid)
	if err != nil {
		return nil, err
	}
	f.nvmSlot = slot
	if kind == kindFull && !m.cfg.CacheLineGrained {
		t0 := m.clk.Ns()
		m.nvm.ReadAt(f.data, m.slotDataOff(slot))
		f.resident.setRange(0, LinesPerPage-1)
		f.fullyResident = true
		m.stats.NVMPageLoads++
		if m.rec != nil {
			m.rec.Latency(obs.OpNVMPageLoad, m.clk.Ns()-t0)
		}
	}
	f.pins = 1
	f.referenced = true
	m.table[pid] = dramLoc(f.idx)
	var mini uint32
	if kind == kindMini {
		mini = 1
	}
	m.trace(pid, f.idx, obs.EvLoad, obs.TierNVM, mini)
	return f, nil
}

// loadFromSSD reads a page from SSD into a fresh, fully resident DRAM
// frame. Per §4.2 the page is not put into NVM on the way in; it becomes a
// candidate for NVM admission only when evicted from DRAM.
func (m *Manager) loadFromSSD(pid PageID) (*Frame, error) {
	f, err := m.newFrame(kindFull, pid)
	if err != nil {
		return nil, err
	}
	m.ssd.ReadPage(int64(pid-1), f.data)
	f.nvmSlot = -1
	f.resident.setRange(0, LinesPerPage-1)
	f.fullyResident = true
	f.pins = 1
	f.referenced = true
	m.table[pid] = dramLoc(f.idx)
	m.stats.SSDLoads++
	m.trace(pid, f.idx, obs.EvLoad, obs.TierSSD, 0)
	return f, nil
}

func (m *Manager) maybeSwizzle(f *Frame, parent *Frame, wordOff int, holder *Ref) {
	if !m.cfg.Swizzling || f.swizzled() {
		return
	}
	switch {
	case parent != nil:
		putRef(parent.data, wordOff, swizzledRef(f.idx))
		parent.swizzledChildren++
		f.parent = parent
		f.parentOff = int32(wordOff)
		m.stats.Swizzles++
		m.trace(f.pid, f.idx, obs.EvSwizzle, obs.TierDRAM, 0)
	case holder != nil:
		*holder = swizzledRef(f.idx)
		f.rootHolder = holder
		m.stats.Swizzles++
		m.trace(f.pid, f.idx, obs.EvSwizzle, obs.TierDRAM, 0)
	}
}

func (m *Manager) unswizzle(f *Frame) {
	if f.swizzled() {
		m.trace(f.pid, f.idx, obs.EvUnswizzle, obs.TierDRAM, 0)
	}
	switch {
	case f.parent != nil:
		if got := getRef(f.parent.data, int(f.parentOff)); !got.Swizzled() || got.frameIndex() != f.idx {
			panic(fmt.Sprintf("core: unswizzle page %d frame %d: parent page %d word at %d holds %#x, not this frame", f.pid, f.idx, f.parent.pid, f.parentOff, uint64(got)))
		}
		putRef(f.parent.data, int(f.parentOff), MakeRef(f.pid))
		f.parent.swizzledChildren--
		f.parent = nil
	case f.rootHolder != nil:
		if got := *f.rootHolder; !got.Swizzled() || got.frameIndex() != f.idx {
			panic(fmt.Sprintf("core: unswizzle page %d frame %d: root holder holds %#x, not this frame", f.pid, f.idx, uint64(got)))
		}
		*f.rootHolder = MakeRef(f.pid)
		f.rootHolder = nil
	}
}

// Unfix releases a pinned page. For in-place (DirectNVM) pages the dirty
// cache lines are flushed to NVM, mirroring the paper's clwb of updated
// tuples. For a mini page that was promoted while fixed, the wrapper is
// released once its last pin drops (§3.2).
func (m *Manager) Unfix(h Handle) {
	f := h.f
	if f == nil {
		panic("core: unfix of invalid handle")
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("core: unfix of unpinned page %d", f.pid))
	}
	if f.kind == kindDirect {
		f.pins--
		if f.anyDirty {
			m.barrier()
			base := m.slotDataOff(f.nvmSlot)
			f.dirty.setRuns(0, LinesPerPage-1, func(from, to int) {
				m.nvm.Flush(base+int64(from)*LineSize, (to-from+1)*LineSize)
			})
			f.dirty.reset()
			f.anyDirty = false
		}
		return
	}
	if f.promoted != nil {
		f.pins--
		p := f.promoted
		if p.pins <= 0 {
			panic(fmt.Sprintf("core: promoted page %d lost its pin", p.pid))
		}
		p.pins--
		if f.pins == 0 {
			// Last reference through the wrapper: release the mini frame.
			m.dropFrame(f)
		}
		return
	}
	f.pins--
}

// ForceWrite persists the page's dirty content to its home (NVM slot or
// SSD) without evicting it, clearing the dirty state. Storage engines use
// it to make structural changes (for example B-tree splits) durable
// immediately, so that the persistent tree structure is always consistent
// regardless of later eviction order. On a MemOnly topology it is a no-op:
// that architecture has no page-based persistence.
func (m *Manager) ForceWrite(h Handle) {
	f := h.f
	if f.promoted != nil {
		f = f.promoted
	}
	switch f.kind {
	case kindDirect:
		if f.anyDirty {
			m.barrier()
			base := m.slotDataOff(f.nvmSlot)
			f.dirty.setRuns(0, LinesPerPage-1, func(from, to int) {
				m.nvm.Flush(base+int64(from)*LineSize, (to-from+1)*LineSize)
			})
		}
	default:
		if !f.anyDirty {
			return
		}
		// Swizzled child references are transient in-memory state and
		// must never reach persistent storage; they re-swizzle on the
		// next fix.
		if f.swizzledChildren > 0 {
			m.unswizzleChildrenOf(f)
		}
		m.barrier()
		switch m.cfg.Topology {
		case MemOnly:
			return
		case DRAMSSD:
			m.ssd.WritePage(int64(f.pid-1), f.data)
		case DRAMNVM:
			m.writeBackToNVM(f)
		case ThreeTier:
			if f.nvmSlot >= 0 {
				m.writeBackToNVM(f)
				e := &m.nvmDir[f.nvmSlot]
				if !e.dirtyWrtSSD {
					e.dirtyWrtSSD = true
					m.writeSlotHeader(f.nvmSlot, f.pid, true)
				}
			} else if slot, ok := m.freeNVMSlot(); ok {
				// Not NVM-backed: stage on NVM when a slot is free (a
				// forced page is being persisted because it matters —
				// checkpoints and structural changes). No NVM eviction
				// is triggered for it; with NVM full it goes to SSD.
				m.admitToNVM(f, slot)
				f.nvmSlot = slot
				m.stats.NVMAdmissions++
			} else {
				m.ssd.WritePage(int64(f.pid-1), f.data)
			}
		}
	}
	f.dirty.reset()
	f.miniDirty = 0
	f.anyDirty = false
}

// FlushAll force-writes every dirty page in the buffer pool without
// evicting anything. Together with truncating the WAL this forms a
// checkpoint.
func (m *Manager) FlushAll() {
	for _, f := range m.frames {
		if f != nil && f.anyDirty && f.promoted == nil {
			m.ForceWrite(Handle{f, m})
		}
	}
}

// FlushSome force-writes up to max dirty pages, resuming the frame walk
// at cursor (the value a previous call returned; start at 0). It returns
// the cursor for the next round and how many pages it wrote back. The
// walk wraps once past the end of the frame table, so repeated rounds
// visit every dirty frame even as the cursor starts mid-table — the
// bounded write-back unit of an incremental (fuzzy) checkpoint: the
// caller interleaves rounds with foreground work instead of stalling on
// FlushAll. Pages dirtied behind the cursor during a round are picked up
// by a later round; DirtyFrames reports whether any remain.
func (m *Manager) FlushSome(cursor, max int) (next, written int) {
	n := len(m.frames)
	if n == 0 || max <= 0 {
		return 0, 0
	}
	if cursor < 0 || cursor >= n {
		cursor = 0
	}
	for scanned := 0; scanned < n && written < max; scanned++ {
		f := m.frames[cursor]
		if f != nil && f.anyDirty && f.promoted == nil {
			m.ForceWrite(Handle{f, m})
			written++
		}
		cursor++
		if cursor == n {
			cursor = 0
		}
	}
	return cursor, written
}

// DirtyFrames counts buffer-pool pages with unwritten modifications —
// the remaining work of an incremental checkpoint. Zero means every
// logged change is persisted in its home location and the WAL can be
// truncated. Same synchronization contract as Stats: call only while no
// operation runs on this manager.
func (m *Manager) DirtyFrames() int {
	n := 0
	for _, f := range m.frames {
		if f != nil && f.anyDirty && f.promoted == nil {
			n++
		}
	}
	return n
}

// UnswizzleChildren converts every swizzled child reference of the given
// page back to a plain page identifier. Callers that restructure a page
// (shifting or moving reference words, as a B-tree split does) must call
// this first: a swizzled child's back-pointer records the byte offset of
// its reference word, which restructuring would invalidate.
func (m *Manager) UnswizzleChildren(parent Handle) {
	pf := parent.f
	if pf.promoted != nil {
		pf = pf.promoted
	}
	m.unswizzleChildrenOf(pf)
}

func (m *Manager) unswizzleChildrenOf(pf *Frame) {
	if pf.swizzledChildren == 0 {
		return
	}
	for _, f := range m.frames {
		if f != nil && f.parent == pf {
			m.unswizzle(f)
			if pf.swizzledChildren == 0 {
				return
			}
		}
	}
}

// Unswizzle converts the reference pointing at this page (in its parent or
// root holder) back to a plain page identifier. B-tree root splits use it
// before re-homing the old root under a new parent.
func (m *Manager) Unswizzle(h Handle) {
	f := h.f
	if f.promoted != nil {
		f = f.promoted
	}
	m.unswizzle(f)
}

// FreePage deallocates the page held by h, releasing its DRAM frame, NVM
// slot, and page identifier. The caller must hold the only pin and must
// have removed all references to the page.
func (m *Manager) FreePage(h Handle) {
	f := h.f
	if f.pins != 1 {
		panic(fmt.Sprintf("core: freeing page %d with %d pins", f.pid, f.pins))
	}
	if f.swizzledChildren != 0 {
		panic(fmt.Sprintf("core: freeing page %d with swizzled children", f.pid))
	}
	pid := f.pid
	m.trace(pid, f.idx, obs.EvFree, obs.TierDRAM, 0)
	m.vers.Drop(pid)
	if f.kind == kindDirect {
		m.clearSlotHeader(f.nvmSlot)
		f.pins = 0
		m.freePIDs = append(m.freePIDs, pid)
		return
	}
	if f.promoted != nil {
		p := f.promoted
		m.unswizzle(p)
		p.pins = 0
		m.freeNVMBacking(p)
		delete(m.table, pid)
		m.dropFrame(p)
		f.pins = 0
		m.dropFrame(f)
		m.freePIDs = append(m.freePIDs, pid)
		return
	}
	m.unswizzle(f)
	f.pins = 0
	m.freeNVMBacking(f)
	delete(m.table, pid)
	m.dropFrame(f)
	m.freePIDs = append(m.freePIDs, pid)
}

// freeNVMBacking releases the NVM slot backing f, if any.
func (m *Manager) freeNVMBacking(f *Frame) {
	if f.nvmSlot < 0 {
		return
	}
	m.clearSlotHeader(f.nvmSlot)
	if m.cfg.Topology == ThreeTier {
		m.nvmDir[f.nvmSlot] = nvmSlotMeta{}
		m.freeSlots = append(m.freeSlots, f.nvmSlot)
	}
	f.nvmSlot = -1
}

// newFrame allocates a DRAM frame, evicting pages as needed to stay within
// the DRAM budget, and registers it in the frame table.
func (m *Manager) newFrame(kind frameKind, pid PageID) (*Frame, error) {
	need := int64(fullFrameBytes)
	if kind == kindMini {
		need = miniFrameBytes
	}
	if err := m.ensureDRAM(need); err != nil {
		return nil, err
	}
	f := &Frame{kind: kind, pid: pid, nvmSlot: -1}
	if kind == kindMini {
		if n := len(m.miniPool); n > 0 {
			f.data = m.miniPool[n-1]
			m.miniPool = m.miniPool[:n-1]
		} else {
			f.data = make([]byte, MiniDataSize)
		}
		m.stats.MiniAllocs++
	} else {
		if n := len(m.fullPool); n > 0 {
			f.data = m.fullPool[n-1]
			m.fullPool = m.fullPool[:n-1]
		} else {
			f.data = make([]byte, PageSize)
		}
		m.stats.FullAllocs++
		if m.cfg.DebugChecks {
			poison(f.data)
		}
	}
	if n := len(m.freeFrames); n > 0 {
		f.idx = m.freeFrames[n-1]
		m.freeFrames = m.freeFrames[:n-1]
		m.frames[f.idx] = f
	} else {
		f.idx = int32(len(m.frames))
		m.frames = append(m.frames, f)
	}
	m.dramUsed += need
	return f, nil
}

// dropFrame releases a frame's memory without writing anything back.
func (m *Manager) dropFrame(f *Frame) {
	if f.kind == kindMini {
		m.miniPool = append(m.miniPool, f.data)
		m.dramUsed -= miniFrameBytes
	} else {
		m.fullPool = append(m.fullPool, f.data)
		m.dramUsed -= fullFrameBytes
	}
	m.frames[f.idx] = nil
	m.freeFrames = append(m.freeFrames, f.idx)
	f.data = nil
}

// ensureDRAM evicts frames until need bytes fit in the DRAM budget.
func (m *Manager) ensureDRAM(need int64) error {
	if m.dramCap <= 0 {
		return nil
	}
	for m.dramUsed+need > m.dramCap {
		if err := m.evictOne(); err != nil {
			return err
		}
	}
	return nil
}

// evictOne runs the DRAM clock (second chance, §4.2) and evicts one frame.
func (m *Manager) evictOne() error {
	if m.cfg.Topology == MemOnly {
		return fmt.Errorf("core: main-memory topology out of DRAM: %w", ErrCapacity)
	}
	n := len(m.frames)
	for scanned := 0; scanned < 2*n+1; scanned++ {
		if m.clockHand >= len(m.frames) {
			m.clockHand = 0
		}
		f := m.frames[m.clockHand]
		m.clockHand++
		if f == nil || f.pins > 0 || f.swizzledChildren > 0 {
			continue
		}
		if f.referenced {
			f.referenced = false
			continue
		}
		m.evictFrame(f)
		return nil
	}
	return ErrNoEvictable
}

// evictFrame writes a frame back according to the topology and releases it.
// This is where the paper's NVM admission decision happens: a page without
// NVM backing that is thrown out of DRAM either moves into the NVM cache
// (if the admission set has seen it recently) or goes back to SSD.
func (m *Manager) evictFrame(f *Frame) {
	var t0 int64
	if m.rec != nil {
		t0 = m.clk.Ns()
	}
	if f.swizzled() {
		m.unswizzle(f)
	}
	if m.cfg.DebugChecks {
		m.verifyCleanLines(f)
	}
	if f.anyDirty {
		m.barrier()
	}
	m.stats.DRAMEvictions++
	switch m.cfg.Topology {
	case DRAMSSD:
		if f.anyDirty {
			m.ssd.WritePage(int64(f.pid-1), f.data)
			m.trace(f.pid, f.idx, obs.EvWriteback, obs.TierSSD, 0)
		}
		delete(m.table, f.pid)
	case DRAMNVM:
		m.writeBackToNVM(f)
		delete(m.table, f.pid)
	case ThreeTier:
		if f.nvmSlot >= 0 {
			if m.writeBackToNVM(f) {
				e := &m.nvmDir[f.nvmSlot]
				if !e.dirtyWrtSSD {
					e.dirtyWrtSSD = true
					m.writeSlotHeader(f.nvmSlot, f.pid, true)
				}
			}
			m.table[f.pid] = nvmLoc(f.nvmSlot)
		} else if m.admission.checkAndUpdate(f.pid) {
			if slot, err := m.allocNVMSlot(); err == nil {
				m.admitToNVM(f, slot)
				m.table[f.pid] = nvmLoc(slot)
				m.stats.NVMAdmissions++
			} else {
				// NVM completely pinned by cached pages: fall back to SSD.
				if f.anyDirty {
					m.ssd.WritePage(int64(f.pid-1), f.data)
					m.trace(f.pid, f.idx, obs.EvWriteback, obs.TierSSD, 0)
				}
				delete(m.table, f.pid)
				m.stats.NVMDenials++
				m.trace(f.pid, f.idx, obs.EvDeny, obs.TierNVM, 0)
			}
		} else {
			if f.anyDirty {
				m.ssd.WritePage(int64(f.pid-1), f.data)
				m.trace(f.pid, f.idx, obs.EvWriteback, obs.TierSSD, 0)
			}
			delete(m.table, f.pid)
			m.stats.NVMDenials++
			m.trace(f.pid, f.idx, obs.EvDeny, obs.TierNVM, 0)
		}
	}
	m.trace(f.pid, f.idx, obs.EvEvict, obs.TierDRAM, 0)
	m.dropFrame(f)
	if m.rec != nil {
		m.rec.Latency(obs.OpDRAMEvict, m.clk.Ns()-t0)
	}
}

// writeBackToNVM writes the frame's dirty content to its NVM slot and
// reports whether anything was written. In page-grained mode the whole
// page is written; in cache-line-grained mode only the dirty lines are,
// which is the source of the endurance advantage measured in Figure 16.
func (m *Manager) writeBackToNVM(f *Frame) bool {
	if !f.anyDirty {
		return false
	}
	armed := m.journalArm(f)
	written := m.nvmWriteBack(f)
	if armed {
		m.journalDisarm()
	}
	if written {
		m.trace(f.pid, f.idx, obs.EvWriteback, obs.TierNVM, 0)
	}
	return written
}

// journalArm makes the upcoming in-place write-back atomic with respect
// to a crash. Write-back overwrites a valid slot's cache lines with a
// sequence of flushes; a crash (or a torn flush) mid-sequence leaves
// the slot with lines from two page generations. The logical WAL cannot
// repair that: rows that merely moved inside the page (shifted by a
// neighboring, logged insert) are not themselves logged, and for a
// dirty-with-respect-to-SSD slot the NVM copy is the only durable one,
// so falling back to the SSD image would lose checkpointed data.
//
// The journal therefore saves the pre-write-back durable content of
// every line about to be overwritten, then arms a header naming the
// slot. Arming is a single-line persist, so the journal itself cannot
// be torn into a valid-but-partial state: either the header is durable
// (and index and data, flushed before it, are too) or the journal is
// invisible. Recovery (replayJournal) restores the saved lines, rolling
// the slot back to its consistent pre-write-back image, and WAL replay
// rebuilds forward from there. journalDisarm retires the journal after
// the write-back's last flush.
func (m *Manager) journalArm(f *Frame) bool {
	lines := m.journalList[:0]
	switch {
	case f.kind == kindMini:
		for i := 0; i < int(f.count); i++ {
			if f.miniDirty&(1<<uint(i)) != 0 {
				lines = append(lines, int(f.slots[i]))
			}
		}
	case !m.cfg.CacheLineGrained:
		for ln := 0; ln < LinesPerPage; ln++ {
			lines = append(lines, ln)
		}
	default:
		f.dirty.setRuns(0, LinesPerPage-1, func(from, to int) {
			for ln := from; ln <= to; ln++ {
				lines = append(lines, ln)
			}
		})
	}
	m.journalList = lines
	n := len(lines)
	if n == 0 {
		return false
	}
	idxBytes := journalIndexLines * LineSize
	idx := m.journalBuf[:idxBytes]
	data := m.journalBuf[idxBytes:]
	base := m.slotDataOff(f.nvmSlot)
	for i, ln := range lines {
		binary.LittleEndian.PutUint16(idx[i*2:], uint16(ln))
		m.nvm.ReadAt(data[i*LineSize:(i+1)*LineSize], base+int64(ln)*LineSize)
	}
	idxUsed := (n*2 + LineSize - 1) / LineSize * LineSize
	m.nvm.Persist(idx[:idxUsed], m.journalOff+LineSize)
	m.nvm.Persist(data[:n*LineSize], m.journalOff+int64(1+journalIndexLines)*LineSize)
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:], journalMagic)
	binary.LittleEndian.PutUint32(h[4:], uint32(n))
	binary.LittleEndian.PutUint64(h[8:], uint64(f.nvmSlot))
	m.nvm.Persist(h[:], m.journalOff)
	return true
}

func (m *Manager) journalDisarm() {
	var z [16]byte
	m.nvm.Persist(z[:], m.journalOff)
}

// replayJournal undoes a write-back that a crash interrupted: if the
// journal header is armed, the saved pre-write-back lines are copied
// back into their slot, restoring the page image that was current
// before the interrupted flush sequence began. See journalArm.
func (m *Manager) replayJournal() {
	var h [16]byte
	m.nvm.ReadAt(h[:], m.journalOff)
	if binary.LittleEndian.Uint32(h[0:]) != journalMagic {
		return
	}
	n := int(binary.LittleEndian.Uint32(h[4:]))
	slot := int64(binary.LittleEndian.Uint64(h[8:]))
	if n > 0 && n <= LinesPerPage && slot >= 0 && slot < m.nvmSlots {
		idxBytes := journalIndexLines * LineSize
		idx := m.journalBuf[:idxBytes]
		data := m.journalBuf[idxBytes:]
		m.nvm.ReadAt(idx, m.journalOff+LineSize)
		m.nvm.ReadAt(data[:n*LineSize], m.journalOff+int64(1+journalIndexLines)*LineSize)
		base := m.slotDataOff(slot)
		for i := 0; i < n; i++ {
			ln := int(binary.LittleEndian.Uint16(idx[i*2:]))
			if ln < LinesPerPage {
				m.nvm.Persist(data[i*LineSize:(i+1)*LineSize], base+int64(ln)*LineSize)
			}
		}
		m.stats.JournalUndos++
	}
	m.journalDisarm()
}

func (m *Manager) nvmWriteBack(f *Frame) bool {
	base := m.slotDataOff(f.nvmSlot)
	if f.kind == kindMini {
		i := 0
		for i < int(f.count) {
			if f.miniDirty&(1<<uint(i)) == 0 {
				i++
				continue
			}
			j := i
			for j+1 < int(f.count) && f.miniDirty&(1<<uint(j+1)) != 0 && f.slots[j+1] == f.slots[j]+1 {
				j++
			}
			off := base + int64(f.slots[i])*LineSize
			n := (j - i + 1) * LineSize
			m.nvm.WriteAt(f.data[i*LineSize:i*LineSize+n], off)
			m.nvm.Flush(off, n)
			i = j + 1
		}
		return true
	}
	if !m.cfg.CacheLineGrained {
		m.nvm.WriteAt(f.data, base)
		m.nvm.Flush(base, PageSize)
		return true
	}
	f.dirty.setRuns(0, LinesPerPage-1, func(from, to int) {
		off := base + int64(from)*LineSize
		n := (to - from + 1) * LineSize
		m.nvm.WriteAt(f.data[from*LineSize:from*LineSize+n], off)
		m.nvm.Flush(off, n)
	})
	return true
}

// admitToNVM copies a fully resident frame into a fresh NVM slot (§4.2,
// transition 4). The slot starts dirty with respect to SSD when the frame
// carried modifications.
func (m *Manager) admitToNVM(f *Frame, slot int64) {
	if !f.fullyResident {
		panic(fmt.Sprintf("core: admitting partially resident page %d", f.pid))
	}
	var t0 int64
	if m.rec != nil {
		t0 = m.clk.Ns()
	}
	base := m.slotDataOff(slot)
	m.nvm.WriteAt(f.data, base)
	m.nvm.Flush(base, PageSize)
	m.writeSlotHeader(slot, f.pid, f.anyDirty)
	m.nvmDir[slot] = nvmSlotMeta{pid: f.pid, referenced: true, dirtyWrtSSD: f.anyDirty}
	if m.rec != nil {
		m.rec.Latency(obs.OpNVMAdmit, m.clk.Ns()-t0)
		m.trace(f.pid, f.idx, obs.EvAdmit, obs.TierNVM, uint32(slot))
	}
}

// allocNVMSlot returns a free NVM page slot, evicting one (§4.2,
// transition 6) if necessary.
func (m *Manager) allocNVMSlot() (int64, error) {
	if slot, ok := m.freeNVMSlot(); ok {
		return slot, nil
	}
	return m.evictNVMSlot()
}

// freeNVMSlot returns an NVM page slot only if one is free, never
// evicting.
func (m *Manager) freeNVMSlot() (int64, bool) {
	if n := len(m.freeSlots); n > 0 {
		slot := m.freeSlots[n-1]
		m.freeSlots = m.freeSlots[:n-1]
		return slot, true
	}
	if m.nvmNextSlot < m.nvmSlots {
		slot := m.nvmNextSlot
		m.nvmNextSlot++
		return slot, true
	}
	return 0, false
}

// evictNVMSlot runs the NVM clock and evicts one slot, writing its page to
// SSD when the NVM copy is newer.
func (m *Manager) evictNVMSlot() (int64, error) {
	n := m.nvmSlots
	for scanned := int64(0); scanned < 2*n+1; scanned++ {
		slot := m.nvmHand
		m.nvmHand++
		if m.nvmHand >= n {
			m.nvmHand = 0
		}
		e := &m.nvmDir[slot]
		if e.pid == 0 {
			continue
		}
		if loc, ok := m.table[e.pid]; ok && loc.inDRAM() {
			// The page is cached in DRAM and this slot is its backing;
			// evicting it would orphan the DRAM frame.
			continue
		}
		if e.referenced {
			e.referenced = false
			continue
		}
		var t0 int64
		if m.rec != nil {
			t0 = m.clk.Ns()
		}
		if e.dirtyWrtSSD {
			m.nvm.ReadAt(m.scratch, m.slotDataOff(slot))
			m.ssd.WritePage(int64(e.pid-1), m.scratch)
			m.trace(e.pid, -1, obs.EvWriteback, obs.TierSSD, uint32(slot))
		}
		pid := e.pid
		delete(m.table, e.pid)
		m.clearSlotHeader(slot)
		*e = nvmSlotMeta{}
		m.stats.NVMEvictions++
		if m.rec != nil {
			m.rec.Latency(obs.OpNVMEvict, m.clk.Ns()-t0)
			m.trace(pid, -1, obs.EvEvict, obs.TierNVM, uint32(slot))
		}
		return slot, nil
	}
	return 0, ErrNVMFull
}

// promoteMini promotes a mini page to a full page (§3.2): the resident
// lines, masks, backing, and swizzling state move to a freshly allocated
// full frame; the mini page becomes a forwarding wrapper until unfixed.
func (m *Manager) promoteMini(f *Frame) {
	var t0 int64
	if m.rec != nil {
		t0 = m.clk.Ns()
	}
	full, err := m.newFrame(kindFull, f.pid)
	if err != nil {
		// Promotion happens mid-access where no error can be returned;
		// failing here means DRAM cannot hold even the pages pinned by a
		// single operation, which is a configuration error.
		panic(fmt.Sprintf("core: mini-page promotion of page %d failed: %v", f.pid, err))
	}
	full.nvmSlot = f.nvmSlot
	for i := 0; i < int(f.count); i++ {
		line := int(f.slots[i])
		copy(full.data[line*LineSize:(line+1)*LineSize], f.data[i*LineSize:(i+1)*LineSize])
		full.resident.set(line)
		if f.miniDirty&(1<<uint(i)) != 0 {
			full.dirty.set(line)
			full.anyDirty = true
		}
	}
	// Transfer swizzling state: the reference that pointed at the mini
	// frame now points at the full frame.
	full.parent, full.parentOff, full.rootHolder = f.parent, f.parentOff, f.rootHolder
	if full.parent != nil {
		putRef(full.parent.data, int(full.parentOff), swizzledRef(full.idx))
	} else if full.rootHolder != nil && full.rootHolder.Swizzled() {
		*full.rootHolder = swizzledRef(full.idx)
	}
	f.parent, f.rootHolder = nil, nil
	full.pins = f.pins
	full.referenced = true
	m.table[f.pid] = dramLoc(full.idx)
	f.promoted = full
	m.stats.MiniPromotions++
	if m.rec != nil {
		m.rec.Latency(obs.OpMiniPromote, m.clk.Ns()-t0)
		m.trace(f.pid, full.idx, obs.EvPromote, obs.TierDRAM, uint32(f.count))
	}
}

// Slot header helpers. The header occupies the first cache line of each
// NVM page slot and is what the restart scan of §4.4 reads.

func (m *Manager) writeSlotHeader(slot int64, pid PageID, dirty bool) {
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:], slotMagic)
	flags := uint32(0)
	if dirty {
		flags |= slotFlagDirty
	}
	binary.LittleEndian.PutUint32(h[4:], flags)
	binary.LittleEndian.PutUint64(h[8:], uint64(pid))
	m.nvm.Persist(h[:], m.slotHeaderOff(slot))
}

func (m *Manager) clearSlotHeader(slot int64) {
	var h [16]byte
	m.nvm.Persist(h[:], m.slotHeaderOff(slot))
}

func (m *Manager) readSlotHeader(slot int64) (pid PageID, dirty bool, ok bool) {
	var h [16]byte
	m.nvm.ReadAt(h[:], m.slotHeaderOff(slot))
	if binary.LittleEndian.Uint32(h[0:]) != slotMagic {
		return 0, false, false
	}
	flags := binary.LittleEndian.Uint32(h[4:])
	pid = PageID(binary.LittleEndian.Uint64(h[8:]))
	return pid, flags&slotFlagDirty != 0, pid != 0
}

// admissionSet is the bounded set of §4.2 that identifies warm pages: a
// page is admitted to NVM only if it was recently denied, i.e. if it keeps
// coming back.
type admissionSet struct {
	cap  int
	m    map[PageID]int
	ring []PageID
	head int
}

func (s *admissionSet) init(capacity int) {
	s.cap = capacity
	if capacity > 0 {
		s.m = make(map[PageID]int, capacity)
		s.ring = make([]PageID, 0, capacity)
	}
}

// checkAndUpdate reports whether pid should be admitted: true if pid was
// in the set (and removes it), false otherwise (and remembers pid). A
// disabled set (capacity < 0 at configuration) admits everything.
func (s *admissionSet) checkAndUpdate(pid PageID) bool {
	if s.cap <= 0 {
		return true
	}
	if _, ok := s.m[pid]; ok {
		delete(s.m, pid)
		return true
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, pid)
		s.m[pid] = 1
		return false
	}
	old := s.ring[s.head]
	if _, ok := s.m[old]; ok {
		delete(s.m, old)
	}
	s.ring[s.head] = pid
	s.m[pid] = 1
	s.head++
	if s.head == s.cap {
		s.head = 0
	}
	return false
}

func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

const poisonByte = 0xAB

func poison(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}

// verifyCleanLines implements the §A.6 debugging check on eviction: every
// resident cache line that is not marked dirty must match its NVM backing.
// A mismatch means some code modified page memory without marking it dirty.
func (m *Manager) verifyCleanLines(f *Frame) {
	if f.nvmSlot < 0 {
		return
	}
	base := m.slotDataOff(f.nvmSlot)
	var line [LineSize]byte
	check := func(physLine int, data []byte) {
		m.nvm.ReadAt(line[:], base+int64(physLine)*LineSize)
		for i := range line {
			if line[i] != data[i] {
				panic(fmt.Sprintf("core: page %d line %d modified without dirty mark", f.pid, physLine))
			}
		}
	}
	if f.kind == kindMini {
		for i := 0; i < int(f.count); i++ {
			if f.miniDirty&(1<<uint(i)) == 0 {
				check(int(f.slots[i]), f.data[i*LineSize:(i+1)*LineSize])
			}
		}
		return
	}
	for l := 0; l < LinesPerPage; l++ {
		if f.resident.get(l) && !f.dirty.get(l) {
			check(l, f.data[l*LineSize:(l+1)*LineSize])
		}
	}
}
