package core

import (
	"encoding/binary"
	"fmt"
)

// This file implements the paper's §4.4: the page mapping table is volatile
// and is reconstructed after a restart by scanning the page headers on NVM,
// which is feasible because NVM — unlike flash — supports fast random
// reads. A small superblock persists the page-allocation watermark and a
// user metadata blob (engines store their catalog there, e.g. tree roots).

func (m *Manager) superOff() int64 { return m.cfg.WALBytes }

// persistSuper writes and flushes the full superblock: magic, nextPID, and
// the user metadata.
func (m *Manager) persistSuper() {
	var h [16]byte
	binary.LittleEndian.PutUint64(h[0:], superMagic)
	binary.LittleEndian.PutUint64(h[8:], uint64(m.nextPID))
	m.nvm.Persist(h[:], m.superOff())
}

// persistNextPID flushes only the allocation watermark, called on every
// page allocation so that a crash never forgets allocated pages.
func (m *Manager) persistNextPID() {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(m.nextPID))
	m.nvm.Persist(b[:], m.superOff()+8)
}

// SetUserMeta durably stores up to 1 KB of engine metadata (for example a
// tree catalog) in the superblock.
func (m *Manager) SetUserMeta(b []byte) error {
	if len(b) > userMetaMax {
		return fmt.Errorf("core: user metadata of %d bytes exceeds %d", len(b), userMetaMax)
	}
	buf := make([]byte, 2+userMetaMax)
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(b)))
	copy(buf[2:], b)
	m.nvm.Persist(buf, m.superOff()+64)
	return nil
}

// UserMeta returns the metadata stored by SetUserMeta (empty if none).
func (m *Manager) UserMeta() []byte {
	buf := make([]byte, 2+userMetaMax)
	m.nvm.ReadAt(buf, m.superOff()+64)
	n := binary.LittleEndian.Uint16(buf[0:])
	if int(n) > userMetaMax {
		return nil
	}
	return buf[2 : 2+n]
}

func (m *Manager) readSuper() error {
	var h [16]byte
	m.nvm.ReadAt(h[:], m.superOff())
	if binary.LittleEndian.Uint64(h[0:]) != superMagic {
		return fmt.Errorf("core: superblock magic mismatch")
	}
	m.nextPID = PageID(binary.LittleEndian.Uint64(h[8:]))
	if m.nextPID == 0 {
		m.nextPID = 1
	}
	return nil
}

// CleanShutdown writes every dirty page back to its persistent home and
// releases all DRAM frames. No page may be pinned. After a clean shutdown
// the three-tier NVM cache still holds its pages — the warm-cache property
// measured in Figure 17.
func (m *Manager) CleanShutdown() error {
	for _, f := range m.frames {
		if f != nil && f.pins > 0 {
			return fmt.Errorf("core: clean shutdown with page %d pinned", f.pid)
		}
	}
	for {
		progress := false
		remaining := false
		for _, f := range m.frames {
			if f == nil {
				continue
			}
			if f.swizzledChildren > 0 {
				remaining = true
				continue
			}
			m.evictFrame(f)
			progress = true
		}
		if !remaining {
			break
		}
		if !progress {
			return fmt.Errorf("core: clean shutdown stuck on swizzled pages")
		}
	}
	m.persistSuper()
	return nil
}

// CleanRestart simulates stopping and restarting the system cleanly:
// dirty pages are written back, all volatile state (DRAM frames, mapping
// table, CPU caches, admission set) is dropped, and the mapping table is
// rebuilt from the NVM page headers. The time for the rebuild scan is
// charged to the simulated clock, reproducing the ~200 ms table
// reconstruction the paper reports.
func (m *Manager) CleanRestart() error {
	if err := m.CleanShutdown(); err != nil {
		return err
	}
	return m.reopen()
}

// CrashRestart simulates a power failure and restart: DRAM content is lost
// without write-back, unflushed NVM lines revert (in strict-persistence
// mode), and the mapping table is rebuilt from NVM. WAL-based redo/undo is
// the responsibility of the engine layered above.
func (m *Manager) CrashRestart() error {
	for _, f := range m.frames {
		if f == nil {
			continue
		}
		f.pins = 0
		f.swizzledChildren = 0
		f.parent, f.rootHolder, f.promoted = nil, nil, nil
		m.dropFrame(f)
	}
	m.nvm.Crash()
	return m.reopen()
}

// reopen resets all volatile state and rebuilds the mapping table.
func (m *Manager) reopen() error {
	// Invalidate lock-free readers and drop version state before any page
	// content can be rewritten outside the version protocol.
	m.vers.Reset()
	m.table = make(map[PageID]location)
	m.frames = m.frames[:0]
	m.freeFrames = m.freeFrames[:0]
	m.clockHand = 0
	m.dramUsed = 0
	m.freePIDs = nil
	m.nvm.DropCPUCache()
	if m.cfg.Topology == ThreeTier {
		m.admission.init(m.admission.cap)
		m.admission.head = 0
	}
	if err := m.readSuper(); err != nil {
		return err
	}
	// Undo any write-back a crash interrupted before trusting the slot
	// contents the rebuild scan will read.
	m.replayJournal()
	m.rebuildFromNVM()
	return nil
}

// rebuildFromNVM scans every NVM page-slot header and reconstructs the
// combined mapping table and slot directory (§4.4). Only the three-tier
// topology needs this: the basic NVM buffer manager and the direct engine
// locate pages by identity (slot = pid-1), and SSD-only topologies keep
// nothing on NVM.
func (m *Manager) rebuildFromNVM() {
	if m.cfg.Topology != ThreeTier {
		return
	}
	m.nvmDir = make([]nvmSlotMeta, m.nvmSlots)
	m.freeSlots = m.freeSlots[:0]
	m.nvmNextSlot = m.nvmSlots
	m.nvmHand = 0
	for slot := m.nvmSlots - 1; slot >= 0; slot-- {
		pid, dirty, ok := m.readSlotHeader(slot)
		if !ok {
			m.freeSlots = append(m.freeSlots, slot)
			continue
		}
		m.nvmDir[slot] = nvmSlotMeta{pid: pid, dirtyWrtSSD: dirty}
		m.table[pid] = nvmLoc(slot)
	}
}
