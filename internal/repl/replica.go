package repl

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nvmstore"
	"nvmstore/internal/fault"
	"nvmstore/internal/wal"
	"nvmstore/internal/wire"
)

// ReplicaOptions configures the replica side of replication.
type ReplicaOptions struct {
	// Primary is the primary server's address (host:port). Required.
	Primary string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// Backoff is the pause between reconnect attempts (default 100ms).
	Backoff time.Duration
	// Logf, when set, receives connection-lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Replica streams the primary's WAL into its own store. It dials
// Primary, subscribes with its durable per-shard applied LSNs, and
// applies pushed batches transactionally: records are buffered per
// primary transaction and applied atomically at the commit mark,
// together with the MetaTable position row — so a crash at any point
// recovers from the replica's own WAL and resumes shipping exactly
// once. The connection is retried forever (with backoff) until Close
// or Promote.
//
// All methods are safe for concurrent use.
type Replica struct {
	store *nvmstore.ShardedStore
	opts  ReplicaOptions

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when applied/epoch/promoted change
	applied   []uint64   // durable applied LSN per shard
	epoch     uint64
	promoted  bool
	closed    bool
	connected bool
	conn      net.Conn // current session's connection, nil between sessions

	wg sync.WaitGroup // the run loop

	statReconnects int64 // atomic
	statCrashes    int64 // atomic
	statBatches    int64 // atomic
	statSnapRows   int64 // atomic
}

// NewReplica loads the store's durable replication position and starts
// the connection loop. The store must be laid out like the primary's
// (same shard count; tables are created on demand from snapshots).
func NewReplica(store *nvmstore.ShardedStore, opts ReplicaOptions) (*Replica, error) {
	if opts.Primary == "" {
		return nil, fmt.Errorf("repl: replica needs a primary address")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	n := store.NumShards()
	r := &Replica{
		store:   store,
		opts:    opts,
		applied: make([]uint64, n),
		epoch:   1,
	}
	r.cond = sync.NewCond(&r.mu)
	for i := 0; i < n; i++ {
		i := i
		err := store.WithShard(i, func(st *nvmstore.Store) error {
			applied, epoch := readMeta(st)
			r.applied[i] = applied
			if epoch > r.epoch {
				r.epoch = epoch
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// logf forwards to the configured logger, if any.
func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// run dials and re-dials the primary until Close or Promote.
func (r *Replica) run() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		stop := r.closed || r.promoted
		r.mu.Unlock()
		if stop {
			return
		}
		if err := r.session(); err != nil {
			r.logf("repl: session with %s: %v", r.opts.Primary, err)
		}
		r.mu.Lock()
		stop = r.closed || r.promoted
		r.mu.Unlock()
		if stop {
			return
		}
		atomic.AddInt64(&r.statReconnects, 1)
		time.Sleep(r.opts.Backoff)
	}
}

// sessItem is one frame routed to a shard's apply worker.
type sessItem struct {
	batch *wire.ReplBatch
	snap  *wire.ReplSnap
}

// session runs one connection: subscribe, then route pushed frames to
// per-shard apply workers until the connection dies.
func (r *Replica) session() error {
	conn, err := net.DialTimeout("tcp", r.opts.Primary, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	r.mu.Lock()
	if r.closed || r.promoted {
		r.mu.Unlock()
		return nil
	}
	r.conn = conn
	r.connected = true
	from := append([]uint64(nil), r.applied...)
	epoch := r.epoch
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.conn = nil
		r.connected = false
		r.mu.Unlock()
	}()

	sub := wire.AppendReplSubscribe(nil, wire.ReplSubscribe{Epoch: epoch, From: from})
	if _, err := conn.Write(wire.AppendRequest(nil, wire.Request{Op: wire.OpReplSubscribe, ID: 1, Value: sub})); err != nil {
		return err
	}

	// One apply worker per shard keeps shards independent (a slow or
	// crashing shard does not stall the others) while preserving per-
	// shard frame order. A worker failure closes the connection; the
	// worker then drains its channel without applying.
	n := r.store.NumShards()
	var errMu sync.Mutex
	var workerErr error
	fail := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if workerErr == nil {
			workerErr = err
		}
		errMu.Unlock()
		conn.Close()
	}
	var wmu sync.Mutex // serializes ACK writes on conn
	workers := make([]chan sessItem, n)
	var wwg sync.WaitGroup
	for i := 0; i < n; i++ {
		workers[i] = make(chan sessItem, 64)
		wwg.Add(1)
		go r.applyWorker(i, conn, &wmu, workers[i], &wwg, fail)
	}

	var readErr error
	for readErr == nil {
		// A fresh buffer per frame: decoded records alias it and are
		// handed off to a worker, which may hold them across items
		// while a transaction is open.
		payload, _, err := wire.ReadFrame(conn, nil)
		if err != nil {
			readErr = err
			break
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			readErr = err
			break
		}
		switch resp.Code {
		case wire.RespOK:
			// Subscription accepted.
		case wire.RespErr:
			readErr = fmt.Errorf("repl: primary rejected feed: %s", resp.Err)
		case wire.RespReplBatch:
			b, err := wire.DecodeReplBatch(resp.Value)
			if err != nil {
				readErr = err
			} else if int(b.Shard) >= n {
				readErr = fmt.Errorf("repl: batch for shard %d of %d", b.Shard, n)
			} else {
				workers[b.Shard] <- sessItem{batch: &b}
			}
		case wire.RespReplSnap:
			sn, err := wire.DecodeReplSnap(resp.Value)
			if err != nil {
				readErr = err
			} else if int(sn.Shard) >= n {
				readErr = fmt.Errorf("repl: snapshot for shard %d of %d", sn.Shard, n)
			} else {
				workers[sn.Shard] <- sessItem{snap: &sn}
			}
		default:
			readErr = fmt.Errorf("repl: unexpected %s frame on feed", wire.OpName(resp.Code))
		}
	}
	for i := range workers {
		close(workers[i])
	}
	wwg.Wait()
	errMu.Lock()
	we := workerErr
	errMu.Unlock()
	if we != nil {
		return we
	}
	return readErr
}

// applyWorker applies one shard's stream of batches and snapshot
// chunks. On any error it fails the session and drains the rest of the
// channel without applying.
func (r *Replica) applyWorker(shard int, conn net.Conn, wmu *sync.Mutex, ch <-chan sessItem, wwg *sync.WaitGroup, fail func(error)) {
	defer wwg.Done()
	st := workerState{}
	failed := false
	for it := range ch {
		if failed {
			continue
		}
		if err := r.applyItem(shard, it, &st, conn, wmu); err != nil {
			failed = true
			fail(err)
		}
	}
}

// workerState is one shard's cross-item apply state for a session: the
// records of the primary transaction currently open (a WAL flush — and
// so a shipped batch — can land mid-transaction) and the snapshot
// bootstrap progress.
type workerState struct {
	pending   []wire.ReplRec
	pendingTx uint64
	snapWiped bool
}

// applyItem applies one batch or snapshot chunk. A simulated crash
// (fault.Crash panic from the replica store's own injectors) is
// recovered here: the shard power-fails and restarts from its WAL, the
// durable position is reloaded from the meta row, and the session is
// failed so the reconnect resumes from exactly that position.
func (r *Replica) applyItem(shard int, it sessItem, ws *workerState, conn net.Conn, wmu *sync.Mutex) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		c, ok := fault.AsCrash(p)
		if !ok {
			panic(p)
		}
		atomic.AddInt64(&r.statCrashes, 1)
		if _, rerr := r.store.CrashRestartShard(shard); rerr != nil {
			err = fmt.Errorf("repl: shard %d: restart after crash: %w", shard, rerr)
			return
		}
		var applied, epoch uint64
		rerr := r.store.WithShard(shard, func(st *nvmstore.Store) error {
			applied, epoch = readMeta(st)
			return nil
		})
		if rerr != nil {
			err = rerr
			return
		}
		r.mu.Lock()
		r.applied[shard] = applied
		if epoch > r.epoch {
			r.epoch = epoch
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		err = fmt.Errorf("repl: shard %d: crash during apply (%v); recovered to LSN %d", shard, c, applied)
	}()
	switch {
	case it.batch != nil:
		return r.applyBatch(shard, it.batch, ws, conn, wmu)
	case it.snap != nil:
		return r.applySnap(shard, it.snap, ws, conn, wmu)
	}
	return nil
}

// adoptEpoch raises the replica's epoch to the primary's and returns
// the resulting epoch. A frame from an older epoch is stale: the
// session is on a superseded primary and must be dropped.
func (r *Replica) adoptEpoch(e uint64) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e > r.epoch {
		r.epoch = e
	} else if e < r.epoch {
		return 0, fmt.Errorf("repl: frame from stale epoch %d (replica at %d)", e, r.epoch)
	}
	return r.epoch, nil
}

// applyBatch replays one shipped batch: update records accumulate in
// the open transaction's buffer and are applied — atomically with the
// meta row — when its commit mark arrives. After the item, one WAL
// flush makes every applied transaction durable and the ACK reports
// the new position.
func (r *Replica) applyBatch(shard int, b *wire.ReplBatch, ws *workerState, conn net.Conn, wmu *sync.Mutex) error {
	epoch, err := r.adoptEpoch(b.Epoch)
	if err != nil {
		return err
	}
	r.mu.Lock()
	durable := r.applied[shard]
	r.mu.Unlock()
	var lastApplied uint64
	for i := range b.Recs {
		rec := &b.Recs[i]
		if rec.LSN <= durable {
			continue // resume overlap: already applied and durable
		}
		switch rec.Kind {
		case wal.RecUpdate:
			if rec.PID == MetaTable {
				continue
			}
			if ws.pendingTx != 0 && rec.Tx != ws.pendingTx {
				// Shards are single-threaded on the primary, so
				// transactions never interleave; a new tx id without a
				// mark means the stream is corrupt.
				return fmt.Errorf("repl: shard %d: tx %d interleaves open tx %d", shard, rec.Tx, ws.pendingTx)
			}
			ws.pendingTx = rec.Tx
			ws.pending = append(ws.pending, *rec)
		case wal.RecAbort:
			if rec.Tx == ws.pendingTx {
				ws.pending, ws.pendingTx = nil, 0
			}
		case wal.RecCommit:
			recs := ws.pending
			ws.pending, ws.pendingTx = nil, 0
			if err := r.applyTx(shard, recs, rec.LSN, epoch); err != nil {
				return err
			}
			lastApplied = rec.LSN
		default:
			return fmt.Errorf("repl: shard %d: unknown record kind %d", shard, rec.Kind)
		}
	}
	atomic.AddInt64(&r.statBatches, 1)
	if lastApplied == 0 {
		return nil // no commit in this item; nothing new to ack
	}
	return r.finishApply(shard, lastApplied, epoch, conn, wmu)
}

// applyTx applies one primary transaction as one local transaction,
// with the position row updated in the same commit — the apply is
// exactly-once across crashes because the data and the position are
// equally durable.
func (r *Replica) applyTx(shard int, recs []wire.ReplRec, commitLSN, epoch uint64) error {
	return r.store.WithShard(shard, func(st *nvmstore.Store) error {
		return st.UpdateNoFlush(func() error {
			for i := range recs {
				rec := &recs[i]
				wr := nvmstore.WALRecord{
					Kind: rec.Kind,
					LSN:  wal.LSN(rec.LSN),
					Tx:   wal.TxID(rec.Tx),
					PID:  rec.PID,
					Off:  int(rec.Off),
					// Images alias the frame buffer; ReplayRecord copies
					// what it keeps.
					Before: rec.Before,
					After:  rec.After,
				}
				if err := st.ReplayRecord(wr); err != nil {
					return err
				}
			}
			return writeMeta(st, commitLSN, epoch)
		})
	})
}

// finishApply flushes the shard's WAL (making every transaction the
// item applied durable), publishes the new applied LSN, and sends the
// ACK. ACK after flush is what lets the primary's retention ring
// eviction and semi-synchronous waits trust it.
func (r *Replica) finishApply(shard int, applied, epoch uint64, conn net.Conn, wmu *sync.Mutex) error {
	err := r.store.WithShard(shard, func(st *nvmstore.Store) error {
		_, err := st.FlushWAL()
		return err
	})
	if err != nil {
		return err
	}
	r.mu.Lock()
	if applied > r.applied[shard] {
		r.applied[shard] = applied
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	ack := wire.AppendReplAck(nil, wire.ReplAck{Shard: uint32(shard), Epoch: epoch, Applied: applied})
	frame := wire.AppendRequest(nil, wire.Request{Op: wire.OpReplAck, ID: 0, Value: ack})
	wmu.Lock()
	_, err = conn.Write(frame)
	wmu.Unlock()
	return err
}

// applySnap applies one bootstrap snapshot chunk. The first chunk
// resets the shard: the position row is zeroed durably first, so a
// crash mid-snapshot resubscribes from zero and restarts the bootstrap
// instead of resuming the log onto a half-loaded store; then every
// replicated table is emptied. Rows stream in, and the Final chunk
// commits the position at SnapLSN.
func (r *Replica) applySnap(shard int, sn *wire.ReplSnap, ws *workerState, conn net.Conn, wmu *sync.Mutex) error {
	epoch, err := r.adoptEpoch(sn.Epoch)
	if err != nil {
		return err
	}
	if !ws.snapWiped {
		if err := r.wipeShard(shard, epoch); err != nil {
			return err
		}
		ws.snapWiped = true
		ws.pending, ws.pendingTx = nil, 0
		r.mu.Lock()
		r.applied[shard] = 0
		r.mu.Unlock()
	}
	err = r.store.WithShard(shard, func(st *nvmstore.Store) error {
		return st.UpdateNoFlush(func() error {
			for i := range sn.Rows {
				row := &sn.Rows[i]
				tab := st.Table(row.Table)
				if tab == nil {
					var cerr error
					tab, cerr = st.CreateTable(row.Table, len(row.Value))
					if cerr != nil {
						return cerr
					}
				}
				if err := tab.Insert(row.Key, row.Value); err != nil {
					return err
				}
			}
			if sn.Final {
				return writeMeta(st, sn.SnapLSN, epoch)
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	atomic.AddInt64(&r.statSnapRows, int64(len(sn.Rows)))
	if !sn.Final {
		// Flush between chunks: a large bootstrap logs every insert
		// (plus page images from splits) into this store's own WAL, and
		// only a flush outside a transaction runs the engine's automatic
		// checkpoint — without it the log fills long before the Final
		// chunk's flush.
		return r.store.WithShard(shard, func(st *nvmstore.Store) error {
			_, err := st.FlushWAL()
			return err
		})
	}
	ws.snapWiped = false
	return r.finishApply(shard, sn.SnapLSN, epoch, conn, wmu)
}

// wipeShard durably zeroes the shard's position row and empties every
// table except MetaTable, in bounded transactions.
func (r *Replica) wipeShard(shard int, epoch uint64) error {
	return r.store.WithShard(shard, func(st *nvmstore.Store) error {
		if err := st.UpdateNoFlush(func() error { return writeMeta(st, 0, epoch) }); err != nil {
			return err
		}
		if _, err := st.FlushWAL(); err != nil {
			return err
		}
		for _, id := range st.TableIDs() {
			if id == MetaTable {
				continue
			}
			tab := st.Table(id)
			var keys []uint64
			err := tab.Scan(0, 1<<62, 0, 0, func(key uint64, _ []byte) bool {
				keys = append(keys, key)
				return true
			})
			if err != nil {
				return err
			}
			for len(keys) > 0 {
				chunk := keys
				if len(chunk) > 512 {
					chunk = chunk[:512]
				}
				keys = keys[len(chunk):]
				err := st.UpdateNoFlush(func() error {
					for _, k := range chunk {
						if _, err := tab.Delete(k); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				// Keep the WAL bounded while emptying a large shard —
				// the flush runs the automatic checkpoint when needed.
				if _, err := st.FlushWAL(); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Applied returns the per-shard durable applied LSN vector.
func (r *Replica) Applied() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.applied...)
}

// Epoch returns the replica's current epoch.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Promoted reports whether Promote has been called.
func (r *Replica) Promoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// Connected reports whether a feed session is currently established.
func (r *Replica) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connected
}

// WaitLSN blocks until the replica's applied vector covers lsns — the
// staleness-bounded read barrier. Shards with a zero entry are not
// waited on. It returns immediately once the replica is promoted (it
// is then the authority), and an error on timeout or Close.
func (r *Replica) WaitLSN(lsns []uint64, timeout time.Duration) error {
	r.mu.Lock()
	if len(lsns) > len(r.applied) {
		n := len(r.applied)
		r.mu.Unlock()
		return fmt.Errorf("repl: wait vector has %d shards, store has %d", len(lsns), n)
	}
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(timeout)
	defer r.mu.Unlock()
	for {
		covered := true
		for i, want := range lsns {
			if r.applied[i] < want {
				covered = false
				break
			}
		}
		if covered || r.promoted {
			return nil
		}
		if r.closed {
			return fmt.Errorf("repl: replica closed")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: WaitLSN timeout after %v", timeout)
		}
		r.cond.Wait()
	}
}

// Promote makes this replica the primary at the given epoch: the feed
// stops, every shard's WAL is flushed, and the epoch is persisted in
// the position rows. The caller (the serving layer) then starts
// accepting writes at the new epoch and fences the old primary. The
// returned vector is the promoted store's applied LSNs — the acked
// prefix it serves from. epoch must exceed the replica's current
// epoch.
func (r *Replica) Promote(epoch uint64) ([]uint64, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("repl: replica closed")
	}
	if r.promoted {
		if epoch != r.epoch {
			cur := r.epoch
			r.mu.Unlock()
			return nil, fmt.Errorf("repl: already promoted at epoch %d", cur)
		}
		applied := append([]uint64(nil), r.applied...)
		r.mu.Unlock()
		return applied, nil
	}
	if epoch <= r.epoch {
		cur := r.epoch
		r.mu.Unlock()
		return nil, fmt.Errorf("repl: promote epoch %d does not exceed current epoch %d", epoch, cur)
	}
	r.promoted = true
	r.epoch = epoch
	conn := r.conn
	r.cond.Broadcast()
	r.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait() // session drained; apply workers done

	applied := r.Applied()
	for i := 0; i < r.store.NumShards(); i++ {
		i := i
		err := r.store.WithShard(i, func(st *nvmstore.Store) error {
			if err := st.UpdateNoFlush(func() error { return writeMeta(st, applied[i], epoch) }); err != nil {
				return err
			}
			_, err := st.FlushWAL()
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return applied, nil
}

// Close stops the replica: the feed connection drops and the run loop
// exits. The store is left at its last durable applied position.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	conn := r.conn
	r.cond.Broadcast()
	r.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
}

// ReplicaStats is the replica-side summary exposed through the
// server's STATS document.
type ReplicaStats struct {
	// Primary is the configured primary address.
	Primary string `json:"primary"`
	// Connected reports whether the feed session is up.
	Connected bool `json:"connected"`
	// Promoted reports whether this replica has been promoted.
	Promoted bool `json:"promoted,omitempty"`
	// Epoch is the replica's current epoch.
	Epoch uint64 `json:"epoch"`
	// AppliedLSN is the durable applied LSN per shard.
	AppliedLSN []uint64 `json:"applied_lsn"`
	// Reconnects counts feed sessions ended and retried.
	Reconnects int64 `json:"reconnects"`
	// ApplyCrashes counts simulated crashes recovered during apply.
	ApplyCrashes int64 `json:"apply_crashes"`
	// Batches counts batch items applied.
	Batches int64 `json:"batches"`
	// SnapRows counts snapshot rows loaded.
	SnapRows int64 `json:"snap_rows"`
}

// Stats returns a point-in-time summary.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	s := ReplicaStats{
		Primary:    r.opts.Primary,
		Connected:  r.connected,
		Promoted:   r.promoted,
		Epoch:      r.epoch,
		AppliedLSN: append([]uint64(nil), r.applied...),
	}
	r.mu.Unlock()
	s.Reconnects = atomic.LoadInt64(&r.statReconnects)
	s.ApplyCrashes = atomic.LoadInt64(&r.statCrashes)
	s.Batches = atomic.LoadInt64(&r.statBatches)
	s.SnapRows = atomic.LoadInt64(&r.statSnapRows)
	return s
}
