package repl_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/fault"
	"nvmstore/internal/repl"
	"nvmstore/internal/server"
	"nvmstore/internal/wire"
)

const (
	testTable   = 1
	testRowSize = 64
)

// newStore opens a small sharded three-tier store with the test table.
func newStore(t *testing.T, shards int) *nvmstore.ShardedStore {
	t.Helper()
	store, err := nvmstore.OpenSharded(shards, nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable(testTable, testRowSize); err != nil {
		t.Fatal(err)
	}
	return store
}

// serve starts a server over store and returns its address.
func serve(t *testing.T, store *nvmstore.ShardedStore, sopts server.Options) string {
	t.Helper()
	srv := server.New(store, sopts)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; ; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		if i > 500 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return addr
}

// startReplica connects a replica store to the primary and serves it.
func startReplica(t *testing.T, store *nvmstore.ShardedStore, primary string) (*repl.Replica, string) {
	t.Helper()
	rp, err := repl.NewReplica(store, repl.ReplicaOptions{Primary: primary, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rp.Close)
	addr := serve(t, store, server.Options{Replica: rp, Repl: repl.NewSource(store, repl.SourceOptions{})})
	return rp, addr
}

// dial opens a client pool on addr.
func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// rowFor builds a deterministic full-size row for key.
func rowFor(key uint64) []byte {
	row := make([]byte, testRowSize)
	binary.BigEndian.PutUint64(row, key)
	for i := 8; i < len(row); i++ {
		row[i] = byte(key + uint64(i))
	}
	return row
}

// dump reads every row of the test table.
func dump(t *testing.T, store *nvmstore.ShardedStore) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte)
	tab := store.Table(testTable)
	err := tab.Scan(0, 1<<30, 0, testRowSize, func(key uint64, row []byte) bool {
		out[key] = append([]byte(nil), row...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// syncReplica blocks until the replica covers the primary's durable
// vector (read-your-writes through the wire calls clients use).
func syncReplica(t *testing.T, primaryCl, replicaCl *client.Client) {
	t.Helper()
	lsns, err := primaryCl.ReplLSNs()
	if err != nil {
		t.Fatal(err)
	}
	if lsns.Role != wire.RolePrimary {
		t.Fatalf("primary reports role %d", lsns.Role)
	}
	if err := replicaCl.WaitLSN(lsns.LSNs, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestLiveReplication(t *testing.T) {
	primary := newStore(t, 2)
	src := repl.NewSource(primary, repl.SourceOptions{})
	paddr := serve(t, primary, server.Options{Repl: src})
	replica := newStore(t, 2)
	rp, raddr := startReplica(t, replica, paddr)

	pcl, rcl := dial(t, paddr), dial(t, raddr)
	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, pcl, rcl)

	for k := uint64(0); k < n; k++ {
		row, found, err := rcl.Get(testTable, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d missing on replica", k)
		}
		if !bytes.Equal(row, rowFor(k)) {
			t.Fatalf("key %d differs on replica", k)
		}
	}

	// Deletes replicate too.
	if _, err := pcl.Delete(testTable, 0); err != nil {
		t.Fatal(err)
	}
	syncReplica(t, pcl, rcl)
	if _, found, err := rcl.Get(testTable, 0); err != nil || found {
		t.Fatalf("deleted key still on replica (found=%v err=%v)", found, err)
	}

	// An unpromoted replica rejects writes with the READONLY class.
	err := rcl.Put(testTable, 999, rowFor(999))
	if !client.IsReadOnly(err) {
		t.Fatalf("replica write: got %v, want READONLY rejection", err)
	}
	if got := rp.Stats(); !got.Connected || got.Batches == 0 {
		t.Fatalf("replica stats: %+v", got)
	}
}

func TestSnapshotBootstrap(t *testing.T) {
	primary := newStore(t, 2)
	src := repl.NewSource(primary, repl.SourceOptions{SnapRows: 64})
	paddr := serve(t, primary, server.Options{Repl: src})

	pcl := dial(t, paddr)
	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}

	// The replica attaches after the fact: nothing in the ring covers
	// LSN 0, so it must bootstrap from a snapshot, then go live.
	replica := newStore(t, 2)
	_, raddr := startReplica(t, replica, paddr)
	rcl := dial(t, raddr)
	syncReplica(t, pcl, rcl)
	if src.Stats().SnapshotChunks == 0 {
		t.Fatal("no snapshot chunks streamed")
	}

	// And live writes keep flowing after the bootstrap.
	for k := uint64(n); k < n+50; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, pcl, rcl)
	want, got := dump(t, primary), dump(t, replica)
	if len(got) != len(want) {
		t.Fatalf("replica has %d rows, primary %d", len(got), len(want))
	}
	for k, row := range want {
		if !bytes.Equal(got[k], row) {
			t.Fatalf("key %d differs after bootstrap", k)
		}
	}
}

func TestResumeAfterReconnect(t *testing.T) {
	primary := newStore(t, 2)
	src := repl.NewSource(primary, repl.SourceOptions{})
	paddr := serve(t, primary, server.Options{Repl: src})
	replica := newStore(t, 2)

	rp, err := repl.NewReplica(replica, repl.ReplicaOptions{Primary: paddr, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pcl := dial(t, paddr)
	for k := uint64(0); k < 100; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	lsns, err := pcl.ReplLSNs()
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.WaitLSN(lsns.LSNs, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	rp.Close() // replica goes away mid-stream

	for k := uint64(100); k < 200; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}

	// A new replica over the same store resumes from its durable meta
	// row — never re-applying what it already has, never skipping.
	rp2, err := repl.NewReplica(replica, repl.ReplicaOptions{Primary: paddr, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rp2.Close()
	if lsns, err = pcl.ReplLSNs(); err != nil {
		t.Fatal(err)
	}
	if err := rp2.WaitLSN(lsns.LSNs, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	want, got := dump(t, primary), dump(t, replica)
	if len(got) != len(want) {
		t.Fatalf("replica has %d rows, primary %d", len(got), len(want))
	}
	for k, row := range want {
		if !bytes.Equal(got[k], row) {
			t.Fatalf("key %d differs after resume", k)
		}
	}
}

func TestPromoteAndFence(t *testing.T) {
	primary := newStore(t, 2)
	// Semi-synchronous: an acked write is on the replica before the ack.
	src := repl.NewSource(primary, repl.SourceOptions{SyncReplicas: 1, SyncTimeout: 5 * time.Second})
	paddr := serve(t, primary, server.Options{Repl: src})
	replica := newStore(t, 2)
	rp, raddr := startReplica(t, replica, paddr)

	pcl, rcl := dial(t, paddr), dial(t, raddr)
	// Wait until the feed is live on every shard so semi-sync is armed.
	syncReplica(t, pcl, rcl)
	const n = 100
	for k := uint64(0); k < n; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}

	// Promote the replica to epoch 2, then fence the old primary.
	applied, err := rcl.Promote(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Fatalf("promote returned %d shards", len(applied))
	}
	if !rp.Promoted() || rp.Epoch() != 2 {
		t.Fatalf("replica not promoted: epoch %d", rp.Epoch())
	}
	if _, err := pcl.Promote(2); err != nil {
		t.Fatal(err)
	}

	// The fenced primary rejects writes with the FENCED class...
	err = pcl.Put(testTable, 7777, rowFor(7777))
	if !client.IsFenced(err) {
		t.Fatalf("fenced primary write: got %v, want FENCED rejection", err)
	}
	// ...rejects the read barrier the same way (answering OK would bless
	// unboundedly stale reads against a dead lineage)...
	err = pcl.WaitLSN([]uint64{0, 0}, time.Second)
	if !client.IsFenced(err) {
		t.Fatalf("fenced primary WAIT: got %v, want FENCED rejection", err)
	}
	// ...and reports the fenced state, carrying the superseding epoch, so
	// read clients re-resolve instead of trusting its vector.
	flsns, err := pcl.ReplLSNs()
	if err != nil {
		t.Fatal(err)
	}
	if flsns.Role != wire.RoleFenced || flsns.Epoch != 2 {
		t.Fatalf("fenced primary reports role %d epoch %d, want fenced at 2", flsns.Role, flsns.Epoch)
	}
	// The client retry lands on the new primary.
	if err := rcl.Put(testTable, 7777, rowFor(7777)); err != nil {
		t.Fatal(err)
	}

	// Zero acked-write loss: every write the old primary acknowledged
	// under semi-sync is on the promoted store.
	got := dump(t, replica)
	for k := uint64(0); k < n; k++ {
		if !bytes.Equal(got[k], rowFor(k)) {
			t.Fatalf("acked key %d lost by failover", k)
		}
	}
	lsns, err := rcl.ReplLSNs()
	if err != nil {
		t.Fatal(err)
	}
	if lsns.Role != wire.RolePrimary || lsns.Epoch != 2 {
		t.Fatalf("promoted replica reports role %d epoch %d", lsns.Role, lsns.Epoch)
	}
}

func TestTruncationWatermark(t *testing.T) {
	store := newStore(t, 1)
	src := repl.NewSource(store, repl.SourceOptions{})
	f := src.NewFeed("test")
	if err := src.Attach(f, wire.ReplSubscribe{Epoch: 1, From: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	defer src.Detach(f)
	go func() {
		for range f.Items() {
		}
	}()
	tab := store.Table(testTable)
	for k := uint64(0); k < 50; k++ {
		if err := tab.Put(k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	// The feed never acks, yet the checkpoint truncates: the flush at the
	// start of the checkpoint handed everything durable to the ship tap,
	// and shipped records are the Source's to retain (retention ring and
	// feed queues), never the WAL's. Replica ack progress must not pin
	// the log — a primary with one lagging replica would otherwise fill
	// its WAL region and stop accepting writes.
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m := store.Metrics()
	if m.Log.TruncateSkips != 0 {
		t.Fatalf("unacked feed pinned the log: %+v", m.Log)
	}
	if m.Log.Truncates == 0 {
		t.Fatal("checkpoint never truncated with a live feed attached")
	}
}

func TestCrossEpochRepointForcesSnapshot(t *testing.T) {
	// A is primary at epoch 1 with replicas B and C.
	a := newStore(t, 2)
	srcA := repl.NewSource(a, repl.SourceOptions{})
	aaddr := serve(t, a, server.Options{Repl: srcA})

	b := newStore(t, 2)
	rpB, err := repl.NewReplica(b, repl.ReplicaOptions{Primary: aaddr, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rpB.Close)
	srcB := repl.NewSource(b, repl.SourceOptions{})
	baddr := serve(t, b, server.Options{Replica: rpB, Repl: srcB})

	c := newStore(t, 2)
	rpC, err := repl.NewReplica(c, repl.ReplicaOptions{Primary: aaddr, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	acl, bcl := dial(t, aaddr), dial(t, baddr)
	const n = 100
	for k := uint64(0); k < n; k++ {
		if err := acl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	lsns, err := acl.ReplLSNs()
	if err != nil {
		t.Fatal(err)
	}
	if err := rpB.WaitLSN(lsns.LSNs, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := rpC.WaitLSN(lsns.LSNs, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	rpC.Close() // C is down through the failover

	// B becomes primary at epoch 2, A is fenced, and the new lineage
	// diverges: every old key overwritten, fresh keys appended.
	if _, err := bcl.Promote(2); err != nil {
		t.Fatal(err)
	}
	if _, err := acl.Promote(2); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n+50; k++ {
		if err := bcl.Put(testTable, k, rowFor(k+1000)); err != nil {
			t.Fatal(err)
		}
	}

	// C comes back re-pointed at B. Its meta rows carry epoch 1 and
	// resume LSNs from A's sequence — positions B never produced — so
	// the subscribe must bootstrap from a snapshot of B's lineage, never
	// resume (or be rejected) on a cross-epoch LSN comparison.
	rpC2, err := repl.NewReplica(c, repl.ReplicaOptions{Primary: baddr, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rpC2.Close()
	if lsns, err = bcl.ReplLSNs(); err != nil {
		t.Fatal(err)
	}
	if lsns.Epoch != 2 {
		t.Fatalf("new primary reports epoch %d", lsns.Epoch)
	}
	if err := rpC2.WaitLSN(lsns.LSNs, 20*time.Second); err != nil {
		t.Fatalf("re-pointed replica never converged: %v (stats %+v)", err, rpC2.Stats())
	}
	if srcB.Stats().SnapshotChunks == 0 {
		t.Fatal("cross-epoch subscribe resumed by LSN instead of snapshotting")
	}
	want, got := dump(t, b), dump(t, c)
	if len(got) != len(want) {
		t.Fatalf("replica has %d rows, new primary %d", len(got), len(want))
	}
	for k, row := range want {
		if !bytes.Equal(got[k], row) {
			t.Fatalf("key %d differs after cross-epoch re-point", k)
		}
	}
}

func TestMetaTableReservedAtServer(t *testing.T) {
	store := newStore(t, 1)
	addr := serve(t, store, server.Options{Repl: repl.NewSource(store, repl.SourceOptions{})})
	cl := dial(t, addr)
	// Data ops on the reserved replication-metadata table are rejected:
	// rows there are excluded from the ship tap and from snapshots, so
	// accepting user data would let it silently diverge from replicas.
	if err := cl.Put(repl.MetaTable, 1, rowFor(1)); err == nil {
		t.Fatal("PUT to the reserved replication table accepted")
	}
	if _, _, err := cl.Get(repl.MetaTable, 1); err == nil {
		t.Fatal("GET on the reserved replication table accepted")
	}
	if _, err := cl.Delete(repl.MetaTable, 1); err == nil {
		t.Fatal("DELETE on the reserved replication table accepted")
	}
	if _, err := cl.Scan(repl.MetaTable, 0, 10); err == nil {
		t.Fatal("SCAN on the reserved replication table accepted")
	}
	// Ordinary tables are unaffected.
	if err := cl.Put(testTable, 1, rowFor(1)); err != nil {
		t.Fatal(err)
	}
}

func TestFeedOverflowDropsReplica(t *testing.T) {
	store := newStore(t, 1)
	src := repl.NewSource(store, repl.SourceOptions{FeedQueue: 4})
	f := src.NewFeed("slow")
	if err := src.Attach(f, wire.ReplSubscribe{Epoch: 1, From: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	tab := store.Table(testTable)
	for k := uint64(0); k < 50; k++ {
		if err := tab.Put(k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Nobody drains the feed: it must be dropped, not wedge writes.
	select {
	case _, ok := <-waitClosed(f):
		_ = ok
	case <-time.After(5 * time.Second):
		t.Fatal("overflowing feed never dropped")
	}
	if src.Stats().DroppedFeeds == 0 {
		t.Fatal("DroppedFeeds not counted")
	}
	// A fresh feed can still attach (bootstrapping by snapshot).
	f2 := src.NewFeed("fresh")
	if err := src.Attach(f2, wire.ReplSubscribe{Epoch: 1, From: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	src.Detach(f2)
}

// waitClosed drains f's items on a goroutine and closes the returned
// channel when the feed's channel closes.
func waitClosed(f *repl.Feed) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		for range f.Items() {
		}
		close(done)
	}()
	return done
}

func TestFenceKillsFeedsAndRejectsAttach(t *testing.T) {
	store := newStore(t, 1)
	src := repl.NewSource(store, repl.SourceOptions{})
	f := src.NewFeed("r1")
	if err := src.Attach(f, wire.ReplSubscribe{Epoch: 1, From: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	drained := waitClosed(f)
	if src.Fence(1) {
		t.Fatal("fence to the current epoch accepted")
	}
	if !src.Fence(2) {
		t.Fatal("fence to a newer epoch refused")
	}
	if !src.Fence(2) {
		t.Fatal("fence retry for the same epoch refused (must be idempotent)")
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("fencing did not drop the feed")
	}
	f2 := src.NewFeed("r2")
	if err := src.Attach(f2, wire.ReplSubscribe{Epoch: 1, From: []uint64{0}}); err == nil {
		t.Fatal("fenced primary accepted a new feed")
	}
}

func TestCrashMidApplyRecovers(t *testing.T) {
	primary := newStore(t, 1)
	src := repl.NewSource(primary, repl.SourceOptions{})
	paddr := serve(t, primary, server.Options{Repl: src})

	// The replica store power-fails its WAL flush once, mid-apply: the
	// worker must recover the shard from its own log and resume from
	// the meta row with nothing lost and nothing doubled.
	replica := newStore(t, 1)
	replica.InjectFaults(&fault.Plan{Seed: 42, Rules: []fault.Rule{
		{Kind: fault.WALFlushCrash, EveryN: 7, Limit: 1},
	}})
	rp, err := repl.NewReplica(replica, repl.ReplicaOptions{Primary: paddr, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()

	pcl := dial(t, paddr)
	const n = 150
	for k := uint64(0); k < n; k++ {
		if err := pcl.Put(testTable, k, rowFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	lsns, err := pcl.ReplLSNs()
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.WaitLSN(lsns.LSNs, 20*time.Second); err != nil {
		t.Fatalf("replica never caught up after crash: %v (stats %+v)", err, rp.Stats())
	}
	if rp.Stats().ApplyCrashes == 0 {
		t.Fatal("fault never fired; test exercised nothing")
	}
	want, got := dump(t, primary), dump(t, replica)
	for k, row := range want {
		if !bytes.Equal(got[k], row) {
			t.Fatalf("key %d differs after crash recovery", k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("replica has %d rows, primary %d", len(got), len(want))
	}
}

func TestSourceStatsShape(t *testing.T) {
	store := newStore(t, 2)
	src := repl.NewSource(store, repl.SourceOptions{})
	st := src.Stats()
	if st.Epoch != 1 || st.FencedBy != 0 || len(st.Replicas) != 0 {
		t.Fatalf("fresh source stats: %+v", st)
	}
	f := src.NewFeed("a")
	if err := src.Attach(f, wire.ReplSubscribe{Epoch: 1, From: []uint64{0, 0}}); err != nil {
		t.Fatal(err)
	}
	defer src.Detach(f)
	go func() {
		for range f.Items() {
		}
	}()
	st = src.Stats()
	if len(st.Replicas) != 1 || st.Replicas[0].Addr != "a" || len(st.Replicas[0].AckedLSN) != 2 {
		t.Fatalf("attached source stats: %+v", st)
	}
}

func TestSubscribeShardMismatch(t *testing.T) {
	store := newStore(t, 2)
	src := repl.NewSource(store, repl.SourceOptions{})
	f := src.NewFeed("bad")
	if err := src.Attach(f, wire.ReplSubscribe{Epoch: 1, From: []uint64{0}}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}

func init() {
	// Guard against the meta table id colliding with the test table.
	if repl.MetaTable == testTable {
		panic(fmt.Sprintf("test table id %d collides with MetaTable", testTable))
	}
}
