// Package repl implements primary→replica log-shipping replication on
// top of the storage engine's write-ahead log (internal/wal) and the
// binary wire protocol (internal/wire).
//
// # Design
//
// The WAL is the single source of durable truth: every committed change
// exists as logical records (insert/delete/update keyed by table id)
// with strictly monotonic LSNs, and a transaction is durable exactly
// when the flush covering its commit record lands. Replication taps the
// log at that durability point — wal.Log.SetShip delivers records only
// after a successful flush — so a replica can never observe state the
// primary could still lose, and the serving layer's ack⇒durable
// contract extends across the network.
//
// The Source (primary side) keeps a bounded per-shard retention ring of
// shipped records and fans them out to per-replica Feeds with bounded
// queues (flow control: a replica that cannot keep up is dropped and
// rejoins via snapshot rather than wedging the primary). Shipped
// records live on in the Source's own memory, so replica progress never
// pins the primary's log: the retention watermark the Source installs
// on each shard's log only protects the unshipped gap — records
// appended but not yet handed to the ship tap — and the checkpoint path
// flushes (shipping everything durable) right before truncating, so
// truncation under replication proceeds exactly as without it.
//
// The Replica dials the primary, subscribes with its per-shard durable
// applied LSNs, and replays pushed batches inside its own transactions:
// records are buffered per primary transaction and applied atomically
// at the commit mark, together with a metadata row recording the
// applied LSN and epoch. Apply transactions log into the replica's own
// WAL, so replica crashes recover locally and resume shipping exactly
// once from the metadata row. A replica whose resume LSN the ring no
// longer covers bootstraps from a consistent per-shard snapshot taken
// under the shard lock (flush → attach tap → scan: no gap, no overlap).
//
// # Epochs and promotion
//
// Every primary has an epoch, carried in SUBSCRIBE/BATCH/ACK frames. An
// explicit PROMOTE to epoch e makes a replica writable at e and — sent
// to the old primary — fences it: a fenced primary rejects writes and
// read-your-writes barriers with a classified error so clients fail
// over to the new primary. Batches and acks from superseded epochs are
// discarded. LSN sequences are per primary lineage and never compared
// across epochs: a subscriber presenting an older epoch followed a
// different primary, so its resume vector is ignored and it bootstraps
// from a snapshot of the new lineage.
//
// # Staleness-bounded reads
//
// Replicas serve reads at a bounded staleness: clients read their
// per-shard LSN vector from the primary (OpReplLSNs) and block on the
// replica (OpReplWait) until its applied vector covers it —
// read-your-writes across the fleet.
package repl

import (
	"encoding/binary"

	"nvmstore"
)

// MetaTable is the reserved table id holding a replica's replication
// position: one 16-byte row per shard at MetaKey — applied LSN and
// epoch, little-endian. It is written inside every apply transaction,
// so the position is exactly as durable as the applied data; snapshot
// streams and the ship tap both exclude it. Because of that exclusion,
// user data stored under this id would silently never replicate — the
// server rejects data operations on it, and nvmserver refuses to serve
// it as the -table id.
const MetaTable uint64 = 0x7265706c // "repl"

// MetaKey is the row key of the position row within MetaTable.
const MetaKey uint64 = 0

// metaRowSize is the payload size of the position row.
const metaRowSize = 16

// encodeMeta renders the position row.
func encodeMeta(applied, epoch uint64) []byte {
	row := make([]byte, metaRowSize)
	binary.LittleEndian.PutUint64(row, applied)
	binary.LittleEndian.PutUint64(row[8:], epoch)
	return row
}

// decodeMeta parses the position row.
func decodeMeta(row []byte) (applied, epoch uint64) {
	if len(row) < metaRowSize {
		return 0, 0
	}
	return binary.LittleEndian.Uint64(row), binary.LittleEndian.Uint64(row[8:])
}

// readMeta loads one shard's durable replication position, or zeros
// when the shard has none yet (fresh replica).
func readMeta(st *nvmstore.Store) (applied, epoch uint64) {
	tab := st.Table(MetaTable)
	if tab == nil {
		return 0, 0
	}
	buf := make([]byte, metaRowSize)
	ok, err := tab.Lookup(MetaKey, buf)
	if err != nil || !ok {
		return 0, 0
	}
	return decodeMeta(buf)
}

// writeMeta upserts one shard's replication position inside the running
// transaction.
func writeMeta(st *nvmstore.Store, applied, epoch uint64) error {
	tab := st.Table(MetaTable)
	if tab == nil {
		var err error
		tab, err = st.CreateTable(MetaTable, metaRowSize)
		if err != nil {
			return err
		}
	}
	row := encodeMeta(applied, epoch)
	if ok, err := tab.UpdateField(MetaKey, 0, row); err != nil {
		return err
	} else if ok {
		return nil
	}
	return tab.Insert(MetaKey, row)
}
