package repl

import (
	"fmt"
	"sync"
	"time"

	"nvmstore"
	"nvmstore/internal/obs"
	"nvmstore/internal/wire"
)

// SourceOptions tunes the primary side of replication. The zero value
// gives sensible defaults.
type SourceOptions struct {
	// RingBytes bounds the per-shard retention ring of shipped records
	// (default 4MB). A replica resuming from an LSN the ring no longer
	// covers bootstraps from a snapshot instead.
	RingBytes int
	// FeedQueue bounds the per-replica queue of pending items (default
	// 1024). A replica that falls this far behind is dropped — flow
	// control by disconnection, never by wedging the primary.
	FeedQueue int
	// MaxBatchBytes bounds the image bytes encoded into one pushed
	// BATCH frame (default 256KB; always well under wire.MaxFrame).
	MaxBatchBytes int
	// SnapRows bounds the rows per snapshot chunk (default 1024).
	SnapRows int
	// SyncReplicas, when positive, makes WaitAcked block commits until
	// this many replicas acknowledged the shard's last shipped LSN —
	// semi-synchronous replication: an acked write then survives the
	// loss of the primary. With fewer live replicas attached the wait
	// degrades to the live count (and to no wait with none attached).
	SyncReplicas int
	// SyncTimeout bounds a semi-synchronous wait before degrading to
	// asynchronous for that batch (default 2s).
	SyncTimeout time.Duration
}

// Source is the primary side of replication for one sharded store: it
// taps every shard's WAL at the durability point, retains a bounded
// ring of shipped records, and fans batches out to subscribed feeds.
// All methods are safe for concurrent use.
type Source struct {
	store *nvmstore.ShardedStore
	opts  SourceOptions

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on every ack and membership change
	shards []srcShard
	feeds  map[*Feed]bool
	nextID int

	epoch    uint64 // guarded by mu
	fencedBy uint64 // epoch that superseded us; 0 while active

	lag obs.Histogram // wall ns from ship to covering ack

	statSnapChunks int64
	statDropped    int64
}

// srcShard is the per-shard retention state, guarded by Source.mu.
type srcShard struct {
	ring      []*Batch
	ringBytes int
	// tapped reports whether the WAL tap is installed on this shard.
	tapped bool
	// shipped is the highest LSN delivered to the ring (including
	// records filtered from feeds); base is the LSN the ring's first
	// batch resumes from (its predecessor's last shipped LSN).
	shipped uint64
	// sent is the highest LSN of a record actually enqueued to feeds —
	// the target WaitAcked waits on (filtered page images never ack).
	sent uint64
}

// Batch is a run of durable records from one shard, as captured by the
// WAL tap: the unit of ring retention and feed fan-out.
type Batch struct {
	// Shard is the source shard index.
	Shard int
	// Prev is the last shipped LSN before this batch: the batch covers
	// (Prev, Last].
	Prev uint64
	// Last is the highest LSN the tap delivered in this batch,
	// including records filtered from Recs.
	Last uint64
	// Recs are the shippable records (page images and replication
	// metadata filtered out), ready for wire encoding.
	Recs []wire.ReplRec
	// Bytes is the encoded payload estimate used for ring accounting.
	Bytes int
	// wallNs is the ship timestamp for the replication-lag histogram.
	wallNs int64
}

// Item is one element of a feed's queue: exactly one of Batch and Snap
// is set. Snapshot chunks always precede the log batches that follow
// their SnapLSN.
type Item struct {
	// Batch is a run of shipped records.
	Batch *Batch
	// Snap is one bootstrap snapshot chunk.
	Snap *wire.ReplSnap
}

// Feed is one subscribed replica's stream state. Create with NewFeed,
// attach with Attach, consume Items, and Detach when the connection
// dies.
type Feed struct {
	id   int
	addr string
	ch   chan Item

	// All fields below are guarded by Source.mu. A feed goes live one
	// shard at a time, under that shard's lock, so no flush can slip
	// between its ring replay (or snapshot) and the live fan-out.
	liveShard []bool
	dead      bool
	acked     []uint64
	pending   [][]ackStamp // per shard, FIFO of enqueued batch stamps
	queued    int64        // bytes enqueued but not yet acked (lag bytes)
}

// ackStamp remembers when a batch was enqueued so the covering ack can
// be turned into a lag sample.
type ackStamp struct {
	last   uint64
	wallNs int64
	bytes  int64
}

// NewSource creates the primary-side replication state for store. The
// WAL taps are installed lazily when the first feed attaches and
// removed (with the ring cleared) when the last one detaches, so an
// unreplicated server pays nothing. The initial epoch is 1.
func NewSource(store *nvmstore.ShardedStore, opts SourceOptions) *Source {
	if opts.RingBytes <= 0 {
		opts.RingBytes = 4 << 20
	}
	if opts.FeedQueue <= 0 {
		opts.FeedQueue = 1024
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 256 << 10
	}
	if opts.SnapRows <= 0 {
		opts.SnapRows = 1024
	}
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 2 * time.Second
	}
	s := &Source{
		store:  store,
		opts:   opts,
		shards: make([]srcShard, store.NumShards()),
		feeds:  make(map[*Feed]bool),
		epoch:  1,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// MaxBatchBytes returns the configured per-frame payload bound, for
// the serving layer's frame splitting.
func (s *Source) MaxBatchBytes() int { return s.opts.MaxBatchBytes }

// Epoch returns the current primary epoch.
func (s *Source) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetEpoch raises the epoch (promotion of this node). Lower values are
// ignored.
func (s *Source) SetEpoch(e uint64) {
	s.mu.Lock()
	if e > s.epoch {
		s.epoch = e
	}
	s.mu.Unlock()
}

// FencedBy returns the epoch that superseded this primary, or 0 while
// it is still authoritative.
func (s *Source) FencedBy() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fencedBy
}

// Fence marks this primary as superseded by epoch e (a PROMOTE frame
// for a newer epoch arrived). Every feed is dropped — the replicas
// resubscribe to the new primary — and the serving layer starts
// rejecting writes with a classified error. Returns false when e does
// not exceed the current epoch (the caller should reject the PROMOTE).
func (s *Source) Fence(e uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e <= s.epoch {
		return false
	}
	if s.fencedBy == 0 || e > s.fencedBy {
		s.fencedBy = e
	}
	for f := range s.feeds {
		s.killFeedLocked(f)
	}
	s.cond.Broadcast()
	return true
}

// NewFeed allocates a feed for one replica connection; addr labels it
// in stats and metrics.
func (s *Source) NewFeed(addr string) *Feed {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	n := s.store.NumShards()
	return &Feed{
		id:        s.nextID,
		addr:      addr,
		ch:        make(chan Item, s.opts.FeedQueue),
		liveShard: make([]bool, n),
		acked:     make([]uint64, n),
		pending:   make([][]ackStamp, n),
	}
}

// Items returns the feed's queue. The channel is closed when the feed
// is dropped (overflow, fencing, or Detach).
func (f *Feed) Items() <-chan Item { return f.ch }

// ID returns the feed's stable id, unique per Source.
func (f *Feed) ID() int { return f.id }

// Attach registers the feed and enqueues, per shard, either the ring
// tail past the subscriber's resume LSN or a full snapshot, after which
// live batches flow. The consistency argument: per shard, under the
// shard's lock, the WAL tail is flushed (shipping everything
// outstanding), the tap is installed, and the snapshot scan or ring
// replay happens before the lock is released — so the enqueued state is
// exactly the durable state at the tap point, with no gap and no
// overlap with the batches that follow.
//
// A subscriber whose Epoch is older than this primary's carries resume
// LSNs from a different primary's sequence; its From vector is ignored
// and every shard bootstraps from a snapshot (LSNs are never compared
// across epochs).
func (s *Source) Attach(f *Feed, sub wire.ReplSubscribe) error {
	n := s.store.NumShards()
	if len(sub.From) != n {
		return fmt.Errorf("repl: subscriber has %d shards, primary has %d", len(sub.From), n)
	}
	if arch := s.store.Shard(0).Architecture(); arch == nvmstore.NVMDirect.String() {
		return fmt.Errorf("repl: architecture %q truncates its log per commit and cannot ship it", arch)
	}
	s.mu.Lock()
	if s.fencedBy != 0 {
		e := s.fencedBy
		s.mu.Unlock()
		return fmt.Errorf("repl: primary fenced by epoch %d", e)
	}
	if sub.Epoch > s.epoch {
		s.mu.Unlock()
		return fmt.Errorf("repl: subscriber at epoch %d is ahead of primary epoch %d", sub.Epoch, s.epoch)
	}
	// LSN sequences are per primary lineage: a subscriber from an older
	// epoch followed a different primary, so its From vector is positions
	// in a sequence this node never produced. Comparing (or worse,
	// resuming on) such LSNs would either reject the replica forever or
	// silently skip the divergent writes — force a snapshot bootstrap
	// instead; the wipe discards whatever the old lineage left behind.
	crossEpoch := sub.Epoch < s.epoch
	s.feeds[f] = true
	s.mu.Unlock()

	for i := 0; i < n; i++ {
		i := i
		err := s.store.WithShard(i, func(st *nvmstore.Store) error {
			if _, err := st.FlushWAL(); err != nil {
				return err
			}
			durable := st.DurableLSN()
			s.mu.Lock()
			sh := &s.shards[i]
			if !sh.tapped {
				sh.tapped = true
				sh.shipped = durable
				sh.sent = durable
				st.SetWALShip(func(recs []nvmstore.WALRecord) { s.ship(i, recs) })
				st.SetWALRetain(func() uint64 { return s.retain(i) })
			}
			from := sub.From[i]
			if !crossEpoch && from > durable {
				s.mu.Unlock()
				return fmt.Errorf("repl: shard %d: subscriber LSN %d ahead of durable %d", i, from, durable)
			}
			if !crossEpoch && sh.ringCovers(from) {
				for _, b := range sh.ring {
					if b.Last > from && len(b.Recs) > 0 {
						s.enqueueLocked(f, Item{Batch: b})
					}
				}
				f.acked[i] = from
				f.liveShard[i] = true
				s.mu.Unlock()
				return nil
			}
			s.mu.Unlock()
			// Snapshot bootstrap: scan every table (metadata excluded)
			// under the still-held shard lock. The chunks are consistent
			// with `durable`, and the tap queues everything after it.
			if err := s.snapshotLocked(f, st, i, durable); err != nil {
				return err
			}
			s.mu.Lock()
			f.acked[i] = durable
			f.liveShard[i] = true
			s.mu.Unlock()
			return nil
		})
		if err != nil {
			s.Detach(f)
			return err
		}
	}
	return nil
}

// ringCovers reports whether the retention ring can resume a subscriber
// whose last applied LSN is from.
func (sh *srcShard) ringCovers(from uint64) bool {
	if from == sh.shipped {
		return true // nothing missed; go live directly
	}
	if len(sh.ring) == 0 {
		return false
	}
	return sh.ring[0].Prev <= from && from <= sh.shipped
}

// snapshotLocked streams one shard's tables to f in chunks. Caller
// holds the shard lock (via WithShard) but NOT s.mu.
func (s *Source) snapshotLocked(f *Feed, st *nvmstore.Store, shard int, durable uint64) error {
	epoch := s.Epoch()
	chunk := &wire.ReplSnap{Shard: uint32(shard), Epoch: epoch, SnapLSN: durable}
	flush := func(final bool) error {
		chunk.Final = final
		s.mu.Lock()
		ok := s.enqueueLocked(f, Item{Snap: chunk})
		s.statSnapChunks++
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("repl: feed %d dropped during snapshot", f.id)
		}
		chunk = &wire.ReplSnap{Shard: uint32(shard), Epoch: epoch, SnapLSN: durable}
		return nil
	}
	for _, id := range st.TableIDs() {
		if id == MetaTable {
			continue
		}
		tab := st.Table(id)
		size := tab.RowSize()
		var scanErr error
		err := tab.Scan(0, 1<<62, 0, size, func(key uint64, row []byte) bool {
			v := make([]byte, len(row))
			copy(v, row)
			chunk.Rows = append(chunk.Rows, wire.SnapRow{Table: id, Key: key, Value: v})
			if len(chunk.Rows) >= s.opts.SnapRows {
				scanErr = flush(false)
			}
			return scanErr == nil
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}
	}
	return flush(true)
}

// ship is the WAL tap callback for one shard: it runs on the flushing
// goroutine with the shard lock held, so it only converts, rings, and
// fans out — never blocks.
func (s *Source) ship(shard int, recs []nvmstore.WALRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := &s.shards[shard]
	if !sh.tapped {
		return
	}
	b := &Batch{Shard: shard, Prev: sh.shipped}
	for _, r := range recs {
		lsn := uint64(r.LSN)
		if lsn > b.Last {
			b.Last = lsn
		}
		if nvmstore.IsPageImage(r) || (r.Kind == nvmstore.WALRecUpdate && r.PID == MetaTable) {
			continue
		}
		b.Recs = append(b.Recs, wire.ReplRec{
			Kind: r.Kind, LSN: lsn, Tx: uint64(r.Tx), PID: r.PID, Off: uint32(r.Off),
			Before: r.Before, After: r.After,
		})
		b.Bytes += len(r.Before) + len(r.After) + 64
	}
	if b.Last == 0 {
		return
	}
	sh.shipped = b.Last
	sh.ring = append(sh.ring, b)
	sh.ringBytes += b.Bytes
	for len(sh.ring) > 1 && sh.ringBytes > s.opts.RingBytes {
		sh.ringBytes -= sh.ring[0].Bytes
		sh.ring = sh.ring[1:]
	}
	if len(b.Recs) == 0 {
		return
	}
	sh.sent = b.Recs[len(b.Recs)-1].LSN
	b.wallNs = time.Now().UnixNano()
	for f := range s.feeds {
		if f.liveShard[shard] && !f.dead {
			s.enqueueLocked(f, Item{Batch: b})
		}
	}
}

// enqueueLocked queues one item on f, killing the feed on overflow.
// Caller holds s.mu. Returns false when the feed is (now) dead.
func (s *Source) enqueueLocked(f *Feed, it Item) bool {
	if f.dead {
		return false
	}
	select {
	case f.ch <- it:
		if it.Batch != nil {
			n := int64(it.Batch.Bytes)
			f.queued += n
			sh := it.Batch.Shard
			f.pending[sh] = append(f.pending[sh], ackStamp{last: it.Batch.Last, wallNs: it.Batch.wallNs, bytes: n})
		}
		return true
	default:
		s.statDropped++
		s.killFeedLocked(f)
		return false
	}
}

// killFeedLocked drops a feed: closes its channel (the consumer drains
// what was queued and stops) and removes it from fan-out. Idempotent;
// caller holds s.mu.
func (s *Source) killFeedLocked(f *Feed) {
	if f.dead {
		return
	}
	f.dead = true
	delete(s.feeds, f)
	close(f.ch)
	s.maybeUntapLocked()
	s.cond.Broadcast()
}

// Detach drops a feed whose connection is gone. Safe to call more than
// once.
func (s *Source) Detach(f *Feed) {
	s.mu.Lock()
	s.killFeedLocked(f)
	s.mu.Unlock()
}

// maybeUntapLocked schedules tap removal once no feeds remain. The taps
// must come off under each shard's lock, which must not nest inside
// s.mu, so the actual removal runs on a fresh goroutine.
func (s *Source) maybeUntapLocked() {
	if len(s.feeds) != 0 {
		return
	}
	go func() {
		for i := 0; i < s.store.NumShards(); i++ {
			i := i
			s.store.WithShard(i, func(st *nvmstore.Store) error {
				s.mu.Lock()
				defer s.mu.Unlock()
				if len(s.feeds) != 0 || !s.shards[i].tapped {
					return nil // a feed raced back in; keep the tap
				}
				st.SetWALShip(nil)
				st.SetWALRetain(nil)
				s.shards[i] = srcShard{}
				return nil
			})
		}
	}()
}

// retain is the per-shard truncation watermark: the lowest LSN the WAL
// must keep resident for replication — the first record NOT yet handed
// to the ship tap. Shipped records live on in this layer's own memory
// (the retention ring and the feeds' queues) independent of the WAL
// region, and a subscriber resuming from below the ring's coverage
// re-bootstraps from a snapshot, so replica ack progress never pins the
// log: the checkpoint path flushes (shipping everything durable) right
// before truncating, and truncation under replication proceeds exactly
// as without it. Runs under the shard lock (from wal.Truncate).
func (s *Source) retain(shard int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := &s.shards[shard]
	if !sh.tapped {
		return ^uint64(0)
	}
	return sh.shipped + 1
}

// Ack records a replica's durable progress: semi-synchronous waiters
// wake, and the ship→ack delay of every batch the ack covers lands in
// the lag histogram.
func (s *Source) Ack(f *Feed, a wire.ReplAck) {
	now := time.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	if a.Epoch != s.epoch || int(a.Shard) >= len(f.acked) || f.dead {
		return
	}
	sh := int(a.Shard)
	if a.Applied > f.acked[sh] {
		f.acked[sh] = a.Applied
	}
	p := f.pending[sh]
	for len(p) > 0 && p[0].last <= a.Applied {
		s.lag.Record(now - p[0].wallNs)
		f.queued -= p[0].bytes
		p = p[1:]
	}
	f.pending[sh] = p
	s.cond.Broadcast()
}

// WaitAcked implements semi-synchronous commits: it blocks until
// SyncReplicas live feeds have acknowledged the shard's last shipped
// LSN, degrading to the number of live feeds (possibly zero) and to
// asynchronous after SyncTimeout. Call it after the batch's WAL flush,
// without holding the shard lock.
func (s *Source) WaitAcked(shard int) {
	if s.opts.SyncReplicas <= 0 {
		return
	}
	timer := time.AfterFunc(s.opts.SyncTimeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(s.opts.SyncTimeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.shards[shard].sent
	for {
		acked, live := 0, 0
		for f := range s.feeds {
			if f.dead || !f.liveShard[shard] {
				continue
			}
			live++
			if f.acked[shard] >= target {
				acked++
			}
		}
		need := s.opts.SyncReplicas
		if live < need {
			need = live
		}
		if acked >= need {
			return
		}
		if time.Now().After(deadline) {
			return
		}
		s.cond.Wait()
	}
}

// LagHistogram returns a snapshot of the ship→ack replication-lag
// histogram (wall nanoseconds).
func (s *Source) LagHistogram() obs.HistSnapshot { return s.lag.Snapshot() }

// FeedStat describes one attached replica in Stats.
type FeedStat struct {
	// ID is the feed id (stable per subscription).
	ID int `json:"id"`
	// Addr is the replica's remote address.
	Addr string `json:"addr"`
	// AckedLSN is the replica's acknowledged LSN per shard.
	AckedLSN []uint64 `json:"acked_lsn"`
	// LagBytes is the encoded bytes shipped to but not yet acknowledged
	// by this replica.
	LagBytes int64 `json:"lag_bytes"`
}

// Stats is the primary-side replication summary exposed through the
// server's STATS document.
type Stats struct {
	// Epoch is the current primary epoch.
	Epoch uint64 `json:"epoch"`
	// FencedBy is the epoch that superseded this primary (0: active).
	FencedBy uint64 `json:"fenced_by,omitempty"`
	// Replicas lists the attached feeds.
	Replicas []FeedStat `json:"replicas"`
	// SnapshotChunks counts bootstrap chunks streamed since start.
	SnapshotChunks int64 `json:"snapshot_chunks"`
	// DroppedFeeds counts feeds dropped by flow control.
	DroppedFeeds int64 `json:"dropped_feeds"`
	// LagP50Ns and LagP99Ns are quantiles of the ship→ack lag.
	LagP50Ns int64 `json:"lag_p50_ns"`
	// LagP99Ns is the 99th percentile ship→ack lag.
	LagP99Ns int64 `json:"lag_p99_ns"`
}

// Stats returns a point-in-time summary.
func (s *Source) Stats() Stats {
	lag := s.lag.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Epoch:          s.epoch,
		FencedBy:       s.fencedBy,
		SnapshotChunks: s.statSnapChunks,
		DroppedFeeds:   s.statDropped,
		LagP50Ns:       lag.Quantile(0.50),
		LagP99Ns:       lag.Quantile(0.99),
	}
	for f := range s.feeds {
		fs := FeedStat{ID: f.id, Addr: f.addr, AckedLSN: append([]uint64(nil), f.acked...), LagBytes: f.queued}
		st.Replicas = append(st.Replicas, fs)
	}
	sortFeedStats(st.Replicas)
	return st
}

// sortFeedStats orders feeds by id for deterministic output.
func sortFeedStats(fs []FeedStat) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID < fs[j-1].ID; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
