package remote

// The read-replica scaling experiment: an in-process primary with a
// sweep of replica counts, a background writer keeping the replication
// stream busy, and pipelined readers spread across the replicas. It
// measures what read replicas buy — aggregate read throughput versus
// replica count under a constant write load — and what they cost:
// replication lag, reported from the primary source's ship→ack
// histogram as p50/p99.
//
// Throughput uses the repo's hybrid-time model: wall clock plus the
// slowest *read endpoint's* simulated device-time advance. Each replica
// runs its own store with its own virtual device clocks, so spreading
// reads across R replicas divides the simulated device time each
// endpoint accrues — the same reason real replicas scale reads: more
// aggregate device bandwidth. The R=0 baseline reads the primary
// itself, where reads also contend with the writer's device time.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nvmstore"
	"nvmstore/internal/bench"
	"nvmstore/internal/client"
	"nvmstore/internal/repl"
	"nvmstore/internal/server"
	"nvmstore/internal/shard"
	"nvmstore/internal/ycsb"
	"nvmstore/internal/zipfian"
)

// ReplicationOptions configures the read-replica scaling experiment.
type ReplicationOptions struct {
	// Shards is the per-node shard count (default 2).
	Shards int
	// MaxReplicas is the largest replica count swept; the sweep runs
	// R = 0 (reads on the primary) through MaxReplicas (default 2).
	MaxReplicas int
	// Readers is the number of concurrent read workers (default 6 — a
	// multiple of every swept endpoint count up to 3, so each endpoint
	// serves an equal share at every point).
	Readers int
	// Depth is each reader's pipeline depth (default 32).
	Depth int
	// Rows is the key-space size (default 200000 — sized well past the
	// DRAM and NVM cache tiers so uniform reads pay SSD device time,
	// which is what replicas scale).
	Rows int
	// ValueSize is the row payload size in bytes (default 100).
	ValueSize int
	// Ops is the number of measured reads per point (default 20000);
	// Warmup reads run first (default Ops/4).
	Ops    int
	Warmup int
	// Seed derives the per-worker key streams (default ycsb.DefaultSeed).
	Seed uint64
}

func (o *ReplicationOptions) applyDefaults() {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.MaxReplicas <= 0 {
		o.MaxReplicas = 2
	}
	if o.Readers <= 0 {
		o.Readers = 6
	}
	if o.Depth <= 0 {
		o.Depth = 32
	}
	if o.Rows <= 0 {
		o.Rows = 200000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = ycsb.FieldSize
	}
	if o.Ops <= 0 {
		o.Ops = 20000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Ops / 4
	}
	if o.Seed == 0 {
		o.Seed = ycsb.DefaultSeed
	}
}

const replBenchTable = 1

// Replication sweeps replica counts and reports read throughput and
// replication lag per point. The result lands in BENCH_repl.json under
// -json: series "reads" (ops/s vs replica count) plus "lag_p50_ms" and
// "lag_p99_ms" (ship→ack lag vs replica count, R >= 1).
func Replication(o ReplicationOptions) (bench.Result, error) {
	o.applyDefaults()
	res := bench.Result{
		ID: "repl",
		Title: fmt.Sprintf("read-replica scaling: %d readers × depth %d, %d rows, background writer",
			o.Readers, o.Depth, o.Rows),
		XLabel:  "replicas",
		YLabel:  "reads/s",
		FileTag: "repl",
	}
	reads := bench.Series{Name: "reads"}
	lag50 := bench.Series{Name: "lag_p50_ms"}
	lag99 := bench.Series{Name: "lag_p99_ms"}
	var base float64
	for r := 0; r <= o.MaxReplicas; r++ {
		pt, err := replicationPoint(o, r)
		if err != nil {
			return res, fmt.Errorf("replication point R=%d: %w", r, err)
		}
		reads.X = append(reads.X, float64(r))
		reads.Y = append(reads.Y, pt.perSec)
		if base == 0 {
			base = pt.perSec
		}
		note := fmt.Sprintf("R=%d: %.3g reads/s (%.2fx vs R=0), wall %v + sim %v, %d background writes",
			r, pt.perSec, pt.perSec/base, pt.wall.Round(time.Millisecond),
			pt.sim.Round(time.Millisecond), pt.writes)
		if r > 0 {
			lag50.X = append(lag50.X, float64(r))
			lag50.Y = append(lag50.Y, pt.lagP50Ms)
			lag99.X = append(lag99.X, float64(r))
			lag99.Y = append(lag99.Y, pt.lagP99Ms)
			note += fmt.Sprintf(", lag p50 %.3gms p99 %.3gms", pt.lagP50Ms, pt.lagP99Ms)
		}
		res.Notes = append(res.Notes, note)
	}
	res.Series = append(res.Series, reads, lag50, lag99)
	res.Notes = append(res.Notes,
		"reads/s is measured reads over wall clock plus the slowest read endpoint's simulated device-time advance;",
		"lag quantiles come from the primary source's ship-to-ack histogram over the whole point")
	return res, nil
}

type replScalePoint struct {
	perSec             float64
	lagP50Ms, lagP99Ms float64
	writes             int64
	wall, sim          time.Duration
}

func openReplBenchStore(o ReplicationOptions) (*nvmstore.ShardedStore, error) {
	st, err := nvmstore.OpenSharded(o.Shards, nvmstore.Options{
		// Cache tiers deliberately small next to the key space: the
		// experiment measures device-bandwidth scaling, so most reads
		// must reach the SSD tier and pay real (simulated) device time.
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    1 << 20,
		NVMBytes:     2 << 20,
		SSDBytes:     256 << 20,
		// Room for the loaded key space's log between checkpoints (replica
		// progress never holds truncation back; the retention watermark
		// only covers records not yet handed to the ship tap).
		WALBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	if _, err := st.CreateTable(replBenchTable, o.ValueSize); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// replicationPoint builds a primary plus `replicas` replicas, loads the
// key space, lets the replicas catch up, then measures pipelined reads
// against the read endpoints while a writer keeps updating the primary.
func replicationPoint(o ReplicationOptions, replicas int) (replScalePoint, error) {
	var pt replScalePoint
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	shutdown := func(srv *server.Server, errc chan error) func() {
		return func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-errc
		}
	}
	serveStore := func(st *nvmstore.ShardedStore, opts server.Options) (string, error) {
		srv := server.New(st, opts)
		errc := make(chan error, 1)
		go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
		for i := 0; ; i++ {
			if a := srv.Addr(); a != nil {
				cleanup = append(cleanup, shutdown(srv, errc))
				return a.String(), nil
			}
			if i > 2000 {
				return "", fmt.Errorf("server never started listening")
			}
			time.Sleep(time.Millisecond)
		}
	}

	pstore, err := openReplBenchStore(o)
	if err != nil {
		return pt, err
	}
	cleanup = append(cleanup, func() { pstore.Close() })
	src := repl.NewSource(pstore, repl.SourceOptions{})
	paddr, err := serveStore(pstore, server.Options{Repl: src})
	if err != nil {
		return pt, err
	}

	// Load the key space through the primary first; replicas started
	// afterwards bootstrap from a snapshot instead of replaying the
	// whole load through the log stream.
	pcl, err := client.Dial(paddr, client.Options{Conns: 2, Depth: 256})
	if err != nil {
		return pt, err
	}
	cleanup = append(cleanup, func() { pcl.Close() })
	if err := replLoad(pcl, o); err != nil {
		return pt, fmt.Errorf("load: %w", err)
	}

	// Reads go to every node in the cluster, primary included — the
	// standard read-scaling deployment. R replicas give R+1 read
	// endpoints over the R=0 baseline of the primary alone.
	endpoints := []string{paddr}
	var rps []*repl.Replica
	for i := 0; i < replicas; i++ {
		rstore, err := openReplBenchStore(o)
		if err != nil {
			return pt, err
		}
		cleanup = append(cleanup, func() { rstore.Close() })
		rp, err := repl.NewReplica(rstore, repl.ReplicaOptions{Primary: paddr})
		if err != nil {
			return pt, err
		}
		cleanup = append(cleanup, rp.Close)
		raddr, err := serveStore(rstore, server.Options{Replica: rp})
		if err != nil {
			return pt, err
		}
		rps = append(rps, rp)
		endpoints = append(endpoints, raddr)
	}
	lsns := make([]uint64, pstore.NumShards())
	for i := range lsns {
		i := i
		_ = pstore.WithShard(i, func(s *nvmstore.Store) error {
			lsns[i] = s.DurableLSN()
			return nil
		})
	}
	for _, rp := range rps {
		if err := rp.WaitLSN(lsns, 60*time.Second); err != nil {
			return pt, fmt.Errorf("replica catch-up: %w", err)
		}
	}

	// One client per read endpoint; readers round-robin across them.
	// The reader count is rounded up to a multiple of the endpoint count
	// so every endpoint serves the same share of the reads — throughput
	// is gated by the *slowest* endpoint's simulated device time, so an
	// endpoint with one extra reader would cap the whole point.
	readers := o.Readers
	if rem := readers % len(endpoints); rem != 0 {
		readers += len(endpoints) - rem
	}
	rcls := make([]*client.Client, len(endpoints))
	for i, addr := range endpoints {
		cl, err := client.Dial(addr, client.Options{Conns: 2, Depth: readers * o.Depth})
		if err != nil {
			return pt, err
		}
		cleanup = append(cleanup, func() { cl.Close() })
		rcls[i] = cl
	}
	if err := replReads(rcls, o, readers, o.Warmup); err != nil {
		return pt, fmt.Errorf("warmup: %w", err)
	}

	// The background writer keeps the replication stream busy for the
	// whole measured window, so the lag histogram reflects reads under
	// write pressure, not an idle stream.
	stop := make(chan struct{})
	var writes atomic.Int64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		val := make([]byte, o.ValueSize)
		gen := zipfian.New(uint64(o.Rows), zipfian.Theta1, shard.SeedFor(o.Seed, 101))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Zipf-hot updates, YCSB-style: the write working set stays
			// cache-resident, so replica apply does not eat into the
			// device bandwidth the read endpoints are scaling.
			key := gen.NextScrambled()
			ycsb.FillField(key+uint64(i), 0, val)
			if err := pcl.Put(replBenchTable, key, val); err != nil {
				return
			}
			writes.Add(1)
		}
	}()

	before := make([]int64, len(rcls))
	for i, cl := range rcls {
		doc, err := remoteStats(cl)
		if err != nil {
			return pt, err
		}
		before[i] = doc.MaxSimNs
	}
	start := time.Now()
	err = replReads(rcls, o, readers, o.Ops)
	pt.wall = time.Since(start)
	close(stop)
	wwg.Wait()
	if err != nil {
		return pt, fmt.Errorf("measured reads: %w", err)
	}
	for i, cl := range rcls {
		doc, serr := remoteStats(cl)
		if serr != nil {
			return pt, serr
		}
		if d := time.Duration(doc.MaxSimNs - before[i]); d > pt.sim {
			pt.sim = d
		}
	}
	if combined := pt.wall + pt.sim; combined > 0 {
		pt.perSec = float64(o.Ops) / combined.Seconds()
	}
	st := src.Stats()
	pt.lagP50Ms = float64(st.LagP50Ns) / 1e6
	pt.lagP99Ms = float64(st.LagP99Ns) / 1e6
	pt.writes = writes.Load()
	return pt, nil
}

// replLoad bulk-loads the key space through pipelined PUTs.
func replLoad(cl *client.Client, o ReplicationOptions) error {
	val := make([]byte, o.ValueSize)
	var inflight []*client.Call
	for key := uint64(0); key < uint64(o.Rows); key++ {
		ycsb.FillField(key, 0, val)
		inflight = append(inflight, cl.PutAsync(replBenchTable, key, val))
		if len(inflight) >= 256 {
			if _, err := inflight[0].Result(); err != nil {
				return err
			}
			inflight = inflight[1:]
		}
	}
	for _, call := range inflight {
		if _, err := call.Result(); err != nil {
			return err
		}
	}
	return nil
}

// replReads issues total uniformly-distributed pipelined GETs across
// `readers` workers, each bound to one endpoint round-robin; readers is
// a multiple of the endpoint count, so every endpoint serves an equal
// share.
func replReads(rcls []*client.Client, o ReplicationOptions, readers, total int) error {
	base, extra := total/readers, total%readers
	return remoteWorkers(readers, func(wid int) error {
		per := base
		if wid < extra {
			per++
		}
		cl := rcls[wid%len(rcls)]
		// Uniform keys, not Zipf: the point is device-time scaling, so
		// the stream must keep missing the DRAM tier.
		gen := zipfian.New(uint64(o.Rows), zipfian.Theta1, shard.SeedFor(o.Seed, wid))
		var inflight []*client.Call
		for i := 0; i < per; i++ {
			key := gen.Uint64n(uint64(o.Rows))
			inflight = append(inflight, cl.GetAsync(replBenchTable, key))
			if len(inflight) >= o.Depth {
				if _, err := inflight[0].Result(); err != nil {
					return err
				}
				inflight = inflight[1:]
			}
		}
		for _, call := range inflight {
			if _, err := call.Result(); err != nil {
				return err
			}
		}
		return nil
	})
}
