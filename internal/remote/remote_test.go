package remote_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvmstore"
	"nvmstore/internal/obs"
	"nvmstore/internal/remote"
	"nvmstore/internal/server"
)

// startServer serves a small sharded store on a loopback listener, the
// same harness the server package's own tests use.
func startServer(t *testing.T, shards int) string {
	t.Helper()
	store, err := nvmstore.OpenSharded(shards, nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable(1, 128); err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Options{})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; ; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		if i > 500 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return addr
}

// TestRemoteTraceAttribution runs the wire workload with tracing on and
// checks the result carries a p99 stage decomposition whose stages sum
// exactly to its total — the invariant the bench-smoke CI step validates
// from the JSON output.
func TestRemoteTraceAttribution(t *testing.T) {
	addr := startServer(t, 2)
	res, err := remote.Run(remote.Options{
		Addr:        addr,
		Clients:     2,
		Depth:       8,
		Rows:        500,
		Load:        true,
		WritePct:    20,
		Ops:         2000,
		Warmup:      200,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	attr := res.Attribution
	if attr == nil {
		t.Fatal("traced run returned no attribution")
	}
	if attr.Count == 0 || attr.TailCount == 0 || attr.TotalNs <= 0 {
		t.Fatalf("degenerate attribution: %+v", attr)
	}
	if got := attr.SumNs(); got != attr.TotalNs {
		t.Fatalf("stage sum %d != total %d", got, attr.TotalNs)
	}
	var traced bool
	for _, n := range res.Notes {
		traced = traced || strings.HasPrefix(n, "trace:")
	}
	if !traced {
		t.Fatalf("no trace note in %q", res.Notes)
	}

	// The decomposition must survive the JSON round trip with the same
	// sum-to-total invariant, since external tooling reads it there.
	dir := t.TempDir()
	path, err := res.SaveJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Attribution *obs.Attribution `json:"attribution"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Attribution == nil {
		t.Fatalf("attribution missing from %s", filepath.Base(path))
	}
	if doc.Attribution.SumNs() != doc.Attribution.TotalNs {
		t.Fatalf("JSON attribution stages sum %d != total %d",
			doc.Attribution.SumNs(), doc.Attribution.TotalNs)
	}
}

// TestRemoteUntracedHasNoAttribution pins the default: no TraceSample,
// no attribution section and no trace note.
func TestRemoteUntracedHasNoAttribution(t *testing.T) {
	addr := startServer(t, 1)
	res, err := remote.Run(remote.Options{
		Addr:    addr,
		Clients: 1,
		Depth:   4,
		Rows:    100,
		Load:    true,
		Ops:     300,
		Warmup:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attribution != nil {
		t.Fatalf("untraced run has attribution: %+v", res.Attribution)
	}
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "trace:") {
			t.Fatalf("untraced run has trace note: %q", n)
		}
	}
}
