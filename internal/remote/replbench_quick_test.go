package remote

import "testing"

func TestReplScalingQuick(t *testing.T) {
	res, err := Replication(ReplicationOptions{Ops: 8000, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Notes {
		t.Log(n)
	}
}
