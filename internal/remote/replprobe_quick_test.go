package remote

import (
	"testing"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/repl"
	"nvmstore/internal/server"
)

func TestReplProbeQuick(t *testing.T) {
	o := ReplicationOptions{}
	o.applyDefaults()
	o.Rows = 100000
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	pstore, err := openReplBenchStore(o)
	if err != nil {
		t.Fatal(err)
	}
	cleanup = append(cleanup, func() { pstore.Close() })
	src := repl.NewSource(pstore, repl.SourceOptions{})
	psrv := server.New(pstore, server.Options{Repl: src})
	go psrv.ListenAndServe("127.0.0.1:0")
	for psrv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	paddr := psrv.Addr().String()
	pcl, err := client.Dial(paddr, client.Options{Conns: 2, Depth: 256})
	if err != nil {
		t.Fatal(err)
	}
	cleanup = append(cleanup, func() { pcl.Close() })
	if err := replLoad(pcl, o); err != nil {
		t.Fatal(err)
	}
	t.Log("load done")
	rstore, err := openReplBenchStore(o)
	if err != nil {
		t.Fatal(err)
	}
	cleanup = append(cleanup, func() { rstore.Close() })
	rp, err := repl.NewReplica(rstore, repl.ReplicaOptions{Primary: paddr, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cleanup = append(cleanup, rp.Close)
	lsns := make([]uint64, pstore.NumShards())
	for i := range lsns {
		i := i
		pstore.WithShard(i, func(s *nvmstore.Store) error {
			lsns[i] = s.DurableLSN()
			return nil
		})
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := rp.WaitLSN(lsns, 2*time.Second); err == nil {
			t.Logf("caught up, stats=%+v", rp.Stats())
			return
		}
		t.Logf("applied=%v want=%v stats=%+v srcstats=%+v", rp.Applied(), lsns, rp.Stats(), src.Stats())
	}
	t.Fatal("never caught up")
}
