package remote

import (
	"fmt"
	"sync/atomic"
	"time"

	"nvmstore/internal/bench"
	"nvmstore/internal/client"
)

// GroupCommit is the serving-layer counterpart of the in-process
// groupcommit experiment: a write-only YCSB run swept over the client
// pipeline depth. Depth is what drives coalescing end to end — a deeper
// pipeline keeps more requests queued at each shard worker, the worker
// executes them as one batch under the shard lock, commits every write
// without flushing, and makes the whole batch durable with a single
// log-tail flush before any response leaves the server. Depth 1 is the
// ungrouped baseline: one request in flight per worker, so every write
// pays its own flush. The achieved coalescing is reported as ops/flush
// from the server's own WAL counters (STATS log_commits/log_flushes
// deltas over the measured window).
func GroupCommit(o Options) (bench.Result, error) {
	o.applyDefaults()
	o.WritePct = 100
	depths := []int{1, 2, 4, 8, 16, 32, 64}

	res := bench.Result{
		ID: "groupcommit",
		Title: fmt.Sprintf("remote group commit: pipeline-depth sweep (100%% put, %d clients) against %s",
			o.Clients, o.Addr),
		XLabel:  "pipeline depth",
		YLabel:  "ops/s",
		FileTag: "groupcommit_remote",
	}
	s := bench.Series{Name: "wire"}
	var base float64
	for _, depth := range depths {
		point := o
		point.Depth = depth
		// Load only once, ahead of the first point; later points reuse
		// the key space.
		point.Load = o.Load && depth == depths[0]
		perSec, opsPerFlush, err := groupCommitPoint(point)
		if err != nil {
			return res, fmt.Errorf("remote groupcommit depth %d: %w", depth, err)
		}
		s.X = append(s.X, float64(depth))
		s.Y = append(s.Y, perSec)
		if base == 0 {
			base = perSec
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"depth %d: %.3g ops/s (%.2fx vs depth 1), %.1f ops/flush server-side",
			depth, perSec, perSec/base, opsPerFlush))
	}
	res.Series = append(res.Series, s)
	res.Notes = append(res.Notes,
		"ops/flush is the delta of the server's log_commits/log_flushes over the measured window;",
		"it counts every shard's flushes, including read-batch no-ops, so it trails the depth at high depths")
	return res, nil
}

// groupCommitPoint runs one depth point: dial, optional load, warmup,
// then a measured window bracketed by server STATS snapshots.
func groupCommitPoint(o Options) (perSec, opsPerFlush float64, err error) {
	cl, err := client.Dial(o.Addr, client.Options{
		Conns:   o.Conns,
		Depth:   o.Clients * o.Depth,
		Retries: o.Retries,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()

	var reissued atomic.Int64
	if o.Load {
		if err := remoteLoad(cl, o, &reissued); err != nil {
			return 0, 0, fmt.Errorf("load: %w", err)
		}
	}
	if o.Warmup > 0 {
		if err := remoteRun(cl, o, o.Warmup, &reissued); err != nil {
			return 0, 0, fmt.Errorf("warmup: %w", err)
		}
	}
	before, err := remoteStats(cl)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := remoteRun(cl, o, o.Ops, &reissued); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start)
	after, err := remoteStats(cl)
	if err != nil {
		return 0, 0, err
	}
	sim := time.Duration(after.MaxSimNs - before.MaxSimNs)
	combined := wall + sim
	if combined > 0 {
		perSec = float64(o.Ops) / combined.Seconds()
	}
	if flushes := after.LogFlushes - before.LogFlushes; flushes > 0 {
		opsPerFlush = float64(after.LogCommits-before.LogCommits) / float64(flushes)
	}
	return perSec, opsPerFlush, nil
}
