// Package remote drives YCSB-style load against a running nvmserver
// over the wire protocol — the serving-layer counterpart of the
// in-process experiments in internal/bench. It lives outside bench so
// the engine-level experiment package does not depend on the network
// stack.
package remote

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nvmstore/internal/bench"
	"nvmstore/internal/client"
	"nvmstore/internal/obs"
	"nvmstore/internal/server"
	"nvmstore/internal/shard"
	"nvmstore/internal/ycsb"
	"nvmstore/internal/zipfian"
)

// Options configures a YCSB-style run against a live nvmserver
// over the wire protocol — the serving-layer counterpart of the
// in-process experiments. Unlike those, the remote driver measures the
// whole request path: framing, the server's shard routing and batching,
// and the storage engine underneath.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Table is the target table id (default 1, nvmserver's default).
	Table uint64
	// Clients is the number of concurrent workers, each keeping its own
	// pipeline of requests in flight (default 4).
	Clients int
	// Conns is the client connection-pool size (default Clients).
	Conns int
	// Depth is each worker's pipeline depth (default 16).
	Depth int
	// Rows is the key-space size [0, Rows) (default 10000).
	Rows int
	// Load bulk-loads the key space through pipelined PUTs first.
	Load bool
	// ValueSize is the bytes written per PUT (default 100, YCSB's field
	// size; the server zero-pads rows to the table's row size).
	ValueSize int
	// WritePct is the percentage of operations that are PUTs, 0..100;
	// the rest are GETs. 0 means a read-only run (so a zero-value
	// Options runs pure GETs); values outside 0..100 reset to 5,
	// YCSB-B's mix.
	WritePct int
	// Ops is the number of measured operations across all workers
	// (default 30000); Warmup runs before measuring (default Ops/2).
	Ops    int
	Warmup int
	// Retries is the per-request retry budget the client applies to
	// retryable transport failures (0: the client default of 3;
	// negative: fail fast). Reissued requests are subtracted from the
	// throughput math, so retries show up as degradation, not free ops.
	Retries int
	// Seed is the base seed of the per-worker Zipf streams (default
	// ycsb.DefaultSeed); worker i draws from shard.SeedFor(Seed, i).
	Seed uint64
	// TraceSample, when positive, stamps every Nth keyed request with a
	// wire-level trace header; the server records a per-stage timeline
	// for each stamped request and the run reports the p99 stage
	// decomposition (reader dispatch, shard queue, execution, WAL flush,
	// response write) from the server's flight recorder. 1 traces every
	// request; 0 disables tracing.
	TraceSample int
}

func (o *Options) applyDefaults() {
	if o.Table == 0 {
		o.Table = 1
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Conns <= 0 {
		o.Conns = o.Clients
	}
	if o.Depth <= 0 {
		o.Depth = 16
	}
	if o.Rows <= 0 {
		o.Rows = 10000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = ycsb.FieldSize
	}
	if o.WritePct < 0 || o.WritePct > 100 {
		o.WritePct = 5
	}
	if o.Ops <= 0 {
		o.Ops = 30000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Ops / 2
	}
	if o.Seed == 0 {
		o.Seed = ycsb.DefaultSeed
	}
}

// Run drives the YCSB mix against a live server and reports
// throughput over combined time (wall clock plus the server's simulated
// device-time advance, the hybrid-time model) and wire-level p50/p99
// round-trip latencies alongside the server's engine-level histograms.
func Run(o Options) (bench.Result, error) {
	o.applyDefaults()
	cl, err := client.Dial(o.Addr, client.Options{
		Conns: o.Conns,
		// Every worker must be able to fill its pipeline even if the
		// round-robin lands them all on one connection.
		Depth:       o.Clients * o.Depth,
		Retries:     o.Retries,
		TraceSample: o.TraceSample,
	})
	if err != nil {
		return bench.Result{}, err
	}
	defer cl.Close()

	var reissued atomic.Int64
	if o.Load {
		if err := remoteLoad(cl, o, &reissued); err != nil {
			return bench.Result{}, fmt.Errorf("remote load: %w", err)
		}
	}
	if o.Warmup > 0 {
		if err := remoteRun(cl, o, o.Warmup, &reissued); err != nil {
			return bench.Result{}, fmt.Errorf("remote warmup: %w", err)
		}
	}
	reissued.Store(0) // count only the measured window
	cl.ResetLatency()
	before, err := remoteStats(cl)
	if err != nil {
		return bench.Result{}, err
	}
	start := time.Now()
	if err := remoteRun(cl, o, o.Ops, &reissued); err != nil {
		return bench.Result{}, fmt.Errorf("remote run: %w", err)
	}
	wall := time.Since(start)
	after, err := remoteStats(cl)
	if err != nil {
		return bench.Result{}, err
	}

	// Hybrid time, as everywhere in this repo: the engines charge
	// device latencies to virtual clocks instead of sleeping, so wall
	// time alone would flatter the run. The slowest shard's simulated
	// advance is what dedicated hardware would have added.
	sim := time.Duration(after.MaxSimNs - before.MaxSimNs)
	combined := wall + sim
	perSec := 0.0
	if combined > 0 {
		perSec = float64(o.Ops) / combined.Seconds()
	}

	res := bench.Result{
		ID:      "remote",
		Title:   fmt.Sprintf("Remote YCSB (%d%% put) against %s, %d shards", o.WritePct, o.Addr, after.Shards),
		XLabel:  "clients",
		YLabel:  "ops/s",
		FileTag: fmt.Sprintf("remote_c%d", o.Clients),
		Series: []bench.Series{{
			Name: "wire",
			X:    []float64{float64(o.Clients)},
			Y:    []float64{perSec},
		}},
		Latency: append(cl.Latency(), after.Engine...),
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d ops, %d clients × depth %d over %d conns: wall %v + sim %v = %v",
			o.Ops, o.Clients, o.Depth, o.Conns, wall.Round(time.Microsecond), sim, combined.Round(time.Microsecond)),
		"latency rows: wire.* are client-observed wall-clock round trips;",
		"the rest are the server engine's simulated-time histograms (with -obs)")
	if n := reissued.Load(); n > 0 || cl.Retries() > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%d pipelined ops reissued after transport failures (%d client-level retries); reissues cost time but add no ops",
			n, cl.Retries()))
	}
	if o.TraceSample > 0 {
		if after.Trace == nil || after.Trace.Sampled == 0 {
			res.Notes = append(res.Notes,
				"tracing requested but the server recorded no timelines (old server version?)")
		} else {
			attr := after.Trace.P99
			res.Attribution = &attr
			note := fmt.Sprintf("trace: 1/%d of keyed requests stamped, %d timelines sampled server-side",
				o.TraceSample, after.Trace.Sampled)
			// The span total is the server-side residence (reader to
			// writer); the client's wire p99 adds the network round trip
			// and client-side queueing on top. Report the coverage so a
			// widening gap flags where time is hiding.
			if wp99 := wireP99(cl.Latency()); wp99 > 0 && attr.TotalNs > 0 {
				note += fmt.Sprintf("; server span p99 %v covers %.0f%% of wire p99 %v",
					time.Duration(attr.TotalNs).Round(time.Microsecond),
					100*float64(attr.TotalNs)/float64(wp99),
					time.Duration(wp99).Round(time.Microsecond))
			}
			res.Notes = append(res.Notes, note)
		}
	}
	return res, nil
}

// wireP99 picks the worst client-observed p99 across the keyed wire
// rows — the number the span decomposition is attributed against.
func wireP99(rows []obs.Row) int64 {
	var worst int64
	for _, r := range rows {
		if (r.Op == "wire.get" || r.Op == "wire.put" || r.Op == "wire.delete") && r.P99 > worst {
			worst = r.P99
		}
	}
	return worst
}

// pending pairs an in-flight pipelined call with a closure that can
// reissue the same operation through the client's synchronous path,
// which retries with backoff and redials failed connections.
type pending struct {
	call *client.Call
	redo func() error
}

// settle waits out one pipelined call. A retryable transport failure
// under it (an injected drop, a bounced connection) is absorbed by
// reissuing the operation synchronously — unless the run asked to fail
// fast (Options.Retries < 0). Only idempotent autocommit operations
// travel through the pipeline, so reissuing is safe for the same
// reason the client's own retry loop is (see client.IsRetryable).
func settle(o Options, p pending, reissued *atomic.Int64) error {
	_, err := p.call.Result()
	if err == nil || o.Retries < 0 || !client.IsRetryable(err) {
		return err
	}
	reissued.Add(1)
	return p.redo()
}

// remoteStats fetches and decodes the server's STATS document.
func remoteStats(cl *client.Client) (server.StatsDoc, error) {
	var doc server.StatsDoc
	buf, err := cl.Stats()
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return doc, fmt.Errorf("remote stats: %w", err)
	}
	return doc, nil
}

// remoteLoad PUTs every key of the key space, pipelined, partitioned
// across the workers.
func remoteLoad(cl *client.Client, o Options, reissued *atomic.Int64) error {
	return remoteWorkers(o.Clients, func(wid int) error {
		val := make([]byte, o.ValueSize)
		var inflight []pending
		for k := wid; k < o.Rows; k += o.Clients {
			key := uint64(k)
			ycsb.FillField(key, 0, val)
			p := pending{cl.PutAsync(o.Table, key, val), func() error {
				v := make([]byte, o.ValueSize)
				ycsb.FillField(key, 0, v)
				return cl.Put(o.Table, key, v)
			}}
			inflight = append(inflight, p)
			if len(inflight) >= o.Depth {
				if err := settle(o, inflight[0], reissued); err != nil {
					return err
				}
				inflight = inflight[1:]
			}
		}
		return drain(o, inflight, reissued)
	})
}

// remoteRun issues exactly total operations of the configured mix
// across the workers (the remainder spread over the first total%Clients
// workers, so throughput can divide total by the measured time), each
// worker pipelining Depth requests.
func remoteRun(cl *client.Client, o Options, total int, reissued *atomic.Int64) error {
	base, extra := total/o.Clients, total%o.Clients
	return remoteWorkers(o.Clients, func(wid int) error {
		per := base
		if wid < extra {
			per++
		}
		gen := zipfian.New(uint64(o.Rows), zipfian.Theta1, shard.SeedFor(o.Seed, wid))
		val := make([]byte, o.ValueSize)
		var inflight []pending
		for i := 0; i < per; i++ {
			key := gen.NextScrambled()
			var p pending
			if int(gen.Uint64n(100)) < o.WritePct {
				// Vary the payload with the op index so writes are not
				// no-ops (PutAsync consumes val before returning).
				fill := key + uint64(i)
				ycsb.FillField(fill, 0, val)
				p = pending{cl.PutAsync(o.Table, key, val), func() error {
					v := make([]byte, o.ValueSize)
					ycsb.FillField(fill, 0, v)
					return cl.Put(o.Table, key, v)
				}}
			} else {
				p = pending{cl.GetAsync(o.Table, key), func() error {
					_, _, err := cl.Get(o.Table, key)
					return err
				}}
			}
			inflight = append(inflight, p)
			if len(inflight) >= o.Depth {
				if err := settle(o, inflight[0], reissued); err != nil {
					return err
				}
				inflight = inflight[1:]
			}
		}
		return drain(o, inflight, reissued)
	})
}

// drain waits out a pipeline tail.
func drain(o Options, inflight []pending, reissued *atomic.Int64) error {
	for _, p := range inflight {
		if err := settle(o, p, reissued); err != nil {
			return err
		}
	}
	return nil
}

// remoteWorkers runs fn(0..n-1) concurrently and returns the first
// error.
func remoteWorkers(n int, fn func(wid int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	return nil
}
