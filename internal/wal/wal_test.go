package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"nvmstore/internal/nvm"
	"nvmstore/internal/simclock"
)

// memHandler replays records against an in-memory set of pages, keeping a
// per-page LSN like a real engine would.
type memHandler struct {
	pages map[uint64][]byte
	lsn   map[uint64]LSN
}

func newMemHandler() *memHandler {
	return &memHandler{pages: make(map[uint64][]byte), lsn: make(map[uint64]LSN)}
}

func (h *memHandler) page(pid uint64) []byte {
	p, ok := h.pages[pid]
	if !ok {
		p = make([]byte, 256)
		h.pages[pid] = p
	}
	return p
}

func (h *memHandler) Redo(r Record) error {
	if r.LSN <= h.lsn[r.PID] {
		return nil
	}
	copy(h.page(r.PID)[r.Off:], r.After)
	h.lsn[r.PID] = r.LSN
	return nil
}

func (h *memHandler) Undo(r Record) error {
	copy(h.page(r.PID)[r.Off:], r.Before)
	return nil
}

func newTestLog(t *testing.T, strict bool) (*Log, *nvm.Device) {
	if t != nil {
		t.Helper()
	}
	clk := &simclock.Clock{}
	dev := nvm.New(nvm.Config{
		Size:              1 << 20,
		ReadLatency:       500 * time.Nanosecond,
		WriteLatency:      500 * time.Nanosecond,
		LineTransfer:      5 * time.Nanosecond,
		StrictPersistence: strict,
	}, clk)
	return New(dev, 0, 1<<16), dev
}

func TestCommittedTransactionRecovers(t *testing.T) {
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 10, []byte("old!"), []byte("new!")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}

	h := newMemHandler()
	copy(h.page(1)[10:], "old!")
	st, err := l.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 || st.Losers != 0 || st.Redone != 1 || st.Undone != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := string(h.page(1)[10:14]); got != "new!" {
		t.Fatalf("page content = %q, want new!", got)
	}
}

func TestLoserTransactionRolledBack(t *testing.T) {
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, []byte("AAAA"), []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	l.Flush() // durable but never committed

	h := newMemHandler()
	copy(h.page(1), "AAAA")
	st, err := l.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 1 || st.Undone != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := string(h.page(1)[:4]); got != "AAAA" {
		t.Fatalf("page content = %q, want AAAA", got)
	}
}

func TestInterleavedTransactions(t *testing.T) {
	l, _ := newTestLog(t, false)
	t1 := l.Begin()
	t2 := l.Begin()
	// t1 and t2 interleave on different pages; t1 commits, t2 does not.
	if _, err := l.Update(t1, 1, 0, []byte("a"), []byte("X")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update(t2, 2, 0, []byte("b"), []byte("Y")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update(t1, 1, 1, []byte("c"), []byte("Z")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(t1); err != nil {
		t.Fatal(err)
	}

	h := newMemHandler()
	copy(h.page(1), "ac")
	copy(h.page(2), "b")
	st, err := l.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 || st.Losers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := string(h.page(1)[:2]); got != "XZ" {
		t.Fatalf("page 1 = %q, want XZ", got)
	}
	if got := string(h.page(2)[:1]); got != "b" {
		t.Fatalf("page 2 = %q, want b (rolled back)", got)
	}
}

func TestAbortedTransactionNotUndone(t *testing.T) {
	// An aborted transaction logs its compensations before the abort
	// record (CLR-style); recovery redoes everything and skips undo.
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	if _, err := l.Update(tx, 3, 0, []byte("ok"), []byte("no")); err != nil {
		t.Fatal(err)
	}
	// The compensation restoring the old value.
	if _, err := l.Update(tx, 3, 0, []byte("no"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort(tx); err != nil {
		t.Fatal(err)
	}
	h := newMemHandler()
	copy(h.page(3), "ok")
	st, err := l.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted != 1 || st.Losers != 0 || st.Undone != 0 || st.Redone != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := string(h.page(3)[:2]); got != "ok" {
		t.Fatalf("page = %q, want ok", got)
	}
}

func TestTornTailIgnored(t *testing.T) {
	l, dev := newTestLog(t, true)
	t1 := l.Begin()
	if _, err := l.Update(t1, 1, 0, []byte("a"), []byte("B")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// A second update is appended but never flushed; the crash tears it.
	t2 := l.Begin()
	if _, err := l.Update(t2, 1, 0, []byte("B"), []byte("C")); err != nil {
		t.Fatal(err)
	}
	dev.Crash()

	h := newMemHandler()
	copy(h.page(1), "a")
	st, err := l.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("recovered %d records, want 1 (torn tail dropped)", st.Records)
	}
	if got := string(h.page(1)[:1]); got != "B" {
		t.Fatalf("page = %q, want B", got)
	}
}

func TestRecoverPositionsLogForAppends(t *testing.T) {
	l, dev := newTestLog(t, false)
	t1 := l.Begin()
	if _, err := l.Update(t1, 1, 0, []byte("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(t1); err != nil {
		t.Fatal(err)
	}

	// A second log object over the same region (a "restart").
	l2 := New(dev, 0, 1<<16)
	if _, err := l2.Recover(newMemHandler()); err != nil {
		t.Fatal(err)
	}
	// New transactions must get fresh ids and LSNs and append after the
	// old records.
	t2 := l2.Begin()
	if t2 <= t1 {
		t.Fatalf("tx id after recovery = %d, want > %d", t2, t1)
	}
	lsn, err := l2.Update(t2, 1, 0, []byte("y"), []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn < 3 {
		t.Fatalf("lsn after recovery = %d, want >= 3", lsn)
	}
	if err := l2.Commit(t2); err != nil {
		t.Fatal(err)
	}
	h := newMemHandler()
	copy(h.page(1), "x")
	l3 := New(dev, 0, 1<<16)
	if _, err := l3.Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := string(h.page(1)[:1]); got != "z" {
		t.Fatalf("page = %q, want z", got)
	}
}

func TestTruncate(t *testing.T) {
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, []byte("q"), []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	l.Truncate()
	if l.Bytes() != 0 {
		t.Fatalf("Bytes() after truncate = %d", l.Bytes())
	}
	st, err := l.Recover(newMemHandler())
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 {
		t.Fatalf("records after truncate = %d, want 0", st.Records)
	}
}

func TestTruncateRetentionWatermark(t *testing.T) {
	l, _ := newTestLog(t, false)
	var keep LSN
	l.SetRetain(func() LSN { return keep })

	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, []byte("q"), []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	l.Flush()

	// A resident record at or above the watermark (not yet handed to the
	// ship hook) pins the log: Truncate is a counted no-op.
	keep = l.DurableLSN()
	if got := l.Truncate(); got != 0 {
		t.Fatalf("Truncate under watermark returned %d, want 0", got)
	}
	if l.Bytes() == 0 || l.Stats().TruncateSkips != 1 {
		t.Fatalf("log not kept under watermark: bytes=%d stats=%+v", l.Bytes(), l.Stats())
	}

	// Watermark past the head — everything shipped — and truncation
	// proceeds.
	keep = l.DurableLSN() + 1
	if got := l.Truncate(); got != l.DurableLSN() {
		t.Fatalf("Truncate past watermark returned %d, want %d", got, l.DurableLSN())
	}
	if l.Bytes() != 0 || l.Stats().Truncates != 1 {
		t.Fatalf("log not truncated past watermark: bytes=%d stats=%+v", l.Bytes(), l.Stats())
	}

	// A nil fn removes the guard entirely.
	l.SetRetain(nil)
	tx2 := l.Begin()
	if _, err := l.Update(tx2, 1, 0, []byte("r"), []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if got := l.Truncate(); got == 0 {
		t.Fatal("Truncate with the guard removed refused")
	}
}

func TestLogFull(t *testing.T) {
	clk := &simclock.Clock{}
	dev := nvm.New(nvm.Config{Size: 1 << 20, ReadLatency: 1, WriteLatency: 1, LineTransfer: 1}, clk)
	l := New(dev, 0, 4096)
	tx := l.Begin()
	img := make([]byte, 256)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = l.Update(tx, 1, 0, img, img); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
	// After truncation, appends work again.
	l.Truncate()
	if _, err := l.Update(tx, 1, 0, img, img); err != nil {
		t.Fatal(err)
	}
}

func TestRedoIsIdempotentViaPageLSN(t *testing.T) {
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, []byte{0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update(tx, 1, 0, []byte{1}, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	h := newMemHandler()
	// The page already saw the first record (LSN 1) before the crash.
	h.page(1)[0] = 1
	h.lsn[1] = 1
	if _, err := l.Recover(h); err != nil {
		t.Fatal(err)
	}
	if h.page(1)[0] != 2 {
		t.Fatalf("page byte = %d, want 2", h.page(1)[0])
	}
}

func TestCommitFlushesDurably(t *testing.T) {
	l, dev := newTestLog(t, true)
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, []byte("u"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	dev.Crash() // commit must survive

	h := newMemHandler()
	copy(h.page(1), "u")
	st, err := l.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 1 {
		t.Fatalf("committed = %d, want 1", st.Committed)
	}
	if got := string(h.page(1)[:1]); got != "v" {
		t.Fatalf("page = %q, want v", got)
	}
}

func TestDifferingImageLengths(t *testing.T) {
	// Inserts log an empty before image, deletes an empty after image.
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, nil, []byte("inserted")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update(tx, 2, 0, []byte("deleted"), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	var got []Record
	rec := recorderHandler{&got}
	if _, err := l.Recover(rec); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records", len(got))
	}
	if len(got[0].Before) != 0 || string(got[0].After) != "inserted" {
		t.Fatalf("record 0 = %q/%q", got[0].Before, got[0].After)
	}
	if string(got[1].Before) != "deleted" || len(got[1].After) != 0 {
		t.Fatalf("record 1 = %q/%q", got[1].Before, got[1].After)
	}
}

// recorderHandler captures redo records.
type recorderHandler struct{ out *[]Record }

func (r recorderHandler) Redo(rec Record) error {
	cp := rec
	cp.Before = append([]byte(nil), rec.Before...)
	cp.After = append([]byte(nil), rec.After...)
	*r.out = append(*r.out, cp)
	return nil
}
func (r recorderHandler) Undo(Record) error { return nil }

func TestRecordImagesAreCopies(t *testing.T) {
	l, _ := newTestLog(t, false)
	tx := l.Begin()
	buf := []byte("live")
	if _, err := l.Update(tx, 1, 0, buf, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "dead") // caller reuses its buffer
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	h := newMemHandler()
	if _, err := l.Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.page(1)[:4]; !bytes.Equal(got, []byte("live")) {
		t.Fatalf("after image = %q, want live", got)
	}
}

// TestQuickRandomHistories property-checks recovery: for random interleaved
// transaction histories with random commit/abort/in-flight endings, the
// recovered state equals replaying only committed work (aborted
// transactions log their compensations, as the engine does).
func TestQuickRandomHistories(t *testing.T) {
	prop := func(script []uint16) bool {
		l, _ := newTestLog(nil, false)
		model := make(map[uint64]byte)   // page -> committed value
		scratch := make(map[uint64]byte) // uncommitted view
		for k, v := range model {
			scratch[k] = v
		}
		tx := l.Begin()
		var txWrites []uint64
		for _, op := range script {
			page := uint64(op % 8)
			val := byte(op >> 8)
			before := []byte{scratch[page]}
			if _, err := l.Update(tx, page, 0, before, []byte{val}); err != nil {
				return false
			}
			scratch[page] = val
			txWrites = append(txWrites, page)
			switch op % 5 {
			case 0: // commit
				if err := l.Commit(tx); err != nil {
					return false
				}
				for k, v := range scratch {
					model[k] = v
				}
				tx = l.Begin()
				txWrites = nil
			case 1: // abort with compensations
				for i := len(txWrites) - 1; i >= 0; i-- {
					p := txWrites[i]
					if _, err := l.Update(tx, p, 0, []byte{scratch[p]}, []byte{model[p]}); err != nil {
						return false
					}
					scratch[p] = model[p]
				}
				if err := l.Abort(tx); err != nil {
					return false
				}
				for k := range scratch {
					scratch[k] = model[k]
				}
				tx = l.Begin()
				txWrites = nil
			}
		}
		// Crash with the final tx in flight (records flushed).
		l.Flush()
		h := newMemHandler()
		for k, v := range model {
			h.page(k)[0] = v
		}
		// Apply the in-flight writes to the "pages" as a running system
		// would have (they are volatile here, but undo must handle them
		// after redo repeats history).
		if _, err := l.Recover(h); err != nil {
			return false
		}
		for k, v := range model {
			if h.page(k)[0] != v {
				return false
			}
		}
		for k := range scratch {
			if _, committed := model[k]; !committed && h.page(k)[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
