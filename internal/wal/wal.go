// Package wal implements write-ahead logging with redo and undo
// information on NVM.
//
// The paper (§2.3) uses the same textbook logging scheme in every evaluated
// storage engine so that only the storage layout differs: before-and-after
// images are appended to an NVM-resident log, a transaction commits by
// flushing the log tail (clwb + sfence in hardware, Device.Flush here), and
// an ARIES-style restart first repeats history from the redo images and
// then rolls back loser transactions from the undo images.
//
// Each record carries a monotonically increasing LSN. Storage engines keep
// the LSN of the last applied record in each page header, so redo is
// idempotent: a record is reapplied only when its LSN is newer than the
// page's.
//
// The log occupies a fixed region of the simulated NVM device. It is
// append-only until Truncate, which callers invoke once all logged
// changes are known to be durable elsewhere: the engine after a full
// checkpoint, the incremental-maintenance path when a write-back round
// leaves the page pool clean (both the background maintainer and the
// inline pacing fallback end their drains this way), and — in the
// NVM-direct architecture — every commit, because there the tuples
// themselves are flushed before the transaction finishes.
//
// Replication invariant: once the log has a ship hook (SetShip),
// Truncate must never discard a record that has not yet been handed to
// it — the record would silently vanish from the replication stream.
// Truncate therefore consults the retention watermark installed by
// SetRetain (the lowest LSN not yet shipped) and becomes a counted
// no-op while such a record is still resident. Records that HAVE
// shipped are retained by the replication layer in its own memory, so
// replica progress never pins the log region: checkpoint truncation
// proceeds under replication exactly as without it, and a replica that
// falls too far behind re-bootstraps from a snapshot. The ship hook
// delivers records strictly after the flush that made them durable, so
// a subscriber can never observe a record the primary could still
// lose — the ack⇒durable contract extends to the replication stream.
// The watermark binds every Truncate caller alike, not just the
// checkpoint: a maintenance drain that finds unshipped records resident
// simply keeps the log and retries on a later round.
//
// A Log is not safe for concurrent use, matching the single-threaded
// engines in this reproduction.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"nvmstore/internal/fault"
	"nvmstore/internal/nvm"
	"nvmstore/internal/obs"
	"nvmstore/internal/simclock"
)

// TxID identifies a transaction. Zero is never a valid transaction id.
type TxID uint64

// LSN is a log sequence number; LSNs increase strictly monotonically
// across the life of the log, surviving truncation.
type LSN uint64

// Record types.
const (
	recUpdate byte = 1
	recCommit byte = 2
	recAbort  byte = 3
)

// Exported record kinds, as reported in Record.Kind by the ship hook
// (SetShip) and by Recover. RecUpdate records carry before/after images;
// RecCommit and RecAbort are transaction marks with no images.
const (
	RecUpdate = recUpdate
	RecCommit = recCommit
	RecAbort  = recAbort
)

// ErrLogFull is returned when the log region cannot hold another record;
// the engine must checkpoint and truncate.
var ErrLogFull = errors.New("wal: log region full")

// Record is one decoded log record.
type Record struct {
	// Kind is RecUpdate, RecCommit, or RecAbort. Recovery hands only
	// RecUpdate records to the Handler; the ship hook delivers all three
	// so subscribers see transaction boundaries.
	Kind byte
	LSN  LSN
	Tx   TxID
	// Update records carry the page id, byte offset, and the before and
	// after images.
	PID    uint64
	Off    int
	Before []byte
	After  []byte
}

// Handler receives records during recovery. Redo is called for every
// update record in log order (repeating history); Undo is called for the
// update records of loser transactions in reverse order.
type Handler interface {
	Redo(r Record) error
	Undo(r Record) error
}

// RecoveryStats summarizes a Recover run.
type RecoveryStats struct {
	Records   int
	Committed int
	// Aborted counts transactions with an abort record: their log
	// already contains the compensating operations, so they are redone
	// but not undone.
	Aborted int
	// Losers counts in-flight transactions (neither commit nor abort
	// record), which the undo phase rolls back.
	Losers int
	Redone int
	Undone int
	// TornTail reports that the scan stopped at a torn log tail — bytes
	// past the durable prefix that a crash left behind — rather than at
	// a clean sentinel. Expected after any mid-flush crash; the torn
	// bytes are overwritten by subsequent appends.
	TornTail bool
}

// Log is a write-ahead log on a region of a simulated NVM device.
type Log struct {
	dev  *nvm.Device
	off  int64
	size int64

	head      int64 // append position relative to off
	flushedTo int64 // durable prefix relative to off

	nextLSN LSN
	nextTx  TxID

	stats Stats
	// unflushedCommits counts commit records appended since the last
	// flush; the next flush makes them all durable at once.
	unflushedCommits int64

	// scratch is the reusable record-encoding buffer: the device copies
	// the payload on WriteAt, so no record survives its append and one
	// buffer serves every Update/mark on the hot path (a Log is
	// single-threaded by contract).
	scratch []byte

	rec obs.Recorder
	clk *simclock.Clock

	faults *fault.Injector

	// durable is the highest LSN the device has flushed; records at or
	// below it survive any crash.
	durable LSN
	// ship, when set, receives every record after the flush that made it
	// durable; pending buffers owned copies between append and flush.
	ship    func([]Record)
	pending []Record
	// retain, when set, returns the lowest LSN not yet handed to the
	// ship hook; Truncate is a counted no-op while that LSN is still
	// resident.
	retain func() LSN
}

// SetShip installs the replication tap: after every successful Flush, fn
// receives owned copies (images included) of the records that flush made
// durable, in append order, while the caller of Flush still holds the
// shard's lock. Records appended but crashed before their flush are
// never delivered, so subscribers only ever see the durable prefix. A
// nil fn removes the tap and drops any records buffered for it.
func (l *Log) SetShip(fn func([]Record)) {
	l.ship = fn
	if fn == nil {
		l.pending = nil
	}
}

// SetRetain installs the replication retention watermark: fn returns
// the lowest LSN the log must keep resident — the first record not yet
// handed to the ship hook (shipped records are the replication layer's
// to retain; they never pin the log). Truncate keeps the log intact
// (counting Stats.TruncateSkips) while fn's LSN is at most the highest
// appended LSN. A nil fn removes the guard.
func (l *Log) SetRetain(fn func() LSN) { l.retain = fn }

// DurableLSN returns the highest LSN made durable by a flush; 0 before
// the first flush. Acked transactions have commit LSNs at or below it.
func (l *Log) DurableLSN() LSN { return l.durable }

// SetFaults installs a fault injector: fault.WALAppendError makes
// appends fail with an injected *fault.Error, and fault.WALFlushCrash
// tears the flush of the log tail — a durable prefix of the unflushed
// bytes followed by a fault.Crash panic, the log-device version of a
// power failure between clwbs. A nil injector disables injection.
func (l *Log) SetFaults(in *fault.Injector) { l.faults = in }

// SetRecorder installs an observability recorder, charging flush time to
// obs.OpWALFlush (measured on clk, the engine's virtual clock) and
// counting appended records under obs.OpWALAppend. Appends record zero
// latency by design: WriteAt models a store into the CPU cache, and the
// NVM cost is paid at flush time. A nil recorder disables recording.
func (l *Log) SetRecorder(r obs.Recorder, clk *simclock.Clock) {
	l.rec = r
	l.clk = clk
}

// Stats counts log activity.
//
// Commits counts transactions whose commit record was appended, whether
// by Commit (flushes immediately) or CommitNoFlush (group commit: the
// record becomes durable at the next flush of the tail). Flushes counts
// physical tail flushes from any path — commits, aborts, the page
// write-back barrier, and explicit FlushTail calls. Without group commit
// every commit performs its own flush and Commits ≤ Flushes; under group
// commit many commits share one flush and Commits can exceed Flushes
// arbitrarily. The ratio of the two is the amortization factor group
// commit achieves.
type Stats struct {
	Records   int64
	Commits   int64
	Aborts    int64
	Flushes   int64
	Truncates int64
	// TruncateSkips counts Truncate calls refused by the replication
	// retention watermark (SetRetain): a record not yet handed to the
	// ship hook was still resident, so the log was kept.
	TruncateSkips int64
}

// OpsPerFlush returns Commits/Flushes, the average number of committed
// transactions each physical log-tail flush made durable — the
// flush-amortization factor of group commit. It returns 0 when no flush
// has happened. Values below 1 are possible without group commit because
// non-commit paths (aborts, the write-back barrier) also flush.
func (s Stats) OpsPerFlush() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Flushes)
}

const (
	prefixSize = 8 // size + crc
	updateHdr  = 1 + 8 + 8 + 8 + 4 + 4 + 4
	markHdr    = 1 + 8 + 8
)

// New creates a log over [off, off+size) of dev. The region is assumed to
// be either fresh or left over from a previous run; call Recover to replay
// it, or Truncate to discard it.
func New(dev *nvm.Device, off, size int64) *Log {
	if size < 4096 {
		panic(fmt.Sprintf("wal: log region of %d bytes is too small", size))
	}
	return &Log{dev: dev, off: off, size: size, nextLSN: 1, nextTx: 1}
}

// Begin starts a transaction. Begin writes nothing: a transaction exists
// in the log only once its first update record does.
func (l *Log) Begin() TxID {
	tx := l.nextTx
	l.nextTx++
	return tx
}

// Update appends a redo/undo record for a modification of page pid at byte
// offset pageOff: before and after are the undo and redo images (they may
// have different lengths; an insert has an empty before image). The record
// is not durable until Flush, Commit, or Abort.
func (l *Log) Update(tx TxID, pid uint64, pageOff int, before, after []byte) (LSN, error) {
	nb, na := len(before), len(after)
	payload := l.buf(updateHdr + nb + na)
	payload[0] = recUpdate
	lsn := l.nextLSN
	binary.LittleEndian.PutUint64(payload[1:], uint64(lsn))
	binary.LittleEndian.PutUint64(payload[9:], uint64(tx))
	binary.LittleEndian.PutUint64(payload[17:], pid)
	binary.LittleEndian.PutUint32(payload[25:], uint32(pageOff))
	binary.LittleEndian.PutUint32(payload[29:], uint32(nb))
	binary.LittleEndian.PutUint32(payload[33:], uint32(na))
	copy(payload[37:], before)
	copy(payload[37+nb:], after)
	if err := l.append(payload); err != nil {
		return 0, err
	}
	if l.ship != nil {
		// Owned copies: payload is the reusable scratch buffer and the
		// caller's images may be overwritten after we return.
		img := make([]byte, nb+na)
		copy(img, before)
		copy(img[nb:], after)
		l.pending = append(l.pending, Record{
			Kind: recUpdate, LSN: lsn, Tx: tx, PID: pid, Off: pageOff,
			Before: img[:nb:nb], After: img[nb:],
		})
	}
	l.nextLSN++
	l.stats.Records++
	return lsn, nil
}

// Commit appends a commit record and flushes the log tail, making the
// transaction durable.
func (l *Log) Commit(tx TxID) error {
	if err := l.mark(recCommit, tx); err != nil {
		return err
	}
	l.unflushedCommits++
	l.stats.Commits++
	l.Flush()
	return nil
}

// CommitNoFlush appends a commit record without flushing the log tail.
// The transaction is NOT durable until the next Flush or FlushTail; a
// crash before then loses it, and recovery rolls it back like any loser.
// Callers implementing group commit must therefore not acknowledge the
// transaction before flushing. Counted in Stats.Commits immediately.
func (l *Log) CommitNoFlush(tx TxID) error {
	if err := l.mark(recCommit, tx); err != nil {
		return err
	}
	l.unflushedCommits++
	l.stats.Commits++
	return nil
}

// FlushTail flushes the log tail and returns how many commit records the
// flush made durable — the batch size of this group commit. It returns 0
// without flushing when the tail is already durable.
//
// FlushTail is the fault.WALGroupCrash site: when at least one commit is
// pending, an armed injector can crash *before* the flush — the power
// failure between a batch's last commit record and the coalesced persist
// barrier. Every pending commit is torn off the log and recovery rolls
// the transactions back; group-commit callers must not have acknowledged
// them yet.
func (l *Log) FlushTail() int64 {
	n := l.unflushedCommits
	if n > 0 {
		if dec := l.faults.Check(fault.WALGroupCrash); dec.Fire {
			panic(fault.Crash{Kind: fault.WALGroupCrash, Site: "wal.groupflush"})
		}
	}
	l.Flush()
	return n
}

// UnflushedCommits returns the number of commit records appended since
// the last flush — the transactions that would be lost by a crash now.
func (l *Log) UnflushedCommits() int64 { return l.unflushedCommits }

// Abort appends an abort record. The caller must have undone the
// transaction's changes and logged the compensating operations first
// (CLR-style): recovery redoes an aborted transaction's records — original
// operations and compensations, netting out — and never undoes them, so a
// later transaction's changes to the same keys cannot be clobbered.
func (l *Log) Abort(tx TxID) error {
	if err := l.mark(recAbort, tx); err != nil {
		return err
	}
	l.Flush()
	l.stats.Aborts++
	return nil
}

// buf returns the scratch buffer resized to n bytes.
func (l *Log) buf(n int) []byte {
	if cap(l.scratch) < n {
		l.scratch = make([]byte, n)
	}
	return l.scratch[:n]
}

func (l *Log) mark(kind byte, tx TxID) error {
	payload := l.buf(markHdr)
	payload[0] = kind
	binary.LittleEndian.PutUint64(payload[1:], uint64(l.nextLSN))
	binary.LittleEndian.PutUint64(payload[9:], uint64(tx))
	if err := l.append(payload); err != nil {
		return err
	}
	if l.ship != nil {
		l.pending = append(l.pending, Record{Kind: kind, LSN: l.nextLSN, Tx: tx})
	}
	l.nextLSN++
	l.stats.Records++
	return nil
}

// append writes a length-and-checksum-prefixed record at the head plus a
// zero sentinel behind it, without flushing.
func (l *Log) append(payload []byte) error {
	need := int64(prefixSize+len(payload)) + 4 // record + sentinel
	if l.head+need > l.size {
		return fmt.Errorf("wal: record of %d bytes at offset %d: %w", len(payload), l.head, ErrLogFull)
	}
	if dec := l.faults.Check(fault.WALAppendError); dec.Fire {
		return &fault.Error{Kind: fault.WALAppendError, Site: "wal.append", Attempt: 1, Permanent: dec.Transient <= 0}
	}
	var prefix [prefixSize]byte
	binary.LittleEndian.PutUint32(prefix[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(prefix[4:], crc32.ChecksumIEEE(payload))
	l.dev.WriteAt(prefix[:], l.off+l.head)
	l.dev.WriteAt(payload, l.off+l.head+prefixSize)
	l.head += prefixSize + int64(len(payload))
	var sentinel [4]byte
	l.dev.WriteAt(sentinel[:], l.off+l.head)
	if l.rec != nil {
		l.rec.Latency(obs.OpWALAppend, 0)
	}
	return nil
}

// Flush makes all appended records durable. On commit this is the paper's
// clwb of the log entry's cache lines followed by an sfence.
func (l *Log) Flush() {
	if l.head == l.flushedTo {
		return
	}
	if dec := l.faults.Check(fault.WALFlushCrash); dec.Fire {
		// Tear the flush: a prefix of the unflushed tail reaches the
		// medium, then the power fails. Recover sees the durable prefix
		// (whole records replay; a partial record fails its CRC) and
		// treats the rest as torn tail.
		if partial := int(dec.Frac * float64(l.head-l.flushedTo)); partial > 0 {
			l.dev.Flush(l.off+l.flushedTo, partial)
		}
		panic(fault.Crash{Kind: fault.WALFlushCrash, Site: "wal.flush"})
	}
	var t0 int64
	if l.rec != nil {
		t0 = l.clk.Ns()
	}
	l.dev.Flush(l.off+l.flushedTo, int(l.head-l.flushedTo)+4)
	if l.rec != nil {
		l.rec.Latency(obs.OpWALFlush, l.clk.Ns()-t0)
		if l.unflushedCommits > 0 {
			// The ops-per-flush distribution: value is a commit count,
			// not nanoseconds (see obs.OpWALBatch).
			l.rec.Latency(obs.OpWALBatch, l.unflushedCommits)
		}
	}
	l.unflushedCommits = 0
	l.flushedTo = l.head
	l.stats.Flushes++
	l.durable = l.nextLSN - 1
	if l.ship != nil && len(l.pending) > 0 {
		batch := l.pending
		l.pending = nil
		l.ship(batch)
	}
}

// Truncate discards the whole log and returns the highest LSN it
// discarded (the LSNs keep counting up afterwards). Callers — the
// engine's full checkpoint, the incremental-maintenance drain when the
// page pool comes up clean, the NVM-direct commit path — must guarantee
// that every logged change is durable elsewhere first. When a retention
// watermark is installed (SetRetain) and a record not yet handed to the
// ship hook is still resident, Truncate keeps the log, increments
// Stats.TruncateSkips, and returns 0; the zero return is how the
// maintenance path learns the drain was refused and must retry later.
func (l *Log) Truncate() LSN {
	if l.retain != nil {
		if keep := l.retain(); keep < l.nextLSN {
			l.stats.TruncateSkips++
			return 0
		}
	}
	var sentinel [4]byte
	l.dev.Persist(sentinel[:], l.off)
	l.head = 0
	l.flushedTo = 0
	l.unflushedCommits = 0
	l.pending = nil
	l.stats.Truncates++
	return l.nextLSN - 1
}

// Bytes returns the current size of the log contents.
func (l *Log) Bytes() int64 { return l.head }

// Capacity returns the size of the log region.
func (l *Log) Capacity() int64 { return l.size }

// Stats returns a snapshot of the activity counters.
func (l *Log) Stats() Stats { return l.stats }

// Recover scans the log, repeats history through h.Redo, rolls back loser
// transactions through h.Undo, and positions the log for new appends after
// the scanned records. A torn record at the tail (incomplete size prefix
// or checksum mismatch) cleanly terminates the scan: it can only belong to
// a transaction whose commit record was never flushed.
//
// Distinguishing a torn tail from true corruption is subtle, because the
// log region is not erased on Truncate (only a 4-byte sentinel is
// persisted at the start) and a crash can tear a flush at any cache-line
// boundary. The durable prefix can therefore end in *stale* bytes: a
// complete, CRC-valid record from an earlier log generation whose lines
// were never overwritten — for example when a record of the new
// generation ends exactly on a line boundary and the crash lost the line
// carrying its sentinel. The scan tells the cases apart by two rules and
// stops (rather than failing) only when the tail explanation holds:
//
//   - LSNs are strictly monotonic in append order and survive
//     truncation, so a CRC-valid record whose LSN does not exceed every
//     LSN before it must be stale: torn tail, stop.
//   - A CRC-valid record with an unknown type byte (or an impossible
//     size) was never written by this WAL. If a valid successor record
//     follows it, the bytes sit *mid-log* where no crash can place
//     garbage — that is true corruption and recovery fails loudly
//     instead of silently dropping committed records. With no valid
//     successor it is the last blob before the durable frontier, where
//     accidental CRC coincidences on torn bytes are the only remaining
//     explanation: torn tail, stop.
func (l *Log) Recover(h Handler) (RecoveryStats, error) {
	var (
		records   []Record
		committed = make(map[TxID]bool)
		aborted   = make(map[TxID]bool)
		seen      = make(map[TxID]bool)
		stats     RecoveryStats
		pos       int64
		maxLSN    LSN
		maxTx     TxID
	)
scan:
	for pos+prefixSize <= l.size {
		var prefix [prefixSize]byte
		l.dev.ReadAt(prefix[:], l.off+pos)
		n := int64(binary.LittleEndian.Uint32(prefix[0:]))
		if n == 0 {
			break // clean end of log: the sentinel
		}
		if pos+prefixSize+n > l.size {
			stats.TornTail = true // size prefix pointing outside the region
			break
		}
		payload := make([]byte, n)
		l.dev.ReadAt(payload, l.off+pos+prefixSize)
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(prefix[4:]) {
			stats.TornTail = true
			break
		}
		kind := payload[0]
		if n < markHdr || (kind != recUpdate && kind != recCommit && kind != recAbort) {
			if l.validSuccessor(pos+prefixSize+n, maxLSN) {
				return stats, fmt.Errorf("wal: corrupt record (type %d, %d bytes) mid-log at %d", kind, n, pos)
			}
			stats.TornTail = true
			break
		}
		lsn := LSN(binary.LittleEndian.Uint64(payload[1:]))
		tx := TxID(binary.LittleEndian.Uint64(payload[9:]))
		if lsn <= maxLSN {
			// Stale: a record from before the last truncation, re-exposed
			// because the lines that would have overwritten or ended the
			// log here never became durable.
			stats.TornTail = true
			break
		}
		maxLSN = lsn
		if tx > maxTx {
			maxTx = tx
		}
		switch kind {
		case recUpdate:
			if n < updateHdr {
				if l.validSuccessor(pos+prefixSize+n, maxLSN) {
					return stats, fmt.Errorf("wal: truncated update record at %d", pos)
				}
				stats.TornTail = true
				break scan
			}
			pid := binary.LittleEndian.Uint64(payload[17:])
			pageOff := int(binary.LittleEndian.Uint32(payload[25:]))
			nb := int(binary.LittleEndian.Uint32(payload[29:]))
			na := int(binary.LittleEndian.Uint32(payload[33:]))
			if int64(updateHdr+nb+na) != n {
				return stats, fmt.Errorf("wal: corrupt update record at %d", pos)
			}
			records = append(records, Record{
				Kind:   recUpdate,
				LSN:    lsn,
				Tx:     tx,
				PID:    pid,
				Off:    pageOff,
				Before: payload[37 : 37+nb],
				After:  payload[37+nb : 37+nb+na],
			})
		case recCommit:
			committed[tx] = true
		case recAbort:
			aborted[tx] = true
		}
		seen[tx] = true
		pos += prefixSize + n
	}

	stats.Records = len(records)
	for tx := range seen {
		switch {
		case committed[tx]:
			stats.Committed++
		case aborted[tx]:
			stats.Aborted++
		default:
			stats.Losers++
		}
	}

	// Redo phase: repeat history in log order.
	for _, r := range records {
		if err := h.Redo(r); err != nil {
			return stats, fmt.Errorf("wal: redo lsn %d: %w", r.LSN, err)
		}
		stats.Redone++
	}
	// Undo phase: roll back in-flight losers in reverse order. Aborted
	// transactions are skipped: their compensations were redone above.
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		if committed[r.Tx] || aborted[r.Tx] {
			continue
		}
		if err := h.Undo(r); err != nil {
			return stats, fmt.Errorf("wal: undo lsn %d: %w", r.LSN, err)
		}
		stats.Undone++
	}

	l.head = pos
	l.flushedTo = pos
	l.unflushedCommits = 0
	l.pending = nil // never-shipped appends died with the crash
	l.nextLSN = maxLSN + 1
	l.nextTx = maxTx + 1
	l.durable = maxLSN
	return stats, nil
}

// validSuccessor reports whether a well-formed record of the current log
// generation (known type, valid CRC, LSN past maxLSN) starts at pos. A
// valid successor proves that the bytes *before* pos sit mid-log, which
// rules out the torn-tail explanation for them: crashes only damage the
// frontier of the durable prefix, never bytes the log appended over.
func (l *Log) validSuccessor(pos int64, maxLSN LSN) bool {
	if pos+prefixSize > l.size {
		return false
	}
	var prefix [prefixSize]byte
	l.dev.ReadAt(prefix[:], l.off+pos)
	n := int64(binary.LittleEndian.Uint32(prefix[0:]))
	if n < markHdr || pos+prefixSize+n > l.size {
		return false
	}
	payload := make([]byte, n)
	l.dev.ReadAt(payload, l.off+pos+prefixSize)
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(prefix[4:]) {
		return false
	}
	kind := payload[0]
	if kind != recUpdate && kind != recCommit && kind != recAbort {
		return false
	}
	return LSN(binary.LittleEndian.Uint64(payload[1:])) > maxLSN
}
