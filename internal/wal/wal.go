// Package wal implements write-ahead logging with redo and undo
// information on NVM.
//
// The paper (§2.3) uses the same textbook logging scheme in every evaluated
// storage engine so that only the storage layout differs: before-and-after
// images are appended to an NVM-resident log, a transaction commits by
// flushing the log tail (clwb + sfence in hardware, Device.Flush here), and
// an ARIES-style restart first repeats history from the redo images and
// then rolls back loser transactions from the undo images.
//
// Each record carries a monotonically increasing LSN. Storage engines keep
// the LSN of the last applied record in each page header, so redo is
// idempotent: a record is reapplied only when its LSN is newer than the
// page's.
//
// The log occupies a fixed region of the simulated NVM device. It is
// append-only until Truncate, which the engine calls once all logged
// changes are known to be durable elsewhere (after a checkpoint, or — in
// the NVM-direct architecture — after every commit, because there the
// tuples themselves are flushed before the transaction finishes).
//
// A Log is not safe for concurrent use, matching the single-threaded
// engines in this reproduction.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"nvmstore/internal/nvm"
	"nvmstore/internal/obs"
	"nvmstore/internal/simclock"
)

// TxID identifies a transaction. Zero is never a valid transaction id.
type TxID uint64

// LSN is a log sequence number; LSNs increase strictly monotonically
// across the life of the log, surviving truncation.
type LSN uint64

// Record types.
const (
	recUpdate byte = 1
	recCommit byte = 2
	recAbort  byte = 3
)

// ErrLogFull is returned when the log region cannot hold another record;
// the engine must checkpoint and truncate.
var ErrLogFull = errors.New("wal: log region full")

// Record is one decoded log record.
type Record struct {
	LSN LSN
	Tx  TxID
	// Update records carry the page id, byte offset, and the before and
	// after images.
	PID    uint64
	Off    int
	Before []byte
	After  []byte
}

// Handler receives records during recovery. Redo is called for every
// update record in log order (repeating history); Undo is called for the
// update records of loser transactions in reverse order.
type Handler interface {
	Redo(r Record) error
	Undo(r Record) error
}

// RecoveryStats summarizes a Recover run.
type RecoveryStats struct {
	Records   int
	Committed int
	// Aborted counts transactions with an abort record: their log
	// already contains the compensating operations, so they are redone
	// but not undone.
	Aborted int
	// Losers counts in-flight transactions (neither commit nor abort
	// record), which the undo phase rolls back.
	Losers int
	Redone int
	Undone int
}

// Log is a write-ahead log on a region of a simulated NVM device.
type Log struct {
	dev  *nvm.Device
	off  int64
	size int64

	head      int64 // append position relative to off
	flushedTo int64 // durable prefix relative to off

	nextLSN LSN
	nextTx  TxID

	stats Stats

	rec obs.Recorder
	clk *simclock.Clock
}

// SetRecorder installs an observability recorder, charging flush time to
// obs.OpWALFlush (measured on clk, the engine's virtual clock) and
// counting appended records under obs.OpWALAppend. Appends record zero
// latency by design: WriteAt models a store into the CPU cache, and the
// NVM cost is paid at flush time. A nil recorder disables recording.
func (l *Log) SetRecorder(r obs.Recorder, clk *simclock.Clock) {
	l.rec = r
	l.clk = clk
}

// Stats counts log activity.
type Stats struct {
	Records   int64
	Commits   int64
	Aborts    int64
	Flushes   int64
	Truncates int64
}

const (
	prefixSize = 8 // size + crc
	updateHdr  = 1 + 8 + 8 + 8 + 4 + 4 + 4
	markHdr    = 1 + 8 + 8
)

// New creates a log over [off, off+size) of dev. The region is assumed to
// be either fresh or left over from a previous run; call Recover to replay
// it, or Truncate to discard it.
func New(dev *nvm.Device, off, size int64) *Log {
	if size < 4096 {
		panic(fmt.Sprintf("wal: log region of %d bytes is too small", size))
	}
	return &Log{dev: dev, off: off, size: size, nextLSN: 1, nextTx: 1}
}

// Begin starts a transaction. Begin writes nothing: a transaction exists
// in the log only once its first update record does.
func (l *Log) Begin() TxID {
	tx := l.nextTx
	l.nextTx++
	return tx
}

// Update appends a redo/undo record for a modification of page pid at byte
// offset pageOff: before and after are the undo and redo images (they may
// have different lengths; an insert has an empty before image). The record
// is not durable until Flush, Commit, or Abort.
func (l *Log) Update(tx TxID, pid uint64, pageOff int, before, after []byte) (LSN, error) {
	nb, na := len(before), len(after)
	payload := make([]byte, updateHdr+nb+na)
	payload[0] = recUpdate
	lsn := l.nextLSN
	binary.LittleEndian.PutUint64(payload[1:], uint64(lsn))
	binary.LittleEndian.PutUint64(payload[9:], uint64(tx))
	binary.LittleEndian.PutUint64(payload[17:], pid)
	binary.LittleEndian.PutUint32(payload[25:], uint32(pageOff))
	binary.LittleEndian.PutUint32(payload[29:], uint32(nb))
	binary.LittleEndian.PutUint32(payload[33:], uint32(na))
	copy(payload[37:], before)
	copy(payload[37+nb:], after)
	if err := l.append(payload); err != nil {
		return 0, err
	}
	l.nextLSN++
	l.stats.Records++
	return lsn, nil
}

// Commit appends a commit record and flushes the log tail, making the
// transaction durable.
func (l *Log) Commit(tx TxID) error {
	if err := l.mark(recCommit, tx); err != nil {
		return err
	}
	l.Flush()
	l.stats.Commits++
	return nil
}

// Abort appends an abort record. The caller must have undone the
// transaction's changes and logged the compensating operations first
// (CLR-style): recovery redoes an aborted transaction's records — original
// operations and compensations, netting out — and never undoes them, so a
// later transaction's changes to the same keys cannot be clobbered.
func (l *Log) Abort(tx TxID) error {
	if err := l.mark(recAbort, tx); err != nil {
		return err
	}
	l.Flush()
	l.stats.Aborts++
	return nil
}

func (l *Log) mark(kind byte, tx TxID) error {
	payload := make([]byte, markHdr)
	payload[0] = kind
	binary.LittleEndian.PutUint64(payload[1:], uint64(l.nextLSN))
	binary.LittleEndian.PutUint64(payload[9:], uint64(tx))
	if err := l.append(payload); err != nil {
		return err
	}
	l.nextLSN++
	l.stats.Records++
	return nil
}

// append writes a length-and-checksum-prefixed record at the head plus a
// zero sentinel behind it, without flushing.
func (l *Log) append(payload []byte) error {
	need := int64(prefixSize+len(payload)) + 4 // record + sentinel
	if l.head+need > l.size {
		return fmt.Errorf("wal: record of %d bytes at offset %d: %w", len(payload), l.head, ErrLogFull)
	}
	var prefix [prefixSize]byte
	binary.LittleEndian.PutUint32(prefix[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(prefix[4:], crc32.ChecksumIEEE(payload))
	l.dev.WriteAt(prefix[:], l.off+l.head)
	l.dev.WriteAt(payload, l.off+l.head+prefixSize)
	l.head += prefixSize + int64(len(payload))
	var sentinel [4]byte
	l.dev.WriteAt(sentinel[:], l.off+l.head)
	if l.rec != nil {
		l.rec.Latency(obs.OpWALAppend, 0)
	}
	return nil
}

// Flush makes all appended records durable. On commit this is the paper's
// clwb of the log entry's cache lines followed by an sfence.
func (l *Log) Flush() {
	if l.head == l.flushedTo {
		return
	}
	var t0 int64
	if l.rec != nil {
		t0 = l.clk.Ns()
	}
	l.dev.Flush(l.off+l.flushedTo, int(l.head-l.flushedTo)+4)
	if l.rec != nil {
		l.rec.Latency(obs.OpWALFlush, l.clk.Ns()-t0)
	}
	l.flushedTo = l.head
	l.stats.Flushes++
}

// Truncate discards the whole log. Callers must guarantee that every
// logged change is durable elsewhere first.
func (l *Log) Truncate() {
	var sentinel [4]byte
	l.dev.Persist(sentinel[:], l.off)
	l.head = 0
	l.flushedTo = 0
	l.stats.Truncates++
}

// Bytes returns the current size of the log contents.
func (l *Log) Bytes() int64 { return l.head }

// Capacity returns the size of the log region.
func (l *Log) Capacity() int64 { return l.size }

// Stats returns a snapshot of the activity counters.
func (l *Log) Stats() Stats { return l.stats }

// Recover scans the log, repeats history through h.Redo, rolls back loser
// transactions through h.Undo, and positions the log for new appends after
// the scanned records. A torn record at the tail (incomplete size prefix
// or checksum mismatch) cleanly terminates the scan: it can only belong to
// a transaction whose commit record was never flushed.
func (l *Log) Recover(h Handler) (RecoveryStats, error) {
	var (
		records   []Record
		committed = make(map[TxID]bool)
		aborted   = make(map[TxID]bool)
		seen      = make(map[TxID]bool)
		stats     RecoveryStats
		pos       int64
		maxLSN    LSN
		maxTx     TxID
	)
	for pos+prefixSize <= l.size {
		var prefix [prefixSize]byte
		l.dev.ReadAt(prefix[:], l.off+pos)
		n := int64(binary.LittleEndian.Uint32(prefix[0:]))
		if n == 0 || pos+prefixSize+n > l.size {
			break
		}
		payload := make([]byte, n)
		l.dev.ReadAt(payload, l.off+pos+prefixSize)
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(prefix[4:]) {
			break // torn tail
		}
		kind := payload[0]
		lsn := LSN(binary.LittleEndian.Uint64(payload[1:]))
		tx := TxID(binary.LittleEndian.Uint64(payload[9:]))
		if lsn > maxLSN {
			maxLSN = lsn
		}
		if tx > maxTx {
			maxTx = tx
		}
		seen[tx] = true
		switch kind {
		case recUpdate:
			if n < updateHdr {
				return stats, fmt.Errorf("wal: truncated update record at %d", pos)
			}
			pid := binary.LittleEndian.Uint64(payload[17:])
			pageOff := int(binary.LittleEndian.Uint32(payload[25:]))
			nb := int(binary.LittleEndian.Uint32(payload[29:]))
			na := int(binary.LittleEndian.Uint32(payload[33:]))
			if int64(updateHdr+nb+na) != n {
				return stats, fmt.Errorf("wal: corrupt update record at %d", pos)
			}
			records = append(records, Record{
				LSN:    lsn,
				Tx:     tx,
				PID:    pid,
				Off:    pageOff,
				Before: payload[37 : 37+nb],
				After:  payload[37+nb : 37+nb+na],
			})
		case recCommit:
			committed[tx] = true
		case recAbort:
			aborted[tx] = true
		default:
			return stats, fmt.Errorf("wal: unknown record type %d at %d", kind, pos)
		}
		pos += prefixSize + n
	}

	stats.Records = len(records)
	for tx := range seen {
		switch {
		case committed[tx]:
			stats.Committed++
		case aborted[tx]:
			stats.Aborted++
		default:
			stats.Losers++
		}
	}

	// Redo phase: repeat history in log order.
	for _, r := range records {
		if err := h.Redo(r); err != nil {
			return stats, fmt.Errorf("wal: redo lsn %d: %w", r.LSN, err)
		}
		stats.Redone++
	}
	// Undo phase: roll back in-flight losers in reverse order. Aborted
	// transactions are skipped: their compensations were redone above.
	for i := len(records) - 1; i >= 0; i-- {
		r := records[i]
		if committed[r.Tx] || aborted[r.Tx] {
			continue
		}
		if err := h.Undo(r); err != nil {
			return stats, fmt.Errorf("wal: undo lsn %d: %w", r.LSN, err)
		}
		stats.Undone++
	}

	l.head = pos
	l.flushedTo = pos
	l.nextLSN = maxLSN + 1
	l.nextTx = maxTx + 1
	return stats, nil
}
