package wal

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"nvmstore/internal/fault"
	"nvmstore/internal/nvm"
)

// staleImages returns before/after images sized so that a whole record
// (prefix + payload) is exactly one 64-byte cache line: 8 + 37 + 9 + 10.
// Records then start and end on line boundaries, which is the geometry
// that lets a torn flush lose a sentinel line while keeping the record.
func staleImages() (before, after []byte) {
	return make([]byte, 9), make([]byte, 10)
}

// TestStaleRecordAfterTornFlushDetected reproduces the nastiest torn
// tail: after a truncation, a new record is appended over the old log
// and its lines are flushed, but the crash loses the line holding its
// trailing sentinel. The scan position then lands exactly on a complete,
// CRC-valid record of the *previous* generation. Recovery must not
// replay it — its stale LSN gives it away.
func TestStaleRecordAfterTornFlushDetected(t *testing.T) {
	l, dev := newTestLog(t, true)
	before, after := staleImages()

	// Generation 1: two one-line update records plus a commit mark, all
	// durable. LSNs 1, 2, 3.
	t1 := l.Begin()
	for i := 0; i < 2; i++ {
		if _, err := l.Update(t1, uint64(i+1), 0, before, after); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(t1); err != nil {
		t.Fatal(err)
	}
	l.Truncate()

	// Generation 2: one update record (LSN 4) over [0, 64). Its
	// sentinel lives in the next line — the line still holding
	// generation 1's second record. Tear the flush: persist the
	// record's line only, then power-fail.
	t2 := l.Begin()
	if _, err := l.Update(t2, 9, 0, before, after); err != nil {
		t.Fatal(err)
	}
	dev.Flush(0, 64)
	dev.Crash()

	var got []Record
	l2 := New(dev, 0, 1<<16)
	st, err := l2.Recover(recorderHandler{&got})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail {
		t.Fatal("stale record not flagged as torn tail")
	}
	// Only the generation-2 record replays; the stale generation-1
	// record at the scan position (LSN 2 ≤ 4) must be dropped.
	if len(got) != 1 || got[0].LSN != 4 || got[0].PID != 9 {
		t.Fatalf("replayed %+v, want only the LSN-4 record", got)
	}
	if st.Losers != 1 {
		t.Fatalf("stats = %+v, want the torn tx as loser", st)
	}
}

// rewriteKind corrupts the type byte of the record at pos and fixes up
// its CRC so the corruption is not detectable by checksum.
func rewriteKind(dev *nvm.Device, pos int64, kind byte) {
	var prefix [prefixSize]byte
	dev.ReadAt(prefix[:], pos)
	n := int(binary.LittleEndian.Uint32(prefix[0:]))
	payload := make([]byte, n)
	dev.ReadAt(payload, pos+prefixSize)
	payload[0] = kind
	binary.LittleEndian.PutUint32(prefix[4:], crc32.ChecksumIEEE(payload))
	dev.Persist(payload[:1], pos+prefixSize)
	dev.Persist(prefix[:], pos)
}

// TestUnknownTypeMidLogIsCorruption: a CRC-valid record with an unknown
// type byte followed by a valid successor cannot be a torn tail —
// crashes only damage the durable frontier. Recovery must fail loudly
// rather than silently drop the corrupt record and everything after it.
func TestUnknownTypeMidLogIsCorruption(t *testing.T) {
	l, dev := newTestLog(t, false)
	before, after := staleImages()
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, before, after); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update(tx, 2, 0, before, after); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	rewriteKind(dev, 0, 99)

	l2 := New(dev, 0, 1<<16)
	_, err := l2.Recover(newMemHandler())
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("err = %v, want mid-log corruption error", err)
	}
}

// TestUnknownTypeAtTailIsTorn: the same unknown-type blob with nothing
// valid after it is explainable as torn-tail bytes whose CRC happens to
// match; the scan stops there instead of failing recovery.
func TestUnknownTypeAtTailIsTorn(t *testing.T) {
	l, dev := newTestLog(t, false)
	before, after := staleImages()
	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, before, after); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Corrupt the *last* record (the commit mark) — nothing follows it.
	commitPos := int64(64) // record 1 occupies [0, 64)
	rewriteKind(dev, commitPos, 77)

	var got []Record
	l2 := New(dev, 0, 1<<16)
	st, err := l2.Recover(recorderHandler{&got})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail {
		t.Fatal("unknown-type tail not flagged torn")
	}
	// The update survives but its commit mark is gone: loser, undone.
	if len(got) != 1 || st.Losers != 1 {
		t.Fatalf("records=%d stats=%+v, want 1 record and 1 loser", len(got), st)
	}
}

// TestInjectedFlushCrashRecovers: an injected torn WAL flush
// (fault.WALFlushCrash) panics mid-commit; after the power failure the
// transaction must recover as either fully committed or fully absent.
func TestInjectedFlushCrashRecovers(t *testing.T) {
	l, dev := newTestLog(t, true)
	plan := &fault.Plan{Seed: 11, Rules: []fault.Rule{{Kind: fault.WALFlushCrash, EveryN: 1, Limit: 1}}}
	l.SetFaults(plan.Injector(0))

	tx := l.Begin()
	if _, err := l.Update(tx, 1, 0, []byte("aaaa"), []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if _, ok := fault.AsCrash(recover()); !ok {
				t.Fatal("commit did not crash")
			}
		}()
		_ = l.Commit(tx)
	}()
	dev.Crash()

	h := newMemHandler()
	copy(h.page(1), "aaaa")
	l2 := New(dev, 0, 1<<16)
	st, err := l2.Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 && string(h.page(1)[:4]) != "bbbb" {
		t.Fatalf("commit counted but not replayed: %+v", st)
	}
	if st.Committed == 0 && string(h.page(1)[:4]) != "aaaa" {
		t.Fatalf("uncommitted tx leaked: page=%q stats=%+v", h.page(1)[:4], st)
	}
}

// TestInjectedAppendError: fault.WALAppendError surfaces as a
// classifiable *fault.Error without advancing the log.
func TestInjectedAppendError(t *testing.T) {
	l, _ := newTestLog(t, false)
	plan := &fault.Plan{Seed: 3, Rules: []fault.Rule{{Kind: fault.WALAppendError, EveryN: 1, Limit: 1, Transient: 1}}}
	l.SetFaults(plan.Injector(0))

	tx := l.Begin()
	_, err := l.Update(tx, 1, 0, []byte("x"), []byte("y"))
	if err == nil {
		t.Fatal("append did not fail")
	}
	if fault.Classify(err) != fault.ClassTransient {
		t.Fatalf("err %v classified fatal, want transient", err)
	}
	if l.Bytes() != 0 {
		t.Fatalf("failed append advanced the log to %d bytes", l.Bytes())
	}
	// The limit is spent: the retry succeeds.
	if _, err := l.Update(tx, 1, 0, []byte("x"), []byte("y")); err != nil {
		t.Fatal(err)
	}
}
