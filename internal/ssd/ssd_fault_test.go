package ssd

import (
	"testing"
	"time"

	"nvmstore/internal/fault"
	"nvmstore/internal/simclock"
)

func newFaultDevice(rules ...fault.Rule) (*Device, *simclock.Clock) {
	clk := &simclock.Clock{}
	d := New(DefaultConfig(4096, 128), clk)
	d.SetFaults((&fault.Plan{Seed: 21, Rules: rules}).Injector(0))
	return d, clk
}

// TestTransientReadRetried: a transient read fault is absorbed by the
// device's retry loop, charging doubling backoff to the simulated clock.
func TestTransientReadRetried(t *testing.T) {
	d, clk := newFaultDevice(fault.Rule{Kind: fault.SSDReadError, EveryN: 1, Limit: 1, Transient: 2})
	page := make([]byte, 4096)
	d.WritePage(3, page)
	base := clk.Ns()
	d.ReadPage(3, page) // faulted: 2 attempts fail, third succeeds
	st := d.Stats()
	if st.Faults != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 fault and 2 retries", st)
	}
	// Read latency plus 50 µs + 100 µs of backoff.
	want := int64(d.Config().ReadLatency + 150*time.Microsecond)
	if got := clk.Ns() - base; got != want {
		t.Fatalf("charged %d ns, want %d", got, want)
	}
	if st.PagesRead != 1 {
		t.Fatalf("PagesRead = %d, want 1", st.PagesRead)
	}
}

// TestPermanentWriteFails: a permanent write fault exhausts no retries
// and panics with fault.Crash — the engine above treats it as a dead
// drive.
func TestPermanentWriteFails(t *testing.T) {
	d, _ := newFaultDevice(fault.Rule{Kind: fault.SSDWriteError, EveryN: 1, Limit: 1})
	defer func() {
		c, ok := fault.AsCrash(recover())
		if !ok || c.Kind != fault.SSDWriteError {
			t.Fatalf("recover() = %v, want SSDWriteError crash", c)
		}
	}()
	d.WritePage(0, make([]byte, 4096))
}

// TestRetryBudgetExhausted: a transient fault longer than MaxRetries is
// reclassified as fatal.
func TestRetryBudgetExhausted(t *testing.T) {
	clk := &simclock.Clock{}
	cfg := DefaultConfig(4096, 128)
	cfg.MaxRetries = 2
	d := New(cfg, clk)
	d.SetFaults((&fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.SSDReadError, EveryN: 1, Limit: 1, Transient: 10},
	}}).Injector(0))
	defer func() {
		if _, ok := fault.AsCrash(recover()); !ok {
			t.Fatal("exhausted retries did not crash")
		}
	}()
	d.ReadPage(0, make([]byte, 4096))
}

// TestStallCharged: an injected stall only costs simulated time.
func TestStallCharged(t *testing.T) {
	d, clk := newFaultDevice(fault.Rule{Kind: fault.SSDStall, EveryN: 1, Limit: 1, Stall: 5 * time.Millisecond})
	base := clk.Ns()
	d.ReadPage(0, make([]byte, 4096))
	want := int64(5*time.Millisecond + d.Config().ReadLatency)
	if got := clk.Ns() - base; got != want {
		t.Fatalf("charged %d ns, want %d", got, want)
	}
	if d.Stats().Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", d.Stats().Stalls)
	}
}
