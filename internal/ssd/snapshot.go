package ssd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

const snapshotMagic = 0x535344534e415031 // "SSDSNAP1"

// WriteSnapshot serializes the allocated pages (slots never written are
// omitted; they read back as zeroes either way).
func (d *Device) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [28]byte
	binary.LittleEndian.PutUint64(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(d.cfg.PageSize))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.cfg.Capacity))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(len(d.pages)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	slots := make([]int64, 0, len(d.pages))
	for slot := range d.pages {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })
	for _, slot := range slots {
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], uint64(slot))
		if _, err := bw.Write(sb[:]); err != nil {
			return err
		}
		if _, err := bw.Write(d.pages[slot]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a snapshot into this device, which must have the
// same page size and capacity.
func (d *Device) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("ssd: snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != snapshotMagic {
		return fmt.Errorf("ssd: bad snapshot magic")
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[8:]))
	capacity := int64(binary.LittleEndian.Uint64(hdr[12:]))
	count := int64(binary.LittleEndian.Uint64(hdr[20:]))
	if pageSize != d.cfg.PageSize || capacity != d.cfg.Capacity {
		return fmt.Errorf("ssd: snapshot geometry %d×%d does not match device %d×%d",
			capacity, pageSize, d.cfg.Capacity, d.cfg.PageSize)
	}
	d.pages = make(map[int64][]byte, count)
	for i := int64(0); i < count; i++ {
		var sb [8]byte
		if _, err := io.ReadFull(br, sb[:]); err != nil {
			return fmt.Errorf("ssd: snapshot slot: %w", err)
		}
		slot := int64(binary.LittleEndian.Uint64(sb[:]))
		if slot < 0 || slot >= capacity {
			return fmt.Errorf("ssd: snapshot slot %d out of range", slot)
		}
		page := make([]byte, pageSize)
		if _, err := io.ReadFull(br, page); err != nil {
			return fmt.Errorf("ssd: snapshot page: %w", err)
		}
		d.pages[slot] = page
	}
	return nil
}
