package ssd

import (
	"bytes"
	"testing"
	"time"

	"nvmstore/internal/simclock"
)

func testDevice(capacity int64) (*Device, *simclock.Clock) {
	clk := &simclock.Clock{}
	cfg := Config{
		PageSize:     256,
		Capacity:     capacity,
		ReadLatency:  100 * time.Microsecond,
		WriteLatency: 200 * time.Microsecond,
	}
	return New(cfg, clk), clk
}

func TestRoundTrip(t *testing.T) {
	d, _ := testDevice(8)
	page := make([]byte, 256)
	copy(page, "page three content")
	d.WritePage(3, page)

	got := make([]byte, 256)
	d.ReadPage(3, got)
	if !bytes.Equal(got, page) {
		t.Fatal("read back different content")
	}
}

func TestUnwrittenSlotReadsZeroes(t *testing.T) {
	d, _ := testDevice(8)
	got := make([]byte, 256)
	got[0] = 0xFF // ensure the device actually clears the buffer
	d.ReadPage(7, got)
	if !bytes.Equal(got, make([]byte, 256)) {
		t.Fatal("unwritten slot returned non-zero data")
	}
	if d.Written(7) {
		t.Fatal("Written(7) true for a slot that was only read")
	}
}

func TestLatencyCharged(t *testing.T) {
	d, clk := testDevice(8)
	page := make([]byte, 256)
	d.WritePage(0, page)
	if got, want := clk.Elapsed(), 200*time.Microsecond; got != want {
		t.Fatalf("write charged %v, want %v", got, want)
	}
	d.ReadPage(0, page)
	if got, want := clk.Elapsed(), 300*time.Microsecond; got != want {
		t.Fatalf("after read total %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	d, _ := testDevice(8)
	page := make([]byte, 256)
	d.WritePage(0, page)
	d.WritePage(1, page)
	d.ReadPage(0, page)
	st := d.Stats()
	if st.PagesWritten != 2 || st.PagesRead != 1 {
		t.Fatalf("stats = %+v, want 2 writes / 1 read", st)
	}
	if got := d.Allocated(); got != 2 {
		t.Fatalf("Allocated() = %d, want 2", got)
	}
	d.ResetStats()
	if st := d.Stats(); st.PagesRead != 0 || st.PagesWritten != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestOverwrite(t *testing.T) {
	d, _ := testDevice(4)
	p1 := bytes.Repeat([]byte{1}, 256)
	p2 := bytes.Repeat([]byte{2}, 256)
	d.WritePage(2, p1)
	d.WritePage(2, p2)
	got := make([]byte, 256)
	d.ReadPage(2, got)
	if !bytes.Equal(got, p2) {
		t.Fatal("overwrite not visible")
	}
	if d.Allocated() != 1 {
		t.Fatalf("Allocated() = %d after overwrite, want 1", d.Allocated())
	}
}

func TestWriteDoesNotAliasCaller(t *testing.T) {
	d, _ := testDevice(4)
	p := make([]byte, 256)
	p[0] = 1
	d.WritePage(0, p)
	p[0] = 99 // mutate caller's buffer after the write
	got := make([]byte, 256)
	d.ReadPage(0, got)
	if got[0] != 1 {
		t.Fatal("device aliased the caller's write buffer")
	}
}

func TestPanics(t *testing.T) {
	d, _ := testDevice(4)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"slot past capacity", func() { d.ReadPage(4, make([]byte, 256)) }},
		{"negative slot", func() { d.ReadPage(-1, make([]byte, 256)) }},
		{"short read buffer", func() { d.ReadPage(0, make([]byte, 100)) }},
		{"long write buffer", func() { d.WritePage(0, make([]byte, 300)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}
