// Package ssd simulates a block-oriented flash device.
//
// The simulation captures the two properties of SSDs that matter to the
// storage architectures in the reproduced paper: access is page-granular
// (a single tuple cannot be read without transferring the whole page), and
// the per-access latency is orders of magnitude above NVM (hundreds of
// microseconds versus hundreds of nanoseconds).
//
// Pages are allocated lazily, so a large configured capacity costs memory
// only for pages actually written. Latency is charged to a simclock.Clock
// rather than slept (see internal/simclock). The device is not safe for
// concurrent use.
package ssd

import (
	"fmt"
	"time"

	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/simclock"
)

// Config describes a simulated SSD.
type Config struct {
	// PageSize is the transfer unit in bytes.
	PageSize int
	// Capacity is the maximum number of pages the device holds.
	Capacity int64
	// ReadLatency is charged per page read.
	ReadLatency time.Duration
	// WriteLatency is charged per page write.
	WriteLatency time.Duration
	// MaxRetries bounds how many times a faulted page access is retried
	// before the failure is treated as fatal (default 4).
	MaxRetries int
	// RetryBackoff is the simulated delay charged before the first
	// retry; it doubles per attempt (default 50 µs).
	RetryBackoff time.Duration
}

// DefaultConfig returns the SSD configuration used by the reproduction: the
// paper quotes "hundreds of microseconds" per access; we use 100 µs reads
// and 200 µs writes.
func DefaultConfig(pageSize int, capacity int64) Config {
	return Config{
		PageSize:     pageSize,
		Capacity:     capacity,
		ReadLatency:  100 * time.Microsecond,
		WriteLatency: 200 * time.Microsecond,
	}
}

// Stats counts device traffic since the last ResetStats.
type Stats struct {
	// PagesRead and PagesWritten count successful page transfers.
	PagesRead    int64
	PagesWritten int64
	// Faults counts injected I/O errors hit by page accesses.
	Faults int64
	// Retries counts retry attempts spent recovering from transient
	// faults (each charged a doubling backoff on the simulated clock).
	Retries int64
	// Stalls counts injected slow-I/O events.
	Stalls int64
}

// Device is a simulated SSD storing fixed-size pages addressed by slot
// number.
type Device struct {
	cfg    Config
	clk    *simclock.Clock
	pages  map[int64][]byte
	stats  Stats
	rec    obs.Recorder
	faults *fault.Injector
}

// SetRecorder installs an observability recorder: every ReadPage records
// its charged latency as obs.OpSSDRead and every WritePage as
// obs.OpSSDWrite. A nil recorder (the default) disables recording.
func (d *Device) SetRecorder(r obs.Recorder) { d.rec = r }

// SetFaults installs a fault injector consulted on every page access:
// fault.SSDReadError / fault.SSDWriteError inject I/O errors the device
// retries with exponential backoff (charged to the simulated clock, so
// degradation shows up in throughput), and fault.SSDStall charges extra
// latency. A transient fault that outlives Config.MaxRetries, or a
// permanent one, panics with fault.Crash — the storage engine above has
// no error path for a dead drive, so harnesses treat it as a failed
// node and restart. A nil injector (the default) disables injection.
func (d *Device) SetFaults(in *fault.Injector) { d.faults = in }

// injectFaults runs the fault checks for one page access of kind k at
// the named site, charging backoff for transient errors and panicking
// on permanent ones.
func (d *Device) injectFaults(k fault.Kind, site string) {
	if st := d.faults.Check(fault.SSDStall); st.Fire {
		d.stats.Stalls++
		d.clk.AdvanceNs(st.StallNs)
	}
	dec := d.faults.Check(k)
	if !dec.Fire {
		return
	}
	d.stats.Faults++
	if dec.Transient <= 0 {
		panic(fault.Crash{Kind: k, Site: site})
	}
	// Retry the access until the transient failure clears. Attempt i
	// charges RetryBackoff·2^(i-1); classification mirrors
	// fault.Classify — only transient errors are worth the wait.
	backoff := d.cfg.RetryBackoff
	for attempt := 1; ; attempt++ {
		if attempt > d.cfg.MaxRetries {
			panic(fault.Crash{Kind: k, Site: site})
		}
		d.stats.Retries++
		d.clk.Advance(backoff)
		backoff *= 2
		if attempt >= dec.Transient {
			return // this retry succeeded
		}
	}
}

// New creates a device. It panics on a non-positive page size or capacity,
// or a nil clock, since those indicate programming errors.
func New(cfg Config, clk *simclock.Clock) *Device {
	if cfg.PageSize <= 0 || cfg.Capacity <= 0 {
		panic("ssd: non-positive page size or capacity")
	}
	if clk == nil {
		panic("ssd: nil clock")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Microsecond
	}
	return &Device{cfg: cfg, clk: clk, pages: make(map[int64][]byte)}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Capacity returns the maximum number of pages.
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// Allocated returns the number of pages that have been written at least
// once.
func (d *Device) Allocated() int64 { return int64(len(d.pages)) }

func (d *Device) checkSlot(slot int64) {
	if slot < 0 || slot >= d.cfg.Capacity {
		panic(fmt.Sprintf("ssd: slot %d outside capacity %d", slot, d.cfg.Capacity))
	}
}

// ReadPage copies the content of slot into p, which must be exactly one
// page long. Reading a never-written slot yields zeroes, like a fresh
// drive. The full page-read latency is charged regardless of how much of
// the page the caller needs: block devices have no sub-page access.
func (d *Device) ReadPage(slot int64, p []byte) {
	d.checkSlot(slot)
	if len(p) != d.cfg.PageSize {
		panic(fmt.Sprintf("ssd: read buffer of %d bytes, page size is %d", len(p), d.cfg.PageSize))
	}
	if d.faults != nil {
		d.injectFaults(fault.SSDReadError, "ssd.read")
	}
	d.stats.PagesRead++
	d.clk.Advance(d.cfg.ReadLatency)
	if d.rec != nil {
		d.rec.Latency(obs.OpSSDRead, int64(d.cfg.ReadLatency))
	}
	if src, ok := d.pages[slot]; ok {
		copy(p, src)
		return
	}
	for i := range p {
		p[i] = 0
	}
}

// WritePage stores p, which must be exactly one page long, at slot. SSD
// writes are durable when the call returns (the drive's FTL and capacitors
// are not modelled).
func (d *Device) WritePage(slot int64, p []byte) {
	d.checkSlot(slot)
	if len(p) != d.cfg.PageSize {
		panic(fmt.Sprintf("ssd: write buffer of %d bytes, page size is %d", len(p), d.cfg.PageSize))
	}
	if d.faults != nil {
		d.injectFaults(fault.SSDWriteError, "ssd.write")
	}
	d.stats.PagesWritten++
	d.clk.Advance(d.cfg.WriteLatency)
	if d.rec != nil {
		d.rec.Latency(obs.OpSSDWrite, int64(d.cfg.WriteLatency))
	}
	dst, ok := d.pages[slot]
	if !ok {
		dst = make([]byte, d.cfg.PageSize)
		d.pages[slot] = dst
	}
	copy(dst, p)
}

// Written reports whether slot has ever been written.
func (d *Device) Written(slot int64) bool {
	_, ok := d.pages[slot]
	return ok
}

// Stats returns a snapshot of the traffic counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the traffic counters.
func (d *Device) ResetStats() { d.stats = Stats{} }
