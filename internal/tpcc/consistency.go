package tpcc

import (
	"fmt"

	"nvmstore/internal/btree"
)

// VerifyConsistency checks the TPC-C consistency conditions that our
// transaction mix maintains (clause 3.3.2 of the specification):
//
//  1. W_YTD = sum(D_YTD) of the warehouse's districts (both start at
//     fixed values and Payment adds the same amount to both).
//  2. For every district, D_NEXT_O_ID - 1 equals the maximum order id in
//     the ORDER table (and no order exists at or above D_NEXT_O_ID).
//  3. Every order's O_OL_CNT equals the number of its ORDER-LINE rows.
//  4. Every NEW-ORDER row has a matching ORDER row with no carrier, and
//     every delivered order (carrier set) has no NEW-ORDER row.
//
// It is meant for tests and post-crash validation, not hot paths.
func (w *Workload) VerifyConsistency() error {
	for _, wh := range w.whs {
		if err := w.verifyWarehouse(wh); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) verifyWarehouse(wh int) error {
	// Condition 1: warehouse YTD equals the sum of its districts' YTD
	// plus their fixed initial offsets.
	var whYTDv int64
	found, err := w.warehouse.Access(wKey(wh), func(r btree.Row) error {
		whYTDv = r.I64(whYTD)
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("tpcc: warehouse %d missing", wh)
	}
	var distSum int64
	nextOIDs := make([]int, districtsPerWarehouse+1)
	for d := 1; d <= districtsPerWarehouse; d++ {
		found, err := w.district.Access(dKey(wh, d), func(r btree.Row) error {
			distSum += r.I64(diYTD)
			nextOIDs[d] = int(r.U32(diNextOID))
			return nil
		})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("tpcc: district (%d,%d) missing", wh, d)
		}
	}
	// Initial values: warehouse 30,000,000.00; districts 30,000.00 each.
	const initW = 30000000 * 100
	const initD = 3000000 * 100
	if whYTDv-initW != distSum-districtsPerWarehouse*initD {
		return fmt.Errorf("tpcc: warehouse %d YTD delta %d != district YTD delta sum %d",
			wh, whYTDv-initW, distSum-districtsPerWarehouse*initD)
	}

	for d := 1; d <= districtsPerWarehouse; d++ {
		if err := w.verifyDistrict(wh, d, nextOIDs[d]); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) verifyDistrict(wh, d, nextOID int) error {
	// Condition 2: scan the district's orders; the maximum id must be
	// nextOID-1, with no gaps at the top.
	maxO := 0
	count := 0
	err := w.order.Scan(oKey(wh, d, 0), 0, 0, 0, func(k uint64, _ []byte) bool {
		if k>>24 != dKey(wh, d) {
			return false
		}
		o := int(k & 0xFFFFFF)
		if o > maxO {
			maxO = o
		}
		count++
		return true
	})
	if err != nil {
		return err
	}
	if maxO != nextOID-1 {
		return fmt.Errorf("tpcc: district (%d,%d): max order %d, D_NEXT_O_ID %d", wh, d, maxO, nextOID)
	}
	if count != maxO {
		return fmt.Errorf("tpcc: district (%d,%d): %d orders for max id %d (gaps)", wh, d, count, maxO)
	}

	// Conditions 3 and 4 on a sample of orders (first, middle, last) to
	// keep verification affordable at scale.
	for _, o := range []int{1, maxO / 2, maxO} {
		if o < 1 {
			continue
		}
		var olCnt int
		var carrier byte
		found, err := w.order.Access(oKey(wh, d, o), func(r btree.Row) error {
			olCnt = int(r.Read(orOLCnt, 1)[0])
			carrier = r.Read(orCarrier, 1)[0]
			return nil
		})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("tpcc: order (%d,%d,%d) missing", wh, d, o)
		}
		lines := 0
		for ol := 1; ol <= 15; ol++ {
			found, err := w.orderLine.Access(olKey(wh, d, o, ol), func(btree.Row) error { return nil })
			if err != nil {
				return err
			}
			if found {
				lines++
			}
		}
		if lines != olCnt {
			return fmt.Errorf("tpcc: order (%d,%d,%d): %d lines, O_OL_CNT %d", wh, d, o, lines, olCnt)
		}
		noFound, err := w.newOrder.Access(oKey(wh, d, o), func(btree.Row) error { return nil })
		if err != nil {
			return err
		}
		if carrier == 0 && !noFound {
			return fmt.Errorf("tpcc: undelivered order (%d,%d,%d) has no NEW-ORDER row", wh, d, o)
		}
		if carrier != 0 && noFound {
			return fmt.Errorf("tpcc: delivered order (%d,%d,%d) still has a NEW-ORDER row", wh, d, o)
		}
	}
	return nil
}
