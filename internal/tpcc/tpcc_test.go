package tpcc

import (
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/engine"
)

// testScale is a laptop-scale configuration: tiny item and customer
// counts, preserving all code paths.
func testScale(warehouses int) Config {
	return Config{
		Warehouses:               warehouses,
		Items:                    500,
		CustomersPerDistrict:     60,
		InitialOrdersPerDistrict: 60,
		Seed:                     42,
	}
}

func newWorkload(t *testing.T, topo core.Topology, warehouses int) *Workload {
	t.Helper()
	cfg := engine.DefaultConfig(topo,
		256*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 4 << 20
	cfg.CPUCacheBytes = -1
	if topo == core.MemOnly {
		cfg.DRAMBytes = 0
	}
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(e, testScale(warehouses))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLoadCardinalities(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 2)
	cfg := w.cfg
	checks := []struct {
		name string
		tree *btree.Tree
		want int
	}{
		{"warehouse", w.warehouse, 2},
		{"district", w.district, 2 * districtsPerWarehouse},
		{"customer", w.customer, 2 * districtsPerWarehouse * cfg.CustomersPerDistrict},
		{"item", w.item, cfg.Items},
		{"stock", w.stock, 2 * cfg.Items},
		{"order", w.order, 2 * districtsPerWarehouse * cfg.InitialOrdersPerDistrict},
		{"custName", w.custName, 2 * districtsPerWarehouse * cfg.CustomersPerDistrict},
		{"custOrder", w.custOrder, 2 * districtsPerWarehouse * cfg.InitialOrdersPerDistrict},
		{"history", w.history, 2 * districtsPerWarehouse * cfg.CustomersPerDistrict},
	}
	for _, c := range checks {
		got, err := c.tree.Count()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s count = %d, want %d", c.name, got, c.want)
		}
	}
	// New orders: the undelivered ~30% tail.
	no, _ := w.newOrder.Count()
	wantNO := 2 * districtsPerWarehouse * (cfg.InitialOrdersPerDistrict - cfg.InitialOrdersPerDistrict*7/10)
	if no != wantNO {
		t.Errorf("newOrder count = %d, want %d", no, wantNO)
	}
}

func TestEachTransactionType(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 1)
	for i := 0; i < 30; i++ {
		if err := w.NewOrder(); err != nil {
			t.Fatalf("NewOrder %d: %v", i, err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := w.Payment(); err != nil {
			t.Fatalf("Payment %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.OrderStatus(); err != nil {
			t.Fatalf("OrderStatus %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := w.Delivery(); err != nil {
			t.Fatalf("Delivery %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.StockLevel(); err != nil {
			t.Fatalf("StockLevel %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.NewOrder+st.NewOrderRbk != 30 || st.Payment != 30 || st.OrderStatus != 10 ||
		st.Delivery != 5 || st.StockLevel != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMixAcrossTopologies(t *testing.T) {
	for _, topo := range []core.Topology{core.MemOnly, core.DRAMNVM, core.ThreeTier, core.DirectNVM} {
		t.Run(topo.String(), func(t *testing.T) {
			w := newWorkload(t, topo, 1)
			for i := 0; i < 300; i++ {
				if err := w.NextTransaction(); err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
			}
			st := w.Stats()
			if st.Total() != 300 {
				t.Fatalf("total = %d, want 300 (%+v)", st.Total(), st)
			}
			// The mix must have exercised every profile.
			if st.NewOrder == 0 || st.Payment == 0 || st.OrderStatus == 0 ||
				st.Delivery == 0 || st.StockLevel == 0 {
				t.Fatalf("profile never ran: %+v", st)
			}
		})
	}
}

func TestNewOrderAdvancesDistrictCounter(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 1)
	before := make(map[uint64]int)
	for d := 1; d <= districtsPerWarehouse; d++ {
		w.district.Access(dKey(1, d), func(row btree.Row) error {
			before[dKey(1, d)] = int(row.U32(diNextOID))
			return nil
		})
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := w.NewOrder(); err != nil {
			t.Fatal(err)
		}
	}
	advanced := 0
	for d := 1; d <= districtsPerWarehouse; d++ {
		w.district.Access(dKey(1, d), func(row btree.Row) error {
			advanced += int(row.U32(diNextOID)) - before[dKey(1, d)]
			return nil
		})
	}
	// Rolled-back orders restore the counter.
	want := int(w.Stats().NewOrder)
	if advanced != want {
		t.Fatalf("district counters advanced by %d, want %d committed orders", advanced, want)
	}
	// Every committed order inserted its rows.
	orders, _ := w.order.Count()
	wantOrders := districtsPerWarehouse*w.cfg.InitialOrdersPerDistrict + want
	if orders != wantOrders {
		t.Fatalf("order count = %d, want %d", orders, wantOrders)
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 1)
	var ytdBefore int64
	w.warehouse.Access(wKey(1), func(row btree.Row) error {
		ytdBefore = row.I64(whYTD)
		return nil
	})
	for i := 0; i < 40; i++ {
		if err := w.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	var ytdAfter int64
	w.warehouse.Access(wKey(1), func(row btree.Row) error {
		ytdAfter = row.I64(whYTD)
		return nil
	})
	if ytdAfter <= ytdBefore {
		t.Fatalf("warehouse YTD did not grow: %d -> %d", ytdBefore, ytdAfter)
	}
	hist, _ := w.history.Count()
	wantHist := districtsPerWarehouse*w.cfg.CustomersPerDistrict + 40
	if hist != wantHist {
		t.Fatalf("history count = %d, want %d", hist, wantHist)
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 1)
	before, _ := w.newOrder.Count()
	if err := w.Delivery(); err != nil {
		t.Fatal(err)
	}
	after, _ := w.newOrder.Count()
	if before-after != districtsPerWarehouse {
		t.Fatalf("delivery removed %d new orders, want %d", before-after, districtsPerWarehouse)
	}
}

func TestNewOrderRollbacksHappen(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 1)
	for i := 0; i < 600; i++ {
		if err := w.NewOrder(); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	// ~1% of 600: expect at least one rollback with overwhelming
	// probability, and not too many.
	if st.NewOrderRbk == 0 {
		t.Fatal("no intentional rollbacks in 600 new orders")
	}
	if st.NewOrderRbk > 30 {
		t.Fatalf("%d rollbacks in 600 orders, expected ~6", st.NewOrderRbk)
	}
}

func TestCrashRecoveryPreservesConsistency(t *testing.T) {
	cfg := engine.DefaultConfig(core.ThreeTier,
		256*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 4 << 20
	cfg.CPUCacheBytes = -1
	cfg.StrictPersistence = true
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(e, testScale(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := w.NextTransaction(); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	ordersBefore, _ := w.order.Count()
	linesBefore, _ := w.orderLine.Count()

	if _, err := e.CrashRestart(); err != nil {
		t.Fatalf("CrashRestart: %v", err)
	}
	w2, err := Attach(e, testScale(1))
	if err != nil {
		t.Fatal(err)
	}
	orders, _ := w2.order.Count()
	lines, _ := w2.orderLine.Count()
	if orders != ordersBefore || lines != linesBefore {
		t.Fatalf("counts changed across crash: orders %d->%d lines %d->%d",
			ordersBefore, orders, linesBefore, lines)
	}
	// Consistency: every order's line count matches its orderline rows,
	// for a sample of orders.
	for d := 1; d <= districtsPerWarehouse; d++ {
		var nextOID int
		w2.district.Access(dKey(1, d), func(row btree.Row) error {
			nextOID = int(row.U32(diNextOID))
			return nil
		})
		for _, o := range []int{1, nextOID - 1} {
			var olCnt int
			found, err := w2.order.Access(oKey(1, d, o), func(row btree.Row) error {
				olCnt = int(row.Read(orOLCnt, 1)[0])
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("order (1,%d,%d) missing after recovery", d, o)
			}
			got := 0
			for ol := 1; ol <= olCnt; ol++ {
				found, _ := w2.orderLine.Access(olKey(1, d, o, ol), func(btree.Row) error { return nil })
				if found {
					got++
				}
			}
			if got != olCnt {
				t.Fatalf("order (1,%d,%d): %d lines, header says %d", d, o, got, olCnt)
			}
		}
	}
	// The workload keeps running after recovery.
	for i := 0; i < 50; i++ {
		if err := w2.NextTransaction(); err != nil {
			t.Fatalf("post-recovery tx %d: %v", i, err)
		}
	}
}

func TestDataBytesMonotonic(t *testing.T) {
	a := Config{Warehouses: 1}
	b := Config{Warehouses: 10}
	if a.DataBytes() >= b.DataBytes() {
		t.Fatalf("DataBytes not monotonic: %d vs %d", a.DataBytes(), b.DataBytes())
	}
}

func TestConsistencyAfterMix(t *testing.T) {
	w := newWorkload(t, core.MemOnly, 2)
	if err := w.VerifyConsistency(); err != nil {
		t.Fatalf("fresh database inconsistent: %v", err)
	}
	for i := 0; i < 500; i++ {
		if err := w.NextTransaction(); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if err := w.VerifyConsistency(); err != nil {
		t.Fatalf("after mix: %v", err)
	}
}

func TestConsistencyAfterCrash(t *testing.T) {
	cfg := engine.DefaultConfig(core.ThreeTier,
		256*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 8 << 20
	cfg.CPUCacheBytes = -1
	cfg.StrictPersistence = true
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := New(e, testScale(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := w.NextTransaction(); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if _, err := e.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	w2, err := Attach(e, testScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.VerifyConsistency(); err != nil {
		t.Fatalf("after crash recovery: %v", err)
	}
}
