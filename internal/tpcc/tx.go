package tpcc

import (
	"bytes"
	"fmt"
	"sort"

	"nvmstore/internal/btree"
)

// NextTransaction executes one transaction drawn from the standard TPC-C
// mix: 45% New-Order, 43% Payment, 4% Order-Status, 4% Delivery, 4%
// Stock-Level.
func (w *Workload) NextTransaction() error {
	switch x := w.rng.intn(100); {
	case x < 45:
		return w.NewOrder()
	case x < 88:
		return w.Payment()
	case x < 92:
		return w.OrderStatus()
	case x < 96:
		return w.Delivery()
	default:
		return w.StockLevel()
	}
}

// errNotFound signals an unexpectedly missing row (database corruption).
func errNotFound(table string, key uint64) error {
	return fmt.Errorf("tpcc: %s row %#x missing", table, key)
}

// homeW picks a uniformly random home warehouse among those the shard
// owns. Unpartitioned, this is the specification's uniform(1, W) draw
// (same random stream, same value).
func (w *Workload) homeW() int {
	return w.whs[w.rng.intn(len(w.whs))]
}

// NewOrder runs the New-Order transaction: enter an order of 5-15 lines,
// updating the district's order counter and each line's stock. One
// percent of orders carry an invalid item and roll back, per the
// specification.
func (w *Workload) NewOrder() error {
	r := &w.rng
	cfg := w.cfg
	wh := w.homeW()
	d := r.uniform(1, districtsPerWarehouse)
	c := r.nuRand(1023, cID, 1, cfg.CustomersPerDistrict)
	olCnt := r.uniform(5, 15)
	rollback := r.intn(100) == 0
	w.now++

	w.e.Begin()

	// Warehouse tax (read-only).
	var whTaxRate int32
	found, err := w.warehouse.Access(wKey(wh), func(row btree.Row) error {
		whTaxRate = int32(row.U32(whTax))
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("warehouse", wKey(wh))
	}

	// District: read tax, take and increment the order id.
	var dTaxRate int32
	var oID int
	found, err = w.district.Access(dKey(wh, d), func(row btree.Row) error {
		dTaxRate = int32(row.U32(diTax))
		oID = int(row.U32(diNextOID))
		var b [4]byte
		putU32(b[:], 0, uint32(oID+1))
		return row.Update(diNextOID, b[:])
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("district", dKey(wh, d))
	}

	// Customer discount (read-only).
	var discount int32
	found, err = w.customer.Access(cKey(wh, d, c), func(row btree.Row) error {
		discount = int32(row.U32(cuDiscount))
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("customer", cKey(wh, d, c))
	}

	// Insert the order, new-order, and customer-order index rows.
	orow := make([]byte, orderSize)
	putU32(orow, orCustomer, uint32(c))
	putI64(orow, orEntryD, w.now)
	orow[orOLCnt] = byte(olCnt)
	orow[orAllLocal] = 1
	if err := w.order.Insert(oKey(wh, d, oID), orow); err != nil {
		return err
	}
	if err := w.newOrder.Insert(oKey(wh, d, oID), make([]byte, newOrderSize)); err != nil {
		return err
	}
	iRow := make([]byte, indexSize)
	putU32(iRow, 0, uint32(oID))
	if err := w.custOrder.Insert(custOrderKey(wh, d, c, oID), iRow); err != nil {
		return err
	}

	total := int64(0)
	olRow := make([]byte, orderLineSize)
	var distInfo [24]byte
	for ol := 1; ol <= olCnt; ol++ {
		var item int
		if rollback && ol == olCnt {
			item = cfg.Items + 1 // unused item: forces rollback
		} else {
			item = r.nuRand(8191, cItem, 1, cfg.Items)
		}
		var price int64
		found, err := w.item.Access(iKey(item), func(row btree.Row) error {
			price = row.I64(itPrice)
			return nil
		})
		if err != nil {
			return err
		}
		if !found {
			// Invalid item: the specification requires rolling the whole
			// order back.
			if err := w.e.Rollback(); err != nil {
				return err
			}
			w.stats.NewOrderRbk++
			return nil
		}

		supplyW := wh
		if len(w.whs) > 1 && r.intn(100) == 0 {
			for supplyW == wh {
				supplyW = w.homeW()
			}
			orow[orAllLocal] = 0
		}
		qty := r.uniform(1, 10)
		found, err = w.stock.Access(sKey(supplyW, item), func(row btree.Row) error {
			q := int(row.U32(stQuantity))
			if q-qty >= 10 {
				q -= qty
			} else {
				q += 91 - qty
			}
			var b [4]byte
			putU32(b[:], 0, uint32(q))
			if err := row.Update(stQuantity, b[:]); err != nil {
				return err
			}
			var meta [12]byte
			putI64(meta[:], 0, row.I64(stYTD)+int64(qty))
			putU16(meta[:], 8, row.U16(stOrderCnt)+1)
			remote := row.U16(stRemoteCnt)
			if supplyW != wh {
				remote++
			}
			putU16(meta[:], 10, remote)
			if err := row.Update(stYTD, meta[:]); err != nil {
				return err
			}
			row.Get(stDist+(d-1)*24, 24, distInfo[:])
			return nil
		})
		if err != nil {
			return err
		}
		if !found {
			return errNotFound("stock", sKey(supplyW, item))
		}

		amount := int64(qty) * price
		total += amount
		for i := range olRow {
			olRow[i] = 0
		}
		putU32(olRow, olItem, uint32(item))
		putU32(olRow, olSupplyW, uint32(supplyW))
		olRow[olQuantity] = byte(qty)
		putI64(olRow, olAmount, amount)
		copy(olRow[olDistInfo:], distInfo[:])
		if err := w.orderLine.Insert(olKey(wh, d, oID, ol), olRow); err != nil {
			return err
		}
	}
	_ = total * int64(10000+int(whTaxRate)+int(dTaxRate)) * int64(10000-int(discount)) // order total with taxes and discount

	if err := w.e.Commit(); err != nil {
		return err
	}
	w.stats.NewOrder++
	return nil
}

// customerByName resolves the 60% by-last-name customer selection: collect
// the customers sharing the chosen last name via the name index, read
// their first names, and pick the middle one in first-name order.
func (w *Workload) customerByName(wh, d, nameIdx int) (int, error) {
	prefix := dKey(wh, d)<<28 | uint64(nameIdx)<<12
	var ids []int
	err := w.custName.Scan(prefix, 0, 0, 0, func(k uint64, _ []byte) bool {
		if k>>12 != prefix>>12 {
			return false
		}
		ids = append(ids, int(k&0xFFF))
		return true
	})
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	type cand struct {
		id    int
		first [16]byte
	}
	cands := make([]cand, len(ids))
	for i, id := range ids {
		cands[i].id = id
		found, err := w.customer.Access(cKey(wh, d, id), func(row btree.Row) error {
			row.Get(cuFirst, 16, cands[i].first[:])
			return nil
		})
		if err != nil {
			return 0, err
		}
		if !found {
			return 0, errNotFound("customer", cKey(wh, d, id))
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		return bytes.Compare(cands[a].first[:], cands[b].first[:]) < 0
	})
	return cands[(len(cands)+1)/2-1].id, nil
}

// Payment runs the Payment transaction: record a customer payment,
// updating warehouse, district, and customer balances and appending a
// history row. 60% of customers are selected by last name.
func (w *Workload) Payment() error {
	r := &w.rng
	cfg := w.cfg
	wh := w.homeW()
	d := r.uniform(1, districtsPerWarehouse)
	// 15% of payments come through a remote warehouse.
	cw, cd := wh, d
	if len(w.whs) > 1 && r.intn(100) < 15 {
		for cw == wh {
			cw = w.homeW()
		}
		cd = r.uniform(1, districtsPerWarehouse)
	}
	amount := int64(r.uniform(100, 500000)) // cents
	w.now++

	w.e.Begin()
	var c int
	if r.intn(100) < 60 {
		nameIdx := r.nuRand(255, cLast, 0, 999)
		var err error
		c, err = w.customerByName(cw, cd, nameIdx)
		if err != nil {
			return err
		}
	}
	if c == 0 {
		c = r.nuRand(1023, cID, 1, cfg.CustomersPerDistrict)
	}

	found, err := w.warehouse.Access(wKey(wh), func(row btree.Row) error {
		var b [8]byte
		putI64(b[:], 0, row.I64(whYTD)+amount)
		return row.Update(whYTD, b[:])
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("warehouse", wKey(wh))
	}
	found, err = w.district.Access(dKey(wh, d), func(row btree.Row) error {
		var b [8]byte
		putI64(b[:], 0, row.I64(diYTD)+amount)
		return row.Update(diYTD, b[:])
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("district", dKey(wh, d))
	}

	found, err = w.customer.Access(cKey(cw, cd, c), func(row btree.Row) error {
		var b [20]byte
		putI64(b[:], 0, row.I64(cuBalance)-amount)
		putI64(b[:], 8, row.I64(cuYTDPayment)+amount)
		putU16(b[:], 16, row.U16(cuPaymentCnt)+1)
		putU16(b[:], 18, row.U16(cuDeliveryCnt))
		if err := row.Update(cuBalance, b[:]); err != nil {
			return err
		}
		credit := row.Read(cuCredit, 2)
		if credit[0] == 'B' && credit[1] == 'C' {
			// Bad credit: prepend payment info to the customer data
			// field (the specification keeps the first 500 bytes).
			var data [200]byte
			row.Get(cuData, 200, data[:])
			var updated [200]byte
			n := copy(updated[:], fmt.Sprintf("%d %d %d %d %d %d|", c, cd, cw, d, wh, amount))
			copy(updated[n:], data[:200-n])
			return row.Update(cuData, updated[:])
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("customer", cKey(cw, cd, c))
	}

	hrow := make([]byte, historySize)
	putU32(hrow, hiCustomer, uint32(c))
	putU32(hrow, hiCustD, uint32(cd))
	putU32(hrow, hiCustW, uint32(cw))
	putU32(hrow, hiD, uint32(d))
	putU32(hrow, hiW, uint32(wh))
	putI64(hrow, hiDate, w.now)
	putI64(hrow, hiAmount, amount)
	if err := w.history.Insert(w.historySeq, hrow); err != nil {
		return err
	}
	w.historySeq++

	if err := w.e.Commit(); err != nil {
		return err
	}
	w.stats.Payment++
	return nil
}

// OrderStatus runs the read-only Order-Status transaction: report a
// customer's balance and the lines of their most recent order.
func (w *Workload) OrderStatus() error {
	r := &w.rng
	cfg := w.cfg
	wh := w.homeW()
	d := r.uniform(1, districtsPerWarehouse)

	w.e.Begin()
	var c int
	if r.intn(100) < 60 {
		nameIdx := r.nuRand(255, cLast, 0, 999)
		var err error
		c, err = w.customerByName(wh, d, nameIdx)
		if err != nil {
			return err
		}
	}
	if c == 0 {
		c = r.nuRand(1023, cID, 1, cfg.CustomersPerDistrict)
	}

	found, err := w.customer.Access(cKey(wh, d, c), func(row btree.Row) error {
		_ = row.I64(cuBalance)
		_ = row.Read(cuFirst, 16+2+16) // first, middle, last
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("customer", cKey(wh, d, c))
	}

	// Latest order via the customer-order index (inverted order ids:
	// the first index entry is the newest order).
	prefix := cKey(wh, d, c) << 24
	oID := 0
	err = w.custOrder.Scan(prefix, 1, 0, 4, func(k uint64, field []byte) bool {
		if k>>24 == prefix>>24 {
			oID = int(getU32(field, 0))
		}
		return false
	})
	if err != nil {
		return err
	}
	if oID == 0 {
		// Customer without orders (possible at tiny scale factors).
		w.stats.OrderStatus++
		return w.e.Commit()
	}

	var olCnt int
	found, err = w.order.Access(oKey(wh, d, oID), func(row btree.Row) error {
		olCnt = int(row.Read(orOLCnt, 1)[0])
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("order", oKey(wh, d, oID))
	}
	for ol := 1; ol <= olCnt; ol++ {
		if _, err := w.orderLine.Access(olKey(wh, d, oID, ol), func(row btree.Row) error {
			_ = row.U32(olItem)
			_ = row.I64(olAmount)
			return nil
		}); err != nil {
			return err
		}
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.stats.OrderStatus++
	return nil
}

// Delivery runs the Delivery transaction: for each district, deliver the
// oldest undelivered order — delete its new-order row, stamp the carrier
// and delivery dates, and credit the customer.
func (w *Workload) Delivery() error {
	r := &w.rng
	wh := w.homeW()
	carrier := byte(r.uniform(1, 10))
	w.now++

	w.e.Begin()
	for d := 1; d <= districtsPerWarehouse; d++ {
		// Oldest new order of this district.
		var noKey uint64
		err := w.newOrder.Scan(oKey(wh, d, 0), 1, 0, 0, func(k uint64, _ []byte) bool {
			if k>>24 == dKey(wh, d) {
				noKey = k
			}
			return false
		})
		if err != nil {
			return err
		}
		if noKey == 0 {
			continue // district fully delivered
		}
		oID := int(noKey & 0xFFFFFF)
		if _, err := w.newOrder.Delete(noKey); err != nil {
			return err
		}

		var c, olCnt int
		found, err := w.order.Access(noKey, func(row btree.Row) error {
			c = int(row.U32(orCustomer))
			olCnt = int(row.Read(orOLCnt, 1)[0])
			return row.Update(orCarrier, []byte{carrier})
		})
		if err != nil {
			return err
		}
		if !found {
			return errNotFound("order", noKey)
		}

		total := int64(0)
		for ol := 1; ol <= olCnt; ol++ {
			found, err := w.orderLine.Access(olKey(wh, d, oID, ol), func(row btree.Row) error {
				total += row.I64(olAmount)
				var b [8]byte
				putI64(b[:], 0, w.now)
				return row.Update(olDeliveryD, b[:])
			})
			if err != nil {
				return err
			}
			if !found {
				return errNotFound("order line", olKey(wh, d, oID, ol))
			}
		}

		found, err = w.customer.Access(cKey(wh, d, c), func(row btree.Row) error {
			var b [8]byte
			putI64(b[:], 0, row.I64(cuBalance)+total)
			if err := row.Update(cuBalance, b[:]); err != nil {
				return err
			}
			var dc [2]byte
			putU16(dc[:], 0, row.U16(cuDeliveryCnt)+1)
			return row.Update(cuDeliveryCnt, dc[:])
		})
		if err != nil {
			return err
		}
		if !found {
			return errNotFound("customer", cKey(wh, d, c))
		}
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.stats.Delivery++
	return nil
}

// StockLevel runs the read-only Stock-Level transaction: count the
// distinct items of a district's last 20 orders whose stock is below a
// threshold.
func (w *Workload) StockLevel() error {
	r := &w.rng
	wh := w.homeW()
	d := r.uniform(1, districtsPerWarehouse)
	threshold := int32(r.uniform(10, 20))

	w.e.Begin()
	var nextOID int
	found, err := w.district.Access(dKey(wh, d), func(row btree.Row) error {
		nextOID = int(row.U32(diNextOID))
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return errNotFound("district", dKey(wh, d))
	}

	low := nextOID - 20
	if low < 1 {
		low = 1
	}
	items := make(map[uint32]struct{})
	err = w.orderLine.Scan(olKey(wh, d, low, 0), 0, olItem, 4, func(k uint64, field []byte) bool {
		if olKeyOrder(k)>>24 != dKey(wh, d) || int(olKeyOrder(k)&0xFFFFFF) >= nextOID {
			return false
		}
		items[getU32(field, 0)] = struct{}{}
		return true
	})
	if err != nil {
		return err
	}

	lowStock := 0
	for item := range items {
		found, err := w.stock.Access(sKey(wh, int(item)), func(row btree.Row) error {
			if int32(row.U32(stQuantity)) < threshold {
				lowStock++
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !found {
			return errNotFound("stock", sKey(wh, int(item)))
		}
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.stats.StockLevel++
	return nil
}
