package tpcc

import (
	"fmt"
	"sort"

	"nvmstore/internal/btree"
	"nvmstore/internal/engine"
	"nvmstore/internal/shard"
)

// Config scales the generated database. The zero value of any field
// selects the TPC-C specification's cardinality.
type Config struct {
	// Warehouses is the scale factor W. Must be >= 1.
	Warehouses int
	// Items is the size of the shared item table (spec: 100,000).
	Items int
	// CustomersPerDistrict (spec: 3,000).
	CustomersPerDistrict int
	// InitialOrdersPerDistrict (spec: 3,000, of which the last 900 are
	// undelivered new orders).
	InitialOrdersPerDistrict int
	// Seed makes the workload deterministic.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Items == 0 {
		c.Items = 100000
	}
	if c.CustomersPerDistrict == 0 {
		c.CustomersPerDistrict = 3000
	}
	if c.InitialOrdersPerDistrict == 0 {
		c.InitialOrdersPerDistrict = 3000
	}
	if c.Seed == 0 {
		c.Seed = 0x7070CC
	}
}

// DataBytes estimates the loaded data size (tree footprint at the 0.66
// fill factor) of a database with this configuration; it drives the
// "data size" axis of the paper's Figure 9.
func (c Config) DataBytes() int64 {
	c.applyDefaults()
	perDistrict := int64(c.CustomersPerDistrict)*(customerSize+historySize+2*indexSize+16) +
		int64(c.InitialOrdersPerDistrict)*(orderSize+8+10*(orderLineSize+8))
	perWarehouse := warehouseSize + districtsPerWarehouse*(districtSize+perDistrict) +
		int64(c.Items)*(stockSize+8)
	total := int64(c.Items)*(itemSize+8) + int64(c.Warehouses)*perWarehouse
	return total * 3 / 2 // fill factor 0.66
}

// Stats counts executed transactions by profile.
type Stats struct {
	NewOrder    int64
	NewOrderRbk int64 // 1% intentional rollbacks
	Payment     int64
	OrderStatus int64
	Delivery    int64
	StockLevel  int64
}

// Total returns the number of completed transactions (including the
// intentional rollbacks, which TPC-C counts as executed).
func (s Stats) Total() int64 {
	return s.NewOrder + s.NewOrderRbk + s.Payment + s.OrderStatus + s.Delivery + s.StockLevel
}

// Workload drives TPC-C transactions against one engine. A partitioned
// workload (NewPartition) holds one shard of the warehouses and routes
// every transaction to a home warehouse it owns.
type Workload struct {
	e   *engine.Engine
	cfg Config
	rng rng

	// whs lists the warehouse ids this shard owns, ascending. An
	// unpartitioned workload owns 1..Warehouses.
	whs []int

	warehouse *btree.Tree
	district  *btree.Tree
	customer  *btree.Tree
	history   *btree.Tree
	newOrder  *btree.Tree
	order     *btree.Tree
	orderLine *btree.Tree
	item      *btree.Tree
	stock     *btree.Tree
	custName  *btree.Tree
	custOrder *btree.Tree

	historySeq uint64
	now        int64 // logical timestamp, advanced per transaction

	stats Stats
}

// Stats returns the transaction counters.
func (w *Workload) Stats() Stats { return w.stats }

// Engine returns the underlying engine.
func (w *Workload) Engine() *engine.Engine { return w.e }

// Config returns the workload configuration with defaults applied.
func (w *Workload) Config() Config { return w.cfg }

// rng is a SplitMix64 stream with the TPC-C helper distributions.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// uniform returns a uniform int in [lo, hi] inclusive.
func (r *rng) uniform(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// NURand constants, fixed per run as the specification allows.
const (
	cLast = 123
	cID   = 259
	cItem = 7911
)

// nuRand is the TPC-C non-uniform random function NURand(A, x, y).
func (r *rng) nuRand(a, c, x, y int) int {
	return (((r.uniform(0, a) | r.uniform(x, y)) + c) % (y - x + 1)) + x
}

// Last-name syllables from the specification.
var nameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// lastName builds the three-syllable last name for a name number 0..999.
func lastName(num int, dst []byte) {
	s := nameSyllables[num/100] + nameSyllables[num/10%10] + nameSyllables[num%10]
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, s)
}

// lastNameIdx returns the name number (0..999) used for customer c during
// loading: the first up-to-1000 customers cover each name number once,
// later customers draw from the NURand(255) distribution.
func (w *Workload) lastNameIdx(c int, r *rng) int {
	if c <= 1000 {
		return c - 1
	}
	return r.nuRand(255, cLast, 0, 999)
}

// fillString writes a deterministic filler pattern.
func fillString(dst []byte, seed uint64) {
	for i := range dst {
		dst[i] = 'A' + byte((seed+uint64(i)*131)%26)
	}
}

// New creates the TPC-C schema in e and loads the initial database per
// the configuration, then checkpoints.
func New(e *engine.Engine, cfg Config) (*Workload, error) {
	return NewPartition(e, cfg, 1, 0)
}

// ownedWarehouses lists the warehouses of one shard: warehouse wh belongs
// to shard (wh-1) % shards — the paper's Appendix A.1 partitioning, with
// round-robin assignment so small warehouse counts stay balanced.
func ownedWarehouses(warehouses, shards, index int) []int {
	if shards <= 1 {
		shards, index = 1, 0
	}
	whs := make([]int, 0, warehouses/shards+1)
	for wh := index + 1; wh <= warehouses; wh += shards {
		whs = append(whs, wh)
	}
	return whs
}

// NewPartition creates one shard of a partitioned TPC-C database: the
// warehouses whose (id-1) % shards == index, with all their districts,
// customers, stock, and orders, plus a replica of the read-only item
// table. Transactions are routed by home warehouse, so shards share
// nothing; the rare remote accesses of New-Order (1%) and Payment (15%)
// stay within the shard's own warehouses. The random stream is seeded
// from (Config.Seed, index), making a sharded run reproducible.
func NewPartition(e *engine.Engine, cfg Config, shards, index int) (*Workload, error) {
	cfg.applyDefaults()
	if cfg.Warehouses < 1 {
		return nil, fmt.Errorf("tpcc: need at least one warehouse")
	}
	if shards < 1 || index < 0 || (shards > 1 && index >= shards) {
		return nil, fmt.Errorf("tpcc: bad partition %d/%d", index, shards)
	}
	seed := cfg.Seed
	if shards > 1 {
		seed = shard.SeedFor(cfg.Seed, index)
	}
	whs := ownedWarehouses(cfg.Warehouses, shards, index)
	if len(whs) == 0 {
		return nil, fmt.Errorf("tpcc: shard %d/%d owns no warehouses (W=%d)", index, shards, cfg.Warehouses)
	}
	w := &Workload{e: e, cfg: cfg, rng: rng{state: seed}, whs: whs, now: 1}
	create := func(id uint64, size int) (*btree.Tree, error) {
		return e.CreateTree(id, size, btree.LayoutSorted)
	}
	var err error
	if w.warehouse, err = create(TableWarehouse, warehouseSize); err != nil {
		return nil, err
	}
	if w.district, err = create(TableDistrict, districtSize); err != nil {
		return nil, err
	}
	if w.customer, err = create(TableCustomer, customerSize); err != nil {
		return nil, err
	}
	if w.history, err = create(TableHistory, historySize); err != nil {
		return nil, err
	}
	if w.newOrder, err = create(TableNewOrder, newOrderSize); err != nil {
		return nil, err
	}
	if w.order, err = create(TableOrder, orderSize); err != nil {
		return nil, err
	}
	if w.orderLine, err = create(TableOrderLine, orderLineSize); err != nil {
		return nil, err
	}
	if w.item, err = create(TableItem, itemSize); err != nil {
		return nil, err
	}
	if w.stock, err = create(TableStock, stockSize); err != nil {
		return nil, err
	}
	if w.custName, err = create(IndexCustomerName, indexSize); err != nil {
		return nil, err
	}
	if w.custOrder, err = create(IndexCustomerOrder, indexSize); err != nil {
		return nil, err
	}
	if err := w.load(); err != nil {
		return nil, fmt.Errorf("tpcc: load: %w", err)
	}
	if err := e.Checkpoint(); err != nil {
		return nil, err
	}
	return w, nil
}

// Attach reopens a previously loaded workload (after a restart).
func Attach(e *engine.Engine, cfg Config) (*Workload, error) {
	return AttachPartition(e, cfg, 1, 0)
}

// AttachPartition reopens one shard of a partitioned workload (after a
// restart of that shard's engine).
func AttachPartition(e *engine.Engine, cfg Config, shards, index int) (*Workload, error) {
	cfg.applyDefaults()
	seed := cfg.Seed + 1
	if shards > 1 {
		seed = shard.SeedFor(cfg.Seed+1, index)
	}
	whs := ownedWarehouses(cfg.Warehouses, shards, index)
	if len(whs) == 0 {
		return nil, fmt.Errorf("tpcc: shard %d/%d owns no warehouses (W=%d)", index, shards, cfg.Warehouses)
	}
	w := &Workload{e: e, cfg: cfg, rng: rng{state: seed}, whs: whs, now: 1 << 20}
	for _, bind := range []struct {
		id  uint64
		dst **btree.Tree
	}{
		{TableWarehouse, &w.warehouse}, {TableDistrict, &w.district},
		{TableCustomer, &w.customer}, {TableHistory, &w.history},
		{TableNewOrder, &w.newOrder}, {TableOrder, &w.order},
		{TableOrderLine, &w.orderLine}, {TableItem, &w.item},
		{TableStock, &w.stock}, {IndexCustomerName, &w.custName},
		{IndexCustomerOrder, &w.custOrder},
	} {
		t := e.Tree(bind.id)
		if t == nil {
			return nil, fmt.Errorf("tpcc: engine missing tree %d", bind.id)
		}
		*bind.dst = t
	}
	n, err := w.history.Count()
	if err != nil {
		return nil, err
	}
	w.historySeq = uint64(n) + 1
	return w, nil
}

// sortedLoad bulk-loads pre-collected (key, row) pairs after sorting them.
func sortedLoad(t *btree.Tree, keys []uint64, rows [][]byte, fill float64) error {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	return t.BulkLoad(len(keys),
		func(i int) uint64 { return keys[idx[i]] },
		func(i int, dst []byte) { copy(dst, rows[idx[i]]) },
		fill)
}

// load generates and bulk-loads the initial database.
func (w *Workload) load() error {
	cfg := w.cfg
	r := &w.rng
	const fill = 0.66

	// Items.
	if err := w.item.BulkLoad(cfg.Items,
		func(i int) uint64 { return iKey(i + 1) },
		func(i int, dst []byte) {
			putU32(dst, itImage, uint32(r.uniform(1, 10000)))
			putI64(dst, itPrice, int64(r.uniform(100, 10000)))
			fillString(dst[itName:itName+24], uint64(i)*7)
			fillString(dst[itData:itData+50], uint64(i)*13)
			if r.intn(10) == 0 {
				copy(dst[itData+10:], "ORIGINAL")
			}
		}, fill); err != nil {
		return err
	}

	// Warehouses (the shard's own; an unpartitioned load owns them all).
	if err := w.warehouse.BulkLoad(len(w.whs),
		func(i int) uint64 { return wKey(w.whs[i]) },
		func(i int, dst []byte) {
			putI64(dst, whYTD, 30000000*100)
			putI32(dst, whTax, int32(r.uniform(0, 2000)))
			fillString(dst[whName:], uint64(i)*3+1)
		}, fill); err != nil {
		return err
	}

	// Districts.
	if err := w.district.BulkLoad(len(w.whs)*districtsPerWarehouse,
		func(i int) uint64 { return dKey(w.whs[i/districtsPerWarehouse], i%districtsPerWarehouse+1) },
		func(i int, dst []byte) {
			putI64(dst, diYTD, 3000000*100)
			putI32(dst, diTax, int32(r.uniform(0, 2000)))
			putU32(dst, diNextOID, uint32(cfg.InitialOrdersPerDistrict+1))
			fillString(dst[diName:], uint64(i)*5+2)
		}, fill); err != nil {
		return err
	}

	// Stock (per warehouse, ascending item id).
	if err := w.stock.BulkLoad(len(w.whs)*cfg.Items,
		func(i int) uint64 { return sKey(w.whs[i/cfg.Items], i%cfg.Items+1) },
		func(i int, dst []byte) {
			putI32(dst, stQuantity, int32(r.uniform(10, 100)))
			for d := 0; d < districtsPerWarehouse; d++ {
				fillString(dst[stDist+d*24:stDist+(d+1)*24], uint64(i)+uint64(d))
			}
			fillString(dst[stData:stData+50], uint64(i)*11)
		}, fill); err != nil {
		return err
	}

	// Customers, the name index, history.
	nCust := len(w.whs) * districtsPerWarehouse * cfg.CustomersPerDistrict
	nameKeys := make([]uint64, 0, nCust)
	nameRows := make([][]byte, 0, nCust)
	emptyIdx := make([]byte, indexSize)
	if err := w.customer.BulkLoad(nCust,
		func(i int) uint64 {
			c := i%cfg.CustomersPerDistrict + 1
			d := i/cfg.CustomersPerDistrict%districtsPerWarehouse + 1
			wh := w.whs[i/(cfg.CustomersPerDistrict*districtsPerWarehouse)]
			return cKey(wh, d, c)
		},
		func(i int, dst []byte) {
			c := i%cfg.CustomersPerDistrict + 1
			d := i/cfg.CustomersPerDistrict%districtsPerWarehouse + 1
			wh := w.whs[i/(cfg.CustomersPerDistrict*districtsPerWarehouse)]
			putI64(dst, cuBalance, -1000)
			putI64(dst, cuCreditLim, 50000*100)
			putI32(dst, cuDiscount, int32(r.uniform(0, 5000)))
			credit := "GC"
			if r.intn(10) == 0 {
				credit = "BC"
			}
			copy(dst[cuCredit:], credit)
			fillString(dst[cuFirst:cuFirst+16], uint64(i)*17)
			copy(dst[cuMiddle:], "OE")
			nameIdx := w.lastNameIdx(c, r)
			lastName(nameIdx, dst[cuLast:cuLast+16])
			putI64(dst, cuSince, w.now)
			fillString(dst[cuData:cuData+500], uint64(i)*19)
			nameKeys = append(nameKeys, custNameKey(wh, d, nameIdx, c))
			nameRows = append(nameRows, emptyIdx)
		}, fill); err != nil {
		return err
	}
	if err := sortedLoad(w.custName, nameKeys, nameRows, fill); err != nil {
		return err
	}
	if err := w.history.BulkLoad(nCust,
		func(i int) uint64 { return uint64(i + 1) },
		func(i int, dst []byte) {
			putI64(dst, hiAmount, 1000)
			putI64(dst, hiDate, w.now)
			fillString(dst[hiData:hiData+24], uint64(i))
		}, fill); err != nil {
		return err
	}
	w.historySeq = uint64(nCust) + 1

	// Orders, order lines, new orders, and the customer-order index.
	return w.loadOrders(fill)
}

func (w *Workload) loadOrders(fill float64) error {
	cfg := w.cfg
	r := &w.rng
	nOrders := len(w.whs) * districtsPerWarehouse * cfg.InitialOrdersPerDistrict
	undelivered := cfg.InitialOrdersPerDistrict - cfg.InitialOrdersPerDistrict*7/10 // last ~30% pending

	type orderInfo struct {
		wh, d, o, c, olCnt int
	}
	orders := make([]orderInfo, 0, nOrders)
	// Customer permutation per district so each customer has orders.
	for _, wh := range w.whs {
		for d := 1; d <= districtsPerWarehouse; d++ {
			perm := make([]int, cfg.InitialOrdersPerDistrict)
			for i := range perm {
				perm[i] = i%cfg.CustomersPerDistrict + 1
			}
			for i := len(perm) - 1; i > 0; i-- {
				j := r.intn(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			for o := 1; o <= cfg.InitialOrdersPerDistrict; o++ {
				orders = append(orders, orderInfo{wh, d, o, perm[o-1], r.uniform(5, 10)})
			}
		}
	}

	if err := w.order.BulkLoad(len(orders),
		func(i int) uint64 { return oKey(orders[i].wh, orders[i].d, orders[i].o) },
		func(i int, dst []byte) {
			oi := orders[i]
			putU32(dst, orCustomer, uint32(oi.c))
			putI64(dst, orEntryD, w.now)
			carrier := byte(0)
			if oi.o <= cfg.InitialOrdersPerDistrict-undelivered {
				carrier = byte(r.uniform(1, 10))
			}
			dst[orCarrier] = carrier
			dst[orOLCnt] = byte(oi.olCnt)
			dst[orAllLocal] = 1
		}, fill); err != nil {
		return err
	}

	// Order lines.
	type olRef struct{ oi, ol int }
	var ols []olRef
	for i, oi := range orders {
		for ol := 1; ol <= oi.olCnt; ol++ {
			ols = append(ols, olRef{i, ol})
		}
	}
	if err := w.orderLine.BulkLoad(len(ols),
		func(i int) uint64 {
			oi := orders[ols[i].oi]
			return olKey(oi.wh, oi.d, oi.o, ols[i].ol)
		},
		func(i int, dst []byte) {
			oi := orders[ols[i].oi]
			putU32(dst, olItem, uint32(r.uniform(1, cfg.Items)))
			putU32(dst, olSupplyW, uint32(oi.wh))
			delivered := oi.o <= cfg.InitialOrdersPerDistrict-undelivered
			if delivered {
				putI64(dst, olDeliveryD, w.now)
				putI64(dst, olAmount, 0)
			} else {
				putI64(dst, olAmount, int64(r.uniform(1, 999999)))
			}
			dst[olQuantity] = 5
			fillString(dst[olDistInfo:olDistInfo+24], uint64(i))
		}, fill); err != nil {
		return err
	}

	// New orders: the undelivered tail of each district.
	var noKeys []uint64
	for _, oi := range orders {
		if oi.o > cfg.InitialOrdersPerDistrict-undelivered {
			noKeys = append(noKeys, oKey(oi.wh, oi.d, oi.o))
		}
	}
	sort.Slice(noKeys, func(a, b int) bool { return noKeys[a] < noKeys[b] })
	if err := w.newOrder.BulkLoad(len(noKeys),
		func(i int) uint64 { return noKeys[i] },
		func(i int, dst []byte) {}, fill); err != nil {
		return err
	}

	// Customer-order index.
	coKeys := make([]uint64, len(orders))
	coRows := make([][]byte, len(orders))
	for i, oi := range orders {
		coKeys[i] = custOrderKey(oi.wh, oi.d, oi.c, oi.o)
		row := make([]byte, indexSize)
		putU32(row, 0, uint32(oi.o))
		coRows[i] = row
	}
	return sortedLoad(w.custOrder, coKeys, coRows, fill)
}
