package tpcc

import (
	"testing"

	"nvmstore/internal/core"
	"nvmstore/internal/engine"
)

func newShardWorkload(t *testing.T, warehouses, shards, index int) *Workload {
	t.Helper()
	cfg := engine.DefaultConfig(core.ThreeTier,
		256*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 4 << 20
	cfg.CPUCacheBytes = -1
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewPartition(e, testScale(warehouses), shards, index)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOwnedWarehousesPartition(t *testing.T) {
	const warehouses, shards = 7, 3
	seen := make(map[int]int)
	for i := 0; i < shards; i++ {
		whs := ownedWarehouses(warehouses, shards, i)
		if len(whs) == 0 {
			t.Fatalf("shard %d owns no warehouses", i)
		}
		for _, wh := range whs {
			if prev, dup := seen[wh]; dup {
				t.Fatalf("warehouse %d owned by shards %d and %d", wh, prev, i)
			}
			seen[wh] = i
		}
	}
	if len(seen) != warehouses {
		t.Fatalf("shards cover %d warehouses, want %d", len(seen), warehouses)
	}
}

func TestPartitionedTransactionsAndConsistency(t *testing.T) {
	const warehouses, shards = 4, 2
	for index := 0; index < shards; index++ {
		w := newShardWorkload(t, warehouses, shards, index)
		for i := 0; i < 200; i++ {
			if err := w.NextTransaction(); err != nil {
				t.Fatalf("shard %d tx %d: %v", index, i, err)
			}
		}
		if err := w.VerifyConsistency(); err != nil {
			t.Fatalf("shard %d: %v", index, err)
		}
	}
}

func TestPartitionSingleShardMatchesUnpartitioned(t *testing.T) {
	// A 1-shard partition must draw exactly the single-threaded random
	// sequence: run the same mix on both and compare the mix counters.
	a := newWorkload(t, core.ThreeTier, 2)
	b := newShardWorkload(t, 2, 1, 0)
	for i := 0; i < 150; i++ {
		if err := a.NextTransaction(); err != nil {
			t.Fatalf("unpartitioned tx %d: %v", i, err)
		}
		if err := b.NextTransaction(); err != nil {
			t.Fatalf("1-shard tx %d: %v", i, err)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("transaction mix diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestPartitionValidation(t *testing.T) {
	cfg := engine.DefaultConfig(core.ThreeTier,
		256*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 4 << 20
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartition(e, testScale(2), 2, 5); err == nil {
		t.Fatal("index outside [0, shards) should be rejected")
	}
	if _, err := NewPartition(e, testScale(2), 4, 3); err == nil {
		t.Fatal("a shard with no warehouses should be rejected")
	}
}
