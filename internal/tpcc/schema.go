// Package tpcc implements the TPC-C benchmark over the storage engine, as
// used in the paper's evaluation (§5.2): the full nine-table schema, the
// five transaction profiles at the standard mix, and no think times. Each
// table is a B+-tree with fixed-size binary rows; two secondary indexes
// (customer by last name, latest order by customer) support the
// by-last-name and order-status paths.
//
// The Config scale knobs default to the specification's cardinalities
// (100,000 items, 3,000 customers per district, ...); benchmarks at
// laptop scale shrink them proportionally, which preserves the paper's
// observation that TPC-C's working set is a small hot fraction of the
// data.
package tpcc

import "encoding/binary"

// Tree identifiers for the nine tables and two indexes.
const (
	TableWarehouse uint64 = iota + 1
	TableDistrict
	TableCustomer
	TableHistory
	TableNewOrder
	TableOrder
	TableOrderLine
	TableItem
	TableStock
	IndexCustomerName
	IndexCustomerOrder
)

// Row payload sizes (bytes). Strings are fixed-width, money is int64
// cents, rates are int32 basis points.
const (
	warehouseSize = 96
	districtSize  = 104
	customerSize  = 664
	historySize   = 64
	newOrderSize  = 8
	orderSize     = 32
	orderLineSize = 64
	itemSize      = 88
	stockSize     = 312
	indexSize     = 8
)

// Districts per warehouse, fixed by the specification.
const districtsPerWarehouse = 10

// maxOrderID bounds order ids for the reverse-order index encoding.
const maxOrderID = 1<<24 - 1

// Key encodings. Bit budget: warehouse 12 bits, district 4, customer 12,
// order 24, order line 4, item 20, name index 16.

func wKey(w int) uint64 { return uint64(w) }

func dKey(w, d int) uint64 { return uint64(w)<<4 | uint64(d) }

func cKey(w, d, c int) uint64 { return dKey(w, d)<<12 | uint64(c) }

func oKey(w, d, o int) uint64 { return dKey(w, d)<<24 | uint64(o) }

func olKey(w, d, o, ol int) uint64 { return oKey(w, d, o)<<4 | uint64(ol) }

func iKey(i int) uint64 { return uint64(i) }

func sKey(w, i int) uint64 { return uint64(w)<<20 | uint64(i) }

// custNameKey indexes customers by (district, last-name id, customer id).
func custNameKey(w, d, nameIdx, c int) uint64 {
	return dKey(w, d)<<28 | uint64(nameIdx)<<12 | uint64(c)
}

// custOrderKey indexes a customer's orders newest-first: the order id is
// stored inverted so an ascending scan returns the latest order first.
func custOrderKey(w, d, c, o int) uint64 {
	return cKey(w, d, c)<<24 | uint64(maxOrderID-o)
}

// olKeyOrder extracts the order prefix of an order-line key.
func olKeyOrder(k uint64) uint64 { return k >> 4 }

// Field offsets within rows. Only the fields the transactions touch are
// named; the remaining bytes hold the generated filler strings.

// Warehouse row.
const (
	whYTD  = 0  // int64 cents
	whTax  = 8  // int32 basis points
	whName = 12 // [10]byte
)

// District row.
const (
	diYTD     = 0  // int64 cents
	diTax     = 8  // int32 basis points
	diNextOID = 12 // uint32
	diName    = 16 // [10]byte
)

// Customer row.
const (
	cuBalance     = 0  // int64 cents
	cuYTDPayment  = 8  // int64 cents
	cuPaymentCnt  = 16 // uint16
	cuDeliveryCnt = 18 // uint16
	cuCreditLim   = 20 // int64 cents
	cuDiscount    = 28 // int32 basis points
	cuCredit      = 32 // [2]byte "GC"/"BC"
	cuFirst       = 34 // [16]byte
	cuMiddle      = 50 // [2]byte
	cuLast        = 52 // [16]byte
	cuSince       = 68 // int64
	cuData        = 76 // [500]byte
)

// History row.
const (
	hiCustomer = 0  // uint32 customer id
	hiCustD    = 4  // uint32
	hiCustW    = 8  // uint32
	hiD        = 12 // uint32
	hiW        = 16 // uint32
	hiDate     = 20 // int64
	hiAmount   = 28 // int64 cents
	hiData     = 36 // [24]byte
)

// Order row.
const (
	orCustomer = 0  // uint32
	orEntryD   = 4  // int64
	orCarrier  = 12 // uint8 (0 = not delivered)
	orOLCnt    = 13 // uint8
	orAllLocal = 14 // uint8
)

// Order-line row.
const (
	olItem      = 0  // uint32
	olSupplyW   = 4  // uint32
	olDeliveryD = 8  // int64 (0 = pending)
	olQuantity  = 16 // uint8
	olAmount    = 17 // int64 cents
	olDistInfo  = 25 // [24]byte
)

// Item row.
const (
	itImage = 0  // uint32
	itPrice = 4  // int64 cents
	itName  = 12 // [24]byte
	itData  = 36 // [50]byte
)

// Stock row.
const (
	stQuantity  = 0   // int32
	stYTD       = 4   // int64
	stOrderCnt  = 12  // uint16
	stRemoteCnt = 14  // uint16
	stDist      = 16  // [10][24]byte
	stData      = 256 // [50]byte
)

// Integer field helpers.

func getU32(row []byte, off int) uint32    { return binary.LittleEndian.Uint32(row[off:]) }
func putU32(row []byte, off int, v uint32) { binary.LittleEndian.PutUint32(row[off:], v) }
func getU16(row []byte, off int) uint16    { return binary.LittleEndian.Uint16(row[off:]) }
func putU16(row []byte, off int, v uint16) { binary.LittleEndian.PutUint16(row[off:], v) }
func getI64(row []byte, off int) int64     { return int64(binary.LittleEndian.Uint64(row[off:])) }
func putI64(row []byte, off int, v int64)  { binary.LittleEndian.PutUint64(row[off:], uint64(v)) }
func getI32(row []byte, off int) int32     { return int32(binary.LittleEndian.Uint32(row[off:])) }
func putI32(row []byte, off int, v int32)  { binary.LittleEndian.PutUint32(row[off:], uint32(v)) }
