// Package fptree reimplements the FPTree (Oukid et al., SIGMOD 2016), the
// hybrid DRAM-NVM B+-tree the paper compares against in §5.5 and §A.5.
//
// The FPTree places leaf nodes on NVM and keeps the inner search structure
// in DRAM: lookups descend DRAM-resident nodes for free and touch NVM only
// at the leaf, where one-byte fingerprints filter candidate slots so that a
// point lookup costs around two NVM cache-line accesses instead of the
// roughly eight a binary-searched sorted leaf needs. Durability comes from
// the NVM-resident leaves alone; after a restart the inner structure is
// rebuilt by scanning all leaves (§A.5 measures this ramp-up).
//
// As in the original paper's evaluation (and the reproduction's Figure 11),
// keys and values are 8-byte integers and leaves hold 56 entries. The
// DRAM-resident inner structure is a sorted (smallest key, leaf) directory
// searched by binary search; it has the same DRAM-only access profile as
// the original's inner nodes, which is the property the comparison
// exercises. Persistence ordering follows the original: an insert first
// persists the key/value slot, then atomically publishes it by persisting
// the fingerprint and bitmap word.
//
// Not safe for concurrent use (the reproduced evaluation is
// single-threaded).
package fptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"nvmstore/internal/nvm"
)

// LeafEntries is the number of entries per NVM leaf, as configured in the
// FPTree paper's evaluation (56 entries of 16 bytes).
const LeafEntries = 56

// Leaf NVM layout (1024 bytes, 16 cache lines):
//
//	off  0: bitmap  uint64 (bit i = slot i occupied)
//	off  8: next    int64  (NVM offset of the right sibling, 0 = none)
//	off 16: fingerprints [56]byte
//	off 80: entries [56]{key uint64, value uint64}
const (
	leafSize    = 1024
	offBitmap   = 0
	offNext     = 8
	offFPs      = 16
	offEntries  = 80
	metaSize    = 64         // region header: magic + head offset
	regionMagic = 0x46505452 // "FPTR"
)

// ErrFull is returned when the NVM region cannot hold another leaf.
var ErrFull = errors.New("fptree: NVM region full")

// dirEntry is one DRAM-resident directory entry: the smallest key stored
// in the leaf at off.
type dirEntry struct {
	minKey uint64
	off    int64
}

// Tree is an FPTree over a region of a simulated NVM device.
type Tree struct {
	dev  *nvm.Device
	off  int64
	size int64

	next int64 // bump allocator for leaves

	// dir is the DRAM-resident inner structure, sorted by minKey. The
	// first entry always has minKey 0 so every key routes somewhere.
	dir []dirEntry

	count int
}

// New creates an empty FPTree in [off, off+size) of dev.
func New(dev *nvm.Device, off, size int64) (*Tree, error) {
	if size < metaSize+2*leafSize {
		return nil, fmt.Errorf("fptree: region of %d bytes too small", size)
	}
	t := &Tree{dev: dev, off: off, size: size, next: metaSize}
	head, err := t.allocLeaf()
	if err != nil {
		return nil, err
	}
	t.writeMeta(head)
	t.dir = []dirEntry{{minKey: 0, off: head}}
	return t, nil
}

func (t *Tree) writeMeta(head int64) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], regionMagic)
	binary.LittleEndian.PutUint64(b[8:], uint64(head))
	t.dev.Persist(b[:], t.off)
}

func (t *Tree) allocLeaf() (int64, error) {
	if t.next+leafSize > t.size {
		return 0, ErrFull
	}
	off := t.next
	t.next += leafSize
	// A fresh leaf must have a zero bitmap; the region may be reused
	// memory, so clear and persist the header word.
	var zero [16]byte
	t.dev.Persist(zero[:], t.off+off)
	return off, nil
}

// Count returns the number of entries.
func (t *Tree) Count() int { return t.count }

// Leaves returns the number of allocated leaves.
func (t *Tree) Leaves() int { return len(t.dir) }

// fingerprint is the one-byte hash filtering leaf slots.
func fingerprint(key uint64) byte {
	x := key
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return byte(x ^ (x >> 31))
}

// findLeaf locates the directory slot responsible for key. This is the
// DRAM-resident part of a lookup and charges no NVM time.
func (t *Tree) findLeaf(key uint64) int {
	i := sort.Search(len(t.dir), func(i int) bool { return t.dir[i].minKey > key })
	return i - 1
}

// Lookup returns the value stored under key. It reads the leaf's bitmap
// and fingerprint lines, then only the candidate entries whose fingerprint
// matches — around two NVM cache-line accesses for a present key.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	leaf := t.off + t.dir[t.findLeaf(key)].off
	var hdr [offEntries]byte
	t.dev.ReadAt(hdr[:], leaf)
	bitmap := binary.LittleEndian.Uint64(hdr[offBitmap:])
	fp := fingerprint(key)
	for i := 0; i < LeafEntries; i++ {
		if bitmap&(1<<uint(i)) == 0 || hdr[offFPs+i] != fp {
			continue
		}
		var kv [16]byte
		t.dev.ReadAt(kv[:], leaf+offEntries+int64(i)*16)
		if binary.LittleEndian.Uint64(kv[0:]) == key {
			return binary.LittleEndian.Uint64(kv[8:]), true
		}
	}
	return 0, false
}

// Insert stores key -> value, overwriting an existing entry. Persistence
// order follows the FPTree protocol: the 16-byte entry is persisted first,
// then the fingerprint and bitmap publish it; a crash in between leaves an
// unpublished slot that the bitmap ignores.
func (t *Tree) Insert(key, value uint64) error {
	di := t.findLeaf(key)
	leaf := t.off + t.dir[di].off
	var hdr [offEntries]byte
	t.dev.ReadAt(hdr[:], leaf)
	bitmap := binary.LittleEndian.Uint64(hdr[offBitmap:])
	fp := fingerprint(key)

	// Overwrite when present.
	for i := 0; i < LeafEntries; i++ {
		if bitmap&(1<<uint(i)) == 0 || hdr[offFPs+i] != fp {
			continue
		}
		var kv [16]byte
		t.dev.ReadAt(kv[:], leaf+offEntries+int64(i)*16)
		if binary.LittleEndian.Uint64(kv[0:]) == key {
			binary.LittleEndian.PutUint64(kv[8:], value)
			t.dev.Persist(kv[:], leaf+offEntries+int64(i)*16)
			return nil
		}
	}

	// Split if full.
	if popcount(bitmap) == LeafEntries {
		if err := t.splitLeaf(di); err != nil {
			return err
		}
		return t.Insert(key, value)
	}

	// Claim the first free slot.
	slot := 0
	for ; slot < LeafEntries; slot++ {
		if bitmap&(1<<uint(slot)) == 0 {
			break
		}
	}
	var kv [16]byte
	binary.LittleEndian.PutUint64(kv[0:], key)
	binary.LittleEndian.PutUint64(kv[8:], value)
	t.dev.Persist(kv[:], leaf+offEntries+int64(slot)*16)

	// Publish: fingerprint first (same flush covers both header lines).
	t.dev.WriteAt([]byte{fp}, leaf+offFPs+int64(slot))
	var bm [8]byte
	binary.LittleEndian.PutUint64(bm[:], bitmap|1<<uint(slot))
	t.dev.WriteAt(bm[:], leaf+offBitmap)
	t.dev.Flush(leaf+offBitmap, offFPs+LeafEntries)
	t.count++
	return nil
}

// Delete removes key, returning whether it was present. Clearing the
// bitmap bit unpublishes the slot with a single persisted word.
func (t *Tree) Delete(key uint64) (bool, error) {
	leaf := t.off + t.dir[t.findLeaf(key)].off
	var hdr [offEntries]byte
	t.dev.ReadAt(hdr[:], leaf)
	bitmap := binary.LittleEndian.Uint64(hdr[offBitmap:])
	fp := fingerprint(key)
	for i := 0; i < LeafEntries; i++ {
		if bitmap&(1<<uint(i)) == 0 || hdr[offFPs+i] != fp {
			continue
		}
		var kv [16]byte
		t.dev.ReadAt(kv[:], leaf+offEntries+int64(i)*16)
		if binary.LittleEndian.Uint64(kv[0:]) == key {
			var bm [8]byte
			binary.LittleEndian.PutUint64(bm[:], bitmap&^(1<<uint(i)))
			t.dev.Persist(bm[:], leaf+offBitmap)
			t.count--
			return true, nil
		}
	}
	return false, nil
}

// splitLeaf splits the leaf at directory index di at its median key.
func (t *Tree) splitLeaf(di int) error {
	leafOff := t.dir[di].off
	leaf := t.off + leafOff
	buf := make([]byte, leafSize)
	t.dev.ReadAt(buf, leaf)
	bitmap := binary.LittleEndian.Uint64(buf[offBitmap:])

	type ent struct {
		key  uint64
		slot int
	}
	entries := make([]ent, 0, LeafEntries)
	for i := 0; i < LeafEntries; i++ {
		if bitmap&(1<<uint(i)) != 0 {
			entries = append(entries, ent{binary.LittleEndian.Uint64(buf[offEntries+i*16:]), i})
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })
	mid := len(entries) / 2
	sep := entries[mid].key

	newOff, err := t.allocLeaf()
	if err != nil {
		return err
	}
	newLeaf := t.off + newOff

	// Build and persist the new right leaf: upper-half entries packed
	// into the low slots.
	nbuf := make([]byte, leafSize)
	var nbitmap uint64
	for j, e := range entries[mid:] {
		copy(nbuf[offEntries+j*16:], buf[offEntries+e.slot*16:offEntries+e.slot*16+16])
		nbuf[offFPs+j] = buf[offFPs+e.slot]
		nbitmap |= 1 << uint(j)
	}
	binary.LittleEndian.PutUint64(nbuf[offBitmap:], nbitmap)
	copy(nbuf[offNext:], buf[offNext:offNext+8]) // inherit sibling
	t.dev.Persist(nbuf, newLeaf)

	// Commit the split on the old leaf: drop the moved entries from the
	// bitmap and point next at the new leaf. Both words share the first
	// cache line, so one flush publishes the split atomically.
	var oldBitmap uint64
	for _, e := range entries[:mid] {
		oldBitmap |= 1 << uint(e.slot)
	}
	var word [16]byte
	binary.LittleEndian.PutUint64(word[0:], oldBitmap)
	binary.LittleEndian.PutUint64(word[8:], uint64(newOff))
	t.dev.Persist(word[:], leaf+offBitmap)

	// DRAM directory update.
	t.dir = append(t.dir, dirEntry{})
	copy(t.dir[di+2:], t.dir[di+1:])
	t.dir[di+1] = dirEntry{minKey: sep, off: newOff}
	return nil
}

// BulkLoad fills an empty tree with n entries in strictly ascending key
// order at the given leaf fill factor. It writes leaves directly,
// bypassing the insert protocol, like an offline load.
func (t *Tree) BulkLoad(n int, keyAt func(i int) uint64, valAt func(i int) uint64, fill float64) error {
	if t.count != 0 || len(t.dir) != 1 {
		return fmt.Errorf("fptree: bulk load into non-empty tree")
	}
	if n <= 0 {
		return nil
	}
	if fill <= 0 || fill > 1 {
		fill = 1
	}
	per := int(fill * LeafEntries)
	if per < 1 {
		per = 1
	}
	t.dir = t.dir[:0]
	buf := make([]byte, leafSize)
	var prevOff int64 = -1
	for i := 0; i < n; {
		batch := per
		if n-i < batch {
			batch = n - i
		}
		off := t.next // allocate without the header round-trip; we write the whole leaf
		if off+leafSize > t.size {
			return ErrFull
		}
		t.next += leafSize
		for j := range buf {
			buf[j] = 0
		}
		var bitmap uint64
		for j := 0; j < batch; j++ {
			k := keyAt(i + j)
			binary.LittleEndian.PutUint64(buf[offEntries+j*16:], k)
			binary.LittleEndian.PutUint64(buf[offEntries+j*16+8:], valAt(i+j))
			buf[offFPs+j] = fingerprint(k)
			bitmap |= 1 << uint(j)
		}
		binary.LittleEndian.PutUint64(buf[offBitmap:], bitmap)
		t.dev.Persist(buf, t.off+off)
		if prevOff >= 0 {
			var nxt [8]byte
			binary.LittleEndian.PutUint64(nxt[:], uint64(off))
			t.dev.Persist(nxt[:], t.off+prevOff+offNext)
		} else {
			t.writeMeta(off)
		}
		minKey := keyAt(i)
		if len(t.dir) == 0 {
			minKey = 0
		}
		t.dir = append(t.dir, dirEntry{minKey: minKey, off: off})
		prevOff = off
		i += batch
	}
	t.count = n
	return nil
}

// Rebuild reconstructs the DRAM-resident inner structure by walking the
// persistent leaf chain, reading every leaf's header and keys from NVM.
// This is the restart cost Figure 17 measures for the FPTree (§A.5).
func (t *Tree) Rebuild() error {
	var meta [16]byte
	t.dev.ReadAt(meta[:], t.off)
	if binary.LittleEndian.Uint64(meta[0:]) != regionMagic {
		return fmt.Errorf("fptree: bad region magic")
	}
	head := int64(binary.LittleEndian.Uint64(meta[8:]))

	t.dir = t.dir[:0]
	t.count = 0
	maxOff := head
	off := head
	first := true
	for {
		leaf := t.off + off
		buf := make([]byte, leafSize)
		t.dev.ReadAt(buf, leaf)
		bitmap := binary.LittleEndian.Uint64(buf[offBitmap:])
		minKey := ^uint64(0)
		for i := 0; i < LeafEntries; i++ {
			if bitmap&(1<<uint(i)) != 0 {
				k := binary.LittleEndian.Uint64(buf[offEntries+i*16:])
				if k < minKey {
					minKey = k
				}
				t.count++
			}
		}
		if first {
			minKey = 0
			first = false
		}
		t.dir = append(t.dir, dirEntry{minKey: minKey, off: off})
		if off > maxOff {
			maxOff = off
		}
		next := int64(binary.LittleEndian.Uint64(buf[offNext:]))
		if next == 0 {
			break
		}
		off = next
	}
	t.next = maxOff + leafSize
	sort.Slice(t.dir, func(a, b int) bool { return t.dir[a].minKey < t.dir[b].minKey })
	return nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
