package fptree

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nvmstore/internal/nvm"
	"nvmstore/internal/simclock"
)

func newTree(t *testing.T, size int64, strict bool) (*Tree, *nvm.Device, *simclock.Clock) {
	t.Helper()
	clk := &simclock.Clock{}
	dev := nvm.New(nvm.Config{
		Size:              size,
		ReadLatency:       500 * time.Nanosecond,
		WriteLatency:      500 * time.Nanosecond,
		LineTransfer:      5 * time.Nanosecond,
		StrictPersistence: strict,
	}, clk)
	tr, err := New(dev, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	return tr, dev, clk
}

func TestInsertLookup(t *testing.T) {
	tr, _, _ := newTree(t, 1<<20, false)
	keys := []uint64{5, 1, 99, 3, 1 << 40, 0, 7}
	for _, k := range keys {
		if err := tr.Insert(k, k*2+1); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for _, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != k*2+1 {
			t.Fatalf("Lookup(%d) = %d, %v", k, v, ok)
		}
	}
	if _, ok := tr.Lookup(12345); ok {
		t.Fatal("found absent key")
	}
	if tr.Count() != len(keys) {
		t.Fatalf("Count = %d, want %d", tr.Count(), len(keys))
	}
}

func TestOverwrite(t *testing.T) {
	tr, _, _ := newTree(t, 1<<20, false)
	if err := tr.Insert(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(9, 2); err != nil {
		t.Fatal(err)
	}
	v, ok := tr.Lookup(9)
	if !ok || v != 2 {
		t.Fatalf("Lookup = %d, %v", v, ok)
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d after overwrite", tr.Count())
	}
}

func TestSplitsAndMany(t *testing.T) {
	tr, _, _ := newTree(t, 8<<20, false)
	const n = 10000
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := tr.Insert(uint64(i), uint64(i)+7); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if tr.Leaves() < n/LeafEntries {
		t.Fatalf("only %d leaves for %d entries", tr.Leaves(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Lookup(uint64(i))
		if !ok || v != uint64(i)+7 {
			t.Fatalf("Lookup(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	tr, _, _ := newTree(t, 1<<20, false)
	for i := uint64(0); i < 200; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i += 2 {
		found, err := tr.Delete(i)
		if err != nil || !found {
			t.Fatalf("Delete(%d) = %v, %v", i, found, err)
		}
	}
	if found, _ := tr.Delete(0); found {
		t.Fatal("double delete found key")
	}
	for i := uint64(0); i < 200; i++ {
		_, ok := tr.Lookup(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Lookup(%d) = %v, want %v", i, ok, want)
		}
	}
	if tr.Count() != 100 {
		t.Fatalf("Count = %d, want 100", tr.Count())
	}
}

func TestBulkLoadAndRebuild(t *testing.T) {
	tr, dev, _ := newTree(t, 8<<20, false)
	const n = 20000
	err := tr.BulkLoad(n,
		func(i int) uint64 { return uint64(i) * 3 },
		func(i int) uint64 { return uint64(i) ^ 0xFF },
		0.66)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		v, ok := tr.Lookup(uint64(i) * 3)
		if !ok || v != uint64(i)^0xFF {
			t.Fatalf("Lookup(%d) = %d, %v", i*3, v, ok)
		}
	}
	if _, ok := tr.Lookup(4); ok {
		t.Fatal("found absent key")
	}

	// Restart: a new Tree object over the same device rebuilds the inner
	// structure from the persistent leaves.
	tr2 := &Tree{dev: dev, off: 0, size: 8 << 20}
	if err := tr2.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != n {
		t.Fatalf("Count after rebuild = %d, want %d", tr2.Count(), n)
	}
	for _, i := range []int{0, 777, n - 1} {
		v, ok := tr2.Lookup(uint64(i) * 3)
		if !ok || v != uint64(i)^0xFF {
			t.Fatalf("post-rebuild Lookup(%d) = %d, %v", i*3, v, ok)
		}
	}
	// Inserts keep working after a rebuild (the allocator advanced past
	// the recovered leaves).
	if err := tr2.Insert(1, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr2.Lookup(1); !ok || v != 42 {
		t.Fatalf("Lookup(1) after rebuild-insert = %d, %v", v, ok)
	}
}

func TestCrashDuringInsertIsIgnored(t *testing.T) {
	tr, dev, _ := newTree(t, 1<<20, true)
	if err := tr.Insert(1, 11); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn middle of an insert: entry written and persisted,
	// but the publishing bitmap write lost.
	leaf := tr.off + tr.dir[0].off
	var kv [16]byte
	kv[0] = 2 // key 2
	kv[8] = 22
	dev.Persist(kv[:], leaf+offEntries+16)
	// Unpublished: bitmap was never updated. Crash and rebuild.
	dev.Crash()
	tr2 := &Tree{dev: dev, off: 0, size: 1 << 20}
	if err := tr2.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr2.Lookup(2); ok {
		t.Fatal("unpublished slot visible after crash")
	}
	if v, ok := tr2.Lookup(1); !ok || v != 11 {
		t.Fatalf("published entry lost: %d, %v", v, ok)
	}
}

func TestLookupTouchesFewLines(t *testing.T) {
	tr, dev, _ := newTree(t, 8<<20, false)
	const n = 5000
	if err := tr.BulkLoad(n,
		func(i int) uint64 { return uint64(i) },
		func(i int) uint64 { return uint64(i) },
		1.0); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	const lookups = 1000
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < lookups; i++ {
		if _, ok := tr.Lookup(uint64(rng.Intn(n))); !ok {
			t.Fatal("missed present key")
		}
	}
	st := dev.Stats()
	perLookup := float64(st.LinesRead) / lookups
	// Header (2 lines) + usually one entry line: must stay well under a
	// sorted leaf's ~8 accesses.
	if perLookup > 4.5 {
		t.Fatalf("%.1f lines per lookup, expected few (fingerprints should filter)", perLookup)
	}
}

func TestRegionFull(t *testing.T) {
	tr, _, _ := newTree(t, metaSize+2*leafSize, false)
	var err error
	for i := uint64(0); i < 1000 && err == nil; i++ {
		err = tr.Insert(i, i)
	}
	if err == nil {
		t.Fatal("tiny region accepted 1000 inserts")
	}
}

// TestQuickAgainstMap property-checks the FPTree against a map model for
// random operation sequences.
func TestQuickAgainstMap(t *testing.T) {
	prop := func(ops []uint32) bool {
		clk := &simclock.Clock{}
		dev := nvm.New(nvm.Config{Size: 4 << 20, ReadLatency: 1, WriteLatency: 1, LineTransfer: 1}, clk)
		tr, err := New(dev, 0, 4<<20)
		if err != nil {
			return false
		}
		model := make(map[uint64]uint64)
		for _, op := range ops {
			key := uint64(op % 500)
			switch (op >> 16) % 3 {
			case 0, 1:
				val := uint64(op)
				if err := tr.Insert(key, val); err != nil {
					return false
				}
				model[key] = val
			case 2:
				found, err := tr.Delete(key)
				if err != nil {
					return false
				}
				_, exists := model[key]
				if found != exists {
					return false
				}
				delete(model, key)
			}
		}
		if tr.Count() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
