// Package nvm simulates a byte-addressable non-volatile memory device.
//
// The device stands in for the Intel Crystal Ridge Software Emulation
// Platform used by the paper "Managing Non-Volatile Memory in Database
// Systems" (SIGMOD 2018). It models exactly the properties the paper's
// experiments depend on:
//
//   - configurable read latency (the paper sweeps 165 ns to 1800 ns),
//   - asymmetric write latency,
//   - cache-line (64 B) access granularity with a bandwidth term for
//     contiguous transfers,
//   - explicit persistence via Flush, mirroring clwb+sfence: data written
//     with WriteAt is visible but not durable until flushed,
//   - per-cache-line write (wear) counters for the endurance experiment,
//   - an optional CPU last-level cache simulation, so that systems working
//     directly on NVM benefit from cache hits on hot lines exactly as the
//     paper's NVM Direct engine benefits from the real L3.
//
// Latency is not slept away; it is charged to a simclock.Clock so that
// experiments are deterministic and fast (see internal/simclock).
//
// The device is not safe for concurrent use; the reproduced engines are
// single-threaded, matching the paper's evaluation setup.
package nvm

import (
	"fmt"
	"time"

	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/simclock"
)

// LineSize is the cache-line granularity of the device in bytes.
const LineSize = 64

// Config describes the geometry and timing of a simulated NVM device.
type Config struct {
	// Size is the capacity of the device in bytes. It is rounded up to a
	// multiple of LineSize.
	Size int64

	// ReadLatency is charged once per contiguous read that misses the
	// simulated CPU cache. The paper's default is 500 ns.
	ReadLatency time.Duration

	// WriteLatency is charged once per contiguous flush. NVM writes are
	// more expensive than reads; the paper calls the latency asymmetric.
	WriteLatency time.Duration

	// LineTransfer is the bandwidth term: each additional contiguous line
	// in a read or flush costs this much on top of the base latency. The
	// default of 30 ns per 64 B line (~2.1 GB/s) makes a full 16 kB page
	// load cost about 16 single-line reads, matching the benefit the
	// paper measures for cache-line-grained loading.
	LineTransfer time.Duration

	// CPUCacheBytes is the size of the simulated last-level CPU cache
	// sitting in front of the device. Reads that hit this cache are free.
	// Zero disables the cache simulation.
	CPUCacheBytes int64

	// CPUCacheWays is the associativity of the simulated CPU cache.
	// Defaults to 8 when the cache is enabled.
	CPUCacheWays int

	// StrictPersistence enables crash simulation: WriteAt records the
	// previous content of each written line, and Crash reverts every line
	// that has not been flushed since. This is the adversarial
	// interpretation of the paper's observation that an unflushed store
	// may or may not have reached NVM.
	StrictPersistence bool
}

// DefaultConfig returns the device configuration used throughout the
// reproduction unless an experiment overrides it: the paper's default
// 500 ns NVM latency with a 20 MB, 8-way L3 in front.
func DefaultConfig(size int64) Config {
	return Config{
		Size:          size,
		ReadLatency:   500 * time.Nanosecond,
		WriteLatency:  500 * time.Nanosecond,
		LineTransfer:  30 * time.Nanosecond,
		CPUCacheBytes: 20 << 20,
		CPUCacheWays:  8,
	}
}

// Stats counts device traffic since the last call to ResetStats.
type Stats struct {
	// LinesRead is the number of cache lines requested by reads,
	// including those served by the simulated CPU cache.
	LinesRead int64
	// LinesReadCharged is the number of lines that actually paid NVM
	// read latency (CPU-cache misses).
	LinesReadCharged int64
	// ReadOps is the number of ReadAt calls.
	ReadOps int64
	// LinesFlushed is the number of cache lines made durable by Flush.
	LinesFlushed int64
	// FlushOps is the number of Flush calls.
	FlushOps int64
	// LinesWritten is the number of cache lines stored by WriteAt.
	LinesWritten int64
}

// Device is a simulated NVM DIMM.
type Device struct {
	cfg   Config
	clk   *simclock.Clock
	data  []byte
	wear  []uint32
	stats Stats
	cache *cpuCache

	// pending maps line index -> previous durable content, only in
	// strict persistence mode.
	pending map[int64][]byte

	// Crash injection (FailAfterFlushes).
	failArmed bool
	failIn    int64

	// faults, when non-nil, is consulted on every Flush for scheduled
	// torn flushes, clean crashes, and stalls (see SetFaults).
	faults *fault.Injector

	rec obs.Recorder
	// zeroReads batches fully CPU-cached ReadAt/Touch calls — the hot
	// case — so they cost a plain increment instead of an atomic; see
	// recordRead and SyncObs.
	zeroReads int64
}

// SetRecorder installs an observability recorder. Every ReadAt/Touch
// records its charged latency as obs.OpNVMRead (zero on CPU-cache hits)
// and every Flush as obs.OpNVMFlush. A nil recorder (the default) disables
// recording.
func (d *Device) SetRecorder(r obs.Recorder) { d.rec = r }

// recordRead records one read's charged latency. Callers hold the
// d.rec != nil guard.
func (d *Device) recordRead(ns int64) {
	if ns > 0 {
		d.rec.Latency(obs.OpNVMRead, ns)
		return
	}
	d.zeroReads++
	if d.zeroReads >= obs.ZeroFlush {
		d.rec.LatencyZeros(obs.OpNVMRead, d.zeroReads)
		d.zeroReads = 0
	}
}

// SyncObs flushes the batched zero-cost read count into the recorder.
// Call only while the device's owning engine is idle.
func (d *Device) SyncObs() {
	if d.rec != nil && d.zeroReads > 0 {
		d.rec.LatencyZeros(obs.OpNVMRead, d.zeroReads)
		d.zeroReads = 0
	}
}

// New creates a device with the given configuration, charging all device
// time to clk. It panics if cfg.Size is not positive or clk is nil, since
// both indicate a programming error rather than a runtime condition.
func New(cfg Config, clk *simclock.Clock) *Device {
	if cfg.Size <= 0 {
		panic("nvm: non-positive device size")
	}
	if clk == nil {
		panic("nvm: nil clock")
	}
	lines := (cfg.Size + LineSize - 1) / LineSize
	cfg.Size = lines * LineSize
	d := &Device{
		cfg:  cfg,
		clk:  clk,
		data: make([]byte, cfg.Size),
		wear: make([]uint32, lines),
	}
	if cfg.CPUCacheBytes > 0 {
		ways := cfg.CPUCacheWays
		if ways <= 0 {
			ways = 8
		}
		d.cache = newCPUCache(cfg.CPUCacheBytes, ways)
	}
	if cfg.StrictPersistence {
		d.pending = make(map[int64][]byte)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.cfg.Size }

// Lines returns the number of cache lines on the device.
func (d *Device) Lines() int64 { return int64(len(d.wear)) }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetReadLatency changes the read latency, supporting the paper's NVM
// latency sweep (Figure 12) without rebuilding the device.
func (d *Device) SetReadLatency(l time.Duration) { d.cfg.ReadLatency = l }

// SetWriteLatency changes the write latency.
func (d *Device) SetWriteLatency(l time.Duration) { d.cfg.WriteLatency = l }

func (d *Device) checkRange(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.Size {
		panic(fmt.Sprintf("nvm: access [%d, %d) outside device of size %d", off, off+int64(n), d.cfg.Size))
	}
}

// lineRange returns the first line index and number of lines covering
// [off, off+n).
func lineRange(off int64, n int) (first, count int64) {
	if n == 0 {
		return off / LineSize, 0
	}
	first = off / LineSize
	last := (off + int64(n) - 1) / LineSize
	return first, last - first + 1
}

// ReadAt copies len(p) bytes starting at off into p, charging read latency
// for the cache lines that miss the simulated CPU cache.
func (d *Device) ReadAt(p []byte, off int64) {
	d.checkRange(off, len(p))
	if len(p) == 0 {
		return
	}
	first, count := lineRange(off, len(p))
	misses := int64(0)
	for l := first; l < first+count; l++ {
		if d.cache == nil || !d.cache.access(l) {
			misses++
		}
	}
	d.stats.ReadOps++
	d.stats.LinesRead += count
	d.stats.LinesReadCharged += misses
	var ns int64
	if misses > 0 {
		ns = int64(d.cfg.ReadLatency) + (misses-1)*int64(d.cfg.LineTransfer)
		d.clk.AdvanceNs(ns)
	}
	if d.rec != nil {
		d.recordRead(ns)
	}
	copy(p, d.data[off:off+int64(len(p))])
}

// Touch charges exactly what a ReadAt of [off, off+n) would charge without
// copying any data. It exists for engines that access the device zero-copy
// through View, such as the NVM Direct engine working in place.
func (d *Device) Touch(off int64, n int) {
	d.checkRange(off, n)
	if n == 0 {
		return
	}
	first, count := lineRange(off, n)
	misses := int64(0)
	for l := first; l < first+count; l++ {
		if d.cache == nil || !d.cache.access(l) {
			misses++
		}
	}
	d.stats.ReadOps++
	d.stats.LinesRead += count
	d.stats.LinesReadCharged += misses
	var ns int64
	if misses > 0 {
		ns = int64(d.cfg.ReadLatency) + (misses-1)*int64(d.cfg.LineTransfer)
		d.clk.AdvanceNs(ns)
	}
	if d.rec != nil {
		d.recordRead(ns)
	}
}

// View returns the device's backing memory for [off, off+n) without
// charging anything. Callers are responsible for charging reads via Touch
// and persisting mutations via Flush. Mutations made through a view bypass
// strict-persistence tracking: they behave like stores that the CPU evicted
// to NVM on its own, which the paper notes can happen at any time.
func (d *Device) View(off int64, n int) []byte {
	d.checkRange(off, n)
	return d.data[off : off+int64(n)]
}

// WriteAt stores p at off. The store is immediately visible to ReadAt but
// not durable until the covered lines are flushed: in strict persistence
// mode a Crash reverts unflushed lines. WriteAt itself charges no device
// time; the cost of persisting is charged by Flush, mirroring how stores go
// to the CPU cache and clwb pays the NVM write.
func (d *Device) WriteAt(p []byte, off int64) {
	d.checkRange(off, len(p))
	if len(p) == 0 {
		return
	}
	first, count := lineRange(off, len(p))
	d.stats.LinesWritten += count
	if d.pending != nil {
		for l := first; l < first+count; l++ {
			if _, ok := d.pending[l]; !ok {
				prev := make([]byte, LineSize)
				copy(prev, d.data[l*LineSize:(l+1)*LineSize])
				d.pending[l] = prev
			}
		}
	}
	if d.cache != nil {
		for l := first; l < first+count; l++ {
			d.cache.access(l) // write-allocate
		}
	}
	copy(d.data[off:off+int64(len(p))], p)
}

// InjectedCrash is the panic value thrown by a flush when a crash was
// armed with FailAfterFlushes. Test harnesses recover it and then restart
// the engine, simulating a power failure in the middle of an operation.
type InjectedCrash struct{}

// Error implements the error interface.
func (InjectedCrash) Error() string { return "nvm: injected crash" }

// FailAfterFlushes arms a crash: after n more successful flushes, the next
// flush panics with InjectedCrash before persisting anything, and in
// strict-persistence mode every line not yet flushed is lost. Pass a
// negative n to disarm.
func (d *Device) FailAfterFlushes(n int64) {
	d.failIn = n
	d.failArmed = n >= 0
}

// SetFaults installs a fault injector consulted on every Flush: a
// fault.NVMStall charges extra latency, a fault.NVMCrash panics with
// fault.Crash before persisting anything, and a fault.NVMTornFlush
// persists only a prefix of the flushed lines before crashing — the
// adversarial interleaving of per-line clwbs with a power failure that
// the paper's sfence ordering argument has to survive. A nil injector
// (the default) disables injection.
func (d *Device) SetFaults(in *fault.Injector) { d.faults = in }

// Flush makes the lines covering [off, off+n) durable, charging write
// latency and incrementing the wear counter of every flushed line. It
// models clwb of each line followed by an sfence: the lines stay valid in
// the simulated CPU cache.
func (d *Device) Flush(off int64, n int) {
	d.checkRange(off, n)
	if n == 0 {
		return
	}
	if d.failArmed {
		if d.failIn <= 0 {
			d.failArmed = false
			panic(InjectedCrash{})
		}
		d.failIn--
	}
	first, count := lineRange(off, n)
	if d.faults != nil {
		if st := d.faults.Check(fault.NVMStall); st.Fire {
			d.clk.AdvanceNs(st.StallNs)
		}
		if d.faults.Check(fault.NVMCrash).Fire {
			panic(fault.Crash{Kind: fault.NVMCrash, Site: "nvm.flush"})
		}
		if torn := d.faults.Check(fault.NVMTornFlush); torn.Fire {
			// The crash lands between two clwbs: a prefix of the lines
			// reaches the medium (they leave the strict-persistence
			// pending set and count as wear), the rest never persists.
			// Frac < 1 guarantees at least the last line is lost.
			durable := int64(torn.Frac * float64(count))
			for l := first; l < first+durable; l++ {
				d.wear[l]++
				if d.pending != nil {
					delete(d.pending, l)
				}
			}
			d.stats.LinesFlushed += durable
			panic(fault.Crash{Kind: fault.NVMTornFlush, Site: "nvm.flush"})
		}
	}
	for l := first; l < first+count; l++ {
		d.wear[l]++
		if d.pending != nil {
			delete(d.pending, l)
		}
	}
	d.stats.FlushOps++
	d.stats.LinesFlushed += count
	ns := int64(d.cfg.WriteLatency) + (count-1)*int64(d.cfg.LineTransfer)
	d.clk.AdvanceNs(ns)
	if d.rec != nil {
		d.rec.Latency(obs.OpNVMFlush, ns)
	}
}

// Persist is shorthand for WriteAt followed by Flush of the same range: a
// store that is immediately made durable, as the paper's engines do for WAL
// entries and in-place tuple updates.
func (d *Device) Persist(p []byte, off int64) {
	d.WriteAt(p, off)
	d.Flush(off, len(p))
}

// Crash simulates a power failure. In strict persistence mode every line
// written since its last flush reverts to its last durable content. The
// simulated CPU cache is dropped either way (a real restart starts cold).
func (d *Device) Crash() {
	for l, prev := range d.pending {
		copy(d.data[l*LineSize:(l+1)*LineSize], prev)
	}
	if d.pending != nil {
		d.pending = make(map[int64][]byte)
	}
	if d.cache != nil {
		d.cache.reset()
	}
}

// DropCPUCache empties the simulated CPU cache without touching data,
// modelling a clean restart where DRAM and caches are cold but NVM content
// survives.
func (d *Device) DropCPUCache() {
	if d.cache != nil {
		d.cache.reset()
	}
}

// Wear returns the write count of cache line l.
func (d *Device) Wear(l int64) uint32 { return d.wear[l] }

// WearCounts returns a copy of all per-line write counters.
func (d *Device) WearCounts() []uint32 {
	out := make([]uint32, len(d.wear))
	copy(out, d.wear)
	return out
}

// TotalWrites returns the sum of all wear counters, i.e. the total number
// of cache-line writes the device has absorbed.
func (d *Device) TotalWrites() int64 {
	var sum int64
	for _, w := range d.wear {
		sum += int64(w)
	}
	return sum
}

// ResetWear zeroes the wear counters.
func (d *Device) ResetWear() {
	for i := range d.wear {
		d.wear[i] = 0
	}
}

// Stats returns a snapshot of the traffic counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the traffic counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// cpuCache is a set-associative cache over line indices with per-set LRU
// replacement. It only tracks presence, not content: content always lives
// in the device slab.
type cpuCache struct {
	ways int
	sets int64
	// tags holds line indices + 1 (0 means empty), laid out per set in
	// LRU order: tags[set*ways] is most recently used.
	tags []int64
}

func newCPUCache(bytes int64, ways int) *cpuCache {
	sets := bytes / LineSize / int64(ways)
	if sets < 1 {
		sets = 1
	}
	return &cpuCache{ways: ways, sets: sets, tags: make([]int64, sets*int64(ways))}
}

// access looks up line l, inserting it if absent, and reports whether it
// was present (a hit).
func (c *cpuCache) access(l int64) bool {
	set := l % c.sets
	base := set * int64(c.ways)
	tag := l + 1
	ways := c.tags[base : base+int64(c.ways)]
	for i, t := range ways {
		if t == tag {
			// Move to front (most recently used).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	// Miss: insert at front, evicting the LRU way.
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = tag
	return false
}

func (c *cpuCache) reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}
