package nvm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot serialization lets a simulated device outlive the process: the
// durable content (and wear history) is written to a stream and restored
// into a compatible device later. Unflushed strict-persistence writes are
// *not* part of a snapshot — only durable state is, exactly as if the
// machine lost power after the snapshot.

const snapshotMagic = 0x4e564d534e415031 // "NVMSNAP1"

// WriteSnapshot writes the device's durable content and wear counters.
func (d *Device) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], snapshotMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(d.cfg.Size))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(d.wear)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	// Durable content: revert any unflushed lines while writing.
	if len(d.pending) == 0 {
		if _, err := bw.Write(d.data); err != nil {
			return err
		}
	} else {
		for l := int64(0); l < int64(len(d.wear)); l++ {
			line := d.data[l*LineSize : (l+1)*LineSize]
			if prev, ok := d.pending[l]; ok {
				line = prev
			}
			if _, err := bw.Write(line); err != nil {
				return err
			}
		}
	}
	for _, c := range d.wear {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], c)
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a snapshot into this device, which must have the
// same size. The simulated CPU cache starts cold, as after a real restart.
func (d *Device) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("nvm: snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != snapshotMagic {
		return fmt.Errorf("nvm: bad snapshot magic")
	}
	size := int64(binary.LittleEndian.Uint64(hdr[8:]))
	lines := int64(binary.LittleEndian.Uint64(hdr[16:]))
	if size != d.cfg.Size || lines != int64(len(d.wear)) {
		return fmt.Errorf("nvm: snapshot of %d bytes does not fit device of %d", size, d.cfg.Size)
	}
	if _, err := io.ReadFull(br, d.data); err != nil {
		return fmt.Errorf("nvm: snapshot data: %w", err)
	}
	buf := make([]byte, 4*len(d.wear))
	if _, err := io.ReadFull(br, buf); err != nil {
		return fmt.Errorf("nvm: snapshot wear: %w", err)
	}
	for i := range d.wear {
		d.wear[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	if d.pending != nil {
		d.pending = make(map[int64][]byte)
	}
	d.DropCPUCache()
	return nil
}
