package nvm

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"nvmstore/internal/simclock"
)

// testConfig returns a small device configuration without a CPU cache so
// latency charges are exact.
func testConfig(size int64) Config {
	return Config{
		Size:         size,
		ReadLatency:  500 * time.Nanosecond,
		WriteLatency: 700 * time.Nanosecond,
		LineTransfer: 5 * time.Nanosecond,
	}
}

func TestRoundTrip(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(4096), &clk)
	want := []byte("hello, persistent world")
	d.WriteAt(want, 100)
	got := make([]byte, len(want))
	d.ReadAt(got, 100)
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAt = %q, want %q", got, want)
	}
}

func TestSizeRoundedToLines(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(100), &clk)
	if d.Size() != 128 {
		t.Fatalf("Size() = %d, want 128", d.Size())
	}
	if d.Lines() != 2 {
		t.Fatalf("Lines() = %d, want 2", d.Lines())
	}
}

func TestReadChargesLatencyPerContiguousRun(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(1<<20), &clk)

	// One line: base latency only.
	buf := make([]byte, 8)
	d.ReadAt(buf, 0)
	if got, want := clk.Ns(), int64(500); got != want {
		t.Fatalf("single-line read charged %d ns, want %d", got, want)
	}

	// Four fresh lines in one call: base + 3 transfer terms.
	clk.Reset()
	big := make([]byte, 4*LineSize)
	d.ReadAt(big, 4*LineSize)
	if got, want := clk.Ns(), int64(500+3*5); got != want {
		t.Fatalf("4-line read charged %d ns, want %d", got, want)
	}
}

func TestReadSpanningLineBoundaryChargesBothLines(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(1<<20), &clk)
	buf := make([]byte, 8)
	d.ReadAt(buf, LineSize-4) // straddles lines 0 and 1
	if got, want := clk.Ns(), int64(500+5); got != want {
		t.Fatalf("straddling read charged %d ns, want %d", got, want)
	}
	if got := d.Stats().LinesRead; got != 2 {
		t.Fatalf("LinesRead = %d, want 2", got)
	}
}

func TestWriteAtChargesNothingFlushCharges(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(1<<20), &clk)
	p := make([]byte, 2*LineSize)
	d.WriteAt(p, 0)
	if clk.Ns() != 0 {
		t.Fatalf("WriteAt charged %d ns, want 0", clk.Ns())
	}
	d.Flush(0, len(p))
	if got, want := clk.Ns(), int64(700+5); got != want {
		t.Fatalf("2-line flush charged %d ns, want %d", got, want)
	}
}

func TestFlushIncrementsWear(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(1<<20), &clk)
	p := make([]byte, LineSize)
	for i := 0; i < 3; i++ {
		d.Persist(p, 0)
	}
	d.Persist(p, 5*LineSize)
	if got := d.Wear(0); got != 3 {
		t.Fatalf("Wear(0) = %d, want 3", got)
	}
	if got := d.Wear(5); got != 1 {
		t.Fatalf("Wear(5) = %d, want 1", got)
	}
	if got := d.TotalWrites(); got != 4 {
		t.Fatalf("TotalWrites() = %d, want 4", got)
	}
	counts := d.WearCounts()
	if counts[0] != 3 || counts[5] != 1 {
		t.Fatalf("WearCounts() = %v at 0 and 5, want 3 and 1", []uint32{counts[0], counts[5]})
	}
	d.ResetWear()
	if got := d.TotalWrites(); got != 0 {
		t.Fatalf("TotalWrites() after ResetWear = %d, want 0", got)
	}
}

func TestCPUCacheHitsAreFree(t *testing.T) {
	var clk simclock.Clock
	cfg := testConfig(1 << 20)
	cfg.CPUCacheBytes = 1 << 16
	cfg.CPUCacheWays = 4
	d := New(cfg, &clk)

	buf := make([]byte, LineSize)
	d.ReadAt(buf, 0)
	first := clk.Ns()
	d.ReadAt(buf, 0) // same line: now cached
	if clk.Ns() != first {
		t.Fatalf("second read of cached line charged %d ns", clk.Ns()-first)
	}
	st := d.Stats()
	if st.LinesRead != 2 || st.LinesReadCharged != 1 {
		t.Fatalf("stats = %+v, want LinesRead=2 LinesReadCharged=1", st)
	}
}

func TestCPUCacheEvicts(t *testing.T) {
	var clk simclock.Clock
	cfg := testConfig(1 << 20)
	// Tiny cache: 2 ways, 1 set (128 bytes).
	cfg.CPUCacheBytes = 2 * LineSize
	cfg.CPUCacheWays = 2
	d := New(cfg, &clk)
	buf := make([]byte, LineSize)

	d.ReadAt(buf, 0*LineSize) // miss, cache {0}
	d.ReadAt(buf, 1*LineSize) // miss, cache {1,0}
	d.ReadAt(buf, 2*LineSize) // miss, evicts 0, cache {2,1}
	clk.Reset()
	d.ReadAt(buf, 0*LineSize) // must miss again
	if clk.Ns() == 0 {
		t.Fatal("read of evicted line was free")
	}
}

func TestDropCPUCacheColdReads(t *testing.T) {
	var clk simclock.Clock
	cfg := testConfig(1 << 20)
	cfg.CPUCacheBytes = 1 << 16
	d := New(cfg, &clk)
	buf := make([]byte, LineSize)
	d.ReadAt(buf, 0)
	d.DropCPUCache()
	clk.Reset()
	d.ReadAt(buf, 0)
	if clk.Ns() == 0 {
		t.Fatal("read after DropCPUCache was free")
	}
}

func TestStrictPersistenceCrashRevertsUnflushed(t *testing.T) {
	var clk simclock.Clock
	cfg := testConfig(4096)
	cfg.StrictPersistence = true
	d := New(cfg, &clk)

	durable := []byte("durable")
	d.Persist(durable, 0)

	// Overwrite without flushing, plus a write to a fresh line.
	d.WriteAt([]byte("doomed!"), 0)
	d.WriteAt([]byte("also doomed"), 2*LineSize)
	d.Crash()

	got := make([]byte, len(durable))
	d.ReadAt(got, 0)
	if !bytes.Equal(got, durable) {
		t.Fatalf("after crash line 0 = %q, want %q", got, durable)
	}
	fresh := make([]byte, 11)
	d.ReadAt(fresh, 2*LineSize)
	if !bytes.Equal(fresh, make([]byte, 11)) {
		t.Fatalf("after crash unflushed fresh line = %q, want zeroes", fresh)
	}
}

func TestStrictPersistenceFlushSurvivesCrash(t *testing.T) {
	var clk simclock.Clock
	cfg := testConfig(4096)
	cfg.StrictPersistence = true
	d := New(cfg, &clk)

	d.WriteAt([]byte("v1"), 0)
	d.Flush(0, 2)
	d.WriteAt([]byte("v2"), 0)
	d.Flush(0, 2)
	d.Crash()
	got := make([]byte, 2)
	d.ReadAt(got, 0)
	if string(got) != "v2" {
		t.Fatalf("after crash = %q, want v2", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(128), &clk)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"read past end", func() { d.ReadAt(make([]byte, 64), 100) }},
		{"write past end", func() { d.WriteAt(make([]byte, 64), 100) }},
		{"negative offset", func() { d.ReadAt(make([]byte, 1), -1) }},
		{"flush past end", func() { d.Flush(64, 65) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestLineRange(t *testing.T) {
	tests := []struct {
		off        int64
		n          int
		first, cnt int64
	}{
		{0, 0, 0, 0},
		{0, 1, 0, 1},
		{0, 64, 0, 1},
		{0, 65, 0, 2},
		{63, 2, 0, 2},
		{64, 64, 1, 1},
		{130, 200, 2, 4},
	}
	for _, tc := range tests {
		first, cnt := lineRange(tc.off, tc.n)
		if first != tc.first || cnt != tc.cnt {
			t.Errorf("lineRange(%d, %d) = (%d, %d), want (%d, %d)",
				tc.off, tc.n, first, cnt, tc.first, tc.cnt)
		}
	}
}

// TestQuickWriteReadIdentity checks that arbitrary writes at arbitrary
// line-contained offsets read back identically.
func TestQuickWriteReadIdentity(t *testing.T) {
	var clk simclock.Clock
	d := New(testConfig(1<<16), &clk)
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % (d.Size() - int64(len(data)))
		if o < 0 {
			o = 0
		}
		d.WriteAt(data, o)
		got := make([]byte, len(data))
		d.ReadAt(got, o)
		return bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashNeverLosesFlushedData: property-based check that flushed
// writes always survive a crash in strict mode.
func TestQuickCrashNeverLosesFlushedData(t *testing.T) {
	cfg := testConfig(1 << 14)
	cfg.StrictPersistence = true
	var clk simclock.Clock
	d := New(cfg, &clk)
	f := func(flushed, torn []byte, off uint8) bool {
		if len(flushed) == 0 {
			return true
		}
		if len(flushed) > 512 {
			flushed = flushed[:512]
		}
		if len(torn) > 512 {
			torn = torn[:512]
		}
		o := int64(off) * LineSize
		d.Persist(flushed, o)
		if len(torn) > 0 {
			d.WriteAt(torn, o)
		}
		d.Crash()
		got := make([]byte, len(flushed))
		d.ReadAt(got, o)
		return bytes.Equal(got, flushed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
