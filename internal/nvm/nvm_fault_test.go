package nvm

import (
	"bytes"
	"testing"
	"time"

	"nvmstore/internal/fault"
	"nvmstore/internal/simclock"
)

func newStrictFaultDevice(rules ...fault.Rule) (*Device, *simclock.Clock) {
	clk := &simclock.Clock{}
	d := New(Config{
		Size:              1 << 16,
		ReadLatency:       500 * time.Nanosecond,
		WriteLatency:      500 * time.Nanosecond,
		LineTransfer:      30 * time.Nanosecond,
		StrictPersistence: true,
	}, clk)
	d.SetFaults((&fault.Plan{Seed: 77, Rules: rules}).Injector(0))
	return d, clk
}

// TestTornFlushPersistsPrefixOnly: an injected torn flush crashes
// between clwbs — after the power failure, the flushed range is part
// old content, part new, split at a line boundary, never interleaved.
func TestTornFlushPersistsPrefixOnly(t *testing.T) {
	const lines = 8
	old := bytes.Repeat([]byte{0xAA}, lines*LineSize)
	d2, _ := newStrictFaultDevice()
	d2.Persist(old, 0) // durable baseline, then arm the single-shot tear
	d2.SetFaults((&fault.Plan{Seed: 77, Rules: []fault.Rule{
		{Kind: fault.NVMTornFlush, EveryN: 1, Limit: 1},
	}}).Injector(0))

	newData := bytes.Repeat([]byte{0xBB}, lines*LineSize)
	d2.WriteAt(newData, 0)
	crashed := func() (ok bool) {
		defer func() { _, ok = fault.AsCrash(recover()) }()
		d2.Flush(0, lines*LineSize)
		return false
	}()
	if !crashed {
		t.Fatal("torn flush did not crash")
	}
	d2.Crash()

	got := make([]byte, lines*LineSize)
	d2.ReadAt(got, 0)
	// Some prefix of lines is new, the rest reverted to old.
	split := -1
	for l := 0; l < lines; l++ {
		line := got[l*LineSize : (l+1)*LineSize]
		switch {
		case bytes.Equal(line, newData[:LineSize]):
			if split >= 0 {
				t.Fatalf("new line %d after reverted line %d", l, split)
			}
		case bytes.Equal(line, old[:LineSize]):
			if split < 0 {
				split = l
			}
		default:
			t.Fatalf("line %d is neither old nor new: % x", l, line[:8])
		}
	}
	if split == -1 {
		t.Fatal("no line was lost: torn flush persisted everything")
	}
}

// TestCleanCrashLosesWholeFlush: fault.NVMCrash fires before any line
// persists.
func TestCleanCrashLosesWholeFlush(t *testing.T) {
	d, _ := newStrictFaultDevice()
	base := bytes.Repeat([]byte{1}, 2*LineSize)
	d.Persist(base, 0)
	d.SetFaults((&fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Kind: fault.NVMCrash, EveryN: 1, Limit: 1},
	}}).Injector(0))
	d.WriteAt(bytes.Repeat([]byte{2}, 2*LineSize), 0)
	func() {
		defer func() {
			if _, ok := fault.AsCrash(recover()); !ok {
				t.Fatal("flush did not crash")
			}
		}()
		d.Flush(0, 2*LineSize)
	}()
	d.Crash()
	got := make([]byte, 2*LineSize)
	d.ReadAt(got, 0)
	if !bytes.Equal(got, base) {
		t.Fatal("clean crash leaked unflushed lines")
	}
}

// TestNVMStallCharged: an injected stall adds simulated time to a flush.
func TestNVMStallCharged(t *testing.T) {
	d, clk := newStrictFaultDevice(fault.Rule{Kind: fault.NVMStall, EveryN: 1, Limit: 1, Stall: time.Millisecond})
	before := clk.Ns()
	d.Persist(make([]byte, LineSize), 0)
	if got := clk.Ns() - before; got < int64(time.Millisecond) {
		t.Fatalf("charged %d ns, want >= 1 ms", got)
	}
}
