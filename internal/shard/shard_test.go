package shard

import "testing"

func TestOfRangeAndDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		counts := make([]int, n)
		for k := uint64(0); k < 10000; k++ {
			s := Of(k, n)
			if s < 0 || s >= n {
				t.Fatalf("Of(%d, %d) = %d out of range", k, n, s)
			}
			if s != Of(k, n) {
				t.Fatalf("Of(%d, %d) not deterministic", k, n)
			}
			counts[s]++
		}
		// Hashing must spread dense key ranges roughly evenly.
		for s, c := range counts {
			if want := 10000 / n; c < want/2 || c > want*2 {
				t.Errorf("shard %d/%d got %d of 10000 keys", s, n, c)
			}
		}
	}
}

func TestOfSingleShardOwnsAll(t *testing.T) {
	for k := uint64(0); k < 100; k++ {
		if Of(k, 1) != 0 || Of(k, 0) != 0 {
			t.Fatalf("single shard must own every key")
		}
	}
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := SeedFor(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SeedFor(42, %d) == SeedFor(42, %d)", i, prev)
		}
		seen[s] = i
		if s != SeedFor(42, i) {
			t.Fatalf("SeedFor not deterministic at index %d", i)
		}
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatal("different base seeds must derive different shard seeds")
	}
}
