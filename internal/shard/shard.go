// Package shard defines the hash partitioning shared by every layer of
// the parallel execution path (the paper's Appendix A.1 scale-up model):
// the public ShardedStore, the partitionable YCSB and TPC-C drivers, and
// the benchmark harness all route a key to the same shard, so a workload
// generated for shard i only ever touches shard i's store.
package shard

// Of returns the shard in [0, n) owning key. Keys are hashed before
// taking the remainder so that dense key ranges (YCSB row ids, TPC-C
// composite keys) spread evenly across shards.
func Of(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Mix(key) % uint64(n))
}

// Mix is the SplitMix64 finalizer, the repo's standard scramble.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeedFor derives shard index's random seed from a base seed, so that a
// sharded run is deterministic given (base seed, shard count): every
// shard draws an independent stream, and re-running with the same base
// seed reproduces all of them.
func SeedFor(base uint64, index int) uint64 {
	return Mix(base ^ Mix(uint64(index)+0x5348415244)) // "SHARD"
}
