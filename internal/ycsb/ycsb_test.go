package ycsb

import (
	"bytes"
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/engine"
)

func loadWorkload(t *testing.T, topo core.Topology, rows int) *Workload {
	t.Helper()
	cfg := engine.DefaultConfig(topo,
		64*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 1 << 20
	cfg.CPUCacheBytes = -1
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Load(e, rows, btree.LayoutSorted)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLoadAndLookup(t *testing.T) {
	w := loadWorkload(t, core.ThreeTier, 2000)
	if got, _ := w.Table().Count(); got != 2000 {
		t.Fatalf("loaded %d rows, want 2000", got)
	}
	for i := 0; i < 500; i++ {
		if err := w.Lookup(); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if w.Ops != 500 {
		t.Fatalf("Ops = %d, want 500", w.Ops)
	}
}

func TestRowContentDeterministic(t *testing.T) {
	w := loadWorkload(t, core.MemOnly, 100)
	buf := make([]byte, RowSize)
	found, err := w.Table().Lookup(42, buf)
	if err != nil || !found {
		t.Fatalf("Lookup(42) = %v, %v", found, err)
	}
	want := make([]byte, RowSize)
	FillRow(42, want)
	if !bytes.Equal(buf, want) {
		t.Fatal("row 42 content does not match FillRow")
	}
}

func TestUpdatePersists(t *testing.T) {
	w := loadWorkload(t, core.DRAMNVM, 500)
	for i := 0; i < 200; i++ {
		if err := w.Update(); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// Row count unchanged; content may differ from initial fill.
	if got, _ := w.Table().Count(); got != 500 {
		t.Fatalf("count after updates = %d", got)
	}
}

func TestScan(t *testing.T) {
	w := loadWorkload(t, core.DRAMNVM, 1000)
	for i := 0; i < 50; i++ {
		if err := w.Scan(); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
	}
}

func TestMixedRatio(t *testing.T) {
	w := loadWorkload(t, core.MemOnly, 500)
	logBefore := w.e.Log().Stats().Records
	for i := 0; i < 400; i++ {
		if err := w.Mixed(50); err != nil {
			t.Fatal(err)
		}
	}
	updates := w.e.Log().Stats().Records - logBefore
	// Each update logs one update record plus one commit; lookups log
	// nothing. Expect roughly half of 400 (2 records each).
	if updates < 200 || updates > 600 {
		t.Fatalf("log records for 50%% mix = %d, want ~400", updates)
	}
}

func TestRowBytesRoundTrip(t *testing.T) {
	// RowsForDataSize deliberately leaves a few percent of headroom for
	// inner pages, so the round trip comes back slightly under.
	n := RowsForDataSize(RowBytes(12345))
	if n < 11500 || n > 12345 {
		t.Fatalf("RowsForDataSize(RowBytes(12345)) = %d, want slightly under 12345", n)
	}
}

func TestAttachAfterRestart(t *testing.T) {
	w := loadWorkload(t, core.ThreeTier, 300)
	e := w.e
	if err := e.CleanRestart(); err != nil {
		t.Fatal(err)
	}
	w2, err := Attach(e, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w2.Lookup(); err != nil {
			t.Fatalf("lookup after restart: %v", err)
		}
	}
}

func TestStandardPresets(t *testing.T) {
	for _, p := range []Preset{PresetA, PresetB, PresetC, PresetD, PresetE} {
		t.Run(string(p), func(t *testing.T) {
			w := loadWorkload(t, core.ThreeTier, 800)
			for i := 0; i < 300; i++ {
				if err := w.Run(p); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			if w.Ops != 300 {
				t.Fatalf("Ops = %d", w.Ops)
			}
			cnt, err := w.Table().Count()
			if err != nil {
				t.Fatal(err)
			}
			switch p {
			case PresetD, PresetE:
				if cnt <= 800 {
					t.Fatalf("insert preset %c grew nothing: %d rows", p, cnt)
				}
			default:
				if cnt != 800 {
					t.Fatalf("preset %c changed row count: %d", p, cnt)
				}
			}
		})
	}
}

func TestUnknownPreset(t *testing.T) {
	w := loadWorkload(t, core.MemOnly, 50)
	if err := w.Run(Preset('Z')); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
