package ycsb

import (
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/engine"
	"nvmstore/internal/shard"
)

func TestKeyStreamDeterministic(t *testing.T) {
	const n, draws = 5000, 2000
	for _, p := range []Partition{{}, {Shards: 4, Index: 0}, {Shards: 4, Index: 3}} {
		a := NewKeyStream(n, DefaultSeed, p)
		b := NewKeyStream(n, DefaultSeed, p)
		for i := 0; i < draws; i++ {
			ka, kb := a.Next(), b.Next()
			if ka != kb {
				t.Fatalf("partition %+v draw %d: %d != %d", p, i, ka, kb)
			}
			if ua, ub := a.Uniform(97), b.Uniform(97); ua != ub {
				t.Fatalf("partition %+v uniform draw %d: %d != %d", p, i, ua, ub)
			}
		}
	}
}

func TestKeyStreamRespectsPartition(t *testing.T) {
	const n = 5000
	for index := 0; index < 4; index++ {
		p := Partition{Shards: 4, Index: index}
		s := NewKeyStream(n, DefaultSeed, p)
		for i := 0; i < 2000; i++ {
			k := s.Next()
			if k >= n {
				t.Fatalf("shard %d drew key %d outside key space %d", index, k, n)
			}
			if shard.Of(k, 4) != index {
				t.Fatalf("shard %d drew key %d owned by shard %d", index, k, shard.Of(k, 4))
			}
		}
	}
}

func TestKeyStreamShardsDiffer(t *testing.T) {
	const n = 5000
	a := NewKeyStream(n, DefaultSeed, Partition{Shards: 4, Index: 0})
	b := NewKeyStream(n, DefaultSeed, Partition{Shards: 4, Index: 1})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uniform(1000) == b.Uniform(1000) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("shards 0 and 1 agree on %d/1000 uniform draws; seeds not distinct", same)
	}
}

func TestKeyStreamSingleShardMatchesUnpartitioned(t *testing.T) {
	const n = 5000
	a := NewKeyStream(n, DefaultSeed, Partition{})
	b := NewKeyStream(n, DefaultSeed, Partition{Shards: 1, Index: 0})
	for i := 0; i < 2000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d: unpartitioned %d != 1-shard %d", i, ka, kb)
		}
	}
}

func loadShard(t *testing.T, rows int, p Partition) *Workload {
	t.Helper()
	cfg := engine.DefaultConfig(core.ThreeTier,
		64*(core.PageSize+2*core.LineSize),
		4096*(core.PageSize+core.LineSize),
		16384*core.PageSize)
	cfg.WALBytes = 1 << 20
	cfg.CPUCacheBytes = -1
	e, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := LoadPartition(e, rows, btree.LayoutSorted, p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPartitionedLoadCoversKeySpace(t *testing.T) {
	const rows, shards = 3000, 3
	total := 0
	for i := 0; i < shards; i++ {
		w := loadShard(t, rows, Partition{Shards: shards, Index: i})
		n, err := w.Table().Count()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("shard %d loaded no rows", i)
		}
		total += n
		// Every shard must answer its own partitioned workload.
		for j := 0; j < 300; j++ {
			if err := w.Lookup(); err != nil {
				t.Fatalf("shard %d lookup %d: %v", i, j, err)
			}
		}
	}
	if total != rows {
		t.Fatalf("shards loaded %d rows total, want %d", total, rows)
	}
}

func TestPartitionedInsertRejected(t *testing.T) {
	w := loadShard(t, 1000, Partition{Shards: 2, Index: 0})
	if err := w.Insert(); err == nil {
		t.Fatal("Insert on a partitioned workload should fail")
	}
	if err := w.ReadLatest(); err == nil {
		t.Fatal("ReadLatest on a partitioned workload should fail")
	}
}
