// Package ycsb implements the YCSB key-value benchmark as configured in
// the paper's evaluation (§5.2): a single table whose rows have a numeric
// primary key and ten string fields of 100 bytes each, accessed with
// Zipf-distributed keys (z = 1, non-clustered popular keys) and uniformly
// chosen fields.
//
// Three workloads generalize YCSB's predefined mixes exactly as the paper
// does:
//
//   - YCSB-RO: 100% point lookups (YCSB workload C),
//   - YCSB-R/W: x% field updates, (100-x)% lookups (mixing A and C),
//   - YCSB-SCAN: 100% range scans of random length 1-100 (workload E
//     without inserts).
//
// Every operation runs as one transaction against an engine, matching the
// paper's OLTP-style single-operation transactions.
package ycsb

import (
	"fmt"

	"nvmstore/internal/btree"
	"nvmstore/internal/engine"
	"nvmstore/internal/shard"
	"nvmstore/internal/zipfian"
)

// Schema constants from the YCSB specification.
const (
	// Fields is the number of string fields per row.
	Fields = 10
	// FieldSize is the size of each field in bytes.
	FieldSize = 100
	// RowSize is the payload size of one row.
	RowSize = Fields * FieldSize
	// TableID is the tree id of the YCSB table.
	TableID = 1
)

// RowBytes returns the storage footprint of n rows once loaded into a
// B-tree at the paper's 0.66 fill factor: ten rows per 16 kB leaf page
// (plus its slot header), which the paper calls the data size.
func RowBytes(n int) int64 {
	return int64(n) * 1645
}

// RowsForDataSize returns how many rows fit in the given data size with a
// few percent of headroom for inner pages, so that a data set sized to a
// device capacity actually fits on it.
func RowsForDataSize(bytes int64) int {
	return int(bytes / 1700)
}

// DefaultSeed is the base seed of the YCSB random streams. Sharded
// workers derive their per-shard seed from it (shard.SeedFor), so runs
// are reproducible at any thread count.
const DefaultSeed = 0x5943534221

// Partition names one shard of a hash-partitioned key space, the
// shard-per-core model of the paper's Appendix A.1. The zero value is the
// unpartitioned (single-threaded) workload.
type Partition struct {
	// Shards is the total shard count; 0 or 1 means unpartitioned.
	Shards int
	// Index is this shard in [0, Shards).
	Index int
}

// Owns reports whether the partition owns key.
func (p Partition) Owns(key uint64) bool {
	return p.Shards <= 1 || shard.Of(key, p.Shards) == p.Index
}

// KeyStream is the deterministic random stream of one YCSB worker: a
// scrambled-Zipf key sequence restricted to the worker's partition, plus
// the uniform draws for field choices and workload mixes. Two streams
// with the same (n, seed, partition) produce identical sequences. Not
// safe for concurrent use — one stream per shard worker.
type KeyStream struct {
	gen  *zipfian.Generator
	part Partition
	// owned, for a partitioned stream, lists the shard's keys in global
	// popularity order, so one Zipf draw over len(owned) ranks yields the
	// global distribution restricted to this shard — without paying for
	// rejection sampling on every operation.
	owned []uint64
}

// NewKeyStream creates a stream over the global key space [0, n) seeded
// from (seed, partition index). An unpartitioned stream uses the base
// seed directly, so a 1-shard run draws exactly the single-threaded
// sequence.
func NewKeyStream(n uint64, seed uint64, p Partition) *KeyStream {
	if p.Shards <= 1 {
		return &KeyStream{gen: zipfian.New(n, zipfian.Theta1, seed), part: p}
	}
	owned := make([]uint64, 0, int(n)/p.Shards+16)
	for r := uint64(0); r < n; r++ {
		if k := zipfian.KeyAt(r, n); p.Owns(k) {
			owned = append(owned, k)
		}
	}
	if len(owned) == 0 {
		panic(fmt.Sprintf("ycsb: shard %d/%d owns no keys of %d", p.Index, p.Shards, n))
	}
	return &KeyStream{
		gen:   zipfian.New(uint64(len(owned)), zipfian.Theta1, shard.SeedFor(seed, p.Index)),
		part:  p,
		owned: owned,
	}
}

// Next returns the next Zipf-distributed key owned by the partition. A
// shard draws a Zipf rank over its own keys ordered by global popularity,
// which keeps each shard's access skew equal to the global distribution
// restricted to the keys it owns.
func (s *KeyStream) Next() uint64 {
	if s.owned != nil {
		return s.owned[s.gen.Next()]
	}
	return s.gen.NextScrambled()
}

// Uniform returns a uniform value in [0, m).
func (s *KeyStream) Uniform(m uint64) uint64 { return s.gen.Uint64n(m) }

// Workload drives YCSB operations against one engine.
type Workload struct {
	e     *engine.Engine
	table *btree.Tree
	n     uint64
	part  Partition
	seed  uint64
	keys  *KeyStream
	buf   []byte

	zipfLatest *latestDist

	// Ops counts completed operations.
	Ops int64
}

// Load creates the YCSB table in e and bulk-loads n rows at the paper's
// 0.66 fill factor. Row i has key i; field f of row i holds a
// deterministic pattern.
func Load(e *engine.Engine, n int, layout btree.LeafLayout) (*Workload, error) {
	return LoadFill(e, n, layout, 0.66)
}

// LoadFill is Load with an explicit B-tree fill factor; the scan overhead
// experiment of §5.4.2 loads at a fill factor of 1.0.
func LoadFill(e *engine.Engine, n int, layout btree.LeafLayout, fill float64) (*Workload, error) {
	return LoadPartitionFill(e, n, layout, fill, Partition{})
}

// LoadPartition creates the YCSB table in e and bulk-loads the subset of
// the global key space [0, n) owned by partition p — one shard of the
// Appendix A.1 shard-per-core layout. The workload's key stream is seeded
// from (DefaultSeed, p.Index) and only ever draws owned keys.
func LoadPartition(e *engine.Engine, n int, layout btree.LeafLayout, p Partition) (*Workload, error) {
	return LoadPartitionFill(e, n, layout, 0.66, p)
}

// LoadPartitionFill is LoadPartition with an explicit fill factor.
func LoadPartitionFill(e *engine.Engine, n int, layout btree.LeafLayout, fill float64, p Partition) (*Workload, error) {
	t, err := e.CreateTree(TableID, RowSize, layout)
	if err != nil {
		return nil, err
	}
	row := make([]byte, RowSize)
	if p.Shards <= 1 {
		err = t.BulkLoad(n,
			func(i int) uint64 { return uint64(i) },
			func(i int, dst []byte) {
				FillRow(uint64(i), row)
				copy(dst, row)
			},
			fill)
	} else {
		owned := make([]uint64, 0, n/p.Shards+n/(8*p.Shards)+16)
		for k := uint64(0); k < uint64(n); k++ {
			if p.Owns(k) {
				owned = append(owned, k)
			}
		}
		err = t.BulkLoad(len(owned),
			func(i int) uint64 { return owned[i] },
			func(i int, dst []byte) {
				FillRow(owned[i], row)
				copy(dst, row)
			},
			fill)
	}
	if err != nil {
		return nil, fmt.Errorf("ycsb: bulk load: %w", err)
	}
	if err := e.Checkpoint(); err != nil {
		return nil, err
	}
	return AttachPartition(e, n, p)
}

// Attach builds a workload over an already-loaded engine (for example
// after a restart).
func Attach(e *engine.Engine, n int) (*Workload, error) {
	return AttachPartition(e, n, Partition{})
}

// AttachPartition is Attach for one shard of a partitioned load: n is the
// global key-space size, of which the engine holds partition p's share.
func AttachPartition(e *engine.Engine, n int, p Partition) (*Workload, error) {
	t := e.Tree(TableID)
	if t == nil {
		return nil, fmt.Errorf("ycsb: engine has no YCSB table")
	}
	return &Workload{
		e:     e,
		table: t,
		n:     uint64(n),
		part:  p,
		seed:  DefaultSeed,
		keys:  NewKeyStream(uint64(n), DefaultSeed, p),
		buf:   make([]byte, RowSize),
	}, nil
}

// Reseed rebuilds the workload's random streams from a new base seed
// (a partitioned workload still derives its per-shard seed from it via
// shard.SeedFor, exactly like the default). Runs with different seeds
// draw different — but individually reproducible — key sequences; the
// bench harness threads its -seed flag through here.
func (w *Workload) Reseed(seed uint64) {
	w.seed = seed
	w.keys = NewKeyStream(w.n, seed, w.part)
	w.zipfLatest = nil
}

// FillRow writes row key's deterministic content into dst (RowSize bytes).
func FillRow(key uint64, dst []byte) {
	for f := 0; f < Fields; f++ {
		FillField(key, f, dst[f*FieldSize:(f+1)*FieldSize])
	}
}

// FillField writes the deterministic content of one field.
func FillField(key uint64, field int, dst []byte) {
	seed := key*Fields + uint64(field)
	for i := range dst {
		dst[i] = byte(seed>>uint(8*(i%4))) + byte(i)
	}
}

// Table returns the YCSB table tree.
func (w *Workload) Table() *btree.Tree { return w.table }

// Rows returns the size of the global key space (all shards together for
// a partitioned workload).
func (w *Workload) Rows() int { return int(w.n) }

// Partition returns the workload's shard assignment (the zero Partition
// for a single-threaded workload).
func (w *Workload) Partition() Partition { return w.part }

// gen returns the worker's key stream, rebuilding it when inserts grew
// the key space.
func (w *Workload) gen() *KeyStream {
	if w.keys == nil {
		w.keys = NewKeyStream(w.n, w.seed, w.part)
	}
	return w.keys
}

// Lookup runs one YCSB-RO transaction: read one uniformly chosen field of
// one Zipf-chosen row.
func (w *Workload) Lookup() error {
	key := w.gen().Next()
	field := int(w.gen().Uniform(Fields))
	w.e.Begin()
	found, err := w.table.LookupField(key, field*FieldSize, FieldSize, w.buf)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("ycsb: key %d missing", key)
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.Ops++
	return nil
}

// Update runs one update transaction: overwrite one uniformly chosen
// field of one Zipf-chosen row.
func (w *Workload) Update() error {
	key := w.gen().Next()
	field := int(w.gen().Uniform(Fields))
	// New field content varies with the op counter so updates are not
	// no-ops.
	FillField(key+uint64(w.Ops), field, w.buf[:FieldSize])
	w.e.Begin()
	found, err := w.table.UpdateField(key, field*FieldSize, w.buf[:FieldSize])
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("ycsb: key %d missing", key)
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.Ops++
	return nil
}

// Scan runs one YCSB-SCAN transaction: from a Zipf-chosen start key, read
// one uniformly chosen field of each of 1-100 consecutive rows.
func (w *Workload) Scan() error {
	key := w.gen().Next()
	length := int(w.gen().Uniform(100)) + 1
	field := int(w.gen().Uniform(Fields))
	w.e.Begin()
	err := w.table.Scan(key, length, field*FieldSize, FieldSize, func(k uint64, fieldBytes []byte) bool {
		return true
	})
	if err != nil {
		return err
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.Ops++
	return nil
}

// ScanRange runs one scan transaction with a fixed range length, as used
// by the overhead analysis of §5.4.2.
func (w *Workload) ScanRange(length int) error {
	key := w.gen().Next()
	field := int(w.gen().Uniform(Fields))
	w.e.Begin()
	err := w.table.Scan(key, length, field*FieldSize, FieldSize, func(uint64, []byte) bool {
		return true
	})
	if err != nil {
		return err
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.Ops++
	return nil
}

// FullScan reads every row's first field once (a full table scan).
func (w *Workload) FullScan() error {
	w.e.Begin()
	if err := w.table.Scan(0, 0, 0, FieldSize, func(uint64, []byte) bool {
		return true
	}); err != nil {
		return err
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.Ops++
	return nil
}

// Mixed runs one YCSB-R/W transaction: an update with probability
// writePct/100, otherwise a lookup.
func (w *Workload) Mixed(writePct int) error {
	if int(w.gen().Uniform(100)) < writePct {
		return w.Update()
	}
	return w.Lookup()
}

// Insert adds a new row past the current end of the key space (YCSB's
// ordered insert, used by workloads D and E). Not supported on a
// partitioned workload: the appended key belongs to an arbitrary shard.
func (w *Workload) Insert() error {
	if w.part.Shards > 1 {
		return fmt.Errorf("ycsb: Insert on a partitioned workload (shard %d/%d)", w.part.Index, w.part.Shards)
	}
	key := w.n
	FillRow(key, w.buf)
	w.e.Begin()
	if err := w.table.Insert(key, w.buf); err != nil {
		return err
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.n = key + 1
	w.keys = nil // key-space size changed: rebuild lazily
	w.Ops++
	return nil
}

// latest returns a key skewed toward the most recently inserted rows,
// YCSB's "latest" distribution.
func (w *Workload) latest() uint64 {
	if w.zipfLatest == nil || w.zipfLatest.n != w.n {
		w.zipfLatest = &latestDist{n: w.n, gen: zipfian.New(w.n, zipfian.Theta1, 0x1A7E57)}
	}
	return w.n - 1 - w.zipfLatest.gen.Next()
}

// latestDist caches a Zipf generator over the current key-space size.
type latestDist struct {
	n   uint64
	gen *zipfian.Generator
}

// ReadLatest looks up one field of a recently inserted row. Like Insert,
// it is only supported on unpartitioned workloads.
func (w *Workload) ReadLatest() error {
	if w.part.Shards > 1 {
		return fmt.Errorf("ycsb: ReadLatest on a partitioned workload (shard %d/%d)", w.part.Index, w.part.Shards)
	}
	key := w.latest()
	field := int(key % Fields)
	w.e.Begin()
	found, err := w.table.LookupField(key, field*FieldSize, FieldSize, w.buf)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("ycsb: latest key %d missing", key)
	}
	if err := w.e.Commit(); err != nil {
		return err
	}
	w.Ops++
	return nil
}

// Preset identifies one of YCSB's five standard workload mixes. The
// paper's YCSB-RO, YCSB-R/W, and YCSB-SCAN generalize these (§5.2).
type Preset byte

// The standard presets.
const (
	PresetA Preset = 'A' // 50% update, 50% read
	PresetB Preset = 'B' // 5% update, 95% read
	PresetC Preset = 'C' // 100% read (the paper's YCSB-RO)
	PresetD Preset = 'D' // 5% insert, 95% read-latest
	PresetE Preset = 'E' // 5% insert, 95% scan
)

// Run executes one transaction of the given standard workload.
func (w *Workload) Run(p Preset) error {
	r := int(w.gen().Uniform(100))
	switch p {
	case PresetA:
		return w.Mixed(50)
	case PresetB:
		return w.Mixed(5)
	case PresetC:
		return w.Lookup()
	case PresetD:
		if r < 5 {
			return w.Insert()
		}
		return w.ReadLatest()
	case PresetE:
		if r < 5 {
			return w.Insert()
		}
		return w.Scan()
	default:
		return fmt.Errorf("ycsb: unknown preset %q", p)
	}
}

// UpdateNoFlush is Update with the commit's log flush elided
// (engine.CommitNoFlush): the group-commit building block of the
// batch-size sweep. The update is durable only after the caller flushes
// the engine's WAL tail.
func (w *Workload) UpdateNoFlush() error {
	key := w.gen().Next()
	field := int(w.gen().Uniform(Fields))
	FillField(key+uint64(w.Ops), field, w.buf[:FieldSize])
	w.e.Begin()
	found, err := w.table.UpdateField(key, field*FieldSize, w.buf[:FieldSize])
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("ycsb: key %d missing", key)
	}
	if err := w.e.CommitNoFlush(); err != nil {
		return err
	}
	w.Ops++
	return nil
}
