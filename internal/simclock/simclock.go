// Package simclock provides a virtual clock that accumulates simulated
// device time.
//
// The storage devices in this repository (internal/nvm, internal/ssd) are
// simulated: instead of sleeping for the latency of every cache-line or page
// transfer, they charge the cost to a Clock. Benchmarks then report
// throughput over combined time (measured CPU wall time + simulated device
// time), which keeps experiments deterministic and fast while preserving the
// relative cost of device accesses.
//
// A Clock is intentionally not synchronized: the storage engines reproduced
// here are single-threaded, matching the evaluation setup of the paper
// ("Managing Non-Volatile Memory in Database Systems", SIGMOD 2018). Use one
// Clock per engine instance.
package simclock

import "time"

// Clock accumulates simulated nanoseconds. The zero value is a clock at
// time zero, ready to use.
type Clock struct {
	ns int64
}

// Advance adds d to the simulated time. Negative durations are ignored.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.ns += int64(d)
	}
}

// AdvanceNs adds ns nanoseconds to the simulated time. Negative values are
// ignored.
func (c *Clock) AdvanceNs(ns int64) {
	if ns > 0 {
		c.ns += ns
	}
}

// Elapsed returns the total simulated time accumulated so far.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.ns) }

// Ns returns the total simulated time in nanoseconds.
func (c *Clock) Ns() int64 { return c.ns }

// Reset sets the simulated time back to zero.
func (c *Clock) Reset() { c.ns = 0 }
