package simclock

import (
	"testing"
	"time"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if c.Ns() != 0 {
		t.Fatalf("zero clock reports %d ns", c.Ns())
	}
	if c.Elapsed() != 0 {
		t.Fatalf("zero clock reports elapsed %v", c.Elapsed())
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	var c Clock
	c.Advance(500 * time.Nanosecond)
	c.Advance(time.Microsecond)
	if got, want := c.Ns(), int64(1500); got != want {
		t.Fatalf("Ns() = %d, want %d", got, want)
	}
	if got, want := c.Elapsed(), 1500*time.Nanosecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestAdvanceNs(t *testing.T) {
	var c Clock
	c.AdvanceNs(42)
	c.AdvanceNs(8)
	if got := c.Ns(); got != 50 {
		t.Fatalf("Ns() = %d, want 50", got)
	}
}

func TestNegativeIgnored(t *testing.T) {
	var c Clock
	c.Advance(-time.Second)
	c.AdvanceNs(-5)
	if got := c.Ns(); got != 0 {
		t.Fatalf("negative advance changed clock to %d", got)
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.AdvanceNs(100)
	c.Reset()
	if got := c.Ns(); got != 0 {
		t.Fatalf("Ns() after Reset = %d, want 0", got)
	}
}
