package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
)

// TestRecoveryFuzz drives random transactions — some committed, some
// rolled back, one possibly in flight — against random crash points and
// verifies exact transaction semantics: after recovery the database equals
// the model of all committed transactions, nothing more, nothing less.
// Random FlushAll calls inject page steal; strict persistence tears away
// all unflushed NVM writes at the crash.
func TestRecoveryFuzz(t *testing.T) {
	for _, topo := range []core.Topology{core.DRAMNVM, core.ThreeTier, core.DirectNVM} {
		t.Run(topo.String(), func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				runRecoveryTrial(t, topo, int64(trial))
			}
		})
	}
}

func runRecoveryTrial(t *testing.T, topo core.Topology, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := testConfig(topo)
	cfg.DRAMBytes = 8 * (core.PageSize + 2*core.LineSize) // aggressive steal
	if topo == core.DirectNVM {
		cfg.DRAMBytes = 0
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.CreateTree(1, 48, btree.LayoutSorted)
	if err != nil {
		t.Fatal(err)
	}

	model := make(map[uint64][]byte) // committed state
	val := func(tag int) []byte {
		p := make([]byte, 48)
		binary.LittleEndian.PutUint64(p, uint64(tag))
		return p
	}

	nTx := 10 + rng.Intn(40)
	for txn := 0; txn < nTx; txn++ {
		// Stage the transaction against a scratch copy of the model.
		scratch := make(map[uint64][]byte, len(model))
		for k, v := range model {
			scratch[k] = v
		}
		e.Begin()
		ops := 1 + rng.Intn(5)
		for op := 0; op < ops; op++ {
			key := uint64(rng.Intn(60))
			switch rng.Intn(3) {
			case 0:
				v := val(txn*100 + op)
				err := tr.Insert(key, v)
				if _, exists := scratch[key]; exists {
					if err == nil {
						t.Fatalf("seed %d: duplicate insert succeeded", seed)
					}
				} else if err != nil {
					t.Fatalf("seed %d: insert: %v", seed, err)
				} else {
					scratch[key] = v
				}
			case 1:
				found, err := tr.Delete(key)
				if err != nil {
					t.Fatalf("seed %d: delete: %v", seed, err)
				}
				if _, exists := scratch[key]; exists != found {
					t.Fatalf("seed %d: delete found=%v model=%v", seed, found, exists)
				}
				delete(scratch, key)
			case 2:
				v := val(txn*100 + op + 50)
				found, err := tr.UpdateField(key, 8, v[:16])
				if err != nil {
					t.Fatalf("seed %d: update: %v", seed, err)
				}
				if cur, exists := scratch[key]; exists {
					if !found {
						t.Fatalf("seed %d: update missed key", seed)
					}
					nv := append([]byte(nil), cur...)
					copy(nv[8:], v[:16])
					scratch[key] = nv
				} else if found {
					t.Fatalf("seed %d: update found absent key", seed)
				}
			}
		}
		switch rng.Intn(10) {
		case 0, 1: // rollback
			if err := e.Rollback(); err != nil {
				t.Fatalf("seed %d: rollback: %v", seed, err)
			}
		case 2: // leave in flight and crash now
			if rng.Intn(2) == 0 {
				e.Log().Flush()
			}
			goto crash
		default:
			if err := e.Commit(); err != nil {
				t.Fatalf("seed %d: commit: %v", seed, err)
			}
			model = scratch
		}
		// Random page steal between transactions.
		if rng.Intn(4) == 0 {
			e.Manager().FlushAll()
		}
	}

crash:
	if _, err := e.CrashRestart(); err != nil {
		t.Fatalf("seed %d: recovery: %v", seed, err)
	}
	tr = e.Tree(1)
	if tr == nil {
		t.Fatalf("seed %d: tree lost", seed)
	}
	// The recovered database must equal the committed model exactly.
	buf := make([]byte, 48)
	for key, want := range model {
		found, err := tr.Lookup(key, buf)
		if err != nil {
			t.Fatalf("seed %d: lookup(%d): %v", seed, key, err)
		}
		if !found {
			t.Fatalf("seed %d: committed key %d lost", seed, key)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("seed %d: key %d content diverged", seed, key)
		}
	}
	count, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != len(model) {
		t.Fatalf("seed %d: recovered %d keys, committed model has %d", seed, count, len(model))
	}
	// The engine keeps working after recovery.
	e.Begin()
	if err := tr.InsertOrReplace(1000, val(9999)); err != nil {
		t.Fatalf("seed %d: post-recovery insert: %v", seed, err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(fmt.Sprintf("seed %d: post-recovery commit: %v", seed, err))
	}
}
