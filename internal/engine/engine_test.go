package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
)

const testPayload = 64

func testConfig(topo core.Topology) core.Config {
	cfg := DefaultConfig(topo, 16*(core.PageSize+2*core.LineSize),
		512*(core.PageSize+core.LineSize), 4096*core.PageSize)
	cfg.WALBytes = 1 << 18
	cfg.CPUCacheBytes = -1
	cfg.StrictPersistence = true
	if topo == core.MemOnly {
		cfg.DRAMBytes = 0
	}
	return cfg
}

func openEngine(t *testing.T, topo core.Topology) *Engine {
	t.Helper()
	e, err := Open(testConfig(topo))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

func pay(key uint64) []byte {
	p := make([]byte, testPayload)
	binary.LittleEndian.PutUint64(p, key*3+1)
	for i := 8; i < testPayload; i++ {
		p[i] = byte(key)
	}
	return p
}

func mustInsert(t *testing.T, e *Engine, tr *btree.Tree, keys ...uint64) {
	t.Helper()
	e.Begin()
	for _, k := range keys {
		if err := tr.Insert(k, pay(k)); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := e.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func checkKey(t *testing.T, tr *btree.Tree, key uint64, present bool) {
	t.Helper()
	buf := make([]byte, testPayload)
	found, err := tr.Lookup(key, buf)
	if err != nil {
		t.Fatalf("Lookup(%d): %v", key, err)
	}
	if found != present {
		t.Fatalf("Lookup(%d) found=%v, want %v", key, found, present)
	}
	if present && !bytes.Equal(buf, pay(key)) {
		t.Fatalf("Lookup(%d) wrong payload", key)
	}
}

func TestBasicTransaction(t *testing.T) {
	for _, topo := range []core.Topology{core.MemOnly, core.DRAMSSD, core.DRAMNVM, core.ThreeTier, core.DirectNVM} {
		t.Run(topo.String(), func(t *testing.T) {
			e := openEngine(t, topo)
			tr, err := e.CreateTree(1, testPayload, btree.LayoutSorted)
			if err != nil {
				t.Fatal(err)
			}
			mustInsert(t, e, tr, 1, 2, 3)
			checkKey(t, tr, 1, true)
			checkKey(t, tr, 2, true)
			checkKey(t, tr, 3, true)
			checkKey(t, tr, 4, false)
		})
	}
}

func TestModificationOutsideTxRejected(t *testing.T) {
	e := openEngine(t, core.DRAMNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	if err := tr.Insert(1, pay(1)); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("err = %v, want ErrNoTransaction", err)
	}
}

func TestRollback(t *testing.T) {
	e := openEngine(t, core.DRAMNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	mustInsert(t, e, tr, 10, 20)

	e.Begin()
	if err := tr.Insert(30, pay(30)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Delete(10); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.UpdateField(20, 8, []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}

	checkKey(t, tr, 30, false) // insert undone
	checkKey(t, tr, 10, true)  // delete undone
	checkKey(t, tr, 20, true)  // update undone
}

func TestCrashRecoveryCommittedSurvives(t *testing.T) {
	for _, topo := range []core.Topology{core.DRAMSSD, core.DRAMNVM, core.ThreeTier, core.DirectNVM} {
		t.Run(topo.String(), func(t *testing.T) {
			e := openEngine(t, topo)
			tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
			mustInsert(t, e, tr, 100, 200, 300)

			// An uncommitted transaction is in flight at the crash.
			e.Begin()
			if err := tr.Insert(400, pay(400)); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Delete(100); err != nil {
				t.Fatal(err)
			}
			e.Log().Flush() // records durable, commit record absent

			stats, err := e.CrashRestart()
			if err != nil {
				t.Fatalf("CrashRestart: %v", err)
			}
			// NVM Direct truncates the log on every commit, so recovery
			// only ever sees the in-flight loser there.
			if topo != core.DirectNVM && stats.Committed == 0 {
				t.Fatalf("recovery stats = %+v, expected committed work", stats)
			}
			if stats.Losers == 0 {
				t.Fatalf("recovery stats = %+v, expected a loser", stats)
			}
			tr = e.Tree(1)
			if tr == nil {
				t.Fatal("tree not recovered from catalog")
			}
			checkKey(t, tr, 100, true) // loser delete rolled back
			checkKey(t, tr, 200, true)
			checkKey(t, tr, 300, true)
			checkKey(t, tr, 400, false) // loser insert rolled back
		})
	}
}

func TestCrashRecoveryUnflushedCommitLost(t *testing.T) {
	// A transaction whose commit record never reached NVM must vanish.
	e := openEngine(t, core.DRAMNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	mustInsert(t, e, tr, 1)

	e.Begin()
	if err := tr.Insert(2, pay(2)); err != nil {
		t.Fatal(err)
	}
	// No commit, no flush: the update record is torn away by the crash.
	if _, err := e.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	tr = e.Tree(1)
	checkKey(t, tr, 1, true)
	checkKey(t, tr, 2, false)
}

func TestCrashAfterEvictionStillRollsBack(t *testing.T) {
	// Dirty pages of an uncommitted transaction are stolen (evicted); the
	// write barrier must have flushed the undo records, so recovery can
	// still roll back.
	e := openEngine(t, core.DRAMNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	mustInsert(t, e, tr, 5)

	e.Begin()
	if err := tr.Insert(6, pay(6)); err != nil {
		t.Fatal(err)
	}
	e.Manager().FlushAll() // steal: uncommitted content reaches NVM

	if _, err := e.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	tr = e.Tree(1)
	checkKey(t, tr, 5, true)
	checkKey(t, tr, 6, false)
}

func TestMemOnlyCannotCrashRecover(t *testing.T) {
	e := openEngine(t, core.MemOnly)
	if _, err := e.CrashRestart(); err == nil {
		t.Fatal("main-memory crash recovery unexpectedly succeeded")
	}
}

func TestCleanRestartKeepsData(t *testing.T) {
	for _, topo := range []core.Topology{core.DRAMSSD, core.DRAMNVM, core.ThreeTier, core.DirectNVM} {
		t.Run(topo.String(), func(t *testing.T) {
			e := openEngine(t, topo)
			tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
			var keys []uint64
			for i := uint64(0); i < 500; i++ {
				keys = append(keys, i*7)
			}
			mustInsert(t, e, tr, keys...)
			if err := e.CleanRestart(); err != nil {
				t.Fatalf("CleanRestart: %v", err)
			}
			tr = e.Tree(1)
			for _, k := range keys {
				checkKey(t, tr, k, true)
			}
			cnt, err := tr.Count()
			if err != nil {
				t.Fatal(err)
			}
			if cnt != len(keys) {
				t.Fatalf("Count = %d, want %d", cnt, len(keys))
			}
		})
	}
}

func TestAutoCheckpointTruncatesLog(t *testing.T) {
	cfg := testConfig(core.DRAMNVM)
	cfg.WALBytes = 1 << 20 // minimal log: forces checkpoints
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	const n = 8000
	for i := uint64(0); i < n; i++ {
		e.Begin()
		if err := tr.Insert(i, pay(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
		if err := e.Commit(); err != nil {
			t.Fatalf("Commit(%d): %v", i, err)
		}
	}
	if e.Log().Stats().Truncates == 0 {
		t.Fatal("no checkpoint happened despite minimal log")
	}
	for i := uint64(0); i < n; i++ {
		checkKey(t, tr, i, true)
	}
}

func TestDirectTruncatesPerCommit(t *testing.T) {
	e := openEngine(t, core.DirectNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	mustInsert(t, e, tr, 1)
	mustInsert(t, e, tr, 2)
	if got := e.Log().Stats().Truncates; got != 2 {
		t.Fatalf("truncates = %d, want 2 (one per commit)", got)
	}
	if e.Log().Bytes() != 0 {
		t.Fatalf("log not empty after direct commit: %d bytes", e.Log().Bytes())
	}
}

func TestMultipleTreesAndCatalog(t *testing.T) {
	e := openEngine(t, core.ThreeTier)
	t1, err := e.CreateTree(1, 32, btree.LayoutSorted)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.CreateTree(2, 16, btree.LayoutHash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTree(1, 8, btree.LayoutSorted); err == nil {
		t.Fatal("duplicate tree id accepted")
	}
	e.Begin()
	if err := t1.Insert(1, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Insert(1, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := e.CleanRestart(); err != nil {
		t.Fatal(err)
	}
	r1, r2 := e.Tree(1), e.Tree(2)
	if r1 == nil || r2 == nil {
		t.Fatal("trees lost across restart")
	}
	if r1.PayloadSize() != 32 || r2.PayloadSize() != 16 {
		t.Fatal("payload sizes lost across restart")
	}
	if r2.Layout() != btree.LayoutHash {
		t.Fatal("layout lost across restart")
	}
	c1, _ := r1.Count()
	c2, _ := r2.Count()
	if c1 != 1 || c2 != 1 {
		t.Fatalf("counts after restart = %d, %d", c1, c2)
	}
}

func TestReadOnlyCommitWritesNothing(t *testing.T) {
	e := openEngine(t, core.DRAMNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)
	mustInsert(t, e, tr, 9)

	before := e.Log().Stats()
	e.Begin()
	checkKey(t, tr, 9, true)
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	after := e.Log().Stats()
	if after.Records != before.Records || after.Flushes != before.Flushes {
		t.Fatalf("read-only commit logged: %+v -> %+v", before, after)
	}
}

func TestRecoveryAcrossManyTransactions(t *testing.T) {
	e := openEngine(t, core.ThreeTier)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)

	present := make(map[uint64]bool)
	for i := uint64(0); i < 300; i++ {
		e.Begin()
		if err := tr.Insert(i, pay(i)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := e.Rollback(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.Commit(); err != nil {
				t.Fatal(err)
			}
			present[i] = true
		}
	}
	if _, err := e.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	tr = e.Tree(1)
	for i := uint64(0); i < 300; i++ {
		checkKey(t, tr, i, present[i])
	}
}

func TestCatalogCapacity(t *testing.T) {
	// The superblock holds 1 KB of catalog: 46 trees overflow it, and the
	// engine must surface the error instead of corrupting the catalog.
	e := openEngine(t, core.DRAMNVM)
	var err error
	created := 0
	for i := uint64(1); i <= 60; i++ {
		if _, err = e.CreateTree(i, 8, btree.LayoutSorted); err != nil {
			break
		}
		created++
	}
	if err == nil {
		t.Fatal("catalog accepted 60 trees in a 1 KB superblock")
	}
	if created < 40 {
		t.Fatalf("only %d trees fit, expected ~46", created)
	}
	// The engine keeps working with the trees that fit.
	tr := e.Tree(1)
	e.Begin()
	if err := tr.Insert(1, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointInsideTxRejected(t *testing.T) {
	e := openEngine(t, core.DRAMNVM)
	e.Begin()
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint inside a transaction accepted")
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedBeginPanics(t *testing.T) {
	e := openEngine(t, core.DRAMNVM)
	e.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin did not panic")
		}
	}()
	e.Begin()
}

func TestRollbackWithoutTx(t *testing.T) {
	e := openEngine(t, core.DRAMNVM)
	if err := e.Rollback(); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("err = %v", err)
	}
	if err := e.Commit(); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortedTxSurvivesLaterCommitsOnSameKey(t *testing.T) {
	// Regression for the CLR bug the recovery fuzz found: an aborted
	// insert of key K followed by a committed insert of K must keep K
	// after crash recovery.
	e := openEngine(t, core.DRAMNVM)
	tr, _ := e.CreateTree(1, testPayload, btree.LayoutSorted)

	e.Begin()
	if err := tr.Insert(7, pay(99)); err != nil {
		t.Fatal(err)
	}
	if err := e.Rollback(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, tr, 7) // committed insert of the same key

	if _, err := e.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	tr = e.Tree(1)
	checkKey(t, tr, 7, true)
}
