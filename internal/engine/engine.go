// Package engine assembles a complete storage engine out of the buffer
// manager (internal/core), the write-ahead log (internal/wal), and B+-trees
// (internal/btree).
//
// One Engine type, parameterized by core.Topology, implements all five
// architectures the paper evaluates — Main Memory, SSD BM, Basic NVM BM,
// NVM Direct, and the three-tier NVM-optimized buffer manager — following
// the paper's methodology of implementing every design inside the same
// storage engine (§5: "all systems use the same logging scheme, B+-tree,
// and test driver").
//
// Transactions are single-threaded and explicit: Begin, tree operations,
// then Commit or Rollback. Every modification logs a logical redo/undo
// record; Commit flushes the log tail to NVM. Page write-back is gated by
// a write barrier that flushes the log first, so the write-ahead rule
// holds even though pages of uncommitted transactions may be stolen.
//
// Recovery is ARIES-style: repeat history from the redo images, then roll
// back losers from the undo images. The NVM Direct architecture truncates
// the log after every commit, as in the paper (§2.1): its tuples are
// flushed in place before the transaction completes, so the log only needs
// to cover in-flight transactions.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/fault"
	"nvmstore/internal/simclock"
	"nvmstore/internal/wal"
)

// Opcodes stored in the wal.Record Off field (low two bits); field updates
// keep the payload offset in the upper bits. For opImage records the PID
// field holds a raw page id instead of a tree id.
const (
	opImage  = 0
	opInsert = 1
	opDelete = 2
	opUpdate = 3
)

// ErrNoTransaction is returned when a modification happens outside
// Begin/Commit.
var ErrNoTransaction = errors.New("engine: modification outside a transaction")

// DefaultConfig returns the paper's configuration for one of the five
// architectures: the three-tier buffer manager enables cache-line-grained
// pages, mini pages, and pointer swizzling; the basic buffer managers are
// page-grained without swizzling; the main-memory system keeps swizzling
// (it stands in for direct pointers). Capacities the architecture does not
// use may be zero.
func DefaultConfig(topo core.Topology, dramBytes, nvmBytes, ssdBytes int64) core.Config {
	cfg := core.Config{
		Topology:  topo,
		DRAMBytes: dramBytes,
		NVMBytes:  nvmBytes,
		SSDBytes:  ssdBytes,
	}
	switch topo {
	case core.MemOnly:
		cfg.Swizzling = true
		cfg.SSDBytes = 0
	case core.ThreeTier:
		cfg.CacheLineGrained = true
		cfg.MiniPages = true
		cfg.Swizzling = true
	case core.DRAMNVM, core.DRAMSSD, core.DirectNVM:
		// Page-grained, no swizzling: the unoptimized baselines.
	}
	return cfg
}

// treeMeta is one catalog entry.
type treeMeta struct {
	id      uint64
	payload int
	layout  btree.LeafLayout
	root    core.PageID
	height  int
}

// Engine is a storage engine instance. Not safe for concurrent use.
type Engine struct {
	m    *core.Manager
	log  *wal.Log
	tree map[uint64]*btree.Tree

	txActive bool
	curTx    wal.TxID
	txOps    []txOp

	replaying bool

	// maint tunes incremental checkpointing and paced write-back; see
	// MaintenanceOptions. Always normalized (no zero fields).
	maint MaintenanceOptions
	// background marks that an external maintenance goroutine owns
	// checkpointing, disabling the commit path's inline pacing.
	background bool
	// ckptCursor resumes the dirty-frame walk across checkpoint rounds.
	ckptCursor int
	// ckpt counts incremental-checkpoint activity.
	ckpt CkptStats
	// ckptFaults is checked at the fault.CkptRound injection site, once
	// per checkpoint round.
	ckptFaults *fault.Injector
}

// txOp records a logical operation of the running transaction for
// Rollback.
type txOp struct {
	op     int
	treeID uint64
	key    uint64
	off    int
	img    []byte // insert: payload; delete: old payload; update: before
}

// Open creates an engine over a fresh set of simulated devices.
func Open(cfg core.Config) (*Engine, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	off, size := m.WALRegion()
	e := &Engine{
		m:     m,
		log:   wal.New(m.NVM(), off, size),
		tree:  make(map[uint64]*btree.Tree),
		maint: MaintenanceOptions{}.normalized(),
	}
	m.SetWriteBarrier(e.log.Flush)
	if cfg.Recorder != nil {
		e.log.SetRecorder(cfg.Recorder, m.Clock())
	}
	return e, nil
}

// Manager returns the underlying buffer manager.
func (e *Engine) Manager() *core.Manager { return e.m }

// Log returns the write-ahead log.
func (e *Engine) Log() *wal.Log { return e.log }

// Clock returns the virtual clock accumulating simulated device time.
func (e *Engine) Clock() *simclock.Clock { return e.m.Clock() }

// Topology returns the engine's storage architecture.
func (e *Engine) Topology() core.Topology { return e.m.Config().Topology }

// ArmFaults derives per-device injectors from plan and installs them on
// the engine's NVM device, SSD device (when the topology has one), and
// WAL. Distinct engines (shards) pass distinct site numbers so their
// fault streams are independent yet reproducible; each engine consumes
// three consecutive site salts. A nil plan disarms every device.
func (e *Engine) ArmFaults(plan *fault.Plan, site uint64) fault.Injectors {
	inj := fault.Injectors{
		NVM: plan.Injector(site * 3),
		SSD: plan.Injector(site*3 + 1),
		WAL: plan.Injector(site*3 + 2),
	}
	e.m.NVM().SetFaults(inj.NVM)
	if ssd := e.m.SSD(); ssd != nil {
		ssd.SetFaults(inj.SSD)
	} else {
		inj.SSD = nil
	}
	e.log.SetFaults(inj.WAL)
	// The ckpt.round site shares the WAL injector: checkpoint rounds
	// are log maintenance, and reusing the site keeps one salt per
	// device.
	e.ckptFaults = inj.WAL
	return inj
}

// CreateTree creates a new B+-tree and registers it in the persistent
// catalog.
func (e *Engine) CreateTree(id uint64, payloadSize int, layout btree.LeafLayout) (*btree.Tree, error) {
	if _, ok := e.tree[id]; ok {
		return nil, fmt.Errorf("engine: tree %d already exists", id)
	}
	t, err := btree.Create(e.m, id, payloadSize, layout)
	if err != nil {
		return nil, err
	}
	e.register(t)
	if err := e.saveCatalog(); err != nil {
		return nil, err
	}
	return t, nil
}

// Tree returns a previously created (or recovered) tree, or nil.
func (e *Engine) Tree(id uint64) *btree.Tree { return e.tree[id] }

// TreeIDs returns the ids of all registered trees in ascending order.
func (e *Engine) TreeIDs() []uint64 {
	ids := make([]uint64, 0, len(e.tree))
	for id := range e.tree {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IsPageImage reports whether a WAL update record is a physical page
// image (logged for B+-tree splits) rather than a logical operation.
// Page images are meaningful only on the engine that wrote them — page
// ids and layouts differ across stores — so replication ships only the
// logical records and lets the replica's own trees split independently.
func IsPageImage(r wal.Record) bool {
	return r.Kind == wal.RecUpdate && r.Off&3 == opImage
}

func (e *Engine) register(t *btree.Tree) {
	t.SetLogger(e)
	t.SetMetaSync(e.saveCatalog)
	// In-place NVM pages are durable as written, and main-memory pages
	// have no persistent home: neither needs split images in the log.
	topo := e.Topology()
	t.SetStructuralLogging(topo != core.DirectNVM && topo != core.MemOnly)
	e.tree[t.ID()] = t
}

// Begin starts a transaction.
func (e *Engine) Begin() {
	if e.txActive {
		panic("engine: nested transaction")
	}
	e.txActive = true
	e.curTx = e.log.Begin()
	e.txOps = e.txOps[:0]
	// Advance the transaction stamp: pages modified by this transaction
	// carry it as their version (snapshot reads, optimistic validation).
	e.m.Versions().BeginTx()
}

// Versions exposes the buffer manager's multi-version read-path state
// (per-page version counters, copy-on-write version store, snapshot
// registry). Same synchronization contract as the engine itself, except
// for the documented lock-free counter and epoch reads.
func (e *Engine) Versions() *core.Versions { return e.m.Versions() }

// InTx reports whether a transaction is active.
func (e *Engine) InTx() bool { return e.txActive }

// Commit makes the running transaction durable. On the NVM Direct
// architecture the log is truncated right after, as every change is
// already persisted in place (§2.1). On the buffered architectures the
// commit path never runs a full checkpoint: once the log passes the
// maintenance soft-fill threshold, each commit contributes one bounded
// incremental-checkpoint round (see MaintenanceOptions), or none at all
// when a background maintainer owns the engine.
func (e *Engine) Commit() error {
	if !e.txActive {
		return ErrNoTransaction
	}
	e.txActive = false
	if len(e.txOps) == 0 {
		return nil // read-only: nothing to log or flush
	}
	if err := e.log.Commit(e.curTx); err != nil {
		return err
	}
	if e.Topology() == core.DirectNVM {
		e.log.Truncate()
		return nil
	}
	return e.pace()
}

// CommitNoFlush commits the running transaction without flushing the log
// tail: the commit record is appended, but the transaction is not durable
// until FlushWAL (or any other flush of the tail) lands. Group-commit
// callers coalesce many commits into one flush this way; they must not
// acknowledge the transaction before that flush returns. On the NVM
// Direct architecture there is nothing to coalesce — every change is
// persisted in place and the log truncated per commit — so CommitNoFlush
// degenerates to Commit and the transaction is durable on return.
func (e *Engine) CommitNoFlush() error {
	if !e.txActive {
		return ErrNoTransaction
	}
	if e.Topology() == core.DirectNVM {
		return e.Commit()
	}
	e.txActive = false
	if len(e.txOps) == 0 {
		return nil // read-only: nothing to log or flush
	}
	return e.log.CommitNoFlush(e.curTx)
}

// FlushWAL flushes the log tail, making every CommitNoFlush since the
// last flush durable, and returns how many commits the flush covered.
// Commit's inline maintenance pacing is deferred to here under group
// commit; it is skipped while a transaction is running.
func (e *Engine) FlushWAL() (int64, error) {
	n := e.log.FlushTail()
	if e.txActive || e.Topology() == core.DirectNVM {
		return n, nil
	}
	return n, e.pace()
}

// Rollback undoes the running transaction using the logical undo
// information collected since Begin, then logs an abort record. The
// compensating operations are themselves logged (CLR-style): recovery
// redoes an aborted transaction — operations plus compensations, netting
// out — instead of undoing it, which would clobber later transactions'
// changes to the same keys.
func (e *Engine) Rollback() error {
	if !e.txActive {
		return ErrNoTransaction
	}
	if len(e.txOps) == 0 {
		e.txActive = false
		return nil
	}
	// The compensations log through the normal path below; guard against
	// them growing txOps while we walk it backwards.
	ops := e.txOps
	e.txOps = nil
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		t := e.tree[op.treeID]
		var err error
		switch op.op {
		case opInsert:
			_, err = t.Delete(op.key)
		case opDelete:
			err = t.InsertOrReplace(op.key, op.img)
		case opUpdate:
			_, err = t.UpdateField(op.key, op.off, op.img)
		}
		if err != nil {
			e.txActive = false
			return fmt.Errorf("engine: rollback: %w", err)
		}
	}
	e.txActive = false
	e.txOps = e.txOps[:0]
	return e.log.Abort(e.curTx)
}

// Checkpoint forces all dirty pages to persistent storage and truncates
// the log, stalling until the whole dirty set is written back. The
// commit path never calls it — incremental rounds (CheckpointRound)
// checkpoint in bounded steps there — but shutdown, restart, and
// snapshot paths still want the synchronous full barrier. It must not
// run inside a transaction.
func (e *Engine) Checkpoint() error {
	if e.txActive {
		return fmt.Errorf("engine: checkpoint inside a transaction")
	}
	e.log.Flush()
	e.m.FlushAll()
	e.log.Truncate()
	return nil
}

// The engine is the btree.Logger for all its trees: tree modifications
// arrive here, are recorded for rollback, and appended to the WAL before
// the page is modified.

// LogInsert implements btree.Logger.
func (e *Engine) LogInsert(treeID, key uint64, payload []byte) error {
	if e.replaying {
		return nil
	}
	if !e.txActive {
		return ErrNoTransaction
	}
	img := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint64(img, key)
	copy(img[8:], payload)
	if _, err := e.log.Update(e.curTx, treeID, opInsert, nil, img); err != nil {
		return err
	}
	e.txOps = append(e.txOps, txOp{op: opInsert, treeID: treeID, key: key})
	return nil
}

// LogDelete implements btree.Logger.
func (e *Engine) LogDelete(treeID, key uint64, old []byte) error {
	if e.replaying {
		return nil
	}
	if !e.txActive {
		return ErrNoTransaction
	}
	img := make([]byte, 8+len(old))
	binary.LittleEndian.PutUint64(img, key)
	copy(img[8:], old)
	if _, err := e.log.Update(e.curTx, treeID, opDelete, img, nil); err != nil {
		return err
	}
	e.txOps = append(e.txOps, txOp{op: opDelete, treeID: treeID, key: key, img: img[8:]})
	return nil
}

// LogUpdate implements btree.Logger.
func (e *Engine) LogUpdate(treeID, key uint64, off int, before, after []byte) error {
	if e.replaying {
		return nil
	}
	if !e.txActive {
		return ErrNoTransaction
	}
	b := make([]byte, 8+len(before))
	binary.LittleEndian.PutUint64(b, key)
	copy(b[8:], before)
	a := make([]byte, 8+len(after))
	binary.LittleEndian.PutUint64(a, key)
	copy(a[8:], after)
	if _, err := e.log.Update(e.curTx, treeID, opUpdate|off<<2, b, a); err != nil {
		return err
	}
	e.txOps = append(e.txOps, txOp{op: opUpdate, treeID: treeID, key: key, off: off, img: b[8:]})
	return nil
}

// LogPageImage implements btree.Logger: a redo-only record carrying the
// full after-image of a page changed by a split.
func (e *Engine) LogPageImage(pid core.PageID, image []byte) error {
	if e.replaying {
		return nil
	}
	if !e.txActive {
		return ErrNoTransaction
	}
	_, err := e.log.Update(e.curTx, uint64(pid), opImage, nil, image)
	return err
}

// Redo implements wal.Handler: repeat history with idempotent logical
// operations; page-image records restore the page wholesale.
func (e *Engine) Redo(r wal.Record) error {
	op, off := r.Off&3, r.Off>>2
	if op == opImage {
		h, err := e.m.Fix(core.MakeRef(core.PageID(r.PID)), core.ModeFull)
		if err != nil {
			return fmt.Errorf("engine: redo page image %d: %w", r.PID, err)
		}
		// Earlier replay steps may have swizzled this page's child
		// references; the image would overwrite them with page ids while
		// the children still think they are swizzled.
		e.m.UnswizzleChildren(h)
		copy(h.WriteAll(), r.After)
		e.m.Unfix(h)
		return nil
	}
	t := e.tree[r.PID]
	if t == nil {
		return fmt.Errorf("engine: redo for unknown tree %d", r.PID)
	}
	switch op {
	case opInsert:
		return t.InsertOrReplace(binary.LittleEndian.Uint64(r.After), r.After[8:])
	case opDelete:
		_, err := t.Delete(binary.LittleEndian.Uint64(r.Before))
		return err
	case opUpdate:
		_, err := t.UpdateField(binary.LittleEndian.Uint64(r.After), off, r.After[8:])
		return err
	}
	return fmt.Errorf("engine: unknown opcode %d", op)
}

// ApplyLogical validates and replays one logical record from another
// engine's log inside the running transaction — the replica apply path.
// Unlike Redo during recovery, the engine is NOT in replay mode, so the
// tree operations are logged into this engine's own WAL: the replica
// has its own durability and crash recovery for everything it applied.
// Commit/abort marks are ignored (the caller delimits transactions);
// page-image records are rejected because page ids are meaningless
// across engines. Image lengths are validated so a malformed or hostile
// record returns an error instead of panicking.
func (e *Engine) ApplyLogical(r wal.Record) error {
	if r.Kind != wal.RecUpdate {
		return nil
	}
	op := r.Off & 3
	switch op {
	case opImage:
		return fmt.Errorf("engine: page-image record %d cannot be applied logically", r.LSN)
	case opInsert, opUpdate:
		if len(r.After) < 8 {
			return fmt.Errorf("engine: logical record %d: short after image", r.LSN)
		}
	case opDelete:
		if len(r.Before) < 8 {
			return fmt.Errorf("engine: logical record %d: short before image", r.LSN)
		}
	}
	if !e.txActive {
		return ErrNoTransaction
	}
	return e.Redo(r)
}

// Undo implements wal.Handler: roll back one loser record. Page-image
// records are redo-only (splits stay, like nested top actions).
func (e *Engine) Undo(r wal.Record) error {
	op, off := r.Off&3, r.Off>>2
	if op == opImage {
		return nil
	}
	t := e.tree[r.PID]
	if t == nil {
		return fmt.Errorf("engine: undo for unknown tree %d", r.PID)
	}
	switch op {
	case opInsert:
		key := binary.LittleEndian.Uint64(r.After)
		_, err := t.Delete(key)
		return err
	case opDelete:
		key := binary.LittleEndian.Uint64(r.Before)
		return t.InsertOrReplace(key, r.Before[8:])
	case opUpdate:
		key := binary.LittleEndian.Uint64(r.Before)
		_, err := t.UpdateField(key, off, r.Before[8:])
		return err
	}
	return fmt.Errorf("engine: unknown opcode %d", op)
}

// CleanRestart simulates an orderly shutdown and restart: checkpoint,
// drop all volatile state, rebuild the mapping table from NVM, reload the
// catalog. The three-tier architecture comes back with a warm NVM cache —
// the property Figure 17 measures.
func (e *Engine) CleanRestart() error {
	if e.txActive {
		return fmt.Errorf("engine: restart inside a transaction")
	}
	if err := e.Checkpoint(); err != nil {
		return err
	}
	if err := e.m.CleanRestart(); err != nil {
		return err
	}
	return e.reload()
}

// CrashRestart simulates a power failure and restart: DRAM is lost,
// unflushed NVM lines revert, the catalog and mapping table are read back
// from NVM, and the WAL is replayed (redo committed work, undo losers).
// Main-memory engines do not support crash recovery: their pages have no
// persistent home, which is exactly the durability gap the paper's
// buffered architectures close.
func (e *Engine) CrashRestart() (wal.RecoveryStats, error) {
	if e.Topology() == core.MemOnly {
		return wal.RecoveryStats{}, fmt.Errorf("engine: main-memory architecture cannot recover from a crash")
	}
	e.txActive = false
	if err := e.m.CrashRestart(); err != nil {
		return wal.RecoveryStats{}, err
	}
	if err := e.reload(); err != nil {
		return wal.RecoveryStats{}, err
	}
	e.replaying = true
	stats, err := e.log.Recover(e)
	e.replaying = false
	if err != nil {
		return stats, err
	}
	// All recovered state is in the buffer pool; checkpoint so the log
	// can be truncated.
	return stats, e.Checkpoint()
}

// reload rebuilds the tree map from the persistent catalog.
func (e *Engine) reload() error {
	metas, err := decodeCatalog(e.m.UserMeta())
	if err != nil {
		return err
	}
	e.tree = make(map[uint64]*btree.Tree, len(metas))
	for _, tm := range metas {
		t, err := btree.Load(e.m, tm.id, tm.payload, tm.layout, tm.root, tm.height)
		if err != nil {
			return fmt.Errorf("engine: reload tree %d: %w", tm.id, err)
		}
		e.register(t)
	}
	return nil
}

// saveCatalog persists every tree's root and height in the manager's
// superblock metadata. It runs on tree creation and on every root change.
func (e *Engine) saveCatalog() error {
	buf := make([]byte, 2, 2+len(e.tree)*22)
	binary.LittleEndian.PutUint16(buf, uint16(len(e.tree)))
	for _, t := range e.tree {
		var entry [22]byte
		binary.LittleEndian.PutUint64(entry[0:], t.ID())
		binary.LittleEndian.PutUint32(entry[8:], uint32(t.PayloadSize()))
		entry[12] = byte(t.Layout())
		binary.LittleEndian.PutUint64(entry[13:], uint64(t.RootPID()))
		entry[21] = byte(t.Height())
		buf = append(buf, entry[:]...)
	}
	return e.m.SetUserMeta(buf)
}

func decodeCatalog(b []byte) ([]treeMeta, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("engine: catalog of %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n*22 {
		return nil, fmt.Errorf("engine: catalog truncated: %d entries in %d bytes", n, len(b))
	}
	metas := make([]treeMeta, n)
	for i := 0; i < n; i++ {
		entry := b[2+i*22:]
		metas[i] = treeMeta{
			id:      binary.LittleEndian.Uint64(entry[0:]),
			payload: int(binary.LittleEndian.Uint32(entry[8:])),
			layout:  btree.LeafLayout(entry[12]),
			root:    core.PageID(binary.LittleEndian.Uint64(entry[13:])),
			height:  int(entry[21]),
		}
	}
	return metas, nil
}

// SaveSnapshot checkpoints the engine and writes all durable state to w;
// LoadSnapshot on an identically configured engine restores it. Must not
// run inside a transaction. The engine stays usable afterwards.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	if e.txActive {
		return fmt.Errorf("engine: snapshot inside a transaction")
	}
	if err := e.Checkpoint(); err != nil {
		return err
	}
	return e.m.SaveSnapshot(w)
}

// LoadSnapshot replaces the engine's state with a snapshot written by
// SaveSnapshot on an engine with the same configuration.
func (e *Engine) LoadSnapshot(r io.Reader) error {
	if e.txActive {
		return fmt.Errorf("engine: snapshot load inside a transaction")
	}
	if err := e.m.LoadSnapshot(r); err != nil {
		return err
	}
	if err := e.reload(); err != nil {
		return err
	}
	// The snapshot was checkpointed: the log is empty, but Recover
	// repositions the append cursor and transaction counters.
	e.replaying = true
	_, err := e.log.Recover(e)
	e.replaying = false
	return err
}

// Close shuts the engine down in an orderly fashion: the log tail is
// flushed so every committed transaction is durable, and with
// checkpoint=true all dirty pages are written back and the log
// truncated (a cold store that recovers instantly). Close is idempotent
// and fails inside a transaction. The simulated devices live in process
// memory, so Close releases nothing — it exists to define the durable
// state a server hand-off or restart starts from.
func (e *Engine) Close(checkpoint bool) error {
	if e.txActive {
		return fmt.Errorf("engine: close inside a transaction")
	}
	if checkpoint {
		return e.Checkpoint()
	}
	e.log.Flush()
	return nil
}
