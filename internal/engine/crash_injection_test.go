package engine

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
	"nvmstore/internal/nvm"
)

// TestMidOperationCrashInjection kills the power in the middle of
// operations: the NVM device panics on a randomly chosen flush, so crashes
// land inside commits, evictions, checkpoints, admissions, and structural
// force-writes — between any two persistence steps. After each crash the
// engine recovers and the database must equal the committed model, with
// the one in-flight transaction allowed to land either way only if the
// crash interrupted its commit.
func TestMidOperationCrashInjection(t *testing.T) {
	for _, topo := range []core.Topology{core.DRAMNVM, core.ThreeTier} {
		t.Run(topo.String(), func(t *testing.T) {
			crashes := 0
			for seed := int64(0); seed < 10; seed++ {
				crashes += runCrashInjectionTrial(t, topo, seed)
			}
			if crashes < 10 {
				t.Fatalf("only %d injected crashes fired across all trials", crashes)
			}
		})
	}
}

func runCrashInjectionTrial(t *testing.T, topo core.Topology, seed int64) (crashes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := testConfig(topo)
	cfg.DRAMBytes = 8 * (core.PageSize + 2*core.LineSize) // frequent evictions
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.CreateTree(1, 40, btree.LayoutSorted)
	if err != nil {
		t.Fatal(err)
	}

	model := make(map[uint64]uint64) // key -> committed tag
	row := func(tag uint64) []byte {
		p := make([]byte, 40)
		binary.LittleEndian.PutUint64(p, tag)
		return p
	}

	// txAttempt runs one single-op transaction; it returns the key and
	// tag it tried to commit. Panics from the injected crash propagate.
	tag := uint64(0)
	txAttempt := func() (uint64, uint64, bool) {
		key := uint64(rng.Intn(80))
		tag++
		e.Begin()
		var inserted bool
		if _, exists := model[key]; exists {
			if _, err := tr.UpdateField(key, 0, row(tag)[:8]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tr.Insert(key, row(tag)); err != nil {
				t.Fatal(err)
			}
			inserted = true
		}
		if err := e.Commit(); err != nil {
			t.Fatal(err)
		}
		return key, tag, inserted
	}

	for round := 0; round < 6; round++ {
		// Run some safe transactions.
		for i := 0; i < 20; i++ {
			key, tg, _ := txAttempt()
			model[key] = tg
		}
		// Arm a crash within the next few flushes and keep running until
		// it fires. The op whose commit was interrupted may land either
		// way; everything committed before must survive.
		e.Manager().NVM().FailAfterFlushes(int64(rng.Intn(40)))
		var pendingKey, pendingTag uint64
		pendingInsert := false
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.InjectedCrash); !ok {
						panic(r)
					}
					c = true
				}
			}()
			for i := 0; i < 500; i++ {
				key, tg, ins := txAttempt()
				// Commit returned: it is durable, update the model.
				model[key] = tg
				pendingKey, pendingTag, pendingInsert = key, tg, ins
				_ = pendingKey
			}
			return false
		}()
		if !crashed {
			// The flush budget was larger than 500 transactions needed;
			// disarm and continue.
			e.Manager().NVM().FailAfterFlushes(-1)
		} else {
			crashes++
			// The interrupted transaction is whichever txAttempt was in
			// flight; we cannot know its key (t.Fatal paths aside, the
			// panic unwound before returning), so allow exactly one
			// divergence from the model, checked below.
			if _, err := e.CrashRestart(); err != nil {
				t.Fatalf("seed %d round %d: recovery: %v", seed, round, err)
			}
			tr = e.Tree(1)
			if tr == nil {
				t.Fatalf("seed %d: tree lost", seed)
			}
		}
		_ = pendingTag
		_ = pendingInsert

		// Verify: every committed key present with its committed tag,
		// except that at most one key may carry a *newer* tag (the
		// transaction interrupted mid-commit may have become durable).
		buf := make([]byte, 40)
		diverged := 0
		for key, want := range model {
			found, err := tr.Lookup(key, buf)
			if err != nil {
				t.Fatalf("seed %d: lookup: %v", seed, err)
			}
			if !found {
				t.Fatalf("seed %d round %d: committed key %d lost", seed, round, key)
			}
			got := binary.LittleEndian.Uint64(buf)
			if got != want {
				if got < want {
					t.Fatalf("seed %d round %d: key %d regressed to tag %d (committed %d)", seed, round, key, got, want)
				}
				diverged++
				model[key] = got // the in-flight tx landed
			}
		}
		if diverged > 1 {
			t.Fatalf("seed %d round %d: %d keys diverged; at most the interrupted tx may land", seed, round, diverged)
		}
		// Count check: the interrupted tx may also have inserted a key
		// not in the model.
		cnt, err := tr.Count()
		if err != nil {
			t.Fatal(err)
		}
		if cnt != len(model) && cnt != len(model)+1 {
			t.Fatalf("seed %d round %d: count %d, model %d", seed, round, cnt, len(model))
		}
		if cnt == len(model)+1 {
			// Adopt the extra key into the model by scanning for it.
			err := tr.Scan(0, 0, 0, 8, func(k uint64, field []byte) bool {
				if _, ok := model[k]; !ok {
					model[k] = binary.LittleEndian.Uint64(field[:8])
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Full content verification at the end.
	buf := make([]byte, 40)
	for key, want := range model {
		found, err := tr.Lookup(key, buf)
		if err != nil || !found {
			t.Fatalf("seed %d: final lookup(%d) = %v, %v", seed, key, found, err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != want {
			t.Fatalf("seed %d: final key %d tag %d, want %d", seed, key, got, want)
		}
	}
	return crashes
}
