package engine

import (
	"testing"

	"nvmstore/internal/btree"
	"nvmstore/internal/core"
)

// TestDirectUpdateWearsTupleLines is a regression test for NVM wear
// accounting on the in-place architecture: each update must flush (and
// therefore wear) the updated tuple's cache lines in addition to the log
// lines, and updates to distinct rows must wear distinct lines.
func TestDirectUpdateWearsTupleLines(t *testing.T) {
	cfg := DefaultConfig(core.DirectNVM, 0, 64<<20, 0)
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := e.CreateTree(1, 1024, btree.LayoutSorted)
	if err := tr.BulkLoad(100, func(i int) uint64 { return uint64(i) }, func(i int, dst []byte) {}, 0.66); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m := e.Manager()

	// A single update wears both log and tuple lines.
	m.NVM().ResetWear()
	e.Begin()
	if found, err := tr.UpdateField(3, 0, []byte("YY")); err != nil || !found {
		t.Fatalf("update: %v %v", found, err)
	}
	if err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if w := m.NVM().TotalWrites(); w < 3 {
		t.Fatalf("single update wore %d lines, want log + tuple", w)
	}

	// Updates over distinct rows wear distinct lines: lines touched must
	// scale with the rows, not stay at the handful of reused log lines.
	m.NVM().ResetWear()
	for i := 0; i < 80; i++ {
		e.Begin()
		if found, err := tr.UpdateField(uint64(i), 0, []byte("abcd")); err != nil || !found {
			t.Fatalf("bulk update %d: %v %v", i, found, err)
		}
		if err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	touched := 0
	for _, c := range m.NVM().WearCounts() {
		if c > 0 {
			touched++
		}
	}
	if touched < 60 {
		t.Fatalf("only %d lines touched for 80 distinct-row updates", touched)
	}
}
