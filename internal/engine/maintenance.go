package engine

import (
	"fmt"
	"time"

	"nvmstore/internal/core"
	"nvmstore/internal/fault"
)

// Maintenance defaults, used when the corresponding MaintenanceOptions
// field is zero.
const (
	// DefaultMaintenanceInterval paces a sharded store's background
	// maintenance goroutine: how often each shard's log fill and dirty
	// set are inspected between nudges from the write path.
	DefaultMaintenanceInterval = 2 * time.Millisecond
	// DefaultMaintenanceBatch bounds the pages written back per
	// incremental-checkpoint round, and therefore the worst-case pause
	// one round imposes on the shard.
	DefaultMaintenanceBatch = 64
	// DefaultSoftFill is the log-fill fraction at which paced write-back
	// starts.
	DefaultSoftFill = 0.5
	// DefaultHardFill is the log-fill fraction past which writers are
	// throttled (background mode) or the commit path drives rounds to
	// completion (inline mode) so appends never hit wal.ErrLogFull.
	DefaultHardFill = 0.9
)

// MaintenanceOptions tunes incremental (fuzzy) checkpointing and paced
// dirty write-back. A checkpoint is no longer one synchronous
// FlushAll+Truncate on the commit path: it is a sequence of bounded
// rounds (CheckpointRound), each writing back at most Batch dirty pages
// in clock order, with the WAL truncated once the dirty set is drained.
// The zero value selects every default.
type MaintenanceOptions struct {
	// Interval is the wall-clock pacing of a sharded store's background
	// maintenance goroutine; each tick inspects the shard and runs
	// rounds when the log fill or dirty ratio warrants. Single-threaded
	// engines ignore it (their rounds piggyback on the commit path). A
	// negative Interval disables the background goroutine entirely,
	// falling back to inline pacing.
	Interval time.Duration
	// Batch bounds the pages written back per round. Smaller batches
	// mean shorter lock holds and smaller foreground stalls; larger
	// batches drain the dirty set in fewer rounds. Zero selects
	// DefaultMaintenanceBatch.
	Batch int
	// SoftFill is the log-fill fraction at which paced write-back
	// starts (zero selects DefaultSoftFill). Below it the engine leaves
	// dirty pages alone, preserving write coalescing in the pool.
	SoftFill float64
	// HardFill is the log-fill fraction past which the engine refuses
	// to let the log grow unchecked: background mode throttles writers
	// until maintenance truncates, inline mode runs rounds back to back
	// on the committing goroutine. Zero selects DefaultHardFill.
	HardFill float64
}

// normalized returns o with zero fields replaced by the defaults.
func (o MaintenanceOptions) normalized() MaintenanceOptions {
	if o.Interval == 0 {
		o.Interval = DefaultMaintenanceInterval
	}
	if o.Batch <= 0 {
		o.Batch = DefaultMaintenanceBatch
	}
	if o.SoftFill <= 0 {
		o.SoftFill = DefaultSoftFill
	}
	if o.HardFill <= 0 {
		o.HardFill = DefaultHardFill
	}
	if o.HardFill < o.SoftFill {
		o.HardFill = o.SoftFill
	}
	return o
}

// CkptStats counts incremental-checkpoint and paced write-back
// activity.
type CkptStats struct {
	// Rounds counts bounded write-back rounds (CheckpointRound calls
	// that walked the frame table).
	Rounds int64
	// Pages counts dirty pages written back by those rounds.
	Pages int64
	// Truncations counts WAL truncations performed at the end of a
	// drained checkpoint; TruncatedBytes sums the log bytes they
	// discarded.
	Truncations int64
	// TruncatedBytes sums the log bytes discarded by those truncations.
	TruncatedBytes int64
}

// SetMaintenance replaces the engine's maintenance tuning. Fields left
// zero keep their defaults. It must not run inside a transaction.
func (e *Engine) SetMaintenance(o MaintenanceOptions) {
	e.maint = o.normalized()
}

// Maintenance returns the engine's normalized maintenance tuning.
func (e *Engine) Maintenance() MaintenanceOptions { return e.maint }

// SetBackgroundMaintenance marks that an external maintenance goroutine
// owns this engine's checkpointing: the commit path stops running
// inline rounds and only the owner calls CheckpointRound. The sharded
// store sets it when it starts a shard's maintainer.
func (e *Engine) SetBackgroundMaintenance(on bool) { e.background = on }

// CkptStats returns the incremental-checkpoint counters.
func (e *Engine) CkptStats() CkptStats { return e.ckpt }

// LogFill returns the WAL region's fill fraction (0..1).
func (e *Engine) LogFill() float64 {
	return float64(e.log.Bytes()) / float64(e.log.Capacity())
}

// NeedsMaintenance reports whether the log fill has reached the soft
// threshold — the signal a background maintainer polls for between
// rounds.
func (e *Engine) NeedsMaintenance() bool {
	return e.Topology() != core.DirectNVM && e.LogFill() >= e.maint.SoftFill
}

// OverHardFill reports whether the log fill has reached the hard
// threshold at which writers must be throttled until maintenance
// truncates.
func (e *Engine) OverHardFill() bool {
	return e.Topology() != core.DirectNVM && e.LogFill() >= e.maint.HardFill
}

// CheckpointRound performs one bounded round of an incremental (fuzzy)
// checkpoint: write back up to batch dirty pages (batch <= 0 selects
// the configured Batch), resuming the frame walk where the previous
// round stopped, and — once no dirty page remains — flush and truncate
// the WAL. It returns how many pages this round wrote back and whether
// it truncated the log.
//
// Unlike Checkpoint, a round never stalls on the whole dirty set: the
// caller interleaves rounds with foreground work (inline pacing on the
// commit path, or a maintenance goroutine taking the shard lock per
// round), and the checkpoint is "fuzzy" because pages dirtied between
// rounds simply join a later round. Truncation only happens in the
// round that observes a fully clean pool, so every logged change is
// durable in its home location first; a crash between rounds recovers
// from the intact log exactly (the fault.CkptRound site at the top of
// each round is the harness's probe for this).
//
// On NVM Direct there is nothing to do — tuples persist in place and
// Commit truncates per transaction. On Main Memory pages have no
// persistent home; the round just flushes and cuts the log, which only
// covers the running transaction's rollback needs. It must not run
// inside a transaction.
func (e *Engine) CheckpointRound(batch int) (pages int, truncated bool, err error) {
	if e.txActive {
		return 0, false, fmt.Errorf("engine: checkpoint round inside a transaction")
	}
	if dec := e.ckptFaults.Check(fault.CkptRound); dec.Fire {
		panic(fault.Crash{Kind: fault.CkptRound, Site: "ckpt.round"})
	}
	switch e.Topology() {
	case core.DirectNVM:
		return 0, false, nil
	case core.MemOnly:
		return 0, e.truncateLog(), nil
	}
	if batch <= 0 {
		batch = e.maint.Batch
	}
	e.ckpt.Rounds++
	cursor, n := e.m.FlushSome(e.ckptCursor, batch)
	e.ckptCursor = cursor
	e.ckpt.Pages += int64(n)
	if e.m.DirtyFrames() == 0 {
		truncated = e.truncateLog()
	}
	return n, truncated, nil
}

// truncateLog flushes the tail (so unshipped records reach the
// replication tap before the region is reused) and truncates the WAL,
// updating the checkpoint counters. It reports whether the log was
// actually cut: the replication retention watermark can refuse (see
// wal.Log.Truncate), and an empty log has nothing to cut.
func (e *Engine) truncateLog() bool {
	e.log.Flush()
	before := e.log.Bytes()
	if before == 0 {
		return false
	}
	if e.log.Truncate() == 0 {
		return false
	}
	e.ckpt.Truncations++
	e.ckpt.TruncatedBytes += before
	return true
}

// pace is the commit path's inline maintenance hook, called after a
// commit or tail flush on engines without a background maintainer. Below
// SoftFill it does nothing. From SoftFill it runs one bounded round per
// commit — write-back amortized across the writers that generate the
// dirt, in place of the old stall-the-world checkpoint. From HardFill it
// runs rounds back to back until the log is truncated, so an append can
// never hit wal.ErrLogFull; each round is still batch-bounded, keeping
// the worst-case single-commit stall at one batch per round rather than
// one full pool flush.
func (e *Engine) pace() error {
	if e.background || e.txActive {
		return nil
	}
	if e.LogFill() < e.maint.SoftFill {
		return nil
	}
	for {
		pages, truncated, err := e.CheckpointRound(0)
		if err != nil {
			return err
		}
		if truncated || e.LogFill() < e.maint.HardFill {
			return nil
		}
		if pages == 0 {
			// Nothing written back and no truncation: the pool is
			// already clean and the cut was refused (replication
			// retention), or the topology has no page write-back. More
			// rounds cannot shrink the log.
			return nil
		}
	}
}
