package server_test

import (
	"errors"
	"testing"
	"time"

	"nvmstore/internal/client"
	"nvmstore/internal/fault"
	"nvmstore/internal/server"
)

// TestClientRetriesThroughNetFaults drives writes and reads through a
// server that drops connections and tears response frames at a high
// injected rate; the retrying client must complete every operation with
// correct values, healing its pool as slots die.
func TestClientRetriesThroughNetFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 1234, Rules: []fault.Rule{
		{Kind: fault.NetDrop, Prob: 0.05},
		{Kind: fault.NetPartial, Prob: 0.05},
	}}
	inj := plan.Injector(100)
	_, _, addr := startServer(t, 2, server.Options{Faults: inj})
	cl, err := client.Dial(addr, client.Options{
		Conns:        2,
		Retries:      8,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 200
	for key := uint64(0); key < n; key++ {
		if err := cl.Put(testTable, key, rowFor(key)); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	for key := uint64(0); key < n; key++ {
		val, ok, err := cl.Get(testTable, key)
		if err != nil {
			t.Fatalf("get %d: %v", key, err)
		}
		if !ok {
			t.Fatalf("key %d lost", key)
		}
		if string(val[:8]) != string(rowFor(key)[:8]) {
			t.Fatalf("key %d corrupted", key)
		}
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("no network faults fired; the test exercised nothing")
	}
	if cl.Retries() == 0 {
		t.Fatal("faults fired but the client never retried")
	}
	t.Logf("fired %d net faults, client retried %d times", inj.FiredTotal(), cl.Retries())
}

// TestRetryDisabled pins that Retries < 0 restores fail-fast behavior:
// with every response dropped, a synchronous call errors instead of
// spinning.
func TestRetryDisabled(t *testing.T) {
	plan := &fault.Plan{Seed: 9, Rules: []fault.Rule{{Kind: fault.NetDrop, Prob: 1}}}
	_, _, addr := startServer(t, 1, server.Options{Faults: plan.Injector(0)})
	cl, err := client.Dial(addr, client.Options{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(testTable, 1, rowFor(1)); err == nil {
		t.Fatal("put through a black-hole server succeeded without retries")
	} else if !client.IsRetryable(err) {
		t.Fatalf("transport failure %v not classified retryable", err)
	}
	// A server-side error, by contrast, must not be retryable.
	if client.IsRetryable(&client.RemoteError{Msg: "no such table"}) {
		t.Fatal("RemoteError classified retryable")
	}
	if client.IsRetryable(nil) || client.IsRetryable(errors.New("")) == false {
		t.Fatal("IsRetryable base cases wrong")
	}
}
