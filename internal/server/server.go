// Package server exposes a ShardedStore over TCP, speaking the framing
// of internal/wire. It is the request-handling half of the serving
// layer: the paper's three-tier buffer manager (§3) is the storage hot
// path, and this package gives it the deployment shape the NVM
// literature assumes — a server absorbing many concurrent client
// connections.
//
// # Threading model
//
// One goroutine per connection reads and decodes frames; decoded keyed
// requests (GET/PUT/DELETE) are routed by key hash to a per-shard
// worker goroutine, which drains its queue in batches and executes each
// batch under a single acquisition of the shard lock — the server-side
// continuation of the shard-per-core model (Appendix A.1). Writes in a
// batch commit without flushing and share one WAL flush at the end of
// the batch (group commit); responses are enqueued only after that
// flush lands, so an acknowledged write is always durable. Responses
// travel through a per-connection writer goroutine, so a connection's
// responses are pipelined: many requests in flight, responses matched
// to requests by wire request id, in whatever order the shards finish.
// Scans, transaction control, and stats run inline on the reader.
//
// # Backpressure
//
// Every queue is bounded. A full shard queue blocks the readers feeding
// it, which stops them from reading more frames, which fills the TCP
// receive window — backpressure propagates to the clients as the
// network's own flow control. A full connection write queue blocks the
// shard workers the same way, but only for a bounded time: every write
// carries a deadline (Options.WriteTimeout), so a peer that stops
// reading (TCP zero window) fails its writer within the deadline rather
// than never, the connection is severed, and its queue drains to the
// floor (responses to a dead connection are discarded) — one stalled
// client cannot wedge a shard for longer than WriteTimeout.
// Options.MaxConns bounds concurrent connections; excess dials wait in
// the listen backlog.
//
// # Transactions
//
// BEGIN/COMMIT/ROLLBACK give a connection a transaction: writes between
// BEGIN and COMMIT are buffered server-side (acknowledged immediately,
// durable only at COMMIT) and reads see the connection's own buffered
// writes. COMMIT groups the buffer by shard and applies each shard's
// group as one atomic, durable transaction — atomicity is per shard,
// the shared-nothing contract of the sharded store; a COMMIT that fails
// on one shard reports the error and does not undo shards already
// committed. Autocommit requests (outside BEGIN) are each one durable
// transaction: their acknowledgement implies the write survives a
// crash.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nvmstore"
	"nvmstore/internal/fault"
	"nvmstore/internal/obs"
	"nvmstore/internal/repl"
	"nvmstore/internal/wire"
)

// Options tunes the server. The zero value is ready for use.
type Options struct {
	// MaxConns bounds concurrently served connections (default 64).
	// Excess dials are not rejected; they wait in the listen backlog.
	MaxConns int
	// ShardQueue is the per-shard request queue depth (default 128).
	ShardQueue int
	// BatchMax is how many queued requests a shard worker executes per
	// shard-lock acquisition (default 32).
	BatchMax int
	// WriteQueue is the per-connection response queue depth (default 128).
	WriteQueue int
	// MaxScan caps the rows one SCAN may return (default 1024). Client
	// limits are clamped to it, and further clamped by encoded bytes so
	// a response always fits in wire.MaxFrame whatever the row size.
	MaxScan int
	// WriteTimeout bounds each response write to a connection (default
	// 30s). A peer that stops reading for longer is severed, so a
	// stalled client cannot block a shard worker indefinitely.
	WriteTimeout time.Duration
	// Logf, when set, receives connection-level error logs.
	Logf func(format string, args ...any)
	// Faults, when set, injects network faults on the response path:
	// fault.NetDrop closes a connection instead of writing a queued
	// response and fault.NetPartial writes half a response frame before
	// closing — the failures a resilient client must retry through. One
	// injector is shared by all connections, so probability rules model
	// a server-wide fault rate.
	Faults *fault.Injector
	// Repl, when set, makes this server a replication primary: REPL
	// SUBSCRIBE connections stream the store's WAL through it, acks
	// record replica progress, and (with SyncReplicas set on the
	// source) shard workers hold write acks until enough replicas
	// confirmed — see internal/repl.
	Repl *repl.Source
	// Replica, when set, marks this server a read replica fed by it:
	// writes are rejected with a "READONLY:"-classified error until the
	// replica is promoted, and REPL WAIT blocks reads until the applied
	// LSN vector covers the client's.
	Replica *repl.Replica
	// TraceRing is the flight recorder's uniform-sample capacity
	// (default 256) and TraceSlow how many slowest traced requests it
	// always keeps (default 8). Tracing itself is request-driven: the
	// server records a span timeline for every keyed request whose wire
	// header carries wire.FlagTraced, and an untraced request pays only
	// a nil check per stage.
	TraceRing int
	TraceSlow int
}

func (o *Options) applyDefaults() {
	if o.MaxConns <= 0 {
		o.MaxConns = 64
	}
	if o.ShardQueue <= 0 {
		o.ShardQueue = 128
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 32
	}
	if o.WriteQueue <= 0 {
		o.WriteQueue = 128
	}
	if o.MaxScan <= 0 {
		o.MaxScan = 1024
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.TraceRing <= 0 {
		o.TraceRing = 256
	}
	if o.TraceSlow <= 0 {
		o.TraceSlow = 8
	}
}

// task is one keyed request on its way to a shard worker.
type task struct {
	c     *conn
	req   wire.Request // Value owned by the task (copied off the read buffer)
	start time.Time
	// tl is the request's span timeline when it is traced, else nil.
	// Ownership follows the request: the reader stamps the enqueue
	// stage before the channel send, the shard worker stamps queue /
	// exec / flush, and the connection writer finishes it — each
	// handoff (channel send) orders the accesses.
	tl *obs.Timeline
}

// shardGauge is a cache-line-padded per-shard in-flight counter, so
// adjacent shards' gauges do not false-share.
type shardGauge struct {
	n atomic.Int64
	_ [56]byte
}

// Server serves a ShardedStore over TCP. Create with New, start with
// Serve or ListenAndServe, stop with Shutdown. The server does not own
// the store: Shutdown drains requests and leaves the store open for the
// caller to inspect or Close.
type Server struct {
	store *nvmstore.ShardedStore
	opts  Options

	shardQ   []chan task
	inflight []shardGauge
	workerWG sync.WaitGroup

	// flight retains sampled span timelines (uniform sample + slowest)
	// for STATS, /trace, and the remote bench's p99 attribution.
	flight *obs.FlightRecorder

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	started  bool

	connWG  sync.WaitGroup
	connSem chan struct{}

	// wireHist[op] is the wall-clock latency histogram of request
	// opcode op, recorded from frame decode to response enqueue.
	wireHist [wire.OpStats + 1]obs.Histogram

	stats struct {
		conns     atomic.Int64 // currently open
		accepted  atomic.Int64 // total accepted
		ops       atomic.Int64 // requests answered
		connWaits atomic.Int64 // accepts that waited on MaxConns
	}
}

// StatsDoc is the JSON document a STATS request returns (and the shape
// cmd/nvmserver publishes on its debug endpoint).
type StatsDoc struct {
	// Shards is the store's shard count.
	Shards int `json:"shards"`
	// Conns is the number of currently open connections; Accepted the
	// total ever accepted; Ops the requests answered.
	Conns    int64 `json:"conns"`
	Accepted int64 `json:"accepted"`
	Ops      int64 `json:"ops"`
	// MaxSimNs is the slowest shard's simulated device time — the
	// simulated component of the hybrid time model, for combining with
	// wall time measured by a remote driver.
	MaxSimNs int64 `json:"max_sim_ns"`
	// Wire holds the server-side wall-clock latency rows per opcode
	// ("wire.get", ...); Engine the store's simulated-time histograms
	// when it was opened with Observe.
	Wire   []obs.Row `json:"wire"`
	Engine []obs.Row `json:"engine,omitempty"`
	// NVMTotalWrites and friends are the store's headline device
	// counters.
	NVMTotalWrites int64 `json:"nvm_total_writes"`
	SSDPagesRead   int64 `json:"ssd_pages_read"`
	SSDPagesWrite  int64 `json:"ssd_pages_written"`
	// LogCommits and LogFlushes are the store's WAL counters across all
	// shards; OpsPerFlush is their ratio — the average number of commits
	// each physical WAL flush made durable, group commit's amortization
	// factor.
	LogCommits  int64   `json:"log_commits"`
	LogFlushes  int64   `json:"log_flushes"`
	OpsPerFlush float64 `json:"ops_per_flush"`
	// CkptRounds and CkptPages count incremental-checkpoint write-back
	// rounds and the dirty pages they flushed; CkptPagesPerRound is
	// their ratio. CkptTruncatedBytes sums the WAL bytes reclaimed by
	// maintenance truncations, and CkptWriterThrottles counts writers
	// blocked at the hard log-fill threshold (backpressure events).
	CkptRounds          int64   `json:"ckpt_rounds"`
	CkptPages           int64   `json:"ckpt_pages"`
	CkptPagesPerRound   float64 `json:"ckpt_pages_per_round"`
	CkptTruncatedBytes  int64   `json:"ckpt_truncated_bytes"`
	CkptWriterThrottles int64   `json:"ckpt_writer_throttles"`
	// ReadSnapshotReads counts leaf images served to snapshot scans;
	// ReadOptimisticHits and ReadOptimisticRetries count lock-free
	// point-read cache hits and validation failures. ReadVersionsLive is
	// the current number of copy-on-write page images pinned by open
	// snapshots, ReadVersionsReclaimed the total freed so far,
	// ReadVersionChainMax the high-water length of any one page's version
	// chain, and ReadActiveSnapshots the open snapshots right now.
	ReadSnapshotReads     int64 `json:"read_snapshot_reads"`
	ReadOptimisticHits    int64 `json:"read_optimistic_hits"`
	ReadOptimisticRetries int64 `json:"read_optimistic_retries"`
	ReadVersionsLive      int64 `json:"read_versions_live"`
	ReadVersionsReclaimed int64 `json:"read_versions_reclaimed"`
	ReadVersionChainMax   int64 `json:"read_version_chain_max"`
	ReadActiveSnapshots   int64 `json:"read_active_snapshots"`
	// MaxConns is the connection cap and ConnWaits how many accepts had
	// to wait for a free slot — the MaxConns saturation counter.
	MaxConns  int   `json:"max_conns"`
	ConnWaits int64 `json:"conn_waits"`
	// ShardQueueDepth and ShardInflight are per-shard-worker gauges:
	// requests sitting in each shard's queue right now, and requests
	// routed to each shard whose responses are not yet enqueued.
	ShardQueueDepth []int   `json:"shard_queue_depth,omitempty"`
	ShardInflight   []int64 `json:"shard_inflight,omitempty"`
	// Trace is the flight recorder's snapshot — sampled span timelines,
	// the slowest requests, and the p99 stage attribution — present once
	// at least one traced request was served.
	Trace *obs.FlightSnapshot `json:"trace,omitempty"`
	// Repl is the primary-side replication summary (epoch, per-replica
	// acked LSNs and lag bytes, ship→ack lag quantiles), present when the
	// server was started with a replication source.
	Repl *repl.Stats `json:"repl,omitempty"`
	// Replica is the replica-side summary (per-shard applied LSNs,
	// epoch, connection state), present when the server feeds from a
	// primary.
	Replica *repl.ReplicaStats `json:"replica,omitempty"`
}

// New creates a server over store. The store must already hold the
// tables requests will address; unknown tables fail per request.
func New(store *nvmstore.ShardedStore, opts Options) *Server {
	opts.applyDefaults()
	return &Server{
		store:   store,
		opts:    opts,
		conns:   make(map[*conn]struct{}),
		connSem: make(chan struct{}, opts.MaxConns),
		flight:  obs.NewFlightRecorder(opts.TraceRing, opts.TraceSlow),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (which returns nil
// here) or a listener failure. A Server serves one listener in its
// lifetime.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.started = true
	s.ln = ln
	n := s.store.NumShards()
	s.shardQ = make([]chan task, n)
	s.inflight = make([]shardGauge, n)
	for i := range s.shardQ {
		s.shardQ[i] = make(chan task, s.opts.ShardQueue)
		s.workerWG.Add(1)
		go s.shardWorker(i)
	}
	s.mu.Unlock()

	for {
		select {
		case s.connSem <- struct{}{}:
		default:
			// Every connection slot is taken: this accept waits on
			// MaxConns. The counter is the saturation signal operators
			// watch to size the cap.
			s.stats.connWaits.Add(1)
			s.connSem <- struct{}{}
		}
		nc, err := ln.Accept()
		if err != nil {
			<-s.connSem
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			<-s.connSem
			continue
		}
		c := &conn{
			srv: s,
			nc:  nc,
			out: make(chan outFrame, s.opts.WriteQueue),
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.stats.conns.Add(1)
		s.stats.accepted.Add(1)
		s.connWG.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// Addr returns the listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: it stops accepting, half-
// closes every connection's read side so no new requests arrive, waits
// for every in-flight request to be executed and its response written,
// then stops the shard workers. Every response sent before Shutdown
// returns is durable per the autocommit/COMMIT contract. If ctx expires
// first, remaining connections are severed and Shutdown returns
// ctx.Err(). The store is left open; callers typically follow with
// store.Close().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.closeRead()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// draining is set, so no reader enqueues anymore (all readers have
	// exited — connWG) and no second Shutdown reaches this point: the
	// queues can be closed without clearing s.shardQ.
	s.mu.Lock()
	qs := s.shardQ
	s.mu.Unlock()
	for _, q := range qs {
		close(q)
	}
	s.workerWG.Wait()
	return err
}

// WireLatency returns the server-side wall-clock latency rows, one per
// request opcode that served at least one request.
func (s *Server) WireLatency() []obs.Row {
	var rows []obs.Row
	for op := wire.OpGet; op <= wire.OpStats; op++ {
		h := s.wireHist[op].Snapshot()
		n := h.Count()
		if n == 0 {
			continue
		}
		rows = append(rows, obs.Row{
			Op:    "wire." + wire.OpName(op),
			Count: n,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.Max,
			Mean:  h.Mean(),
		})
	}
	return rows
}

// Stats assembles the STATS document.
func (s *Server) Stats() StatsDoc {
	doc := StatsDoc{
		Shards:    s.store.NumShards(),
		Conns:     s.stats.conns.Load(),
		Accepted:  s.stats.accepted.Load(),
		Ops:       s.stats.ops.Load(),
		MaxSimNs:  s.store.MaxSimulatedTime().Nanoseconds(),
		Wire:      s.WireLatency(),
		MaxConns:  s.opts.MaxConns,
		ConnWaits: s.stats.connWaits.Load(),
	}
	s.mu.Lock()
	qs, inflight := s.shardQ, s.inflight
	s.mu.Unlock()
	if qs != nil {
		doc.ShardQueueDepth = make([]int, len(qs))
		doc.ShardInflight = make([]int64, len(qs))
		for i := range qs {
			doc.ShardQueueDepth[i] = len(qs[i])
			doc.ShardInflight[i] = inflight[i].n.Load()
		}
	}
	if s.flight.Sampled() > 0 {
		snap := s.flight.Snapshot()
		doc.Trace = &snap
	}
	m := s.store.Metrics()
	doc.NVMTotalWrites = m.NVMTotalWrites
	doc.SSDPagesRead = m.SSDPagesRead
	doc.SSDPagesWrite = m.SSDPagesWritten
	doc.LogCommits = m.Log.Commits
	doc.LogFlushes = m.Log.Flushes
	doc.OpsPerFlush = m.OpsPerFlush
	doc.CkptRounds = m.Ckpt.Rounds
	doc.CkptPages = m.Ckpt.Pages
	if m.Ckpt.Rounds > 0 {
		doc.CkptPagesPerRound = float64(m.Ckpt.Pages) / float64(m.Ckpt.Rounds)
	}
	doc.CkptTruncatedBytes = m.Ckpt.TruncatedBytes
	doc.CkptWriterThrottles = m.WriterThrottles
	doc.ReadSnapshotReads = m.Read.SnapshotReads
	doc.ReadOptimisticHits = m.Read.OptimisticHits
	doc.ReadOptimisticRetries = m.Read.OptimisticRetries
	doc.ReadVersionsLive = m.Read.VersionsLive
	doc.ReadVersionsReclaimed = m.Read.VersionsReclaimed
	doc.ReadVersionChainMax = m.Read.VersionChainMax
	doc.ReadActiveSnapshots = m.Read.ActiveSnapshots
	if m.Latency != nil {
		doc.Engine = m.Latency.Rows()
	}
	if src := s.opts.Repl; src != nil {
		rs := src.Stats()
		doc.Repl = &rs
	}
	if rp := s.opts.Replica; rp != nil {
		rs := rp.Stats()
		doc.Replica = &rs
	}
	return doc
}

// TraceSnapshot returns the flight recorder's current contents — the
// uniform sample of traced requests, the slowest retained ones, and the
// p99 attribution — for the /trace debug endpoint.
func (s *Server) TraceSnapshot() obs.FlightSnapshot { return s.flight.Snapshot() }

// WritePrometheus renders every server metric — wire and engine latency
// histograms, connection and per-shard gauges, device and WAL counters —
// into p in the Prometheus text exposition format. One call renders one
// complete scrape.
func (s *Server) WritePrometheus(p *obs.PromWriter) {
	doc := s.Stats()
	for op := wire.OpGet; op <= wire.OpStats; op++ {
		h := s.wireHist[op].Snapshot()
		if h.Count() == 0 {
			continue
		}
		p.Histogram("nvmstore_wire_latency_ns", "server-side wall-clock request latency by opcode",
			[]obs.Label{{Name: "op", Value: wire.OpName(op)}}, h)
	}
	m := s.store.Metrics()
	if m.Latency != nil {
		for op := obs.Op(0); op < obs.NumOps; op++ {
			h := m.Latency.Ops[op]
			if h.Count() == 0 {
				continue
			}
			p.Histogram("nvmstore_engine_op_ns", "engine simulated-time latency by instrumented operation",
				[]obs.Label{{Name: "op", Value: op.String()}}, h)
		}
	}
	p.Gauge("nvmstore_conns", "currently open connections", nil, float64(doc.Conns))
	p.Gauge("nvmstore_conns_max", "connection cap (Options.MaxConns)", nil, float64(doc.MaxConns))
	p.Counter("nvmstore_conn_waits_total", "accepts that waited for a free connection slot", nil, float64(doc.ConnWaits))
	p.Counter("nvmstore_accepted_total", "connections ever accepted", nil, float64(doc.Accepted))
	p.Counter("nvmstore_ops_total", "requests answered", nil, float64(doc.Ops))
	for i := range doc.ShardQueueDepth {
		shard := []obs.Label{{Name: "shard", Value: fmt.Sprint(i)}}
		p.Gauge("nvmstore_shard_queue_depth", "requests waiting in the shard worker queue", shard, float64(doc.ShardQueueDepth[i]))
	}
	for i := range doc.ShardInflight {
		shard := []obs.Label{{Name: "shard", Value: fmt.Sprint(i)}}
		p.Gauge("nvmstore_shard_inflight", "routed requests whose responses are not yet enqueued", shard, float64(doc.ShardInflight[i]))
	}
	p.Gauge("nvmstore_sim_ns_max", "slowest shard's simulated device time", nil, float64(doc.MaxSimNs))
	p.Counter("nvmstore_nvm_writes_total", "NVM words written (wear proxy)", nil, float64(doc.NVMTotalWrites))
	p.Counter("nvmstore_ssd_reads_total", "SSD pages read", nil, float64(doc.SSDPagesRead))
	p.Counter("nvmstore_ssd_writes_total", "SSD pages written", nil, float64(doc.SSDPagesWrite))
	p.Counter("nvmstore_log_commits_total", "WAL commits across shards", nil, float64(doc.LogCommits))
	p.Counter("nvmstore_log_flushes_total", "physical WAL flushes across shards", nil, float64(doc.LogFlushes))
	p.Counter("nvmstore_ckpt_rounds_total", "incremental-checkpoint write-back rounds across shards", nil, float64(doc.CkptRounds))
	p.Counter("nvmstore_ckpt_pages_total", "dirty pages written back by checkpoint rounds", nil, float64(doc.CkptPages))
	p.Counter("nvmstore_ckpt_truncated_bytes_total", "WAL bytes reclaimed by maintenance truncations", nil, float64(doc.CkptTruncatedBytes))
	p.Counter("nvmstore_ckpt_writer_throttles_total", "writers blocked at the hard log-fill threshold", nil, float64(doc.CkptWriterThrottles))
	p.Counter("nvmstore_read_snapshot_reads_total", "leaf images served to snapshot scans", nil, float64(doc.ReadSnapshotReads))
	p.Counter("nvmstore_read_optimistic_hits_total", "lock-free point-read cache hits", nil, float64(doc.ReadOptimisticHits))
	p.Counter("nvmstore_read_optimistic_retries_total", "optimistic point reads that fell back to the locked path", nil, float64(doc.ReadOptimisticRetries))
	p.Counter("nvmstore_read_versions_reclaimed_total", "copy-on-write page versions reclaimed", nil, float64(doc.ReadVersionsReclaimed))
	p.Gauge("nvmstore_read_versions_live", "copy-on-write page versions currently pinned by snapshots", nil, float64(doc.ReadVersionsLive))
	p.Gauge("nvmstore_read_version_chain_max", "high-water length of any one page's version chain", nil, float64(doc.ReadVersionChainMax))
	p.Gauge("nvmstore_read_active_snapshots", "currently open read snapshots", nil, float64(doc.ReadActiveSnapshots))
	p.Counter("nvmstore_trace_sampled_total", "traced requests recorded by the flight recorder", nil, float64(s.flight.Sampled()))
	if src := s.opts.Repl; src != nil {
		rs := src.Stats()
		p.Gauge("nvmstore_repl_epoch", "current replication epoch", nil, float64(rs.Epoch))
		p.Gauge("nvmstore_repl_fenced_by", "epoch that superseded this primary (0: active)", nil, float64(rs.FencedBy))
		p.Gauge("nvmstore_repl_replicas", "currently attached replica feeds", nil, float64(len(rs.Replicas)))
		p.Counter("nvmstore_repl_snapshot_chunks_total", "bootstrap snapshot chunks streamed", nil, float64(rs.SnapshotChunks))
		p.Counter("nvmstore_repl_dropped_feeds_total", "replica feeds dropped by flow control", nil, float64(rs.DroppedFeeds))
		if lag := src.LagHistogram(); lag.Count() > 0 {
			p.Histogram("nvmstore_repl_lag_ns", "ship→ack replication lag (wall ns)", nil, lag)
		}
		for _, f := range rs.Replicas {
			rep := fmt.Sprint(f.ID)
			p.Gauge("nvmstore_repl_lag_bytes", "bytes shipped to but not yet acknowledged by the replica",
				[]obs.Label{{Name: "replica", Value: rep}}, float64(f.LagBytes))
			for shard, lsn := range f.AckedLSN {
				p.Gauge("nvmstore_repl_acked_lsn", "replica's acknowledged durable LSN",
					[]obs.Label{{Name: "replica", Value: rep}, {Name: "shard", Value: fmt.Sprint(shard)}}, float64(lsn))
			}
		}
	}
	if rp := s.opts.Replica; rp != nil {
		rs := rp.Stats()
		if s.opts.Repl == nil {
			p.Gauge("nvmstore_repl_epoch", "current replication epoch", nil, float64(rs.Epoch))
		}
		connected := 0.0
		if rs.Connected {
			connected = 1
		}
		p.Gauge("nvmstore_repl_connected", "whether the replica's feed session is up", nil, connected)
		for shard, lsn := range rs.AppliedLSN {
			p.Gauge("nvmstore_repl_applied_lsn", "replica's durable applied LSN",
				[]obs.Label{{Name: "shard", Value: fmt.Sprint(shard)}}, float64(lsn))
		}
		p.Counter("nvmstore_repl_reconnects_total", "replica feed sessions ended and retried", nil, float64(rs.Reconnects))
		p.Counter("nvmstore_repl_apply_crashes_total", "simulated crashes recovered during apply", nil, float64(rs.ApplyCrashes))
		p.Counter("nvmstore_repl_batches_total", "replication batch items applied", nil, float64(rs.Batches))
	}
}

// record notes one answered request of opcode op that started at t0.
func (s *Server) record(op byte, t0 time.Time) {
	s.stats.ops.Add(1)
	if int(op) < len(s.wireHist) {
		s.wireHist[op].Record(time.Since(t0).Nanoseconds())
	}
}

// shardWorker executes tasks routed to shard i. It drains up to
// BatchMax queued tasks per shard-lock acquisition, so a loaded shard
// amortizes locking across requests from every connection — and, since
// writes commit without flushing, the whole batch shares one WAL flush
// at the end (group commit). Responses are enqueued only after that
// flush lands and the shard lock is released: an acknowledged write is
// durable, and a slow connection queue never extends the lock hold.
func (s *Server) shardWorker(i int) {
	defer s.workerWG.Done()
	q := s.shardQ[i]
	batch := make([]task, 0, s.opts.BatchMax)
	resps := make([]wire.Response, s.opts.BatchMax)
	for t, ok := <-q; ok; t, ok = <-q {
		if t.tl != nil {
			t.tl.Mark(obs.StageQueue, time.Now().UnixNano())
		}
		batch = append(batch[:0], t)
		for len(batch) < s.opts.BatchMax {
			select {
			case t, ok := <-q:
				if !ok {
					break
				}
				if t.tl != nil {
					t.tl.Mark(obs.StageQueue, time.Now().UnixNano())
				}
				batch = append(batch, t)
				continue
			default:
			}
			break
		}
		traced := false
		// Yield to backpressure before taking the shard lock: when the
		// shard's WAL is past the hard-fill threshold this blocks until
		// background maintenance truncates it, so the batch's appends
		// cannot fail with a full log.
		s.store.PaceWriter(i)
		err := s.store.WithShard(i, func(st *nvmstore.Store) error {
			for bi := range batch {
				if tl := batch[bi].tl; tl != nil {
					traced = true
					// Differencing the engine's cumulative counters
					// around this one execution attributes its tier
					// work; the shard lock makes the reads exact.
					before, simBefore := st.TierCounters()
					resps[bi] = execOnShard(st, batch[bi].req)
					after, simAfter := st.TierCounters()
					tl.Tiers = after.Sub(before)
					tl.SimNs += simAfter - simBefore
					tl.Shard = int32(i)
					tl.Mark(obs.StageExec, time.Now().UnixNano())
				} else {
					resps[bi] = execOnShard(st, batch[bi].req)
				}
			}
			// One flush covers every commit of the batch; the
			// fault.WALGroupCrash site sits between the executed batch
			// and this flush. Acks wait below until it has landed.
			_, err := st.FlushWAL()
			return err
		})
		if err != nil {
			// The tail flush itself cannot fail (it panics on injected
			// crashes); this is an error from inline write-back pacing
			// after the flush (background maintenance makes that a
			// no-op), so the acks below are durable regardless.
			// Surface it.
			s.logf("server: shard %d: flush: %v", i, err)
		}
		if src := s.opts.Repl; src != nil {
			// Semi-synchronous replication: with SyncReplicas set on the
			// source, hold the batch's acks until enough replicas
			// acknowledged the records this flush shipped. No-op (one
			// atomic-free options check) otherwise.
			src.WaitAcked(i)
		}
		var flushedAt int64
		if traced {
			flushedAt = time.Now().UnixNano()
		}
		for bi, t := range batch {
			if t.tl != nil {
				// Charges the batch-end flush wait plus any batch peers
				// executed after this request — the group-commit price
				// this request paid.
				t.tl.Mark(obs.StageFlush, flushedAt)
			}
			t.c.reply(resps[bi], t.tl)
			// reply copied the response into its frame; the pooled
			// buffers behind it (a GET's row, a PUT's routed value
			// copy) are dead now.
			if resps[bi].Code == wire.RespValue {
				wire.PutBuf(resps[bi].Value)
			}
			wire.PutBuf(t.req.Value)
			s.record(t.req.Op, t.start)
			s.inflight[i].n.Add(-1)
			t.c.pending.Done()
		}
	}
}

// execOnShard runs one keyed request against the shard that owns its
// key. The caller holds the shard lock.
func execOnShard(st *nvmstore.Store, req wire.Request) wire.Response {
	resp := wire.Response{ID: req.ID}
	tab := st.Table(req.Table)
	if tab == nil {
		resp.Code = wire.RespErr
		resp.Err = fmt.Sprintf("unknown table %d", req.Table)
		return resp
	}
	switch req.Op {
	case wire.OpGet:
		// Pooled row buffer; the shard worker recycles it after the
		// response is encoded (reply copies it into the frame).
		buf := wire.GetBufN(tab.RowSize())
		var found bool
		err := st.Update(func() error {
			var err error
			found, err = tab.Lookup(req.Key, buf)
			return err
		})
		switch {
		case err != nil:
			wire.PutBuf(buf)
			resp.Code, resp.Err = wire.RespErr, err.Error()
		case found:
			resp.Code, resp.Value = wire.RespValue, buf
		default:
			wire.PutBuf(buf)
			resp.Code = wire.RespNotFound
		}
	case wire.OpPut:
		if err := putOnShard(st, tab, req.Key, req.Value); err != nil {
			resp.Code, resp.Err = wire.RespErr, err.Error()
		} else {
			resp.Code = wire.RespOK
		}
	case wire.OpDelete:
		var found bool
		err := st.UpdateNoFlush(func() error {
			var err error
			found, err = tab.Delete(req.Key)
			return err
		})
		switch {
		case err != nil:
			resp.Code, resp.Err = wire.RespErr, err.Error()
		case found:
			resp.Code = wire.RespOK
		default:
			resp.Code = wire.RespNotFound
		}
	default:
		resp.Code, resp.Err = wire.RespErr, "opcode not routable"
	}
	return resp
}

// putOnShard upserts row under an open shard lock: overwrite when the
// key exists, insert (zero-padded to the row size) when it does not.
// The commit does not flush — the shard worker's batch-end FlushWAL
// makes it durable before the response is released.
func putOnShard(st *nvmstore.Store, tab *nvmstore.Table, key uint64, row []byte) error {
	size := tab.RowSize()
	if len(row) > size {
		return fmt.Errorf("put of %d bytes into %d-byte rows", len(row), size)
	}
	return st.UpdateNoFlush(func() error {
		found, err := tab.UpdateField(key, 0, row)
		if err != nil || found {
			return err
		}
		return insertPadded(tab, key, row, size)
	})
}

// insertPadded inserts row zero-padded to the table's row size through
// a pooled scratch buffer (Insert copies the payload into the page, so
// the scratch is recycled on return).
func insertPadded(tab *nvmstore.Table, key uint64, row []byte, size int) error {
	if len(row) == size {
		return tab.Insert(key, row)
	}
	full := wire.GetBufN(size)
	clear(full)
	copy(full, row)
	err := tab.Insert(key, full)
	wire.PutBuf(full)
	return err
}

// txWrite is one buffered write of a connection transaction.
type txWrite struct {
	table, key uint64
	val        []byte
	del        bool
}

// outFrame is one encoded response frame on its way to the connection
// writer, paired with the request's timeline when it is traced (the
// writer stamps the final stage after the socket write).
type outFrame struct {
	buf []byte
	tl  *obs.Timeline
}

// conn is one client connection.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan outFrame // encoded response frames

	// pending counts requests handed to shard workers whose responses
	// have not been enqueued yet; out closes only after it reaches zero
	// and the reader has exited.
	pending sync.WaitGroup

	readClosed sync.Once

	// feed is this connection's replication feed once it subscribed
	// (written by the reader goroutine, detached when the reader exits).
	feed *repl.Feed

	// Transaction state; owned by the reader goroutine.
	txActive bool
	txWrites []txWrite
}

// closeRead half-closes the connection so the reader drains: in-flight
// requests still get responses, new frames are refused.
func (c *conn) closeRead() {
	c.readClosed.Do(func() {
		if tc, ok := c.nc.(*net.TCPConn); ok {
			tc.CloseRead()
			return
		}
		c.nc.SetReadDeadline(time.Now())
	})
}

// reply encodes and enqueues a response, with the request's timeline
// when traced (nil otherwise). Blocking here is the server's
// backpressure (see the package comment); the write loop's per-write
// deadline guarantees the queue always drains, so reply never blocks
// longer than roughly one WriteTimeout.
func (c *conn) reply(resp wire.Response, tl *obs.Timeline) {
	c.out <- outFrame{buf: wire.AppendResponse(wire.GetBuf(), resp), tl: tl}
}

func (c *conn) readLoop() {
	defer c.srv.connWG.Done()
	buf := wire.GetBuf()
	var payload []byte
	var err error
	for {
		payload, buf, err = wire.ReadFrame(c.nc, buf)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.srv.logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
			}
			break
		}
		req, derr := wire.DecodeRequest(payload)
		if derr != nil {
			// A peer that cannot frame correctly gets disconnected:
			// once the stream is out of sync every later byte is
			// garbage.
			c.srv.logf("server: %s: %v", c.nc.RemoteAddr(), derr)
			break
		}
		c.dispatch(req)
	}
	// Half-close so a blocked peer write fails rather than waiting for
	// responses that will never come, then let in-flight responses
	// drain before the writer is told it is done.
	wire.PutBuf(buf) // every alias died with the loop
	if c.feed != nil {
		// Dropping the feed closes its item channel; the feeder drains
		// (it registered with pending) and the close below waits for it.
		c.srv.opts.Repl.Detach(c.feed)
	}
	c.closeRead()
	go func() {
		c.pending.Wait()
		close(c.out)
	}()
}

// dispatch routes one decoded request. Runs on the reader goroutine.
func (c *conn) dispatch(req wire.Request) {
	start := time.Now()
	// repl.MetaTable holds the replication position row and is excluded
	// from both the ship tap and snapshot bootstrap — user data stored
	// there would silently never replicate. Reserve it at the boundary so
	// the divergence is an error, not a surprise.
	switch req.Op {
	case wire.OpGet, wire.OpPut, wire.OpDelete, wire.OpScan:
		if req.Table == repl.MetaTable {
			c.reply(wire.Response{Code: wire.RespErr, ID: req.ID,
				Err: fmt.Sprintf("table %#x is reserved for replication metadata", repl.MetaTable)}, nil)
			c.srv.record(req.Op, start)
			return
		}
	}
	switch req.Op {
	case wire.OpGet:
		if c.txActive {
			if resp, hit := c.txRead(req); hit {
				c.reply(resp, nil)
				c.srv.record(req.Op, start)
				return
			}
		}
		c.route(req, start, nil)
	case wire.OpPut:
		if msg := c.writeBlocked(); msg != "" {
			c.reply(wire.Response{Code: wire.RespErr, ID: req.ID, Err: msg}, nil)
			c.srv.record(req.Op, start)
			return
		}
		if c.txActive {
			c.txWrites = append(c.txWrites, txWrite{req.Table, req.Key, append([]byte(nil), req.Value...), false})
			c.reply(wire.Response{Code: wire.RespOK, ID: req.ID}, nil)
			c.srv.record(req.Op, start)
			return
		}
		c.route(req, start, append(wire.GetBuf(), req.Value...))
	case wire.OpDelete:
		if msg := c.writeBlocked(); msg != "" {
			c.reply(wire.Response{Code: wire.RespErr, ID: req.ID, Err: msg}, nil)
			c.srv.record(req.Op, start)
			return
		}
		if c.txActive {
			c.txWrites = append(c.txWrites, txWrite{req.Table, req.Key, nil, true})
			c.reply(wire.Response{Code: wire.RespOK, ID: req.ID}, nil)
			c.srv.record(req.Op, start)
			return
		}
		c.route(req, start, nil)
	case wire.OpScan:
		resp, scratch := c.scan(req)
		c.reply(resp, nil)
		wire.PutBuf(scratch) // reply copied the entries into the frame
		c.srv.record(req.Op, start)
	case wire.OpBegin:
		resp := wire.Response{Code: wire.RespOK, ID: req.ID}
		if c.txActive {
			resp.Code, resp.Err = wire.RespErr, "transaction already active"
		} else {
			c.txActive = true
		}
		c.reply(resp, nil)
		c.srv.record(req.Op, start)
	case wire.OpCommit:
		if msg := c.writeBlocked(); msg != "" {
			c.txActive = false
			c.txWrites = c.txWrites[:0]
			c.reply(wire.Response{Code: wire.RespErr, ID: req.ID, Err: msg}, nil)
			c.srv.record(req.Op, start)
			return
		}
		c.reply(c.commit(req), nil)
		c.srv.record(req.Op, start)
	case wire.OpRollback:
		c.txActive = false
		c.txWrites = c.txWrites[:0]
		c.reply(wire.Response{Code: wire.RespOK, ID: req.ID}, nil)
		c.srv.record(req.Op, start)
	case wire.OpStats:
		resp := wire.Response{ID: req.ID}
		buf, err := json.Marshal(c.srv.Stats())
		if err != nil {
			resp.Code, resp.Err = wire.RespErr, err.Error()
		} else {
			resp.Code, resp.Value = wire.RespStats, buf
		}
		c.reply(resp, nil)
		c.srv.record(req.Op, start)
	case wire.OpReplSubscribe:
		c.replSubscribe(req, start)
	case wire.OpReplAck:
		c.replAck(req, start)
	case wire.OpReplPromote:
		c.replPromote(req, start)
	case wire.OpReplLSNs:
		c.replLSNs(req, start)
	case wire.OpReplWait:
		c.replWait(req, start)
	}
}

// route hands a keyed request to its shard worker. value, when non-nil,
// replaces req.Value with a copy the task owns (the read buffer is
// about to be reused). A traced request gets its span timeline here —
// the only per-request allocation tracing adds, and only on sampled
// requests; transaction-buffered requests answer inline and are not
// timelined.
func (c *conn) route(req wire.Request, start time.Time, value []byte) {
	if value != nil {
		req.Value = value
	} else {
		req.Value = nil
	}
	var tl *obs.Timeline
	if req.Traced() {
		tl = new(obs.Timeline)
		tl.Begin(req.TraceID, wire.OpName(req.Op), start.UnixNano())
		// The enqueue stage is the reader-side dispatch work; the send
		// below may also block on a full shard queue, which the queue
		// stage absorbs (backpressure is time spent waiting for the
		// shard either way).
		tl.Mark(obs.StageEnqueue, time.Now().UnixNano())
	}
	shard := c.srv.store.ShardFor(req.Key)
	c.pending.Add(1)
	c.srv.inflight[shard].n.Add(1)
	c.srv.shardQ[shard] <- task{c: c, req: req, start: start, tl: tl}
}

// txRead answers a GET from the connection's transaction buffer, most
// recent write wins. A miss falls through to the routed path.
func (c *conn) txRead(req wire.Request) (wire.Response, bool) {
	for i := len(c.txWrites) - 1; i >= 0; i-- {
		w := c.txWrites[i]
		if w.table != req.Table || w.key != req.Key {
			continue
		}
		if w.del {
			return wire.Response{Code: wire.RespNotFound, ID: req.ID}, true
		}
		return wire.Response{Code: wire.RespValue, ID: req.ID, Value: w.val}, true
	}
	return wire.Response{}, false
}

// commit applies the buffered transaction, one atomic sub-transaction
// per shard (shared-nothing semantics).
func (c *conn) commit(req wire.Request) wire.Response {
	resp := wire.Response{Code: wire.RespOK, ID: req.ID}
	if !c.txActive {
		resp.Code, resp.Err = wire.RespErr, "no transaction"
		return resp
	}
	writes := c.txWrites
	c.txActive = false
	c.txWrites = nil
	byShard := make(map[int][]txWrite)
	for _, w := range writes {
		i := c.srv.store.ShardFor(w.key)
		byShard[i] = append(byShard[i], w)
	}
	for i, group := range byShard {
		c.srv.store.PaceWriter(i)
		err := c.srv.store.WithShard(i, func(st *nvmstore.Store) error {
			return st.Update(func() error {
				for _, w := range group {
					tab := st.Table(w.table)
					if tab == nil {
						return fmt.Errorf("unknown table %d", w.table)
					}
					if w.del {
						if _, err := tab.Delete(w.key); err != nil {
							return err
						}
						continue
					}
					if err := putInTx(tab, w.key, w.val); err != nil {
						return err
					}
				}
				return nil
			})
		})
		if err != nil {
			resp.Code = wire.RespErr
			resp.Err = fmt.Sprintf("commit on shard %d: %v (per-shard atomicity: other shards may have committed)", i, err)
			return resp
		}
	}
	return resp
}

// putInTx upserts inside an already-open transaction.
func putInTx(tab *nvmstore.Table, key uint64, row []byte) error {
	size := tab.RowSize()
	if len(row) > size {
		return fmt.Errorf("put of %d bytes into %d-byte rows", len(row), size)
	}
	found, err := tab.UpdateField(key, 0, row)
	if err != nil || found {
		return err
	}
	return insertPadded(tab, key, row, size)
}

// scan merges rows from every shard up to the clamped limit, reading
// through a store snapshot (ShardedTable.ScanSnapshot): the result is a
// stable commit-LSN prefix per shard, and shard workers keep committing
// while the scan decodes page images outside the shard locks. If the
// snapshot is invalidated by a concurrent restart the scan falls back
// to the locked path. The returned scratch backs the entries' values;
// the caller recycles it after encoding the response.
func (c *conn) scan(req wire.Request) (_ wire.Response, scratch []byte) {
	resp := wire.Response{ID: req.ID}
	tab := c.srv.store.Table(req.Table)
	if tab == nil {
		resp.Code, resp.Err = wire.RespErr, fmt.Sprintf("unknown table %d", req.Table)
		return resp, nil
	}
	limit := int(req.Limit)
	if limit <= 0 || limit > c.srv.opts.MaxScan {
		limit = c.srv.opts.MaxScan
	}
	// MaxScan caps rows; the frame bound caps bytes. Each entry encodes
	// as key(8) + len(4) + row, so clamp the row count to what fits in
	// one wire.MaxFrame whatever the table's row size.
	if byBytes := (wire.MaxFrame - 64) / (12 + tab.RowSize()); limit > byBytes {
		limit = byBytes
		if limit < 1 {
			limit = 1 // a single >8MiB row cannot be framed anyway
		}
	}
	// One pooled scratch holds every entry's row copy: its capacity
	// covers the worst case up front, so the appends below never
	// reallocate and the entry slices stay valid. dispatch recycles it
	// once the response frame is encoded.
	vals := wire.GetBufN(limit * tab.RowSize())[:0]
	var entries []wire.Entry
	collect := func(key uint64, field []byte) bool {
		off := len(vals)
		vals = append(vals, field...)
		entries = append(entries, wire.Entry{Key: key, Value: vals[off:len(vals):len(vals)]})
		return true
	}
	var err error
	if sn, snErr := c.srv.store.Snapshot(); snErr == nil {
		err = tab.ScanSnapshot(sn, req.Key, limit, 0, tab.RowSize(), collect)
		sn.Close()
		if errors.Is(err, nvmstore.ErrSnapshotInvalid) {
			// A shard restarted mid-scan; retake under the shard locks.
			vals, entries = vals[:0], entries[:0]
			err = tab.Scan(req.Key, limit, 0, tab.RowSize(), collect)
		}
	} else {
		err = tab.Scan(req.Key, limit, 0, tab.RowSize(), collect)
	}
	if err != nil {
		wire.PutBuf(vals)
		resp.Code, resp.Err = wire.RespErr, err.Error()
		return resp, nil
	}
	resp.Code, resp.Entries = wire.RespScan, entries
	return resp, vals
}

func (c *conn) writeLoop() {
	defer c.srv.connWG.Done()
	var err error
	for f := range c.out {
		err = c.writeFrame(f.buf, err)
		// The frame is on the wire (or discarded): recycle it. Written
		// and dropped frames alike, so the pool sees every buffer back.
		wire.PutBuf(f.buf)
		if f.tl != nil {
			// The timeline is complete once the response bytes hit the
			// socket (or were discarded on a dead peer); after Record
			// it is published and must not be touched again.
			f.tl.Finish(time.Now().UnixNano())
			c.srv.flight.Record(f.tl)
		}
	}
	c.nc.Close()
	s := c.srv
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.stats.conns.Add(-1)
	<-s.connSem
}

// writeFrame sends one encoded response frame, threading the sticky
// write error: once the peer is gone every later frame is discarded so
// the queue keeps draining.
func (c *conn) writeFrame(buf []byte, err error) error {
	if err != nil {
		return err // peer gone: discard
	}
	if in := c.srv.opts.Faults; in != nil {
		if in.Check(fault.NetDrop).Fire {
			c.nc.Close()
			return errors.New("injected connection drop")
		}
		if in.Check(fault.NetPartial).Fire {
			// Half a frame, then sever: the client sees a short read
			// on a frame it can neither finish nor trust.
			c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.WriteTimeout))
			c.nc.Write(buf[:len(buf)/2])
			c.nc.Close()
			return errors.New("injected partial frame")
		}
	}
	// The deadline is what makes a stalled peer (TCP zero window)
	// a bounded problem: Write fails at the latest after
	// WriteTimeout, the connection is severed, and every later
	// response is discarded — shard workers blocked on this
	// connection's full queue unblock.
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.WriteTimeout))
	if _, werr := c.nc.Write(buf); werr != nil {
		// Sever the connection so the reader unblocks; its
		// remaining in-flight responses will be discarded above.
		c.nc.Close()
		if !errors.Is(werr, net.ErrClosed) {
			c.srv.logf("server: %s: write: %v", c.nc.RemoteAddr(), werr)
		}
		return werr
	}
	return nil
}
