package server

// Replication request handling: the server side of internal/repl's wire
// exchange. A primary (Options.Repl set) serves SUBSCRIBE by turning
// the connection into a push feed, consumes ACKs, and answers LSNS from
// its durable WAL positions. A replica (Options.Replica set) rejects
// writes with a "READONLY:"-classified error, serves WAIT as the
// staleness-bounded read barrier, and handles PROMOTE. A fenced primary
// (PROMOTE for a newer epoch arrived) rejects writes and WAIT with a
// "FENCED:" prefix and answers LSNS as RoleFenced, so both write and
// read clients fail over.

import (
	"fmt"
	"time"

	"nvmstore"
	"nvmstore/internal/repl"
	"nvmstore/internal/wire"
)

// Classified error prefixes for rejected writes. Clients match them
// with client.IsFenced / client.IsReadOnly.
const (
	// FencedPrefix starts every write rejection from a superseded
	// primary.
	FencedPrefix = "FENCED: "
	// ReadOnlyPrefix starts every write rejection from an unpromoted
	// replica.
	ReadOnlyPrefix = "READONLY: "
)

// writeBlocked reports why this server rejects writes right now — a
// classified error message — or "" when writes are allowed.
func (c *conn) writeBlocked() string {
	s := c.srv
	if src := s.opts.Repl; src != nil {
		if e := src.FencedBy(); e != 0 {
			return fmt.Sprintf("%sprimary superseded by epoch %d", FencedPrefix, e)
		}
	}
	if rp := s.opts.Replica; rp != nil && !rp.Promoted() {
		return ReadOnlyPrefix + "read replica; writes go to the primary"
	}
	return ""
}

// replSubscribe turns the connection into a replication feed: the
// subscribe frame is answered inline, then a feeder goroutine streams
// every item the source enqueues — snapshot chunks first where needed,
// then live batches — until the feed is dropped or the connection dies.
func (c *conn) replSubscribe(req wire.Request, start time.Time) {
	defer c.srv.record(req.Op, start)
	src := c.srv.opts.Repl
	resp := wire.Response{ID: req.ID, Code: wire.RespErr}
	switch {
	case src == nil:
		resp.Err = "not a replication primary"
	case c.srv.opts.Replica != nil && !c.srv.opts.Replica.Promoted():
		resp.Err = "unpromoted replica cannot feed replicas"
	case c.feed != nil:
		resp.Err = "connection already subscribed"
	}
	if resp.Err != "" {
		c.reply(resp, nil)
		return
	}
	sub, err := wire.DecodeReplSubscribe(req.Value)
	if err != nil {
		resp.Err = err.Error()
		c.reply(resp, nil)
		return
	}
	f := src.NewFeed(c.nc.RemoteAddr().String())
	c.feed = f
	c.reply(wire.Response{ID: req.ID, Code: wire.RespOK}, nil)
	// The feeder sends on c.out, so it must be registered with pending
	// before the reader exits — we are on the reader goroutine, so this
	// Add happens-before the post-loop pending.Wait.
	c.pending.Add(1)
	go c.feeder(f)
	// Attach streams the bootstrap into the feed's bounded queue, so it
	// must run concurrently with the feeder draining it.
	go func() {
		if err := src.Attach(f, sub); err != nil {
			c.srv.logf("server: repl feed %d (%s): %v", f.ID(), c.nc.RemoteAddr(), err)
			src.Detach(f)
		}
	}()
}

// feeder streams one feed's items as pushed response frames, splitting
// oversized batches and snapshot chunks so every frame stays far under
// wire.MaxFrame (a split never breaks replica semantics: transactions
// are buffered across frames and snapshot Final survives on the last
// piece). When the feed is dropped — detach, queue overflow, fencing,
// attach failure — it severs the connection so the replica reconnects
// instead of waiting on a dead feed.
func (c *conn) feeder(f *repl.Feed) {
	defer c.pending.Done()
	src := c.srv.opts.Repl
	max := src.MaxBatchBytes()
	for it := range f.Items() {
		switch {
		case it.Batch != nil:
			b := it.Batch
			epoch := src.Epoch()
			recs := b.Recs
			for len(recs) > 0 {
				n, bytes := 0, 0
				for n < len(recs) && (n == 0 || bytes < max) {
					bytes += 37 + len(recs[n].Before) + len(recs[n].After)
					n++
				}
				body := wire.AppendReplBatch(nil, wire.ReplBatch{Shard: uint32(b.Shard), Epoch: epoch, Recs: recs[:n]})
				c.reply(wire.Response{Code: wire.RespReplBatch, Value: body}, nil)
				recs = recs[n:]
			}
		case it.Snap != nil:
			sn := it.Snap
			rows := sn.Rows
			for {
				n, bytes := 0, 0
				for n < len(rows) && (n == 0 || bytes < max) {
					bytes += 20 + len(rows[n].Value)
					n++
				}
				last := n == len(rows)
				body := wire.AppendReplSnap(nil, wire.ReplSnap{
					Shard: sn.Shard, Epoch: sn.Epoch, Final: sn.Final && last,
					SnapLSN: sn.SnapLSN, Rows: rows[:n],
				})
				c.reply(wire.Response{Code: wire.RespReplSnap, Value: body}, nil)
				rows = rows[n:]
				if last {
					break
				}
			}
		}
	}
	c.nc.Close()
}

// replAck records a replica's durable progress. Acks are fire-and-
// forget — no response, keeping the feed connection's server→replica
// direction purely pushed frames.
func (c *conn) replAck(req wire.Request, start time.Time) {
	defer c.srv.record(req.Op, start)
	src := c.srv.opts.Repl
	if src == nil || c.feed == nil {
		return
	}
	ack, err := wire.DecodeReplAck(req.Value)
	if err != nil {
		c.srv.logf("server: %s: bad repl ack: %v", c.nc.RemoteAddr(), err)
		return
	}
	src.Ack(c.feed, ack)
}

// replPromote handles an explicit failover step. Sent to a replica it
// promotes it (response: the applied LSN vector it now serves from, the
// acked prefix); sent to the old primary it fences it, so every later
// write is rejected with FencedPrefix.
func (c *conn) replPromote(req wire.Request, start time.Time) {
	defer c.srv.record(req.Op, start)
	resp := wire.Response{ID: req.ID}
	pr, err := wire.DecodeReplPromote(req.Value)
	if err != nil {
		resp.Code, resp.Err = wire.RespErr, err.Error()
		c.reply(resp, nil)
		return
	}
	s := c.srv
	switch {
	case s.opts.Replica != nil && !s.opts.Replica.Promoted():
		applied, err := s.opts.Replica.Promote(pr.Epoch)
		if err != nil {
			resp.Code, resp.Err = wire.RespErr, err.Error()
			break
		}
		if src := s.opts.Repl; src != nil {
			// This node now feeds its own replicas at the new epoch.
			src.SetEpoch(pr.Epoch)
		}
		resp.Code = wire.RespReplLSNs
		resp.Value = wire.AppendReplLSNs(nil, wire.ReplLSNs{Epoch: pr.Epoch, Role: wire.RolePrimary, LSNs: applied})
	case s.opts.Repl != nil:
		if !s.opts.Repl.Fence(pr.Epoch) {
			resp.Code = wire.RespErr
			resp.Err = fmt.Sprintf("promote epoch %d does not exceed current epoch %d", pr.Epoch, s.opts.Repl.Epoch())
			break
		}
		resp.Code = wire.RespOK
	default:
		resp.Code, resp.Err = wire.RespErr, "no replication state on this server"
	}
	c.reply(resp, nil)
}

// durableLSNs collects the per-shard durable WAL positions this server
// would answer LSNS with as a primary.
func (c *conn) durableLSNs() []uint64 {
	n := c.srv.store.NumShards()
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		c.srv.store.WithShard(i, func(st *nvmstore.Store) error { //nolint:errcheck // fn never fails
			lsns[i] = st.DurableLSN()
			return nil
		})
	}
	return lsns
}

// replLSNs reports this server's position vector: a primary answers its
// per-shard durable LSNs (what a client's acked writes are covered by),
// a replica its applied vector. Clients chain the two for read-your-
// writes: LSNS on the primary, WAIT on the replica. A fenced ex-primary
// answers RoleFenced with the epoch that superseded it, so read clients
// stop treating its vector as an authority and fail over.
func (c *conn) replLSNs(req wire.Request, start time.Time) {
	defer c.srv.record(req.Op, start)
	s := c.srv
	var doc wire.ReplLSNs
	switch {
	case s.opts.Repl != nil && s.opts.Repl.FencedBy() != 0:
		doc = wire.ReplLSNs{Epoch: s.opts.Repl.FencedBy(), Role: wire.RoleFenced, LSNs: c.durableLSNs()}
	case s.opts.Replica != nil && !s.opts.Replica.Promoted():
		rp := s.opts.Replica
		doc = wire.ReplLSNs{Epoch: rp.Epoch(), Role: wire.RoleReplica, LSNs: rp.Applied()}
	default:
		doc = wire.ReplLSNs{Epoch: 1, Role: wire.RolePrimary, LSNs: c.durableLSNs()}
		if src := s.opts.Repl; src != nil {
			doc.Epoch = src.Epoch()
		} else if rp := s.opts.Replica; rp != nil {
			doc.Epoch = rp.Epoch()
		}
	}
	c.reply(wire.Response{ID: req.ID, Code: wire.RespReplLSNs, Value: wire.AppendReplLSNs(nil, doc)}, nil)
}

// replWait blocks until the replica's applied vector covers the
// client's — the staleness-bounded read barrier. It parks on a
// goroutine (registered with pending) so the reader keeps serving the
// connection's other pipelined requests. A live primary answers
// immediately: its own durable state trivially covers the vector it
// handed out. A fenced ex-primary must NOT — its lineage is dead, so
// "covered" would bless unboundedly stale reads; it answers with a
// FENCED-classified error so read clients fail over.
func (c *conn) replWait(req wire.Request, start time.Time) {
	rp := c.srv.opts.Replica
	w, err := wire.DecodeReplWait(req.Value)
	if err != nil {
		c.reply(wire.Response{ID: req.ID, Code: wire.RespErr, Err: err.Error()}, nil)
		c.srv.record(req.Op, start)
		return
	}
	if src := c.srv.opts.Repl; src != nil {
		if e := src.FencedBy(); e != 0 {
			msg := fmt.Sprintf("%sprimary superseded by epoch %d; re-resolve and wait elsewhere", FencedPrefix, e)
			c.reply(wire.Response{ID: req.ID, Code: wire.RespErr, Err: msg}, nil)
			c.srv.record(req.Op, start)
			return
		}
	}
	if rp == nil || rp.Promoted() {
		c.reply(wire.Response{ID: req.ID, Code: wire.RespOK}, nil)
		c.srv.record(req.Op, start)
		return
	}
	timeout := time.Duration(w.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c.pending.Add(1)
	go func() {
		defer c.pending.Done()
		resp := wire.Response{ID: req.ID, Code: wire.RespOK}
		if err := rp.WaitLSN(w.LSNs, timeout); err != nil {
			resp.Code, resp.Err = wire.RespErr, err.Error()
		}
		c.reply(resp, nil)
		c.srv.record(req.Op, start)
	}()
}
