package server_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"nvmstore/internal/client"
	"nvmstore/internal/obs"
	"nvmstore/internal/server"
	"nvmstore/internal/wire"
)

// statsDoc fetches and decodes the server's STATS document.
func statsDoc(t *testing.T, cl *client.Client) server.StatsDoc {
	t.Helper()
	raw, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc server.StatsDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestTracingEndToEnd drives traced pipelined traffic through the full
// path — client stamp, wire v2, shard queue, batched execution, group
// commit, writer — and checks the flight recorder's timelines are
// internally consistent.
func TestTracingEndToEnd(t *testing.T) {
	srv, _, addr := startServer(t, 2, server.Options{})
	cl, err := client.Dial(addr, client.Options{Conns: 2, Depth: 32, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const ops = 256
	var calls []*client.Call
	for i := uint64(0); i < ops; i++ {
		if i%2 == 0 {
			calls = append(calls, cl.PutAsync(testTable, i, rowFor(i)))
		} else {
			calls = append(calls, cl.GetAsync(testTable, i-1))
		}
	}
	for _, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.TraceStamped(); got != ops {
		t.Fatalf("TraceStamped = %d, want %d", got, ops)
	}

	snap := srv.TraceSnapshot()
	if snap.Sampled != ops {
		t.Fatalf("flight recorder sampled %d, want %d", snap.Sampled, ops)
	}
	if len(snap.Sample) == 0 || len(snap.Slowest) == 0 {
		t.Fatal("empty flight recorder snapshot")
	}
	for _, tl := range snap.Sample {
		if tl.TraceID == 0 {
			t.Fatal("timeline with zero trace id")
		}
		if tl.Op != "get" && tl.Op != "put" {
			t.Fatalf("unexpected op %q", tl.Op)
		}
		if tl.Shard < 0 || tl.Shard >= 2 {
			t.Fatalf("timeline shard %d out of range", tl.Shard)
		}
		var sum int64
		for _, ns := range tl.Stages {
			if ns < 0 {
				t.Fatalf("negative stage in %+v", tl)
			}
			sum += ns
		}
		if sum != tl.TotalNs {
			t.Fatalf("stage sum %d != total %d (%+v)", sum, tl.TotalNs, tl)
		}
		if tl.Tiers.DRAMHits < 0 || tl.Tiers.NVMLineLoads < 0 || tl.Tiers.SSDReads < 0 {
			t.Fatalf("negative tier delta: %+v", tl.Tiers)
		}
	}
	if snap.P99.Count != len(snap.Sample) || snap.P99.SumNs() != snap.P99.TotalNs {
		t.Fatalf("attribution inconsistent: %+v", snap.P99)
	}

	// The same snapshot must surface through STATS.
	doc := statsDoc(t, cl)
	if doc.Trace == nil || doc.Trace.Sampled != ops {
		t.Fatalf("STATS trace section missing or wrong: %+v", doc.Trace)
	}
	if len(doc.ShardQueueDepth) != 2 || len(doc.ShardInflight) != 2 {
		t.Fatalf("per-shard gauges missing: %+v", doc)
	}
	if doc.MaxConns == 0 {
		t.Fatal("MaxConns not reported")
	}
}

// TestTracingSampling checks every-Nth selection: with TraceSample 4,
// about a quarter of keyed requests are stamped.
func TestTracingSampling(t *testing.T) {
	srv, _, addr := startServer(t, 1, server.Options{})
	cl, err := client.Dial(addr, client.Options{TraceSample: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const ops = 100
	for i := uint64(0); i < ops; i++ {
		if err := cl.Put(testTable, i, rowFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.TraceStamped(); got != ops/4 {
		t.Fatalf("TraceStamped = %d, want %d", got, ops/4)
	}
	if snap := srv.TraceSnapshot(); snap.Sampled != ops/4 {
		t.Fatalf("server sampled %d, want %d", snap.Sampled, ops/4)
	}
	// STATS itself must not be stamped (not a keyed op).
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
	if got := cl.TraceStamped(); got != ops/4 {
		t.Fatalf("non-keyed op was stamped: %d", got)
	}
}

// TestTracingConcurrent hammers the traced path from many pipelined
// clients at once — the -race CI job runs this to pin down the
// timeline handoff ordering (reader → worker → writer → recorder).
func TestTracingConcurrent(t *testing.T) {
	srv, _, addr := startServer(t, 4, server.Options{BatchMax: 8})
	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Conns: 2, Depth: 16, TraceSample: 2})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			var calls []*client.Call
			for i := uint64(0); i < 200; i++ {
				key := uint64(c)*1000 + i
				calls = append(calls, cl.PutAsync(testTable, key, rowFor(key)))
				calls = append(calls, cl.GetAsync(testTable, key))
				if len(calls) >= 16 {
					if _, err := calls[0].Result(); err != nil {
						t.Error(err)
						return
					}
					calls = calls[1:]
				}
			}
			for _, call := range calls {
				if _, err := call.Result(); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	// Snapshot concurrently with the load: readers must be safe.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			snap := srv.TraceSnapshot()
			for _, tl := range snap.Sample {
				var sum int64
				for _, ns := range tl.Stages {
					sum += ns
				}
				if tl.TotalNs != 0 && sum != tl.TotalNs {
					t.Errorf("torn timeline in snapshot: %+v", tl)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if snap := srv.TraceSnapshot(); snap.Sampled == 0 {
		t.Fatal("nothing sampled")
	}
}

// TestPrometheusExport renders the server's metrics and lints them as
// Prometheus text format — the acceptance check behind curl /metrics.
func TestPrometheusExport(t *testing.T) {
	srv, _, addr := startServer(t, 2, server.Options{})
	cl, err := client.Dial(addr, client.Options{TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(0); i < 64; i++ {
		if err := cl.Put(testTable, i, rowFor(i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get(testTable, i); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	p := obs.NewPromWriter(&b)
	srv.WritePrometheus(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := obs.LintPromText([]byte(out)); err != nil {
		t.Fatalf("prometheus lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		`nvmstore_wire_latency_ns_bucket{op="get",le="+Inf"}`,
		`nvmstore_wire_latency_ns_count{op="put"}`,
		`nvmstore_shard_queue_depth{shard="0"}`,
		`nvmstore_shard_inflight{shard="1"}`,
		"nvmstore_conns ",
		"nvmstore_conn_waits_total ",
		"nvmstore_ops_total ",
		"nvmstore_log_flushes_total ",
		"nvmstore_trace_sampled_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestConnWaitsSaturation pins the MaxConns saturation counter: with a
// single connection slot occupied, the acceptor finds the cap exhausted
// and counts it.
func TestConnWaitsSaturation(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Options{MaxConns: 1})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// The acceptor, having handed the only slot to cl's connection,
	// now waits for a free slot before the next accept and counts the
	// saturation. Poll STATS until it shows.
	for i := 0; i < 200; i++ {
		doc := statsDoc(t, cl)
		if doc.MaxConns != 1 {
			t.Fatalf("MaxConns = %d, want 1", doc.MaxConns)
		}
		if doc.ConnWaits >= 1 {
			return
		}
	}
	t.Fatal("ConnWaits never incremented under MaxConns saturation")
}

// TestUntracedRequestsRecordNothing: with TraceSample off, the flight
// recorder stays empty and STATS carries no trace section.
func TestUntracedRequestsRecordNothing(t *testing.T) {
	srv, _, addr := startServer(t, 1, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(0); i < 32; i++ {
		if err := cl.Put(testTable, i, rowFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if snap := srv.TraceSnapshot(); snap.Sampled != 0 {
		t.Fatalf("untraced run sampled %d", snap.Sampled)
	}
	if doc := statsDoc(t, cl); doc.Trace != nil {
		t.Fatalf("untraced run has trace section: %+v", doc.Trace)
	}
	// And the wire stayed on version 1 end to end (the client would
	// have stamped Flags otherwise).
	if cl.TraceStamped() != 0 {
		t.Fatal("client stamped without TraceSample")
	}
	_ = wire.FlagTraced // keep the import honest about what's off
}
