package server_test

import (
	"context"
	"testing"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/server"
)

// startBenchServer is the benchmark twin of startServer: same loopback
// setup, but against testing.B so the allocation benchmarks below can
// use it.
func startBenchServer(b *testing.B, shards int) string {
	b.Helper()
	store, err := nvmstore.OpenSharded(shards, nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := store.CreateTable(testTable, testRowSize); err != nil {
		b.Fatal(err)
	}
	srv := server.New(store, server.Options{})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; ; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		if i > 500 {
			b.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			b.Errorf("serve: %v", err)
		}
	})
	return addr
}

// BenchmarkServeGet measures allocations per pipelined GET round trip —
// client framing, server read/execute/reply, client decode included.
// The serving path draws its frame and row buffers from wire's pool, so
// the steady state should allocate only what must outlive a frame (the
// decoded response's value copy and call bookkeeping).
func BenchmarkServeGet(b *testing.B) {
	addr := startBenchServer(b, 2)
	cl, err := client.Dial(addr, client.Options{Conns: 1, Depth: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	const keys = 512
	for k := uint64(0); k < keys; k++ {
		if err := cl.Put(testTable, k, rowFor(k)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var inflight []*client.Call
	for i := 0; i < b.N; i++ {
		inflight = append(inflight, cl.GetAsync(testTable, uint64(i)%keys))
		if len(inflight) >= 64 {
			if _, err := inflight[0].Result(); err != nil {
				b.Fatal(err)
			}
			inflight = inflight[1:]
		}
	}
	for _, call := range inflight {
		if _, err := call.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePut is BenchmarkServeGet for the write path: routed
// value copy, group-committed execute, and the OK response.
func BenchmarkServePut(b *testing.B) {
	addr := startBenchServer(b, 2)
	cl, err := client.Dial(addr, client.Options{Conns: 1, Depth: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	row := rowFor(7)
	b.ReportAllocs()
	b.ResetTimer()
	var inflight []*client.Call
	for i := 0; i < b.N; i++ {
		inflight = append(inflight, cl.PutAsync(testTable, uint64(i)%512, row))
		if len(inflight) >= 64 {
			if _, err := inflight[0].Result(); err != nil {
				b.Fatal(err)
			}
			inflight = inflight[1:]
		}
	}
	for _, call := range inflight {
		if _, err := call.Result(); err != nil {
			b.Fatal(err)
		}
	}
}
