package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/server"
	"nvmstore/internal/wire"
)

const (
	testTable   = 1
	testRowSize = 64
)

// startServer opens a small sharded three-tier store with one table and
// serves it on a loopback listener. Cleanup drains the server; the
// returned store outlives it for post-shutdown inspection.
func startServer(t *testing.T, shards int, sopts server.Options) (*server.Server, *nvmstore.ShardedStore, string) {
	return startServerRowSize(t, shards, testRowSize, sopts)
}

// startServerRowSize is startServer with a caller-chosen row size, for
// the large-row framing tests.
func startServerRowSize(t *testing.T, shards, rowSize int, sopts server.Options) (*server.Server, *nvmstore.ShardedStore, string) {
	t.Helper()
	store, err := nvmstore.OpenSharded(shards, nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable(testTable, rowSize); err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, sopts)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; ; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		if i > 500 {
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, store, addr
}

// rowFor builds a deterministic row payload for key.
func rowFor(key uint64) []byte {
	row := make([]byte, testRowSize)
	binary.BigEndian.PutUint64(row, key)
	for i := 8; i < len(row); i++ {
		row[i] = byte(key) + byte(i)
	}
	return row
}

func TestBasicOps(t *testing.T) {
	_, _, addr := startServer(t, 4, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, found, err := cl.Get(testTable, 1); err != nil || found {
		t.Fatalf("get on empty table: found=%v err=%v", found, err)
	}
	for key := uint64(1); key <= 32; key++ {
		if err := cl.Put(testTable, key, rowFor(key)); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	for key := uint64(1); key <= 32; key++ {
		val, found, err := cl.Get(testTable, key)
		if err != nil || !found {
			t.Fatalf("get %d: found=%v err=%v", key, found, err)
		}
		if !bytes.Equal(val, rowFor(key)) {
			t.Fatalf("get %d: wrong row", key)
		}
	}
	// Overwrite must replace, not error.
	if err := cl.Put(testTable, 5, rowFor(500)); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if val, _, _ := cl.Get(testTable, 5); !bytes.Equal(val, rowFor(500)) {
		t.Fatal("overwrite not visible")
	}
	// Short put zero-pads.
	if err := cl.Put(testTable, 6, []byte("short")); err != nil {
		t.Fatalf("short put: %v", err)
	}
	val, _, _ := cl.Get(testTable, 6)
	if len(val) != testRowSize || !bytes.Equal(val[:5], []byte("short")) || val[5] != 0 {
		t.Fatal("short put not zero-padded")
	}
	// Oversized put fails remotely without killing the connection.
	if err := cl.Put(testTable, 7, make([]byte, testRowSize+1)); err == nil {
		t.Fatal("oversized put accepted")
	} else if _, ok := err.(*client.RemoteError); !ok {
		t.Fatalf("oversized put: got %T, want *client.RemoteError", err)
	}
	if _, _, err := cl.Get(testTable, 1); err != nil {
		t.Fatalf("connection unusable after remote error: %v", err)
	}

	if found, err := cl.Delete(testTable, 9); err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if _, found, _ := cl.Get(testTable, 9); found {
		t.Fatal("deleted key still visible")
	}
	if found, err := cl.Delete(testTable, 9); err != nil || found {
		t.Fatalf("re-delete: found=%v err=%v", found, err)
	}

	// Scan is globally ordered and respects the limit.
	entries, err := cl.Scan(testTable, 10, 5)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(entries) != 5 {
		t.Fatalf("scan returned %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if want := uint64(10 + i); e.Key != want {
			t.Fatalf("scan entry %d: key %d, want %d", i, e.Key, want)
		}
	}

	// Unknown table errors per request.
	if err := cl.Put(99, 1, []byte("x")); err == nil {
		t.Fatal("put to unknown table accepted")
	}

	buf, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var doc server.StatsDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if doc.Shards != 4 || doc.Ops == 0 || len(doc.Wire) == 0 {
		t.Fatalf("implausible stats: %+v", doc)
	}
}

// TestConcurrentPipelinedClients exercises the full path under -race:
// several clients, each pipelining deeply, hitting every shard from
// overlapping goroutines.
func TestConcurrentPipelinedClients(t *testing.T) {
	srv, _, addr := startServer(t, 4, server.Options{ShardQueue: 16, WriteQueue: 16, BatchMax: 8})
	const (
		workers = 6
		perW    = 300
		depth   = 32
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Conns: 2, Depth: depth})
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			var inflight []*client.Call
			for i := 0; i < perW; i++ {
				key := uint64(w*perW + i)
				inflight = append(inflight, cl.PutAsync(testTable, key, rowFor(key)))
				inflight = append(inflight, cl.GetAsync(testTable, uint64(w*perW+i/2)))
				for len(inflight) > depth {
					if _, err := inflight[0].Result(); err != nil {
						errs[w] = fmt.Errorf("op %d: %w", i, err)
						return
					}
					inflight = inflight[1:]
				}
			}
			for _, call := range inflight {
				if _, err := call.Result(); err != nil {
					errs[w] = err
					return
				}
			}
			// Verify this worker's keys, interleaved with the others.
			for i := 0; i < perW; i++ {
				key := uint64(w*perW + i)
				val, found, err := cl.Get(testTable, key)
				if err != nil || !found || !bytes.Equal(val, rowFor(key)) {
					errs[w] = fmt.Errorf("verify %d: found=%v err=%v", key, found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := srv.Stats().Ops; got < workers*perW*3 {
		t.Fatalf("server answered %d ops, want >= %d", got, workers*perW*3)
	}
	if rows := srv.WireLatency(); len(rows) == 0 {
		t.Fatal("no wire latency recorded")
	}
}

func TestTransactions(t *testing.T) {
	_, _, addr := startServer(t, 4, server.Options{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put(testTable, 100, rowFor(100)); err != nil {
		t.Fatal(err)
	}

	// Read-your-writes inside the transaction, invisible outside until
	// commit.
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(testTable, 200, rowFor(200)); err != nil {
		t.Fatal(err)
	}
	if val, found, err := tx.Get(testTable, 200); err != nil || !found || !bytes.Equal(val, rowFor(200)) {
		t.Fatalf("tx read-your-writes: found=%v err=%v", found, err)
	}
	if err := tx.Delete(testTable, 100); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tx.Get(testTable, 100); found {
		t.Fatal("tx does not see its own delete")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, found, _ := cl.Get(testTable, 100); found {
		t.Fatal("committed delete not applied")
	}
	if val, found, _ := cl.Get(testTable, 200); !found || !bytes.Equal(val, rowFor(200)) {
		t.Fatal("committed put not applied")
	}

	// Rollback discards buffered writes.
	tx2, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Put(testTable, 300, rowFor(300)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cl.Get(testTable, 300); found {
		t.Fatal("rolled-back put applied")
	}

	// Cross-shard commit: keys land on different shards, all must apply.
	tx3, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(400); key < 420; key++ {
		if err := tx3.Put(testTable, key, rowFor(key)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	for key := uint64(400); key < 420; key++ {
		if val, found, _ := cl.Get(testTable, key); !found || !bytes.Equal(val, rowFor(key)) {
			t.Fatalf("cross-shard commit lost key %d", key)
		}
	}
}

// TestDrainNoLostAcknowledgedWrites is the durability contract test:
// clients hammer autocommit PUTs while the server drains mid-stream;
// every PUT that was acknowledged must survive a power failure and
// recovery of the store — and be readable through a fresh server.
func TestDrainNoLostAcknowledgedWrites(t *testing.T) {
	store, err := nvmstore.OpenSharded(4, nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    8 << 20,
		NVMBytes:     32 << 20,
		SSDBytes:     128 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable(testTable, testRowSize); err != nil {
		t.Fatal(err)
	}
	srv := server.New(store, server.Options{})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()

	const workers = 4
	var acked [workers][]uint64
	var started atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{Depth: 8})
			if err != nil {
				return
			}
			defer cl.Close()
			for i := 0; ; i++ {
				key := uint64(w)<<32 | uint64(i)
				started.Add(1)
				if err := cl.Put(testTable, key, rowFor(key)); err != nil {
					return // drain reached this connection
				}
				acked[w] = append(acked[w], key)
			}
		}(w)
	}

	// Let the writers get going, then drain mid-stream.
	for started.Load() < 200 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()

	total := 0
	for w := range acked {
		total += len(acked[w])
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged before the drain")
	}
	t.Logf("%d acknowledged writes before drain", total)

	// Power-fail the drained store and recover from the log.
	if _, err := store.CrashRestart(); err != nil {
		t.Fatalf("crash restart: %v", err)
	}

	// Every acknowledged write must be there — through a fresh server.
	srv2 := server.New(store, server.Options{})
	errc2 := make(chan error, 1)
	go func() { errc2 <- srv2.ListenAndServe("127.0.0.1:0") }()
	for srv2.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	cl, err := client.Dial(srv2.Addr().String(), client.Options{Depth: 64})
	if err != nil {
		t.Fatal(err)
	}
	for w := range acked {
		for _, key := range acked[w] {
			val, found, err := cl.Get(testTable, key)
			if err != nil {
				t.Fatalf("get %#x after recovery: %v", key, err)
			}
			if !found {
				t.Fatalf("acknowledged write %#x lost by drain + crash recovery", key)
			}
			if !bytes.Equal(val, rowFor(key)) {
				t.Fatalf("acknowledged write %#x corrupted", key)
			}
		}
	}
	cl.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv2.Shutdown(ctx2); err != nil {
		t.Fatalf("shutdown 2: %v", err)
	}
	if err := <-errc2; err != nil {
		t.Fatalf("serve 2: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}
}

// TestAutocommitDuringTransaction is the regression test for the
// ack ⇒ durable contract of autocommit writes issued while another
// transaction is open on the same client: the transaction runs on its
// own dedicated connection, so the pooled connections must never buffer
// an autocommit write into it (and Rollback must not discard one).
func TestAutocommitDuringTransaction(t *testing.T) {
	_, _, addr := startServer(t, 4, server.Options{})
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(testTable, 2, rowFor(2)); err != nil {
		t.Fatal(err)
	}

	// Autocommit write on the pooled connection while the tx is open:
	// committed immediately, regardless of the open transaction.
	if err := cl.Put(testTable, 1, rowFor(1)); err != nil {
		t.Fatalf("autocommit put during tx: %v", err)
	}
	if val, found, err := cl.Get(testTable, 1); err != nil || !found || !bytes.Equal(val, rowFor(1)) {
		t.Fatalf("autocommit put not visible while tx open: found=%v err=%v", found, err)
	}
	// The tx's buffered write stays invisible to autocommit reads.
	if _, found, _ := cl.Get(testTable, 2); found {
		t.Fatal("buffered tx write visible to autocommit read")
	}

	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Rollback discards only the tx buffer, never the acknowledged
	// autocommit write.
	if val, found, err := cl.Get(testTable, 1); err != nil || !found || !bytes.Equal(val, rowFor(1)) {
		t.Fatalf("rollback discarded an acknowledged autocommit write: found=%v err=%v", found, err)
	}
	if _, found, _ := cl.Get(testTable, 2); found {
		t.Fatal("rolled-back tx write applied")
	}

	// A finished Tx refuses further use.
	if err := tx.Put(testTable, 3, rowFor(3)); !errors.Is(err, client.ErrTxDone) {
		t.Fatalf("put on finished tx: %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); !errors.Is(err, client.ErrTxDone) {
		t.Fatalf("double rollback: %v, want ErrTxDone", err)
	}

	// The pooled connection is still healthy for autocommit traffic.
	if err := cl.Put(testTable, 4, rowFor(4)); err != nil {
		t.Fatal(err)
	}
}

// TestScanLargeRowsFitsFrame scans a table whose rows are large enough
// that MaxScan rows would blow past wire.MaxFrame: the server must
// clamp the row limit by encoded bytes so the response still frames and
// the connection survives.
func TestScanLargeRowsFitsFrame(t *testing.T) {
	const rowSize = 8000 // near the btree's per-page payload ceiling
	const rows = 1100
	// MaxScan alone would allow 2048 × (12+8000) ≈ 16MiB — the byte
	// clamp, not the row cap, must bound this response.
	_, _, addr := startServerRowSize(t, 2, rowSize, server.Options{MaxScan: 2048})
	cl, err := client.Dial(addr, client.Options{Depth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	row := make([]byte, rowSize)
	var inflight []*client.Call
	for key := uint64(0); key < rows; key++ {
		binary.BigEndian.PutUint64(row, key)
		inflight = append(inflight, cl.PutAsync(testTable, key, row))
		if len(inflight) >= 16 {
			if _, err := inflight[0].Result(); err != nil {
				t.Fatalf("put %d: %v", key, err)
			}
			inflight = inflight[1:]
		}
	}
	for _, call := range inflight {
		if _, err := call.Result(); err != nil {
			t.Fatal(err)
		}
	}

	// An unlimited scan would return all 1100 rows ≈ 8.8MiB encoded —
	// past wire.MaxFrame, a dead connection pre-clamp. The byte clamp
	// allows (MaxFrame-64)/(12+rowSize) rows.
	wantMax := (wire.MaxFrame - 64) / (12 + rowSize)
	entries, err := cl.Scan(testTable, 0, 0)
	if err != nil {
		t.Fatalf("large-row scan: %v", err)
	}
	if len(entries) != wantMax {
		t.Fatalf("scan returned %d entries, want the frame-clamped %d", len(entries), wantMax)
	}
	for i, e := range entries {
		if e.Key != uint64(i) || len(e.Value) != rowSize {
			t.Fatalf("entry %d: key %d, %d bytes", i, e.Key, len(e.Value))
		}
	}
	// The connection must still be usable (pre-clamp, the oversized
	// frame killed it).
	if _, found, err := cl.Get(testTable, 0); err != nil || !found {
		t.Fatalf("connection dead after large scan: found=%v err=%v", found, err)
	}
}

// TestStalledReaderDoesNotWedgeShard opens a raw connection that floods
// GETs for large rows and never reads a byte of response. The write
// deadline must sever that connection so the shard worker — which
// replies while holding the shard lock — cannot stay blocked on it, and
// a well-behaved client must keep getting service.
func TestStalledReaderDoesNotWedgeShard(t *testing.T) {
	const rowSize = 8000
	_, _, addr := startServerRowSize(t, 1, rowSize, server.Options{
		ShardQueue:   4,
		BatchMax:     2,
		WriteQueue:   2,
		WriteTimeout: 300 * time.Millisecond,
	})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	row := make([]byte, rowSize)
	for key := uint64(0); key < 8; key++ {
		if err := cl.Put(testTable, key, row); err != nil {
			t.Fatal(err)
		}
	}

	// The stalled peer: requests ~16MiB of responses, reads none of it.
	// The kernel socket buffers fill, the server's write blocks, and
	// only the write deadline can unwedge the shard worker.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	var frames []byte
	for i := 0; i < 2000; i++ {
		frames = wire.AppendRequest(frames, wire.Request{
			Op: wire.OpGet, ID: uint32(i + 1), Table: testTable, Key: uint64(i % 8),
		})
	}
	if _, err := stalled.Write(frames); err != nil {
		t.Fatal(err)
	}

	// The healthy client must still be served; pre-deadline, the single
	// shard's worker blocked forever on the stalled connection and this
	// Get never returned.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if _, _, err := cl.Get(testTable, uint64(i%8)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healthy client failed during stall: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("shard wedged by a stalled reader: healthy client starved")
	}
}

func TestShutdownIdempotentAndConnRefusal(t *testing.T) {
	srv, store, addr := startServer(t, 2, server.Options{})
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(testTable, 1, rowFor(1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The store is left open for the owner.
	if err := store.WithShard(store.ShardFor(1), func(st *nvmstore.Store) error {
		tab := st.Table(testTable)
		buf := make([]byte, testRowSize)
		var found bool
		err := st.Update(func() error {
			var err error
			found, err = tab.Lookup(1, buf)
			return err
		})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("key 1 missing after drain")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// New requests on the old connection fail.
	if err := cl.Put(testTable, 2, rowFor(2)); err == nil {
		t.Fatal("put after shutdown succeeded")
	}
	cl.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}
