package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Live publishes the most recent metrics snapshot over HTTP as JSON. The
// bench harness calls Publish after each phase (warmup done, data point
// measured); an http.Server routes /metrics here. Publish marshals
// eagerly so ServeHTTP only copies bytes — a slow or stalled reader never
// blocks the benchmark.
type Live struct {
	mu   sync.Mutex
	data []byte
}

// Publish replaces the current snapshot. v is marshaled immediately;
// marshal errors are reported as the snapshot itself so they surface to
// whoever is watching.
func (l *Live) Publish(v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		buf = fmt.Appendf(nil, "{%q:%q}", "error", err.Error())
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.data = buf
	l.mu.Unlock()
}

// ServeHTTP implements http.Handler for the /metrics endpoint.
func (l *Live) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	buf := l.data
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if buf == nil {
		w.Write([]byte("{}\n"))
		return
	}
	w.Write(buf)
}
