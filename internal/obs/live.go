package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Live publishes the most recent metrics snapshot over HTTP as JSON. The
// bench harness calls Publish after each phase (warmup done, data point
// measured); an http.Server routes /metrics here. Publish marshals
// eagerly so ServeHTTP only copies bytes — a slow or stalled reader never
// blocks the benchmark.
type Live struct {
	mu   sync.Mutex
	data []byte
}

// Publish replaces the current snapshot. v is marshaled immediately;
// marshal errors are reported as the snapshot itself so they surface to
// whoever is watching.
func (l *Live) Publish(v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		buf = fmt.Appendf(nil, "{%q:%q}", "error", err.Error())
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.data = buf
	l.mu.Unlock()
}

// ServeHTTP implements http.Handler for the /metrics endpoint.
func (l *Live) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	buf := l.data
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if buf == nil {
		w.Write([]byte("{}\n"))
		return
	}
	w.Write(buf)
}

// DebugServer bundles the diagnostics endpoints the long-running
// commands (nvmbench, nvmserver) share: /metrics and /metrics.json
// serving a Live JSON snapshot, /debug/vars (expvar), and /debug/pprof/.
// Callers can mount extra endpoints (a Prometheus /metrics, a /trace
// flight-recorder dump) via StartDebug; an extra endpoint at /metrics
// replaces the default JSON there, and /metrics.json always keeps the
// JSON document. The snapshot function is polled once a second and on
// Publish; it must be safe to call while the instrumented system runs
// (histogram snapshots are).
type DebugServer struct {
	live     *Live
	snapshot func() any
	srv      *http.Server
	ln       net.Listener
	done     chan struct{}
	wg       sync.WaitGroup
}

// Endpoint is one extra handler to mount on a DebugServer's mux.
type Endpoint struct {
	// Path is the mux pattern, e.g. "/trace".
	Path string
	// Handler serves it.
	Handler http.Handler
}

// StartDebug listens on addr and serves the diagnostics endpoints until
// Close. snapshot produces the JSON metrics document; extra endpoints
// are mounted as given (a /metrics endpoint overrides the default JSON
// handler there).
func StartDebug(addr string, snapshot func() any, extra ...Endpoint) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		live:     new(Live),
		snapshot: snapshot,
		ln:       ln,
		done:     make(chan struct{}),
	}
	mux := http.NewServeMux()
	metricsTaken := false
	for _, e := range extra {
		mux.Handle(e.Path, e.Handler)
		if e.Path == "/metrics" {
			metricsTaken = true
		}
	}
	if !metricsTaken {
		mux.Handle("/metrics", d.live)
	}
	mux.Handle("/metrics.json", d.live)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{Handler: mux}
	d.Publish()
	d.wg.Add(2)
	go func() {
		defer d.wg.Done()
		d.srv.Serve(ln)
	}()
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.Publish()
			case <-d.done:
				return
			}
		}
	}()
	return d, nil
}

// Publish refreshes the /metrics snapshot immediately (callers do so at
// phase boundaries so a scrape between ticks never misses a finished
// phase).
func (d *DebugServer) Publish() { d.live.Publish(d.snapshot()) }

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close stops the refresher and the HTTP server.
func (d *DebugServer) Close() error {
	close(d.done)
	err := d.srv.Close()
	d.wg.Wait()
	return err
}
