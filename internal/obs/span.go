package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Stage identifies one segment of a request's server-side timeline. The
// stages are consecutive: a request leaves one stage exactly as it
// enters the next, so the stage durations of a finished Timeline sum to
// its total (up to the final response write completing).
type Stage uint8

const (
	// StageEnqueue is the reader goroutine's handoff into the shard
	// queue, including any block on queue backpressure.
	StageEnqueue Stage = iota
	// StageQueue is time spent waiting in the shard worker's queue.
	StageQueue
	// StageExec is this request's own execution inside the batched
	// shard worker, including the shard-lock wait.
	StageExec
	// StageFlush is the wait for the batch-end WAL/group-commit flush,
	// including batch peers executed after this request.
	StageFlush
	// StageWrite is the response's time in the connection writer: the
	// out-queue wait plus the socket write.
	StageWrite

	// NumStages is the number of timeline stages.
	NumStages
)

var stageNames = [NumStages]string{"enqueue", "queue", "exec", "flush", "write"}

// String returns the stage's report/JSON name, e.g. "flush".
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// TierDeltas counts the engine-side storage-hierarchy work one operation
// performed, derived by differencing the engine's cumulative counters
// around the operation's execution.
type TierDeltas struct {
	// DRAMHits is page fixes resolved entirely in DRAM.
	DRAMHits int64 `json:"dram_hits"`
	// NVMLineLoads is cache-line-grained loads from NVM (§3.1).
	NVMLineLoads int64 `json:"nvm_line_loads"`
	// NVMPageLoads is whole-page loads from NVM.
	NVMPageLoads int64 `json:"nvm_page_loads"`
	// SSDReads is page reads that went all the way to SSD.
	SSDReads int64 `json:"ssd_reads"`
	// JournalUndos is mini-journal undo applications during the op.
	JournalUndos int64 `json:"journal_undos"`
}

// Sub returns d - prev, the work performed between two counter
// snapshots.
func (d TierDeltas) Sub(prev TierDeltas) TierDeltas {
	return TierDeltas{
		DRAMHits:     d.DRAMHits - prev.DRAMHits,
		NVMLineLoads: d.NVMLineLoads - prev.NVMLineLoads,
		NVMPageLoads: d.NVMPageLoads - prev.NVMPageLoads,
		SSDReads:     d.SSDReads - prev.SSDReads,
		JournalUndos: d.JournalUndos - prev.JournalUndos,
	}
}

// Timeline is one traced request's span record: a fixed-size struct the
// server stamps as the request moves through the pipeline stages, plus
// the engine-side tier work its execution performed. Recording into a
// Timeline is field assignment only — no allocation, no locks.
//
// A Timeline handed to a FlightRecorder must not be modified afterwards;
// the recorder publishes the pointer to concurrent readers.
type Timeline struct {
	// TraceID is the client-stamped 8-byte trace id (nonzero).
	TraceID uint64 `json:"trace_id"`
	// Op is the wire operation name ("get", "put", "delete").
	Op string `json:"op"`
	// Shard is the shard that executed the request.
	Shard int32 `json:"shard"`
	// StartUnixNs is the wall-clock start (request decoded), UnixNano.
	StartUnixNs int64 `json:"start_unix_ns"`
	// Stages holds wall-clock nanoseconds spent in each Stage.
	Stages [NumStages]int64 `json:"stages_ns"`
	// SimNs is the simulated device time the execution charged.
	SimNs int64 `json:"sim_ns"`
	// Tiers is the storage-hierarchy work the execution performed.
	Tiers TierDeltas `json:"tiers"`
	// TotalNs is the wall-clock total from decode to response written.
	TotalNs int64 `json:"total_ns"`

	lastNs int64 // wall clock at the previous Mark (internal cursor)
}

// Begin initializes the record at wall-clock time nowNs (UnixNano).
func (tl *Timeline) Begin(traceID uint64, op string, nowNs int64) {
	*tl = Timeline{TraceID: traceID, Op: op, Shard: -1, StartUnixNs: nowNs, lastNs: nowNs}
}

// Mark ends stage st at wall-clock time nowNs, charging it the time
// since the previous mark (or Begin). Marking the same stage again
// accumulates, which lets a stage be charged in several slices.
func (tl *Timeline) Mark(st Stage, nowNs int64) {
	tl.Stages[st] += nowNs - tl.lastNs
	tl.lastNs = nowNs
}

// Finish closes the record at wall-clock time nowNs, charging the
// remainder to StageWrite and fixing TotalNs.
func (tl *Timeline) Finish(nowNs int64) {
	tl.Mark(StageWrite, nowNs)
	tl.TotalNs = nowNs - tl.StartUnixNs
}

// Attribution is a tail-latency decomposition: at the chosen quantile of
// traced-request totals, how the latency splits across pipeline stages.
// It is computed from the flight recorder's uniform sample — the tail
// spans (requests at or above the quantile) are averaged per stage and
// normalized so the stages sum exactly to TotalNs.
type Attribution struct {
	// Quantile is the quantile attributed (e.g. 0.99).
	Quantile float64 `json:"quantile"`
	// Count is how many sampled spans the attribution was computed from.
	Count int `json:"count"`
	// TailCount is how many of them sit at or above the quantile.
	TailCount int `json:"tail_count"`
	// TotalNs is the exact quantile of sampled span totals.
	TotalNs int64 `json:"total_ns"`
	// Stages decomposes TotalNs across the pipeline stages; the entries
	// sum exactly to TotalNs.
	Stages [NumStages]int64 `json:"stages_ns"`
}

// Attribute computes the q-quantile decomposition of spans (0 < q < 1).
// Returns a zero Attribution when spans is empty.
func Attribute(spans []Timeline, q float64) Attribution {
	a := Attribution{Quantile: q, Count: len(spans)}
	if len(spans) == 0 {
		return a
	}
	totals := make([]int64, len(spans))
	for i := range spans {
		totals[i] = spans[i].TotalNs
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	// Exact empirical quantile: the smallest total with at least a q
	// fraction of samples at or below it.
	idx := int(q * float64(len(totals)))
	if idx >= len(totals) {
		idx = len(totals) - 1
	}
	a.TotalNs = totals[idx]

	// Average the per-stage split over the tail spans, then scale so the
	// stages sum to the quantile total exactly.
	var stageSum [NumStages]int64
	var tailTotal int64
	for i := range spans {
		if spans[i].TotalNs < a.TotalNs {
			continue
		}
		a.TailCount++
		tailTotal += spans[i].TotalNs
		for st := range stageSum {
			stageSum[st] += spans[i].Stages[st]
		}
	}
	if tailTotal <= 0 {
		// Degenerate (all-zero totals): put everything in exec.
		a.Stages[StageExec] = a.TotalNs
		return a
	}
	var acc, maxSt int64
	maxIdx := 0
	for st := range a.Stages {
		v := stageSum[st] * a.TotalNs / tailTotal
		if v < 0 {
			v = 0
		}
		a.Stages[st] = v
		acc += v
		if v > maxSt {
			maxSt, maxIdx = v, st
		}
	}
	// Rounding remainder goes to the largest stage so the sum is exact.
	a.Stages[maxIdx] += a.TotalNs - acc
	return a
}

// SumNs returns the sum of the stage decomposition (equals TotalNs for
// any Attribution produced by Attribute on nonempty input).
func (a Attribution) SumNs() int64 {
	var s int64
	for _, v := range a.Stages {
		s += v
	}
	return s
}

// Format renders the decomposition as a one-line report, largest stage
// first, e.g. "p99 3.2ms = 62% flush, 21% queue, 9% exec, 5% write, 3% enqueue".
func (a Attribution) Format() string {
	if a.Count == 0 || a.TotalNs <= 0 {
		return fmt.Sprintf("p%g: no samples", a.Quantile*100)
	}
	type part struct {
		st Stage
		ns int64
	}
	parts := make([]part, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		parts = append(parts, part{st, a.Stages[st]})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].ns > parts[j].ns })
	var b strings.Builder
	fmt.Fprintf(&b, "p%g %.3fms =", a.Quantile*100, float64(a.TotalNs)/1e6)
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, " %.0f%% %s", 100*float64(p.ns)/float64(a.TotalNs), p.st)
	}
	return b.String()
}
