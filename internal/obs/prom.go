package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): `# HELP`/`# TYPE` once per metric family, then one
// sample line per label set. Histograms are emitted with cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`, mapping the
// layer's power-of-two buckets to le = 2^k − 1 (the largest value bucket
// k can hold).
//
// Write methods for the same family must be called consecutively (group
// all label sets of one name together); the writer emits the family
// header on first use of each name. Errors are sticky — check Err once
// after rendering.
type PromWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

// NewPromWriter returns a writer rendering to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Label is one Prometheus label pair.
type Label struct {
	// Name is the label name ([a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value (escaped on output).
	Value string
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// header emits # HELP and # TYPE for name once.
func (p *PromWriter) header(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// labelString renders {a="b",...}, or "" for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringLe is labelString with an le pair appended (for buckets).
func labelStringLe(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, `%s=%q,`, l.Name, escapeLabel(l.Value))
	}
	fmt.Fprintf(&b, `le=%q}`, le)
	return b.String()
}

// Counter emits one counter sample.
func (p *PromWriter) Counter(name, help string, labels []Label, v float64) {
	p.header(name, help, "counter")
	p.printf("%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, labels []Label, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Histogram emits one histogram sample set from a HistSnapshot:
// cumulative buckets up to the highest populated power-of-two bucket,
// the +Inf bucket, _sum, and _count.
func (p *PromWriter) Histogram(name, help string, labels []Label, h HistSnapshot) {
	p.header(name, help, "histogram")
	hi := -1
	for k := len(h.Counts) - 1; k >= 0; k-- {
		if h.Counts[k] != 0 {
			hi = k
			break
		}
	}
	var cum int64
	for k := 0; k <= hi; k++ {
		cum += h.Counts[k]
		// Bucket 0 holds exactly zero; bucket k>=1 holds [2^(k-1), 2^k),
		// so its inclusive integer upper bound is 2^k - 1.
		le := "0"
		if k > 0 {
			le = strconv.FormatUint(1<<uint(k)-1, 10)
		}
		p.printf("%s_bucket%s %d\n", name, labelStringLe(labels, le), cum)
	}
	p.printf("%s_bucket%s %d\n", name, labelStringLe(labels, "+Inf"), h.Count())
	p.printf("%s_sum%s %d\n", name, labelString(labels), h.Sum)
	p.printf("%s_count%s %d\n", name, labelString(labels), h.Count())
}

// formatFloat renders a sample value: integers without an exponent,
// everything else via strconv 'g'.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromHandler adapts a render function to an http.Handler serving the
// Prometheus text format with the standard content type. Render errors
// surface as a 500 with the error text.
func PromHandler(render func(*PromWriter)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		p := NewPromWriter(&b)
		render(p)
		if err := p.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, b.String())
	})
}

// LintPromText validates Prometheus text-format output: line syntax,
// metric/label name charsets, TYPE declarations preceding samples, and
// histogram consistency (cumulative nondecreasing buckets with
// increasing le, a +Inf bucket present and equal to _count). It is a
// test-support linter, not a full parser — it checks what this layer
// emits plus the invariants Prometheus itself enforces on scrape.
func LintPromText(data []byte) error {
	types := make(map[string]string)
	// histogram bookkeeping per base-name+labels series
	type histState struct {
		lastLe  float64
		lastCum int64
		infSeen bool
		infVal  int64
		count   int64
		hasCnt  bool
	}
	hists := make(map[string]*histState)
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
					return fmt.Errorf("line %d: malformed %s comment", lineNo, fields[1])
				}
				continue // free-form comment
			}
			if !validMetricName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base, suffix := histBase(name, types)
		if base == "" {
			continue // not part of a declared histogram family
		}
		key := base + "\x00" + stripLe(labels)
		st := hists[key]
		if st == nil {
			st = &histState{lastLe: -1}
			hists[key] = st
		}
		switch suffix {
		case "_bucket":
			le, err := parseLe(labels)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			cum := int64(value)
			if le <= st.lastLe {
				return fmt.Errorf("line %d: histogram %s le %g not increasing", lineNo, base, le)
			}
			if cum < st.lastCum {
				return fmt.Errorf("line %d: histogram %s bucket counts decreasing", lineNo, base)
			}
			st.lastLe, st.lastCum = le, cum
			if le == inf {
				st.infSeen, st.infVal = true, cum
			}
		case "_count":
			st.count, st.hasCnt = int64(value), true
		}
	}
	for key, st := range hists {
		base := key[:strings.IndexByte(key, 0)]
		if !st.infSeen {
			return fmt.Errorf("histogram %s: missing +Inf bucket", base)
		}
		if !st.hasCnt {
			return fmt.Errorf("histogram %s: missing _count", base)
		}
		if st.infVal != st.count {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", base, st.infVal, st.count)
		}
	}
	return nil
}

var inf = float64(1 << 62) // sentinel for le="+Inf" comparisons

// parseLe extracts the le label from a bucket's label string.
func parseLe(labels string) (float64, error) {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return 0, fmt.Errorf("bucket missing le label")
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, fmt.Errorf("unterminated le label")
	}
	v := rest[:j]
	if v == "+Inf" {
		return inf, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q", v)
	}
	return f, nil
}

// stripLe removes the le pair so bucket series group with their family.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if !strings.HasPrefix(pair, "le=") {
			kept = append(kept, pair)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// histBase maps a sample name to its declared histogram family name and
// suffix, or "" when the sample is not part of one.
func histBase(name string, types map[string]string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if types[b] == "histogram" {
				return b, suf
			}
		}
	}
	return "", ""
}

// parsePromSample splits one sample line into name, raw label string
// (without braces), and value, validating each part.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample missing value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	for _, pair := range splitLabelPairs(labels) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return "", "", 0, fmt.Errorf("malformed label pair %q", pair)
		}
		if !validLabelName(pair[:eq]) {
			return "", "", 0, fmt.Errorf("invalid label name %q", pair[:eq])
		}
		v := pair[eq+1:]
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", "", 0, fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	// Value (timestamps are not emitted by this layer; reject extras).
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", "", 0, fmt.Errorf("expected one value, got %q", rest)
	}
	if fields[0] == "+Inf" || fields[0] == "-Inf" || fields[0] == "NaN" {
		return name, labels, 0, nil
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	return name, labels, value, nil
}

// splitLabelPairs splits a raw label string on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
