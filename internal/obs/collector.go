package obs

// Collector is the standard Recorder: one lock-free histogram per Op plus
// an optional lifecycle-event ring. One Collector serves one engine
// (shard); per-shard Collectors are aggregated by merging snapshots.
type Collector struct {
	hist  [NumOps]Histogram
	trace *Trace
}

// NewCollector returns a Collector. traceCap > 0 also enables the
// lifecycle-event ring, retaining the most recent traceCap events;
// traceCap <= 0 records latencies only.
func NewCollector(traceCap int) *Collector {
	c := &Collector{}
	if traceCap > 0 {
		c.trace = NewTrace(traceCap)
	}
	return c
}

// Latency implements Recorder.
func (c *Collector) Latency(op Op, ns int64) {
	c.hist[op].Record(ns)
}

// LatencyZeros implements Recorder.
func (c *Collector) LatencyZeros(op Op, n int64) {
	c.hist[op].RecordZeros(n)
}

// Event implements Recorder. Without a ring (traceCap <= 0) events are
// dropped.
func (c *Collector) Event(e Event) {
	if c.trace != nil {
		c.trace.Append(e)
	}
}

// Trace returns the event ring, or nil when tracing is disabled. The
// ring's reads are sequence-validated, so it may be read while the
// owning engine is still appending (see Trace).
func (c *Collector) Trace() *Trace { return c.trace }

// Snapshot copies every histogram. Safe to call while the engine records.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{}
	for op := range c.hist {
		s.Ops[op] = c.hist[op].Snapshot()
	}
	return s
}

// Reset zeroes every histogram (the event ring is left alone; its Total
// keeps counting). Like Histogram.Reset, callers quiesce writers first.
func (c *Collector) Reset() {
	for op := range c.hist {
		c.hist[op].Reset()
	}
}

// Snapshot is a point-in-time copy of a Collector's histograms, mergeable
// across shards.
type Snapshot struct {
	Ops [NumOps]HistSnapshot `json:"-"`
}

// Merge folds other into s.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for op := range s.Ops {
		s.Ops[op].Merge(other.Ops[op])
	}
}

// Row is one operation's latency summary, in simulated nanoseconds.
type Row struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
	P50   int64  `json:"p50_ns"`
	P90   int64  `json:"p90_ns"`
	P99   int64  `json:"p99_ns"`
	Max   int64  `json:"max_ns"`
	Mean  int64  `json:"mean_ns"`
}

// Rows summarizes every operation that recorded at least one sample, in
// Op declaration order (storage hierarchy top to bottom).
func (s *Snapshot) Rows() []Row {
	var rows []Row
	for op := Op(0); op < NumOps; op++ {
		h := &s.Ops[op]
		n := h.Count()
		if n == 0 {
			continue
		}
		rows = append(rows, Row{
			Op:    op.String(),
			Count: n,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.Max,
			Mean:  h.Mean(),
		})
	}
	return rows
}
