package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of power-of-two latency buckets. Bucket 0 holds
// exactly-zero samples (operations that charged no device time); bucket k
// holds samples in [2^(k-1), 2^k). 63 buckets cover every positive int64,
// so nothing is ever dropped.
const NumBuckets = 64

// bucketOf returns the histogram bucket for a sample. Negative samples
// (impossible under a monotonic simulated clock, but cheap to guard) land
// in bucket 0 with the zeros.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// Histogram is a lock-free HDR-style latency histogram with power-of-two
// buckets. Record is wait-free (one atomic add per counter); Snapshot can
// run concurrently with writers and observes each counter atomically, so a
// snapshot taken mid-run is internally consistent per bucket (the usual
// HDR guarantee) without stopping recorders.
//
// The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one sample of ns simulated nanoseconds. Zero samples —
// the overwhelmingly common case on hit-heavy paths — cost a single
// atomic add.
func (h *Histogram) Record(ns int64) {
	if ns <= 0 {
		h.counts[0].Add(1)
		return
	}
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// RecordZeros adds n zero samples with a single atomic add — the bulk
// flush path for batched hit counting.
func (h *Histogram) RecordZeros(n int64) {
	if n > 0 {
		h.counts[0].Add(n)
	}
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Record calls; callers quiesce writers first (the engine's snapshot
// contract, see Manager.Stats).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is an immutable copy of a Histogram, mergeable across
// shards and serializable.
type HistSnapshot struct {
	Counts [NumBuckets]int64 `json:"counts"`
	Sum    int64             `json:"sum"`
	Max    int64             `json:"max"`
}

// Merge folds other into s (for aggregating per-shard histograms).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Count returns the total number of recorded samples.
func (s *HistSnapshot) Count() int64 {
	var n int64
	for i := range s.Counts {
		n += s.Counts[i]
	}
	return n
}

// Mean returns the average sample in nanoseconds, or 0 when empty.
func (s *HistSnapshot) Mean() int64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return s.Sum / n
}

// Quantile returns the q-quantile (q in [0,1]) in nanoseconds. Within a
// bucket the value is estimated as the bucket midpoint, clamped to the
// observed maximum; bucket 0 is exactly zero. Returns 0 when empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return s.Max // the maximum is tracked exactly
	}
	// rank is the 1-based index of the sample we want.
	rank := int64(q*float64(n-1)) + 1
	var seen int64
	for k := range s.Counts {
		seen += s.Counts[k]
		if seen >= rank {
			if k == 0 {
				return 0
			}
			lo := int64(1) << (k - 1)
			hi := int64(1)<<k - 1
			mid := lo + (hi-lo)/2
			if mid > s.Max {
				return s.Max
			}
			return mid
		}
	}
	return s.Max
}
