// Package obs is the engine's observability layer: latency histograms at
// every tier boundary of the storage hierarchy, a structured trace of
// page-lifecycle events, and a live metrics publisher for long benchmark
// runs.
//
// The paper's evaluation (§5) explains *why* the three-tier buffer manager
// wins — which tier absorbed each access, when cache-line-grained loads
// beat full-page loads, when mini pages promoted — and flat event counters
// cannot answer those questions. Following the NVM evaluation literature,
// the layer records distributions (p50/p90/p99/max), not averages, and
// per-decision traces, not aggregates.
//
// Everything funnels through the Recorder interface. Components hold a
// Recorder and skip all work when it is nil (the default), so the
// instrumentation costs one nil check per boundary when disabled. The
// concrete Collector implementation records into lock-free histograms
// (atomic adds, mergeable snapshots) and an optional fixed-size event ring,
// so a live /metrics endpoint can snapshot a running engine without
// stopping it.
package obs

// Op identifies one instrumented operation of the storage hierarchy. Each
// Op has its own latency histogram in a Collector. Latencies are simulated
// device nanoseconds (the engine's virtual clock), so distributions are
// deterministic; operations that charge no device time (DRAM hits, WAL
// appends into the CPU cache) record zero and contribute counts.
type Op uint8

const (
	// OpDRAMHit is a page fix resolved entirely in DRAM (swizzled
	// reference or mapping-table hit). No device time is charged.
	OpDRAMHit Op = iota
	// OpNVMLineLoad is a run of cache lines loaded from NVM into a full
	// or mini page frame (§3.1, §3.2).
	OpNVMLineLoad
	// OpNVMPageLoad is a whole page read from NVM in page-grained mode.
	OpNVMPageLoad
	// OpNVMRead is a device-level NVM read (every ReadAt/Touch,
	// including CPU-cache hits, which record zero).
	OpNVMRead
	// OpNVMFlush is a device-level NVM flush (clwb + sfence).
	OpNVMFlush
	// OpSSDRead is an SSD page read.
	OpSSDRead
	// OpSSDWrite is an SSD page write.
	OpSSDWrite
	// OpWALAppend is a log-record append (buffered; no device time).
	OpWALAppend
	// OpWALFlush is a log-tail flush — the commit-path durability point.
	OpWALFlush
	// OpMiniPromote is a mini-page promotion to a full page (§3.2).
	OpMiniPromote
	// OpDRAMEvict is one DRAM frame eviction, including its write-back.
	OpDRAMEvict
	// OpNVMAdmit is a page admission into the NVM cache (§4.2).
	OpNVMAdmit
	// OpNVMEvict is one NVM slot eviction, including its SSD write-back.
	OpNVMEvict
	// OpWALBatch records, at each log-tail flush that makes at least one
	// commit durable, how many commits that flush covered. The "latency"
	// value is a count, not nanoseconds: the histogram is the
	// ops-per-flush distribution of group commit.
	OpWALBatch

	// NumOps is the number of instrumented operations.
	NumOps
)

var opNames = [NumOps]string{
	"dram.hit",
	"nvm.lineload",
	"nvm.pageload",
	"nvm.read",
	"nvm.flush",
	"ssd.read",
	"ssd.write",
	"wal.append",
	"wal.flush",
	"mini.promote",
	"dram.evict",
	"nvm.admit",
	"nvm.evict",
	"wal.batch",
}

// String returns the operation's table/JSON name, e.g. "nvm.lineload".
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Tier identifies a level of the storage hierarchy in trace events.
type Tier uint8

// The tiers, in hierarchy order.
const (
	TierDRAM Tier = iota
	TierNVM
	TierSSD
)

var tierNames = [...]string{"dram", "nvm", "ssd"}

// String returns the tier's name.
func (t Tier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return "tier?"
}

// EventKind identifies a page-lifecycle event.
type EventKind uint8

const (
	// EvAlloc: a page was allocated (Tier: where it was created).
	EvAlloc EventKind = iota
	// EvFree: a page was deallocated.
	EvFree
	// EvLoad: a page was loaded into DRAM (Tier: where it came from;
	// Detail: 1 when it was materialized as a mini page).
	EvLoad
	// EvLineLoad: cache lines were loaded from the page's NVM backing
	// (Detail: number of lines).
	EvLineLoad
	// EvPromote: a mini page was promoted to a full page.
	EvPromote
	// EvSwizzle: the page's reference was swizzled to a frame pointer.
	EvSwizzle
	// EvUnswizzle: the swizzled reference was restored to a page id.
	EvUnswizzle
	// EvWriteback: dirty content was written back (Tier: destination).
	EvWriteback
	// EvAdmit: the page was admitted to the NVM cache (§4.2).
	EvAdmit
	// EvDeny: the page was denied NVM admission and went to SSD.
	EvDeny
	// EvEvict: the page was evicted (Tier: the tier it left).
	EvEvict
)

var eventNames = [...]string{
	"alloc", "free", "load", "lineload", "promote", "swizzle",
	"unswizzle", "writeback", "admit", "deny", "evict",
}

// String returns the event kind's name.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "event?"
}

// Event is one structured page-lifecycle event. The encoding is a plain
// value copy into a preallocated ring: recording allocates nothing.
type Event struct {
	// SimNs is the engine's simulated device time when the event fired.
	SimNs int64
	// PID is the page the event concerns (0 when not page-specific).
	PID uint64
	// Frame is the DRAM frame index involved, or -1.
	Frame int32
	// Kind is what happened.
	Kind EventKind
	// Tier is the storage tier the event concerns (see each Kind).
	Tier Tier
	// Detail is Kind-specific (line counts, mini flags, ...).
	Detail uint32
}

// Recorder receives latency samples and lifecycle events. Implementations
// must tolerate concurrent Latency calls (engines run one per shard, but a
// live metrics reader snapshots concurrently); Event streams are
// single-writer per Recorder. Components treat a nil Recorder as "off".
type Recorder interface {
	// Latency records that op took ns simulated nanoseconds.
	Latency(op Op, ns int64)
	// LatencyZeros bulk-records n zero-cost samples of op. Hit-heavy
	// paths (DRAM hits, CPU-cached NVM reads) batch their zeros in a
	// plain counter and flush every ZeroFlush samples, keeping the hot
	// path free of atomics; see Manager.SyncObs for the flush contract.
	LatencyZeros(op Op, n int64)
	// Event records a page-lifecycle event.
	Event(e Event)
}

// ZeroFlush is how many batched zero-cost samples a component
// accumulates before flushing them via LatencyZeros. It bounds how
// stale a mid-run snapshot's hit counts can be.
const ZeroFlush = 4096

// nop is the no-op default Recorder.
type nop struct{}

func (nop) Latency(Op, int64)      {}
func (nop) LatencyZeros(Op, int64) {}
func (nop) Event(Event)            {}

// Nop is a Recorder that discards everything. Components usually prefer a
// nil Recorder plus a nil check (cheaper); Nop exists for call sites that
// need a non-nil value.
var Nop Recorder = nop{}
