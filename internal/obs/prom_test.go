package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromWriterHistogram(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(1)
	h.Record(5) // bucket 3: [4,8)
	h.Record(5)
	snap := h.Snapshot()

	var b strings.Builder
	p := NewPromWriter(&b)
	p.Histogram("nvm_op_ns", "per-op latency", []Label{{Name: "op", Value: "get"}}, snap)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE nvm_op_ns histogram",
		`nvm_op_ns_bucket{op="get",le="0"} 1`,
		`nvm_op_ns_bucket{op="get",le="1"} 2`,
		`nvm_op_ns_bucket{op="get",le="7"} 4`,
		`nvm_op_ns_bucket{op="get",le="+Inf"} 4`,
		`nvm_op_ns_sum{op="get"} 11`,
		`nvm_op_ns_count{op="get"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := LintPromText([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
}

func TestPromWriterFamiliesAndEscaping(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Gauge("nvm_shard_queue_depth", "queued requests", []Label{{Name: "shard", Value: "0"}}, 3)
	p.Gauge("nvm_shard_queue_depth", "queued requests", []Label{{Name: "shard", Value: "1"}}, 0)
	p.Counter("nvm_conn_waits_total", `saturation "stalls"`+"\n", nil, 7)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE nvm_shard_queue_depth") != 1 {
		t.Fatalf("family header repeated:\n%s", out)
	}
	if !strings.Contains(out, "nvm_conn_waits_total 7") {
		t.Fatalf("missing counter:\n%s", out)
	}
	if err := LintPromText([]byte(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
}

func TestLintPromTextRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":       "9metric 1\n",
		"no value":       "metric\n",
		"bad value":      "metric abc\n",
		"bad type":       "# TYPE m widget\n",
		"dup type":       "# TYPE m counter\n# TYPE m counter\n",
		"bad label name": `m{9l="x"} 1` + "\n",
		"unquoted label": `m{l=x} 1` + "\n",
		"buckets decrease": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"le not increasing": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
		"missing inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 2\n",
	}
	for name, text := range cases {
		if err := LintPromText([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
	ok := "# HELP m help text\n# TYPE m counter\nm 1\nm2{a=\"b\\\"c\"} 2.5\n"
	if err := LintPromText([]byte(ok)); err != nil {
		t.Errorf("valid text rejected: %v", err)
	}
}

func TestPromHandler(t *testing.T) {
	h := PromHandler(func(p *PromWriter) {
		p.Gauge("up", "serving", nil, 1)
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
	if err := LintPromText(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
}
