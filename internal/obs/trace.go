package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Trace is a fixed-capacity ring buffer of page-lifecycle events. Append
// is a plain struct copy into preallocated storage — zero allocations,
// no locks — which makes it safe to leave enabled on hot paths.
//
// The ring is single-writer: each engine (shard) owns one Trace. Reads
// (Events, WriteJSONL) are not synchronized with the writer; callers
// quiesce the shard first, exactly like Stats snapshots. When the ring
// wraps, the oldest events are overwritten and Total keeps counting.
type Trace struct {
	buf  []Event
	next uint64 // total events ever appended; next%cap is the write slot
}

// NewTrace returns a ring holding the most recent cap events (min 1).
func NewTrace(cap int) *Trace {
	if cap < 1 {
		cap = 1
	}
	return &Trace{buf: make([]Event, cap)}
}

// Append records one event, overwriting the oldest when full.
func (t *Trace) Append(e Event) {
	t.buf[t.next%uint64(len(t.buf))] = e
	t.next++
}

// Total returns how many events were ever appended (including ones the
// ring has since overwritten).
func (t *Trace) Total() uint64 { return t.next }

// Len returns how many events are currently retained.
func (t *Trace) Len() int {
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Events returns the retained events in append order (oldest first). The
// slice is freshly allocated; the ring keeps recording into its own
// storage.
func (t *Trace) Events() []Event {
	n := t.Len()
	out := make([]Event, 0, n)
	start := t.next - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, t.buf[(start+i)%uint64(len(t.buf))])
	}
	return out
}

// EventsFor returns the retained events for one page, oldest first.
func (t *Trace) EventsFor(pid uint64) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.PID == pid {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL writes the retained events as JSON Lines, oldest first. When
// pid is nonzero only that page's events are written. label and shard,
// when set (nonempty / >= 0), are added to every line so traces from
// several shards or experiments can share a file. Returns the number of
// events written.
//
// The schema per line is:
//
//	{"simNs":1234,"pid":7,"frame":3,"event":"load","tier":"nvm","detail":1}
func (t *Trace) WriteJSONL(w io.Writer, label string, shard int, pid uint64) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	for _, e := range t.Events() {
		if pid != 0 && e.PID != pid {
			continue
		}
		bw.WriteByte('{')
		if label != "" {
			fmt.Fprintf(bw, "%q:%q,", "experiment", label)
		}
		if shard >= 0 {
			fmt.Fprintf(bw, "%q:%d,", "shard", shard)
		}
		// Names and strings here contain no characters needing JSON
		// escaping, so the lines are built directly.
		fmt.Fprintf(bw, `"simNs":%d,"pid":%d,"frame":%d,"event":%q,"tier":%q,"detail":%d}`+"\n",
			e.SimNs, e.PID, e.Frame, e.Kind.String(), e.Tier.String(), e.Detail)
		n++
	}
	return n, bw.Flush()
}
