package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Trace is a fixed-capacity ring buffer of page-lifecycle events. Append
// claims a slot with one atomic ticket and publishes the event through a
// per-slot sequence (a seqlock): the sequence is odd while the write is
// in progress and carries the ticket when complete, so readers validate
// every entry instead of trusting it. Appending allocates nothing and
// takes no locks, which keeps it safe to leave enabled on hot paths.
//
// Unlike the original single-writer design, the ring now tolerates
// concurrent appenders and — more importantly — concurrent readers:
// Events and WriteJSONL may run while engines append, and a torn entry
// (a reader catching a slot mid-overwrite during wraparound) is detected
// by its sequence and skipped rather than returned. Two writers racing
// for the same slot (a full wraparound during one append) drop the
// loser's event and count it in Dropped; with realistic capacities that
// never happens, but the ring stays consistent even when it does. When
// the ring wraps, the oldest events are overwritten and Total keeps
// counting.
type Trace struct {
	slots []traceSlot
	next  atomic.Uint64 // total events ever appended; next%cap is the write slot
	drops atomic.Uint64
}

// traceSlot holds one published event. The event words are atomics so a
// seq-validated read is also race-detector clean: seq is odd while a
// writer owns the slot and 2*(ticket+1) once the entry is complete.
type traceSlot struct {
	seq atomic.Uint64
	w   [4]atomic.Uint64
}

// packEvent splits an Event across the slot's four words.
func packEvent(e Event) [4]uint64 {
	return [4]uint64{
		uint64(e.SimNs),
		e.PID,
		uint64(uint32(e.Frame))<<32 | uint64(e.Detail),
		uint64(e.Kind)<<8 | uint64(e.Tier),
	}
}

// unpackEvent is the inverse of packEvent.
func unpackEvent(w [4]uint64) Event {
	return Event{
		SimNs:  int64(w[0]),
		PID:    w[1],
		Frame:  int32(uint32(w[2] >> 32)),
		Detail: uint32(w[2]),
		Kind:   EventKind(w[3] >> 8),
		Tier:   Tier(uint8(w[3])),
	}
}

// NewTrace returns a ring holding the most recent cap events (min 1).
func NewTrace(cap int) *Trace {
	if cap < 1 {
		cap = 1
	}
	return &Trace{slots: make([]traceSlot, cap)}
}

// Append records one event, overwriting the oldest when full. If the
// ring wraps all the way around while another append is still writing
// the same slot, the newer event is dropped (and counted) instead of
// tearing the older one.
func (t *Trace) Append(e Event) {
	ticket := t.next.Add(1) - 1
	slot := &t.slots[ticket%uint64(len(t.slots))]
	claim := 2*ticket + 1 // odd: write in progress, encodes the ticket
	s := slot.seq.Load()
	if s >= claim || s&1 == 1 || !slot.seq.CompareAndSwap(s, claim) {
		// The slot is owned by a concurrent writer (or already holds a
		// newer lap's entry). Dropping the new event keeps every
		// published entry internally consistent.
		t.drops.Add(1)
		return
	}
	w := packEvent(e)
	for i := range w {
		slot.w[i].Store(w[i])
	}
	slot.seq.Store(claim + 1) // 2*(ticket+1): complete
}

// Total returns how many events were ever appended (including ones the
// ring has since overwritten or dropped).
func (t *Trace) Total() uint64 { return t.next.Load() }

// Dropped returns how many events were discarded because the ring
// wrapped onto a slot another appender was still writing.
func (t *Trace) Dropped() uint64 { return t.drops.Load() }

// Len returns how many events are currently retained (at most the
// capacity; concurrent drops can make the true count slightly lower).
func (t *Trace) Len() int {
	n := t.next.Load()
	if n < uint64(len(t.slots)) {
		return int(n)
	}
	return len(t.slots)
}

// ticketed pairs a validated event with its append ticket for ordering.
type ticketed struct {
	ticket uint64
	e      Event
}

// snapshot returns every validated entry, ordered by append ticket.
// Entries a concurrent writer is mid-way through are skipped.
func (t *Trace) snapshot() []ticketed {
	out := make([]ticketed, 0, len(t.slots))
	for i := range t.slots {
		slot := &t.slots[i]
		s1 := slot.seq.Load()
		if s1 == 0 || s1&1 == 1 {
			continue // empty or write in progress
		}
		var w [4]uint64
		for j := range w {
			w[j] = slot.w[j].Load()
		}
		if slot.seq.Load() != s1 {
			continue // overwritten while reading: discard the torn copy
		}
		out = append(out, ticketed{ticket: s1/2 - 1, e: unpackEvent(w)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ticket < out[b].ticket })
	return out
}

// Events returns the retained events in append order (oldest first). The
// slice is freshly allocated; the ring keeps recording into its own
// storage. Safe to call while appenders run — every returned event is
// sequence-validated.
func (t *Trace) Events() []Event {
	snap := t.snapshot()
	out := make([]Event, 0, len(snap))
	for _, te := range snap {
		out = append(out, te.e)
	}
	return out
}

// EventsFor returns the retained events for one page, oldest first.
func (t *Trace) EventsFor(pid uint64) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.PID == pid {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL writes the retained events as JSON Lines, oldest first. When
// pid is nonzero only that page's events are written. label and shard,
// when set (nonempty / >= 0), are added to every line so traces from
// several shards or experiments can share a file. Returns the number of
// events written.
//
// The schema per line is:
//
//	{"simNs":1234,"pid":7,"frame":3,"event":"load","tier":"nvm","detail":1}
func (t *Trace) WriteJSONL(w io.Writer, label string, shard int, pid uint64) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	for _, e := range t.Events() {
		if pid != 0 && e.PID != pid {
			continue
		}
		bw.WriteByte('{')
		if label != "" {
			fmt.Fprintf(bw, "%q:%q,", "experiment", label)
		}
		if shard >= 0 {
			fmt.Fprintf(bw, "%q:%d,", "shard", shard)
		}
		// Names and strings here contain no characters needing JSON
		// escaping, so the lines are built directly.
		fmt.Fprintf(bw, `"simNs":%d,"pid":%d,"frame":%d,"event":%q,"tier":%q,"detail":%d}`+"\n",
			e.SimNs, e.PID, e.Frame, e.Kind.String(), e.Tier.String(), e.Detail)
		n++
	}
	return n, bw.Flush()
}
