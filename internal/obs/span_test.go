package obs

import (
	"strings"
	"testing"
)

func TestTimelineMarks(t *testing.T) {
	var tl Timeline
	tl.Begin(42, "get", 1000)
	tl.Mark(StageEnqueue, 1100) // 100
	tl.Mark(StageQueue, 1400)   // 300
	tl.Mark(StageExec, 1450)    // 50
	tl.Mark(StageFlush, 2450)   // 1000
	tl.Finish(2500)             // write: 50

	want := [NumStages]int64{100, 300, 50, 1000, 50}
	if tl.Stages != want {
		t.Fatalf("stages = %v, want %v", tl.Stages, want)
	}
	if tl.TotalNs != 1500 {
		t.Fatalf("total = %d, want 1500", tl.TotalNs)
	}
	var sum int64
	for _, v := range tl.Stages {
		sum += v
	}
	if sum != tl.TotalNs {
		t.Fatalf("stage sum %d != total %d", sum, tl.TotalNs)
	}
}

func TestTimelineMarkAccumulates(t *testing.T) {
	var tl Timeline
	tl.Begin(1, "put", 0)
	tl.Mark(StageExec, 10)
	tl.Mark(StageFlush, 30)
	tl.Mark(StageExec, 35) // second exec slice
	tl.Finish(40)
	if tl.Stages[StageExec] != 15 {
		t.Fatalf("exec = %d, want 15", tl.Stages[StageExec])
	}
	if tl.TotalNs != 40 {
		t.Fatalf("total = %d, want 40", tl.TotalNs)
	}
}

// mkSpan builds a finished timeline with the given stage split.
func mkSpan(stages [NumStages]int64) Timeline {
	var tl Timeline
	var total int64
	for _, v := range stages {
		total += v
	}
	tl.Stages = stages
	tl.TotalNs = total
	return tl
}

func TestAttributeSumsExactly(t *testing.T) {
	var spans []Timeline
	for i := 1; i <= 200; i++ {
		spans = append(spans, mkSpan([NumStages]int64{
			int64(i * 7), int64(i * 13), int64(i * 3), int64(i * 31), int64(i * 5),
		}))
	}
	a := Attribute(spans, 0.99)
	if a.Count != 200 {
		t.Fatalf("count = %d", a.Count)
	}
	if a.TailCount == 0 {
		t.Fatal("no tail spans")
	}
	if got := a.SumNs(); got != a.TotalNs {
		t.Fatalf("stage sum %d != quantile total %d", got, a.TotalNs)
	}
	// The synthetic split makes flush the dominant stage.
	if a.Stages[StageFlush] <= a.Stages[StageQueue] {
		t.Fatalf("expected flush-dominated decomposition, got %v", a.Stages)
	}
	// The exact quantile must be one of the observed totals.
	found := false
	for _, s := range spans {
		if s.TotalNs == a.TotalNs {
			found = true
		}
	}
	if !found {
		t.Fatalf("quantile total %d is not an observed span total", a.TotalNs)
	}
}

func TestAttributeEmptyAndDegenerate(t *testing.T) {
	a := Attribute(nil, 0.99)
	if a.Count != 0 || a.TotalNs != 0 || a.SumNs() != 0 {
		t.Fatalf("empty attribution not zero: %+v", a)
	}
	if !strings.Contains(a.Format(), "no samples") {
		t.Fatalf("Format() = %q", a.Format())
	}
	// All-zero totals must not divide by zero.
	z := Attribute([]Timeline{{}, {}}, 0.5)
	if z.SumNs() != z.TotalNs {
		t.Fatalf("degenerate sum mismatch: %+v", z)
	}
}

func TestAttributionFormat(t *testing.T) {
	spans := []Timeline{mkSpan([NumStages]int64{10, 210, 90, 620, 70})}
	a := Attribute(spans, 0.99)
	s := a.Format()
	if !strings.Contains(s, "flush") || !strings.Contains(s, "62% flush") {
		t.Fatalf("Format() = %q, want flush-led decomposition", s)
	}
	// Largest stage first.
	if strings.Index(s, "flush") > strings.Index(s, "queue") {
		t.Fatalf("Format() = %q, not sorted by share", s)
	}
}

func TestTierDeltasSub(t *testing.T) {
	a := TierDeltas{DRAMHits: 10, NVMLineLoads: 5, NVMPageLoads: 2, SSDReads: 1, JournalUndos: 3}
	b := TierDeltas{DRAMHits: 4, NVMLineLoads: 5, SSDReads: 1}
	got := a.Sub(b)
	want := TierDeltas{DRAMHits: 6, NVMPageLoads: 2, JournalUndos: 3}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}

func TestStageString(t *testing.T) {
	if StageFlush.String() != "flush" || Stage(200).String() != "stage?" {
		t.Fatal("Stage.String mismatch")
	}
}
