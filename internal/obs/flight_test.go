package obs

import (
	"sync"
	"testing"
)

func flightSpan(total int64) *Timeline {
	tl := &Timeline{TotalNs: total}
	tl.Stages[StageExec] = total
	return tl
}

func TestFlightRecorderSlowest(t *testing.T) {
	f := NewFlightRecorder(64, 4)
	for i := int64(1); i <= 100; i++ {
		f.Record(flightSpan(i * 1000))
	}
	s := f.Snapshot()
	if s.Sampled != 100 {
		t.Fatalf("Sampled = %d", s.Sampled)
	}
	if len(s.Slowest) != 4 {
		t.Fatalf("len(Slowest) = %d, want 4", len(s.Slowest))
	}
	want := []int64{100000, 99000, 98000, 97000}
	for i, tl := range s.Slowest {
		if tl.TotalNs != want[i] {
			t.Fatalf("Slowest[%d] = %d, want %d", i, tl.TotalNs, want[i])
		}
	}
	if len(s.Sample) != 64 {
		t.Fatalf("len(Sample) = %d, want full reservoir", len(s.Sample))
	}
	if s.P99.Count != len(s.Sample) || s.P99.SumNs() != s.P99.TotalNs {
		t.Fatalf("snapshot attribution inconsistent: %+v", s.P99)
	}
}

func TestFlightRecorderReservoirUniform(t *testing.T) {
	// With many more records than capacity, the reservoir must hold a
	// spread of the whole run, not just the newest records.
	f := NewFlightRecorder(128, 1)
	const n = 100000
	for i := int64(1); i <= n; i++ {
		f.Record(flightSpan(i))
	}
	s := f.Snapshot()
	firstHalf := 0
	for _, tl := range s.Sample {
		if tl.TotalNs <= n/2 {
			firstHalf++
		}
	}
	// Expect ~64 of 128 from the first half; accept any clearly-mixed
	// outcome (a last-wins ring would hold zero).
	if firstHalf < 20 || firstHalf > 108 {
		t.Fatalf("reservoir skewed: %d of %d samples from first half", firstHalf, len(s.Sample))
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 5000; i++ {
				f.Record(flightSpan(int64(w+1)*10 + i%7))
			}
		}(w)
	}
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := f.Snapshot()
			for _, tl := range s.Slowest {
				if tl.TotalNs <= 0 {
					t.Error("invalid slow timeline in snapshot")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	s := f.Snapshot()
	if s.Sampled != 4*5000 {
		t.Fatalf("Sampled = %d, want %d", s.Sampled, 4*5000)
	}
	if len(s.Slowest) != 8 {
		t.Fatalf("len(Slowest) = %d, want 8", len(s.Slowest))
	}
	// The true maximum must be retained.
	if s.Slowest[0].TotalNs != 4*10+6 {
		t.Fatalf("max retained = %d, want %d", s.Slowest[0].TotalNs, 4*10+6)
	}
}
