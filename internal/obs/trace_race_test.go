package obs

import (
	"sync"
	"testing"
)

// selfConsistent builds an event whose fields are all derived from one
// value, so a torn read (fields from two different events) is
// detectable.
func selfConsistent(x uint64) Event {
	return Event{
		SimNs:  int64(x),
		PID:    x,
		Frame:  int32(uint32(x)),
		Kind:   EventKind(x % 11),
		Tier:   Tier(x % 3),
		Detail: uint32(x),
	}
}

// TestTraceTornReads pins the seqlock fix: concurrent wraparound writers
// plus concurrent snapshot readers must never observe a torn entry — an
// event mixing fields from two appends. The ring is kept tiny so every
// append overwrites a live slot.
func TestTraceTornReads(t *testing.T) {
	tr := NewTrace(4)
	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Append(selfConsistent(uint64(w)*perWriter + uint64(i) + 1))
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range tr.Events() {
					x := e.PID
					if e.SimNs != int64(x) || e.Detail != uint32(x) ||
						e.Frame != int32(uint32(x)) || e.Kind != EventKind(x%11) || e.Tier != Tier(x%3) {
						t.Errorf("torn event observed: %+v", e)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := tr.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	// Dropped events (wraparound collisions) are allowed, but everything
	// still retained must be valid and ticket-ordered.
	evs := tr.Events()
	if len(evs) > 4 {
		t.Fatalf("retained %d events, cap 4", len(evs))
	}
	t.Logf("dropped %d of %d appends", tr.Dropped(), tr.Total())
}

// TestTraceDropAccounting checks that a drop is only taken on a genuine
// same-slot collision: a single writer never drops.
func TestTraceDropAccounting(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 100; i++ {
		tr.Append(selfConsistent(uint64(i + 1)))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("single-writer Dropped = %d, want 0", tr.Dropped())
	}
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("retained %d, want 2", got)
	}
}
