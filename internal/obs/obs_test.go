package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count() != 0 {
		t.Fatalf("empty count = %d", s.Count())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %d", got)
	}
	if got := s.Quantile(1); got != 0 {
		t.Fatalf("empty p100 = %d", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty mean = %d", got)
	}
}

func TestHistogramZeroSamples(t *testing.T) {
	// Zero-latency operations (DRAM hits, WAL appends) land in bucket 0
	// and every quantile is exactly zero.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(0)
	}
	s := h.Snapshot()
	if s.Count() != 100 || s.Counts[0] != 100 {
		t.Fatalf("count = %d, bucket0 = %d", s.Count(), s.Counts[0])
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("q%.2f = %d, want 0", q, got)
		}
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// All samples in one bucket: every quantile is the bucket estimate,
	// clamped to the true max.
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(600) // bucket [512, 1024)
	}
	s := h.Snapshot()
	if s.Count() != 1000 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Max != 600 {
		t.Fatalf("max = %d", s.Max)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		// The bucket midpoint (767) exceeds the observed max, so the
		// estimate must clamp to exactly 600.
		if got != 600 {
			t.Fatalf("q%.2f = %d, want 600", q, got)
		}
	}
	if m := s.Mean(); m != 600 {
		t.Fatalf("mean = %d, want 600", m)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 90 fast samples (~100ns) and 10 slow (~1e6ns): p50 must sit in the
	// fast bucket, p99 in the slow one. Power-of-two buckets only give
	// order-of-magnitude positions, so assert bucket membership.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(1_000_000)
	}
	s := h.Snapshot()
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if bucketOf(p50) != bucketOf(100) {
		t.Fatalf("p50 = %d, want in bucket of 100", p50)
	}
	if bucketOf(p99) != bucketOf(1_000_000) {
		t.Fatalf("p99 = %d, want in bucket of 1e6", p99)
	}
	if s.Max != 1_000_000 {
		t.Fatalf("max = %d", s.Max)
	}
	if got := s.Quantile(1); got != 1_000_000 {
		t.Fatalf("p100 = %d, want clamped to max", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Record(100)
	}
	for i := 0; i < 50; i++ {
		b.Record(1_000_000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count() != 100 {
		t.Fatalf("merged count = %d", sa.Count())
	}
	if sa.Max != 1_000_000 {
		t.Fatalf("merged max = %d", sa.Max)
	}
	if sa.Sum != 50*100+50*1_000_000 {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
	// Merging an empty snapshot is a no-op.
	var empty Histogram
	before := sa
	sa.Merge(empty.Snapshot())
	if sa != before {
		t.Fatal("merge of empty snapshot changed the result")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("negative sample not clamped to bucket 0: %v", s.Counts[:2])
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(i%1000 + 1))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count(), goroutines*per)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d", s.Max)
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 1; i <= 10; i++ {
		tr.Append(Event{SimNs: int64(i), PID: uint64(i), Kind: EvLoad})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	ev := tr.Events()
	// The ring must retain exactly the newest 4 events, oldest first.
	want := []int64{7, 8, 9, 10}
	for i, e := range ev {
		if e.SimNs != want[i] {
			t.Fatalf("events[%d].SimNs = %d, want %d (all: %+v)", i, e.SimNs, want[i], ev)
		}
	}
}

func TestTracePartialFill(t *testing.T) {
	tr := NewTrace(8)
	tr.Append(Event{SimNs: 1})
	tr.Append(Event{SimNs: 2})
	if tr.Len() != 2 || tr.Total() != 2 {
		t.Fatalf("len = %d, total = %d", tr.Len(), tr.Total())
	}
	ev := tr.Events()
	if len(ev) != 2 || ev[0].SimNs != 1 || ev[1].SimNs != 2 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestTraceEventsFor(t *testing.T) {
	tr := NewTrace(16)
	tr.Append(Event{PID: 1, Kind: EvLoad})
	tr.Append(Event{PID: 2, Kind: EvLoad})
	tr.Append(Event{PID: 1, Kind: EvEvict})
	got := tr.EventsFor(1)
	if len(got) != 2 || got[0].Kind != EvLoad || got[1].Kind != EvEvict {
		t.Fatalf("EventsFor(1) = %+v", got)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(16)
	tr.Append(Event{SimNs: 100, PID: 7, Frame: 3, Kind: EvLoad, Tier: TierNVM, Detail: 1})
	tr.Append(Event{SimNs: 200, PID: 8, Frame: -1, Kind: EvEvict, Tier: TierDRAM})

	var buf bytes.Buffer
	n, err := tr.WriteJSONL(&buf, "figA1", 2, 0)
	if err != nil || n != 2 {
		t.Fatalf("n = %d, err = %v", n, err)
	}
	// Every line must be valid JSON with the documented fields.
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", lines, err, sc.Text())
		}
		for _, k := range []string{"experiment", "shard", "simNs", "pid", "frame", "event", "tier", "detail"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing %q: %s", lines, k, sc.Text())
			}
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("lines = %d", lines)
	}

	// pid filter.
	buf.Reset()
	n, err = tr.WriteJSONL(&buf, "", -1, 7)
	if err != nil || n != 1 {
		t.Fatalf("filtered n = %d, err = %v", n, err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("filtered line not JSON: %v", err)
	}
	if m["pid"].(float64) != 7 || m["event"].(string) != "load" || m["tier"].(string) != "nvm" {
		t.Fatalf("filtered line = %v", m)
	}
	if _, ok := m["experiment"]; ok {
		t.Fatal("empty label must omit the experiment field")
	}
}

func TestCollectorRows(t *testing.T) {
	c := NewCollector(0)
	c.Latency(OpSSDRead, 50_000)
	c.Latency(OpSSDRead, 60_000)
	c.Latency(OpDRAMHit, 0)
	// Event without a ring must be a safe no-op.
	c.Event(Event{Kind: EvLoad})
	if c.Trace() != nil {
		t.Fatal("traceCap 0 must disable the ring")
	}

	rows := c.Snapshot().Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Rows come in Op declaration order: dram.hit before ssd.read.
	if rows[0].Op != "dram.hit" || rows[0].Count != 1 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[1].Op != "ssd.read" || rows[1].Count != 2 || rows[1].Max != 60_000 {
		t.Fatalf("rows[1] = %+v", rows[1])
	}
}

func TestCollectorSnapshotMerge(t *testing.T) {
	a, b := NewCollector(0), NewCollector(0)
	a.Latency(OpNVMLineLoad, 500)
	b.Latency(OpNVMLineLoad, 700)
	b.Latency(OpWALFlush, 900)
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	sa.Merge(nil) // nil merge is a no-op
	if n := sa.Ops[OpNVMLineLoad].Count(); n != 2 {
		t.Fatalf("merged lineload count = %d", n)
	}
	if n := sa.Ops[OpWALFlush].Count(); n != 1 {
		t.Fatalf("merged walflush count = %d", n)
	}
	if m := sa.Ops[OpNVMLineLoad].Max; m != 700 {
		t.Fatalf("merged max = %d", m)
	}
}

func TestNames(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "" || op.String() == "op?" {
			t.Fatalf("op %d has no name", op)
		}
	}
	kinds := []EventKind{EvAlloc, EvFree, EvLoad, EvLineLoad, EvPromote,
		EvSwizzle, EvUnswizzle, EvWriteback, EvAdmit, EvDeny, EvEvict}
	for _, k := range kinds {
		if k.String() == "" || k.String() == "event?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	for _, tier := range []Tier{TierDRAM, TierNVM, TierSSD} {
		if tier.String() == "tier?" {
			t.Fatalf("tier %d has no name", tier)
		}
	}
}

func TestNopRecorder(t *testing.T) {
	Nop.Latency(OpSSDRead, 100)
	Nop.Event(Event{Kind: EvLoad})
}
