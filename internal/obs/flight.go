package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder retains a bounded view of traced-request timelines: a
// uniform random sample of everything recorded (reservoir sampling, so
// the sample stays representative of the whole run, not just the recent
// past) plus the N slowest requests seen. Record is lock-free on its
// common paths: the reservoir is a ring of atomic pointers, and the
// slowest set is guarded by a mutex that is only taken when a timeline
// actually beats the current cut-off (an atomic fast path skips it
// otherwise).
//
// Timelines handed to Record are published by pointer and must not be
// modified afterwards.
type FlightRecorder struct {
	ring []atomic.Pointer[Timeline]
	n    atomic.Int64 // total timelines ever recorded

	slowN   int
	slowMin atomic.Int64 // smallest TotalNs in the full slow set, else -1
	mu      sync.Mutex
	slow    []*Timeline
}

// NewFlightRecorder returns a recorder keeping a sampleCap-sized uniform
// sample and the slowN slowest timelines (minimums of 1 each).
func NewFlightRecorder(sampleCap, slowN int) *FlightRecorder {
	if sampleCap < 1 {
		sampleCap = 1
	}
	if slowN < 1 {
		slowN = 1
	}
	f := &FlightRecorder{
		ring:  make([]atomic.Pointer[Timeline], sampleCap),
		slowN: slowN,
		slow:  make([]*Timeline, 0, slowN),
	}
	f.slowMin.Store(-1) // slow set not full yet: everything qualifies
	return f
}

// splitmix64 is the SplitMix64 mixer — a cheap, well-distributed hash
// used to derive reservoir randomness from the record counter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Record offers one finished timeline to the recorder. tl must not be
// modified after the call.
func (f *FlightRecorder) Record(tl *Timeline) {
	i := f.n.Add(1) // 1-based count including this record
	cap64 := int64(len(f.ring))
	if i <= cap64 {
		f.ring[i-1].Store(tl)
	} else {
		// Algorithm R: keep with probability cap/i, evicting a uniform
		// victim, so every record is retained with equal probability.
		j := int64(splitmix64(uint64(i)) % uint64(i))
		if j < cap64 {
			f.ring[j].Store(tl)
		}
	}

	if min := f.slowMin.Load(); min >= 0 && tl.TotalNs <= min {
		return // doesn't beat the slowest-set cut-off
	}
	f.mu.Lock()
	if len(f.slow) < f.slowN {
		f.slow = append(f.slow, tl)
	} else {
		minIdx := 0
		for k := 1; k < len(f.slow); k++ {
			if f.slow[k].TotalNs < f.slow[minIdx].TotalNs {
				minIdx = k
			}
		}
		if tl.TotalNs > f.slow[minIdx].TotalNs {
			f.slow[minIdx] = tl
		}
	}
	if len(f.slow) == f.slowN {
		min := f.slow[0].TotalNs
		for k := 1; k < len(f.slow); k++ {
			if f.slow[k].TotalNs < min {
				min = f.slow[k].TotalNs
			}
		}
		f.slowMin.Store(min)
	}
	f.mu.Unlock()
}

// Sampled returns how many timelines were ever recorded.
func (f *FlightRecorder) Sampled() int64 { return f.n.Load() }

// FlightSnapshot is a point-in-time copy of a FlightRecorder: the
// uniform sample, the slowest requests (slowest first), and the p99
// attribution computed over the sample.
type FlightSnapshot struct {
	// Sampled is how many timelines were ever recorded.
	Sampled int64 `json:"sampled"`
	// P99 is the tail-latency decomposition over Sample.
	P99 Attribution `json:"p99"`
	// Slowest holds the slowest retained timelines, slowest first.
	Slowest []Timeline `json:"slowest,omitempty"`
	// Sample is the uniform reservoir sample (unordered).
	Sample []Timeline `json:"sample,omitempty"`
}

// Snapshot copies the recorder's current state. Safe to call while
// Record runs; each returned Timeline is an immutable value copy.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	s := FlightSnapshot{Sampled: f.n.Load()}
	for i := range f.ring {
		if tl := f.ring[i].Load(); tl != nil {
			s.Sample = append(s.Sample, *tl)
		}
	}
	f.mu.Lock()
	for _, tl := range f.slow {
		s.Slowest = append(s.Slowest, *tl)
	}
	f.mu.Unlock()
	sort.Slice(s.Slowest, func(i, j int) bool { return s.Slowest[i].TotalNs > s.Slowest[j].TotalNs })
	s.P99 = Attribute(s.Sample, 0.99)
	return s
}
