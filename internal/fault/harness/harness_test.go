package harness

import (
	"testing"

	"nvmstore/internal/fault"
)

// TestCrashScheduleSweep is the recovery regression suite: it sweeps
// scheduled single-shot faults across every storage tier plus the
// network path and requires zero invariant violations — no acknowledged
// write lost, no aborted write resurfaced, structural invariants intact
// after every recovery.
func TestCrashScheduleSweep(t *testing.T) {
	cfg := Config{Seed: 7}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for k, n := range rep.Opportunities {
		t.Logf("%s: %d opportunities", k, n)
	}
	t.Logf("points=%d crashes=%d recoveries=%d violations=%d",
		rep.Points, rep.Crashes, rep.Recoveries, len(rep.Violations))
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Points < 100 {
		t.Fatalf("swept %d fault points, want >= 100", rep.Points)
	}
	if rep.Crashes == 0 {
		t.Fatal("no scheduled point crashed the store; the sweep exercised nothing")
	}
	if rep.Recoveries != rep.Crashes {
		t.Fatalf("crashes=%d but recoveries=%d", rep.Crashes, rep.Recoveries)
	}
}

// TestSweepDeterminism pins that a sweep is a pure function of its
// seed: same seed, same opportunity counts and crash tally.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	small := Config{Seed: 3, PointsPerKind: 2, NetPoints: -1, Txs: 30,
		Kinds: []fault.Kind{fault.NVMCrash, fault.WALFlushCrash}}
	a, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || a.Crashes != b.Crashes || len(a.Violations) != len(b.Violations) {
		t.Fatalf("non-deterministic sweep: %+v vs %+v", a, b)
	}
	for k, n := range a.Opportunities {
		if b.Opportunities[k] != n {
			t.Fatalf("opportunity count for %s drifted: %d vs %d", k, n, b.Opportunities[k])
		}
	}
}
