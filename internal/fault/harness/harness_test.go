package harness

import (
	"testing"

	"nvmstore/internal/fault"
)

// TestCrashScheduleSweep is the recovery regression suite: it sweeps
// scheduled single-shot faults across every storage tier plus the
// network path and requires zero invariant violations — no acknowledged
// write lost, no aborted write resurfaced, structural invariants intact
// after every recovery.
func TestCrashScheduleSweep(t *testing.T) {
	cfg := Config{Seed: 7}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	for k, n := range rep.Opportunities {
		t.Logf("%s: %d opportunities", k, n)
	}
	t.Logf("points=%d crashes=%d recoveries=%d violations=%d",
		rep.Points, rep.Crashes, rep.Recoveries, len(rep.Violations))
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Points < 100 {
		t.Fatalf("swept %d fault points, want >= 100", rep.Points)
	}
	if rep.Crashes == 0 {
		t.Fatal("no scheduled point crashed the store; the sweep exercised nothing")
	}
	if rep.Recoveries != rep.Crashes {
		t.Fatalf("crashes=%d but recoveries=%d", rep.Crashes, rep.Recoveries)
	}
}

// TestGroupCommitCrashSweep sweeps the same schedule with the workload
// running the group-commit protocol (commit without flush, shared
// log-tail flush every few transactions), including the wal.group crash
// point between a batch's commit records and its coalesced flush. The
// invariant it adds over TestCrashScheduleSweep: transactions committed
// but not yet group-flushed may be lost at a crash, but only as an
// all-or-nothing suffix — survivors form a prefix in commit order, and
// nothing acknowledged by a completed flush is ever lost.
func TestGroupCommitCrashSweep(t *testing.T) {
	cfg := Config{Seed: 11, GroupCommit: true, NetPoints: -1}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if rep.Opportunities[fault.WALGroupCrash] == 0 {
		t.Fatal("the group-commit workload produced no wal.group opportunities; the new flush point was not exercised")
	}
	for k, n := range rep.Opportunities {
		t.Logf("%s: %d opportunities", k, n)
	}
	t.Logf("points=%d crashes=%d recoveries=%d violations=%d",
		rep.Points, rep.Crashes, rep.Recoveries, len(rep.Violations))
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Crashes == 0 {
		t.Fatal("no scheduled point crashed the store; the sweep exercised nothing")
	}
	if rep.Recoveries != rep.Crashes {
		t.Fatalf("crashes=%d but recoveries=%d", rep.Crashes, rep.Recoveries)
	}
}

// TestCkptRoundCrashSweep concentrates the sweep on the ckpt.round
// site: a crash at the start of every scheduled incremental-checkpoint
// round, where some dirty pages are written back and others are not and
// the WAL has not been truncated. The invariant is the fuzzy
// checkpoint's whole claim: recovery from the intact log must
// reconstruct every acknowledged transaction exactly, no matter which
// round the crash interrupts.
func TestCkptRoundCrashSweep(t *testing.T) {
	cfg := Config{Seed: 13, Txs: 240, Kinds: []fault.Kind{fault.CkptRound}, NetPoints: -1}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if rep.Opportunities[fault.CkptRound] == 0 {
		t.Fatal("the workload ran no incremental-checkpoint rounds; the ckpt.round site was not exercised")
	}
	t.Logf("ckpt.round: %d opportunities, points=%d crashes=%d recoveries=%d violations=%d",
		rep.Opportunities[fault.CkptRound], rep.Points, rep.Crashes, rep.Recoveries, len(rep.Violations))
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Crashes == 0 {
		t.Fatal("no scheduled ckpt.round point crashed the store; the sweep exercised nothing")
	}
	if rep.Recoveries != rep.Crashes {
		t.Fatalf("crashes=%d but recoveries=%d", rep.Crashes, rep.Recoveries)
	}
}

// TestSweepDeterminism pins that a sweep is a pure function of its
// seed: same seed, same opportunity counts and crash tally.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	small := Config{Seed: 3, PointsPerKind: 2, NetPoints: -1, Txs: 30,
		Kinds: []fault.Kind{fault.NVMCrash, fault.WALFlushCrash}}
	a, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || a.Crashes != b.Crashes || len(a.Violations) != len(b.Violations) {
		t.Fatalf("non-deterministic sweep: %+v vs %+v", a, b)
	}
	for k, n := range a.Opportunities {
		if b.Opportunities[k] != n {
			t.Fatalf("opportunity count for %s drifted: %d vs %d", k, n, b.Opportunities[k])
		}
	}
}
