// Package harness sweeps a seeded workload across scheduled crash and
// fault points and checks recovery invariants after every one.
//
// It lives in a subpackage of internal/fault because it sits on the
// opposite side of the dependency: internal/fault is imported by the
// devices, while the harness drives the whole assembled store (and, for
// the network tier, a live server and client).
//
// The sweep works in two passes per fault kind. A dry run with an
// empty, armed plan counts the kind's injection *opportunities* — every
// NVM flush, SSD page access, or WAL append the workload performs. The
// live runs then pin one single-shot fault to each of a set of
// opportunity indices spread across that range (Rule{EveryN: k,
// Limit: 1}), so the crash lands at a different, deterministic point of
// the workload every time: mid-persist, mid-eviction, mid-commit.
// After each crash the harness recovers with CrashRestart and checks:
//
//   - the buffer manager's structural invariants hold
//     (Store.CheckInvariants);
//   - every transaction acknowledged before the crash reads back
//     exactly (no lost writes);
//   - no transaction that never committed leaves partial effects —
//     the in-flight transaction is either fully present or fully
//     absent (atomicity at the crash point);
//   - the store keeps serving transactions after recovery, and the
//     final state matches the model.
//
// The network tier is swept the same way with single-shot connection
// drops and partial frames injected into a live server's write path;
// there the invariant is that a retrying client completes the workload
// with nothing lost.
package harness

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/fault"
	"nvmstore/internal/server"
)

// Config parameterizes a sweep. The zero value sweeps the default
// kinds over a small three-tier store.
type Config struct {
	// Arch is the storage architecture under test (default ThreeTier,
	// the only one with all three device tiers).
	Arch nvmstore.Architecture
	// Seed derives the workload and every fault plan (default 1).
	Seed uint64
	// Txs is the number of transactions per run (default 60).
	Txs int
	// Rows bounds the key space (default 96).
	Rows int
	// RowSize is the table's row size in bytes (default 128).
	RowSize int
	// PointsPerKind is how many distinct crash points to schedule per
	// fault kind (default 20, clamped to the opportunity count).
	PointsPerKind int
	// Kinds lists the storage fault kinds to sweep. Defaults to every
	// crash- and error-kind across the NVM, SSD, and WAL tiers (plus
	// the group-flush crash point when GroupCommit is set).
	Kinds []fault.Kind
	// GroupCommit switches the workload to the group-commit protocol:
	// transactions commit without flushing and a shared log-tail flush
	// every GroupEvery transactions makes them durable — the write path
	// the sharded store's group committer and the server's shard
	// workers run. Crashes can then land between a commit record and
	// its group flush (fault.WALGroupCrash), where the invariant
	// changes shape: unflushed committed transactions may be lost, but
	// only as an all-or-nothing suffix — the survivors must form a
	// prefix in commit order, each fully applied.
	GroupCommit bool
	// GroupEvery is the group size under GroupCommit (default 3).
	GroupEvery int
	// NetPoints is how many single-shot network faults to sweep against
	// a live server (default 20; negative skips the network tier).
	NetPoints int
	// Logf, when set, receives per-point progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Txs <= 0 {
		c.Txs = 60
	}
	if c.Rows <= 0 {
		c.Rows = 1024
	}
	if c.RowSize <= 0 {
		c.RowSize = 128
	}
	if c.PointsPerKind <= 0 {
		c.PointsPerKind = 20
	}
	if c.GroupEvery <= 0 {
		c.GroupEvery = 3
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []fault.Kind{
			fault.NVMTornFlush, fault.NVMCrash,
			fault.WALFlushCrash, fault.WALAppendError,
			fault.SSDReadError, fault.SSDWriteError,
			fault.CkptRound,
		}
		if c.GroupCommit {
			c.Kinds = append(c.Kinds, fault.WALGroupCrash)
		}
	}
	if c.NetPoints < 0 {
		c.NetPoints = 0
	} else if c.NetPoints == 0 {
		c.NetPoints = 20
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Report summarizes a sweep.
type Report struct {
	// Opportunities is the dry-run injection-opportunity count per
	// swept kind — the size of each kind's schedule space.
	Opportunities map[fault.Kind]int64
	// Points is the number of distinct scheduled fault points run.
	Points int
	// Crashes is how many of them actually crashed the store (error-
	// kind points surface as failed operations instead).
	Crashes int
	// Recoveries counts successful CrashRestart cycles.
	Recoveries int
	// Violations lists every invariant failure, formatted with its
	// fault kind and crash point. Empty means the sweep passed.
	Violations []string
}

// Run executes the sweep and returns its report. The error is non-nil
// only for harness-level failures (a store that cannot be built); an
// invariant violation is reported in Report.Violations, so callers must
// check both.
func Run(cfg Config) (Report, error) {
	cfg.applyDefaults()
	rep := Report{Opportunities: make(map[fault.Kind]int64)}

	opp, err := dryRun(cfg)
	if err != nil {
		return rep, err
	}
	for _, k := range cfg.Kinds {
		rep.Opportunities[k] = opp.Opportunities(k)
	}

	for _, kind := range cfg.Kinds {
		n := opp.Opportunities(kind)
		if n == 0 {
			cfg.logf("%s: no opportunities on %s, skipped", kind, cfg.Arch)
			continue
		}
		for _, point := range spread(cfg.PointsPerKind, n) {
			rep.Points++
			crashed, err := runPoint(cfg, kind, point)
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s@%d/%d: %v", kind, point, n, err))
				cfg.logf("%s@%d: VIOLATION: %v", kind, point, err)
				continue
			}
			if crashed {
				rep.Crashes++
				rep.Recoveries++
			}
			cfg.logf("%s@%d/%d: ok (crashed=%v)", kind, point, n, crashed)
		}
	}

	if cfg.NetPoints > 0 {
		points, violations, err := runNet(cfg)
		if err != nil {
			return rep, err
		}
		rep.Points += points
		rep.Violations = append(rep.Violations, violations...)
	}
	return rep, nil
}

// openStore builds the store under test: strict persistence (unflushed
// NVM lines vanish on crash), debug checks on, and DRAM/NVM budgets
// deliberately far below the data set so the workload churns through
// every tier — evictions write to SSD and misses read it back, giving
// the SSD fault kinds real injection opportunities. The table is
// pre-populated with the full keyspace and checkpointed before any
// fault is armed, so the sweep starts from a durable baseline.
func openStore(cfg Config) (*nvmstore.Store, *nvmstore.Table, error) {
	st, err := nvmstore.Open(nvmstore.Options{
		Architecture:      cfg.Arch,
		DRAMBytes:         96 << 10,
		NVMBytes:          128 << 10,
		SSDBytes:          64 << 20,
		WALBytes:          4 << 20,
		StrictPersistence: true,
		DebugChecks:       true,
		// The workload appends tens of KB against a 4 MB log; an
		// artificially low soft threshold makes inline pacing run
		// incremental-checkpoint rounds throughout the sweep, giving the
		// ckpt.round crash site real opportunities to land in.
		Maintenance: nvmstore.MaintenanceOptions{SoftFill: 0.001, HardFill: 0.5},
	})
	if err != nil {
		return nil, nil, err
	}
	tab, err := st.CreateTable(1, cfg.RowSize)
	if err != nil {
		return nil, nil, err
	}
	err = tab.BulkLoad(cfg.Rows,
		func(i int) uint64 { return uint64(i) },
		func(i int, dst []byte) { copy(dst, rowFor(cfg, uint64(i), -1)) },
		0.9)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: bulk load: %v", err)
	}
	if err := st.Checkpoint(); err != nil {
		return nil, nil, fmt.Errorf("harness: baseline checkpoint: %v", err)
	}
	return st, tab, nil
}

// dryRun runs the workload fault-free with an armed empty plan and
// returns the per-device opportunity counters.
func dryRun(cfg Config) (fault.Injectors, error) {
	st, tab, err := openStore(cfg)
	if err != nil {
		return fault.Injectors{}, err
	}
	defer st.Close()
	inj := st.InjectFaults(&fault.Plan{Seed: cfg.Seed})
	w := newWorkload(cfg)
	for i := 0; i < cfg.Txs; i++ {
		if crashed, err := w.step(st, tab, i); crashed || err != nil {
			return inj, fmt.Errorf("harness: dry run tx %d failed: crashed=%v err=%v", i, crashed, err)
		}
	}
	return inj, nil
}

// spread picks up to count opportunity indices covering [1, n]: the
// earliest point, the latest, and an even spread between.
func spread(count int, n int64) []int64 {
	if int64(count) > n {
		count = int(n)
	}
	if count <= 1 {
		return []int64{1 + n/2}
	}
	out := make([]int64, 0, count)
	var last int64
	for i := 0; i < count; i++ {
		k := 1 + int64(i)*(n-1)/int64(count-1)
		if k > last {
			out = append(out, k)
			last = k
		}
	}
	return out
}

// runPoint runs the workload with a single-shot fault pinned to the
// point-th opportunity of kind, recovering and checking invariants at
// the crash. It reports whether the fault actually surfaced.
func runPoint(cfg Config, kind fault.Kind, point int64) (crashed bool, err error) {
	st, tab, err := openStore(cfg)
	if err != nil {
		return false, err
	}
	defer st.Close()
	st.InjectFaults(&fault.Plan{Seed: cfg.Seed, Rules: []fault.Rule{
		{Kind: kind, EveryN: point, Limit: 1},
	}})
	w := newWorkload(cfg)
	for i := 0; i < cfg.Txs; i++ {
		hit, err := w.step(st, tab, i)
		if err != nil {
			return crashed, fmt.Errorf("tx %d: %v", i, err)
		}
		if !hit {
			continue
		}
		// The fault surfaced inside transaction i (as a fault.Crash
		// panic or an injected error). Either way the in-memory state
		// is suspect: power-fail and recover.
		crashed = true
		if _, rerr := st.CrashRestart(); rerr != nil {
			return crashed, fmt.Errorf("recovery after tx %d: %v", i, rerr)
		}
		// Recovery rebuilds the trees; pre-crash table handles hold
		// stale swizzled pointers into the lost DRAM frames.
		tab = st.Table(1)
		if ierr := st.CheckInvariants(); ierr != nil {
			return crashed, fmt.Errorf("invariants after tx %d: %v", i, ierr)
		}
		var verr error
		if cfg.GroupCommit {
			verr = w.verifyAfterCrashGroup(tab)
		} else {
			verr = w.verifyAfterCrash(tab)
		}
		if verr != nil {
			return crashed, fmt.Errorf("state after tx %d: %v", i, verr)
		}
	}
	if verr := w.verify(tab); verr != nil {
		return crashed, fmt.Errorf("final state: %v", verr)
	}
	return crashed, nil
}

// ---- the deterministic transactional workload ----

// pendingOp is the net per-key effect of the transaction in flight when
// a crash hit: the committed value before the transaction (nil if
// absent) and the value it was writing (nil for a delete).
type pendingOp struct {
	before []byte
	after  []byte
}

// workload is a deterministic sequence of small read-write transactions
// plus the model of what the store must contain.
type workload struct {
	cfg   Config
	rng   uint64
	model map[uint64][]byte
	// pending is the in-flight transaction's net effect, kept for
	// crash-time divergence accounting; nil outside runTx.
	pending map[uint64]pendingOp
	// staged, under GroupCommit, holds the effects of transactions
	// committed without a flush, in commit order; the group flush
	// folds them into the model.
	staged []map[uint64]pendingOp
	buf    []byte
}

func newWorkload(cfg Config) *workload {
	w := &workload{
		cfg:   cfg,
		rng:   cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		model: make(map[uint64][]byte, cfg.Rows),
		buf:   make([]byte, cfg.RowSize),
	}
	// The model starts as the bulk-loaded baseline (txIdx -1 rows).
	for key := uint64(0); key < uint64(cfg.Rows); key++ {
		w.model[key] = rowFor(cfg, key, -1)
	}
	return w
}

// next is splitmix64, the workload's private deterministic stream.
func (w *workload) next() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	x := w.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rowFor derives the row a given transaction writes to a key.
func rowFor(cfg Config, key uint64, txIdx int) []byte {
	row := make([]byte, cfg.RowSize)
	binary.LittleEndian.PutUint64(row, key)
	binary.LittleEndian.PutUint64(row[8:], uint64(txIdx)+1)
	for i := 16; i < len(row); i++ {
		row[i] = byte(key>>3) + byte(txIdx) + byte(i)
	}
	return row
}

// runTx runs one transaction of 1–3 upserts/deletes. It reports
// hit=true when an injected fault surfaced (crash panic or error); a
// non-nil error is a real, non-injected failure. On a clean commit the
// model absorbs the transaction's effect; on a hit the effect stays in
// w.pending for verifyAfterCrash to resolve.
func (w *workload) runTx(st *nvmstore.Store, tab *nvmstore.Table, txIdx int) (hit bool, err error) {
	w.pending = make(map[uint64]pendingOp)
	nops := 1 + int(w.next()%3)
	type op struct {
		key uint64
		del bool
	}
	ops := make([]op, nops)
	for i := range ops {
		ops[i] = op{key: w.next() % uint64(w.cfg.Rows), del: w.next()%10 < 3}
	}

	defer func() {
		if r := recover(); r != nil {
			if _, ok := fault.AsCrash(r); ok {
				hit, err = true, nil
				return
			}
			panic(r)
		}
	}()

	st.Begin()
	for _, o := range ops {
		p, seen := w.pending[o.key]
		if !seen {
			p.before = w.model[o.key]
		}
		if o.del {
			if _, derr := tab.Delete(o.key); derr != nil {
				if fault.IsInjected(derr) {
					return true, nil
				}
				return false, derr
			}
			p.after = nil
		} else {
			row := rowFor(w.cfg, o.key, txIdx)
			found, uerr := tab.UpdateField(o.key, 0, row)
			if uerr == nil && !found {
				uerr = tab.Insert(o.key, row)
			}
			if uerr != nil {
				if fault.IsInjected(uerr) {
					return true, nil
				}
				return false, uerr
			}
			p.after = row
		}
		w.pending[o.key] = p
	}
	if w.cfg.GroupCommit {
		if cerr := st.CommitNoFlush(); cerr != nil {
			if fault.IsInjected(cerr) {
				return true, nil
			}
			return false, cerr
		}
		// Committed but unflushed: durable only after the group flush.
		w.staged = append(w.staged, w.pending)
		w.pending = nil
		return false, nil
	}
	if cerr := st.Commit(); cerr != nil {
		if fault.IsInjected(cerr) {
			return true, nil
		}
		return false, cerr
	}
	// Committed: fold into the model.
	fold(w.model, w.pending)
	w.pending = nil
	return false, nil
}

// step runs transaction i and, under GroupCommit, the group flush when
// one is due (every GroupEvery transactions and after the last).
func (w *workload) step(st *nvmstore.Store, tab *nvmstore.Table, i int) (hit bool, err error) {
	hit, err = w.runTx(st, tab, i)
	if hit || err != nil || !w.cfg.GroupCommit {
		return hit, err
	}
	if (i+1)%w.cfg.GroupEvery == 0 || i == w.cfg.Txs-1 {
		return w.flushGroup(st)
	}
	return false, nil
}

// flushGroup runs the shared log-tail flush that makes every staged
// transaction durable, reporting an injected fault the way runTx does.
// This is where fault.WALGroupCrash fires: commit records are in the
// log, acks have not been released, the flush is about to start.
func (w *workload) flushGroup(st *nvmstore.Store) (hit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := fault.AsCrash(r); ok {
				hit, err = true, nil
				return
			}
			panic(r)
		}
	}()
	if _, ferr := st.FlushWAL(); ferr != nil {
		if fault.IsInjected(ferr) {
			return true, nil
		}
		return false, ferr
	}
	// The flush landed: every staged transaction is durable.
	for _, p := range w.staged {
		fold(w.model, p)
	}
	w.staged = nil
	return false, nil
}

// fold applies one transaction's net effect to a model.
func fold(model map[uint64][]byte, p map[uint64]pendingOp) {
	for key, op := range p {
		if op.after == nil {
			delete(model, key)
		} else {
			model[key] = op.after
		}
	}
}

// lookup reads a key, distinguishing absent from present.
func (w *workload) lookup(tab *nvmstore.Table, key uint64) ([]byte, bool, error) {
	ok, err := tab.Lookup(key, w.buf)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	return w.buf, true, nil
}

// verify checks that every key outside the pending set reads back
// exactly as the model records (acknowledged writes survive, aborted
// ones never resurface).
func (w *workload) verify(tab *nvmstore.Table) error {
	for key := uint64(0); key < uint64(w.cfg.Rows); key++ {
		if w.pending != nil {
			if _, isPending := w.pending[key]; isPending {
				continue
			}
		}
		got, ok, err := w.lookup(tab, key)
		if err != nil {
			return fmt.Errorf("lookup %d: %v", key, err)
		}
		want, exists := w.model[key]
		switch {
		case exists && !ok:
			return fmt.Errorf("committed key %d lost", key)
		case !exists && ok:
			return fmt.Errorf("key %d resurfaced after delete/abort", key)
		case exists && string(got) != string(want):
			return fmt.Errorf("key %d corrupted (tx tag %d, want %d)",
				key, binary.LittleEndian.Uint64(got[8:]), binary.LittleEndian.Uint64(want[8:]))
		}
	}
	return nil
}

// matches compares the whole keyspace against an explicit model.
func (w *workload) matches(tab *nvmstore.Table, model map[uint64][]byte) error {
	for key := uint64(0); key < uint64(w.cfg.Rows); key++ {
		got, ok, err := w.lookup(tab, key)
		if err != nil {
			return fmt.Errorf("lookup %d: %v", key, err)
		}
		want, exists := model[key]
		switch {
		case exists && !ok:
			return fmt.Errorf("key %d missing", key)
		case !exists && ok:
			return fmt.Errorf("key %d unexpectedly present", key)
		case exists && string(got) != string(want):
			return fmt.Errorf("key %d corrupted (tx tag %d, want %d)",
				key, binary.LittleEndian.Uint64(got[8:]), binary.LittleEndian.Uint64(want[8:]))
		}
	}
	return nil
}

// verifyAfterCrashGroup resolves a crash under group commit. The
// in-flight transaction never survives — its commit record was never
// appended, so recovery undoes it. The staged transactions (committed
// without a flush) may be lost, but only from the tail: the log makes
// commit i durable before commit i+1, so the survivors must be a
// prefix in commit order, each transaction fully applied. The store
// must therefore match the model with some prefix of the staged
// effects folded in; the longest matching prefix becomes the model.
func (w *workload) verifyAfterCrashGroup(tab *nvmstore.Table) error {
	models := make([]map[uint64][]byte, 0, len(w.staged)+1)
	base := make(map[uint64][]byte, len(w.model))
	for key, v := range w.model {
		base[key] = v
	}
	models = append(models, base)
	for _, p := range w.staged {
		prev := models[len(models)-1]
		next := make(map[uint64][]byte, len(prev))
		for key, v := range prev {
			next[key] = v
		}
		fold(next, p)
		models = append(models, next)
	}
	var fullest error
	for k := len(models) - 1; k >= 0; k-- {
		err := w.matches(tab, models[k])
		if err == nil {
			w.model = models[k]
			w.staged, w.pending = nil, nil
			return nil
		}
		if fullest == nil {
			fullest = err
		}
	}
	return fmt.Errorf("no staged-commit prefix matches the store (%d staged); against the full prefix: %v",
		len(w.staged), fullest)
}

// verifyAfterCrash checks the crash-time contract and resolves the
// in-flight transaction: untouched keys must match the model exactly,
// and the pending keys must *all* carry the transaction's after-state
// or *all* its before-state — a mix is an atomicity violation. The
// winning state is folded into the model and the workload continues.
func (w *workload) verifyAfterCrash(tab *nvmstore.Table) error {
	if err := w.verify(tab); err != nil {
		return err
	}
	votesAfter, votesBefore := 0, 0
	for key, p := range w.pending {
		if string(p.before) == string(p.after) {
			continue // uninformative (e.g. delete of an absent key)
		}
		got, ok, err := w.lookup(tab, key)
		if err != nil {
			return fmt.Errorf("lookup pending %d: %v", key, err)
		}
		var cur []byte
		if ok {
			cur = got
		}
		switch {
		case string(cur) == string(p.after):
			votesAfter++
		case string(cur) == string(p.before):
			votesBefore++
		default:
			return fmt.Errorf("pending key %d is neither before- nor after-image", key)
		}
	}
	if votesAfter > 0 && votesBefore > 0 {
		return fmt.Errorf("atomicity violation: in-flight tx partially applied (%d after, %d before)",
			votesAfter, votesBefore)
	}
	if votesAfter > 0 {
		for key, p := range w.pending {
			if p.after == nil {
				delete(w.model, key)
			} else {
				w.model[key] = p.after
			}
		}
	}
	w.pending = nil
	return nil
}

// ---- the network tier ----

// runNet sweeps single-shot connection drops and partial frames against
// a live server, one scheduled point per run, checking that a retrying
// client completes the workload with nothing lost.
func runNet(cfg Config) (points int, violations []string, err error) {
	half := cfg.NetPoints / 2
	kinds := []struct {
		kind fault.Kind
		n    int
	}{
		{fault.NetDrop, cfg.NetPoints - half},
		{fault.NetPartial, half},
	}
	for _, k := range kinds {
		// Responses written ≈ ops issued; spread the single shot over
		// the workload's response stream.
		ops := int64(2 * cfg.Rows)
		for _, point := range spread(k.n, ops) {
			points++
			if verr := runNetPoint(cfg, k.kind, point); verr != nil {
				violations = append(violations, fmt.Sprintf("%s@%d: %v", k.kind, point, verr))
				cfg.logf("%s@%d: VIOLATION: %v", k.kind, point, verr)
			} else {
				cfg.logf("%s@%d/%d: ok", k.kind, point, ops)
			}
		}
	}
	return points, violations, nil
}

// runNetPoint serves a store, injects one network fault at the given
// response index, and drives the keyspace through a retrying client.
func runNetPoint(cfg Config, kind fault.Kind, point int64) error {
	store, err := nvmstore.OpenSharded(2, nvmstore.Options{
		Architecture: cfg.Arch,
		DRAMBytes:    4 << 20,
		NVMBytes:     16 << 20,
		SSDBytes:     64 << 20,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	if _, err := store.CreateTable(1, cfg.RowSize); err != nil {
		return err
	}
	plan := &fault.Plan{Seed: cfg.Seed, Rules: []fault.Rule{{Kind: kind, EveryN: point, Limit: 1}}}
	srv := server.New(store, server.Options{Faults: plan.Injector(0)})
	errc := make(chan error, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { errc <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-errc
	}()

	cl, err := client.Dial(ln.Addr().String(), client.Options{
		Conns: 2, Retries: 8, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	for key := uint64(0); key < uint64(cfg.Rows); key++ {
		if err := cl.Put(1, key, rowFor(cfg, key, int(point))); err != nil {
			return fmt.Errorf("put %d: %v", key, err)
		}
	}
	for key := uint64(0); key < uint64(cfg.Rows); key++ {
		got, ok, err := cl.Get(1, key)
		if err != nil {
			return fmt.Errorf("get %d: %v", key, err)
		}
		if !ok {
			return fmt.Errorf("acked key %d lost", key)
		}
		want := rowFor(cfg, key, int(point))
		if string(got[:16]) != string(want[:16]) {
			return fmt.Errorf("key %d corrupted", key)
		}
	}
	return nil
}
