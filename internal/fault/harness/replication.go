package harness

// The replication sweep: scheduled crash, network, and promote points
// against a live primary→replica pair (internal/repl over the wire
// protocol), one point per run, each on fresh stores.
//
// Three axes share one invariant — zero acknowledged-write loss:
//
//   - crash points pin a single-shot WAL-flush crash to the replica's
//     k-th flush (live apply or snapshot bootstrap), so the apply loop
//     power-fails mid-item; the replica must recover, resubscribe from
//     its durable applied LSN, and converge to the primary's state;
//   - network points pin a connection drop or a torn frame to the
//     primary server's k-th response write — the shared write path of
//     client replies *and* replication push frames, so the shot can
//     land on the feed as a torn batch; a retrying client must complete
//     the workload and the replica must reconnect and converge;
//   - promote points fail over after the k-th acknowledged write: the
//     replica is promoted to a new epoch, the old primary fenced, and
//     every acked write must read back from the promoted store before
//     the workload finishes against the new primary. The old primary
//     must reject further writes with the FENCED-classified error and
//     the unpromoted replica must have rejected them as READONLY.
//
// Every schedule is a pure function of the config: write→shard routing
// is the deterministic shard hash, semi-synchronous replication
// (SyncReplicas: 1) forces at least one replica WAL flush per
// acknowledged write, and spread() picks the same opportunity indices
// every run — so the same seed yields the same report.

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"nvmstore"
	"nvmstore/internal/client"
	"nvmstore/internal/fault"
	"nvmstore/internal/repl"
	"nvmstore/internal/server"
	"nvmstore/internal/shard"
	"nvmstore/internal/wire"
)

// ReplicationConfig parameterizes a replication sweep. The zero value
// schedules at least MinPoints (default 100) points.
type ReplicationConfig struct {
	// Seed derives the workload payloads and every fault plan
	// (default 1).
	Seed uint64
	// Writes is the number of acknowledged writes per point
	// (default 64).
	Writes int
	// Rows bounds the key space; Writes cycle through it so every key
	// is overwritten at least once (default 32).
	Rows int
	// RowSize is the table's row size in bytes (default 64).
	RowSize int
	// CrashPoints is how many crash points to schedule per crash axis —
	// live apply and snapshot bootstrap (default 20, clamped to the
	// per-shard write floor that guarantees the shot fires).
	CrashPoints int
	// NetPoints is the total network points, split between connection
	// drops and torn frames (default 40).
	NetPoints int
	// PromotePoints is how many failover points to schedule across the
	// write sequence (default 30, grown as needed to reach MinPoints).
	PromotePoints int
	// MinPoints is the sweep's floor on total scheduled points
	// (default 100): promote points are topped up to meet it.
	MinPoints int
	// Logf, when set, receives per-point progress lines.
	Logf func(format string, args ...any)
}

func (c *ReplicationConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Writes <= 0 {
		c.Writes = 64
	}
	if c.Rows <= 0 {
		c.Rows = 32
	}
	if c.RowSize <= 0 {
		c.RowSize = 64
	}
	if c.CrashPoints <= 0 {
		c.CrashPoints = 20
	}
	if c.NetPoints <= 0 {
		c.NetPoints = 40
	}
	if c.PromotePoints <= 0 {
		c.PromotePoints = 30
	}
	if c.MinPoints <= 0 {
		c.MinPoints = 100
	}
}

func (c *ReplicationConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

const (
	replShards = 2
	replTable  = 1
)

// replKey maps the i-th write to its key: the workload cycles the key
// space so every key is overwritten.
func replKey(cfg ReplicationConfig, i int) uint64 { return uint64(i % cfg.Rows) }

// replRow builds the i-th write's payload — seed- and sequence-tagged
// so a lost or stale version is detected by content, not just presence.
func replRow(cfg ReplicationConfig, i int) []byte {
	row := make([]byte, cfg.RowSize)
	key := replKey(cfg, i)
	mix := cfg.Seed*0x9e3779b97f4a7c15 + uint64(i)
	for j := range row {
		row[j] = byte(mix >> (8 * (j % 8)))
	}
	row[0], row[1] = byte(key), byte(key>>8)
	return row
}

// minWritesPerShard is the write-count floor across shards — the range
// a replica-side flush schedule may safely cover: under semi-sync every
// acknowledged write forces at least one replica WAL flush on its
// shard, so any point up to this floor is guaranteed to fire.
func minWritesPerShard(cfg ReplicationConfig) int64 {
	per := make([]int64, replShards)
	for i := 0; i < cfg.Writes; i++ {
		per[shard.Of(replKey(cfg, i), replShards)]++
	}
	min := per[0]
	for _, n := range per[1:] {
		if n < min {
			min = n
		}
	}
	return min
}

// RunReplication executes the replication sweep and returns its report.
// Like Run, the error covers only harness-level failures; invariant
// violations land in Report.Violations. Report.Crashes counts crash
// points whose scheduled fault surfaced on the replica, and Recoveries
// those that then converged back to the primary's state.
func RunReplication(cfg ReplicationConfig) (Report, error) {
	cfg.applyDefaults()
	rep := Report{Opportunities: make(map[fault.Kind]int64)}

	floor := minWritesPerShard(cfg)
	livePoints := spread(cfg.CrashPoints, floor)
	// Bootstrap adds the snapshot's own flushes (durable meta wipe +
	// final chunk) ahead of the live writes' flushes.
	bootPoints := spread(cfg.CrashPoints, floor+2)
	half := cfg.NetPoints / 2
	netSpan := int64(2 * cfg.Writes)
	dropPoints := spread(cfg.NetPoints-half, netSpan)
	partialPoints := spread(half, netSpan)
	fixed := len(livePoints) + len(bootPoints) + len(dropPoints) + len(partialPoints)
	promoteN := cfg.PromotePoints
	if need := cfg.MinPoints - fixed; need > promoteN {
		promoteN = need
	}
	promotePoints := spread(promoteN, int64(cfg.Writes))

	rep.Opportunities[fault.WALFlushCrash] = floor + 2
	rep.Opportunities[fault.NetDrop] = netSpan
	rep.Opportunities[fault.NetPartial] = netSpan

	axes := []replAxis{
		{"repl.crash.live", livePoints, false, true, fault.WALFlushCrash},
		{"repl.crash.boot", bootPoints, true, true, fault.WALFlushCrash},
		{"repl.net.drop", dropPoints, false, false, fault.NetDrop},
		{"repl.net.partial", partialPoints, false, false, fault.NetPartial},
	}
	for _, a := range axes {
		for _, point := range a.points {
			rep.Points++
			crashed, err := runReplPoint(cfg, a, point)
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s@%d: %v", a.name, point, err))
				cfg.logf("%s@%d: VIOLATION: %v", a.name, point, err)
				continue
			}
			if crashed {
				rep.Crashes++
				rep.Recoveries++
			}
			cfg.logf("%s@%d: ok (crashed=%v)", a.name, point, crashed)
		}
	}
	for _, point := range promotePoints {
		rep.Points++
		if err := runPromotePoint(cfg, point); err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("repl.promote@%d: %v", point, err))
			cfg.logf("repl.promote@%d: VIOLATION: %v", point, err)
			continue
		}
		cfg.logf("repl.promote@%d/%d: ok", point, cfg.Writes)
	}
	return rep, nil
}

// replAxis is one sweep dimension: its scheduled points and how each
// point's single shot is armed.
type replAxis struct {
	name      string
	points    []int64
	bootstrap bool
	crash     bool
	kind      fault.Kind
}

// replPair is one point's primary/replica topology.
type replPair struct {
	pstore, rstore *nvmstore.ShardedStore
	src            *repl.Source
	rp             *repl.Replica
	psrv, rsrv     *server.Server
	paddr, raddr   string
	cleanup        []func()
}

func (p *replPair) close() {
	for i := len(p.cleanup) - 1; i >= 0; i-- {
		p.cleanup[i]()
	}
}

func openReplStore(cfg ReplicationConfig) (*nvmstore.ShardedStore, error) {
	st, err := nvmstore.OpenSharded(replShards, nvmstore.Options{
		Architecture: nvmstore.ThreeTier,
		DRAMBytes:    4 << 20,
		NVMBytes:     16 << 20,
		SSDBytes:     64 << 20,
	})
	if err != nil {
		return nil, err
	}
	if _, err := st.CreateTable(replTable, cfg.RowSize); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// startReplPair builds a fault-free semi-synchronous primary→replica
// pair with both ends served — the promote axis topology, where the
// replica must answer PROMOTE and then serve writes over the wire.
func startReplPair(cfg ReplicationConfig) (*replPair, error) {
	p := &replPair{}
	ok := false
	defer func() {
		if !ok {
			p.close()
		}
	}()

	var err error
	if p.pstore, err = openReplStore(cfg); err != nil {
		return nil, err
	}
	p.cleanup = append(p.cleanup, func() { p.pstore.Close() })
	p.src = repl.NewSource(p.pstore, repl.SourceOptions{
		SyncReplicas: 1,
		SyncTimeout:  2 * time.Second,
	})
	p.psrv = server.New(p.pstore, server.Options{Repl: p.src})
	if p.paddr, err = serveRepl(p, p.psrv); err != nil {
		return nil, err
	}

	if p.rstore, err = openReplStore(cfg); err != nil {
		return nil, err
	}
	p.cleanup = append(p.cleanup, func() { p.rstore.Close() })
	if p.rp, err = repl.NewReplica(p.rstore, repl.ReplicaOptions{
		Primary: p.paddr,
		Backoff: 10 * time.Millisecond,
	}); err != nil {
		return nil, err
	}
	p.cleanup = append(p.cleanup, p.rp.Close)
	p.rsrv = server.New(p.rstore, server.Options{
		Replica: p.rp,
		Repl:    repl.NewSource(p.rstore, repl.SourceOptions{}),
	})
	if p.raddr, err = serveRepl(p, p.rsrv); err != nil {
		return nil, err
	}
	ok = true
	return p, nil
}

func serveRepl(p *replPair, srv *server.Server) (string, error) {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; ; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		if i > 2000 {
			return "", fmt.Errorf("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	p.cleanup = append(p.cleanup, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-errc
	})
	return addr, nil
}

func dialRepl(p *replPair, addr string) (*client.Client, error) {
	cl, err := client.Dial(addr, client.Options{
		Conns: 2, Retries: 8, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	p.cleanup = append(p.cleanup, func() { cl.Close() })
	return cl, nil
}

// durableLSNs reads a sharded store's per-shard durable WAL positions.
func durableLSNs(st *nvmstore.ShardedStore) []uint64 {
	lsns := make([]uint64, st.NumShards())
	for i := range lsns {
		i := i
		_ = st.WithShard(i, func(s *nvmstore.Store) error {
			lsns[i] = s.DurableLSN()
			return nil
		})
	}
	return lsns
}

// checkReplState verifies a store holds exactly the model: every acked
// version present byte-for-byte, nothing extra, and the buffer
// manager's structural invariants intact on every shard.
func checkReplState(st *nvmstore.ShardedStore, model map[uint64][]byte, rowSize int) error {
	got := make(map[uint64][]byte)
	tab := st.Table(replTable)
	err := tab.Scan(0, 1<<62, 0, rowSize, func(key uint64, row []byte) bool {
		got[key] = append([]byte(nil), row...)
		return true
	})
	if err != nil {
		return fmt.Errorf("scan: %v", err)
	}
	for key, want := range model {
		cur, ok := got[key]
		if !ok {
			return fmt.Errorf("acked key %d lost", key)
		}
		if !bytes.Equal(cur, want) {
			return fmt.Errorf("key %d holds a stale or corrupt version", key)
		}
	}
	if len(got) != len(model) {
		return fmt.Errorf("store holds %d rows, model %d", len(got), len(model))
	}
	for i := 0; i < st.NumShards(); i++ {
		err := st.WithShard(i, func(s *nvmstore.Store) error { return s.CheckInvariants() })
		if err != nil {
			return fmt.Errorf("shard %d invariants: %v", i, err)
		}
	}
	return nil
}

// runReplPoint runs one crash or network point: drive the full write
// sequence through a retrying client against the primary, then require
// the replica to converge and match the model exactly.
func runReplPoint(cfg ReplicationConfig, a replAxis, point int64) (crashed bool, err error) {
	var netInj *fault.Injector
	var plan *fault.Plan
	if a.crash {
		plan = &fault.Plan{Seed: cfg.Seed, Rules: []fault.Rule{
			{Kind: a.kind, EveryN: point, Limit: 1},
		}}
	} else {
		netInj = (&fault.Plan{Seed: cfg.Seed, Rules: []fault.Rule{
			{Kind: a.kind, EveryN: point, Limit: 1},
		}}).Injector(0)
	}

	// The bootstrap axis preloads the primary before the replica ever
	// attaches, forcing the snapshot path; preloaded rows join the
	// model and are overwritten like any other.
	model := make(map[uint64][]byte)
	p := &replPair{}
	if p.pstore, err = openReplStore(cfg); err != nil {
		return false, err
	}
	defer p.close()
	p.cleanup = append(p.cleanup, func() { p.pstore.Close() })
	if a.bootstrap {
		tab := p.pstore.Table(replTable)
		for key := uint64(0); key < uint64(cfg.Rows); key++ {
			row := replRow(cfg, int(key))
			if err := tab.Put(key, row); err != nil {
				return false, fmt.Errorf("preload %d: %v", key, err)
			}
			model[key] = row
		}
	}
	p.src = repl.NewSource(p.pstore, repl.SourceOptions{
		SyncReplicas: 1, SyncTimeout: 2 * time.Second,
	})
	p.psrv = server.New(p.pstore, server.Options{Repl: p.src, Faults: netInj})
	if p.paddr, err = serveRepl(p, p.psrv); err != nil {
		return false, err
	}
	if p.rstore, err = openReplStore(cfg); err != nil {
		return false, err
	}
	p.cleanup = append(p.cleanup, func() { p.rstore.Close() })
	if plan != nil {
		p.rstore.InjectFaults(plan)
	}
	if p.rp, err = repl.NewReplica(p.rstore, repl.ReplicaOptions{
		Primary: p.paddr, Backoff: 10 * time.Millisecond,
	}); err != nil {
		return false, err
	}
	p.cleanup = append(p.cleanup, p.rp.Close)

	cl, err := dialRepl(p, p.paddr)
	if err != nil {
		return false, err
	}
	for i := 0; i < cfg.Writes; i++ {
		key, row := replKey(cfg, i), replRow(cfg, i)
		if err := cl.Put(replTable, key, row); err != nil {
			return false, fmt.Errorf("put %d: %v", i, err)
		}
		model[key] = row
	}

	// Every write above was acknowledged; the replica must catch up to
	// the primary's durable positions and hold exactly the model.
	if err := p.rp.WaitLSN(durableLSNs(p.pstore), 20*time.Second); err != nil {
		return false, fmt.Errorf("replica never converged: %v", err)
	}
	crashed = p.rp.Stats().ApplyCrashes > 0
	if err := checkReplState(p.pstore, model, cfg.RowSize); err != nil {
		return crashed, fmt.Errorf("primary: %v", err)
	}
	if err := checkReplState(p.rstore, model, cfg.RowSize); err != nil {
		return crashed, fmt.Errorf("replica: %v", err)
	}
	if a.crash && !crashed {
		return false, fmt.Errorf("scheduled replica crash never fired")
	}
	return crashed, nil
}

// runPromotePoint fails over after `point` acknowledged writes and
// verifies the promoted replica serves every one of them, the old
// primary is fenced with the classified error, and the rest of the
// workload lands on the new primary.
func runPromotePoint(cfg ReplicationConfig, point int64) error {
	p, err := startReplPair(cfg)
	if err != nil {
		return err
	}
	defer p.close()
	pcl, err := dialRepl(p, p.paddr)
	if err != nil {
		return err
	}
	rcl, err := dialRepl(p, p.raddr)
	if err != nil {
		return err
	}

	// Before promotion the replica must reject writes as READONLY.
	if err := rcl.Put(replTable, 0, replRow(cfg, 0)); !client.IsReadOnly(err) {
		return fmt.Errorf("unpromoted replica accepted a write (err=%v)", err)
	}

	model := make(map[uint64][]byte)
	for i := 0; i < int(point); i++ {
		key, row := replKey(cfg, i), replRow(cfg, i)
		if err := pcl.Put(replTable, key, row); err != nil {
			return fmt.Errorf("put %d: %v", i, err)
		}
		model[key] = row
	}

	// Fail over: promote the replica to epoch 2, then fence the old
	// primary so it rejects every later write.
	applied, err := rcl.Promote(2)
	if err != nil {
		return fmt.Errorf("promote replica: %v", err)
	}
	if len(applied) != replShards {
		return fmt.Errorf("promote returned %d applied LSNs, want %d", len(applied), replShards)
	}
	if _, err := pcl.Promote(2); err != nil {
		return fmt.Errorf("fence old primary: %v", err)
	}

	// The promoted replica holds the acked prefix — semi-sync made
	// every acknowledged write durable there before its ack.
	if err := checkReplState(p.rstore, model, cfg.RowSize); err != nil {
		return fmt.Errorf("promoted replica vs acked prefix: %v", err)
	}

	// A client still pointed at the old primary gets the classified
	// fencing error and fails over; the remaining writes land on the
	// new primary.
	cur := pcl
	for i := int(point); i < cfg.Writes; i++ {
		key, row := replKey(cfg, i), replRow(cfg, i)
		err := cur.Put(replTable, key, row)
		if client.IsFenced(err) {
			cur = rcl
			err = cur.Put(replTable, key, row)
		}
		if err != nil {
			return fmt.Errorf("failover put %d: %v", i, err)
		}
		model[key] = row
	}
	if int(point) < cfg.Writes && cur != rcl {
		return fmt.Errorf("old primary accepted writes after fencing")
	}
	if err := checkReplState(p.rstore, model, cfg.RowSize); err != nil {
		return fmt.Errorf("new primary after failover: %v", err)
	}
	// The new primary reports its role and epoch.
	doc, err := rcl.ReplLSNs()
	if err != nil {
		return fmt.Errorf("repl lsns on new primary: %v", err)
	}
	if doc.Epoch != 2 || doc.Role != wire.RolePrimary {
		return fmt.Errorf("new primary reports epoch=%d role=%d, want epoch=2 role=primary", doc.Epoch, doc.Role)
	}
	return nil
}
