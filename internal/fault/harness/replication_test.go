package harness

import (
	"fmt"
	"testing"
)

// TestReplicationCrashPromoteSweep is the replication regression suite:
// >= 100 scheduled crash, torn-batch, and promote points against a live
// primary→replica pair, requiring zero acknowledged-write losses — the
// replica converges to the primary after every injected apply crash and
// every severed or torn feed, and a promoted replica serves the full
// acked prefix while the fenced primary rejects writes with the
// classified error.
func TestReplicationCrashPromoteSweep(t *testing.T) {
	cfg := ReplicationConfig{Seed: 13}
	if testing.Short() {
		cfg.CrashPoints, cfg.NetPoints, cfg.PromotePoints, cfg.MinPoints = 4, 8, 6, 1
	}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	rep, err := RunReplication(cfg)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	t.Logf("points=%d crashes=%d recoveries=%d violations=%d",
		rep.Points, rep.Crashes, rep.Recoveries, len(rep.Violations))
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if !testing.Short() && rep.Points < 100 {
		t.Fatalf("swept %d replication points, want >= 100", rep.Points)
	}
	if rep.Crashes == 0 {
		t.Fatal("no scheduled point crashed the replica; the sweep exercised nothing")
	}
	if rep.Recoveries != rep.Crashes {
		t.Fatalf("crashes=%d but recoveries=%d", rep.Crashes, rep.Recoveries)
	}
}

// TestReplicationSweepDeterminism pins that the replication sweep is a
// pure function of its seed: two runs with the same config produce the
// same schedule, crash tally, and (empty) violation list.
func TestReplicationSweepDeterminism(t *testing.T) {
	cfg := ReplicationConfig{Seed: 17, CrashPoints: 3, NetPoints: 4, PromotePoints: 3, MinPoints: 1}
	var got [2]string
	for i := range got {
		rep, err := RunReplication(cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got[i] = fmt.Sprintf("points=%d crashes=%d recoveries=%d violations=%v opp=%v",
			rep.Points, rep.Crashes, rep.Recoveries, rep.Violations, rep.Opportunities)
	}
	if got[0] != got[1] {
		t.Fatalf("sweep not deterministic:\n run 1: %s\n run 2: %s", got[0], got[1])
	}
}
