package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestEveryNExact pins the deterministic schedule: an every=N rule fires
// on exactly the Nth, 2Nth, ... opportunities.
func TestEveryNExact(t *testing.T) {
	p := &Plan{Seed: 7, Rules: []Rule{{Kind: SSDReadError, EveryN: 3, Transient: 2}}}
	in := p.Injector(0)
	for i := 1; i <= 12; i++ {
		d := in.Check(SSDReadError)
		if want := i%3 == 0; d.Fire != want {
			t.Fatalf("opportunity %d: Fire=%v, want %v", i, d.Fire, want)
		}
		if d.Fire && d.Transient != 2 {
			t.Fatalf("opportunity %d: Transient=%d, want 2", i, d.Transient)
		}
	}
	if got := in.Opportunities(SSDReadError); got != 12 {
		t.Fatalf("Opportunities=%d, want 12", got)
	}
	if got := in.Fired(SSDReadError); got != 4 {
		t.Fatalf("Fired=%d, want 4", got)
	}
}

// TestLimit pins that limit=1 yields exactly one injection — the crash
// schedule's "crash at point k and only point k" contract.
func TestLimit(t *testing.T) {
	p := &Plan{Seed: 7, Rules: []Rule{{Kind: NVMTornFlush, EveryN: 5, Limit: 1}}}
	in := p.Injector(0)
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Check(NVMTornFlush).Fire {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1", fired)
	}
	if got := in.Fired(NVMTornFlush); got != 1 {
		t.Fatalf("Fired=%d, want 1", got)
	}
}

// TestProbabilityDeterminism: two injectors from equal plans make
// identical draws; a different site makes an independent stream.
func TestProbabilityDeterminism(t *testing.T) {
	mk := func(site uint64) *Injector {
		return (&Plan{Seed: 42, Rules: []Rule{{Kind: SSDWriteError, Prob: 0.3, Transient: 1}}}).Injector(site)
	}
	a, b, other := mk(1), mk(1), mk(2)
	same, diff := true, false
	fired := 0
	for i := 0; i < 200; i++ {
		da, db, dc := a.Check(SSDWriteError), b.Check(SSDWriteError), other.Check(SSDWriteError)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
		if da.Fire {
			fired++
		}
	}
	if !same {
		t.Fatal("equal plans at equal sites diverged")
	}
	if !diff {
		t.Fatal("different sites produced identical streams")
	}
	// 0.3 over 200 draws: anything wildly off means the hash is broken.
	if fired < 30 || fired > 90 {
		t.Fatalf("p=0.3 fired %d/200 times", fired)
	}
}

// TestProbabilityRate sanity-checks the unit draw's uniformity at a
// small p over many draws.
func TestProbabilityRate(t *testing.T) {
	in := (&Plan{Seed: 9, Rules: []Rule{{Kind: NetDrop, Prob: 0.01}}}).Injector(3)
	fired := 0
	for i := 0; i < 100000; i++ {
		if in.Check(NetDrop).Fire {
			fired++
		}
	}
	if fired < 700 || fired > 1300 {
		t.Fatalf("p=0.01 fired %d/100000 times", fired)
	}
}

// TestNilSafety: a nil plan and nil injector are inert everywhere.
func TestNilSafety(t *testing.T) {
	var p *Plan
	in := p.Injector(0)
	if in != nil {
		t.Fatal("nil plan produced a non-nil injector")
	}
	if d := in.Check(SSDReadError); d.Fire {
		t.Fatal("nil injector fired")
	}
	if in.Opportunities(SSDReadError) != 0 || in.Fired(SSDReadError) != 0 || in.FiredTotal() != 0 {
		t.Fatal("nil injector counted")
	}
	if p.String() != "" {
		t.Fatal("nil plan stringified")
	}
	if in.Summary() != "no faults armed" {
		t.Fatalf("nil summary: %q", in.Summary())
	}
}

// TestParseSpecRoundTrip: ParseSpec(p.String()) reproduces the rules.
func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed:99;ssd.read:p=0.01,transient=2;ssd.stall:p=0.005,stall=2ms;nvm.torn:every=500,limit=1;wal.append:p=0.001"
	p, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 {
		t.Fatalf("Seed=%d, want 99", p.Seed)
	}
	want := []Rule{
		{Kind: SSDReadError, Prob: 0.01, Transient: 2},
		{Kind: SSDStall, Prob: 0.005, Stall: 2 * time.Millisecond},
		{Kind: NVMTornFlush, EveryN: 500, Limit: 1},
		{Kind: WALAppendError, Prob: 0.001},
	}
	if len(p.Rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(p.Rules), len(want))
	}
	for i, r := range p.Rules {
		if r != want[i] {
			t.Fatalf("rule %d: got %+v, want %+v", i, r, want[i])
		}
	}
	p2, err := ParseSpec(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	for i, r := range p2.Rules {
		if r != want[i] {
			t.Fatalf("round-trip rule %d: got %+v, want %+v", i, r, want[i])
		}
	}
}

// TestParseSpecErrors: malformed specs are rejected with an error, not
// silently ignored.
func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus.kind:p=0.5",      // unknown kind
		"ssd.read",              // missing params
		"ssd.read:p",            // param without value
		"ssd.read:p=1.5",        // probability out of range
		"ssd.read:every=-1",     // non-positive period
		"ssd.read:volume=11",    // unknown parameter
		"ssd.read:transient=2",  // neither every nor p
		"seed:notanumber",       // bad seed
		"ssd.read:stall=fast",   // bad duration
		"ssd.read:p=0.1,p=zero", // bad float
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
	// Empty entries are tolerated (trailing semicolons).
	if p, err := ParseSpec("ssd.read:p=0.5;;"); err != nil || len(p.Rules) != 1 {
		t.Fatalf("trailing semicolons: %v, %+v", err, p)
	}
}

// TestKindNames: every kind has a distinct spec name that parses back.
func TestKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
		got, err := ParseKind(name)
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, got, err, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

// TestClassify pins the retry classification: transient injections are
// retryable, permanent injections and unknown errors are fatal.
func TestClassify(t *testing.T) {
	transient := &Error{Kind: SSDReadError, Site: "ssd.read", Attempt: 1}
	permanent := &Error{Kind: SSDReadError, Site: "ssd.read", Attempt: 1, Permanent: true}
	if Classify(transient) != ClassTransient {
		t.Fatal("transient injection classified fatal")
	}
	if Classify(permanent) != ClassFatal {
		t.Fatal("permanent injection classified transient")
	}
	if Classify(fmt.Errorf("wrapped: %w", transient)) != ClassTransient {
		t.Fatal("wrapped transient injection classified fatal")
	}
	if Classify(errors.New("mystery")) != ClassFatal {
		t.Fatal("unknown error classified transient")
	}
	if !IsInjected(transient) || !IsInjected(fmt.Errorf("w: %w", permanent)) {
		t.Fatal("IsInjected missed an injected error")
	}
	if IsInjected(errors.New("real bug")) {
		t.Fatal("IsInjected claimed a real error")
	}
	if c, ok := AsCrash(Crash{Kind: NVMTornFlush, Site: "nvm.flush"}); !ok || c.Kind != NVMTornFlush {
		t.Fatal("AsCrash missed a crash")
	}
	if _, ok := AsCrash("some other panic"); ok {
		t.Fatal("AsCrash claimed a foreign panic")
	}
}

// TestFracRange: torn-flush fractions stay in [0, 1) and vary.
func TestFracRange(t *testing.T) {
	in := (&Plan{Seed: 5, Rules: []Rule{{Kind: NVMTornFlush, Prob: 1}}}).Injector(0)
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		d := in.Check(NVMTornFlush)
		if !d.Fire {
			t.Fatal("p=1 rule did not fire")
		}
		if d.Frac < 0 || d.Frac >= 1 {
			t.Fatalf("Frac=%v out of [0,1)", d.Frac)
		}
		seen[d.Frac] = true
	}
	if len(seen) < 50 {
		t.Fatalf("Frac only took %d distinct values in 100 draws", len(seen))
	}
}

// TestConcurrentCheck exercises the atomic counters under the race
// detector and pins that total fired counts respect Limit.
func TestConcurrentCheck(t *testing.T) {
	in := (&Plan{Seed: 1, Rules: []Rule{
		{Kind: SSDReadError, EveryN: 2, Limit: 10, Transient: 1},
	}}).Injector(0)
	done := make(chan int64, 4)
	for g := 0; g < 4; g++ {
		go func() {
			var fired int64
			for i := 0; i < 1000; i++ {
				if in.Check(SSDReadError).Fire {
					fired++
				}
			}
			done <- fired
		}()
	}
	var total int64
	for g := 0; g < 4; g++ {
		total += <-done
	}
	if total != 10 {
		t.Fatalf("fired %d times across goroutines, want Limit=10", total)
	}
	if got := in.Fired(SSDReadError); got != 10 {
		t.Fatalf("Fired=%d, want 10", got)
	}
	if in.Opportunities(SSDReadError) != 4000 {
		t.Fatalf("Opportunities=%d, want 4000", in.Opportunities(SSDReadError))
	}
}
