// Package fault implements deterministic fault injection for the
// storage tiers and the serving path.
//
// The paper's durability argument (§4: cache-line-grained clwb+sfence
// persistence, a WAL on NVM, eviction to SSD) rests on recovery being
// correct at *arbitrary* failure points, not only at the clean crash
// points tests tend to pick. This package supplies the adversary: a
// seeded Plan schedules injections by operation count (EveryN) or
// probability (Prob), and per-site Injectors derived from the plan make
// every draw reproducible — the same seed always crashes the same flush,
// fails the same SSD access, and drops the same connection.
//
// The injection sites, threaded through the rest of the repository:
//
//   - internal/nvm — torn cache-line flushes (a crash between the clwbs
//     of one multi-line persist), clean crashes before a flush, and
//     flush stalls;
//   - internal/ssd — transient and permanent page I/O errors (with
//     retry-and-backoff in the device path) and slow-I/O stalls, on
//     reads, writes, and therefore snapshots, which use the same calls;
//   - internal/wal — append failures and torn mid-flush crashes of the
//     log tail;
//   - internal/server — connection drops mid-pipeline and partial
//     response frames.
//
// Crash-type injections panic with Crash, which harnesses recover
// before restarting the store (see AsCrash and internal/fault/harness);
// error-type injections surface as *Error, classified transient or
// fatal by Classify for the retry loops in the SSD device and the
// network client.
//
// Injectors are safe for concurrent use (the server shares one across
// connections); all counters are atomic and probability draws are
// counter-hashed rather than stateful, so concurrency cannot perturb
// another site's stream.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind names one injection point in the storage or serving stack.
type Kind uint8

// The injection points. Spec names in parentheses.
const (
	// NVMTornFlush tears an NVM flush: only a prefix of the cache lines
	// being persisted becomes durable, then the device crashes — the
	// adversarial interleaving of clwbs and power failure ("nvm.torn").
	NVMTornFlush Kind = iota
	// NVMCrash crashes cleanly before a flush persists anything
	// ("nvm.crash").
	NVMCrash
	// NVMStall charges extra latency to a flush ("nvm.stall").
	NVMStall
	// SSDReadError fails a page read; Transient attempts fail before
	// the read succeeds, zero means a permanent medium failure
	// ("ssd.read").
	SSDReadError
	// SSDWriteError fails a page write like SSDReadError ("ssd.write").
	SSDWriteError
	// SSDStall charges extra latency to a page access ("ssd.stall").
	SSDStall
	// WALAppendError fails a log append with an error ("wal.append").
	WALAppendError
	// WALFlushCrash tears the flush of the log tail: a prefix of the
	// unflushed bytes persists, then the device crashes ("wal.flush").
	WALFlushCrash
	// NetDrop makes the server close a connection abruptly instead of
	// writing a queued response ("net.drop").
	NetDrop
	// NetPartial makes the server write only part of a response frame
	// and then close the connection ("net.partial").
	NetPartial
	// WALGroupCrash crashes between a group-commit batch's execution
	// (commit records appended, not yet flushed) and the coalesced
	// log-tail flush that would make them durable ("wal.group"). Ops in
	// the batch have not been acknowledged, so recovery must roll all of
	// them back — the ack⇒durable probe point of group commit.
	WALGroupCrash
	// CkptRound crashes at the start of an incremental-checkpoint round
	// ("ckpt.round"): some dirty pages of the fuzzy checkpoint have been
	// written back in earlier rounds, the log is not yet truncated, and
	// the power fails. Recovery must replay the intact log over the
	// partially written-back pool — the probe point of background
	// maintenance.
	CkptRound

	numKinds
)

var kindNames = [numKinds]string{
	NVMTornFlush:   "nvm.torn",
	NVMCrash:       "nvm.crash",
	NVMStall:       "nvm.stall",
	SSDReadError:   "ssd.read",
	SSDWriteError:  "ssd.write",
	SSDStall:       "ssd.stall",
	WALAppendError: "wal.append",
	WALFlushCrash:  "wal.flush",
	NetDrop:        "net.drop",
	NetPartial:     "net.partial",
	WALGroupCrash:  "wal.group",
	CkptRound:      "ckpt.round",
}

// String returns the spec name of the kind ("ssd.read", "nvm.torn", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// ParseKind resolves a spec name to its Kind.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (have %s)", name, strings.Join(kindNames[:], ", "))
}

// Rule schedules one fault kind. Exactly one of EveryN and Prob should
// be set; a rule with neither never fires.
type Rule struct {
	// Kind is the injection point the rule applies to.
	Kind Kind
	// EveryN fires the rule deterministically on every Nth opportunity
	// (the Nth flush, the Nth page read, ...). This is how crash
	// schedules pin a fault to an exact operation.
	EveryN int64
	// Prob fires the rule with this probability per opportunity, drawn
	// from the injector's seeded stream. This is how benchmarks model a
	// fault *rate*.
	Prob float64
	// Transient, for error-kind rules, is how many consecutive attempts
	// of the access fail before it succeeds; zero injects a permanent
	// failure (fatal after the device's retry budget).
	Transient int
	// Stall is the extra simulated latency charged by stall-kind rules.
	Stall time.Duration
	// Limit caps how many times the rule fires in total; zero means
	// unlimited. Crash schedules use Limit: 1 to place exactly one fault.
	Limit int64
}

// Plan is a seeded fault schedule: a set of rules plus the base seed all
// injector streams derive from. A nil *Plan is valid everywhere and
// injects nothing.
type Plan struct {
	// Seed is the base of every derived injector stream; two plans with
	// equal rules and seeds inject identically.
	Seed uint64
	// Rules lists the scheduled faults.
	Rules []Rule
}

// Injector derives the per-site injector for this plan. The site salt
// separates streams — each shard, device, or server passes a distinct
// site so probability draws are independent yet reproducible. A nil
// plan yields a nil injector, which is inert.
func (p *Plan) Injector(site uint64) *Injector {
	if p == nil {
		return nil
	}
	in := &Injector{seed: mix(p.Seed ^ mix(site+0x5851f42d4c957f2d))}
	for _, r := range p.Rules {
		if int(r.Kind) >= int(numKinds) {
			continue
		}
		in.rules[r.Kind] = append(in.rules[r.Kind], &ruleState{rule: r})
	}
	return in
}

// String renders the plan in ParseSpec's format (rules only; the seed
// travels separately).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Rules))
	for _, r := range p.Rules {
		var opts []string
		if r.EveryN > 0 {
			opts = append(opts, "every="+strconv.FormatInt(r.EveryN, 10))
		}
		if r.Prob > 0 {
			opts = append(opts, "p="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.Transient > 0 {
			opts = append(opts, "transient="+strconv.Itoa(r.Transient))
		}
		if r.Stall > 0 {
			opts = append(opts, "stall="+r.Stall.String())
		}
		if r.Limit > 0 {
			opts = append(opts, "limit="+strconv.FormatInt(r.Limit, 10))
		}
		parts = append(parts, r.Kind.String()+":"+strings.Join(opts, ","))
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses the command-line fault specification used by
// nvmbench -faults and nvmserver -faults. The grammar is
//
//	spec  := entry (';' entry)*
//	entry := kind ':' param (',' param)*  |  "seed" ':' uint
//	param := "every=" n | "p=" prob | "transient=" n | "stall=" dur | "limit=" n
//
// for example
//
//	ssd.read:p=0.01,transient=2;ssd.stall:p=0.005,stall=2ms;nvm.torn:every=500,limit=1
//
// Kinds are listed on Kind's constants. A "seed:N" entry sets the plan
// seed (default 1).
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, params, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q: want kind:param=value,...", entry)
		}
		if name == "seed" {
			seed, err := strconv.ParseUint(params, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: seed %q: %v", params, err)
			}
			p.Seed = seed
			continue
		}
		kind, err := ParseKind(name)
		if err != nil {
			return nil, err
		}
		r := Rule{Kind: kind}
		for _, param := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(param), "=")
			if !ok {
				return nil, fmt.Errorf("fault: entry %q: parameter %q: want key=value", entry, param)
			}
			switch key {
			case "every":
				if r.EveryN, err = strconv.ParseInt(val, 10, 64); err == nil && r.EveryN <= 0 {
					err = errors.New("must be positive")
				}
			case "p":
				if r.Prob, err = strconv.ParseFloat(val, 64); err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = errors.New("must be in [0, 1]")
				}
			case "transient":
				r.Transient, err = strconv.Atoi(val)
			case "stall":
				r.Stall, err = time.ParseDuration(val)
			case "limit":
				r.Limit, err = strconv.ParseInt(val, 10, 64)
			default:
				err = errors.New("unknown parameter")
			}
			if err != nil {
				return nil, fmt.Errorf("fault: entry %q: parameter %q: %v", entry, param, err)
			}
		}
		if r.EveryN == 0 && r.Prob == 0 {
			return nil, fmt.Errorf("fault: entry %q: needs every=N or p=prob to ever fire", entry)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

// Decision is an injector's verdict for one opportunity.
type Decision struct {
	// Fire reports whether a fault is injected here.
	Fire bool
	// Transient, for error faults, is how many attempts fail before the
	// access succeeds; zero means a permanent failure.
	Transient int
	// StallNs is the extra simulated latency for stall faults.
	StallNs int64
	// Frac, for torn-flush faults, is the fraction of the flush that
	// persists before the crash, drawn uniformly from [0, 1).
	Frac float64
}

// ruleState is a rule plus its firing bookkeeping.
type ruleState struct {
	rule  Rule
	fired atomic.Int64
}

// Injector evaluates a plan's rules at one site. The zero opportunity
// counters make repeated runs with equal plans and workloads identical.
// A nil *Injector is inert: Check reports no faults. Safe for
// concurrent use.
type Injector struct {
	seed  uint64
	ops   [numKinds]atomic.Int64
	rules [numKinds][]*ruleState
}

// Check registers one opportunity for kind k and reports whether (and
// how) a fault fires. Instrumented code calls it at every injection
// point; with no matching rules it is a single atomic increment.
func (in *Injector) Check(k Kind) Decision {
	if in == nil || int(k) >= int(numKinds) {
		return Decision{}
	}
	n := in.ops[k].Add(1)
	for _, rs := range in.rules[k] {
		fire := false
		switch {
		case rs.rule.EveryN > 0:
			fire = n%rs.rule.EveryN == 0
		case rs.rule.Prob > 0:
			fire = unitDraw(in.seed, uint64(k), uint64(n), 0) < rs.rule.Prob
		}
		if !fire {
			continue
		}
		if fired := rs.fired.Add(1); rs.rule.Limit > 0 && fired > rs.rule.Limit {
			continue
		}
		return Decision{
			Fire:      true,
			Transient: rs.rule.Transient,
			StallNs:   int64(rs.rule.Stall),
			Frac:      unitDraw(in.seed, uint64(k), uint64(n), 1),
		}
	}
	return Decision{}
}

// Opportunities returns how many times Check(k) ran — the size of the
// schedule space a crash sweep can place EveryN faults in. Counting
// works even with no rules, so a dry run with an empty plan calibrates
// a sweep.
func (in *Injector) Opportunities(k Kind) int64 {
	if in == nil || int(k) >= int(numKinds) {
		return 0
	}
	return in.ops[k].Load()
}

// Fired returns how many times kind k actually injected.
func (in *Injector) Fired(k Kind) int64 {
	if in == nil || int(k) >= int(numKinds) {
		return 0
	}
	var total int64
	for _, rs := range in.rules[k] {
		n := rs.fired.Load()
		if rs.rule.Limit > 0 && n > rs.rule.Limit {
			n = rs.rule.Limit
		}
		total += n
	}
	return total
}

// FiredTotal sums Fired over all kinds.
func (in *Injector) FiredTotal() int64 {
	if in == nil {
		return 0
	}
	var total int64
	for k := Kind(0); k < numKinds; k++ {
		total += in.Fired(k)
	}
	return total
}

// Summary renders the nonzero fired counters, for benchmark notes.
func (in *Injector) Summary() string {
	if in == nil {
		return "no faults armed"
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if n := in.Fired(k); n > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "no faults fired"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Injectors bundles the per-device injectors one engine armed from a
// plan — handles for reading opportunity and fired counters after a
// run. Any field may be nil (the SSD one is, on topologies without an
// SSD tier).
type Injectors struct {
	NVM *Injector
	SSD *Injector
	WAL *Injector
}

// Fired sums the fired counters of kind k across the bundle.
func (b Injectors) Fired(k Kind) int64 {
	return b.NVM.Fired(k) + b.SSD.Fired(k) + b.WAL.Fired(k)
}

// Opportunities sums Check calls of kind k across the bundle.
func (b Injectors) Opportunities(k Kind) int64 {
	return b.NVM.Opportunities(k) + b.SSD.Opportunities(k) + b.WAL.Opportunities(k)
}

// Crash is the panic value thrown at an injected crash point (torn NVM
// flush, torn WAL flush, permanent device failure). Harnesses recover
// it, power-fail the store, and restart — see AsCrash.
type Crash struct {
	// Kind is the injection point that crashed.
	Kind Kind
	// Site names the instrumented call ("nvm.flush", "ssd.write", ...).
	Site string
}

// Error implements the error interface.
func (c Crash) Error() string {
	return fmt.Sprintf("fault: injected %s crash at %s", c.Kind, c.Site)
}

// AsCrash reports whether a recovered panic value is an injected crash.
func AsCrash(r any) (Crash, bool) {
	c, ok := r.(Crash)
	return c, ok
}

// Error is an injected, non-crashing failure: an SSD access or a WAL
// append that returns an error instead of taking the process down.
// Classify sorts it into transient (worth retrying) or fatal.
type Error struct {
	// Kind is the injection point.
	Kind Kind
	// Site names the instrumented call.
	Site string
	// Attempt is 1 for the first failure of an access, 2 for the first
	// retry, and so on.
	Attempt int
	// Permanent marks a failure no retry will fix.
	Permanent bool
}

// Error implements the error interface.
func (e *Error) Error() string {
	class := "transient"
	if e.Permanent {
		class = "permanent"
	}
	return fmt.Sprintf("fault: injected %s %s error at %s (attempt %d)", class, e.Kind, e.Site, e.Attempt)
}

// Class is an error's retry classification.
type Class int

// The two classes: transient errors are retried with backoff, fatal
// errors are not.
const (
	// ClassTransient marks failures a retry may fix: injected transient
	// device errors, dropped connections.
	ClassTransient Class = iota
	// ClassFatal marks definitive failures: permanent device errors and
	// anything not recognized as transient — an unknown error must not
	// be retried blindly.
	ClassFatal
)

// Classify sorts an error for a retry loop: injected errors marked
// transient are ClassTransient, everything else — permanent injections
// and unknown errors alike — is ClassFatal.
func Classify(err error) Class {
	var fe *Error
	if errors.As(err, &fe) && !fe.Permanent {
		return ClassTransient
	}
	return ClassFatal
}

// IsInjected reports whether err originates from this package (an
// injected *Error or Crash), so harnesses can tell scheduled faults
// from real bugs.
func IsInjected(err error) bool {
	var fe *Error
	if errors.As(err, &fe) {
		return true
	}
	var c Crash
	return errors.As(err, &c)
}

// mix is the splitmix64 finalizer: a cheap, well-distributed hash for
// deriving independent streams from (seed, kind, opportunity) tuples.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitDraw hashes a (seed, kind, opportunity, salt) tuple into [0, 1).
// Counter-hashing instead of a stateful generator keeps concurrent
// sites from perturbing each other's streams.
func unitDraw(seed, kind, n, salt uint64) float64 {
	h := mix(seed ^ mix(kind<<32|salt) ^ mix(n))
	return float64(h>>11) / (1 << 53)
}
