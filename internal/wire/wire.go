// Package wire is the network protocol of the KV serving layer: a
// compact length-prefixed binary framing with a versioned header, used
// by internal/server and internal/client.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload. The payload starts with a fixed header — one version byte,
// one opcode byte, and a 4-byte big-endian request id — followed by an
// opcode-specific body. Request ids are chosen by the client and echoed
// verbatim in the matching response, which is what lets both sides
// pipeline: many requests may be in flight on one connection, and
// responses may return in any order.
//
// Version 2 frames extend the header with a trace context: one flags
// byte and an 8-byte big-endian trace id, inserted between the request
// id and the body. The encoders emit version 2 only when a frame
// actually carries trace state (Flags or TraceID nonzero), so untraced
// traffic is byte-identical to version 1 and old peers interoperate as
// long as tracing is off. Decoders accept both versions.
//
// Request bodies:
//
//	GET, DELETE           table uint64 | key uint64
//	PUT                   table uint64 | key uint64 | value bytes (rest)
//	SCAN                  table uint64 | from uint64 | limit uint32
//	BEGIN/COMMIT/ROLLBACK (empty)
//	STATS                 (empty)
//
// Response bodies:
//
//	OK, NOTFOUND          (empty)
//	VALUE                 value bytes (rest)
//	ERR                   UTF-8 message (rest)
//	SCAN                  count uint32 | count × (key uint64 | len uint32 | value bytes)
//	STATS                 JSON bytes (rest)
//
// The decoder is fuzz-friendly by construction: it never trusts a length
// it has not bounds-checked, never allocates proportionally to anything
// but verified input bytes, and rejects every malformed frame with an
// error instead of panicking. MaxFrame bounds what a peer can make the
// other side buffer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is the base protocol version: the 6-byte header with no trace
// context. Receivers reject frames whose version they do not speak, so
// the framing itself can evolve.
const Version = 1

// VersionTraced is the version of frames carrying the trace extension
// (flags byte + 8-byte trace id after the request id).
const VersionTraced = 2

// Flag bits of a VersionTraced frame's flags byte. Unknown bits are
// preserved by the decoders for forward compatibility.
const (
	// FlagTraced marks a request sampled for span tracing: the server
	// records a per-stage timeline for it under the frame's trace id.
	FlagTraced byte = 1 << 0
)

// MaxFrame bounds a single frame's payload (header + body). It caps
// both the server's per-request buffering and the client's per-response
// buffering; the server clamps its SCAN row limit by encoded bytes so
// scan responses fit in one frame whatever the table's row size.
const MaxFrame = 8 << 20

// headerSize is version(1) + opcode(1) + request id(4).
const headerSize = 6

// headerSizeV2 adds the trace extension: flags(1) + trace id(8).
const headerSizeV2 = headerSize + 9

// Request opcodes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpScan
	OpBegin
	OpCommit
	OpRollback
	OpStats
)

// Replication request opcodes (see repl.go for the body codecs). Their
// bodies ride opaquely in Request.Value so the header handling — and
// the v1/v2 trace-extension negotiation — is identical to every other
// opcode.
const (
	// OpReplSubscribe turns the connection into a replication feed: the
	// body names the resume LSNs and the server starts pushing
	// RespReplBatch / RespReplSnap frames.
	OpReplSubscribe byte = iota + 9
	// OpReplAck acknowledges applied-and-durable LSNs on a feed.
	OpReplAck
	// OpReplPromote promotes a replica to primary, or fences a primary
	// whose epoch the body supersedes.
	OpReplPromote
	// OpReplLSNs queries the peer's per-shard LSN vector, epoch, and
	// role (empty body; answered with RespReplLSNs).
	OpReplLSNs
	// OpReplWait blocks until the peer's LSN vector covers the body's
	// bound or a timeout expires — the staleness-bounded read barrier.
	OpReplWait
)

// Response codes. The high bit distinguishes responses from requests,
// so a stream confusion (e.g. a client dialed by another client) fails
// loudly instead of silently mismatching.
const (
	RespOK byte = iota + 0x80
	RespValue
	RespNotFound
	RespErr
	RespScan
	RespStats
	// RespReplBatch is an unsolicited pushed frame on a subscribed
	// connection: one shard's flushed log records (body in Value).
	RespReplBatch
	// RespReplSnap is a pushed snapshot chunk bootstrapping a replica
	// shard that is too far behind for log catch-up.
	RespReplSnap
	// RespReplLSNs answers OpReplLSNs with the peer's LSN vector.
	RespReplLSNs
)

// Errors returned by the decoders and the frame reader.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrShortFrame    = errors.New("wire: truncated frame")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrBadOpcode     = errors.New("wire: unknown opcode")
)

// OpName returns a short lower-case name for a request opcode or
// response code, for metrics and error messages.
func OpName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpRollback:
		return "rollback"
	case OpStats:
		return "stats"
	case OpReplSubscribe:
		return "replsubscribe"
	case OpReplAck:
		return "replack"
	case OpReplPromote:
		return "replpromote"
	case OpReplLSNs:
		return "repllsns"
	case OpReplWait:
		return "replwait"
	case RespOK:
		return "ok"
	case RespValue:
		return "value"
	case RespNotFound:
		return "notfound"
	case RespErr:
		return "err"
	case RespScan:
		return "scanresult"
	case RespStats:
		return "statsresult"
	case RespReplBatch:
		return "replbatch"
	case RespReplSnap:
		return "replsnap"
	case RespReplLSNs:
		return "repllsnsresult"
	}
	return fmt.Sprintf("op%#x", op)
}

// Request is one decoded client request.
type Request struct {
	// Op is the request opcode (OpGet ... OpStats).
	Op byte
	// ID is the client-chosen pipelining id echoed in the response.
	ID uint32
	// Table and Key address a row for GET/PUT/DELETE; for SCAN, Key is
	// the inclusive start key.
	Table uint64
	Key   uint64
	// Value is the PUT payload. It aliases the decode buffer — copy it
	// before the next frame is read if it must outlive the request.
	Value []byte
	// Limit is the SCAN row limit (0 means the server's maximum).
	Limit uint32
	// Flags is the trace-extension flags byte (see FlagTraced). Nonzero
	// Flags or TraceID makes AppendRequest emit a VersionTraced frame.
	Flags byte
	// TraceID is the client-stamped trace id of a sampled request.
	TraceID uint64
}

// Traced reports whether the request asks for span tracing: the sampled
// flag set and a usable (nonzero) trace id.
func (r *Request) Traced() bool { return r.Flags&FlagTraced != 0 && r.TraceID != 0 }

// Response is one decoded server response.
type Response struct {
	// Code is the response code (RespOK ... RespStats).
	Code byte
	// ID echoes the request id.
	ID uint32
	// Value is the row for RespValue, the JSON document for RespStats.
	// It aliases the decode buffer, like Request.Value.
	Value []byte
	// Err is the error message for RespErr.
	Err string
	// Entries are the SCAN results for RespScan; each entry's Value
	// aliases the decode buffer.
	Entries []Entry
	// Flags and TraceID mirror the request fields: servers may echo the
	// trace context, and nonzero values make AppendResponse emit a
	// VersionTraced frame. The serving layer keeps responses at Version
	// (the timeline lives server-side), so these are normally zero.
	Flags   byte
	TraceID uint64
}

// Entry is one SCAN result row.
type Entry struct {
	Key   uint64
	Value []byte
}

// AppendRequest appends the complete frame (length prefix included) for
// r to dst and returns the extended slice.
func AppendRequest(dst []byte, r Request) []byte {
	body := 0
	switch r.Op {
	case OpGet, OpDelete:
		body = 16
	case OpPut:
		body = 16 + len(r.Value)
	case OpScan:
		body = 20
	case OpReplSubscribe, OpReplAck, OpReplPromote, OpReplWait:
		body = len(r.Value)
	}
	dst = appendHeader(dst, body, r.Op, r.ID, r.Flags, r.TraceID)
	switch r.Op {
	case OpGet, OpDelete:
		dst = binary.BigEndian.AppendUint64(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.Key)
	case OpPut:
		dst = binary.BigEndian.AppendUint64(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.Key)
		dst = append(dst, r.Value...)
	case OpScan:
		dst = binary.BigEndian.AppendUint64(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.Key)
		dst = binary.BigEndian.AppendUint32(dst, r.Limit)
	case OpReplSubscribe, OpReplAck, OpReplPromote, OpReplWait:
		dst = append(dst, r.Value...)
	}
	return dst
}

// AppendResponse appends the complete frame for r to dst and returns
// the extended slice.
func AppendResponse(dst []byte, r Response) []byte {
	body := 0
	switch r.Code {
	case RespValue, RespStats, RespReplBatch, RespReplSnap, RespReplLSNs:
		body = len(r.Value)
	case RespErr:
		body = len(r.Err)
	case RespScan:
		body = 4
		for _, e := range r.Entries {
			body += 12 + len(e.Value)
		}
	}
	dst = appendHeader(dst, body, r.Code, r.ID, r.Flags, r.TraceID)
	switch r.Code {
	case RespValue, RespStats, RespReplBatch, RespReplSnap, RespReplLSNs:
		dst = append(dst, r.Value...)
	case RespErr:
		dst = append(dst, r.Err...)
	case RespScan:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Entries)))
		for _, e := range r.Entries {
			dst = binary.BigEndian.AppendUint64(dst, e.Key)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Value)))
			dst = append(dst, e.Value...)
		}
	}
	return dst
}

// appendHeader writes the length prefix and the frame header for a
// bodyLen-byte body, choosing Version or VersionTraced by whether the
// frame carries trace state.
func appendHeader(dst []byte, bodyLen int, op byte, id uint32, flags byte, traceID uint64) []byte {
	if flags == 0 && traceID == 0 {
		dst = binary.BigEndian.AppendUint32(dst, uint32(headerSize+bodyLen))
		dst = append(dst, Version, op)
		return binary.BigEndian.AppendUint32(dst, id)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerSizeV2+bodyLen))
	dst = append(dst, VersionTraced, op)
	dst = binary.BigEndian.AppendUint32(dst, id)
	dst = append(dst, flags)
	return binary.BigEndian.AppendUint64(dst, traceID)
}

// decodeHeader validates the fixed header (either version) and returns
// opcode, id, trace context, and the body.
func decodeHeader(payload []byte) (op byte, id uint32, flags byte, traceID uint64, body []byte, err error) {
	if len(payload) < headerSize {
		return 0, 0, 0, 0, nil, ErrShortFrame
	}
	switch payload[0] {
	case Version:
		return payload[1], binary.BigEndian.Uint32(payload[2:6]), 0, 0, payload[headerSize:], nil
	case VersionTraced:
		if len(payload) < headerSizeV2 {
			return 0, 0, 0, 0, nil, fmt.Errorf("%w: %d-byte traced header", ErrShortFrame, len(payload))
		}
		return payload[1], binary.BigEndian.Uint32(payload[2:6]),
			payload[6], binary.BigEndian.Uint64(payload[7:15]), payload[headerSizeV2:], nil
	}
	return 0, 0, 0, 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, payload[0])
}

// DecodeRequest decodes a request payload (a frame minus its length
// prefix). Returned slices alias payload.
func DecodeRequest(payload []byte) (Request, error) {
	op, id, flags, traceID, body, err := decodeHeader(payload)
	if err != nil {
		return Request{}, err
	}
	r := Request{Op: op, ID: id, Flags: flags, TraceID: traceID}
	switch op {
	case OpGet, OpDelete:
		if len(body) != 16 {
			return Request{}, fmt.Errorf("%w: %s body %d bytes", ErrShortFrame, OpName(op), len(body))
		}
		r.Table = binary.BigEndian.Uint64(body)
		r.Key = binary.BigEndian.Uint64(body[8:])
	case OpPut:
		if len(body) < 16 {
			return Request{}, fmt.Errorf("%w: put body %d bytes", ErrShortFrame, len(body))
		}
		r.Table = binary.BigEndian.Uint64(body)
		r.Key = binary.BigEndian.Uint64(body[8:])
		r.Value = body[16:]
	case OpScan:
		if len(body) != 20 {
			return Request{}, fmt.Errorf("%w: scan body %d bytes", ErrShortFrame, len(body))
		}
		r.Table = binary.BigEndian.Uint64(body)
		r.Key = binary.BigEndian.Uint64(body[8:])
		r.Limit = binary.BigEndian.Uint32(body[16:])
	case OpBegin, OpCommit, OpRollback, OpStats, OpReplLSNs:
		if len(body) != 0 {
			return Request{}, fmt.Errorf("%w: %s carries a body", ErrShortFrame, OpName(op))
		}
	case OpReplSubscribe, OpReplAck, OpReplPromote, OpReplWait:
		// Opaque replication body; the typed codecs in repl.go validate.
		r.Value = body
	default:
		return Request{}, fmt.Errorf("%w: %#x", ErrBadOpcode, op)
	}
	return r, nil
}

// DecodeResponse decodes a response payload. Returned slices alias
// payload.
func DecodeResponse(payload []byte) (Response, error) {
	code, id, flags, traceID, body, err := decodeHeader(payload)
	if err != nil {
		return Response{}, err
	}
	r := Response{Code: code, ID: id, Flags: flags, TraceID: traceID}
	switch code {
	case RespOK, RespNotFound:
		if len(body) != 0 {
			return Response{}, fmt.Errorf("%w: %s carries a body", ErrShortFrame, OpName(code))
		}
	case RespValue, RespStats, RespReplBatch, RespReplSnap, RespReplLSNs:
		r.Value = body
	case RespErr:
		r.Err = string(body)
	case RespScan:
		if len(body) < 4 {
			return Response{}, fmt.Errorf("%w: scan result header", ErrShortFrame)
		}
		count := binary.BigEndian.Uint32(body)
		body = body[4:]
		// Each entry is at least 12 bytes, so a hostile count cannot
		// make us allocate more entries than the body could hold.
		if uint64(count)*12 > uint64(len(body)) {
			return Response{}, fmt.Errorf("%w: scan count %d exceeds body", ErrShortFrame, count)
		}
		r.Entries = make([]Entry, 0, count)
		for i := uint32(0); i < count; i++ {
			if len(body) < 12 {
				return Response{}, fmt.Errorf("%w: scan entry %d", ErrShortFrame, i)
			}
			key := binary.BigEndian.Uint64(body)
			vlen := binary.BigEndian.Uint32(body[8:])
			body = body[12:]
			if uint64(vlen) > uint64(len(body)) {
				return Response{}, fmt.Errorf("%w: scan entry %d value", ErrShortFrame, i)
			}
			r.Entries = append(r.Entries, Entry{Key: key, Value: body[:vlen]})
			body = body[vlen:]
		}
		if len(body) != 0 {
			return Response{}, fmt.Errorf("%w: %d trailing bytes after scan entries", ErrShortFrame, len(body))
		}
	default:
		return Response{}, fmt.Errorf("%w: %#x", ErrBadOpcode, code)
	}
	return r, nil
}

// bufPool recycles frame and row buffers across connections and
// requests. The serving path allocates one buffer per frame read, per
// response written, and per row looked up; at tens of thousands of
// requests per second that garbage dominates the profile, so the hot
// paths draw from this pool instead. Capacities converge on the
// workload's frame sizes; buffers that prove too small are dropped and
// replaced by larger ones.
var bufPool sync.Pool

// GetBuf returns a zero-length recycled buffer (possibly nil: appending
// grows it like any other slice). Pair with PutBuf once every alias of
// the buffer is dead.
func GetBuf() []byte {
	if p, ok := bufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return nil
}

// GetBufN returns a recycled buffer of length n with unspecified
// contents. A pooled buffer with insufficient capacity is returned to
// the pool and a fresh one allocated, so capacities ratchet up to the
// workload's sizes.
func GetBufN(n int) []byte {
	b := GetBuf()
	if cap(b) >= n {
		return b[:n]
	}
	PutBuf(b)
	return make([]byte, n)
}

// PutBuf recycles buf for a later GetBuf. The caller must not retain
// any alias of buf; a nil or empty-capacity buf is a no-op.
func PutBuf(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	bufPool.Put(&buf)
}

// ReadFrame reads one length-prefixed payload from r into buf (grown as
// needed) and returns the payload slice, which aliases the returned
// buffer. Callers loop:
//
//	payload, buf, err = wire.ReadFrame(r, buf)
//
// Growing recycles the old buffer through the frame pool, so callers
// must treat the previous payload as dead across calls (the reuse
// contract above already requires that). io.EOF is returned unwrapped
// on a clean close before the prefix; a close mid-frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (payload, newBuf []byte, err error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, buf, io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n < headerSize {
		return nil, buf, fmt.Errorf("%w: %d-byte payload", ErrShortFrame, n)
	}
	if cap(buf) < int(n) {
		PutBuf(buf)
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	return buf, buf, nil
}
