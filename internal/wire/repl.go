// Replication frame bodies. The five replication message kinds —
// SUBSCRIBE, BATCH, ACK, SNAPSHOT, PROMOTE (plus the LSNS/WAIT query
// pair) — share the ordinary frame header; their bodies are encoded and
// decoded here. Like the rest of the package the decoders are
// fuzz-friendly: every length is bounds-checked before use, allocation
// is proportional to verified input, and malformed bodies return errors
// rather than panicking (see FuzzDecodeRepl).
//
// Body layouts (all integers big-endian):
//
//	SUBSCRIBE  epoch u64 | nshards u32 | nshards × appliedLSN u64
//	ACK        shard u32 | epoch u64 | appliedLSN u64
//	PROMOTE    epoch u64
//	WAIT       timeout_ms u32 | nshards u32 | nshards × lsn u64
//	LSNS       epoch u64 | role u8 | nshards u32 | nshards × lsn u64
//	BATCH      shard u32 | epoch u64 | count u32 | count × record
//	  record   kind u8 | lsn u64 | tx u64 | pid u64 | off u32 |
//	           blen u32 | alen u32 | before | after
//	SNAPSHOT   shard u32 | epoch u64 | final u8 | snapLSN u64 |
//	           count u32 | count × (table u64 | key u64 | vlen u32 | value)
package wire

import (
	"encoding/binary"
	"fmt"
)

// ReplSubscribe is the body of an OpReplSubscribe request: a replica
// joining (or rejoining) the primary's replication stream.
type ReplSubscribe struct {
	// Epoch is the highest primary epoch the replica has seen; a primary
	// fenced past it refuses the subscription.
	Epoch uint64
	// From holds, per shard, the last LSN the replica has durably
	// applied; shipping resumes at From[i]+1. A shard count that does not
	// match the primary's is rejected at subscribe time.
	From []uint64
}

// ReplAck is the body of an OpReplAck request: the replica's durable
// progress on one shard. Acked records may be truncated on the primary.
type ReplAck struct {
	// Shard is the shard index the acknowledgment covers.
	Shard uint32
	// Epoch guards against a stale feed acking across a promotion.
	Epoch uint64
	// Applied is the highest LSN applied and flushed on the replica.
	Applied uint64
}

// ReplPromote is the body of an OpReplPromote request. Sent to a
// replica it means "become primary at this epoch"; sent to a primary
// whose epoch is lower it means "you have been superseded — fence".
type ReplPromote struct {
	// Epoch is the new primary epoch; it must exceed the peer's.
	Epoch uint64
}

// ReplWait is the body of an OpReplWait request: block until the peer's
// applied (replica) or durable (primary) LSN vector covers LSNs, giving
// clients read-your-writes on a bounded-staleness replica.
type ReplWait struct {
	// TimeoutMs bounds the wait in milliseconds (0: server default).
	TimeoutMs uint32
	// LSNs is the per-shard bound to wait for; a shorter vector than the
	// peer's shard count waits only on the named prefix.
	LSNs []uint64
}

// ReplLSNs is the body of a RespReplLSNs response: the peer's
// replication position.
type ReplLSNs struct {
	// Epoch is the peer's current primary epoch.
	Epoch uint64
	// Role is RolePrimary, RoleReplica, or RoleFenced.
	Role byte
	// LSNs is per-shard progress: durable LSNs on a primary (fenced or
	// not), applied LSNs on a replica.
	LSNs []uint64
}

// Role values carried in ReplLSNs.Role.
const (
	// RolePrimary marks a writable peer that ships its log.
	RolePrimary byte = 1
	// RoleReplica marks a read-only peer applying a primary's log.
	RoleReplica byte = 2
	// RoleFenced marks a superseded ex-primary: its Epoch field carries
	// the epoch that fenced it, and clients must fail over — its LSN
	// vector is from a dead lineage and guarantees nothing.
	RoleFenced byte = 3
)

// ReplRec is one log record inside a ReplBatch, mirroring wal.Record.
type ReplRec struct {
	// Kind is the wal record kind (update/commit/abort).
	Kind byte
	// LSN, Tx, PID, and Off mirror the wal.Record fields.
	LSN uint64
	// Tx is the primary-side transaction id grouping records.
	Tx uint64
	// PID is the tree id of a logical update record.
	PID uint64
	// Off packs the logical opcode and field offset like wal.Record.Off.
	Off uint32
	// Before and After are the undo and redo images; they alias the
	// decode buffer.
	Before []byte
	After  []byte
}

// ReplBatch is the body of a RespReplBatch pushed frame: a run of
// flushed (durable) records from one primary shard, in LSN order.
type ReplBatch struct {
	// Shard is the primary shard the records came from.
	Shard uint32
	// Epoch is the primary epoch that flushed the records.
	Epoch uint64
	// Recs are the records; images alias the decode buffer.
	Recs []ReplRec
}

// SnapRow is one row of a snapshot chunk.
type SnapRow struct {
	// Table is the table id the row belongs to.
	Table uint64
	// Key is the row key.
	Key uint64
	// Value is the row payload; it aliases the decode buffer.
	Value []byte
}

// ReplSnap is the body of a RespReplSnap pushed frame: a chunk of a
// consistent per-shard snapshot, used to bootstrap a replica whose
// resume LSN the primary's log no longer covers.
type ReplSnap struct {
	// Shard is the primary shard being snapshotted.
	Shard uint32
	// Epoch is the primary epoch taking the snapshot.
	Epoch uint64
	// Final marks the last chunk: the shard's snapshot is complete and
	// log batches after SnapLSN follow.
	Final bool
	// SnapLSN is the durable LSN the snapshot is consistent with.
	SnapLSN uint64
	// Rows are the chunk's rows; values alias the decode buffer.
	Rows []SnapRow
}

// replRecHdr is the fixed part of an encoded ReplRec.
const replRecHdr = 1 + 8 + 8 + 8 + 4 + 4 + 4

// snapRowHdr is the fixed part of an encoded SnapRow.
const snapRowHdr = 8 + 8 + 4

// AppendReplSubscribe appends the encoded body of s to dst.
func AppendReplSubscribe(dst []byte, s ReplSubscribe) []byte {
	dst = binary.BigEndian.AppendUint64(dst, s.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.From)))
	for _, l := range s.From {
		dst = binary.BigEndian.AppendUint64(dst, l)
	}
	return dst
}

// DecodeReplSubscribe decodes an OpReplSubscribe body.
func DecodeReplSubscribe(b []byte) (ReplSubscribe, error) {
	if len(b) < 12 {
		return ReplSubscribe{}, fmt.Errorf("%w: subscribe body %d bytes", ErrShortFrame, len(b))
	}
	s := ReplSubscribe{Epoch: binary.BigEndian.Uint64(b)}
	n := binary.BigEndian.Uint32(b[8:])
	b = b[12:]
	if uint64(n)*8 != uint64(len(b)) {
		return ReplSubscribe{}, fmt.Errorf("%w: subscribe lsn vector %d×8 vs %d bytes", ErrShortFrame, n, len(b))
	}
	s.From = make([]uint64, n)
	for i := range s.From {
		s.From[i] = binary.BigEndian.Uint64(b[8*i:])
	}
	return s, nil
}

// AppendReplAck appends the encoded body of a to dst.
func AppendReplAck(dst []byte, a ReplAck) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a.Shard)
	dst = binary.BigEndian.AppendUint64(dst, a.Epoch)
	return binary.BigEndian.AppendUint64(dst, a.Applied)
}

// DecodeReplAck decodes an OpReplAck body.
func DecodeReplAck(b []byte) (ReplAck, error) {
	if len(b) != 20 {
		return ReplAck{}, fmt.Errorf("%w: ack body %d bytes", ErrShortFrame, len(b))
	}
	return ReplAck{
		Shard:   binary.BigEndian.Uint32(b),
		Epoch:   binary.BigEndian.Uint64(b[4:]),
		Applied: binary.BigEndian.Uint64(b[12:]),
	}, nil
}

// AppendReplPromote appends the encoded body of p to dst.
func AppendReplPromote(dst []byte, p ReplPromote) []byte {
	return binary.BigEndian.AppendUint64(dst, p.Epoch)
}

// DecodeReplPromote decodes an OpReplPromote body.
func DecodeReplPromote(b []byte) (ReplPromote, error) {
	if len(b) != 8 {
		return ReplPromote{}, fmt.Errorf("%w: promote body %d bytes", ErrShortFrame, len(b))
	}
	return ReplPromote{Epoch: binary.BigEndian.Uint64(b)}, nil
}

// AppendReplWait appends the encoded body of w to dst.
func AppendReplWait(dst []byte, w ReplWait) []byte {
	dst = binary.BigEndian.AppendUint32(dst, w.TimeoutMs)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(w.LSNs)))
	for _, l := range w.LSNs {
		dst = binary.BigEndian.AppendUint64(dst, l)
	}
	return dst
}

// DecodeReplWait decodes an OpReplWait body.
func DecodeReplWait(b []byte) (ReplWait, error) {
	if len(b) < 8 {
		return ReplWait{}, fmt.Errorf("%w: wait body %d bytes", ErrShortFrame, len(b))
	}
	w := ReplWait{TimeoutMs: binary.BigEndian.Uint32(b)}
	n := binary.BigEndian.Uint32(b[4:])
	b = b[8:]
	if uint64(n)*8 != uint64(len(b)) {
		return ReplWait{}, fmt.Errorf("%w: wait lsn vector %d×8 vs %d bytes", ErrShortFrame, n, len(b))
	}
	w.LSNs = make([]uint64, n)
	for i := range w.LSNs {
		w.LSNs[i] = binary.BigEndian.Uint64(b[8*i:])
	}
	return w, nil
}

// AppendReplLSNs appends the encoded body of l to dst.
func AppendReplLSNs(dst []byte, l ReplLSNs) []byte {
	dst = binary.BigEndian.AppendUint64(dst, l.Epoch)
	dst = append(dst, l.Role)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(l.LSNs)))
	for _, v := range l.LSNs {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeReplLSNs decodes a RespReplLSNs body.
func DecodeReplLSNs(b []byte) (ReplLSNs, error) {
	if len(b) < 13 {
		return ReplLSNs{}, fmt.Errorf("%w: lsns body %d bytes", ErrShortFrame, len(b))
	}
	l := ReplLSNs{Epoch: binary.BigEndian.Uint64(b), Role: b[8]}
	n := binary.BigEndian.Uint32(b[9:])
	b = b[13:]
	if uint64(n)*8 != uint64(len(b)) {
		return ReplLSNs{}, fmt.Errorf("%w: lsns vector %d×8 vs %d bytes", ErrShortFrame, n, len(b))
	}
	l.LSNs = make([]uint64, n)
	for i := range l.LSNs {
		l.LSNs[i] = binary.BigEndian.Uint64(b[8*i:])
	}
	return l, nil
}

// AppendReplBatch appends the encoded body of bt to dst.
func AppendReplBatch(dst []byte, bt ReplBatch) []byte {
	dst = binary.BigEndian.AppendUint32(dst, bt.Shard)
	dst = binary.BigEndian.AppendUint64(dst, bt.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(bt.Recs)))
	for _, r := range bt.Recs {
		dst = append(dst, r.Kind)
		dst = binary.BigEndian.AppendUint64(dst, r.LSN)
		dst = binary.BigEndian.AppendUint64(dst, r.Tx)
		dst = binary.BigEndian.AppendUint64(dst, r.PID)
		dst = binary.BigEndian.AppendUint32(dst, r.Off)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Before)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.After)))
		dst = append(dst, r.Before...)
		dst = append(dst, r.After...)
	}
	return dst
}

// DecodeReplBatch decodes a RespReplBatch body. Record images alias b.
func DecodeReplBatch(b []byte) (ReplBatch, error) {
	if len(b) < 16 {
		return ReplBatch{}, fmt.Errorf("%w: batch body %d bytes", ErrShortFrame, len(b))
	}
	bt := ReplBatch{Shard: binary.BigEndian.Uint32(b), Epoch: binary.BigEndian.Uint64(b[4:])}
	count := binary.BigEndian.Uint32(b[12:])
	b = b[16:]
	// Each record is at least replRecHdr bytes, so a hostile count cannot
	// make us allocate more records than the body could hold.
	if uint64(count)*replRecHdr > uint64(len(b)) {
		return ReplBatch{}, fmt.Errorf("%w: batch count %d exceeds body", ErrShortFrame, count)
	}
	bt.Recs = make([]ReplRec, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < replRecHdr {
			return ReplBatch{}, fmt.Errorf("%w: batch record %d", ErrShortFrame, i)
		}
		r := ReplRec{
			Kind: b[0],
			LSN:  binary.BigEndian.Uint64(b[1:]),
			Tx:   binary.BigEndian.Uint64(b[9:]),
			PID:  binary.BigEndian.Uint64(b[17:]),
			Off:  binary.BigEndian.Uint32(b[25:]),
		}
		nb := binary.BigEndian.Uint32(b[29:])
		na := binary.BigEndian.Uint32(b[33:])
		b = b[replRecHdr:]
		if uint64(nb)+uint64(na) > uint64(len(b)) {
			return ReplBatch{}, fmt.Errorf("%w: batch record %d images", ErrShortFrame, i)
		}
		r.Before = b[:nb:nb]
		r.After = b[nb : uint64(nb)+uint64(na)]
		b = b[uint64(nb)+uint64(na):]
		bt.Recs = append(bt.Recs, r)
	}
	if len(b) != 0 {
		return ReplBatch{}, fmt.Errorf("%w: %d trailing bytes after batch records", ErrShortFrame, len(b))
	}
	return bt, nil
}

// AppendReplSnap appends the encoded body of s to dst.
func AppendReplSnap(dst []byte, s ReplSnap) []byte {
	dst = binary.BigEndian.AppendUint32(dst, s.Shard)
	dst = binary.BigEndian.AppendUint64(dst, s.Epoch)
	if s.Final {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint64(dst, s.SnapLSN)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Rows)))
	for _, r := range s.Rows {
		dst = binary.BigEndian.AppendUint64(dst, r.Table)
		dst = binary.BigEndian.AppendUint64(dst, r.Key)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Value)))
		dst = append(dst, r.Value...)
	}
	return dst
}

// DecodeReplSnap decodes a RespReplSnap body. Row values alias b.
func DecodeReplSnap(b []byte) (ReplSnap, error) {
	if len(b) < 25 {
		return ReplSnap{}, fmt.Errorf("%w: snapshot body %d bytes", ErrShortFrame, len(b))
	}
	if b[12] > 1 {
		return ReplSnap{}, fmt.Errorf("%w: snapshot final flag %#x", ErrShortFrame, b[12])
	}
	s := ReplSnap{
		Shard:   binary.BigEndian.Uint32(b),
		Epoch:   binary.BigEndian.Uint64(b[4:]),
		Final:   b[12] != 0,
		SnapLSN: binary.BigEndian.Uint64(b[13:]),
	}
	count := binary.BigEndian.Uint32(b[21:])
	b = b[25:]
	if uint64(count)*snapRowHdr > uint64(len(b)) {
		return ReplSnap{}, fmt.Errorf("%w: snapshot count %d exceeds body", ErrShortFrame, count)
	}
	s.Rows = make([]SnapRow, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < snapRowHdr {
			return ReplSnap{}, fmt.Errorf("%w: snapshot row %d", ErrShortFrame, i)
		}
		r := SnapRow{Table: binary.BigEndian.Uint64(b), Key: binary.BigEndian.Uint64(b[8:])}
		vlen := binary.BigEndian.Uint32(b[16:])
		b = b[snapRowHdr:]
		if uint64(vlen) > uint64(len(b)) {
			return ReplSnap{}, fmt.Errorf("%w: snapshot row %d value", ErrShortFrame, i)
		}
		r.Value = b[:vlen:vlen]
		b = b[vlen:]
		s.Rows = append(s.Rows, r)
	}
	if len(b) != 0 {
		return ReplSnap{}, fmt.Errorf("%w: %d trailing bytes after snapshot rows", ErrShortFrame, len(b))
	}
	return s, nil
}
