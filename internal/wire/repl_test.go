package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// replSamples returns one representative value per replication body
// type, used by the round-trip tests and the fuzz seed corpus.
func replSamples() (ReplSubscribe, ReplAck, ReplPromote, ReplWait, ReplLSNs, ReplBatch, ReplSnap) {
	sub := ReplSubscribe{Epoch: 3, From: []uint64{10, 0, 7}}
	ack := ReplAck{Shard: 2, Epoch: 3, Applied: 99}
	pro := ReplPromote{Epoch: 4}
	wait := ReplWait{TimeoutMs: 250, LSNs: []uint64{5, 6}}
	lsns := ReplLSNs{Epoch: 3, Role: RoleReplica, LSNs: []uint64{11, 12}}
	batch := ReplBatch{Shard: 1, Epoch: 3, Recs: []ReplRec{
		{Kind: 1, LSN: 7, Tx: 2, PID: 1, Off: 1, Before: nil, After: []byte("\x01\x00\x00\x00\x00\x00\x00\x00row")},
		{Kind: 1, LSN: 8, Tx: 2, PID: 1, Off: 3 | 8<<2, Before: []byte("a"), After: []byte("b")},
		{Kind: 2, LSN: 9, Tx: 2},
	}}
	snap := ReplSnap{Shard: 0, Epoch: 3, Final: true, SnapLSN: 42, Rows: []SnapRow{
		{Table: 1, Key: 5, Value: []byte("hello")},
		{Table: 1, Key: 6, Value: nil},
	}}
	return sub, ack, pro, wait, lsns, batch, snap
}

func TestReplBodyRoundTrips(t *testing.T) {
	sub, ack, pro, wait, lsns, batch, snap := replSamples()

	if got, err := DecodeReplSubscribe(AppendReplSubscribe(nil, sub)); err != nil || !reflect.DeepEqual(got, sub) {
		t.Fatalf("subscribe round trip: %+v, %v", got, err)
	}
	if got, err := DecodeReplAck(AppendReplAck(nil, ack)); err != nil || got != ack {
		t.Fatalf("ack round trip: %+v, %v", got, err)
	}
	if got, err := DecodeReplPromote(AppendReplPromote(nil, pro)); err != nil || got != pro {
		t.Fatalf("promote round trip: %+v, %v", got, err)
	}
	if got, err := DecodeReplWait(AppendReplWait(nil, wait)); err != nil || !reflect.DeepEqual(got, wait) {
		t.Fatalf("wait round trip: %+v, %v", got, err)
	}
	if got, err := DecodeReplLSNs(AppendReplLSNs(nil, lsns)); err != nil || !reflect.DeepEqual(got, lsns) {
		t.Fatalf("lsns round trip: %+v, %v", got, err)
	}
	got, err := DecodeReplBatch(AppendReplBatch(nil, batch))
	if err != nil || len(got.Recs) != len(batch.Recs) || got.Shard != batch.Shard || got.Epoch != batch.Epoch {
		t.Fatalf("batch round trip: %+v, %v", got, err)
	}
	for i, r := range got.Recs {
		w := batch.Recs[i]
		if r.Kind != w.Kind || r.LSN != w.LSN || r.Tx != w.Tx || r.PID != w.PID || r.Off != w.Off ||
			!bytes.Equal(r.Before, w.Before) || !bytes.Equal(r.After, w.After) {
			t.Fatalf("batch rec %d: %+v != %+v", i, r, w)
		}
	}
	gs, err := DecodeReplSnap(AppendReplSnap(nil, snap))
	if err != nil || gs.Shard != snap.Shard || gs.Epoch != snap.Epoch || !gs.Final ||
		gs.SnapLSN != snap.SnapLSN || len(gs.Rows) != len(snap.Rows) {
		t.Fatalf("snapshot round trip: %+v, %v", gs, err)
	}
	for i, r := range gs.Rows {
		w := snap.Rows[i]
		if r.Table != w.Table || r.Key != w.Key || !bytes.Equal(r.Value, w.Value) {
			t.Fatalf("snapshot row %d: %+v != %+v", i, r, w)
		}
	}
}

// TestReplBodyTruncations checks that every strict prefix of each
// encoded body decodes to an error, never a panic or a silent success
// with a different meaning.
func TestReplBodyTruncations(t *testing.T) {
	sub, ack, pro, wait, lsns, batch, snap := replSamples()
	bodies := map[string]struct {
		enc []byte
		dec func([]byte) error
	}{
		"subscribe": {AppendReplSubscribe(nil, sub), func(b []byte) error { _, err := DecodeReplSubscribe(b); return err }},
		"ack":       {AppendReplAck(nil, ack), func(b []byte) error { _, err := DecodeReplAck(b); return err }},
		"promote":   {AppendReplPromote(nil, pro), func(b []byte) error { _, err := DecodeReplPromote(b); return err }},
		"wait":      {AppendReplWait(nil, wait), func(b []byte) error { _, err := DecodeReplWait(b); return err }},
		"lsns":      {AppendReplLSNs(nil, lsns), func(b []byte) error { _, err := DecodeReplLSNs(b); return err }},
		"batch":     {AppendReplBatch(nil, batch), func(b []byte) error { _, err := DecodeReplBatch(b); return err }},
		"snapshot":  {AppendReplSnap(nil, snap), func(b []byte) error { _, err := DecodeReplSnap(b); return err }},
	}
	for name, tc := range bodies {
		for cut := 0; cut < len(tc.enc); cut++ {
			if err := tc.dec(tc.enc[:cut]); err == nil {
				t.Errorf("%s: %d-byte prefix of %d decoded without error", name, cut, len(tc.enc))
			}
		}
	}
}

// TestReplFramesThroughRequestPath checks that replication bodies ride
// the generic request/response framing: encode → frame → decode returns
// the opaque body byte-identical, for every repl opcode and response
// code.
func TestReplFramesThroughRequestPath(t *testing.T) {
	sub, ack, pro, wait, lsns, batch, snap := replSamples()
	reqs := map[byte][]byte{
		OpReplSubscribe: AppendReplSubscribe(nil, sub),
		OpReplAck:       AppendReplAck(nil, ack),
		OpReplPromote:   AppendReplPromote(nil, pro),
		OpReplWait:      AppendReplWait(nil, wait),
	}
	for op, body := range reqs {
		frame := AppendRequest(nil, Request{Op: op, ID: 7, Value: body})
		got, err := DecodeRequest(frame[4:])
		if err != nil || got.Op != op || got.ID != 7 || !bytes.Equal(got.Value, body) {
			t.Fatalf("%s through request path: %+v, %v", OpName(op), got, err)
		}
	}
	frame := AppendRequest(nil, Request{Op: OpReplLSNs, ID: 9})
	if got, err := DecodeRequest(frame[4:]); err != nil || got.Op != OpReplLSNs || len(got.Value) != 0 {
		t.Fatalf("repllsns request: %+v, %v", got, err)
	}
	resps := map[byte][]byte{
		RespReplBatch: AppendReplBatch(nil, batch),
		RespReplSnap:  AppendReplSnap(nil, snap),
		RespReplLSNs:  AppendReplLSNs(nil, lsns),
	}
	for code, body := range resps {
		frame := AppendResponse(nil, Response{Code: code, ID: 8, Value: body})
		got, err := DecodeResponse(frame[4:])
		if err != nil || got.Code != code || got.ID != 8 || !bytes.Equal(got.Value, body) {
			t.Fatalf("%s through response path: %+v, %v", OpName(code), got, err)
		}
	}
}

// TestReplMixedVersionInterop proves v1 and v2 peers still interoperate
// with the replication opcodes in play: the same replication body
// decodes identically from a plain Version frame and a VersionTraced
// frame, and an untraced replication frame is byte-identical to what a
// v1-only peer would emit (version byte Version, 6-byte header).
func TestReplMixedVersionInterop(t *testing.T) {
	sub, _, _, _, _, batch, _ := replSamples()
	body := AppendReplSubscribe(nil, sub)

	v1 := AppendRequest(nil, Request{Op: OpReplSubscribe, ID: 3, Value: body})
	if v1[4] != Version {
		t.Fatalf("untraced repl frame got version %d, want %d", v1[4], Version)
	}
	v2 := AppendRequest(nil, Request{Op: OpReplSubscribe, ID: 3, Value: body, Flags: FlagTraced, TraceID: 99})
	if v2[4] != VersionTraced {
		t.Fatalf("traced repl frame got version %d, want %d", v2[4], VersionTraced)
	}
	d1, err1 := DecodeRequest(v1[4:])
	d2, err2 := DecodeRequest(v2[4:])
	if err1 != nil || err2 != nil {
		t.Fatalf("decode: %v, %v", err1, err2)
	}
	if !bytes.Equal(d1.Value, d2.Value) || !bytes.Equal(d1.Value, body) {
		t.Fatal("v1 and v2 framings disagree on the replication body")
	}
	s1, err := DecodeReplSubscribe(d1.Value)
	if err != nil || !reflect.DeepEqual(s1, sub) {
		t.Fatalf("subscribe body through v1 frame: %+v, %v", s1, err)
	}

	// Pushed batches the other way: a v1 replica must read a batch from
	// an untraced primary, and a v2 frame must carry the same body.
	bb := AppendReplBatch(nil, batch)
	r1 := AppendResponse(nil, Response{Code: RespReplBatch, ID: 0, Value: bb})
	r2 := AppendResponse(nil, Response{Code: RespReplBatch, ID: 0, Value: bb, TraceID: 5})
	if r1[4] != Version || r2[4] != VersionTraced {
		t.Fatalf("batch frame versions: %d, %d", r1[4], r2[4])
	}
	p1, err1 := DecodeResponse(r1[4:])
	p2, err2 := DecodeResponse(r2[4:])
	if err1 != nil || err2 != nil || !bytes.Equal(p1.Value, p2.Value) {
		t.Fatalf("batch body differs across versions: %v %v", err1, err2)
	}
}

// FuzzDecodeRepl targets the replication body decoders: the first input
// byte selects the decoder, the rest is the body. No input may panic or
// over-read, and whatever decodes must re-encode byte-identically —
// the codecs have a canonical form, so decode∘encode is the identity on
// every accepted body.
func FuzzDecodeRepl(f *testing.F) {
	sub, ack, pro, wait, lsns, batch, snap := replSamples()
	f.Add(append([]byte{0}, AppendReplSubscribe(nil, sub)...))
	f.Add(append([]byte{1}, AppendReplAck(nil, ack)...))
	f.Add(append([]byte{2}, AppendReplPromote(nil, pro)...))
	f.Add(append([]byte{3}, AppendReplWait(nil, wait)...))
	f.Add(append([]byte{4}, AppendReplLSNs(nil, lsns)...))
	f.Add(append([]byte{5}, AppendReplBatch(nil, batch)...))
	f.Add(append([]byte{6}, AppendReplSnap(nil, snap)...))
	f.Add([]byte{5, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 3, 0xff, 0xff, 0xff, 0xff}) // hostile count
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		sel, body := data[0]%7, data[1:]
		var reenc []byte
		var err error
		switch sel {
		case 0:
			var v ReplSubscribe
			if v, err = DecodeReplSubscribe(body); err == nil {
				reenc = AppendReplSubscribe(nil, v)
			}
		case 1:
			var v ReplAck
			if v, err = DecodeReplAck(body); err == nil {
				reenc = AppendReplAck(nil, v)
			}
		case 2:
			var v ReplPromote
			if v, err = DecodeReplPromote(body); err == nil {
				reenc = AppendReplPromote(nil, v)
			}
		case 3:
			var v ReplWait
			if v, err = DecodeReplWait(body); err == nil {
				reenc = AppendReplWait(nil, v)
			}
		case 4:
			var v ReplLSNs
			if v, err = DecodeReplLSNs(body); err == nil {
				reenc = AppendReplLSNs(nil, v)
			}
		case 5:
			var v ReplBatch
			if v, err = DecodeReplBatch(body); err == nil {
				reenc = AppendReplBatch(nil, v)
			}
		case 6:
			var v ReplSnap
			if v, err = DecodeReplSnap(body); err == nil {
				reenc = AppendReplSnap(nil, v)
			}
		}
		if err != nil {
			return
		}
		if !bytes.Equal(reenc, body) {
			t.Fatalf("decoder %d: re-encode differs from accepted input", sel)
		}
	})
}
