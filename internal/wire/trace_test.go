package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestUntracedStaysV1 pins cross-version interop: a request with no
// trace state must encode byte-identically to the version-1 format, so
// a new client with tracing off speaks to an old server unchanged.
func TestUntracedStaysV1(t *testing.T) {
	r := Request{Op: OpPut, ID: 7, Table: 1, Key: 9, Value: []byte("row")}
	frame := AppendRequest(nil, r)
	if frame[4] != Version {
		t.Fatalf("untraced request encoded as version %d", frame[4])
	}
	want := []byte{0, 0, 0, byte(headerSize + 16 + 3), Version, OpPut, 0, 0, 0, 7}
	if !bytes.Equal(frame[:10], want) {
		t.Fatalf("v1 prefix changed: % x != % x", frame[:10], want)
	}
}

// TestTracedRequestRoundTrip round-trips every opcode with the trace
// extension and checks the context survives.
func TestTracedRequestRoundTrip(t *testing.T) {
	for _, base := range []Request{
		{Op: OpGet, ID: 1, Table: 1, Key: 42},
		{Op: OpPut, ID: 2, Table: 1, Key: 9, Value: []byte("hello")},
		{Op: OpDelete, ID: 3, Table: 4, Key: 5},
		{Op: OpScan, ID: 4, Table: 2, Key: 100, Limit: 50},
		{Op: OpStats, ID: 8},
	} {
		want := base
		want.Flags = FlagTraced
		want.TraceID = 0xDEADBEEFCAFEF00D
		frame := AppendRequest(nil, want)
		if frame[4] != VersionTraced {
			t.Fatalf("%s: traced request encoded as version %d", OpName(want.Op), frame[4])
		}
		got, err := DecodeRequest(frame[4:])
		if err != nil {
			t.Fatalf("%s: %v", OpName(want.Op), err)
		}
		if got.Flags != want.Flags || got.TraceID != want.TraceID || !got.Traced() {
			t.Fatalf("%s: trace context lost: %+v", OpName(want.Op), got)
		}
		if got.Op != want.Op || got.ID != want.ID || got.Table != want.Table ||
			got.Key != want.Key || got.Limit != want.Limit || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("%s: round trip %+v != %+v", OpName(want.Op), got, want)
		}
	}
}

// TestMixedVersionStream interleaves v1 and v2 frames on one stream —
// the decode loop must handle both without resync.
func TestMixedVersionStream(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, ID: 1, Table: 1, Key: 1},
		{Op: OpPut, ID: 2, Table: 1, Key: 2, Value: []byte("v"), Flags: FlagTraced, TraceID: 99},
		{Op: OpGet, ID: 3, Table: 1, Key: 3},
		{Op: OpDelete, ID: 4, Table: 1, Key: 4, Flags: FlagTraced, TraceID: 100},
	}
	var stream []byte
	for _, r := range reqs {
		stream = AppendRequest(stream, r)
	}
	rd := bytes.NewReader(stream)
	var buf, payload []byte
	var err error
	for i, want := range reqs {
		payload, buf, err = ReadFrame(rd, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want.ID || got.TraceID != want.TraceID || got.Flags != want.Flags {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
}

// TestTracedResponseRoundTrip checks the response side keeps the trace
// context symmetric (servers normally leave it zero).
func TestTracedResponseRoundTrip(t *testing.T) {
	want := Response{Code: RespValue, ID: 3, Value: []byte("row"), Flags: FlagTraced, TraceID: 42}
	frame := AppendResponse(nil, want)
	if frame[4] != VersionTraced {
		t.Fatalf("traced response encoded as version %d", frame[4])
	}
	got, err := DecodeResponse(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != want.Flags || got.TraceID != want.TraceID || !bytes.Equal(got.Value, want.Value) {
		t.Fatalf("round trip %+v != %+v", got, want)
	}
}

// TestTracedHeaderErrors drives hostile v2 headers through the decoder:
// truncations anywhere in the trace extension must fail cleanly.
func TestTracedHeaderErrors(t *testing.T) {
	full := AppendRequest(nil, Request{Op: OpGet, ID: 1, Table: 1, Key: 2, Flags: FlagTraced, TraceID: 7})[4:]
	// Cut inside the extension and inside the body.
	for cut := headerSize; cut < len(full); cut++ {
		if _, err := DecodeRequest(full[:cut]); !errors.Is(err, ErrShortFrame) {
			t.Errorf("cut at %d: got %v, want ErrShortFrame", cut, err)
		}
	}
	// Unknown flag bits are preserved, not rejected.
	odd := AppendRequest(nil, Request{Op: OpGet, ID: 1, Table: 1, Key: 2, Flags: 0xF0, TraceID: 7})[4:]
	got, err := DecodeRequest(odd)
	if err != nil {
		t.Fatalf("unknown flags rejected: %v", err)
	}
	if got.Flags != 0xF0 || got.Traced() {
		t.Fatalf("flags not preserved or Traced() wrong: %+v", got)
	}
	// Flag set but zero trace id: decodes, but not Traced.
	zid := AppendRequest(nil, Request{Op: OpGet, ID: 1, Table: 1, Key: 2, Flags: FlagTraced})[4:]
	if got, err := DecodeRequest(zid); err != nil || got.Traced() {
		t.Fatalf("zero trace id: err=%v traced=%v", err, got.Traced())
	}
}

// FuzzDecodeTraced targets the trace-header decode path: arbitrary
// payloads stamped with the traced version byte must never panic or
// over-read, and whatever decodes must re-encode losslessly including
// the trace context.
func FuzzDecodeTraced(f *testing.F) {
	for _, r := range []Request{
		{Op: OpGet, ID: 1, Table: 1, Key: 42, Flags: FlagTraced, TraceID: 7},
		{Op: OpPut, ID: 2, Table: 1, Key: 9, Value: []byte("hello"), Flags: FlagTraced, TraceID: 1 << 63},
		{Op: OpScan, ID: 4, Table: 2, Key: 100, Limit: 50, Flags: 0xFF, TraceID: 3},
	} {
		f.Add(AppendRequest(nil, r)[4:])
	}
	f.Add([]byte{VersionTraced, OpGet})
	f.Add([]byte{VersionTraced, OpGet, 0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8})      // cut mid trace id
	f.Add([]byte{VersionTraced, OpStats, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 9}) // minimal v2
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		again, err := DecodeRequest(AppendRequest(nil, r)[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encoded request failed: %v", err)
		}
		if again.Op != r.Op || again.ID != r.ID || again.Table != r.Table ||
			again.Key != r.Key || again.Limit != r.Limit || !bytes.Equal(again.Value, r.Value) ||
			again.Flags != r.Flags || again.TraceID != r.TraceID {
			t.Fatalf("round trip changed request: %+v != %+v", again, r)
		}
	})
}
