package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// roundTripRequest encodes r and decodes the framed payload back.
func roundTripRequest(t *testing.T, r Request) Request {
	t.Helper()
	frame := AppendRequest(nil, r)
	payload, _, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, ID: 1, Table: 1, Key: 42},
		{Op: OpDelete, ID: 0xFFFFFFFF, Table: 7, Key: 0},
		{Op: OpPut, ID: 2, Table: 1, Key: 9, Value: []byte("hello")},
		{Op: OpPut, ID: 3, Table: 1, Key: 9, Value: []byte{}},
		{Op: OpScan, ID: 4, Table: 2, Key: 100, Limit: 50},
		{Op: OpBegin, ID: 5},
		{Op: OpCommit, ID: 6},
		{Op: OpRollback, ID: 7},
		{Op: OpStats, ID: 8},
	}
	for _, want := range cases {
		got := roundTripRequest(t, want)
		if got.Op != want.Op || got.ID != want.ID || got.Table != want.Table ||
			got.Key != want.Key || got.Limit != want.Limit || !bytes.Equal(got.Value, want.Value) {
			t.Errorf("%s: round trip %+v != %+v", OpName(want.Op), got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Code: RespOK, ID: 1},
		{Code: RespNotFound, ID: 2},
		{Code: RespValue, ID: 3, Value: []byte("row bytes")},
		{Code: RespErr, ID: 4, Err: "unknown table 9"},
		{Code: RespStats, ID: 5, Value: []byte(`{"shards":4}`)},
		{Code: RespScan, ID: 6, Entries: []Entry{
			{Key: 1, Value: []byte("a")},
			{Key: 2, Value: []byte{}},
			{Key: 3, Value: []byte("ccc")},
		}},
		{Code: RespScan, ID: 7, Entries: nil},
	}
	for _, want := range cases {
		frame := AppendResponse(nil, want)
		payload, _, err := ReadFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", OpName(want.Code), err)
		}
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("%s: DecodeResponse: %v", OpName(want.Code), err)
		}
		if got.Code != want.Code || got.ID != want.ID || got.Err != want.Err ||
			!bytes.Equal(got.Value, want.Value) || len(got.Entries) != len(want.Entries) {
			t.Errorf("%s: round trip %+v != %+v", OpName(want.Code), got, want)
		}
		for i := range got.Entries {
			if got.Entries[i].Key != want.Entries[i].Key ||
				!bytes.Equal(got.Entries[i].Value, want.Entries[i].Value) {
				t.Errorf("%s: entry %d: %+v != %+v", OpName(want.Code), i, got.Entries[i], want.Entries[i])
			}
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	// Clean close before a frame: plain EOF.
	if _, _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	// Close mid-prefix and mid-payload: unexpected EOF.
	full := AppendRequest(nil, Request{Op: OpGet, ID: 1, Table: 1, Key: 2})
	for _, cut := range []int{1, 3, 5, len(full) - 1} {
		if _, _, err := ReadFrame(bytes.NewReader(full[:cut]), nil); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// Oversized length prefix.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(huge), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge frame: got %v, want ErrFrameTooLarge", err)
	}
	// Payload shorter than the fixed header.
	short := []byte{0, 0, 0, 2, Version, OpGet}
	if _, _, err := ReadFrame(bytes.NewReader(short), nil); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short frame: got %v, want ErrShortFrame", err)
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var stream []byte
	stream = AppendRequest(stream, Request{Op: OpPut, ID: 1, Table: 1, Key: 1, Value: bytes.Repeat([]byte("x"), 100)})
	stream = AppendRequest(stream, Request{Op: OpGet, ID: 2, Table: 1, Key: 2})
	r := bytes.NewReader(stream)
	payload, buf, err := ReadFrame(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := cap(buf)
	if _, err := DecodeRequest(payload); err != nil {
		t.Fatal(err)
	}
	_, buf, err = ReadFrame(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) != first {
		t.Errorf("buffer reallocated for a smaller frame: cap %d -> %d", first, cap(buf))
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrShortFrame},
		{"truncated header", []byte{Version, OpGet, 0}, ErrShortFrame},
		{"bad version", []byte{99, OpGet, 0, 0, 0, 1}, ErrBadVersion},
		{"bad opcode", []byte{Version, 0x7F, 0, 0, 0, 1}, ErrBadOpcode},
		{"get short body", []byte{Version, OpGet, 0, 0, 0, 1, 1, 2, 3}, ErrShortFrame},
		{"put short body", []byte{Version, OpPut, 0, 0, 0, 1, 1, 2, 3}, ErrShortFrame},
		{"scan short body", append([]byte{Version, OpScan, 0, 0, 0, 1}, make([]byte, 16)...), ErrShortFrame},
		{"begin with body", []byte{Version, OpBegin, 0, 0, 0, 1, 9}, ErrShortFrame},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.payload); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	// A hostile scan count must not drive allocation: count says 2^32-1
	// entries, body holds none.
	evil := []byte{Version, RespScan, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeResponse(evil); !errors.Is(err, ErrShortFrame) {
		t.Errorf("hostile scan count: got %v, want ErrShortFrame", err)
	}
	// Entry value length past the body end.
	bad := AppendResponse(nil, Response{Code: RespScan, ID: 1, Entries: []Entry{{Key: 1, Value: []byte("abc")}}})
	payload := bad[4:]
	payload[len(payload)-4-3] = 0xFF // corrupt the entry's value length
	if _, err := DecodeResponse(payload); !errors.Is(err, ErrShortFrame) {
		t.Errorf("bad entry length: got %v, want ErrShortFrame", err)
	}
	// Trailing garbage after the declared entries.
	trailing := append(AppendResponse(nil, Response{Code: RespScan, ID: 1})[4:], 1, 2, 3)
	if _, err := DecodeResponse(trailing); !errors.Is(err, ErrShortFrame) {
		t.Errorf("trailing bytes: got %v, want ErrShortFrame", err)
	}
	if _, err := DecodeResponse([]byte{Version, 0x01, 0, 0, 0, 1}); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("request opcode in response position: want ErrBadOpcode, got nil")
	}
}

func TestOpNameCoversAll(t *testing.T) {
	for op := OpGet; op <= OpStats; op++ {
		if strings.HasPrefix(OpName(op), "op0x") {
			t.Errorf("opcode %#x has no name", op)
		}
	}
	for code := RespOK; code <= RespStats; code++ {
		if strings.HasPrefix(OpName(code), "op0x") {
			t.Errorf("response code %#x has no name", code)
		}
	}
	if OpName(0x55) == "" {
		t.Error("unknown opcode must still render")
	}
}

// FuzzDecodeRequest checks that no request payload can panic the
// decoder, and that whatever decodes also re-encodes to an equivalent
// frame (the decoder and encoder agree on the format).
func FuzzDecodeRequest(f *testing.F) {
	for _, r := range []Request{
		{Op: OpGet, ID: 1, Table: 1, Key: 42},
		{Op: OpPut, ID: 2, Table: 1, Key: 9, Value: []byte("hello")},
		{Op: OpScan, ID: 4, Table: 2, Key: 100, Limit: 50},
		{Op: OpStats, ID: 8},
	} {
		f.Add(AppendRequest(nil, r)[4:]) // payload without the length prefix
	}
	f.Add(AppendRequest(nil, Request{Op: OpGet, ID: 9, Table: 1, Key: 2, Flags: FlagTraced, TraceID: 77})[4:])
	f.Add([]byte{Version, OpGet})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		again, err := DecodeRequest(AppendRequest(nil, r)[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encoded request failed: %v", err)
		}
		if again.Op != r.Op || again.ID != r.ID || again.Table != r.Table ||
			again.Key != r.Key || again.Limit != r.Limit || !bytes.Equal(again.Value, r.Value) ||
			again.Flags != r.Flags || again.TraceID != r.TraceID {
			t.Fatalf("round trip changed request: %+v != %+v", again, r)
		}
	})
}

// FuzzDecodeResponse checks the response decoder never panics and
// re-encodes losslessly.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range []Response{
		{Code: RespOK, ID: 1},
		{Code: RespValue, ID: 3, Value: []byte("row")},
		{Code: RespErr, ID: 4, Err: "boom"},
		{Code: RespScan, ID: 6, Entries: []Entry{{Key: 1, Value: []byte("a")}}},
	} {
		f.Add(AppendResponse(nil, r)[4:])
	}
	f.Add([]byte{Version, RespScan, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		r, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		again, err := DecodeResponse(AppendResponse(nil, r)[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
		if again.Code != r.Code || again.ID != r.ID || again.Err != r.Err ||
			!bytes.Equal(again.Value, r.Value) || len(again.Entries) != len(r.Entries) ||
			again.Flags != r.Flags || again.TraceID != r.TraceID {
			t.Fatalf("round trip changed response: %+v != %+v", again, r)
		}
	})
}

// FuzzReadFrame feeds raw streams to the frame reader: it must never
// panic and never hand DecodeRequest a payload it rejects as too short
// to hold a header.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpGet, ID: 1, Table: 1, Key: 2}))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		var buf []byte
		var payload []byte
		var err error
		for {
			payload, buf, err = ReadFrame(r, buf)
			if err != nil {
				return
			}
			if len(payload) < headerSize {
				t.Fatalf("ReadFrame returned %d-byte payload, below header size", len(payload))
			}
			// Either decode outcome is fine; it just must not panic.
			DecodeRequest(payload)
		}
	})
}
