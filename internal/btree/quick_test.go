package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"nvmstore/internal/core"
)

// TestQuickInsertDeleteSetSemantics property-checks set semantics: for an
// arbitrary multiset of inserted keys and an arbitrary subset of deleted
// keys, the tree contains exactly the surviving distinct keys, in order.
func TestQuickInsertDeleteSetSemantics(t *testing.T) {
	prop := func(insertKeys []uint16, deleteMask []bool) bool {
		m := newManager(t, core.MemOnly, 0, false, false, true)
		tr, err := Create(m, 1, 24, LayoutSorted)
		if err != nil {
			return false
		}
		want := make(map[uint64]bool)
		for _, k := range insertKeys {
			key := uint64(k)
			err := tr.Insert(key, payloadFor(key, 24))
			if want[key] {
				if err == nil {
					return false // duplicate accepted
				}
			} else {
				if err != nil {
					return false
				}
				want[key] = true
			}
		}
		for i, del := range deleteMask {
			if !del || i >= len(insertKeys) {
				continue
			}
			key := uint64(insertKeys[i])
			found, err := tr.Delete(key)
			if err != nil {
				return false
			}
			if found != want[key] {
				return false
			}
			delete(want, key)
		}
		var got []uint64
		if err := tr.Scan(0, 0, 0, 0, func(k uint64, _ []byte) bool {
			got = append(got, k)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		expect := make([]uint64, 0, len(want))
		for k := range want {
			expect = append(expect, k)
		}
		sort.Slice(expect, func(a, b int) bool { return expect[a] < expect[b] })
		for i := range expect {
			if got[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanMatchesLookup property-checks that every key a scan reports
// is individually findable with the same payload prefix, on the hash
// layout (where scans sort just in time).
func TestQuickScanMatchesLookup(t *testing.T) {
	prop := func(keys []uint16, from uint16) bool {
		m := newManager(t, core.MemOnly, 0, false, false, false)
		tr, err := Create(m, 1, 16, LayoutHash)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool)
		for _, k := range keys {
			key := uint64(k)
			if seen[key] {
				continue
			}
			seen[key] = true
			if err := tr.Insert(key, payloadFor(key, 16)); err != nil {
				return false
			}
		}
		ok := true
		buf := make([]byte, 16)
		err = tr.Scan(uint64(from), 0, 0, 8, func(k uint64, field []byte) bool {
			if k < uint64(from) || !seen[k] {
				ok = false
				return false
			}
			found, err := tr.Lookup(k, buf)
			if err != nil || !found {
				ok = false
				return false
			}
			for i := 0; i < 8; i++ {
				if buf[i] != field[i] {
					ok = false
					return false
				}
			}
			return true
		})
		return ok && err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
