package btree

import (
	"encoding/binary"
	"fmt"

	"nvmstore/internal/core"
)

// Scan visits entries with key >= from in ascending key order, calling fn
// with each key and a read-only view of fieldLen payload bytes starting at
// fieldOff. It stops after limit entries (limit <= 0 means no limit) or
// when fn returns false. The field slice is only valid during the
// callback.
//
// By default leaves are accessed cache-line-grained — the configuration
// whose overhead §5.4.2 measures — loading each visited tuple's field
// individually; SetScanFullPage(true) switches to full-page loading.
func (t *Tree) Scan(from uint64, limit int, fieldOff, fieldLen int, fn func(key uint64, field []byte) bool) error {
	if fieldOff < 0 || fieldLen < 0 || fieldOff+fieldLen > t.payload {
		return fmt.Errorf("btree: scan field [%d,%d) outside payload of %d bytes", fieldOff, fieldOff+fieldLen, t.payload)
	}
	mode := core.ModeCacheLine
	if t.scanFullPage {
		mode = core.ModeFull
	}
	h, err := t.findLeaf(from, mode)
	if err != nil {
		return err
	}
	emitted := 0
	firstLeaf := true
	for {
		var done bool
		if t.layout == LayoutHash {
			done = t.scanHashLeaf(h, from, firstLeaf, limit, &emitted, fieldOff, fieldLen, fn)
		} else {
			done = t.scanSortedLeaf(h, from, firstLeaf, limit, &emitted, fieldOff, fieldLen, fn)
		}
		if done {
			t.m.Unfix(h)
			return nil
		}
		next := leafNext(h)
		t.m.Unfix(h)
		if next == core.InvalidPageID {
			return nil
		}
		firstLeaf = false
		h, err = t.m.Fix(core.MakeRef(next), mode)
		if err != nil {
			return err
		}
	}
}

// scanSortedLeaf emits the qualifying entries of one sorted leaf and
// reports whether the scan is finished.
func (t *Tree) scanSortedLeaf(h core.Handle, from uint64, firstLeaf bool, limit int, emitted *int, fieldOff, fieldLen int, fn func(uint64, []byte) bool) bool {
	pos := 0
	if firstLeaf {
		pos, _ = t.leafSearch(h, from)
	}
	count := nodeCount(h)
	for ; pos < count; pos++ {
		if limit > 0 && *emitted >= limit {
			return true
		}
		key := binary.LittleEndian.Uint64(h.Read(t.leafKeyOff(pos), 8))
		var field []byte
		if fieldLen > 0 {
			field = h.Read(t.leafPayOff(pos)+fieldOff, fieldLen)
		}
		if !fn(key, field) {
			return true
		}
		*emitted++
	}
	return limit > 0 && *emitted >= limit
}

// scanHashLeaf emits the qualifying entries of one hash leaf in key order,
// sorting the leaf just in time — the scan overhead of the hash layout the
// paper points out in §5.5.
func (t *Tree) scanHashLeaf(h core.Handle, from uint64, firstLeaf bool, limit int, emitted *int, fieldOff, fieldLen int, fn func(uint64, []byte) bool) bool {
	for _, e := range t.hashGather(h) {
		if firstLeaf && e.key < from {
			continue
		}
		if limit > 0 && *emitted >= limit {
			return true
		}
		var field []byte
		if fieldLen > 0 {
			field = h.Read(t.hashPayOff(e.slot)+fieldOff, fieldLen)
		}
		if !fn(e.key, field) {
			return true
		}
		*emitted++
	}
	return limit > 0 && *emitted >= limit
}

// Count scans the whole tree and returns the number of entries; intended
// for tests and verification, not hot paths.
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(0, 0, 0, 0, func(uint64, []byte) bool {
		n++
		return true
	})
	return n, err
}
